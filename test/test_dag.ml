(* DAG-compressed index (Xr_dag): hash-consing invariants, the headline
   equivalence property — a DAG-backed index is indistinguishable from
   the flat build everywhere (per-keyword merged lists byte-identical,
   SLCA engines and the refinement pipeline return identical results) —
   plus the mode plumbing: compress round trips, incremental append,
   persistence. Adversarial shapes (deep repetition, single node,
   all-distinct subtrees) run both as fixed cases and as a qcheck
   property over generated trees. *)

open Xr_xml
module P = Dewey.Packed
module Inverted = Xr_index.Inverted
module Index = Xr_index.Index
module Engine = Xr_slca.Engine
module Scan_dag = Xr_slca.Scan_dag

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* Test corpora stay small: the suite runs 2x2 (pool x index) in CI. *)
let corpora =
  lazy
    [
      ("figure1", Xr_data.Figure1.doc ());
      ("baseball", Xr_data.Baseball.doc ());
      ("auction", Xr_data.Auction.doc ());
      ("dblp", Doc.of_tree (Xr_data.Dblp.scaled ~publications:120 ~seed:7));
    ]

let both_builds doc =
  (Index.build ~mode:Index.Flat doc, Index.build ~mode:Index.Dag doc)

let dag_of (index : Index.t) =
  match Inverted.dag index.Index.inverted with
  | Some d -> d
  | None -> Alcotest.fail "dag-mode index has no dag backing"

(* Keyword ids with non-empty lists, most frequent first. *)
let keywords_by_frequency (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_lengths (fun kw n -> if n > 0 then acc := (kw, n) :: !acc) index.Index.inverted;
  List.map fst (List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc)

(* Query mix: frequent pairs/triples (merged path), rare pairs (native
   path on the dag side), and a frequent/rare mix. *)
let query_mix (index : Index.t) =
  match keywords_by_frequency index with
  | [] | [ _ ] -> []
  | kws ->
    let n = List.length kws in
    let at i = List.nth kws (min i (n - 1)) in
    let last i = List.nth kws (max 0 (n - 1 - i)) in
    [
      [ at 0; at 1 ];
      [ at 0; at 1; at 2 ];
      [ last 0; last 1 ];
      [ last 0; last 1; last 2 ];
      [ at 0; last 0 ];
      [ at 0 ];
      [ last 1 ];
    ]
    |> List.map (List.sort_uniq Int.compare)

let dewey_list = Alcotest.testable (Fmt.Dump.list Dewey.pp) (List.equal Dewey.equal)

(* ---- structural invariants ---------------------------------------------- *)

let test_stats_invariants () =
  List.iter
    (fun (name, doc) ->
      let _, dagged = both_builds doc in
      let dag = dag_of dagged in
      let s = Xr_dag.stats dag in
      check Alcotest.int (name ^ " nodes") (Doc.node_count doc) s.Xr_dag.nodes;
      if not (s.Xr_dag.classes <= s.Xr_dag.nodes && s.Xr_dag.classes > 0) then
        Alcotest.failf "%s: classes %d out of range" name s.Xr_dag.classes;
      if s.Xr_dag.dag_edges > s.Xr_dag.tree_edges then
        Alcotest.failf "%s: dag edges exceed tree edges" name;
      if s.Xr_dag.occurrence_classes > s.Xr_dag.classes then
        Alcotest.failf "%s: occurrence classes exceed classes" name;
      if s.Xr_dag.instances > s.Xr_dag.nodes then
        Alcotest.failf "%s: instances exceed nodes" name;
      (* expansion covers exactly the instances, grouped by class *)
      check Alcotest.int (name ^ " expansion length") s.Xr_dag.instances
        (P.length (Xr_dag.expansion dag));
      let r1 = Xr_dag.node_dedup_ratio dag and r2 = Xr_dag.edge_dedup_ratio dag in
      if not (r1 > 0. && r1 <= 1. && r2 > 0. && r2 <= 1.) then
        Alcotest.failf "%s: dedup ratios out of range (%f, %f)" name r1 r2)
    (Lazy.force corpora)

(* ---- the equivalence property ------------------------------------------- *)

(* Every keyword's merged list must be byte-identical to the flat pack:
   same label buffer, same offsets, same per-posting path ids. *)
let assert_lists_identical name (flat : Index.t) (other : Index.t) =
  check Alcotest.int
    (name ^ " postings_total")
    (Inverted.postings_total flat.Index.inverted)
    (Inverted.postings_total other.Index.inverted);
  Inverted.iter_lengths
    (fun kw _ ->
      let a = Inverted.packed_list flat.Index.inverted kw in
      let b = Inverted.packed_list other.Index.inverted kw in
      let abuf, aoff, adepth = P.to_raw a.Inverted.labels in
      let bbuf, boff, bdepth = P.to_raw b.Inverted.labels in
      if abuf <> bbuf then Alcotest.failf "%s: kw %d label buffers differ" name kw;
      if aoff <> boff then Alcotest.failf "%s: kw %d offset tables differ" name kw;
      if adepth <> bdepth then Alcotest.failf "%s: kw %d max depths differ" name kw;
      if a.Inverted.paths <> b.Inverted.paths then
        Alcotest.failf "%s: kw %d path ids differ" name kw)
    flat.Index.inverted

let test_merge_byte_identical () =
  List.iter
    (fun (name, doc) ->
      let flat, dagged = both_builds doc in
      assert_lists_identical name flat dagged)
    (Lazy.force corpora)

(* Engines under test on the dag side: the packed scan family (subject
   to native dispatch) plus the packed stack (always merged path). *)
let engines = [ Engine.Scan_packed; Engine.Stack_packed; Engine.Scan_parallel ]

let assert_queries_equal name (flat : Index.t) (dagged : Index.t) queries =
  List.iter
    (fun ids ->
      let reference = Engine.query_ids Engine.Scan_eager flat ids in
      List.iter
        (fun alg ->
          let got = Engine.query_ids alg dagged ids in
          check dewey_list
            (Printf.sprintf "%s %s on dag" name (Engine.name alg))
            reference got)
        engines;
      (* the native kernel itself, forced regardless of dispatch
         eligibility — the per-range probe argument must hold on big
         multi-class lists too *)
      check dewey_list (name ^ " scan_dag native") reference
        (Scan_dag.compute (dag_of dagged) ids))
    queries

let test_engines_equivalent () =
  List.iter
    (fun (name, doc) ->
      let flat, dagged = both_builds doc in
      assert_queries_equal name flat dagged (query_mix flat))
    (Lazy.force corpora)

(* The dispatch gate must have fired at least once across the rare-pair
   queries above — otherwise the native kernel is dead code in CI. *)
let test_native_dispatch_fires () =
  let doc = Xr_data.Figure1.doc () in
  let _, dagged = both_builds doc in
  let before = Scan_dag.native_scans () in
  List.iter
    (fun ids -> ignore (Engine.query_ids Engine.Scan_packed dagged ids))
    (query_mix dagged);
  if Scan_dag.native_scans () = before then
    Alcotest.fail "no query of the figure1 mix took the native dag path"

let test_refinement_equivalent () =
  List.iter
    (fun (name, doc) ->
      let flat, dagged = both_builds doc in
      match keywords_by_frequency flat with
      | k1 :: k2 :: _ ->
        let w = Doc.keyword_name doc in
        List.iter
          (fun query ->
            let a = (Xr_refine.Engine.refine flat query).Xr_refine.Engine.result in
            let b = (Xr_refine.Engine.refine dagged query).Xr_refine.Engine.result in
            check Alcotest.string
              (Printf.sprintf "%s refine {%s}" name (String.concat " " query))
              (Xr_refine.Result.describe flat.Index.doc a)
              (Xr_refine.Result.describe dagged.Index.doc b))
          [
            [ w k1; w k2 ];
            [ w k1; "zzznosuchword" ];
            [ w k1; w k2; "zzznosuchword" ];
          ]
      | _ -> ())
    (Lazy.force corpora)

(* ---- adversarial shapes -------------------------------------------------- *)

let leafs n f = List.init n (fun i -> Tree.Elem (f i))

(* Deep repetition: one subtree pattern repeated at every level — the
   best case for hash-consing (classes ~ depth, nodes ~ width^depth). *)
let deep_repetition () =
  let unit_ = Tree.elem "entry" [ Tree.Elem (Tree.leaf "k" "alpha"); Tree.Elem (Tree.leaf "v" "beta") ] in
  let level1 = Tree.elem "block" (List.init 5 (fun _ -> Tree.Elem unit_)) in
  Tree.elem "root" (List.init 6 (fun _ -> Tree.Elem level1))

let single_node () = Tree.elem "root" [ Tree.Text "lonely" ]

(* All-distinct: no two subtrees equal — the worst case, where the dag
   degenerates to the tree and compression must still be correct. *)
let all_distinct () =
  Tree.elem "root" (leafs 40 (fun i -> Tree.leaf "item" (Printf.sprintf "w%d unique%d" (i mod 7) i)))

let assert_tree_equivalent label tree =
  let doc = Doc.of_tree tree in
  let flat, dagged = both_builds doc in
  assert_lists_identical label flat dagged;
  assert_queries_equal label flat dagged (query_mix flat)

let test_adversarial_fixed () =
  assert_tree_equivalent "deep-repetition" (deep_repetition ());
  assert_tree_equivalent "single-node" (single_node ());
  assert_tree_equivalent "all-distinct" (all_distinct ());
  (* deep repetition must actually compress *)
  let dagged = Index.build ~mode:Index.Dag (Doc.of_tree (deep_repetition ())) in
  let r = Xr_dag.node_dedup_ratio (dag_of dagged) in
  if r > 0.2 then
    Alcotest.failf "deep repetition barely deduped: node ratio %.3f" r

(* Random trees over a tiny vocabulary (so sharing happens), with a bias
   toward duplicated siblings; the seed is the qcheck-shrinkable input
   and the tree is derived deterministically from it. *)
let tree_of_seed seed =
  let st = Random.State.make [| seed |] in
  let words = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon" |] in
  let tags = [| "a"; "b"; "c" |] in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let budget = ref (8 + Random.State.int st 40) in
  let rec node depth =
    decr budget;
    if depth >= 4 || !budget <= 0 || Random.State.int st 3 = 0 then
      Tree.leaf (pick tags) (pick words)
    else begin
      let kids = ref [] in
      let k = 1 + Random.State.int st 3 in
      for _ = 1 to k do
        let child = node (depth + 1) in
        let reps = 1 + Random.State.int st 3 in
        for _ = 1 to reps do
          kids := Tree.Elem child :: !kids
        done
      done;
      Tree.elem (pick tags) (List.rev !kids)
    end
  in
  Tree.elem "root" [ Tree.Elem (node 0) ]

let prop_random_trees =
  QCheck.Test.make ~name:"dag = flat on random repetitive trees" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let doc = Doc.of_tree (tree_of_seed seed) in
      let flat, dagged = both_builds doc in
      assert_lists_identical "random" flat dagged;
      assert_queries_equal "random" flat dagged (query_mix flat);
      true)

(* ---- mode plumbing ------------------------------------------------------- *)

let test_mode_names () =
  check Alcotest.string "flat name" "flat" (Index.mode_name Index.Flat);
  check Alcotest.string "dag name" "dag" (Index.mode_name Index.Dag);
  check Alcotest.bool "of_name flat" true (Index.mode_of_name "flat" = Some Index.Flat);
  check Alcotest.bool "of_name dag" true (Index.mode_of_name "dag" = Some Index.Dag);
  check Alcotest.bool "of_name junk" true (Index.mode_of_name "junk" = None)

let test_compress_round_trip () =
  let doc = Doc.of_tree (Xr_data.Dblp.scaled ~publications:40 ~seed:3) in
  let flat = Index.build ~mode:Index.Flat doc in
  let dagged = Index.compress Index.Dag flat in
  check Alcotest.bool "mode after compress" true (Index.mode dagged = Index.Dag);
  assert_lists_identical "compress->dag" flat dagged;
  let back = Index.compress Index.Flat dagged in
  check Alcotest.bool "mode after expand" true (Index.mode back = Index.Flat);
  assert_lists_identical "compress->flat" flat back;
  (* identity on a matching mode *)
  check Alcotest.bool "compress is identity on same mode" true
    (Index.compress Index.Flat flat == flat);
  (* statistics were rebound, not lost: refinement runs end to end *)
  assert_queries_equal "compress" flat dagged (query_mix flat)

let test_append_partition_dag () =
  let full_tree = Xr_data.Dblp.scaled ~publications:24 ~seed:5 in
  let children = Tree.element_children full_tree in
  let first, rest =
    (List.filteri (fun i _ -> i < 8) children, List.filteri (fun i _ -> i >= 8) children)
  in
  let base = Tree.elem full_tree.Tree.tag (List.map (fun c -> Tree.Elem c) first) in
  let flat =
    List.fold_left
      (fun idx pub -> Index.append_partition idx pub)
      (Index.build ~mode:Index.Flat (Doc.of_tree base))
      rest
  in
  let dagged =
    List.fold_left
      (fun idx pub -> Index.append_partition idx pub)
      (Index.build ~mode:Index.Dag (Doc.of_tree base))
      rest
  in
  check Alcotest.bool "append keeps dag backing" true (Index.mode dagged = Index.Dag);
  assert_lists_identical "append" flat dagged;
  assert_queries_equal "append" flat dagged (query_mix flat)

let test_save_load_dag () =
  let doc = Doc.of_tree (Xr_data.Dblp.scaled ~publications:30 ~seed:11) in
  let flat = Index.build ~mode:Index.Flat doc in
  let dagged = Index.build ~mode:Index.Dag doc in
  (* saving a dag index stores the flat lists; loading with ~mode:Dag
     re-derives the compression *)
  let kv = Xr_store.Kv.memory () in
  Index.save dagged kv;
  let reloaded = Index.load ~mode:Index.Dag kv in
  check Alcotest.bool "reloaded as dag" true (Index.mode reloaded = Index.Dag);
  assert_lists_identical "save/load dag" flat reloaded;
  assert_queries_equal "save/load dag" flat reloaded (query_mix flat);
  let reflat = Index.load ~mode:Index.Flat kv in
  check Alcotest.bool "reloaded as flat" true (Index.mode reflat = Index.Flat);
  assert_lists_identical "save/load flat" flat reflat

let () =
  Alcotest.run "dag"
    [
      ( "structure",
        [
          Alcotest.test_case "stats invariants" `Quick test_stats_invariants;
          Alcotest.test_case "merged lists byte-identical" `Quick test_merge_byte_identical;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "engines flat = dag (all corpora)" `Quick test_engines_equivalent;
          Alcotest.test_case "native dispatch fires" `Quick test_native_dispatch_fires;
          Alcotest.test_case "refinement flat = dag" `Quick test_refinement_equivalent;
          Alcotest.test_case "adversarial shapes" `Quick test_adversarial_fixed;
          qcheck prop_random_trees;
        ] );
      ( "modes",
        [
          Alcotest.test_case "mode names" `Quick test_mode_names;
          Alcotest.test_case "compress round trip" `Quick test_compress_round_trip;
          Alcotest.test_case "append partition (dag)" `Quick test_append_partition_dag;
          Alcotest.test_case "save/load (dag)" `Quick test_save_load_dag;
        ] );
    ]
