(* Observability: Prometheus exposition invariants (escaping, label
   ordering, histogram cumulativity), registry semantics (idempotent
   registration, shard aggregation = single-shard totals under
   multi-domain updates), and span-tree well-formedness for traced
   parallel queries at pool sizes 1 and 4. *)

module Registry = Xr_obs.Registry
module Expo = Xr_obs.Expo
module Tracing = Xr_obs.Tracing
module Parallel = Xr_slca.Parallel
module P = Xr_xml.Dewey.Packed

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let contains hay needle =
  let n = String.length needle and len = String.length hay in
  let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* ---- exposition: escaping ------------------------------------------------- *)

let test_escaping () =
  check Alcotest.string "label backslash" {|a\\b|} (Expo.escape_label_value {|a\b|});
  check Alcotest.string "label quote" {|say \"hi\"|} (Expo.escape_label_value {|say "hi"|});
  check Alcotest.string "label newline" {|line1\nline2|}
    (Expo.escape_label_value "line1\nline2");
  check Alcotest.string "label mixed" {|\\\"\n|} (Expo.escape_label_value "\\\"\n");
  check Alcotest.string "help keeps quotes" {|a "b" c\\d\ne|}
    (Expo.escape_help "a \"b\" c\\d\ne");
  (* Escaped values round out to a well-formed sample line. *)
  let reg = Registry.create () in
  let fam =
    Registry.Counter.family ~registry:reg ~name:"esc_total" ~help:"escape probe"
      ~label_names:[ "v" ] ()
  in
  Registry.Counter.add (Registry.Counter.handle fam [ "q\"nl\nbs\\end" ]) 7;
  let text = Expo.render reg in
  check Alcotest.bool "rendered sample escapes all three" true
    (contains text {|esc_total{v="q\"nl\nbs\\end"} 7|})

(* ---- exposition: label and family ordering -------------------------------- *)

let test_label_ordering () =
  let reg = Registry.create () in
  (* Declaration order of label names must survive into the output even
     when it is not alphabetical. *)
  let fam =
    Registry.Counter.family ~registry:reg ~name:"ord_total" ~help:"ordering probe"
      ~label_names:[ "zeta"; "alpha" ] ()
  in
  Registry.Counter.inc (Registry.Counter.handle fam [ "z1"; "a1" ]);
  Registry.Counter.inc (Registry.Counter.handle fam [ "z2"; "a2" ]);
  let gauge =
    Registry.Gauge.family ~registry:reg ~name:"ord_gauge" ~help:"second family" ()
  in
  Registry.Gauge.set (Registry.Gauge.no_labels gauge) 2.5;
  let text = Expo.render reg in
  check Alcotest.bool "zeta printed before alpha" true
    (contains text {|ord_total{zeta="z1",alpha="a1"} 1|});
  check Alcotest.bool "second series same order" true
    (contains text {|ord_total{zeta="z2",alpha="a2"} 1|});
  (* Families render in registration order: counter block before gauge. *)
  let index_of needle =
    let n = String.length needle and len = String.length text in
    let rec go i =
      if i + n > len then Alcotest.failf "%s not rendered" needle
      else if String.sub text i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  check Alcotest.bool "counter family before gauge family" true
    (index_of "ord_total" < index_of "ord_gauge");
  check Alcotest.bool "TYPE lines present" true
    (contains text "# TYPE ord_total counter" && contains text "# TYPE ord_gauge gauge")

(* ---- exposition: histogram ------------------------------------------------ *)

let test_histogram_exposition () =
  let reg = Registry.create () in
  let fam =
    Registry.Histogram.family ~registry:reg ~name:"h_ms" ~help:"histogram probe"
      ~buckets:[| 1.; 5.; 10. |] ()
  in
  let h = Registry.Histogram.no_labels fam in
  List.iter (Registry.Histogram.observe h) [ 0.5; 3.; 3.; 7.5; 100. ];
  (* Raw counts: [0.5] [3 3] [7.5] [100] *)
  check Alcotest.(array int) "raw per-bucket counts" [| 1; 2; 1; 1 |]
    (Registry.Histogram.raw_counts h);
  let cum = Registry.Histogram.cumulative_counts h in
  check Alcotest.(array int) "cumulative counts" [| 1; 3; 4; 5 |] cum;
  Array.iteri
    (fun i c -> if i > 0 then check Alcotest.bool "monotone" true (c >= cum.(i - 1)))
    cum;
  check Alcotest.int "count = +inf bucket" 5 (Registry.Histogram.count h);
  check (Alcotest.float 1e-6) "sum" 114.0 (Registry.Histogram.sum h);
  let text = Expo.render reg in
  check Alcotest.bool "TYPE histogram" true (contains text "# TYPE h_ms histogram");
  List.iter
    (fun line -> check Alcotest.bool line true (contains text line))
    [
      {|h_ms_bucket{le="1"} 1|};
      {|h_ms_bucket{le="5"} 3|};
      {|h_ms_bucket{le="10"} 4|};
      {|h_ms_bucket{le="+Inf"} 5|};
      {|h_ms_sum 114|};
      {|h_ms_count 5|};
    ]

(* ---- registry: idempotent registration ------------------------------------ *)

let test_idempotent_registration () =
  let reg = Registry.create () in
  let f1 = Registry.Counter.family ~registry:reg ~name:"dup_total" ~help:"one" () in
  Registry.Counter.inc (Registry.Counter.no_labels f1);
  (* Same name+kind+labels: the same family comes back, values shared. *)
  let f2 = Registry.Counter.family ~registry:reg ~name:"dup_total" ~help:"one" () in
  Registry.Counter.inc (Registry.Counter.no_labels f2);
  check Alcotest.int "shared series" 2 (Registry.Counter.value (Registry.Counter.no_labels f1));
  (* Kind or label mismatch is a programming error. *)
  (match Registry.Gauge.family ~registry:reg ~name:"dup_total" ~help:"one" () with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  match Registry.Counter.family ~registry:reg ~name:"dup_total" ~help:"one"
          ~label_names:[ "x" ] ()
  with
  | _ -> Alcotest.fail "label mismatch must raise"
  | exception Invalid_argument _ -> ()

(* ---- registry: shard aggregation = single shard --------------------------- *)

type op = Inc of int | Add of int * int | Obs of int * float

let labels = [| "a"; "b"; "c" |]

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (frequency
         [
           (3, map (fun l -> Inc l) (int_bound 2));
           (2, map2 (fun l n -> Add (l, n)) (int_bound 2) (int_range 0 50));
           (3, map2 (fun l v -> Obs (l, v)) (int_bound 2) (float_range 0. 25.));
         ]))

let arb_ops =
  let print ops = Printf.sprintf "%d ops" (List.length ops) in
  QCheck.make ~print gen_ops

(* Apply the same op list to a registry, spread over 4 domains (so the
   16-shard registry really does scatter across shard cells), and read
   back per-label totals. *)
let apply_and_read ~shards ops =
  let reg = Registry.create ~shards () in
  let cf =
    Registry.Counter.family ~registry:reg ~name:"p_total" ~help:"p" ~label_names:[ "l" ] ()
  in
  let hf =
    Registry.Histogram.family ~registry:reg ~name:"p_ms" ~help:"p" ~label_names:[ "l" ]
      ~buckets:[| 1.; 5.; 10. |] ()
  in
  let ch l = Registry.Counter.handle cf [ labels.(l) ] in
  let hh l = Registry.Histogram.handle hf [ labels.(l) ] in
  let arr = Array.of_list ops in
  let worker d () =
    Array.iteri
      (fun i opv ->
        if i mod 4 = d then
          match opv with
          | Inc l -> Registry.Counter.inc (ch l)
          | Add (l, n) -> Registry.Counter.add (ch l) n
          | Obs (l, v) -> Registry.Histogram.observe (hh l) v)
      arr
  in
  let doms = Array.init 4 (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join doms;
  Array.to_list
    (Array.init 3 (fun l ->
         ( Registry.Counter.value (ch l),
           Registry.Histogram.raw_counts (hh l),
           Registry.Histogram.sum (hh l) )))

let prop_shard_aggregation =
  QCheck.Test.make ~name:"sharded totals = single-shard totals" ~count:30 arb_ops
    (fun ops ->
      let sharded = apply_and_read ~shards:16 ops in
      let single = apply_and_read ~shards:1 ops in
      List.for_all2
        (fun (c1, rc1, s1) (c2, rc2, s2) ->
          c1 = c2 && rc1 = rc2 && Float.abs (s1 -. s2) < 1e-9)
        sharded single)

(* ---- span trees under pool sizes 1 and 4 ---------------------------------- *)

let well_formed_spans domains () =
  let old_threshold = Parallel.threshold () in
  Tracing.enable ();
  Tracing.clear ();
  Xr_pool.reset_global ~domains ();
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_threshold old_threshold;
      Tracing.disable ();
      Xr_pool.reset_global ~domains:1 ())
    (fun () ->
      Parallel.set_threshold 0;
      (* Both lists are long: the shortest list becomes the driver, and
         the driver range is what gets chunked over the pool. *)
      let list_a = List.init 512 (fun i -> [| 1; i |]) in
      let list_b = List.init 512 (fun i -> [| 1; i; 0 |]) in
      let pks = List.map P.of_list [ list_a; list_b ] in
      let sequential = Xr_slca.Scan_packed.compute pks in
      let result, tid =
        Tracing.with_trace "query" (fun () ->
            Tracing.with_span "slca.scan" (fun () -> Parallel.compute ~chunks:8 pks))
      in
      check Alcotest.bool "traced result = sequential" true
        (List.equal Xr_xml.Dewey.equal result sequential);
      check Alcotest.bool "trace id assigned" true (tid > 0);
      let spans = Tracing.spans_of_trace tid in
      check Alcotest.bool "spans recorded" true (List.length spans >= 1);
      let module IS = Set.Make (Int) in
      let ids = List.map (fun (s : Tracing.span) -> s.Tracing.span_id) spans in
      check Alcotest.int "span ids unique" (List.length ids) (IS.cardinal (IS.of_list ids));
      let id_set = IS.of_list ids in
      let roots =
        List.filter (fun (s : Tracing.span) -> s.Tracing.parent_id = 0) spans
      in
      check Alcotest.int "exactly one root" 1 (List.length roots);
      let root = List.hd roots in
      check Alcotest.string "root name" "query" root.Tracing.name;
      List.iter
        (fun (s : Tracing.span) ->
          check Alcotest.int "same trace" tid s.Tracing.trace_id;
          if s.Tracing.parent_id <> 0 then
            check Alcotest.bool "parent recorded" true (IS.mem s.Tracing.parent_id id_set))
        spans;
      (* Time containment: every non-root span lies within the root. *)
      let fin (s : Tracing.span) = Int64.add s.Tracing.start_ns s.Tracing.dur_ns in
      List.iter
        (fun (s : Tracing.span) ->
          check Alcotest.bool "starts after root" true
            (Int64.compare root.Tracing.start_ns s.Tracing.start_ns <= 0);
          check Alcotest.bool "ends before root" true (Int64.compare (fin s) (fin root) <= 0))
        spans;
      (* The forest view reconnects every span under the single root. *)
      let forest = Tracing.tree_of_spans spans in
      let rec count (t : Tracing.tree) =
        1 + List.fold_left (fun acc c -> acc + count c) 0 t.Tracing.children
      in
      check Alcotest.int "one tree" 1 (List.length forest);
      check Alcotest.int "tree spans all spans" (List.length spans)
        (count (List.hd forest));
      if domains >= 2 then begin
        (* Fan-out really happened: pool.task spans from worker domains
           attach to this trace, and the parallel merge is accounted. *)
        let names = List.map (fun (s : Tracing.span) -> s.Tracing.name) spans in
        check Alcotest.bool "pool.task spans present" true (List.mem "pool.task" names);
        check Alcotest.bool "slca.merge span present" true (List.mem "slca.merge" names)
      end;
      (* The rendered tree carries the stage-coverage summary line. *)
      let rendered = Tracing.render_tree spans in
      check Alcotest.bool "render has summary" true (contains rendered "ms total"))

(* ---- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "exposition",
        [
          Alcotest.test_case "escaping" `Quick test_escaping;
          Alcotest.test_case "label ordering" `Quick test_label_ordering;
          Alcotest.test_case "histogram" `Quick test_histogram_exposition;
        ] );
      ( "registry",
        [
          Alcotest.test_case "idempotent registration" `Quick test_idempotent_registration;
          qcheck prop_shard_aggregation;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "span tree, pool size 1" `Quick (well_formed_spans 1);
          Alcotest.test_case "span tree, pool size 4" `Quick (well_formed_spans 4);
        ] );
    ]
