(* Packed posting lists: Dewey.Packed encoding invariants, packed cursors,
   the packed index views, and the headline property — the packed SLCA
   kernels return byte-identical result lists to the reference kernels. *)

open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed
module Inverted = Xr_index.Inverted
module Index = Xr_index.Index
module Engine = Xr_slca.Engine

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- generators --------------------------------------------------------- *)

let gen_label =
  QCheck.Gen.(
    list_size (int_bound 6)
      (frequency [ (6, int_bound 5); (2, int_bound 300); (1, int_bound 100_000) ])
    |> map Array.of_list)

let gen_sorted_labels =
  QCheck.Gen.(
    list_size (int_range 1 40) gen_label |> map (fun l -> List.sort_uniq Dewey.compare l))

let arb_sorted_labels =
  QCheck.make
    ~print:(fun l -> String.concat " " (List.map Dewey.to_string l))
    gen_sorted_labels

(* ---- Dewey.Packed ------------------------------------------------------- *)

let test_roundtrip () =
  let labels = [| [||]; [| 0 |]; [| 0; 1 |]; [| 127 |]; [| 128 |]; [| 300; 70000; 2 |] |] in
  let pk = P.of_array labels in
  check Alcotest.int "length" (Array.length labels) (P.length pk);
  check Alcotest.int "max depth" 3 (P.max_depth pk);
  Array.iteri
    (fun i l ->
      check (Alcotest.testable Dewey.pp Dewey.equal) "get" l (P.get pk i);
      check Alcotest.int "depth_at" (Array.length l) (P.depth_at pk i))
    labels;
  check Alcotest.bool "to_array" true (Array.for_all2 Dewey.equal labels (P.to_array pk));
  let scratch = Array.make (P.max_depth pk) 0 in
  Array.iteri
    (fun i l ->
      let d = P.blit_entry pk i scratch in
      check Alcotest.int "blit depth" (Array.length l) d;
      check Alcotest.bool "blit content" true (Array.sub scratch 0 d = l))
    labels

let test_empty () =
  check Alcotest.int "empty length" 0 (P.length P.empty);
  check Alcotest.int "empty bytes" 0 (P.byte_size P.empty);
  check Alcotest.bool "empty to_array" true (P.to_array P.empty = [||])

let test_raw_validation () =
  let pk = P.of_list [ [| 1 |]; [| 1; 2 |] ] in
  let buf, offsets, max_depth = P.to_raw pk in
  let back = P.of_raw ~buf ~offsets ~max_depth in
  check Alcotest.bool "raw round-trip" true
    (Array.for_all2 Dewey.equal (P.to_array pk) (P.to_array back));
  Alcotest.check_raises "bad span" (Invalid_argument
      "Dewey.Packed.of_raw: offsets table does not span the buffer")
    (fun () -> ignore (P.of_raw ~buf ~offsets:[| 0; 1 |] ~max_depth));
  Alcotest.check_raises "not monotone" (Invalid_argument
      "Dewey.Packed.of_raw: offsets table is not monotone")
    (fun () ->
      ignore (P.of_raw ~buf ~offsets:[| 0; 3; 2; String.length buf |] ~max_depth:2))

let prop_compare_consistent =
  QCheck.Test.make ~name:"packed compare/prefix agree with Dewey" ~count:300
    (QCheck.pair arb_sorted_labels (QCheck.make ~print:Dewey.to_string gen_label))
    (fun (labels, v) ->
      let pk = P.of_list labels in
      List.for_all
        (fun (i, l) ->
          let sign x = Int.compare x 0 in
          let r = P.compare_prefix_sub pk i v (Array.length v) in
          sign (P.compare_label pk i v) = sign (Dewey.compare l v)
          && P.common_prefix_len_label pk i v = Dewey.common_prefix_len l v
          && (r land 3) - 1 = sign (Dewey.compare l v)
          && r lsr 2 = Dewey.common_prefix_len l v)
        (List.mapi (fun i l -> (i, l)) labels))

let prop_lower_bound =
  QCheck.Test.make ~name:"packed lower_bound = naive scan" ~count:300
    (QCheck.pair arb_sorted_labels (QCheck.make ~print:Dewey.to_string gen_label))
    (fun (labels, v) ->
      let pk = P.of_list labels in
      let arr = Array.of_list labels in
      let naive =
        let n = Array.length arr in
        let rec go i = if i < n && Dewey.compare arr.(i) v < 0 then go (i + 1) else i in
        go 0
      in
      P.lower_bound pk ~lo:0 v = naive)

let prop_compare_entries =
  QCheck.Test.make ~name:"packed compare_entries = Dewey.compare" ~count:200 arb_sorted_labels
    (fun labels ->
      let pk = P.of_list labels in
      let arr = Array.of_list labels in
      let n = Array.length arr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let sign x = Int.compare x 0 in
          if sign (P.compare_entries pk i pk j) <> sign (Dewey.compare arr.(i) arr.(j)) then
            ok := false
        done
      done;
      !ok)

(* ---- Cursor.Packed ------------------------------------------------------ *)

let test_cursor_basics () =
  let pk = P.of_list [ [| 0 |]; [| 0; 1 |]; [| 2 |]; [| 2; 0; 1 |]; [| 5 |] ] in
  let c = PC.make pk in
  check Alcotest.int "start" 0 (PC.position c);
  PC.advance c;
  check Alcotest.int "advanced" 1 (PC.position c);
  check Alcotest.int "seq counter" 1 (PC.sequential_accesses c);
  PC.seek_geq c [| 2; 0 |];
  check Alcotest.int "seek lands" 3 (PC.position c);
  check Alcotest.int "rand counter" 1 (PC.random_accesses c);
  (* seeks never move backward *)
  PC.seek_geq c [| 0 |];
  check Alcotest.int "no backward" 3 (PC.position c);
  PC.seek_geq c [| 9 |];
  check Alcotest.bool "exhausted" true (PC.at_end c)

let test_match_probe () =
  (* against the boxed reference: closest + deepest_prefix_depth *)
  let labels = [ [| 0 |]; [| 0; 1 |]; [| 0; 1; 4 |]; [| 2; 3 |]; [| 2; 5 |]; [| 7 |] ] in
  let arr =
    Array.of_list (List.map (fun d -> { Inverted.dewey = d; path = 0 }) labels)
  in
  let pk = P.of_list labels in
  List.iter
    (fun (v : Dewey.t) ->
      let c = PC.make pk in
      let expected =
        Xr_slca.Slca_common.deepest_prefix_depth v (Xr_slca.Slca_common.closest arr 0 v)
      in
      check Alcotest.int
        (Printf.sprintf "probe %s" (Dewey.to_string v))
        expected
        (PC.match_probe c v (Array.length v)))
    [ [| 0 |]; [| 0; 1; 2 |]; [| 1 |]; [| 2; 4 |]; [| 7 |]; [| 8; 8 |] ]

let prop_match_probe =
  QCheck.Test.make ~name:"match_probe = closest+deepest_prefix_depth" ~count:300
    (QCheck.pair arb_sorted_labels
       (QCheck.make
          ~print:(fun l -> String.concat " " (List.map Dewey.to_string l))
          QCheck.Gen.(list_size (int_range 1 15) gen_label |> map (List.sort Dewey.compare))))
    (fun (labels, probes) ->
      let pk = P.of_list labels in
      let arr =
        Array.of_list (List.map (fun d -> { Inverted.dewey = d; path = 0 }) labels)
      in
      let c = PC.make pk in
      (* probes ascend, like a scan driver, so the cursor resumes; because
         everything before the resume point stays below the next probe,
         the from-scratch [closest arr 0] model gives the same brackets *)
      List.for_all
        (fun v ->
          let expected =
            Xr_slca.Slca_common.deepest_prefix_depth v (Xr_slca.Slca_common.closest arr 0 v)
          in
          PC.match_probe c v (Array.length v) = expected)
        probes)

(* ---- packed index views -------------------------------------------------- *)

let test_inverted_views () =
  let index = Index.build (Xr_data.Figure1.doc ()) in
  let inv = index.Index.inverted in
  Inverted.iter_packed
    (fun kw pk ->
      let legacy = Inverted.list inv kw in
      check Alcotest.int "lengths agree" (Array.length legacy) (Inverted.packed_postings pk);
      Array.iteri
        (fun i (p : Inverted.posting) ->
          check Alcotest.bool "labels agree" true (Dewey.equal p.Inverted.dewey (P.get pk.Inverted.labels i));
          check Alcotest.int "paths agree" p.Inverted.path pk.Inverted.paths.(i))
        legacy;
      check Alcotest.bool "bytes accounted" true
        (Inverted.packed_bytes pk >= Inverted.packed_label_bytes pk))
    inv

(* ---- the satellite property: packed kernels == reference kernels --------- *)

let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let word = oneofl [ "x"; "y"; "z"; "w" ] in
  let rec node depth =
    if depth = 0 then map2 Tree.leaf tag word
    else
      frequency
        [
          (1, map2 Tree.leaf tag word);
          ( 2,
            (fun st ->
              let tg = tag st in
              let w = word st in
              let children = list_size (int_bound 4) (node (depth - 1)) st in
              Tree.elem tg (Tree.Text w :: List.map (fun c -> Tree.Elem c) children)) );
        ]
  in
  node 3

let arb_doc_query =
  QCheck.make
    ~print:(fun (t, q) -> Xr_xml.Printer.to_string t ^ "\nquery: " ^ String.concat "," q)
    QCheck.Gen.(
      pair gen_doc
        (list_size (int_range 1 4) (oneofl [ "x"; "y"; "z"; "w"; "a"; "b"; "c" ])))

let prop_packed_equals_reference =
  QCheck.Test.make
    ~name:"packed kernels byte-identical to reference on random docs" ~count:400 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let pairs =
        [ (Engine.Scan_eager, Engine.Scan_packed); (Engine.Stack, Engine.Stack_packed) ]
      in
      List.for_all
        (fun (reference, packed) ->
          List.equal Dewey.equal
            (Engine.query reference index query)
            (Engine.query packed index query))
        pairs)

let prop_packed_roundtrip_store =
  QCheck.Test.make ~name:"packed lists survive save/load byte-identically" ~count:60 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let kv = Xr_store.Kv.memory () in
      Index.save index kv;
      let reloaded = Index.load kv in
      List.for_all
        (fun alg ->
          List.equal Dewey.equal (Engine.query alg index query)
            (Engine.query alg reloaded query))
        [ Engine.Scan_packed; Engine.Stack_packed ])

let () =
  Alcotest.run "xr_packed"
    [
      ( "dewey-packed",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "raw validation" `Quick test_raw_validation;
          qcheck prop_compare_consistent;
          qcheck prop_lower_bound;
          qcheck prop_compare_entries;
        ] );
      ( "cursor-packed",
        [
          Alcotest.test_case "basics" `Quick test_cursor_basics;
          Alcotest.test_case "match probe" `Quick test_match_probe;
          qcheck prop_match_probe;
        ] );
      ("inverted", [ Alcotest.test_case "packed = legacy views" `Quick test_inverted_views ]);
      ( "kernels",
        [ qcheck prop_packed_equals_reference; qcheck prop_packed_roundtrip_store ] );
    ]
