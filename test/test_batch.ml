(* Batched execution: the bitsliced prefix filter against its per-entry
   reference, the tiny-driver kernel against the general scan, shared
   driver passes against one-at-a-time execution (pool sizes 1 and 4),
   compiled plans against the uncompiled engine (byte-compared through
   the served payloads), plan-cache hit/eviction/single-flight
   behaviour and its generation-keyed invalidation across an ingest
   publish, and the single-flight coalescer's leader/follower
   contract. *)

open Xr_xml
module P = Dewey.Packed
module Bitslice = Xr_index.Bitslice
module Scan_packed = Xr_slca.Scan_packed
module Shared_scan = Xr_slca.Shared_scan
module Slca_engine = Xr_slca.Engine
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Rengine = Xr_refine.Engine
module Plan = Xr_batch.Plan
module Plan_cache = Xr_batch.Plan_cache
module Coalesce = Xr_batch.Coalesce
module Api = Xr_server.Api
module Json = Xr_server.Json
module Http = Xr_server.Http
module Server = Xr_server.Server

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- generators (same shapes as test_parallel) --------------------------- *)

let gen_label =
  QCheck.Gen.(
    list_size (int_bound 6)
      (frequency [ (6, int_bound 5); (2, int_bound 300); (1, int_bound 100_000) ])
    |> map Array.of_list)

let gen_sorted_labels =
  QCheck.Gen.(
    list_size (int_range 1 60) gen_label |> map (fun l -> List.sort_uniq Dewey.compare l))

let print_lists lists =
  String.concat "; "
    (List.map (fun l -> String.concat " " (List.map Dewey.to_string l)) lists)

(* ---- bitslice ------------------------------------------------------------ *)

let selected mask =
  let acc = ref [] in
  Bitslice.iter mask (fun i -> acc := i :: !acc);
  List.rev !acc

let arb_bitslice_case =
  let gen =
    QCheck.Gen.(
      gen_sorted_labels >>= fun labels ->
      let n = List.length labels in
      int_range 0 n >>= fun lo ->
      int_range lo n >>= fun hi ->
      (* half the time probe a prefix taken from a real entry, so the
         selection is frequently nonempty *)
      oneof
        [
          map Array.of_list (list_size (int_bound 3) (int_bound 5));
          ( int_bound (max 0 (n - 1)) >>= fun i ->
            let l = List.nth labels i in
            int_bound (Array.length l) >>= fun plen -> return (Array.sub l 0 plen) );
        ]
      >>= fun prefix -> return (labels, lo, hi, prefix))
  in
  let print (labels, lo, hi, prefix) =
    Printf.sprintf "lo=%d hi=%d prefix=[%s] labels=[%s]" lo hi
      (String.concat ";" (Array.to_list (Array.map string_of_int prefix)))
      (print_lists [ labels ])
  in
  QCheck.make ~print gen

let prop_bitslice_eq_probed =
  QCheck.Test.make ~name:"bitsliced prefix filter = per-entry probe" ~count:500
    arb_bitslice_case (fun (labels, lo, hi, prefix) ->
      let pk = P.of_list labels in
      let plen = Array.length prefix in
      let fast = Bitslice.under pk ~lo ~hi ~prefix ~plen in
      let slow = Bitslice.under_probed pk ~lo ~hi ~prefix ~plen in
      selected fast = selected slow
      && Bitslice.cardinal fast = Bitslice.cardinal slow
      && List.for_all (fun i -> Bitslice.mem fast i) (selected fast))

let test_bitslice_words () =
  (* > 63 entries under one prefix: interior mask words are stored as
     single all-ones writes and [iter] dispatches them without per-bit
     tests — make sure the word-granular paths agree with reality. *)
  let labels =
    List.init 200 (fun i -> [| 1; i |]) @ List.init 10 (fun i -> [| 2; i |])
  in
  let pk = P.of_list (List.sort_uniq Dewey.compare labels) in
  let n = P.length pk in
  let mask = Bitslice.under pk ~lo:0 ~hi:n ~prefix:[| 1 |] ~plen:1 in
  check Alcotest.int "cardinal" 200 (Bitslice.cardinal mask);
  check Alcotest.(list int) "selected indices" (List.init 200 (fun i -> i)) (selected mask);
  let empty = Bitslice.under pk ~lo:0 ~hi:n ~prefix:[| 7 |] ~plen:1 in
  check Alcotest.int "disjoint prefix selects nothing" 0 (Bitslice.cardinal empty);
  let all = Bitslice.under pk ~lo:3 ~hi:50 ~prefix:[||] ~plen:0 in
  check Alcotest.int "empty prefix selects the whole range" 47 (Bitslice.cardinal all)

(* ---- tiny kernel = general kernel ---------------------------------------- *)

let arb_lists =
  QCheck.make
    ~print:(fun l -> print_lists l)
    QCheck.Gen.(list_size (int_range 2 4) gen_sorted_labels)

let prop_tiny_eq_chunk =
  QCheck.Test.make ~name:"tiny-driver kernel = general scan kernel" ~count:300 arb_lists
    (fun lists ->
      let ranges = List.map (fun l -> let pk = P.of_list l in (pk, 0, P.length pk)) lists in
      match Scan_packed.sort_by_length ranges with
      | driver :: others ->
        List.equal Dewey.equal
          (Scan_packed.scan_tiny ~driver ~others ())
          (Scan_packed.scan_chunk ~driver ~others ())
      | [] -> true)

let test_tiny_dispatch_counted () =
  let before = Scan_packed.tiny_scans () in
  let pks = List.map P.of_list [ [ [| 1; 1 |]; [| 1; 2 |] ]; [ [| 1 |] ] ] in
  let r = Scan_packed.compute pks in
  check Alcotest.bool "tiny scan counted" true (Scan_packed.tiny_scans () > before);
  check Alcotest.(list string) "result" [ "0.1" ] (List.map Dewey.to_string r)

(* ---- shared scans = one-at-a-time ---------------------------------------- *)

let shared_pool = lazy (Xr_pool.create ~domains:4 ())

(* Batches share physical lists across queries (the coalescing case) on
   top of random private ones. *)
let arb_batch =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 3) gen_sorted_labels >>= fun commons ->
      let commons = List.map P.of_list commons in
      list_size (int_range 1 6)
        (list_size (int_range 0 2) gen_sorted_labels >>= fun privates ->
         let privates = List.map P.of_list privates in
         oneofl [ [] ] >>= fun _ ->
         int_range 0 (List.length commons) >>= fun take ->
         let rec firstn n = function
           | x :: rest when n > 0 -> x :: firstn (n - 1) rest
           | _ -> []
         in
         return (firstn take commons @ privates)))
  in
  QCheck.make
    ~print:(fun batch ->
      String.concat " || "
        (List.map
           (fun q ->
             print_lists
               (List.map (fun pk -> List.init (P.length pk) (P.get pk)) q))
           batch))
    gen

let batch_queries batch =
  List.map (List.map (fun pk -> (pk, 0, P.length pk))) batch

let prop_run_batch_eq_solo pool_size =
  QCheck.Test.make
    ~name:(Printf.sprintf "run_batch = per-query scans, pool size %d" pool_size)
    ~count:200 arb_batch (fun batch ->
      let queries = batch_queries batch in
      let solo = List.map Scan_packed.compute_ranges queries in
      let pool =
        if pool_size = 1 then Xr_pool.create ~domains:1 () else Lazy.force shared_pool
      in
      let batched = Shared_scan.run_batch ~pool queries in
      if pool_size = 1 then Xr_pool.shutdown pool;
      List.equal (List.equal Dewey.equal) solo batched)

let prop_run_batch_chunked_eq_solo =
  QCheck.Test.make ~name:"run_batch with forced chunking = per-query scans" ~count:200
    arb_batch (fun batch ->
      let queries = batch_queries batch in
      let solo = List.map Scan_packed.compute_ranges queries in
      List.for_all
        (fun chunks ->
          List.equal (List.equal Dewey.equal) solo
            (Shared_scan.run_batch ~pool:(Lazy.force shared_pool) ~chunks queries))
        [ 2; 3; 5 ])

let test_run_batch_root_mask () =
  (* Two queries scoped to the [2] subtree of a shared driver list: the
     grouped pass must take the masked full-list path (the driver range
     equals the prefix slice) and still return the per-query results. *)
  let driver_labels =
    List.init 30 (fun i -> [| 1; i |])
    @ List.init 40 (fun i -> [| 2; i |])
    @ List.init 30 (fun i -> [| 3; i |])
  in
  let driver = P.of_list driver_labels in
  let lo, hi = P.prefix_slice_sub driver ~lo:0 [| 2 |] 1 in
  check Alcotest.bool "slice found" true (hi - lo = 40);
  (* partners strictly longer than the driver slice, so the shared
     driver really is the rarest list of both queries and the grouper
     coalesces them *)
  let partner1 = P.of_list (List.init 50 (fun i -> [| 2; i; 1 |])) in
  let partner2 = P.of_list (List.init 45 (fun i -> [| 2; i; 2 |])) in
  let q1 = [ (driver, lo, hi); (partner1, 0, P.length partner1) ] in
  let q2 = [ (driver, lo, hi); (partner2, 0, P.length partner2) ] in
  let before = Shared_scan.batches () in
  let batched = Shared_scan.run_batch ~root:[| 2 |] [ q1; q2 ] in
  let solo = List.map Scan_packed.compute_ranges [ q1; q2 ] in
  check Alcotest.bool "one shared pass ran" true (Shared_scan.batches () > before);
  check Alcotest.bool "masked batch = solo" true
    (List.equal (List.equal Dewey.equal) solo batched);
  (* a root that does not bound the range must be ignored, not trusted *)
  let wrong = Shared_scan.run_batch ~root:[| 1 |] [ q1; q2 ] in
  check Alcotest.bool "mismatched root hint ignored" true
    (List.equal (List.equal Dewey.equal) solo wrong)

let test_run_batch_disabled () =
  let queries =
    batch_queries
      [ [ P.of_list [ [| 1; 1 |]; [| 2 |] ]; P.of_list [ [| 1 |] ] ] ]
  in
  Shared_scan.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Shared_scan.set_enabled true)
    (fun () ->
      check Alcotest.bool "disabled path = solo" true
        (List.equal (List.equal Dewey.equal)
           (List.map Scan_packed.compute_ranges queries)
           (Shared_scan.run_batch queries)))

(* ---- compiled plans = uncompiled engine ---------------------------------- *)

let top2 (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  match
    List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc
    |> List.map (fun (kw, _) -> Doc.keyword_name index.Index.doc kw)
  with
  | k1 :: k2 :: _ -> (k1, k2)
  | _ -> Alcotest.fail "corpus has fewer than two keywords"

let plan_corpora =
  lazy
    [
      ("figure1", Index.build (Xr_data.Figure1.doc ()));
      ("dblp", Index.build (Doc.of_tree (Xr_data.Dblp.scaled ~publications:120 ~seed:42)));
    ]

let test_plan_search_eq_engine () =
  List.iter
    (fun (cname, index) ->
      let k1, k2 = top2 index in
      List.iter
        (fun slca ->
          let config = { Rengine.default_config with Rengine.slca } in
          List.iter
            (fun query ->
              let plan = Plan.compile_search ~config index query in
              check Alcotest.bool
                (Printf.sprintf "%s/%s {%s}" cname (Slca_engine.name slca)
                   (String.concat " " query))
                true
                (List.equal Dewey.equal
                   (Rengine.search ~config index query)
                   (Plan.run_search ~config plan index)))
            [
              [ k1; k2 ]; [ k1 ]; [ k2; k1; k2 ]; [ "zzznope" ]; [ k1; "zzznope" ]; [];
            ])
        [
          Slca_engine.Scan_parallel;
          Slca_engine.Scan_packed;
          Slca_engine.Stack_packed;
          Slca_engine.Scan_eager;
        ])
    (Lazy.force plan_corpora)

let test_plan_search_tiny_forced () =
  (* With the tiny threshold maxed every scan-family plan compiles to
     the [Tiny] shape; results must not move. *)
  let old = Scan_packed.tiny_threshold () in
  Scan_packed.set_tiny_threshold max_int;
  Fun.protect
    ~finally:(fun () -> Scan_packed.set_tiny_threshold old)
    (fun () ->
      List.iter
        (fun (cname, index) ->
          let k1, k2 = top2 index in
          let config =
            { Rengine.default_config with Rengine.slca = Slca_engine.Scan_packed }
          in
          let query = [ k1; k2 ] in
          let plan = Plan.compile_search ~config index query in
          check Alcotest.bool (cname ^ ": tiny-compiled = engine") true
            (List.equal Dewey.equal
               (Rengine.search ~config index query)
               (Plan.run_search ~config plan index)))
        (Lazy.force plan_corpora))

let test_plan_refine_eq_engine () =
  List.iter
    (fun (cname, index) ->
      let k1, k2 = top2 index in
      List.iter
        (fun query ->
          (* one compiled rule list serves every (k, algorithm) combination *)
          let plan = Plan.compile_refine index query in
          List.iter
            (fun (k, algorithm) ->
              let config = { Rengine.default_config with Rengine.k; algorithm } in
              let bytes resp = Json.to_string (Api.refine_payload index ~query resp) in
              check Alcotest.string
                (Printf.sprintf "%s/%s k=%d {%s}" cname
                   (Rengine.algorithm_name algorithm)
                   k (String.concat " " query))
                (bytes (Rengine.refine ~config index query))
                (bytes (Plan.run_refine ~config plan index query)))
            [ (3, Rengine.Partition); (2, Rengine.Short_list_eager); (1, Rengine.Stack_refine) ])
        [ [ k1; k2; "zzparjunk" ]; [ "zzonly" ] ])
    (Lazy.force plan_corpora)

(* ---- plan cache ----------------------------------------------------------- *)

let dummy_search () = Plan_cache.Search (Plan.compile_search (Index.build (Xr_data.Figure1.doc ())) [ "x" ])

let test_plan_cache_hits_and_eviction () =
  let cache = Plan_cache.create ~shards:1 ~capacity:2 () in
  let compiles = ref 0 in
  let get key =
    Plan_cache.find_or_compile cache ~key (fun () ->
        incr compiles;
        dummy_search ())
  in
  let h0 = Plan_cache.hits () and m0 = Plan_cache.misses () in
  ignore (get "a");
  ignore (get "a");
  check Alcotest.int "one compile for two lookups" 1 !compiles;
  check Alcotest.int "hit counted" 1 (Plan_cache.hits () - h0);
  check Alcotest.int "miss counted" 1 (Plan_cache.misses () - m0);
  ignore (get "b");
  ignore (get "c");
  (* FIFO, capacity 2: "a" is gone, "c" resident *)
  check Alcotest.int "bounded" 2 (Plan_cache.size cache);
  ignore (get "c");
  check Alcotest.int "resident key needs no compile" 3 !compiles;
  ignore (get "a");
  check Alcotest.int "evicted key recompiles" 4 !compiles

let test_plan_cache_single_flight () =
  let cache = Plan_cache.create ~shards:1 ~capacity:8 () in
  let compiles = Atomic.make 0 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Plan_cache.find_or_compile cache ~key:"same" (fun () ->
                Atomic.incr compiles;
                Unix.sleepf 0.02;
                dummy_search ())))
  in
  Array.iter (fun d -> ignore (Domain.join d)) domains;
  check Alcotest.int "the herd compiles once" 1 (Atomic.get compiles)

(* ---- coalescer ------------------------------------------------------------ *)

let test_coalesce_single_flight () =
  let t = Coalesce.create () in
  let entered = Atomic.make 0 in
  let renders = Atomic.make 0 in
  let results = Array.make 4 ("", false) in
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            Atomic.incr entered;
            results.(i) <-
              Coalesce.run t ~key:"k" (fun () ->
                  Atomic.incr renders;
                  (* hold the flight open until every domain has entered
                     [run], then a beat longer so the last one blocks *)
                  while Atomic.get entered < 4 do
                    Domain.cpu_relax ()
                  done;
                  Unix.sleepf 0.05;
                  "body")))
  in
  Array.iter (fun d -> Domain.join d) domains;
  check Alcotest.int "one render" 1 (Atomic.get renders);
  Array.iter (fun (b, _) -> check Alcotest.string "same bytes" "body" b) results;
  check Alcotest.int "exactly one leader" 1
    (Array.length (Array.of_seq (Seq.filter (fun (_, f) -> not f) (Array.to_seq results))));
  check Alcotest.int "flight closed" 0 (Coalesce.in_flight t)

let test_coalesce_exception_propagates () =
  let t = Coalesce.create () in
  let entered = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let domains =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr entered;
            match
              Coalesce.run t ~key:"boom" (fun () ->
                  while Atomic.get entered < 2 do
                    Domain.cpu_relax ()
                  done;
                  Unix.sleepf 0.05;
                  failwith "render failed")
            with
            | _ -> ()
            | exception Failure _ -> Atomic.incr failures))
  in
  Array.iter (fun d -> Domain.join d) domains;
  check Alcotest.int "leader and follower both raise" 2 (Atomic.get failures);
  check Alcotest.int "failed flight closed" 0 (Coalesce.in_flight t)

let test_coalesce_follower_helps () =
  (* A follower's wait must drain queued pool work. Fill the global pool
     (two workers + one submitting helper) with three blockers so the
     fourth task stays queued, then open a flight whose leader holds
     until that task has run: the only domain that can run it is the
     follower, through the [try_help] call in its wait loop. *)
  Xr_pool.reset_global ~domains:3 ();
  let pool = Xr_pool.global () in
  let started = Atomic.make 0 in
  let release = Atomic.make false in
  let helped_ran = Atomic.make 0 in
  let task () =
    if Atomic.fetch_and_add started 1 < 3 then
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done
    else Atomic.incr helped_ran
  in
  let submitter = Domain.spawn (fun () -> Xr_pool.run pool (Array.make 4 task)) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Domain.join submitter;
      (* back to the environment's default size for the tests after us *)
      Xr_pool.reset_global ())
    (fun () ->
      while Atomic.get started < 3 do
        Domain.cpu_relax ()
      done;
      let helped_before = Coalesce.helped () in
      let t = Coalesce.create () in
      let entered = Atomic.make 0 in
      let flyers =
        Array.init 2 (fun _ ->
            Domain.spawn (fun () ->
                Atomic.incr entered;
                Coalesce.run t ~key:"h" (fun () ->
                    (* hold the flight until the follower has entered
                       and donated its wait to the queued task *)
                    while Atomic.get entered < 2 || Atomic.get helped_ran < 1 do
                      Domain.cpu_relax ()
                    done;
                    "body")))
      in
      let results = Array.map Domain.join flyers in
      Array.iter (fun (b, _) -> check Alcotest.string "same bytes" "body" b) results;
      check Alcotest.int "queued task ran exactly once" 1 (Atomic.get helped_ran);
      check Alcotest.bool "helped counter ticked" true (Coalesce.helped () > helped_before))

let test_coalesce_window () =
  let t = Coalesce.create ~window_ms:2.5 () in
  check (Alcotest.float 0.001) "window readable" 2.5 (Coalesce.window_ms t);
  Coalesce.set_window_ms t 0.;
  let body, follower = Coalesce.run t ~key:"w" (fun () -> "x") in
  check Alcotest.string "solo run unaffected" "x" body;
  check Alcotest.bool "solo run leads" false follower

(* ---- server: plans survive requests, die with the generation -------------- *)

let with_corpora config specs f =
  let server = Server.start_corpora config specs in
  let acceptor = Domain.spawn (fun () -> Server.run server) in
  let port =
    match Server.bound_addr server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "expected TCP"
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join acceptor)
    (fun () -> f port)

let request port text =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Http.write_all fd text;
      match Http.read_response (Http.reader_of_fd fd) with
      | Ok r -> r
      | Error e -> Alcotest.failf "response: %s" (Http.error_to_string e))

let http_get port target =
  request port (Printf.sprintf "GET %s HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n" target)

let http_post port target body =
  request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nhost: t\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
       target (String.length body) body)

let batch_stat port name =
  let _, _, body = http_get port "/stats" in
  match Json.of_string body with
  | Ok j -> (
    match Json.member "batch" j with
    | Some b -> (
      match Json.member name b with
      | Some (Json.Int n) -> n
      | _ -> Alcotest.failf "missing batch stat %s" name)
    | None -> Alcotest.fail "missing batch section in /stats")
  | Error msg -> Alcotest.failf "bad stats JSON: %s" msg

let base_config =
  {
    Server.default_config with
    Server.addr = Server.Tcp ("127.0.0.1", 0);
    domains = 2;
    log = false;
    ingest_batch = 4;
  }

let test_server_plan_cache_invalidation () =
  with_corpora base_config
    [ { Server.name = "default"; index = Index.build (Xr_data.Figure1.doc ()); kv = None } ]
    (fun port ->
      (* distinct limits bust the response cache but share one plan key,
         so the second request must hit the plan cache *)
      let _, _, body5 = http_get port "/refine?q=planware&limit=5" in
      let hits0 = batch_stat port "plan_cache_hits" in
      let _, _, body6 = http_get port "/refine?q=planware&limit=6" in
      check Alcotest.bool "limit does not change an empty result" true (body5 = body6);
      let hits1 = batch_stat port "plan_cache_hits" in
      check Alcotest.bool "second request hits the plan cache" true (hits1 > hits0);
      (* publish a generation that actually contains the keyword: the
         new generation id shifts the plan keyspace, so the served
         response must reflect the new index, not the cached plan *)
      let status, _, _ =
        http_post port "/ingest?sync=true" "<extra><note>planware</note></extra>"
      in
      check Alcotest.int "ingest accepted" 200 status;
      let misses0 = batch_stat port "plan_cache_misses" in
      let _, _, body7 = http_get port "/search?q=planware&limit=7" in
      let misses1 = batch_stat port "plan_cache_misses" in
      check Alcotest.bool "new generation compiles a fresh plan" true (misses1 > misses0);
      match Json.of_string body7 with
      | Ok j -> (
        match Json.member "count" j with
        | Some (Json.Int n) ->
          check Alcotest.bool "ingested keyword found via fresh plan" true (n > 0)
        | _ -> Alcotest.fail "search payload has no count")
      | Error msg -> Alcotest.failf "bad search JSON: %s" msg)

let test_server_batch_off_identical () =
  (* the whole batch path is an optimization: every byte served with it
     on must equal the bytes served with it off *)
  let spec () =
    [ { Server.name = "default"; index = Index.build (Xr_data.Figure1.doc ()); kv = None } ]
  in
  let targets =
    [
      "/search?q=xml+database&rank=true";
      "/search?q=xml+database&rank=true&limit=1";
      "/search?q=nothere";
      "/refine?q=xml+databases";
      "/refine?q=xml+databases&k=2&alg=sle";
      "/suggest?q=xml";
    ]
  in
  let serve config =
    with_corpora config (spec ()) (fun port ->
        List.map (fun t -> let _, _, body = http_get port t in body) targets)
  in
  let on = serve base_config in
  let off = serve { base_config with Server.batch = false } in
  List.iter2 (fun a b -> check Alcotest.string "batched bytes = unbatched bytes" b a) on off

let () =
  Alcotest.run "xr_batch"
    [
      ( "bitslice",
        [
          qcheck prop_bitslice_eq_probed;
          Alcotest.test_case "word-granular paths" `Quick test_bitslice_words;
        ] );
      ( "tiny",
        [
          qcheck prop_tiny_eq_chunk;
          Alcotest.test_case "dispatch counted" `Quick test_tiny_dispatch_counted;
        ] );
      ( "shared-scan",
        [
          qcheck (prop_run_batch_eq_solo 1);
          qcheck (prop_run_batch_eq_solo 4);
          qcheck prop_run_batch_chunked_eq_solo;
          Alcotest.test_case "root mask" `Quick test_run_batch_root_mask;
          Alcotest.test_case "disabled = solo" `Quick test_run_batch_disabled;
        ] );
      ( "plans",
        [
          Alcotest.test_case "search plan = engine" `Quick test_plan_search_eq_engine;
          Alcotest.test_case "tiny-forced plan = engine" `Quick test_plan_search_tiny_forced;
          Alcotest.test_case "refine plan = engine" `Quick test_plan_refine_eq_engine;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "hits and eviction" `Quick test_plan_cache_hits_and_eviction;
          Alcotest.test_case "single flight" `Quick test_plan_cache_single_flight;
        ] );
      ( "coalesce",
        [
          Alcotest.test_case "single flight" `Quick test_coalesce_single_flight;
          Alcotest.test_case "exception propagates" `Quick test_coalesce_exception_propagates;
          Alcotest.test_case "follower helps the pool" `Quick test_coalesce_follower_helps;
          Alcotest.test_case "window" `Quick test_coalesce_window;
        ] );
      ( "server",
        [
          Alcotest.test_case "plan cache invalidation across publish" `Quick
            test_server_plan_cache_invalidation;
          Alcotest.test_case "batch off serves identical bytes" `Quick
            test_server_batch_off_identical;
        ] );
    ]
