(* Online ingest: generation pinning, the bounded write queue, snapshot
   isolation of forks, equivalence with from-scratch rebuilds under any
   interleaving of ingests and queries, cache invalidation across index
   swaps, and sharded multi-corpus serving end to end. *)

open Xr_xml
module Index = Xr_index.Index
module Generation = Xr_ingest.Generation
module Ingest = Xr_ingest.Ingest
module Server = Xr_server.Server
module Http = Xr_server.Http
module Json = Xr_server.Json
module Api = Xr_server.Api
module Engine = Xr_refine.Engine

let check = Alcotest.check

let contains hay needle =
  let n = String.length needle and len = String.length hay in
  let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let fig1_tree () = Xr_data.Figure1.tree ()

let fig1 () = Index.build (Xr_data.Figure1.doc ())

(* The query payload bytes a single-corpus server would serve. *)
let search_bytes index query =
  let entries =
    let slcas = Engine.search index query in
    let ids = List.filter_map (Doc.keyword_id index.Index.doc) query in
    Xr_slca.Result_rank.rank index.Index.stats ~query:ids slcas
  in
  Json.to_string (Api.search_payload index ~query ~ranked:true ~limit:20 entries)

(* Full tree equivalent to ingesting [subtrees] (in order) on [base]. *)
let extended_tree base subtrees =
  { base with Tree.children = base.Tree.children @ List.map (fun s -> Tree.Elem s) subtrees }

(* ---- generations -------------------------------------------------------- *)

let test_generation_pin_publish () =
  let gens = Generation.create ~corpus:"t-gen" (fig1 ()) in
  check Alcotest.int "starts at generation 0" 0 (Generation.current_id gens);
  check Alcotest.int "one active generation" 1 (Generation.active gens);
  let g0 = Generation.pin gens in
  let idx1 = Index.append_partition (Index.fork g0.Generation.index) (Tree.leaf "extra" "pinme") in
  let g1 = Generation.publish gens idx1 in
  check Alcotest.int "published id" 1 g1.Generation.id;
  check Alcotest.int "current follows publish" 1 (Generation.current_id gens);
  (* the pinned snapshot still counts as active until released *)
  check Alcotest.int "pinned old gen still active" 2 (Generation.active gens);
  check Alcotest.bool "pinned snapshot unchanged" true
    (Doc.keyword_id g0.Generation.index.Index.doc "pinme" = None);
  Generation.unpin g0;
  let _g2 = Generation.publish gens (Index.fork idx1) in
  check Alcotest.int "released gens pruned" 1 (Generation.active gens);
  let r = Generation.with_pinned gens (fun g -> g.Generation.id) in
  check Alcotest.int "with_pinned sees current" 2 r

(* ---- ingest queue -------------------------------------------------------- *)

let test_ingest_queue_rejections () =
  let gens = Generation.create ~corpus:"t-queue" (fig1 ()) in
  let ingest =
    Ingest.create ~config:{ Ingest.queue_bound = 0; batch_max = 8 } gens
  in
  (match Ingest.submit ingest (Tree.leaf "x" "y") with
  | Error Ingest.Queue_full -> ()
  | _ -> Alcotest.fail "expected Queue_full with a zero bound");
  (match Ingest.submit_string ingest "<broken" with
  | Error (Ingest.Parse _) -> ()
  | _ -> Alcotest.fail "expected Parse error");
  Ingest.shutdown ingest;
  (match Ingest.submit ingest (Tree.leaf "x" "y") with
  | Error Ingest.Shutdown -> ()
  | _ -> Alcotest.fail "expected Shutdown after shutdown");
  check Alcotest.int "nothing indexed" 0 (Ingest.docs_indexed ingest)

let test_ingest_flush_and_publish () =
  let gens = Generation.create ~corpus:"t-flush" (fig1 ()) in
  let published = Atomic.make 0 in
  let ingest =
    Ingest.create
      ~config:{ Ingest.queue_bound = 16; batch_max = 2 }
      ~on_publish:(fun _ -> Atomic.incr published)
      gens
  in
  List.iter
    (fun i ->
      match
        Ingest.submit_string ingest
          (Printf.sprintf "<inproceedings><title>flushdoc%d</title></inproceedings>" i)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "submit %d: %s" i (Ingest.error_to_string e))
    [ 1; 2; 3; 4; 5 ];
  let gen = Ingest.flush ingest in
  check Alcotest.bool "generation advanced" true (gen >= 1);
  check Alcotest.int "all docs indexed" 5 (Ingest.docs_indexed ingest);
  check Alcotest.bool "on_publish fired per batch" true (Atomic.get published >= 1);
  let index = (Generation.current gens).Generation.index in
  check Alcotest.bool "flushed docs queryable" true
    (Engine.search index [ "flushdoc3" ] <> []);
  Ingest.shutdown ingest

(* ---- snapshot isolation -------------------------------------------------- *)

let test_fork_isolation () =
  let index = fig1 () in
  let queries = [ [ "xml"; "database" ]; [ "levy" ]; [ "title" ] ] in
  let before = List.map (search_bytes index) queries in
  let fork = Index.fork index in
  let _fork2 =
    Index.append_partition fork
      (Tree.elem "inproceedings"
         [ Tree.Elem (Tree.leaf "title" "xml database levy title fresh") ])
  in
  let after = List.map (search_bytes index) queries in
  List.iter2 (check Alcotest.string "original index bytes undisturbed") before after

(* ---- equivalence with from-scratch rebuilds ------------------------------ *)

let subtree_gen =
  let open QCheck.Gen in
  let tag = oneofl [ "article"; "note"; "entry" ] in
  let word = oneofl [ "xml"; "query"; "zeta"; "levy"; "database"; "fresh" ] in
  let leaf = map2 (fun t ws -> Tree.elem t [ Tree.Text (String.concat " " ws) ])
      tag (list_size (int_range 1 3) word)
  in
  fun st ->
    let t = tag st in
    let children = list_size (int_range 1 3) leaf st in
    Tree.elem t (List.map (fun c -> Tree.Elem c) children)

let equivalence_queries =
  [ [ "xml" ]; [ "query"; "xml" ]; [ "zeta" ]; [ "levy"; "database" ]; [ "fresh" ] ]

(* After ANY interleaving of ingests and queries, the served bytes must
   equal a from-scratch index over the same document set. Stepwise: query
   after every single-document publish (each prefix is observable).
   Batched: submit everything, flush once (documents may share a
   generation), compare the final state. *)
let prop_ingest_equals_rebuild =
  QCheck.Test.make ~name:"ingest interleavings = from-scratch rebuild" ~count:20
    (QCheck.make
       ~print:(fun l -> String.concat "\n" (List.map Xr_xml.Printer.to_string l))
       QCheck.Gen.(list_size (int_range 1 5) subtree_gen))
    (fun subtrees ->
      let base = fig1_tree () in
      (* stepwise: one doc per flush *)
      let gens = Generation.create ~corpus:"t-prop" (Index.build (Doc.of_tree base)) in
      let ingest = Ingest.create ~config:{ Ingest.queue_bound = 64; batch_max = 1 } gens in
      let ok = ref true in
      List.iteri
        (fun i sub ->
          (match Ingest.submit ingest sub with
          | Ok () -> ()
          | Error e -> Alcotest.failf "submit: %s" (Ingest.error_to_string e));
          ignore (Ingest.flush ingest : int);
          let prefix = List.filteri (fun j _ -> j <= i) subtrees in
          let rebuilt = Index.build (Doc.of_tree (extended_tree base prefix)) in
          let served = (Generation.current gens).Generation.index in
          List.iter
            (fun q ->
              if search_bytes served q <> search_bytes rebuilt q then ok := false)
            equivalence_queries)
        subtrees;
      Ingest.shutdown ingest;
      (* batched: several docs may merge into one generation *)
      let gens2 = Generation.create ~corpus:"t-prop2" (Index.build (Doc.of_tree base)) in
      let ingest2 = Ingest.create ~config:{ Ingest.queue_bound = 64; batch_max = 2 } gens2 in
      List.iter (fun s -> ignore (Ingest.submit ingest2 s)) subtrees;
      ignore (Ingest.flush ingest2 : int);
      let rebuilt = Index.build (Doc.of_tree (extended_tree base subtrees)) in
      let served = (Generation.current gens2).Generation.index in
      List.iter
        (fun q -> if search_bytes served q <> search_bytes rebuilt q then ok := false)
        equivalence_queries;
      Ingest.shutdown ingest2;
      !ok)

let run_prop_with_pool domains () =
  Xr_pool.reset_global ~domains ();
  Fun.protect
    ~finally:(fun () -> Xr_pool.reset_global ~domains:1 ())
    (fun () -> QCheck.Test.check_exn prop_ingest_equals_rebuild)

(* Readers race the writer: a domain hammers a pinned query while
   documents are ingested. Every response must be byte-identical to a
   rebuild over some prefix of the submitted documents — never a torn
   in-between state — and readers never block (the loop makes progress
   through every swap). *)
let test_concurrent_readers_see_prefixes () =
  let base = fig1_tree () in
  let docs =
    List.init 6 (fun i ->
        Tree.elem "article" [ Tree.Elem (Tree.leaf "title" (Printf.sprintf "race doc%d xml" i)) ])
  in
  let query = [ "xml" ] in
  let valid =
    List.init (List.length docs + 1) (fun n ->
        let prefix = List.filteri (fun j _ -> j < n) docs in
        search_bytes (Index.build (Doc.of_tree (extended_tree base prefix))) query)
  in
  let gens = Generation.create ~corpus:"t-race" (Index.build (Doc.of_tree base)) in
  let ingest = Ingest.create ~config:{ Ingest.queue_bound = 64; batch_max = 1 } gens in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let reads = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let body =
            Generation.with_pinned gens (fun g -> search_bytes g.Generation.index query)
          in
          Atomic.incr reads;
          if not (List.mem body valid) then Atomic.incr bad
        done)
  in
  List.iter
    (fun d ->
      ignore (Ingest.submit ingest d);
      ignore (Ingest.flush ingest : int))
    docs;
  (* the ingests can outrun the reader domain's spawn; keep serving the
     final state until it has observed a healthy number of snapshots *)
  let t0 = Unix.gettimeofday () in
  while Atomic.get reads < 20 && Unix.gettimeofday () -. t0 < 10. do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  Domain.join reader;
  Ingest.shutdown ingest;
  check Alcotest.int "no torn reads" 0 (Atomic.get bad);
  check Alcotest.bool "readers made progress" true (Atomic.get reads > 0)

(* ---- persistence --------------------------------------------------------- *)

let test_ingest_persists_to_store () =
  let path = Filename.temp_file "xr_ingest" ".xrdb" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let kv = Xr_store.Kv.btree_file path in
  let index = fig1 () in
  Index.save index kv;
  let gens = Generation.create ~corpus:"t-persist" index in
  let ingest = Ingest.create ~kv gens in
  (match
     Ingest.submit_string ingest "<article><title>durable zeta</title></article>"
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit: %s" (Ingest.error_to_string e));
  ignore (Ingest.flush ingest : int);
  Ingest.shutdown ingest;
  kv.Xr_store.Kv.close ();
  let reopened = Index.load (Xr_store.Kv.btree_file path) in
  check Alcotest.string "reopened store serves the ingested doc"
    (search_bytes (Generation.current gens).Generation.index [ "zeta" ])
    (search_bytes reopened [ "zeta" ])

(* ---- server end to end --------------------------------------------------- *)

let with_corpora config specs f =
  let server = Server.start_corpora config specs in
  let acceptor = Domain.spawn (fun () -> Server.run server) in
  let port =
    match Server.bound_addr server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "expected TCP"
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join acceptor)
    (fun () -> f port)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let request port text =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Http.write_all fd text;
      match Http.read_response (Http.reader_of_fd fd) with
      | Ok r -> r
      | Error e -> Alcotest.failf "response: %s" (Http.error_to_string e))

let http_get port target =
  request port (Printf.sprintf "GET %s HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n" target)

let http_post port target body =
  request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nhost: t\r\ncontent-length: %d\r\nconnection: close\r\n\r\n%s"
       target (String.length body) body)

let json_of body =
  match Json.of_string body with
  | Ok v -> v
  | Error msg -> Alcotest.failf "not JSON (%s): %s" msg body

let json_int path v =
  match Json.member path v with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "missing int field %s" path

let base_config =
  {
    Server.default_config with
    Server.addr = Server.Tcp ("127.0.0.1", 0);
    domains = 2;
    log = false;
    ingest_batch = 4;
  }

(* A stale cached response must never survive the index swap: the same
   query served before and after a synced ingest must change, even
   though the first response was cached (generation-tagged keys plus
   clear-on-publish). *)
let test_stale_cache_never_served_after_ingest () =
  with_corpora base_config
    [ { Server.name = "default"; index = fig1 (); kv = None } ]
    (fun port ->
      let target = "/search?q=freshkeyword" in
      let status, headers, body0 = http_get port target in
      check Alcotest.int "pre-ingest 200" 200 status;
      check Alcotest.int "unknown keyword: no results" 0 (json_int "count" (json_of body0));
      (* cache it *)
      let _, headers1, body1 = http_get port target in
      check Alcotest.(option string) "second read is a cache hit" (Some "hit")
        (List.assoc_opt "x-cache" headers1);
      check Alcotest.string "hit serves identical bytes" body0 body1;
      ignore headers;
      let status, _, ibody =
        http_post port "/ingest?sync=true"
          "<article><title>freshkeyword appears</title></article>"
      in
      check Alcotest.int "ingest 200" 200 status;
      let iv = json_of ibody in
      check Alcotest.bool "accepted" true (Json.member "accepted" iv = Some (Json.Bool true));
      check Alcotest.bool "generation advanced" true (json_int "generation" iv >= 1);
      let _, headers2, body2 = http_get port target in
      check Alcotest.int "post-ingest result visible" 1 (json_int "count" (json_of body2));
      check Alcotest.(option string) "stale entry not served" (Some "miss")
        (List.assoc_opt "x-cache" headers2);
      check Alcotest.bool "bytes changed" true (body2 <> body0);
      (* GET on /ingest is a 405, other endpoints still reject non-GET *)
      let status, _, _ = http_get port "/ingest" in
      check Alcotest.int "GET /ingest is 405" 405 status)

let catalog_index () =
  Index.build
    (Doc.of_tree
       (Tree.elem "catalog"
          [
            Tree.Elem
              (Tree.elem "item"
                 [
                   Tree.Elem (Tree.leaf "name" "xml handbook");
                   Tree.Elem (Tree.leaf "vendor" "acme shelf");
                 ]);
            Tree.Elem
              (Tree.elem "item" [ Tree.Elem (Tree.leaf "name" "query planner guide") ]);
          ]))

let test_sharded_scatter_gather () =
  with_corpora
    { base_config with Server.shards = 2 }
    [
      { Server.name = "bib"; index = fig1 (); kv = None };
      { Server.name = "catalog"; index = catalog_index (); kv = None };
    ]
    (fun port ->
      (* both corpora answer: "xml" occurs in each *)
      let status, _, body = http_get port "/search?q=xml&rank=true" in
      check Alcotest.int "scatter 200" 200 status;
      let v = json_of body in
      check Alcotest.bool "merged schema reports shards" true (json_int "shards" v = 2);
      (match Json.member "results" v with
      | Some (Json.List items) ->
        let corpus_of item =
          match Json.member "corpus" item with Some (Json.String s) -> s | _ -> "?"
        in
        let corpora = List.sort_uniq String.compare (List.map corpus_of items) in
        check Alcotest.(list string) "results from both corpora" [ "bib"; "catalog" ] corpora
      | _ -> Alcotest.fail "results missing");
      (* corpus filter restricts the scatter *)
      let _, _, fbody = http_get port "/search?q=xml&corpus=catalog" in
      let fv = json_of fbody in
      (match Json.member "results" fv with
      | Some (Json.List items) ->
        check Alcotest.bool "filtered to one corpus" true
          (items <> []
          && List.for_all
               (fun item -> Json.member "corpus" item = Some (Json.String "catalog"))
               items)
      | _ -> Alcotest.fail "filtered results missing");
      let status, _, _ = http_get port "/search?q=xml&corpus=nope" in
      check Alcotest.int "unknown corpus is 404" 404 status;
      (* ingest into one corpus only; the doc appears without restart *)
      let pre = json_int "count" (json_of fbody) in
      let status, _, _ =
        http_post port "/ingest?corpus=catalog&sync=true"
          "<item><name>fresh xml almanac</name></item>"
      in
      check Alcotest.int "sharded ingest 200" 200 status;
      let _, _, fbody2 = http_get port "/search?q=xml&corpus=catalog" in
      check Alcotest.int "ingested doc visible in its corpus" (pre + 1)
        (json_int "count" (json_of fbody2));
      (* ingest without corpus is ambiguous with several corpora *)
      let status, _, _ = http_post port "/ingest?sync=true" "<x>y</x>" in
      check Alcotest.int "ambiguous corpus is 400" 400 status;
      (* merged completion tallies across corpora *)
      let _, _, cbody = http_get port "/complete?prefix=x" in
      check Alcotest.bool "completion merged across corpora" true
        (contains cbody "\"keyword\":\"xml\"");
      (* ingest metrics exported *)
      let _, _, prom = http_get port "/metrics" in
      check Alcotest.bool "docs indexed counter" true
        (contains prom "xr_ingest_docs_indexed_total{corpus=\"catalog\"}");
      check Alcotest.bool "queue depth gauge" true (contains prom "xr_ingest_queue_depth{");
      check Alcotest.bool "merge histogram" true
        (contains prom "# TYPE xr_ingest_merge_duration_ms histogram");
      check Alcotest.bool "active generations gauge" true
        (contains prom "xr_ingest_active_generations{"))

let () =
  Alcotest.run "xr_ingest"
    [
      ( "generations",
        [ Alcotest.test_case "pin, publish, active counts" `Quick test_generation_pin_publish ] );
      ( "queue",
        [
          Alcotest.test_case "rejections" `Quick test_ingest_queue_rejections;
          Alcotest.test_case "flush publishes batches" `Quick test_ingest_flush_and_publish;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
          Alcotest.test_case "interleavings = rebuild, pool size 1" `Quick
            (run_prop_with_pool 1);
          Alcotest.test_case "interleavings = rebuild, pool size 4" `Quick
            (run_prop_with_pool 4);
          Alcotest.test_case "concurrent readers see whole prefixes" `Quick
            test_concurrent_readers_see_prefixes;
        ] );
      ( "persistence",
        [ Alcotest.test_case "published generations survive reopen" `Quick
            test_ingest_persists_to_store ] );
      ( "server",
        [
          Alcotest.test_case "stale cache never served after ingest" `Quick
            test_stale_cache_never_served_after_ingest;
          Alcotest.test_case "shards=2 scatter-gather + live ingest" `Quick
            test_sharded_scatter_gather;
        ] );
    ]
