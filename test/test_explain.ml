(* EXPLAIN/ANALYZE introspection: golden plan text for every bundled
   corpus in both index representations (the `--explain-plan` contract —
   regenerate with XR_EXPLAIN_PRINT=1), byte-identity of ANALYZE runs
   against normal execution at pool sizes 1 and 4, the report's actual
   contents (stages, cost-model chunks, pool-task GC folding), runtime
   GC deltas, and exemplar capture/exposition. *)

module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Doc = Xr_xml.Doc
module Plan = Xr_batch.Plan
module Explain = Xr_batch.Explain
module Analyze = Xr_obs.Analyze
module Runtime = Xr_obs.Runtime
module Registry = Xr_obs.Registry
module Engine = Xr_refine.Engine
module Parallel = Xr_slca.Parallel
module P = Xr_xml.Dewey.Packed

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- corpora -------------------------------------------------------------- *)

(* The same four documents the benches use; dblp at the deterministic
   300-publication smoke scale. *)
let docs =
  lazy
    [
      ("figure1", Xr_data.Figure1.doc ());
      ("baseball", Xr_data.Baseball.doc ());
      ("auction", Xr_data.Auction.doc ());
      ("dblp", Doc.of_tree (Xr_data.Dblp.scaled ~publications:300 ~seed:2009));
    ]

let doc_of name = List.assoc name (Lazy.force docs)

(* Top-2 keywords by posting count: a deterministic frequent pair that
   exists in every corpus (ties broken by keyword id via stable sort). *)
let frequent_pair (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  match
    List.stable_sort (fun (_, a) (_, b) -> Int.compare b a) (List.rev !acc)
  with
  | (k0, _) :: (k1, _) :: _ ->
    [ Doc.keyword_name index.Index.doc k0; Doc.keyword_name index.Index.doc k1 ]
  | _ -> Alcotest.fail "corpus has fewer than two keywords"

(* ---- golden explain text -------------------------------------------------- *)

(* Expected `--explain-plan` text per (corpus, mode) for the frequent
   pair, with the chunk computation pinned to a pool of 2 so the output
   does not depend on the host's core count. *)
let golden =
  [
    ( "figure1",
      "flat",
      "plan: tiny kernel (algorithm scan-parallel, index flat)\n\
      \  reason: driver range 6 <= tiny threshold 24: cursor-free tiny kernel\n\
      \  lists: title                id=7      postings=6\n\
      \         year                 id=12     postings=6\n" );
    ( "figure1",
      "dag",
      "plan: tiny kernel (algorithm scan-parallel, index dag, dag dispatch scan_dag)\n\
      \  reason: driver range 6 <= tiny threshold 24: cursor-free tiny kernel\n\
      \  lists: title                id=7      postings=6\n\
      \         year                 id=12     postings=6\n" );
    ( "baseball",
      "flat",
      "plan: scan kernel (algorithm scan-parallel, index flat)\n\
      \  reason: estimated cost 1706 below parallel threshold 4096: sequential scan\n\
      \  lists: name                 id=4      postings=578\n\
      \         runs                 id=25     postings=1080\n\
      \  parallel: estimate=1706 threshold=4096 measured=- pool=2\n" );
    ( "baseball",
      "dag",
      "plan: scan kernel (algorithm scan-parallel, index dag, dag dispatch merged)\n\
      \  reason: estimated cost 1706 below parallel threshold 4096: sequential scan\n\
      \  lists: name                 id=4      postings=578\n\
      \         runs                 id=25     postings=1080\n\
      \  parallel: estimate=1706 threshold=4096 measured=- pool=2\n" );
    ( "auction",
      "flat",
      "plan: scan kernel (algorithm scan-parallel, index flat)\n\
      \  reason: estimated cost 439 below parallel threshold 4096: sequential scan\n\
      \  lists: interest             id=488    postings=161\n\
      \         name                 id=5      postings=212\n\
      \  parallel: estimate=439 threshold=4096 measured=- pool=2\n" );
    ( "auction",
      "dag",
      "plan: scan kernel (algorithm scan-parallel, index dag, dag dispatch merged)\n\
      \  reason: estimated cost 439 below parallel threshold 4096: sequential scan\n\
      \  lists: interest             id=488    postings=161\n\
      \         name                 id=5      postings=212\n\
      \  parallel: estimate=439 threshold=4096 measured=- pool=2\n" );
    ( "dblp",
      "flat",
      "plan: scan kernel (algorithm scan-parallel, index flat)\n\
      \  reason: estimated cost 903 below parallel threshold 4096: sequential scan\n\
      \  lists: title                id=9      postings=300\n\
      \         author               id=2      postings=607\n\
      \  parallel: estimate=903 threshold=4096 measured=- pool=2\n" );
    ( "dblp",
      "dag",
      "plan: scan kernel (algorithm scan-parallel, index dag, dag dispatch merged)\n\
      \  reason: estimated cost 903 below parallel threshold 4096: sequential scan\n\
      \  lists: title                id=9      postings=300\n\
      \         author               id=2      postings=607\n\
      \  parallel: estimate=903 threshold=4096 measured=- pool=2\n" );
  ]

let test_golden (name, mode_name, expected) () =
  let mode = Option.get (Index.mode_of_name mode_name) in
  let index = Index.build ~mode (doc_of name) in
  let query = frequent_pair index in
  let x = Plan.explain_search ~pool_size:2 index query in
  let text = Explain.search_to_text x in
  if Sys.getenv_opt "XR_EXPLAIN_PRINT" = Some "1" then
    Printf.printf "=== %s %s ===\n%s" name mode_name text
  else
    check Alcotest.string (Printf.sprintf "%s/%s explain text" name mode_name)
      expected text

(* The refine variant appends the statically-pruned rule list. *)
let test_refine_explain () =
  let index = Index.build ~mode:Index.Flat (doc_of "figure1") in
  let x = Plan.explain_refine index [ "john"; "ben" ] in
  let text = Explain.refine_to_text x in
  let contains needle =
    let n = String.length needle and len = String.length text in
    let rec scan i = i + n <= len && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "has plan header" true (contains "plan: ");
  check Alcotest.bool "has rules section" true (contains "rules (")

(* ---- ANALYZE byte identity ------------------------------------------------ *)

(* ANALYZE must observe, never perturb: the same query returns
   byte-identical results with and without a report ambient, at pool
   size 1 (all-sequential) and 4 (parallel chunking under a forced-zero
   threshold). Queries are random keyword subsets of the dblp corpus. *)
let prop_analyze_identity domains =
  let index = Index.build ~mode:Index.Flat (doc_of "dblp") in
  let keywords =
    let acc = ref [] in
    Inverted.iter_packed
      (fun kw pk ->
        if Inverted.packed_postings pk > 0 then
          acc := Doc.keyword_name index.Index.doc kw :: !acc)
      index.Index.inverted;
    Array.of_list (List.rev !acc)
  in
  let gen =
    QCheck.Gen.(
      map
        (fun picks -> List.sort_uniq String.compare picks)
        (list_size (int_range 1 3) (oneofl (Array.to_list keywords))))
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "analyze = normal execution, pool %d" domains)
    ~count:30
    (QCheck.make gen ~print:(String.concat " "))
    (fun query ->
      let old_threshold = Parallel.threshold () in
      Xr_pool.reset_global ~domains ();
      Fun.protect
        ~finally:(fun () ->
          Parallel.set_threshold old_threshold;
          Xr_pool.reset_global ~domains:1 ())
        (fun () ->
          Parallel.set_threshold 0;
          let render slcas =
            String.concat ";" (List.map Xr_xml.Dewey.to_string slcas)
          in
          let normal = render (Engine.search index query) in
          let analyzed, _report =
            Analyze.with_report (fun () -> render (Engine.search index query))
          in
          String.equal normal analyzed))

(* ---- the report's contents ------------------------------------------------ *)

let test_report_stages () =
  let index = Index.build ~mode:Index.Flat (doc_of "figure1") in
  let _, report = Analyze.with_report (fun () -> Engine.search index [ "john"; "ben" ]) in
  let stages = Analyze.stages report in
  let names = List.map (fun (s : Analyze.stage) -> s.Analyze.sg_name) stages in
  check Alcotest.bool "slca.scan noted" true (List.mem "slca.scan" names);
  check Alcotest.bool "slca.filter noted" true (List.mem "slca.filter" names);
  List.iter
    (fun (s : Analyze.stage) ->
      check Alcotest.bool (s.Analyze.sg_name ^ " counts non-negative") true
        (s.Analyze.sg_in >= 0 && s.Analyze.sg_out >= 0))
    stages;
  (* The channel uninstalls on exit: notes after the report are dropped. *)
  check Alcotest.bool "inactive after with_report" false (Analyze.active ())

(* Cost-modeled parallel chunks land in the ambient report, with
   modeled and measured shares that each sum to ~1 and positive wall
   times; the drift histogram gains one observation per chunk. *)
let test_report_chunks () =
  let old_threshold = Parallel.threshold () in
  Xr_pool.reset_global ~domains:4 ();
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_threshold old_threshold;
      Xr_pool.reset_global ~domains:1 ())
    (fun () ->
      Parallel.set_threshold 0;
      let list_a = List.init 1024 (fun i -> [| 1; i |]) in
      let list_b = List.init 1024 (fun i -> [| 1; i; 0 |]) in
      let pks = List.map P.of_list [ list_a; list_b ] in
      let sequential = Xr_slca.Scan_packed.compute pks in
      let result, report = Analyze.with_report (fun () -> Parallel.compute pks) in
      check Alcotest.bool "parallel = sequential" true
        (List.equal Xr_xml.Dewey.equal result sequential);
      let chunks = Analyze.chunks report in
      check Alcotest.bool "at least two chunks" true (List.length chunks >= 2);
      let sum f = List.fold_left (fun acc c -> acc +. f c) 0. chunks in
      let close a b = Float.abs (a -. b) < 1e-6 in
      check Alcotest.bool "modeled shares sum to 1" true
        (close (sum (fun (c : Analyze.chunk) -> c.Analyze.ck_modeled)) 1.);
      check Alcotest.bool "measured shares sum to 1" true
        (close (sum (fun (c : Analyze.chunk) -> c.Analyze.ck_measured)) 1.);
      List.iter
        (fun (c : Analyze.chunk) ->
          check Alcotest.bool "chunk wall time positive" true (c.Analyze.ck_ns > 0.))
        chunks;
      check Alcotest.bool "pool tasks counted" true (Analyze.tasks report > 0))

(* ---- runtime GC deltas ---------------------------------------------------- *)

let test_runtime_delta () =
  let s0 = Runtime.capture () in
  let l = List.init 50_000 (fun i -> string_of_int i) in
  ignore (Sys.opaque_identity l);
  let d = Runtime.delta s0 in
  (* Gc.minor_words counts live-arena allocation, so a pure-OCaml
     allocation burst must be visible without waiting for a minor GC. *)
  check Alcotest.bool "minor words observed" true (d.Runtime.d_minor_words > 0.);
  check Alcotest.bool "allocated = minor + major - promoted" true
    (Runtime.allocated_words d
    = d.Runtime.d_minor_words +. d.Runtime.d_major_words -. d.Runtime.d_promoted_words);
  let z = Runtime.zero in
  check Alcotest.bool "zero is additive identity" true
    (Runtime.add z d = d && Runtime.add d z = d);
  (* Registration is idempotent (second call must not raise on
     duplicate families). *)
  Runtime.register ();
  Runtime.register ()

(* ---- exemplars ------------------------------------------------------------ *)

let test_exemplars () =
  let reg = Registry.create () in
  let fam =
    Registry.Histogram.family ~registry:reg ~name:"ex_ms" ~help:"exemplar probe"
      ~buckets:[| 1.; 10. |] ()
  in
  let h = Registry.Histogram.no_labels fam in
  (* trace id 0 = tracing off: no exemplar is stored. *)
  Registry.Histogram.observe h 0.5;
  Registry.Histogram.observe ~trace_id:0 h 20.;
  check Alcotest.bool "no exemplars yet" true
    (Array.for_all Option.is_none (Registry.Histogram.exemplars h));
  (* A non-zero trace id lands in the observation's bucket,
     last-writer-wins. *)
  Registry.Histogram.observe ~trace_id:7 h 5.;
  Registry.Histogram.observe ~trace_id:9 h 6.;
  (match (Registry.Histogram.exemplars h).(1) with
  | Some ex ->
    check Alcotest.int "latest trace id wins" 9 ex.Registry.ex_trace;
    check (Alcotest.float 1e-9) "exemplar value" 6. ex.Registry.ex_value
  | None -> Alcotest.fail "no exemplar in bucket le=10");
  let text = Xr_obs.Expo.render reg in
  let contains needle =
    let n = String.length needle and len = String.length text in
    let rec scan i = i + n <= len && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "bucket line carries exemplar" true
    (contains {|ex_ms_bucket{le="10"} 3 # {trace_id="9"} 6|});
  check Alcotest.bool "unexemplared bucket is plain" true
    (contains {|ex_ms_bucket{le="1"} 1
|})

(* ---- suite ---------------------------------------------------------------- *)

let () =
  Alcotest.run "explain"
    [
      ( "golden",
        List.map
          (fun ((name, mode, _) as g) ->
            Alcotest.test_case (name ^ "/" ^ mode) `Quick (test_golden g))
          golden
        @ [ Alcotest.test_case "refine rules section" `Quick test_refine_explain ] );
      ( "analyze",
        [
          qcheck (prop_analyze_identity 1);
          qcheck (prop_analyze_identity 4);
          Alcotest.test_case "report stages" `Quick test_report_stages;
          Alcotest.test_case "report chunks + drift" `Quick test_report_chunks;
        ] );
      ( "runtime",
        [ Alcotest.test_case "gc delta" `Quick test_runtime_delta ] );
      ( "exemplars",
        [ Alcotest.test_case "capture and exposition" `Quick test_exemplars ] );
    ]
