(* Domain parallelism: the work-stealing pool's contract (fan-out, help
   loop, nested batches, exception propagation, size-1 inline mode), the
   headline property that the chunked parallel SLCA kernel is
   byte-identical to the sequential scan for every chunking, adversarial
   split placements, and determinism of the parallel refinement pipeline
   up to the served JSON bytes. *)

open Xr_xml
module P = Dewey.Packed
module Scan_packed = Xr_slca.Scan_packed
module Parallel = Xr_slca.Parallel
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Rengine = Xr_refine.Engine
module Api = Xr_server.Api
module Json = Xr_server.Json
module Http = Xr_server.Http
module Server = Xr_server.Server

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- pool --------------------------------------------------------------- *)

let test_pool_fanout () =
  let pool = Xr_pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Xr_pool.shutdown pool)
    (fun () ->
      check Alcotest.int "size" 4 (Xr_pool.size pool);
      let hits = Atomic.make 0 in
      Xr_pool.run pool (Array.init 100 (fun _ () -> Atomic.incr hits));
      check Alcotest.int "every task ran" 100 (Atomic.get hits);
      (* a pool task may itself submit a batch: the submitter helps drain
         instead of blocking a worker, so this must not deadlock *)
      let nested = Atomic.make 0 in
      Xr_pool.run pool
        (Array.init 4 (fun _ () ->
             Xr_pool.run pool (Array.init 8 (fun _ () -> Atomic.incr nested))));
      check Alcotest.int "nested batches drain" 32 (Atomic.get nested);
      let c = Xr_pool.counters pool in
      check Alcotest.int "counter: domains" 4 c.Xr_pool.domains;
      check Alcotest.bool "counter: tasks" true (c.Xr_pool.tasks >= 132);
      check Alcotest.bool "counter: batches" true (c.Xr_pool.batches >= 2))

let test_pool_exception () =
  let pool = Xr_pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Xr_pool.shutdown pool)
    (fun () ->
      let ran = Atomic.make 0 in
      (match
         Xr_pool.run pool
           [|
             (fun () -> Atomic.incr ran);
             (fun () -> failwith "boom");
             (fun () -> Atomic.incr ran);
           |]
       with
      | () -> Alcotest.fail "expected the task's exception to re-raise"
      | exception Failure m -> check Alcotest.string "exception carried" "boom" m);
      check Alcotest.int "remaining tasks still ran" 2 (Atomic.get ran))

let test_pool_try_help () =
  (* Three executors (two workers plus the submitting domain's help
     loop) each take one task and block on [release]; the fourth task
     stays in a deque — visible in [queue_depth] — until an outside
     domain donates its wait time through [try_help]. Start order picks
     which tasks block, so the schedule is deterministic: exactly one
     runnable task is queued when the main domain helps. *)
  let pool = Xr_pool.create ~domains:3 () in
  let started = Atomic.make 0 in
  let release = Atomic.make false in
  let helped_ran = Atomic.make 0 in
  let task () =
    if Atomic.fetch_and_add started 1 < 3 then
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done
    else Atomic.incr helped_ran
  in
  let submitter = Domain.spawn (fun () -> Xr_pool.run pool (Array.make 4 task)) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Domain.join submitter;
      Xr_pool.shutdown pool)
    (fun () ->
      while Atomic.get started < 3 do
        Domain.cpu_relax ()
      done;
      check Alcotest.int "one task still queued" 1 (Xr_pool.queue_depth pool);
      check Alcotest.bool "try_help takes it" true (Xr_pool.try_help pool);
      check Alcotest.int "helped task ran" 1 (Atomic.get helped_ran);
      check Alcotest.int "queue drained" 0 (Xr_pool.queue_depth pool);
      check Alcotest.bool "nothing left to help with" false (Xr_pool.try_help pool))

let test_pool_size_one_inline () =
  let pool = Xr_pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Xr_pool.shutdown pool)
    (fun () ->
      let order = ref [] in
      Xr_pool.run pool (Array.init 5 (fun i () -> order := i :: !order));
      (* no worker domains: tasks run inline on the submitter, in order *)
      check Alcotest.(list int) "inline, submission order" [ 0; 1; 2; 3; 4 ]
        (List.rev !order);
      check Alcotest.int "no domains spawned" 1 (Xr_pool.counters pool).Xr_pool.domains)

(* ---- parallel SLCA = sequential SLCA ------------------------------------- *)

(* One pool shared by every equality check below; three total domains so
   chunk counts above, at, and below the parallelism all occur. *)
let shared_pool = lazy (Xr_pool.create ~domains:3 ())

let assert_all_chunkings ?(chunkings = [ 2; 3; 5; 8; 16; 64 ]) name lists =
  let pks = List.map P.of_list lists in
  let sequential = Scan_packed.compute pks in
  List.iter
    (fun chunks ->
      let got =
        Parallel.compute ~pool:(Lazy.force shared_pool) ~chunks ~threshold:0 pks
      in
      check Alcotest.bool
        (Printf.sprintf "%s: chunks=%d = sequential" name chunks)
        true
        (List.equal Dewey.equal got sequential))
    chunkings

let test_equal_prefix_runs () =
  (* Driver is one long run of siblings under a shared deep prefix: every
     split lands inside an equal-prefix region, the worst case for the
     boundary fix-up (the held candidate at each boundary is a prefix or
     sibling of the first candidates of the next chunk). *)
  let driver = List.init 64 (fun i -> [| 1; 1; i |]) in
  assert_all_chunkings "siblings, ancestor partner" [ driver; [ [| 1 |] ] ];
  assert_all_chunkings "siblings, sparse partner"
    [ driver; [ [| 1; 1; 5 |]; [| 1; 1; 40; 2 |]; [| 1; 1; 63 |] ] ];
  (* nested chain: each label a prefix of the next, so the online prune's
     silent-replace transition fires at every step *)
  let chain = List.init 32 (fun i -> Array.make (i + 1) 0) in
  assert_all_chunkings "prefix chain" [ chain; [ [| 0 |] ] ]

let test_zero_match_chunks () =
  (* Matches only at the extremes of the driver: middle chunks produce no
     survivors at all, and whole-chunk emptiness must not desynchronize
     the merge. *)
  let driver =
    List.init 20 (fun i -> [| 1; i |])
    @ List.init 20 (fun i -> [| 5; i |])
    @ List.init 20 (fun i -> [| 9; i |])
  in
  assert_all_chunkings "matches at extremes" [ driver; [ [| 1 |]; [| 9 |] ] ];
  assert_all_chunkings "no matches anywhere" [ driver; [ [| 7; 7; 7 |] ] ]

let test_more_chunks_than_postings () =
  (* chunk count far above the driver length: ranges clamp, some chunks
     are empty by construction *)
  assert_all_chunkings ~chunkings:[ 2; 3; 32 ] "tiny driver"
    [ [ [| 1; 1 |]; [| 1; 2 |]; [| 2; 0; 1 |] ]; [ [| 1 |]; [| 2 |] ] ]

let gen_label =
  QCheck.Gen.(
    list_size (int_bound 6)
      (frequency [ (6, int_bound 5); (2, int_bound 300); (1, int_bound 100_000) ])
    |> map Array.of_list)

let gen_sorted_labels =
  QCheck.Gen.(
    list_size (int_range 1 60) gen_label |> map (fun l -> List.sort_uniq Dewey.compare l))

let arb_case =
  let print (lists, chunks) =
    Printf.sprintf "chunks=%d lists=[%s]" chunks
      (String.concat "; "
         (List.map
            (fun l -> String.concat " " (List.map Dewey.to_string l))
            lists))
  in
  QCheck.make ~print
    QCheck.Gen.(pair (list_size (int_range 2 4) gen_sorted_labels) (int_range 1 9))

let prop_parallel_eq_sequential =
  QCheck.Test.make ~name:"parallel scan = sequential scan, any chunking" ~count:300
    arb_case
    (fun (lists, chunks) ->
      let pks = List.map P.of_list lists in
      List.equal Dewey.equal
        (Parallel.compute ~pool:(Lazy.force shared_pool) ~chunks ~threshold:0 pks)
        (Scan_packed.compute pks))

(* ---- cost-modeled adaptive chunking --------------------------------------- *)

(* Pools of size 1, 2 and 4 for the adaptive-path property: size 1
   exercises the pool gate's sequential fallback, 2 and 4 run the
   chunked kernel below and at the auto chunk target. *)
let scaling_pools = lazy (List.map (fun d -> (d, Xr_pool.create ~domains:d ())) [ 1; 2; 4 ])

let full_ranges pks = List.map (fun pk -> (pk, 0, P.length pk)) pks

let prop_adaptive_chunker =
  QCheck.Test.make
    ~name:"cost-modeled chunking: exact driver partition, byte-identical at P=1/2/4"
    ~count:200 arb_case
    (fun (lists, chunks) ->
      let pks = List.map P.of_list lists in
      let ranges = full_ranges pks in
      let sequential = Scan_packed.compute pks in
      let driver_len =
        List.fold_left (fun acc l -> min acc (List.length l)) max_int lists
      in
      (match Parallel.measure ranges with
      | None -> ()
      | Some m ->
        (* the chunker must partition [0, driver_len) exactly: every
           driver posting scanned once, none dropped, none twice *)
        List.iter
          (fun k ->
            let bounds = Parallel.chunk_bounds m ~chunks:k in
            let n = Array.length bounds in
            if n < 2 || bounds.(0) <> 0 || bounds.(n - 1) <> driver_len then
              QCheck.Test.fail_reportf "bad endpoints [%s] for driver length %d"
                (String.concat ";" (Array.to_list (Array.map string_of_int bounds)))
                driver_len;
            for i = 0 to n - 2 do
              if bounds.(i) >= bounds.(i + 1) then
                QCheck.Test.fail_reportf "bounds not strictly increasing at %d" i
            done)
          [ 2; chunks + 1; 64 ];
        (* the adaptive path itself — measured masses, auto chunk count —
           must stay byte-identical to sequential on every pool size *)
        List.iter
          (fun (d, pool) ->
            let got = Parallel.compute_ranges ~pool ~threshold:0 ~masses:m ranges in
            if not (List.equal Dewey.equal got sequential) then
              QCheck.Test.fail_reportf "adaptive P=%d disagrees with sequential" d)
          (Lazy.force scaling_pools));
      true)

let test_skewed_mass_chunking () =
  (* Partner mass concentrated under the first 16 of 256 evenly spread
     driver entries: equal-cost splitting must pull the first chunk
     boundary well inside the heavy corner instead of handing one chunk
     a quarter of the driver (and most of the galloping work). *)
  let driver = List.init 256 (fun i -> [| i |]) in
  let partner =
    List.concat_map
      (fun i -> if i < 16 then List.init 250 (fun j -> [| i; j |]) else [ [| i; 0 |] ])
      (List.init 256 Fun.id)
  in
  let pks = List.map P.of_list [ driver; partner ] in
  let ranges = full_ranges pks in
  match Parallel.measure ranges with
  | None -> Alcotest.fail "measure returned None on a 256-entry driver"
  | Some m ->
    check Alcotest.bool "measured cost positive" true (Parallel.total_cost m > 0.);
    let bounds = Parallel.chunk_bounds m ~chunks:4 in
    let n = Array.length bounds in
    check Alcotest.int "starts at range start" 0 bounds.(0);
    check Alcotest.int "ends at range end" 256 bounds.(n - 1);
    check Alcotest.bool "first split pulled into the heavy corner" true (bounds.(1) < 64);
    let sequential = Scan_packed.compute pks in
    List.iter
      (fun (d, pool) ->
        check Alcotest.bool (Printf.sprintf "skewed adaptive P=%d = sequential" d) true
          (List.equal Dewey.equal
             (Parallel.compute_ranges ~pool ~threshold:0 ~masses:m ranges)
             sequential))
      (Lazy.force scaling_pools)

let test_threshold_fallback () =
  let old = Parallel.threshold () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_threshold old)
    (fun () ->
      Parallel.set_threshold max_int;
      let before = Parallel.fallbacks () in
      let pks = List.map P.of_list [ [ [| 1; 1 |]; [| 1; 2 |] ]; [ [| 1 |] ] ] in
      let seq = Scan_packed.compute pks in
      check Alcotest.bool "below threshold still correct" true
        (List.equal Dewey.equal (Parallel.compute pks) seq);
      check Alcotest.bool "fallback counted" true (Parallel.fallbacks () > before))

(* ---- parallel refinement determinism ------------------------------------- *)

let top2 (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  match
    List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc
    |> List.map (fun (kw, _) -> Doc.keyword_name index.Index.doc kw)
  with
  | k1 :: k2 :: _ -> (k1, k2)
  | _ -> Alcotest.fail "corpus has fewer than two keywords"

(* The served JSON of /refine must not depend on whether candidate
   evaluations fanned out over the pool: force-parallel (threshold 0,
   4-way global pool) and force-sequential (infinite threshold, size-1
   pool) must render byte-identical payloads. *)
let test_refine_deterministic () =
  let corpora =
    [
      ("figure1", Index.build (Xr_data.Figure1.doc ()));
      ("dblp", Index.build (Doc.of_tree (Xr_data.Dblp.scaled ~publications:120 ~seed:42)));
    ]
  in
  let render index query alg =
    let config = { Rengine.default_config with Rengine.algorithm = alg } in
    Json.to_string (Api.refine_payload index ~query (Rengine.refine ~config index query))
  in
  let old = Parallel.threshold () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_threshold old;
      Xr_pool.reset_global ~domains:1 ())
    (fun () ->
      List.iter
        (fun (cname, index) ->
          let k1, k2 = top2 index in
          List.iter
            (fun query ->
              List.iter
                (fun alg ->
                  Parallel.set_threshold 0;
                  Xr_pool.reset_global ~domains:4 ();
                  let par = render index query alg in
                  Parallel.set_threshold max_int;
                  Xr_pool.reset_global ~domains:1 ();
                  let seq = render index query alg in
                  check Alcotest.string
                    (Printf.sprintf "%s/%s {%s}" cname (Rengine.algorithm_name alg)
                       (String.concat " " query))
                    seq par)
                [ Rengine.Partition; Rengine.Short_list_eager ])
            [ [ k1; k2; "zzparjunk" ]; [ k1; k2 ]; [ "zzonly" ] ])
        corpora)

(* ---- end-to-end: served bytes identical under pool sizes 1 and 4 --------- *)

let http_get fd target =
  let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n" target in
  let n = Unix.write_substring fd req 0 (String.length req) in
  if n <> String.length req then Alcotest.fail "short write";
  match Http.read_response (Http.reader_of_fd fd) with
  | Ok r -> r
  | Error e -> Alcotest.failf "GET %s: %s" target (Http.error_to_string e)

let get_closing port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> http_get fd target)

let with_server config index f =
  let server = Server.start config index in
  let acceptor = Domain.spawn (fun () -> Server.run server) in
  let port =
    match Server.bound_addr server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "expected TCP"
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join acceptor)
    (fun () -> f port)

let test_server_pool_sizes () =
  let index = Index.build (Xr_data.Figure1.doc ()) in
  let targets =
    [
      "/search?q=database+title";
      "/search?q=title+year";
      "/refine?q=database+title+zzzsrvjunk";
      "/refine?q=zzzsrvonly";
    ]
  in
  (* cache off so every response is computed; threshold 0 so the 4-way
     run actually exercises the pool on this tiny corpus *)
  let config =
    {
      Server.default_config with
      Server.addr = Server.Tcp ("127.0.0.1", 0);
      domains = 2;
      log = false;
      cache_capacity = 0;
      parallel_threshold = 0;
    }
  in
  let fetch pool_domains =
    Xr_pool.reset_global ~domains:pool_domains ();
    with_server config index (fun port ->
        List.map
          (fun target ->
            let status, _, body = get_closing port target in
            check Alcotest.int (target ^ " 200") 200 status;
            body)
          targets)
  in
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_threshold Parallel.default_threshold;
      Xr_pool.reset_global ~domains:1 ())
    (fun () ->
      List.iter2
        (fun target (seq, par) -> check Alcotest.string target seq par)
        targets
        (List.combine (fetch 1) (fetch 4)))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "fan-out and nested batches" `Quick test_pool_fanout;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "try_help drains a queued task" `Quick test_pool_try_help;
          Alcotest.test_case "size 1 runs inline" `Quick test_pool_size_one_inline;
        ] );
      ( "slca",
        [
          Alcotest.test_case "splits inside equal-prefix runs" `Quick test_equal_prefix_runs;
          Alcotest.test_case "zero-match chunks" `Quick test_zero_match_chunks;
          Alcotest.test_case "more chunks than postings" `Quick
            test_more_chunks_than_postings;
          Alcotest.test_case "threshold fallback" `Quick test_threshold_fallback;
          Alcotest.test_case "skewed mass moves the splits" `Quick test_skewed_mass_chunking;
          qcheck prop_parallel_eq_sequential;
          qcheck prop_adaptive_chunker;
        ] );
      ( "refine",
        [ Alcotest.test_case "parallel = sequential payloads" `Quick test_refine_deterministic ] );
      ( "server",
        [ Alcotest.test_case "pool sizes 1 and 4 serve identical bytes" `Quick
            test_server_pool_sizes ] );
    ]
