(* Differential suite for the packed refinement pipeline: every algorithm
   (stack-refine / partition / SLE) must return the same outcome whether
   it runs on packed cursors or on the legacy boxed posting arrays, and
   the packed runs must never force a boxed view into existence. Also
   property-checks the packed slicing/seeking primitives those scans are
   built on. *)

open Xr_xml
open Xr_refine
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- corpora / workloads ------------------------------------------------- *)

let corpora =
  lazy
    [
      ("figure1", Index.build (Xr_data.Figure1.doc ()));
      ("baseball", Index.build (Xr_data.Baseball.doc ()));
      ( "dblp",
        Index.build (Doc.of_tree (Xr_data.Dblp.scaled ~publications:120 ~seed:42)) );
    ]

(* Two frequent keyword names of the corpus, used to assemble workloads
   that exercise each rewrite operation with a guaranteed-absent keyword
   so refinement actually runs. *)
let top2 (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  match
    List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc
    |> List.map (fun (kw, _) -> Doc.keyword_name index.Index.doc kw)
  with
  | k1 :: k2 :: _ -> (k1, k2)
  | _ -> Alcotest.fail "corpus has fewer than two keywords"

let workloads index =
  let k1, k2 = top2 index in
  [
    ("deletion", [ k1; k2; "zzzdiffjunk" ], []);
    ("merge", [ "zzda"; "zzdb"; k2 ], [ Rule.merging [ "zzda"; "zzdb" ] k1 ]);
    ("split", [ "zzfused" ], [ Rule.split "zzfused" [ k1; k2 ] ]);
    ("substitution", [ "zzsrc"; k2 ], [ Rule.synonym "zzsrc" k1 ]);
    (* original query matches: every algorithm must detect it *)
    ("original", [ k1; k2 ], []);
  ]

let make index rules query = Refine_common.make index (Ruleset.of_rules rules) query

let algorithms ~k =
  [
    ("stack-refine", fun c -> fst (Stack_refine.run c)),
    (fun c -> fst (Stack_refine.run_legacy c));
    ("partition", fun c -> fst (Partition.run ~k c)),
    (fun c -> fst (Partition.run_legacy ~k c));
    ("sle", fun c -> fst (Sle.run ~k c)),
    (fun c -> fst (Sle.run_legacy ~k c));
  ]
  |> List.map (fun ((name, packed), legacy) -> (name, packed, legacy))

(* ---- packed == legacy, everywhere ---------------------------------------- *)

let test_differential () =
  List.iter
    (fun (cname, index) ->
      List.iter
        (fun (wname, query, rules) ->
          let c = make index rules query in
          List.iter
            (fun (aname, packed, legacy) ->
              let p = packed c in
              let l = legacy c in
              check Alcotest.bool
                (Printf.sprintf "%s/%s/%s packed = legacy" cname wname aname)
                true (p = l))
            (algorithms ~k:3))
        (workloads index))
    (Lazy.force corpora)

(* Engine-level: each packed selector agrees with its legacy twin through
   the full [Engine.refine] pipeline (mining on, default config knobs). *)
let test_engine_differential () =
  let index = List.assoc "dblp" (Lazy.force corpora) in
  let k1, k2 = top2 index in
  let query = [ k1; k2; "zzenginejunk" ] in
  List.iter
    (fun (packed_alg, legacy_alg) ->
      let run alg =
        let config = { Engine.default_config with algorithm = alg } in
        (Engine.refine ~config index query).Engine.result
      in
      check Alcotest.bool
        (Engine.algorithm_name packed_alg ^ " = " ^ Engine.algorithm_name legacy_alg)
        true
        (run packed_alg = run legacy_alg))
    [
      (Engine.Stack_refine, Engine.Stack_refine_legacy);
      (Engine.Partition, Engine.Partition_legacy);
      (Engine.Short_list_eager, Engine.Sle_legacy);
    ]

(* ---- zero materialization on the packed path ----------------------------- *)

let test_packed_never_materializes () =
  (* fresh index: nothing warmed by other tests *)
  let index = Index.build (Doc.of_tree (Xr_data.Dblp.scaled ~publications:80 ~seed:7)) in
  let inv = index.Index.inverted in
  check Alcotest.int "fresh index has no boxed views" 0
    (Inverted.materialization_count inv);
  List.iter
    (fun (wname, query, rules) ->
      let c = make index rules query in
      List.iter
        (fun (aname, packed, _) ->
          ignore (packed c);
          check Alcotest.int
            (Printf.sprintf "%s/%s stays packed" wname aname)
            0
            (Inverted.materialization_count inv))
        (algorithms ~k:3))
    (workloads index);
  check Alcotest.int "no keyword acquired a boxed view" 0
    (Inverted.materialized_keywords inv)

let test_engine_default_never_materializes () =
  let index = Index.build (Doc.of_tree (Xr_data.Dblp.scaled ~publications:80 ~seed:11)) in
  let k1, k2 = top2 index in
  ignore (Engine.refine index [ k1; k2; "zzdefaultjunk" ]);
  ignore (Engine.refine index [ k1; k2 ]);
  ignore (Engine.search index [ k1 ]);
  check Alcotest.int "default Engine paths stay packed" 0
    (Inverted.materialization_count index.Index.inverted)

(* legacy selectors force boxed views on demand — the counter must see it *)
let test_legacy_materializes_on_demand () =
  let index = Index.build (Doc.of_tree (Xr_data.Dblp.scaled ~publications:40 ~seed:13)) in
  let k1, k2 = top2 index in
  let c = make index [] [ k1; k2; "zzlegacyjunk" ] in
  ignore (Stack_refine.run_legacy c);
  check Alcotest.bool "legacy run forced boxed views" true
    (Inverted.materialization_count index.Index.inverted > 0)

(* ---- packed slicing / seeking primitives --------------------------------- *)

let gen_label =
  QCheck.Gen.(
    list_size (int_bound 5)
      (frequency [ (6, int_bound 4); (2, int_bound 200); (1, int_bound 50_000) ])
    |> map Array.of_list)

let arb_labels_and_probe =
  QCheck.make
    ~print:(fun (ls, v, lo) ->
      Printf.sprintf "%s probe=%s lo=%d"
        (String.concat " " (List.map Dewey.to_string ls))
        (Dewey.to_string v) lo)
    QCheck.Gen.(
      gen_label |> fun g ->
      triple
        (list_size (int_range 1 30) g |> map (fun l -> List.sort_uniq Dewey.compare l))
        g (int_bound 5))

let prop_prefix_slice_sub =
  QCheck.Test.make ~name:"prefix_slice_sub = naive prefix scan" ~count:500
    arb_labels_and_probe
    (fun (labels, v, lo) ->
      let arr = Array.of_list labels in
      let pk = P.of_list labels in
      let lo = min lo (Array.length arr) in
      let slo, shi = P.prefix_slice_sub pk ~lo v (Array.length v) in
      (* naive: indices >= lo whose label has [v] as a prefix *)
      let naive =
        List.filteri (fun i _ -> i >= lo) labels
        |> List.mapi (fun i _ -> i) |> List.length |> ignore;
        let idx = ref [] in
        Array.iteri (fun i l -> if i >= lo && Dewey.is_prefix v l then idx := i :: !idx) arr;
        List.rev !idx
      in
      match naive with
      | [] -> slo = shi
      | first :: _ ->
        slo = first && shi = first + List.length naive
        && List.for_all (fun i -> i >= slo && i < shi) naive)

let prop_seek_geq_sub =
  QCheck.Test.make ~name:"cursor seek_geq_sub lands on lower bound" ~count:500
    arb_labels_and_probe
    (fun (labels, v, advance_by) ->
      let pk = P.of_list labels in
      let cur = PC.make pk in
      for _ = 1 to min advance_by (P.length pk) do
        PC.advance cur
      done;
      let start = PC.position cur in
      PC.seek_geq_sub cur v (Array.length v);
      let expected = P.lower_bound_sub pk ~lo:start v (Array.length v) in
      PC.position cur = expected)

(* a cursor restricted to [lo, hi) behaves like the full cursor clamped *)
let prop_sub_cursor =
  QCheck.Test.make ~name:"make_sub clamps seeks to its window" ~count:300
    arb_labels_and_probe
    (fun (labels, v, lo) ->
      let pk = P.of_list labels in
      let n = P.length pk in
      let lo = min lo n in
      let hi = min (lo + 7) n in
      let cur = PC.make_sub pk ~lo ~hi in
      PC.seek_geq_sub cur v (Array.length v);
      let expected = min hi (P.lower_bound_sub pk ~lo v (Array.length v)) in
      PC.position cur = expected && (PC.at_end cur = (PC.position cur >= hi)))

let () =
  Alcotest.run "xr_refine_packed"
    [
      ( "differential",
        [
          Alcotest.test_case "algorithms packed = legacy" `Quick test_differential;
          Alcotest.test_case "engine packed = legacy" `Quick test_engine_differential;
        ] );
      ( "materialization",
        [
          Alcotest.test_case "packed algorithms" `Quick test_packed_never_materializes;
          Alcotest.test_case "engine default path" `Quick
            test_engine_default_never_materializes;
          Alcotest.test_case "legacy still materializes" `Quick
            test_legacy_materializes_on_demand;
        ] );
      ( "primitives",
        [ qcheck prop_prefix_slice_sub; qcheck prop_seek_geq_sub; qcheck prop_sub_cursor ]
      );
    ]
