module Codec = Xr_store.Codec
module Pager = Xr_store.Pager
module Btree = Xr_store.Btree
module Kv = Xr_store.Kv

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let tmp_file suffix = Filename.temp_file "xrstore" suffix

(* ---- Codec ------------------------------------------------------------ *)

let test_codec_scalars () =
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "varint %d" n)
        n
        (Codec.decode Codec.read_varint (Codec.encode Codec.write_varint n)))
    [ 0; 1; 127; 128; 300; 65535; 1 lsl 30 ];
  List.iter
    (fun n ->
      check Alcotest.int
        (Printf.sprintf "zigzag %d" n)
        n
        (Codec.decode Codec.read_int (Codec.encode Codec.write_int n)))
    [ 0; -1; 1; -300; 300; min_int / 4; max_int / 4 ]

let test_codec_composites () =
  let s = "hello \x00 world" in
  check Alcotest.string "string" s (Codec.decode Codec.read_string (Codec.encode Codec.write_string s));
  let a = [| 0; 5; 3; 42 |] in
  check (Alcotest.array Alcotest.int) "int array" a
    (Codec.decode Codec.read_int_array (Codec.encode Codec.write_int_array a));
  let l = [ "a"; ""; "bc" ] in
  check (Alcotest.list Alcotest.string) "list" l
    (Codec.decode (Codec.read_list Codec.read_string)
       (Codec.encode (fun b v -> Codec.write_list Codec.write_string b v) l))

let test_codec_errors () =
  (try
     ignore (Codec.decode Codec.read_string "\x05ab");
     Alcotest.fail "expected truncation failure"
   with Failure _ -> ());
  try
    ignore (Codec.decode Codec.read_varint "\x01\x01");
    Alcotest.fail "expected trailing-bytes failure"
  with Failure _ -> ()

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec string-list roundtrip" ~count:200
    QCheck.(list (string_of_size (QCheck.Gen.int_bound 40)))
    (fun l ->
      l
      = Codec.decode (Codec.read_list Codec.read_string)
          (Codec.encode (fun b v -> Codec.write_list Codec.write_string b v) l))

(* ---- Pager ------------------------------------------------------------ *)

let test_pager_memory () =
  let p = Pager.in_memory () in
  let id = Pager.alloc p in
  check Alcotest.int "first page id" 1 id;
  let page = Bytes.make Pager.page_size 'x' in
  Pager.write p id page;
  check Alcotest.string "read back" (Bytes.to_string page) (Bytes.to_string (Pager.read p id));
  Pager.set_meta p 0 42;
  check Alcotest.int "meta" 42 (Pager.get_meta p 0);
  check Alcotest.int "page count" 1 (Pager.page_count p)

let test_pager_file_persistence () =
  let path = tmp_file ".pg" in
  let p = Pager.open_file path in
  let id1 = Pager.alloc p and id2 = Pager.alloc p in
  Pager.write p id1 (Bytes.make Pager.page_size 'a');
  Pager.write p id2 (Bytes.make Pager.page_size 'b');
  Pager.set_meta p 3 123;
  Pager.close p;
  let p2 = Pager.open_file path in
  check Alcotest.int "count persists" 2 (Pager.page_count p2);
  check Alcotest.int "meta persists" 123 (Pager.get_meta p2 3);
  check Alcotest.char "page 1" 'a' (Bytes.get (Pager.read p2 id1) 0);
  check Alcotest.char "page 2" 'b' (Bytes.get (Pager.read p2 id2) 0);
  Pager.close p2;
  Sys.remove path

let test_pager_bad_magic () =
  let path = tmp_file ".bad" in
  let oc = open_out path in
  output_string oc (String.make 8192 'z');
  close_out oc;
  (try
     ignore (Pager.open_file path);
     Alcotest.fail "expected magic failure"
   with Failure _ -> ());
  Sys.remove path

(* ---- Btree ------------------------------------------------------------ *)

let test_btree_basic () =
  let t = Btree.in_memory () in
  check Alcotest.bool "empty find" true (Btree.find t "k" = None);
  Btree.insert t ~key:"k" ~value:"v";
  check (Alcotest.option Alcotest.string) "find" (Some "v") (Btree.find t "k");
  Btree.insert t ~key:"k" ~value:"v2";
  check (Alcotest.option Alcotest.string) "replace" (Some "v2") (Btree.find t "k");
  check Alcotest.int "length counts replace once" 1 (Btree.length t);
  check Alcotest.bool "delete" true (Btree.delete t "k");
  check Alcotest.bool "delete missing" false (Btree.delete t "k");
  check Alcotest.int "length after delete" 0 (Btree.length t);
  Btree.check t

let test_btree_many_and_ordered_scan () =
  let t = Btree.in_memory () in
  let n = 5000 in
  (* insert in a scrambled order *)
  for i = 0 to n - 1 do
    let j = i * 2654435761 mod n in
    Btree.insert t ~key:(Printf.sprintf "key%06d" j) ~value:(string_of_int j)
  done;
  Btree.check t;
  check Alcotest.int "length" n (Btree.length t);
  (* full scan is ordered and complete *)
  let prev = ref "" and count = ref 0 in
  Btree.iter t (fun k _ ->
      if String.compare !prev k >= 0 then Alcotest.fail "scan out of order";
      prev := k;
      incr count);
  check Alcotest.int "scan count" n !count;
  (* point lookups *)
  for j = 0 to n - 1 do
    match Btree.find t (Printf.sprintf "key%06d" j) with
    | Some v when v = string_of_int j -> ()
    | _ -> Alcotest.failf "lookup %d failed" j
  done

let test_btree_range () =
  let t = Btree.in_memory () in
  List.iter (fun k -> Btree.insert t ~key:k ~value:(String.uppercase_ascii k))
    [ "apple"; "banana"; "cherry"; "date"; "fig" ];
  let got = Btree.fold_range t ~lo:"b" ~hi:"e" [] (fun acc k _ -> k :: acc) in
  check (Alcotest.list Alcotest.string) "range" [ "banana"; "cherry"; "date" ] (List.rev got);
  (* iter_from stops when callback returns false *)
  let seen = ref [] in
  Btree.iter_from t "banana" (fun k _ ->
      seen := k :: !seen;
      List.length !seen < 2);
  check Alcotest.int "early stop" 2 (List.length !seen)

let test_btree_big_values () =
  let t = Btree.in_memory () in
  let big = String.init 100_000 (fun i -> Char.chr (65 + (i mod 26))) in
  Btree.insert t ~key:"big" ~value:big;
  Btree.insert t ~key:"small" ~value:"s";
  check (Alcotest.option Alcotest.string) "overflow value" (Some big) (Btree.find t "big");
  check (Alcotest.option Alcotest.string) "small value" (Some "s") (Btree.find t "small");
  Btree.insert t ~key:"big" ~value:"now small";
  check (Alcotest.option Alcotest.string) "replace overflow" (Some "now small") (Btree.find t "big");
  Btree.check t

let test_btree_persistence () =
  let path = tmp_file ".bt" in
  Sys.remove path;
  let t = Btree.open_file path in
  for i = 0 to 999 do
    Btree.insert t ~key:(Printf.sprintf "k%04d" i) ~value:(Printf.sprintf "v%d" i)
  done;
  Btree.close t;
  let t2 = Btree.open_file path in
  check Alcotest.int "length persists" 1000 (Btree.length t2);
  check (Alcotest.option Alcotest.string) "value persists" (Some "v500") (Btree.find t2 "k0500");
  Btree.check t2;
  Btree.close t2;
  Sys.remove path

let test_btree_key_validation () =
  let t = Btree.in_memory () in
  (try
     Btree.insert t ~key:"" ~value:"v";
     Alcotest.fail "empty key accepted"
   with Invalid_argument _ -> ());
  try
    Btree.insert t ~key:(String.make 600 'k') ~value:"v";
    Alcotest.fail "oversized key accepted"
  with Invalid_argument _ -> ()

(* model-based property: btree behaves like Map *)
let prop_btree_model =
  let op_gen =
    QCheck.Gen.(
      pair (int_bound 2) (pair (int_bound 60) (string_size ~gen:printable (int_bound 12))))
  in
  QCheck.Test.make ~name:"btree = reference map under random ops" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_bound 400) op_gen))
    (fun ops ->
      let t = Btree.in_memory () in
      let m = ref [] in
      List.iter
        (fun (op, (ki, v)) ->
          let k = Printf.sprintf "k%03d" ki in
          match op with
          | 0 ->
            Btree.insert t ~key:k ~value:v;
            m := (k, v) :: List.remove_assoc k !m
          | 1 ->
            let expected = List.mem_assoc k !m in
            if Btree.delete t k <> expected then failwith "delete mismatch";
            m := List.remove_assoc k !m
          | _ ->
            if Btree.find t k <> List.assoc_opt k !m then failwith "find mismatch")
        ops;
      Btree.check t;
      Btree.length t = List.length !m)

(* ---- Kv ---------------------------------------------------------------- *)

let kv_suite make cleanup =
  let kv = make () in
  kv.Kv.insert ~key:"a:1" ~value:"x";
  kv.Kv.insert ~key:"a:2" ~value:"y";
  kv.Kv.insert ~key:"b:1" ~value:"z";
  check (Alcotest.option Alcotest.string) "find" (Some "y") (kv.Kv.find "a:2");
  check Alcotest.int "length" 3 (kv.Kv.length ());
  let pre = Kv.fold_prefix kv "a:" [] (fun acc k _ -> k :: acc) in
  check (Alcotest.list Alcotest.string) "prefix fold" [ "a:1"; "a:2" ] (List.rev pre);
  check Alcotest.bool "delete" true (kv.Kv.delete "a:1");
  check Alcotest.int "length after delete" 2 (kv.Kv.length ());
  kv.Kv.close ();
  cleanup ()

let test_kv_memory () = kv_suite Kv.memory (fun () -> ())

let test_kv_btree () =
  let path = tmp_file ".kv" in
  Sys.remove path;
  kv_suite (fun () -> Kv.btree_file path) (fun () -> Sys.remove path)

let test_btree_overflow_recycling () =
  let t = Btree.in_memory () in
  let big i = String.init 20_000 (fun j -> Char.chr (97 + ((i + j) mod 26))) in
  Btree.insert t ~key:"k" ~value:(big 0);
  (* replace the value many times: recycled pages keep everything sound *)
  for i = 1 to 50 do
    Btree.insert t ~key:"k" ~value:(big i)
  done;
  check (Alcotest.option Alcotest.string) "latest value wins" (Some (big 50)) (Btree.find t "k");
  Btree.check t;
  (* delete then insert an equally big value under another key: recycled *)
  ignore (Btree.delete t "k");
  Btree.insert t ~key:"k2" ~value:(big 7);
  check (Alcotest.option Alcotest.string) "recycled chain readable" (Some (big 7))
    (Btree.find t "k2");
  Btree.check t

let test_btree_overflow_file_stable () =
  let path = tmp_file ".ovf" in
  Sys.remove path;
  let t = Btree.open_file path in
  let big i = String.init 30_000 (fun j -> Char.chr (65 + ((i * 7 + j) mod 26))) in
  Btree.insert t ~key:"x" ~value:(big 0);
  Btree.sync t;
  let size1 = (Unix.stat path).Unix.st_size in
  for i = 1 to 40 do
    Btree.insert t ~key:"x" ~value:(big i)
  done;
  Btree.sync t;
  let size2 = (Unix.stat path).Unix.st_size in
  Btree.close t;
  Sys.remove path;
  (* steady state: one live chain plus one free chain (the new value is
     written before the old chain is released); without recycling this
     would be ~40 chains *)
  check Alcotest.bool
    (Printf.sprintf "file stable under rewrites (%d -> %d)" size1 size2)
    true
    (size2 <= 2 * size1)

(* ---- fault injection --------------------------------------------------------- *)

let test_btree_corrupt_page_detected () =
  (* flip a page-kind byte on disk; the next cold read must fail loudly,
     not return garbage *)
  let path = tmp_file ".cor" in
  Sys.remove path;
  let t = Btree.open_file path in
  for i = 0 to 500 do
    Btree.insert t ~key:(Printf.sprintf "key%04d" i) ~value:(String.make 40 'v')
  done;
  Btree.close t;
  (* corrupt the first data page *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd Pager.page_size Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\xff" 0 1);
  Unix.close fd;
  let t2 = Btree.open_file path in
  (try
     (* touch every page *)
     Btree.iter t2 (fun _ _ -> ());
     Btree.check t2;
     Alcotest.fail "corruption not detected"
   with Failure _ -> ());
  Sys.remove path

let test_pager_truncated_file () =
  let path = tmp_file ".tr" in
  Sys.remove path;
  let t = Btree.open_file path in
  for i = 0 to 2000 do
    Btree.insert t ~key:(Printf.sprintf "k%05d" i) ~value:"v"
  done;
  Btree.close t;
  (* truncate to half *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size / 2);
  Unix.close fd;
  let t2 = Btree.open_file path in
  (try
     Btree.iter t2 (fun _ _ -> ());
     Alcotest.fail "truncation not detected"
   with Failure _ | Invalid_argument _ -> ());
  Sys.remove path

let test_btree_reopen_after_sync_mid_stream () =
  (* sync, keep writing without closing, reopen from the synced prefix:
     the synced bindings must all be there and the tree well-formed *)
  let path = tmp_file ".syn" in
  Sys.remove path;
  let t = Btree.open_file path in
  for i = 0 to 299 do
    Btree.insert t ~key:(Printf.sprintf "s%04d" i) ~value:(string_of_int i)
  done;
  Btree.sync t;
  for i = 300 to 599 do
    Btree.insert t ~key:(Printf.sprintf "u%04d" i) ~value:(string_of_int i)
  done;
  (* no close: simulate a crash by reopening the file as written so far *)
  let t2 = Btree.open_file path in
  Btree.check t2;
  for i = 0 to 299 do
    match Btree.find t2 (Printf.sprintf "s%04d" i) with
    | Some v when v = string_of_int i -> ()
    | _ -> Alcotest.failf "synced binding %d lost" i
  done;
  Btree.close t2;
  Btree.close t;
  Sys.remove path

let test_index_delta_crash_mid_merge () =
  (* an incremental merge ([Index.save_delta]) is killed at its
     commit-point sync: every delta write may have reached the pager but
     none is durable. The reopened B+tree must serve the pre-merge
     generation byte-for-byte — never a torn mix of old and new postings *)
  let module Index = Xr_index.Index in
  let module Doc = Xr_xml.Doc in
  let module Tree = Xr_xml.Tree in
  let path = tmp_file ".mrg" in
  Sys.remove path;
  let base = Index.build (Xr_data.Figure1.doc ()) in
  let kv = Kv.btree_file path in
  Index.save base kv;
  let crash = { kv with Kv.sync = (fun () -> failwith "killed mid-merge") } in
  let next, changed =
    Index.append_partition_delta (Index.fork base)
      (Tree.elem "article" [ Tree.Elem (Tree.leaf "title" "torn merge victim") ])
  in
  (try
     Index.save_delta next crash ~changed;
     Alcotest.fail "crash sync not reached"
   with Failure _ -> ());
  (* no close: reopen the file as the dying process left it *)
  let t2 = Btree.open_file path in
  Btree.check t2;
  let reopened = Index.load (Kv.of_btree t2) in
  check Alcotest.bool "pre-merge keyword served" true
    (Doc.keyword_id reopened.Index.doc "xml" <> None);
  check Alcotest.bool "torn merge not visible" true
    (Doc.keyword_id reopened.Index.doc "torn" = None);
  (* byte-level: the surviving store equals a fresh save of the pre-merge
     index, binding for binding *)
  let dump kv =
    let acc = ref [] in
    kv.Kv.iter_from "" (fun k v ->
        acc := (k, v) :: !acc;
        true);
    List.rev !acc
  in
  let expect = Kv.memory () in
  Index.save base expect;
  check
    Alcotest.(list (pair string string))
    "reopened bindings = pre-merge generation" (dump expect) (dump (Kv.of_btree t2));
  Btree.close t2;
  Sys.remove path

let () =
  Alcotest.run "xr_store"
    [
      ( "codec",
        [
          Alcotest.test_case "scalars" `Quick test_codec_scalars;
          Alcotest.test_case "composites" `Quick test_codec_composites;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          qcheck prop_codec_roundtrip;
        ] );
      ( "pager",
        [
          Alcotest.test_case "memory" `Quick test_pager_memory;
          Alcotest.test_case "file persistence" `Quick test_pager_file_persistence;
          Alcotest.test_case "bad magic" `Quick test_pager_bad_magic;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basics" `Quick test_btree_basic;
          Alcotest.test_case "bulk + ordered scan" `Quick test_btree_many_and_ordered_scan;
          Alcotest.test_case "range scans" `Quick test_btree_range;
          Alcotest.test_case "overflow values" `Quick test_btree_big_values;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
          Alcotest.test_case "key validation" `Quick test_btree_key_validation;
          Alcotest.test_case "overflow recycling" `Quick test_btree_overflow_recycling;
          Alcotest.test_case "file stable under rewrites" `Quick test_btree_overflow_file_stable;
          qcheck prop_btree_model;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "corrupt page detected" `Quick test_btree_corrupt_page_detected;
          Alcotest.test_case "truncated file detected" `Quick test_pager_truncated_file;
          Alcotest.test_case "reopen after sync" `Quick test_btree_reopen_after_sync_mid_stream;
          Alcotest.test_case "index merge killed before commit" `Quick
            test_index_delta_crash_mid_merge;
        ] );
      ( "kv",
        [
          Alcotest.test_case "memory backend" `Quick test_kv_memory;
          Alcotest.test_case "btree backend" `Quick test_kv_btree;
        ] );
    ]
