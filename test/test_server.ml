(* The serving subsystem: JSON codec, HTTP parser hardening, sharded LRU
   accounting, worker-pool admission control, read-thread-safety of the
   shared index under parallel domains, and an end-to-end exchange over a
   real socket. *)

module Json = Xr_server.Json
module Http = Xr_server.Http
module Lru = Xr_server.Lru
module Pool = Xr_server.Pool
module Api = Xr_server.Api
module Server = Xr_server.Server
module Index = Xr_index.Index
module Engine = Xr_refine.Engine

let check = Alcotest.check

let qcheck = QCheck_alcotest.to_alcotest

(* ---- json --------------------------------------------------------------- *)

let test_json_encode () =
  check Alcotest.string "escaping"
    {json|{"s":"a\"b\\c\nd","n":null,"b":true}|json}
    (Json.to_string
       (Json.Obj [ ("s", Json.String "a\"b\\c\nd"); ("n", Json.Null); ("b", Json.Bool true) ]));
  check Alcotest.string "ints and floats" {json|[1,-2,1.5,0.25]|json}
    (Json.to_string (Json.List [ Json.Int 1; Json.Int (-2); Json.Float 1.5; Json.Float 0.25 ]));
  check Alcotest.string "float is never bare-int" "2.0" (Json.to_string (Json.Float 2.));
  check Alcotest.string "nan encodes as null" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "control chars" "\"\\u0001\""
    (Json.to_string (Json.String "\001"))

let test_json_parse () =
  (match Json.of_string {json| {"a": [1, 2.5, "xA", false], "b": {}} |json} with
  | Ok v ->
    check Alcotest.bool "structure" true
      (Json.equal v
         (Json.Obj
            [
              ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "xA"; Json.Bool false ]);
              ("b", Json.Obj []);
            ]))
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (match Json.of_string "{\"a\":1} trailing" with
  | Ok _ -> Alcotest.fail "trailing garbage accepted"
  | Error _ -> ());
  (match Json.of_string "{\"a\":}" with
  | Ok _ -> Alcotest.fail "malformed accepted"
  | Error _ -> ());
  match Json.of_string "" with
  | Ok _ -> Alcotest.fail "empty accepted"
  | Error _ -> ()

(* Round-trip: encode then decode is the identity (floats excluded: the
   12-significant-digit encoder is not injective on all doubles). *)
let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.Int i) small_signed_int;
            map (fun s -> Json.String s) string_printable;
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4) (pair string_printable (self (n / 2)))) );
          ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"json decode (encode v) = v"
    (QCheck.make json_gen ~print:Json.to_string)
    (fun v ->
      match Json.of_string (Json.to_string v) with Ok v' -> Json.equal v v' | Error _ -> false)

(* ---- http parser -------------------------------------------------------- *)

let parse s = Http.read_request (Http.reader_of_string s)

let test_http_request_ok () =
  match parse "GET /search?q=a+b%21&rank=true HTTP/1.1\r\nHost: x\r\nX-N: 1\r\n\r\n" with
  | Ok req ->
    check Alcotest.string "path" "/search" req.Http.path;
    check Alcotest.(option string) "q decoded (plus and percent)" (Some "a b!")
      (Http.query_param req "q");
    check Alcotest.(option string) "rank" (Some "true") (Http.query_param req "rank");
    check Alcotest.(option string) "header names lowercased" (Some "x")
      (Http.header req "HOST");
    check Alcotest.bool "1.1 defaults to keep-alive" true (Http.keep_alive req)
  | Error e -> Alcotest.failf "parse failed: %s" (Http.error_to_string e)

let expect_error name input pred =
  match parse input with
  | Ok _ -> Alcotest.failf "%s: malformed request accepted" name
  | Error e -> check Alcotest.bool (name ^ " error class") true (pred e)

let test_http_malformed () =
  let is_bad = function Http.Bad_request _ -> true | _ -> false in
  expect_error "missing version" "GET /x\r\n\r\n" is_bad;
  expect_error "two tokens" "GET  /x HTTP/1.1\r\n\r\n" is_bad;
  expect_error "bad version" "GET /x HTTP/2.0\r\n\r\n" is_bad;
  expect_error "bad method chars" "GE T /x HTTP/1.1\r\n\r\n" is_bad;
  expect_error "header without colon" "GET /x HTTP/1.1\r\nnocolon\r\n\r\n" is_bad;
  expect_error "header with bad name" "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n" is_bad;
  expect_error "negative content-length" "GET /x HTTP/1.1\r\ncontent-length: -4\r\n\r\n" is_bad;
  expect_error "truncated body" "POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc" is_bad;
  match parse "" with
  | Error Http.Eof -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty stream must be Eof"

let test_http_oversized () =
  let is_large = function Http.Too_large _ -> true | _ -> false in
  let long = String.make 9000 'a' in
  expect_error "oversized request line" ("GET /" ^ long ^ " HTTP/1.1\r\n\r\n") is_large;
  expect_error "oversized header line" ("GET /x HTTP/1.1\r\nh: " ^ long ^ "\r\n\r\n") is_large;
  let many =
    String.concat "" (List.init 100 (fun i -> Printf.sprintf "h%d: v\r\n" i))
  in
  expect_error "too many headers" ("GET /x HTTP/1.1\r\n" ^ many ^ "\r\n") is_large;
  expect_error "oversized body"
    "POST /x HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n" is_large;
  (* Custom limits bite earlier. *)
  let limits = { Http.default_limits with Http.max_request_line = 16 } in
  match Http.read_request ~limits (Http.reader_of_string "GET /a-rather-long-target HTTP/1.1\r\n\r\n") with
  | Error (Http.Too_large _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "custom max_request_line not enforced"

let test_http_keepalive () =
  let req v extra =
    match parse (Printf.sprintf "GET / %s\r\n%s\r\n" v extra) with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" (Http.error_to_string e)
  in
  check Alcotest.bool "1.1 default" true (Http.keep_alive (req "HTTP/1.1" ""));
  check Alcotest.bool "1.1 close" false
    (Http.keep_alive (req "HTTP/1.1" "Connection: close\r\n"));
  check Alcotest.bool "1.0 default" false (Http.keep_alive (req "HTTP/1.0" ""));
  check Alcotest.bool "1.0 keep-alive" true
    (Http.keep_alive (req "HTTP/1.0" "Connection: keep-alive\r\n"))

let test_http_response_roundtrip () =
  let resp = Http.json_response (Json.Obj [ ("x", Json.Int 1) ]) in
  let wire = Http.serialize ~keep_alive:true resp in
  match Http.read_response (Http.reader_of_string wire) with
  | Ok (status, headers, body) ->
    check Alcotest.int "status" 200 status;
    check Alcotest.(option string) "content-type" (Some "application/json")
      (List.assoc_opt "content-type" headers);
    check Alcotest.string "body" "{\"x\":1}\n" body
  | Error e -> Alcotest.failf "response parse: %s" (Http.error_to_string e)

(* ---- lru ----------------------------------------------------------------- *)

let test_lru_eviction_order () =
  (* One shard makes the LRU order fully observable. *)
  let c = Lru.create ~shards:1 ~capacity:3 () in
  Lru.add c "a" "1";
  Lru.add c "b" "2";
  Lru.add c "c" "3";
  ignore (Lru.find c "a");
  (* recency now a > c > b *)
  Lru.add c "d" "4";
  (* evicts b *)
  check Alcotest.(option string) "b evicted" None (Lru.find c "b");
  check Alcotest.(option string) "a kept" (Some "1") (Lru.find c "a");
  check Alcotest.(option string) "c kept" (Some "3") (Lru.find c "c");
  check Alcotest.(option string) "d kept" (Some "4") (Lru.find c "d");
  let s = Lru.stats c in
  check Alcotest.int "evictions" 1 s.Lru.evictions;
  check Alcotest.int "entries" 3 s.Lru.entries

let test_lru_accounting () =
  let c = Lru.create ~shards:4 ~capacity:8 () in
  check Alcotest.(option string) "miss on empty" None (Lru.find c "k");
  Lru.add c "k" "v";
  check Alcotest.(option string) "hit" (Some "v") (Lru.find c "k");
  Lru.add c "k" "v2";
  check Alcotest.(option string) "refresh" (Some "v2") (Lru.find c "k");
  let s = Lru.stats c in
  check Alcotest.int "hits" 2 s.Lru.hits;
  check Alcotest.int "misses" 1 s.Lru.misses;
  check Alcotest.int "entries" 1 s.Lru.entries;
  check Alcotest.int "shards" 4 s.Lru.shards

let test_lru_sharding () =
  let shards = 4 in
  let c = Lru.create ~shards ~capacity:100 () in
  let keys = List.init 200 (fun i -> "key-" ^ string_of_int i) in
  List.iter (fun k -> Lru.add c k k) keys;
  (* Every key lands on its hash shard, deterministically. *)
  List.iter
    (fun k ->
      let s = Lru.shard_of c k in
      check Alcotest.bool "shard in range" true (s >= 0 && s < shards);
      check Alcotest.int "stable" s (Lru.shard_of c k))
    keys;
  let s = Lru.stats c in
  check Alcotest.bool "capacity respected" true (s.Lru.entries <= 100);
  check Alcotest.bool "evictions happened" true (s.Lru.evictions >= 100);
  (* find never returns a wrong value *)
  List.iter
    (fun k -> match Lru.find c k with Some v -> check Alcotest.string "value" k v | None -> ())
    keys

let prop_lru_capacity =
  QCheck.Test.make ~count:100 ~name:"lru never exceeds capacity"
    QCheck.(pair (int_range 1 32) (small_list (pair small_printable_string small_printable_string)))
    (fun (capacity, ops) ->
      let c = Lru.create ~shards:3 ~capacity () in
      List.iter (fun (k, v) -> Lru.add c k v) ops;
      (Lru.stats c).Lru.entries <= capacity)

let test_lru_disabled () =
  let c = Lru.create ~capacity:0 () in
  Lru.add c "k" "v";
  check Alcotest.(option string) "never stores" None (Lru.find c "k");
  check Alcotest.int "still counts misses" 1 (Lru.stats c).Lru.misses

(* ---- pool ----------------------------------------------------------------- *)

let test_pool_runs_jobs () =
  let count = Atomic.make 0 in
  let pool = Pool.create ~domains:2 ~queue_bound:16 (fun n -> Atomic.fetch_and_add count n |> ignore) in
  let accepted = List.filter (fun n -> Pool.submit pool n) [ 1; 2; 3; 4; 5 ] in
  Pool.shutdown pool;
  check Alcotest.int "all jobs ran before shutdown returned"
    (List.fold_left ( + ) 0 accepted)
    (Atomic.get count);
  check Alcotest.int "no handler errors" 0 (Pool.handler_errors pool)

let test_pool_admission_control () =
  let gate = Semaphore.Counting.make 0 in
  let ran = Atomic.make 0 in
  let pool =
    Pool.create ~domains:1 ~queue_bound:2 (fun () ->
        Semaphore.Counting.acquire gate;
        Atomic.incr ran)
  in
  (* Rapid burst: 1 job can be in flight, 2 queued; the rest must be
     refused, not queued unboundedly. *)
  let accepted = List.length (List.filter (fun () -> Pool.submit pool ()) (List.init 8 (fun _ -> ()))) in
  check Alcotest.bool "refuses past the bound" true (accepted <= 3);
  check Alcotest.bool "accepts up to the bound" true (accepted >= 2);
  for _ = 1 to 8 do
    Semaphore.Counting.release gate
  done;
  Pool.shutdown pool;
  check Alcotest.int "accepted jobs all ran" accepted (Atomic.get ran)

let test_pool_handler_errors () =
  let pool = Pool.create ~domains:1 ~queue_bound:4 (fun () -> failwith "boom") in
  ignore (Pool.submit pool ());
  ignore (Pool.submit pool ());
  Pool.shutdown pool;
  check Alcotest.int "exceptions counted, workers survive" 2 (Pool.handler_errors pool)

let test_pool_rejects_after_shutdown () =
  let pool = Pool.create ~domains:1 ~queue_bound:4 (fun () -> ()) in
  Pool.shutdown pool;
  check Alcotest.bool "submit after shutdown refused" false (Pool.submit pool ())

(* ---- parallel domains over one shared index ------------------------------- *)

let fig1 = lazy (Index.build (Xr_data.Figure1.doc ()))

let dblp =
  lazy
    (Index.build
       (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 120 } ()))

let parallel_queries =
  [
    [ "database"; "title" ];
    [ "database"; "publication" ];
    (* refinement path *)
    [ "title" ];
    [ "xml"; "database" ];
    [ "publications"; "author" ];
  ]

(* Everything a worker does for /search and /refine, rendered to the exact
   bytes a client would receive. *)
let render_all index =
  List.concat_map
    (fun query ->
      let slcas = Engine.search index query in
      let search_json =
        Json.to_string
          (Api.search_payload index ~query ~ranked:false
             (List.map (fun d -> (d, 0.)) slcas))
      in
      let refine_json =
        Json.to_string (Api.refine_payload index ~query (Engine.refine index query))
      in
      [ search_json; refine_json ])
    parallel_queries

let test_parallel_consistency index_lazy () =
  let index = Lazy.force index_lazy in
  let baseline = render_all index in
  let domains = Array.init 4 (fun _ -> Domain.spawn (fun () -> render_all index)) in
  Array.iteri
    (fun i d ->
      let got = Domain.join d in
      List.iteri
        (fun j (expected, actual) ->
          check Alcotest.string (Printf.sprintf "domain %d output %d" i j) expected actual)
        (List.combine baseline got))
    domains

(* The cooccur memo is the only query-time write on the shared index;
   hammer it from several domains and verify the values stay correct. *)
let test_parallel_cooccur () =
  let index = Lazy.force dblp in
  let stats = index.Index.stats in
  let d = index.Index.doc in
  let kws =
    List.filter_map (Xr_xml.Doc.keyword_id d) [ "database"; "title"; "author"; "xml"; "publication" ]
  in
  let pairs =
    List.concat_map (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) kws) kws
  in
  let compute () =
    List.concat_map
      (fun (k1, k2) ->
        List.filter_map
          (fun p ->
            let v = Xr_index.Stats.cooccur stats ~path:p k1 k2 in
            if v = 0 then None else Some (p, k1, k2, v))
          (List.init (Xr_index.Stats.path_count stats) Fun.id))
      pairs
  in
  let seq = compute () in
  let doms = Array.init 4 (fun _ -> Domain.spawn compute) in
  Array.iter
    (fun dm ->
      let got = Domain.join dm in
      check Alcotest.bool "cooccur identical under parallelism" true (got = seq))
    doms

(* ---- end to end over a real socket ---------------------------------------- *)

let http_get fd target =
  Http.write_all fd (Printf.sprintf "GET %s HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n" target);
  match Http.read_response (Http.reader_of_fd fd) with
  | Ok r -> r
  | Error e -> Alcotest.failf "GET %s: %s" target (Http.error_to_string e)

let with_server config f =
  let index = Lazy.force fig1 in
  let server = Server.start config index in
  let acceptor = Domain.spawn (fun () -> Server.run server) in
  let port =
    match Server.bound_addr server with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "expected TCP"
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join acceptor)
    (fun () -> f server port)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let get_closing port target =
  let fd = connect port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> http_get fd target)

let test_e2e_roundtrip () =
  let config =
    { Server.default_config with Server.addr = Server.Tcp ("127.0.0.1", 0); domains = 2; log = false }
  in
  with_server config (fun server port ->
      let status, _, body = get_closing port "/health" in
      check Alcotest.int "health 200" 200 status;
      check Alcotest.string "health body" "{\"status\":\"ok\"}\n" body;
      let status, headers, body = get_closing port "/search?q=database+title" in
      check Alcotest.int "search 200" 200 status;
      check Alcotest.(option string) "miss first" (Some "miss") (List.assoc_opt "x-cache" headers);
      (match Json.of_string body with
      | Ok v ->
        check Alcotest.bool "count > 0" true
          (match Json.member "count" v with Some (Json.Int n) -> n > 0 | _ -> false)
      | Error msg -> Alcotest.failf "search body not JSON: %s" msg);
      (* Byte-identical to the in-process engine render. *)
      let index = Lazy.force fig1 in
      let expected =
        Json.to_string
          (Api.search_payload index ~query:[ "database"; "title" ] ~ranked:false ~limit:20
             (List.map (fun d -> (d, 0.)) (Engine.search index [ "database"; "title" ])))
        ^ "\n"
      in
      check Alcotest.string "byte-identical to sequential engine" expected body;
      let _, headers2, body2 = get_closing port "/search?q=database+title" in
      check Alcotest.(option string) "hit second" (Some "hit") (List.assoc_opt "x-cache" headers2);
      check Alcotest.string "cached bytes identical" body body2;
      (* Errors *)
      let status, _, _ = get_closing port "/search" in
      check Alcotest.int "missing q is 400" 400 status;
      let status, _, _ = get_closing port "/nope" in
      check Alcotest.int "unknown endpoint is 404" 404 status;
      let status, _, _ = get_closing port "/search?q=database&limit=wat" in
      check Alcotest.int "bad int param is 400" 400 status;
      (* Metrics reflect all of the above. /metrics is the Prometheus
         text exposition; the JSON document lives at /metrics.json. *)
      let status, _, prom = get_closing port "/metrics" in
      check Alcotest.int "metrics 200" 200 status;
      let contains hay needle =
        let n = String.length needle and len = String.length hay in
        let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
        scan 0
      in
      check Alcotest.bool "prometheus text has request counter" true
        (contains prom "xr_http_requests_total{");
      check Alcotest.bool "prometheus text has latency histogram" true
        (contains prom "# TYPE xr_http_request_duration_ms histogram");
      let status, _, body = get_closing port "/metrics.json" in
      check Alcotest.int "metrics.json 200" 200 status;
      (match Json.of_string body with
      | Ok m ->
        let cache_hits =
          match Option.bind (Json.member "cache" m) (Json.member "hits") with
          | Some (Json.Int h) -> h
          | _ -> -1
        in
        check Alcotest.bool "cache hits counted" true (cache_hits >= 1);
        (match Option.bind (Json.member "requests" m) (Json.member "total") with
        | Some (Json.Int n) -> check Alcotest.bool "requests counted" true (n >= 6)
        | _ -> Alcotest.fail "requests.total missing")
      | Error msg -> Alcotest.failf "metrics not JSON: %s" msg);
      ignore server)

let test_e2e_keepalive_and_405 () =
  let config =
    { Server.default_config with Server.addr = Server.Tcp ("127.0.0.1", 0); domains = 1; log = false }
  in
  with_server config (fun _server port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Http.reader_of_fd fd in
          let get target =
            Http.write_all fd (Printf.sprintf "GET %s HTTP/1.1\r\nhost: t\r\n\r\n" target);
            match Http.read_response reader with
            | Ok r -> r
            | Error e -> Alcotest.failf "keep-alive GET: %s" (Http.error_to_string e)
          in
          (* Several requests over one connection. *)
          let s1, _, _ = get "/health" in
          let s2, _, _ = get "/stats" in
          let s3, _, b3 = get "/complete?prefix=dat" in
          check Alcotest.int "first" 200 s1;
          check Alcotest.int "second" 200 s2;
          check Alcotest.int "third" 200 s3;
          check Alcotest.bool "completion found" true
            (match Json.of_string b3 with
            | Ok v -> (
              match Json.member "completions" v with
              | Some (Json.List (_ :: _)) -> true
              | _ -> false)
            | Error _ -> false);
          (* POST is refused politely. *)
          Http.write_all fd "POST /search HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n";
          match Http.read_response reader with
          | Ok (status, _, _) -> check Alcotest.int "POST is 405" 405 status
          | Error e -> Alcotest.failf "405 read: %s" (Http.error_to_string e)))

let test_e2e_malformed_gets_400 () =
  let config =
    { Server.default_config with Server.addr = Server.Tcp ("127.0.0.1", 0); domains = 1; log = false }
  in
  with_server config (fun _server port ->
      let fd = connect port in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Http.write_all fd "NOT-HTTP\r\n\r\n";
          match Http.read_response (Http.reader_of_fd fd) with
          | Ok (status, _, _) -> check Alcotest.int "malformed is 400" 400 status
          | Error e -> Alcotest.failf "read: %s" (Http.error_to_string e)))

(* ---- explain / analyze / trace lookup --------------------------------------- *)

let test_e2e_introspection () =
  let config =
    { Server.default_config with Server.addr = Server.Tcp ("127.0.0.1", 0); domains = 1; log = false }
  in
  with_server config (fun _server port ->
      let member2 k1 k2 v = Option.bind (Json.member k1 v) (Json.member k2) in
      (* explain=1 appends the compiled-plan block to a normal response. *)
      let status, _, body = get_closing port "/search?q=database+title&explain=1" in
      check Alcotest.int "explain 200" 200 status;
      let v = match Json.of_string body with Ok v -> v | Error e -> Alcotest.fail e in
      check Alcotest.bool "results still rendered" true
        (match Json.member "results" v with Some (Json.List (_ :: _)) -> true | _ -> false);
      (match member2 "explain" "kernel" v with
      | Some (Json.String k) -> check Alcotest.bool "kernel named" true (k <> "")
      | _ -> Alcotest.fail "explain.kernel missing");
      (match member2 "explain" "keywords" v with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "explain.keywords missing");
      (* The explain payload is byte-identical to the library's own
         compilation of the same query. *)
      let expected =
        Json.to_string (Api.explain_payload (Xr_batch.Plan.explain_search (Lazy.force fig1) [ "database"; "title" ]))
      in
      (match Json.member "explain" v with
      | Some x -> check Alcotest.string "explain = library compile" expected (Json.to_string x)
      | None -> Alcotest.fail "explain block missing");
      (* analyze=1 implies explain and adds actuals: stages with
         candidate counts, the GC delta, the pool-task fold. *)
      let status, _, body = get_closing port "/search?q=database+title&analyze=1" in
      check Alcotest.int "analyze 200" 200 status;
      let v = match Json.of_string body with Ok v -> v | Error e -> Alcotest.fail e in
      check Alcotest.bool "analyze implies explain" true (Json.member "explain" v <> None);
      (match member2 "analyze" "stages" v with
      | Some (Json.List (_ :: _ as stages)) ->
        check Alcotest.bool "stage names present" true
          (List.for_all
             (fun s -> match Json.member "stage" s with Some (Json.String _) -> true | _ -> false)
             stages)
      | _ -> Alcotest.fail "analyze.stages missing or empty");
      (match member2 "analyze" "gc" v with
      | Some gc ->
        check Alcotest.bool "gc delta has allocated_words" true
          (match Json.member "allocated_words" gc with Some (Json.Float _) -> true | _ -> false)
      | None -> Alcotest.fail "analyze.gc missing");
      (* ANALYZE bypasses the result cache, so the body must match the
         cacheable render it would otherwise shadow. *)
      let _, _, plain = get_closing port "/search?q=database+title" in
      let plain_v = match Json.of_string plain with Ok v -> v | Error e -> Alcotest.fail e in
      check Alcotest.bool "analyzed results = plain results" true
        (Json.member "results" v = Json.member "results" plain_v);
      (* /debug/trace?id= retrieves one trace; unknown and malformed ids
         answer 404/400 with a JSON error. *)
      let status, _, body = get_closing port "/debug/trace?id=999999" in
      check Alcotest.int "unknown trace is 404" 404 status;
      (match Json.of_string body with
      | Ok e -> check Alcotest.bool "404 body is error JSON" true (Json.member "error" e <> None)
      | Error e -> Alcotest.failf "404 body not JSON: %s" e);
      let status, _, _ = get_closing port "/debug/trace?id=wat" in
      check Alcotest.int "malformed trace id is 400" 400 status;
      (* An id captured from a latency exemplar resolves to its spans. *)
      let _, _, prom = get_closing port "/metrics" in
      let contains hay needle =
        let n = String.length needle and len = String.length hay in
        let rec scan i = i + n <= len && (String.sub hay i n = needle || scan (i + 1)) in
        scan 0
      in
      check Alcotest.bool "duration bucket carries exemplar" true
        (contains prom "xr_http_request_duration_ms_bucket{endpoint=\"/search\""
        && contains prom "# {trace_id=\"");
      check Alcotest.bool "gc families exported" true
        (contains prom "# TYPE xr_gc_heap_words gauge"
        && contains prom "# TYPE xr_gc_allocated_words_total counter");
      let tid =
        let marker = "# {trace_id=\"" in
        let rec find i =
          if i + String.length marker > String.length prom then Alcotest.fail "no exemplar"
          else if String.sub prom i (String.length marker) = marker then begin
            let j = ref (i + String.length marker) in
            while prom.[!j] <> '"' do incr j done;
            int_of_string (String.sub prom (i + String.length marker) (!j - i - String.length marker))
          end
          else find (i + 1)
        in
        find 0
      in
      let status, _, body = get_closing port (Printf.sprintf "/debug/trace?id=%d" tid) in
      check Alcotest.int "exemplar trace resolves" 200 status;
      match Json.of_string body with
      | Ok v ->
        check Alcotest.bool "trace document has spans" true
          (match Json.member "traces" v with Some (Json.List (_ :: _)) -> true | _ -> false)
      | Error e -> Alcotest.failf "trace body not JSON: %s" e)

(* The slow-query line carries the serving attribution (corpus,
   generation, index mode) next to the trace id and spans. *)
let test_slowlog_corpora () =
  let line =
    Xr_obs.Slowlog.render ~endpoint:"/search" ~status:200 ~ms:12.5 ~trace_id:3
      ~corpora:[ ("dblp", 4, "dag") ] []
  in
  let contains needle =
    let n = String.length needle and len = String.length line in
    let rec scan i = i + n <= len && (String.sub line i n = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "corpora field rendered" true
    (contains {|"corpora":[{"corpus":"dblp","generation":4,"index":"dag"}]|});
  check Alcotest.bool "trace id rendered" true (contains {|"trace":3|});
  let bare =
    Xr_obs.Slowlog.render ~endpoint:"/health" ~status:200 ~ms:1. ~trace_id:0 []
  in
  let bare_contains needle =
    let n = String.length needle and len = String.length bare in
    let rec scan i = i + n <= len && (String.sub bare i n = needle || scan (i + 1)) in
    scan 0
  in
  check Alcotest.bool "no corpora field when empty" false (bare_contains {|"corpora"|})

(* ---- api payload sanity ---------------------------------------------------- *)

let test_api_payloads () =
  let index = Lazy.force fig1 in
  let query = [ "database"; "title" ] in
  let slcas = Engine.search index query in
  let v =
    Api.search_payload index ~query ~ranked:false (List.map (fun d -> (d, 0.)) slcas)
  in
  check Alcotest.bool "search payload has results" true
    (match Json.member "results" v with Some (Json.List (_ :: _)) -> true | _ -> false);
  (* limit truncates the rendered list but not the count *)
  let limited =
    Api.search_payload index ~query ~ranked:false ~limit:0 (List.map (fun d -> (d, 0.)) slcas)
  in
  check Alcotest.bool "limit 0 renders no result" true
    (match Json.member "results" limited with Some (Json.List []) -> true | _ -> false);
  check Alcotest.bool "count survives limit" true
    (Json.member "count" limited = Json.member "count" v);
  let refined = Api.refine_payload index ~query:[ "database"; "publication" ]
      (Engine.refine index [ "database"; "publication" ])
  in
  check Alcotest.bool "refine outcome present" true
    (match Json.member "outcome" refined with Some (Json.String _) -> true | _ -> false)

(* ---- suite ------------------------------------------------------------------ *)

let () =
  Alcotest.run "xr_server"
    [
      ( "json",
        [
          Alcotest.test_case "encoder" `Quick test_json_encode;
          Alcotest.test_case "parser" `Quick test_json_parse;
          qcheck prop_json_roundtrip;
        ] );
      ( "http",
        [
          Alcotest.test_case "well-formed request" `Quick test_http_request_ok;
          Alcotest.test_case "malformed request lines" `Quick test_http_malformed;
          Alcotest.test_case "oversized inputs" `Quick test_http_oversized;
          Alcotest.test_case "keep-alive negotiation" `Quick test_http_keepalive;
          Alcotest.test_case "response round-trip" `Quick test_http_response_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "hit/miss accounting" `Quick test_lru_accounting;
          Alcotest.test_case "sharding" `Quick test_lru_sharding;
          Alcotest.test_case "capacity 0 disables" `Quick test_lru_disabled;
          qcheck prop_lru_capacity;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs submitted jobs" `Quick test_pool_runs_jobs;
          Alcotest.test_case "admission control refuses over bound" `Quick
            test_pool_admission_control;
          Alcotest.test_case "handler exceptions are contained" `Quick test_pool_handler_errors;
          Alcotest.test_case "rejects after shutdown" `Quick test_pool_rejects_after_shutdown;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "figure1: 4 domains = sequential" `Quick
            (test_parallel_consistency fig1);
          Alcotest.test_case "dblp: 4 domains = sequential" `Slow
            (test_parallel_consistency dblp);
          Alcotest.test_case "cooccur memo race-free" `Quick test_parallel_cooccur;
        ] );
      ( "api",
        [ Alcotest.test_case "payload shapes" `Quick test_api_payloads ] );
      ( "e2e",
        [
          Alcotest.test_case "socket round-trip, cache, errors" `Quick test_e2e_roundtrip;
          Alcotest.test_case "keep-alive and 405" `Quick test_e2e_keepalive_and_405;
          Alcotest.test_case "malformed request over socket" `Quick test_e2e_malformed_gets_400;
          Alcotest.test_case "explain/analyze/trace lookup" `Quick test_e2e_introspection;
          Alcotest.test_case "slow-query corpora field" `Quick test_slowlog_corpora;
        ] );
    ]
