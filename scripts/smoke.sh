#!/bin/sh
# End-to-end smoke test: generate a scratch corpus, start `xrefine serve`
# on it, curl every JSON endpoint asserting 200 + well-formed JSON, check
# the Prometheus text exposition at /metrics, check that repeated queries
# hit the result cache, POST a document through /ingest and assert it is
# queryable without a restart (and that no stale cached response
# survives the swap), then restart with two corpora over --shards 2 and
# drive a mixed read/write load through bench/loadgen.exe --check.
set -eu

PORT="${SMOKE_PORT:-18980}"
TMP=""
SERVER_PID=""

# Arm the trap before mktemp: a signal between mktemp and a later trap
# would otherwise leak the scratch directory.
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

TMP="$(mktemp -d)"

fail() { echo "smoke: FAIL - $*" >&2; exit 1; }

command -v curl >/dev/null || fail "curl not found"

# jq if present, python3 otherwise, for the well-formed-JSON assertion.
if command -v jq >/dev/null; then
  json_ok() { jq -e . >/dev/null 2>&1; }
  json_get() { jq -r "$1"; }
else
  json_ok() { python3 -c 'import json,sys; json.load(sys.stdin)' 2>/dev/null; }
  json_get() { python3 -c "import json,sys; d=json.load(sys.stdin)
for k in '$1'.strip('.').split('.'): d=d[k]
print(d)"; }
fi

echo "smoke: generating scratch corpus in $TMP"
dune exec --no-build xrefine -- generate dblp -n 200 -o "$TMP/corpus.xml" >/dev/null

# Start the server, walking up to 10 ports past SMOKE_PORT when the
# requested one is already occupied (parallel CI jobs, stale servers).
tries=0
while :; do
  echo "smoke: starting xrefine serve on port $PORT"
  dune exec --no-build xrefine -- serve -d "$TMP/corpus.xml" -p "$PORT" \
    --domains 2 --quiet >"$TMP/server.log" 2>&1 &
  SERVER_PID=$!

  BASE="http://127.0.0.1:$PORT"
  i=0
  up=1
  until curl -sf "$BASE/health" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { up=0; break; }
    kill -0 "$SERVER_PID" 2>/dev/null || { up=0; break; }
    sleep 0.1
  done
  [ "$up" = 1 ] && break

  if grep -qi 'address already in use\|EADDRINUSE' "$TMP/server.log" \
     && [ "$tries" -lt 9 ]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    tries=$((tries + 1))
    PORT=$((PORT + 1))
    echo "smoke: port occupied, retrying on $PORT"
    continue
  fi
  cat "$TMP/server.log" >&2
  fail "server did not come up"
done

# Each endpoint must answer 200 with a parseable JSON body.
# /search is queried twice on purpose: the second hit must come from the cache.
for target in \
  '/health' \
  '/stats' \
  '/search?q=database+title' \
  '/search?q=database+title' \
  '/search?q=database&rank=true&limit=5' \
  '/refine?q=data+base&k=2' \
  '/suggest?q=database' \
  '/complete?prefix=dat' \
  '/metrics.json' \
  '/debug/trace?last=4'
do
  status=$(curl -s -o "$TMP/body" -w '%{http_code}' "$BASE$target")
  [ "$status" = "200" ] || fail "$target returned $status"
  json_ok <"$TMP/body" || fail "$target body is not well-formed JSON"
  echo "smoke: ok $target"
done

# /metrics is the Prometheus text exposition, not JSON.
ct=$(curl -s -o "$TMP/prom" -w '%{content_type}' "$BASE/metrics")
case "$ct" in
  text/plain*) : ;;
  *) fail "/metrics content-type is '$ct' (want text/plain; version=0.0.4)" ;;
esac
grep -q '^xr_http_requests_total{' "$TMP/prom" || fail "/metrics lacks xr_http_requests_total"
grep -q '^# TYPE xr_http_request_duration_ms histogram' "$TMP/prom" \
  || fail "/metrics lacks the latency histogram TYPE line"
echo "smoke: ok /metrics (prometheus text)"

hits=$(curl -s "$BASE/metrics.json" | json_get '.cache.hits')
[ "$hits" -gt 0 ] 2>/dev/null || fail "expected cache hits > 0, got '$hits'"
echo "smoke: ok cache hits: $hits"

status=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/search")
[ "$status" = "400" ] || fail "/search without q returned $status (want 400)"
echo "smoke: ok /search without q -> 400"

# ---- ingest: a POSTed document is queryable without a restart ---------------
# Query a keyword the corpus cannot contain, twice, so the empty result
# is sitting in the cache; the ingest must make the next read see the new
# document — a stale cached body here means invalidation is broken.
count=$(curl -s "$BASE/search?q=smokefreshterm" | json_get '.count')
[ "$count" = "0" ] || fail "smokefreshterm unexpectedly present before ingest"
curl -s "$BASE/search?q=smokefreshterm" >/dev/null
status=$(curl -s -o "$TMP/body" -w '%{http_code}' \
  --data-binary '<article><title>smokefreshterm appears</title></article>' \
  "$BASE/ingest?sync=true")
[ "$status" = "200" ] || fail "/ingest returned $status"
json_ok <"$TMP/body" || fail "/ingest body is not well-formed JSON"
count=$(curl -s "$BASE/search?q=smokefreshterm" | json_get '.count')
[ "$count" = "1" ] || fail "ingested doc not visible (count=$count; stale cache?)"
echo "smoke: ok /ingest -> document visible, cache invalidated"

# The ingest CLI drives the same endpoint.
printf '<article><title>smokefreshterm again</title></article>\n' >"$TMP/doc2.xml"
dune exec --no-build xrefine -- ingest -p "$PORT" "$TMP/doc2.xml" >/dev/null \
  || fail "xrefine ingest CLI failed"
count=$(curl -s "$BASE/search?q=smokefreshterm" | json_get '.count')
[ "$count" = "2" ] || fail "CLI-ingested doc not visible (count=$count)"
echo "smoke: ok xrefine ingest CLI"

# Ingest observability: per-corpus write-path families in /metrics.
curl -s "$BASE/metrics" >"$TMP/prom"
grep -q '^xr_ingest_docs_indexed_total{' "$TMP/prom" || fail "/metrics lacks xr_ingest_docs_indexed_total"
grep -q '^xr_ingest_queue_depth{' "$TMP/prom" || fail "/metrics lacks xr_ingest_queue_depth"
grep -q '^xr_ingest_active_generations{' "$TMP/prom" || fail "/metrics lacks xr_ingest_active_generations"
grep -q '^# TYPE xr_ingest_merge_duration_ms histogram' "$TMP/prom" \
  || fail "/metrics lacks the merge latency histogram TYPE line"
echo "smoke: ok ingest metrics exported"

# ---- sharded serving: two corpora, scatter-gather, mixed read/write ---------
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# The auxiliary corpus shares no vocabulary with the read queries, so
# concurrent writes into it must leave read responses byte-identical —
# exactly what loadgen --check asserts against its sequential baseline.
cat >"$TMP/aux.xml" <<'EOF'
<catalog><item><name>widget alpha</name></item><item><name>widget beta</name></item></catalog>
EOF

PORT=$((PORT + 1))
tries=0
while :; do
  echo "smoke: starting sharded xrefine serve on port $PORT"
  dune exec --no-build xrefine -- serve -d "$TMP/corpus.xml" -d "$TMP/aux.xml" \
    --shards 2 -p "$PORT" --domains 2 --quiet >"$TMP/server2.log" 2>&1 &
  SERVER_PID=$!
  BASE="http://127.0.0.1:$PORT"
  i=0
  up=1
  until curl -sf "$BASE/health" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { up=0; break; }
    kill -0 "$SERVER_PID" 2>/dev/null || { up=0; break; }
    sleep 0.1
  done
  [ "$up" = 1 ] && break
  if grep -qi 'address already in use\|EADDRINUSE' "$TMP/server2.log" \
     && [ "$tries" -lt 9 ]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    tries=$((tries + 1))
    PORT=$((PORT + 1))
    echo "smoke: port occupied, retrying on $PORT"
    continue
  fi
  cat "$TMP/server2.log" >&2
  fail "sharded server did not come up"
done

shards=$(curl -s "$BASE/stats" | json_get '.shards')
[ "$shards" = "2" ] || fail "/stats reports shards=$shards (want 2)"
count=$(curl -s "$BASE/search?q=widget&corpus=aux" | json_get '.count')
[ "$count" = "2" ] || fail "corpus filter broken (aux widget count=$count)"
echo "smoke: ok sharded /stats and ?corpus= filter"

# Mixed read/write load: reads verified byte-for-byte against a
# sequential baseline while writes land in the aux corpus; loadgen then
# audits that the marker keyword's final count equals the acknowledged
# writes. Reads never block on the swaps or this would time out.
dune exec --no-build bench/loadgen.exe -- --port "$PORT" --clients 2 --duration 2 \
  --mix 1.0 --write-mix 30 --write-corpus aux --check \
  --query 'database title' --query 'database publication' \
  || fail "loadgen --write-mix --check failed"
echo "smoke: ok loadgen --write-mix --check"

echo "smoke: PASS"
