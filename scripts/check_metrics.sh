#!/bin/sh
# Prometheus exposition smoke check: generate a scratch corpus, start
# `xrefine serve`, drive a few requests, then fetch /metrics and validate
# the text exposition with a small parser — content type, line grammar
# (including the trace-id exemplar suffix on histogram buckets),
# TYPE-before-samples ordering, histogram bucket monotonicity, and the
# presence of the core xr_* families (request, cache, pool, GC, and
# cost-model-drift). Also asserts /metrics.json still parses as JSON
# with an application/json content type.
#
# Usage:
#   scripts/check_metrics.sh            # builds with dune, random-ish port
#   CHECK_METRICS_PORT=18990 scripts/check_metrics.sh
set -eu

cd "$(dirname "$0")/.."

PORT="${CHECK_METRICS_PORT:-18990}"
TMP=""
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
  [ -n "$TMP" ] && rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

TMP="$(mktemp -d)"

fail() { echo "check-metrics: FAIL - $*" >&2; exit 1; }

command -v curl >/dev/null || fail "curl not found"
command -v python3 >/dev/null || fail "python3 not found"

echo "check-metrics: generating scratch corpus"
dune exec xrefine -- generate dblp -n 200 -o "$TMP/corpus.xml" >/dev/null

tries=0
while :; do
  echo "check-metrics: starting xrefine serve on port $PORT"
  dune exec --no-build xrefine -- serve -d "$TMP/corpus.xml" -p "$PORT" \
    --domains 2 --quiet >"$TMP/server.log" 2>&1 &
  SERVER_PID=$!

  BASE="http://127.0.0.1:$PORT"
  i=0
  up=1
  until curl -sf "$BASE/health" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { up=0; break; }
    kill -0 "$SERVER_PID" 2>/dev/null || { up=0; break; }
    sleep 0.1
  done
  [ "$up" = 1 ] && break

  if grep -qi 'address already in use\|EADDRINUSE' "$TMP/server.log" \
     && [ "$tries" -lt 9 ]; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    tries=$((tries + 1))
    PORT=$((PORT + 1))
    echo "check-metrics: port occupied, retrying on $PORT"
    continue
  fi
  cat "$TMP/server.log" >&2
  fail "server did not come up"
done

# Drive enough traffic to populate every request-path family (including a
# repeated query for a cache hit).
for target in \
  '/search?q=database+title' \
  '/search?q=database+title' \
  '/refine?q=data+base&k=2' \
  '/stats' \
  '/health'
do
  curl -sf "$BASE$target" >/dev/null || fail "warm-up GET $target failed"
done

ct=$(curl -s -o "$TMP/metrics.txt" -w '%{content_type}' "$BASE/metrics")
[ "$ct" = "text/plain; version=0.0.4" ] \
  || fail "/metrics content-type is '$ct' (want 'text/plain; version=0.0.4')"

python3 - "$TMP/metrics.txt" <<'EOF'
import re, sys

path = sys.argv[1]
with open(path) as f:
    lines = f.read().split("\n")

# name{labels} value [exemplar] — labels optional; value is a
# prometheus float; the optional exemplar (' # {trace_id="N"} value')
# is only legal on _bucket samples (0.0.4 scrapers read it as a
# comment; OpenMetrics scrapers resolve the trace id).
FLOAT = r'-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?'
SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' (' + FLOAT + r'|[+-]Inf|NaN)'
    r'( # \{trace_id="[1-9]\d*"\} ' + FLOAT + r')?$')
HELP = re.compile(r'^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$')
TYPE = re.compile(r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$')

def fail(msg):
    print(f"check-metrics: FAIL - {msg}", file=sys.stderr)
    sys.exit(1)

types = {}          # family -> declared type
samples = {}        # family -> [(labels, value)]
base_of = lambda n: re.sub(r'_(bucket|sum|count)$', '', n)

for i, line in enumerate(lines):
    if line == "":
        continue
    if line.startswith("#"):
        if HELP.match(line) or TYPE.match(line):
            m = TYPE.match(line)
            if m:
                if m.group(1) in types:
                    fail(f"line {i+1}: duplicate TYPE for {m.group(1)}")
                types[m.group(1)] = m.group(2)
            continue
        fail(f"line {i+1}: malformed comment line: {line!r}")
    m = SAMPLE.match(line)
    if not m:
        fail(f"line {i+1}: malformed sample line: {line!r}")
    name, labels, value = m.group(1), m.group(2) or "", m.group(3)
    if m.group(4) and not name.endswith("_bucket"):
        fail(f"line {i+1}: exemplar on a non-bucket sample: {line!r}")
    family = base_of(name)
    if family not in types and name not in types:
        fail(f"line {i+1}: sample {name} has no preceding TYPE line")
    samples.setdefault(family if family in types else name, []).append((name, labels, value))

if not samples:
    fail("no samples at all")

# Histogram invariants: cumulative buckets monotone, end at +Inf == _count,
# and a _sum sample present, per label set.
def check_histograms():
    for family, typ in types.items():
        if typ != "histogram":
            continue
        groups = {}
        for name, labels, value in samples.get(family, []):
            # Strip the le label, then the brace wrapping, so a bucket of
            # an empty-label histogram ('{le="2"}' -> '') groups with its
            # bare-named _sum/_count samples ('' -> '').
            key = re.sub(r'le="(?:[^"\\]|\\.)*",?', "", labels).rstrip(",}").lstrip("{")
            g = groups.setdefault(key, {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]*)"', labels)
                if not le:
                    fail(f"{family}: _bucket sample without le label")
                g["buckets"].append((le.group(1), float(value)))
            elif name.endswith("_sum"):
                g["sum"] = float(value)
            elif name.endswith("_count"):
                g["count"] = float(value)
        if not groups:
            # A labeled family with no observed label sets yet exposes
            # just its HELP/TYPE header — legal, nothing to check.
            continue
        for key, g in groups.items():
            if not g["buckets"]:
                fail(f"{family}{key}: no _bucket samples")
            if g["buckets"][-1][0] != "+Inf":
                fail(f"{family}{key}: last bucket le={g['buckets'][-1][0]}, want +Inf")
            prev = -1.0
            for le, c in g["buckets"]:
                if c < prev:
                    fail(f"{family}{key}: cumulative bucket counts not monotone at le={le}")
                prev = c
            if g["count"] is None or g["sum"] is None:
                fail(f"{family}{key}: missing _sum or _count")
            if g["buckets"][-1][1] != g["count"]:
                fail(f"{family}{key}: +Inf bucket {g['buckets'][-1][1]} != _count {g['count']}")

check_histograms()

required = [
    "xr_http_requests_total",
    "xr_http_request_duration_ms",
    "xr_cache_hits_total",
    "xr_queue_depth",
    "xr_index_postings",
    "xr_pool_tasks_total",
    "xr_gc_heap_words",
    "xr_gc_major_heap_words",
    "xr_gc_minor_collections_total",
    "xr_gc_major_collections_total",
    "xr_gc_compactions_total",
    "xr_gc_minor_words_total",
    "xr_gc_promoted_words_total",
    "xr_gc_allocated_words_total",
    "xr_cost_model_drift_ratio",
]
for fam in required:
    if fam not in types:
        fail(f"required family {fam} missing from /metrics")

# The request-latency histogram must carry at least one exemplar after
# the warm-up traffic (every non-zero trace id is recorded
# last-writer-wins into its landing bucket).
with open(path) as f:
    text = f.read()
if not re.search(r'^xr_http_request_duration_ms_bucket\{[^}]*\} \d+ # \{trace_id="\d+"\}',
                 text, re.M):
    fail("no exemplar on any xr_http_request_duration_ms bucket")

print(f"check-metrics: exposition ok ({len(types)} families, "
      f"{sum(len(v) for v in samples.values())} samples)")
EOF

ct=$(curl -s -o "$TMP/metrics.json" -w '%{content_type}' "$BASE/metrics.json")
[ "$ct" = "application/json" ] \
  || fail "/metrics.json content-type is '$ct' (want application/json)"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$TMP/metrics.json" \
  || fail "/metrics.json is not well-formed JSON"
echo "check-metrics: /metrics.json ok"

echo "check-metrics: PASS"
