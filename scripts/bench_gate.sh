#!/bin/sh
# Bench regression gate: run the --smoke benchmarks and fail if any
# packed-vs-reference aggregate speedup dropped below parity, i.e. the
# packed kernels became slower than the legacy/reference paths they are
# supposed to replace.
#
# Usage:
#   scripts/bench_gate.sh
#
# Environment:
#   FRESH_SLCA=path    use a pre-made slca bench JSON instead of running
#   FRESH_REFINE=path  use a pre-made refine bench JSON instead of running
#   (both are how an injected regression is demonstrated / tested)
#
# The gate checks two things per bench:
#   1. the committed baseline (BENCH_slca.json / BENCH_refine.json) parses
#      and shows every `speedup_*_total` >= 1.0 — the committed numbers
#      must never claim a regression;
#   2. the fresh --smoke run shows every `speedup_*_total` >= 1.0 — the
#      tree being tested must not have regressed packed below parity.
set -eu

cd "$(dirname "$0")/.."

fail() { echo "bench-gate: FAIL - $*" >&2; exit 1; }

command -v python3 >/dev/null || fail "python3 not found"

TMP=""
cleanup() { [ -n "$TMP" ] && rm -rf "$TMP"; }
trap cleanup EXIT INT TERM
TMP="$(mktemp -d)"

# check_speedups FILE LABEL: every key named speedup_*_total, anywhere in
# the JSON, must be >= 1.0.
check_speedups() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

path, label = sys.argv[1], sys.argv[2]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench-gate: FAIL - {label}: cannot read {path}: {e}", file=sys.stderr)
    sys.exit(1)

found, bad = [], []
def walk(node, ctx):
    if isinstance(node, dict):
        name = node.get("name", ctx)
        for k, v in node.items():
            if k.startswith("speedup_") and k.endswith("_total"):
                found.append((name, k, v))
                if not (isinstance(v, (int, float)) and v >= 1.0):
                    bad.append((name, k, v))
            else:
                walk(v, name)
    elif isinstance(node, list):
        for v in node:
            walk(v, ctx)

walk(doc, "?")
if not found:
    print(f"bench-gate: FAIL - {label}: no speedup_*_total keys in {path}", file=sys.stderr)
    sys.exit(1)
for name, k, v in found:
    print(f"bench-gate: {label}: {name}.{k} = {v:.2f}")
if bad:
    for name, k, v in bad:
        print(f"bench-gate: FAIL - {label}: {name}.{k} = {v} < 1.0", file=sys.stderr)
    sys.exit(1)
EOF
}

# 1. committed baselines
check_speedups BENCH_slca.json "committed slca"
check_speedups BENCH_refine.json "committed refine"

# 2. fresh smoke runs (or injected substitutes)
if [ -n "${FRESH_SLCA:-}" ]; then
  cp "$FRESH_SLCA" "$TMP/slca.json"
else
  echo "bench-gate: running slca_bench --smoke"
  dune exec bench/slca_bench.exe -- --smoke --out "$TMP/slca.json" >/dev/null
fi
if [ -n "${FRESH_REFINE:-}" ]; then
  cp "$FRESH_REFINE" "$TMP/refine.json"
else
  echo "bench-gate: running refine_bench --smoke"
  dune exec bench/refine_bench.exe -- --smoke --out "$TMP/refine.json" >/dev/null
fi

check_speedups "$TMP/slca.json" "fresh slca"
check_speedups "$TMP/refine.json" "fresh refine"

echo "bench-gate: PASS"
