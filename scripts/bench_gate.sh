#!/bin/sh
# Bench regression gate: run the --smoke benchmarks and fail if any
# packed-vs-reference aggregate speedup dropped below parity, i.e. the
# packed kernels became slower than the legacy/reference paths they are
# supposed to replace.
#
# Usage:
#   scripts/bench_gate.sh
#
# Environment:
#   FRESH_SLCA=path      use a pre-made slca bench JSON instead of running
#   FRESH_REFINE=path    use a pre-made refine bench JSON instead of running
#   FRESH_PARALLEL=path  use a pre-made parallel bench JSON instead of running
#   FRESH_BATCH=path     use a pre-made batch bench JSON instead of running
#   FRESH_DAG=path       use a pre-made dag bench JSON instead of running
#   (these are how an injected regression is demonstrated / tested)
#   BENCH_OUT_DIR=dir    also copy the fresh smoke JSONs there (created if
#                        missing) — CI uploads them as workflow artifacts
#
# The gate checks two things per bench:
#   1. the committed baseline (BENCH_slca.json / BENCH_refine.json) parses
#      and shows every `speedup_*_total` >= 1.0 — the committed numbers
#      must never claim a regression;
#   2. the fresh --smoke run shows every `speedup_*_total` >= 0.90 — the
#      tree being tested must not have regressed packed below parity.
#      Fresh runs get a noise floor rather than strict parity because the
#      smallest corpus (figure1, 33 nodes) times in nanoseconds and swings
#      several percent run to run; a genuine regression is systematic and
#      clears 10% easily.
# The batch bench (BENCH_batch.json) is gated at the 0.90 noise floor for
# every `speedup_batch_c*_total` (c1 measures the batch layer's constant
# cost on an uncontended server — expected ~1.0, so only the noise floor
# applies) and additionally requires the concurrency-8 speedup >= 1.3 and
# `byte_identical` = true (batching must never change a response body).
# The slca bench additionally records `tracing_off_overhead_pct` — the
# cost of the observability instrumentation with tracing disabled,
# measured against the bare kernel in the same run — and
# `analyze_off_overhead_pct` — the cost of the ANALYZE collection
# machinery (pool-task wrapper + guarded stage notes) with no report
# active. Both are gated at <= 2.0 in the committed and the fresh file.
# The dag bench (BENCH_dag.json) gates the compression claim: the dblp
# `bytes_per_node_ratio` (dag/flat) must stay <= 0.5 in the committed
# full-size baseline and <= 0.6 in the fresh --smoke run (the 300-pub
# smoke corpus has proportionally less subtree repetition, so its floor
# is looser), and `speedup_dag_total` (flat-vs-dag query time on the
# serving mix) must stay >= 0.90 for every corpus of >= 1000 nodes —
# compression must not cost query throughput beyond the noise floor.
# Sub-1000-node corpora (figure1, 33 nodes) are reported but not
# speedup-gated: every keyword there is inside the native kernel's
# long-tail eligibility window, so the mix measures the kernel's
# documented per-scan constant (hundreds of ns absolute), not serving
# cost.
set -eu

cd "$(dirname "$0")/.."

fail() { echo "bench-gate: FAIL - $*" >&2; exit 1; }

command -v python3 >/dev/null || fail "python3 not found"

TMP=""
cleanup() { [ -n "$TMP" ] && rm -rf "$TMP"; }
trap cleanup EXIT INT TERM
TMP="$(mktemp -d)"

# check_speedups FILE LABEL [MIN]: every key named speedup_*_total,
# anywhere in the JSON, must be >= MIN (default 1.0; fresh runs pass
# 0.90 as a noise floor for the nanosecond-scale corpora).
check_speedups() {
  python3 - "$1" "$2" "${3:-1.0}" <<'EOF'
import json, sys

path, label, floor = sys.argv[1], sys.argv[2], float(sys.argv[3])
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench-gate: FAIL - {label}: cannot read {path}: {e}", file=sys.stderr)
    sys.exit(1)

found, bad = [], []
def walk(node, ctx):
    if isinstance(node, dict):
        name = node.get("name", ctx)
        for k, v in node.items():
            if k.startswith("speedup_") and k.endswith("_total"):
                found.append((name, k, v))
                if not (isinstance(v, (int, float)) and v >= floor):
                    bad.append((name, k, v))
            else:
                walk(v, name)
    elif isinstance(node, list):
        for v in node:
            walk(v, ctx)

walk(doc, "?")
if not found:
    print(f"bench-gate: FAIL - {label}: no speedup_*_total keys in {path}", file=sys.stderr)
    sys.exit(1)
for name, k, v in found:
    print(f"bench-gate: {label}: {name}.{k} = {v:.2f}")
if bad:
    for name, k, v in bad:
        print(f"bench-gate: FAIL - {label}: {name}.{k} = {v} < {floor}", file=sys.stderr)
    sys.exit(1)
EOF
}

# check_parallel FILE LABEL SKEWFLOOR: the parallel bench byte-compares
# against the sequential kernel before timing, so a parseable file
# already certifies correctness. Scaling is gated only on genuinely
# multicore numbers:
#   - a file produced on a single-core host MUST be tagged
#     "mode": "degraded" (untagged single-core numbers fail the gate —
#     they must never pass as a baseline) and its speedups are printed
#     but not enforced;
#   - a degraded tag always disables the speedup gates, whatever the
#     host count says — the tag is the bench's own honesty marker;
#   - on a multicore, non-degraded file: every corpus must carry the
#     full p1/p2/p4/p8 scaling curve, the dblp P=4 aggregate must be
#     >= 1.0 (>= 1.5 for a full-size run on >= 4 cores — the headline
#     serving-mix claim), and the skewed 4-keyword dblp query must be
#     >= SKEWFLOOR (1.0 committed, 0.90 fresh smoke noise floor).
check_parallel() {
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys

path, label, skew_floor = sys.argv[1], sys.argv[2], float(sys.argv[3])
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench-gate: FAIL - {label}: cannot read {path}: {e}", file=sys.stderr)
    sys.exit(1)

mode = doc.get("mode")
cores = doc.get("host_cores")
speedup = doc.get("speedup_dblp_p4_total")
skew = doc.get("speedup_dblp_p4_skew4")
if not isinstance(speedup, (int, float)):
    print(f"bench-gate: FAIL - {label}: no speedup_dblp_p4_total in {path}", file=sys.stderr)
    sys.exit(1)
skew_str = f"{skew:.2f}" if isinstance(skew, (int, float)) else str(skew)
print(f"bench-gate: {label}: mode={mode} host_cores={cores} "
      f"speedup_dblp_p4_total={speedup:.2f} speedup_dblp_p4_skew4={skew_str}")
if isinstance(cores, int) and cores < 2 and mode != "degraded":
    print(f"bench-gate: FAIL - {label}: single-core numbers not tagged "
          f"\"mode\": \"degraded\" - refusing them as a baseline", file=sys.stderr)
    sys.exit(1)
if mode == "degraded":
    print(f"bench-gate: {label}: degraded (single-core) file - speedups recorded, "
          f"NOT a scaling baseline, not gated")
    sys.exit(0)
if not (isinstance(cores, int) and cores >= 2):
    print(f"bench-gate: FAIL - {label}: no usable host_cores in {path}", file=sys.stderr)
    sys.exit(1)

bad = []
for c in doc.get("corpora", []):
    name = c.get("name", "?")
    curve = []
    for p in (1, 2, 4, 8):
        v = c.get(f"speedup_p{p}")
        if not isinstance(v, (int, float)):
            bad.append((f"{name}.speedup_p{p}", v, "present (full scaling curve)"))
        else:
            curve.append(f"p{p}={v:.2f}")
    print(f"bench-gate: {label}: {name} curve: {' '.join(curve)}")
if speedup < 1.0:
    bad.append(("speedup_dblp_p4_total", speedup, ">= 1.0"))
if doc.get("run") == "full" and cores >= 4 and speedup < 1.5:
    bad.append(("speedup_dblp_p4_total", speedup, ">= 1.5 (full run, >= 4 cores)"))
if not (isinstance(skew, (int, float)) and skew >= skew_floor):
    bad.append(("speedup_dblp_p4_skew4", skew, f">= {skew_floor}"))
if bad:
    for k, v, want in bad:
        print(f"bench-gate: FAIL - {label}: {k} = {v} (want {want})", file=sys.stderr)
    sys.exit(1)
EOF
}

# check_batch FILE LABEL: every speedup_batch_c*_total >= 0.90 (noise
# floor; c1 is a parity check on the uncontended path), the c8 speedup
# >= 1.3 (the headline aggregate-QPS win batching exists for), and
# byte_identical must be true.
check_batch() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

path, label = sys.argv[1], sys.argv[2]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench-gate: FAIL - {label}: cannot read {path}: {e}", file=sys.stderr)
    sys.exit(1)

found = {}
def walk(node):
    if isinstance(node, dict):
        for k, v in node.items():
            if k.startswith("speedup_batch_c") and k.endswith("_total"):
                found[k] = v
            else:
                walk(v)
    elif isinstance(node, list):
        for v in node:
            walk(v)

walk(doc)
if not found:
    print(f"bench-gate: FAIL - {label}: no speedup_batch_c*_total keys in {path}", file=sys.stderr)
    sys.exit(1)
mode = doc.get("mode")
cores = doc.get("host_cores")
print(f"bench-gate: {label}: mode={mode} host_cores={cores}")
if isinstance(cores, int) and cores < 2 and mode != "degraded":
    print(f"bench-gate: FAIL - {label}: single-core numbers not tagged "
          f"\"mode\": \"degraded\"", file=sys.stderr)
    sys.exit(1)
if mode == "degraded":
    print(f"bench-gate: {label}: degraded (single-core) file - coalescing wins are "
          f"still real (blocked followers, one render), so the QPS floors stay gated")
bad = []
for k, v in sorted(found.items()):
    print(f"bench-gate: {label}: {k} = {v:.2f}")
    if not (isinstance(v, (int, float)) and v >= 0.90):
        bad.append((k, v, 0.90))
c8 = found.get("speedup_batch_c8_total")
if not isinstance(c8, (int, float)):
    print(f"bench-gate: FAIL - {label}: no speedup_batch_c8_total in {path}", file=sys.stderr)
    sys.exit(1)
if c8 < 1.3:
    bad.append(("speedup_batch_c8_total", c8, 1.3))
if doc.get("byte_identical") is not True:
    print(f"bench-gate: FAIL - {label}: byte_identical is not true", file=sys.stderr)
    sys.exit(1)
if bad:
    for k, v, floor in bad:
        print(f"bench-gate: FAIL - {label}: {k} = {v} < {floor}", file=sys.stderr)
    sys.exit(1)
EOF
}

# check_overhead FILE LABEL: tracing_off_overhead_pct and
# analyze_off_overhead_pct must be present and <= 2.0 — instrumentation
# with tracing disabled, and the ANALYZE machinery with no report
# active, must each stay within 2% of the bare kernel.
check_overhead() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

path, label = sys.argv[1], sys.argv[2]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench-gate: FAIL - {label}: cannot read {path}: {e}", file=sys.stderr)
    sys.exit(1)

bad = False
for key in ("tracing_off_overhead_pct", "analyze_off_overhead_pct"):
    pct = doc.get(key)
    if not isinstance(pct, (int, float)):
        print(f"bench-gate: FAIL - {label}: no {key} in {path}", file=sys.stderr)
        sys.exit(1)
    print(f"bench-gate: {label}: {key} = {pct:+.2f}%")
    if pct > 2.0:
        print(f"bench-gate: FAIL - {label}: {key} {pct:.2f}% > 2.0%", file=sys.stderr)
        bad = True
if bad:
    sys.exit(1)
EOF
}

# check_dag FILE LABEL MAXRATIO: the dblp bytes_per_node_ratio (dag
# bytes over flat bytes, same document) must be <= MAXRATIO, and
# speedup_dag_total (flat/dag query time on the serving mix) >= 0.90
# for every corpus of >= 1000 nodes — the compression claim and the
# it-costs-nothing-at-query-time claim. Toy corpora below 1000 nodes
# time the native long-tail kernel's per-scan constant at ns scale, so
# their speedups are printed but not enforced (see header comment).
check_dag() {
  python3 - "$1" "$2" "$3" <<'EOF'
import json, sys

path, label, maxratio = sys.argv[1], sys.argv[2], float(sys.argv[3])
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"bench-gate: FAIL - {label}: cannot read {path}: {e}", file=sys.stderr)
    sys.exit(1)

print(f"bench-gate: {label}: host_cores = {doc.get('host_cores')}")
corpora = doc.get("corpora")
if not isinstance(corpora, list) or not corpora:
    print(f"bench-gate: FAIL - {label}: no corpora in {path}", file=sys.stderr)
    sys.exit(1)
bad = []
dblp_ratio = None
for c in corpora:
    name = c.get("name", "?")
    nodes = c.get("nodes", 0)
    ratio = c.get("bytes_per_node_ratio")
    speedup = c.get("speedup_dag_total")
    gated = isinstance(nodes, int) and nodes >= 1000
    print(f"bench-gate: {label}: {name}.bytes_per_node_ratio = {ratio:.3f}, "
          f"{name}.speedup_dag_total = {speedup:.2f}"
          + ("" if gated else f" (native-kernel regime, {nodes} nodes - not gated)"))
    if name == "dblp":
        dblp_ratio = ratio
    if gated and not (isinstance(speedup, (int, float)) and speedup >= 0.90):
        bad.append((f"{name}.speedup_dag_total", speedup, ">= 0.90"))
if dblp_ratio is None:
    print(f"bench-gate: FAIL - {label}: no dblp corpus in {path}", file=sys.stderr)
    sys.exit(1)
if not (isinstance(dblp_ratio, (int, float)) and dblp_ratio <= maxratio):
    bad.append(("dblp.bytes_per_node_ratio", dblp_ratio, f"<= {maxratio}"))
if bad:
    for k, v, want in bad:
        print(f"bench-gate: FAIL - {label}: {k} = {v} (want {want})", file=sys.stderr)
    sys.exit(1)
EOF
}

# 1. committed baselines
check_speedups BENCH_slca.json "committed slca"
check_overhead BENCH_slca.json "committed slca"
check_speedups BENCH_refine.json "committed refine"
check_parallel BENCH_parallel.json "committed parallel" 1.0
check_batch BENCH_batch.json "committed batch"
check_dag BENCH_dag.json "committed dag" 0.5

# 2. fresh smoke runs (or injected substitutes)
if [ -n "${FRESH_SLCA:-}" ]; then
  cp "$FRESH_SLCA" "$TMP/slca.json"
else
  echo "bench-gate: running slca_bench --smoke"
  dune exec bench/slca_bench.exe -- --smoke --out "$TMP/slca.json" >/dev/null
fi
if [ -n "${FRESH_REFINE:-}" ]; then
  cp "$FRESH_REFINE" "$TMP/refine.json"
else
  echo "bench-gate: running refine_bench --smoke"
  dune exec bench/refine_bench.exe -- --smoke --out "$TMP/refine.json" >/dev/null
fi

if [ -n "${FRESH_PARALLEL:-}" ]; then
  cp "$FRESH_PARALLEL" "$TMP/parallel.json"
else
  echo "bench-gate: running parallel_bench --smoke (asserts parallel = sequential)"
  dune exec bench/parallel_bench.exe -- --smoke --out "$TMP/parallel.json" >/dev/null
fi

if [ -n "${FRESH_BATCH:-}" ]; then
  cp "$FRESH_BATCH" "$TMP/batch.json"
else
  echo "bench-gate: running batch_bench --smoke (asserts batched = unbatched bytes)"
  dune exec bench/batch_bench.exe -- --smoke --out "$TMP/batch.json" >/dev/null
fi

if [ -n "${FRESH_DAG:-}" ]; then
  cp "$FRESH_DAG" "$TMP/dag.json"
else
  echo "bench-gate: running dag_bench --smoke (asserts dag = flat results)"
  dune exec bench/dag_bench.exe -- --smoke --out "$TMP/dag.json" >/dev/null
fi

if [ -n "${BENCH_OUT_DIR:-}" ]; then
  mkdir -p "$BENCH_OUT_DIR"
  for b in slca refine parallel batch dag; do
    cp "$TMP/$b.json" "$BENCH_OUT_DIR/BENCH_${b}_smoke.json"
  done
  echo "bench-gate: fresh smoke JSONs copied to $BENCH_OUT_DIR"
fi

check_speedups "$TMP/slca.json" "fresh slca" 0.90
check_overhead "$TMP/slca.json" "fresh slca"
check_speedups "$TMP/refine.json" "fresh refine" 0.90
check_parallel "$TMP/parallel.json" "fresh parallel" 0.90
check_batch "$TMP/batch.json" "fresh batch"
check_dag "$TMP/dag.json" "fresh dag" 0.6

echo "bench-gate: PASS"
