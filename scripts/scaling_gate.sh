#!/bin/sh
# Multicore scaling gate: run the parallel and batch bench smokes on a
# host with real cores and enforce the scaling claims that the ordinary
# bench gate must skip whenever the hardware is single-core:
#   - parallel: the file must NOT be degraded, every corpus must carry
#     the full p1/p2/p4/p8 curve, the dblp P=4 aggregate >= 1.0 and the
#     skewed 4-keyword dblp query >= 0.90 (smoke noise floor);
#   - batch: byte_identical and the concurrency-8 QPS win >= 1.3.
#
# CI invokes this behind an nproc guard; invoked on a single-core host
# it skips (exit 0) rather than producing meaningless time-sliced
# numbers.
#
# Usage: scripts/scaling_gate.sh
# Environment:
#   FRESH_PARALLEL=path  use a pre-made parallel bench JSON (testing)
#   FRESH_BATCH=path     use a pre-made batch bench JSON (testing)
set -eu

cd "$(dirname "$0")/.."

fail() { echo "scaling-gate: FAIL - $*" >&2; exit 1; }

command -v python3 >/dev/null || fail "python3 not found"

cores="$( (command -v nproc >/dev/null 2>&1 && nproc) || getconf _NPROCESSORS_ONLN || echo 1 )"
if [ "$cores" -lt 2 ]; then
  echo "scaling-gate: SKIP - host has $cores core(s); scaling needs >= 2"
  exit 0
fi
echo "scaling-gate: host_cores=$cores"

TMP=""
cleanup() { [ -n "$TMP" ] && rm -rf "$TMP"; }
trap cleanup EXIT INT TERM
TMP="$(mktemp -d)"

if [ -n "${FRESH_PARALLEL:-}" ]; then
  cp "$FRESH_PARALLEL" "$TMP/parallel.json"
else
  echo "scaling-gate: running parallel_bench --smoke"
  dune exec bench/parallel_bench.exe -- --smoke --out "$TMP/parallel.json" >/dev/null
fi
if [ -n "${FRESH_BATCH:-}" ]; then
  cp "$FRESH_BATCH" "$TMP/batch.json"
else
  echo "scaling-gate: running batch_bench --smoke"
  dune exec bench/batch_bench.exe -- --smoke --out "$TMP/batch.json" >/dev/null
fi

python3 - "$TMP/parallel.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
bad = []
if doc.get("mode") == "degraded":
    bad.append(("mode", "degraded", "a real multicore run"))
for c in doc.get("corpora", []):
    name = c.get("name", "?")
    curve = []
    for p in (1, 2, 4, 8):
        v = c.get(f"speedup_p{p}")
        if not isinstance(v, (int, float)):
            bad.append((f"{name}.speedup_p{p}", v, "present"))
        else:
            curve.append(f"p{p}={v:.2f}")
    print(f"scaling-gate: parallel: {name} curve: {' '.join(curve)}")
p4 = doc.get("speedup_dblp_p4_total")
skew = doc.get("speedup_dblp_p4_skew4")
if not (isinstance(p4, (int, float)) and p4 >= 1.0):
    bad.append(("speedup_dblp_p4_total", p4, ">= 1.0"))
if not (isinstance(skew, (int, float)) and skew >= 0.90):
    bad.append(("speedup_dblp_p4_skew4", skew, ">= 0.90"))
if bad:
    for k, v, want in bad:
        print(f"scaling-gate: FAIL - parallel: {k} = {v} (want {want})", file=sys.stderr)
    sys.exit(1)
print(f"scaling-gate: parallel: p4_total={p4:.2f} p4_skew4={skew:.2f}")
EOF

python3 - "$TMP/batch.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
bad = []
if doc.get("mode") == "degraded":
    bad.append(("mode", "degraded", "a real multicore run"))
if doc.get("byte_identical") is not True:
    bad.append(("byte_identical", doc.get("byte_identical"), "true"))
found = {}
def walk(node):
    if isinstance(node, dict):
        for k, v in node.items():
            if k.startswith("speedup_batch_c") and k.endswith("_total"):
                found[k] = v
            else:
                walk(v)
    elif isinstance(node, list):
        for v in node:
            walk(v)
walk(doc)
for k, v in sorted(found.items()):
    print(f"scaling-gate: batch: {k} = {v:.2f}")
c8 = found.get("speedup_batch_c8_total")
if not (isinstance(c8, (int, float)) and c8 >= 1.3):
    bad.append(("speedup_batch_c8_total", c8, ">= 1.3"))
if bad:
    for k, v, want in bad:
        print(f"scaling-gate: FAIL - batch: {k} = {v} (want {want})", file=sys.stderr)
    sys.exit(1)
EOF

echo "scaling-gate: PASS"
