.PHONY: all build test check smoke checkmetrics bench benchgate slcabench refinebench parallelbench batchbench dagbench paperbench examples quickbench clean fmt

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all && dune runtest
	scripts/bench_gate.sh

smoke: build
	scripts/smoke.sh

# Prometheus exposition check (the /metrics CI smoke step).
checkmetrics: build
	scripts/check_metrics.sh

# Smoke-size benchmarks (SLCA kernels + refinement pipeline + domain
# parallelism + batched execution + dag compression).
bench:
	dune exec bench/slca_bench.exe -- --smoke
	dune exec bench/refine_bench.exe -- --smoke
	dune exec bench/parallel_bench.exe -- --smoke
	dune exec bench/batch_bench.exe -- --smoke
	dune exec bench/dag_bench.exe -- --smoke

# Regression gate: committed BENCH files and a fresh smoke run must both
# keep every packed-vs-legacy aggregate speedup at >= 1.0.
benchgate: build
	scripts/bench_gate.sh

# Full-size SLCA kernel benchmark (the committed BENCH_slca.json).
slcabench:
	dune exec bench/slca_bench.exe

# Full-size refinement benchmark (the committed BENCH_refine.json).
refinebench:
	dune exec bench/refine_bench.exe

# Full-size parallel SLCA benchmark (the committed BENCH_parallel.json).
parallelbench:
	dune exec bench/parallel_bench.exe

# Full-size batched-execution benchmark (the committed BENCH_batch.json).
batchbench:
	dune exec bench/batch_bench.exe

# Full-size dag-vs-flat index benchmark (the committed BENCH_dag.json).
dagbench:
	dune exec bench/dag_bench.exe

fmt:
	dune build @fmt --auto-promote

# The paper's full evaluation suite (tables and figures).
paperbench:
	dune exec bench/main.exe

quickbench:
	dune exec bench/main.exe -- --quick

examples:
	@for e in quickstart bibliography_search sponsored_search baseball_explore live_catalog paper_walkthrough; do \
	  echo "== examples/$$e"; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
