.PHONY: all build test check smoke bench examples quickbench clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all && dune runtest

smoke: build
	scripts/smoke.sh

bench:
	dune exec bench/main.exe

quickbench:
	dune exec bench/main.exe -- --quick

examples:
	@for e in quickstart bibliography_search sponsored_search baseball_explore live_catalog paper_walkthrough; do \
	  echo "== examples/$$e"; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
