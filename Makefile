.PHONY: all build test check smoke bench slcabench paperbench examples quickbench clean

all: build

build:
	dune build @all

test:
	dune runtest

check:
	dune build @all && dune runtest
	dune exec bench/slca_bench.exe -- --smoke --out /tmp/BENCH_slca_check.json

smoke: build
	scripts/smoke.sh

# SLCA kernel benchmark (packed vs reference); writes BENCH_slca.json.
bench:
	dune exec bench/slca_bench.exe -- --smoke

# Full-size SLCA kernel benchmark (the committed BENCH_slca.json).
slcabench:
	dune exec bench/slca_bench.exe

# The paper's full evaluation suite (tables and figures).
paperbench:
	dune exec bench/main.exe

quickbench:
	dune exec bench/main.exe -- --quick

examples:
	@for e in quickstart bibliography_search sponsored_search baseball_explore live_catalog paper_walkthrough; do \
	  echo "== examples/$$e"; dune exec examples/$$e.exe; echo; done

clean:
	dune clean
