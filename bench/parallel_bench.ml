(* Parallel SLCA benchmark: sequential scan-packed vs the cost-modeled
   chunked kernel on pools of 1, 2, 4 and 8 domains (the scaling
   curve), over the bundled corpora. Every parallel run is
   byte-compared against the sequential output before timing — the
   bench doubles as an equality assertion. Usage:

     dune exec bench/parallel_bench.exe                 # full sizes
     dune exec bench/parallel_bench.exe -- --smoke      # small sizes (CI)
     dune exec bench/parallel_bench.exe -- --out PATH   # JSON location

   Writes BENCH_parallel.json. [host_cores] records the machine the
   numbers came from. On a single-core host the file is tagged
   ["mode": "degraded"] ([run] keeps the smoke/full size): domains
   time-sliced on one core measure the scheduler, not the kernel, and
   scripts/bench_gate.sh refuses to treat a degraded file as a scaling
   baseline — it only checks honesty (the tag) and correctness (the
   byte-compare), never the speedups. *)

module Engine = Xr_slca.Engine
module Parallel = Xr_slca.Parallel
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Doc = Xr_xml.Doc
module Dewey = Xr_xml.Dewey
module Json = Xr_server.Json

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

let median a =
  let a = Array.copy a in
  Array.sort Float.compare a;
  a.(Array.length a / 2)

let bench_call f =
  ignore (f ());
  let iters = ref 1 in
  let sample () = time_ns (fun () -> for _ = 1 to !iters do ignore (f ()) done) in
  while sample () < 1e7 && !iters < 10_000_000 do
    iters := !iters * 4
  done;
  median (Array.init 5 (fun _ -> sample () /. float_of_int !iters))

let corpora ~smoke =
  let dblp_pubs = if smoke then 300 else 3500 in
  [
    ("figure1", Xr_data.Figure1.doc ());
    ("baseball", Xr_data.Baseball.doc ());
    ("auction", Xr_data.Auction.doc ());
    ("dblp", Doc.of_tree (Xr_data.Dblp.scaled ~publications:dblp_pubs ~seed:2009));
  ]

let frequent_keywords (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  List.map fst (List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc)

let queries (index : Index.t) =
  match frequent_keywords index with
  | k0 :: k1 :: k2 :: k3 :: rest ->
    let tail = match List.rev rest with t :: _ -> [ t ] | [] -> [] in
    [ [ k0; k1 ]; [ k0; k1; k2 ]; [ k0; k1; k2; k3 ]; ([ k0 ] @ tail) ]
    |> List.filter (fun q -> List.length q >= 2)
  | k0 :: k1 :: _ -> [ [ k0; k1 ] ]
  | _ -> []

(* P=1 anchors the curve: it exercises the cost gate's sequential
   fallback, so its speedup doubles as a no-overhead check (~1.0). *)
let pool_sizes = [ 1; 2; 4; 8 ]

let () =
  let args = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" args in
  let rec out_of = function
    | "--out" :: p :: _ -> p
    | _ :: rest -> out_of rest
    | [] -> "BENCH_parallel.json"
  in
  let out = out_of args in
  let host_cores = Domain.recommended_domain_count () in
  let pools = List.map (fun p -> (p, Xr_pool.create ~domains:p ())) pool_sizes in
  Printf.printf "host cores: %d\n%!" host_cores;
  let dblp_p4 = ref (1., 1.) (* sequential ns total, P=4 ns total — the gated pair *) in
  (* the formerly 2.2x-slower skewed 4-keyword dblp query, gated on its
     own so skew regressions can't hide inside the aggregate *)
  let dblp_skew4 = ref (1., 1.) in
  let corpus_json = ref [] in
  List.iter
    (fun (name, doc) ->
      (* Pinned flat: these benches measure their kernels, not the index
         representation — bench/dag_bench.exe owns the flat-vs-dag
         comparison, so the numbers here stay stable across the CI
         XR_INDEX matrix. *)
      let index = Index.build ~mode:Index.Flat doc in
      Printf.printf "\n== %s: %d nodes ==\n%!" name (Doc.node_count doc);
      let seq_total = ref 0. in
      let par_total = Hashtbl.create 4 in
      let query_json = ref [] in
      List.iter
        (fun ids ->
          let words = List.map (Doc.keyword_name doc) ids in
          let lists =
            List.map
              (fun kw -> (Inverted.packed_list index.Index.inverted kw).Inverted.labels)
              ids
          in
          let sequential = Xr_slca.Scan_packed.compute lists in
          (* byte-equality first, on every pool size and a few forced
             chunkings — the acceptance gate of the whole kernel *)
          List.iter
            (fun (p, pool) ->
              List.iter
                (fun chunks ->
                  let got = Parallel.compute ~pool ?chunks ~threshold:0 lists in
                  if not (List.equal Dewey.equal got sequential) then
                    failwith
                      (Printf.sprintf "parallel (P=%d) disagrees with sequential on %s {%s}" p
                         name (String.concat " " words)))
                [ None; Some 3; Some 7 ])
            pools;
          let seq_ns = bench_call (fun () -> Xr_slca.Scan_packed.compute lists) in
          seq_total := !seq_total +. seq_ns;
          let per_pool =
            List.map
              (fun (p, pool) ->
                let ns = bench_call (fun () -> Parallel.compute ~pool ~threshold:0 lists) in
                Hashtbl.replace par_total p
                  (ns +. (try Hashtbl.find par_total p with Not_found -> 0.));
                (p, ns))
              pools
          in
          if name = "dblp" && List.length ids = 4 then
            dblp_skew4 := (seq_ns, (try List.assoc 4 per_pool with Not_found -> seq_ns));
          Printf.printf "  {%s}: %d slca | seq %9.0fns | %s\n%!" (String.concat " " words)
            (List.length sequential) seq_ns
            (String.concat " | "
               (List.map
                  (fun (p, ns) -> Printf.sprintf "P=%d %9.0fns (%.2fx)" p ns (seq_ns /. ns))
                  per_pool));
          query_json :=
            Json.Obj
              [
                ("keywords", Json.List (List.map (fun w -> Json.String w) words));
                ("results", Json.Int (List.length sequential));
                ("sequential_ns", Json.Float seq_ns);
                ( "parallel_ns",
                  Json.Obj
                    (List.map (fun (p, ns) -> (Printf.sprintf "p%d" p, Json.Float ns)) per_pool)
                );
              ]
            :: !query_json)
        (queries index);
      let speedups =
        List.map
          (fun p ->
            let t = try Hashtbl.find par_total p with Not_found -> !seq_total in
            (p, !seq_total /. t))
          pool_sizes
      in
      if name = "dblp" then
        dblp_p4 := (!seq_total, (try Hashtbl.find par_total 4 with Not_found -> !seq_total));
      Printf.printf "  aggregate: %s\n%!"
        (String.concat ", "
           (List.map (fun (p, s) -> Printf.sprintf "P=%d %.2fx" p s) speedups));
      corpus_json :=
        Json.Obj
          ([
             ("name", Json.String name);
             ("nodes", Json.Int (Doc.node_count doc));
             ("sequential_ns_total", Json.Float !seq_total);
             ("queries", Json.List (List.rev !query_json));
           ]
          @ List.map
              (fun (p, s) -> (Printf.sprintf "speedup_p%d" p, Json.Float s))
              speedups)
        :: !corpus_json)
    (corpora ~smoke);
  List.iter (fun (_, pool) -> Xr_pool.shutdown pool) pools;
  let seq_dblp, p4_dblp = !dblp_p4 in
  let seq_skew4, p4_skew4 = !dblp_skew4 in
  let payload =
    Json.Obj
      [
        ("bench", Json.String "slca-parallel-vs-sequential");
        (* a single-core host can only produce degraded numbers: tag the
           file so the gate never mistakes it for a scaling baseline *)
        ( "mode",
          Json.String
            (if host_cores < 2 then "degraded" else if smoke then "smoke" else "full") );
        ("run", Json.String (if smoke then "smoke" else "full"));
        ("host_cores", Json.Int host_cores);
        ("pool_sizes", Json.List (List.map (fun p -> Json.Int p) pool_sizes));
        ("corpora", Json.List (List.rev !corpus_json));
        (* the gated keys: dblp aggregate at P=4 and the skewed
           4-keyword query on its own; enforced only when host_cores
           >= 2 and mode is not degraded (see scripts/bench_gate.sh) *)
        ("speedup_dblp_p4_total", Json.Float (seq_dblp /. p4_dblp));
        ("speedup_dblp_p4_skew4", Json.Float (seq_skew4 /. p4_skew4));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string payload);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out
