(* DAG-compressed vs flat index benchmark. Usage:

     dune exec bench/dag_bench.exe                 # full sizes
     dune exec bench/dag_bench.exe -- --smoke      # small sizes (CI)
     dune exec bench/dag_bench.exe -- --out PATH   # JSON location

   For every bundled corpus this builds the same document under both
   index representations and reports
     - bytes/node of each form and their ratio (dag/flat) — the
       compression claim, gated on dblp by bench_gate.sh;
     - the serving query mix timed on both (identical results asserted)
       — the "compression costs nothing at query time" claim, gated at
       a 0.90 noise floor;
     - one native-kernel query (few occurrence classes, so the scan
       runs on the expansion without merging), informational.

   Writes BENCH_dag.json (see doc/PERF.md for how to read it). *)

module Engine = Xr_slca.Engine
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Doc = Xr_xml.Doc
module Json = Xr_server.Json

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

(* Interleaved A/B minima, as in slca_bench: samples of the two sides
   alternate within one run and each keeps its best, cancelling machine
   speed out of the ratio. *)
let bench_pair fa fb =
  ignore (fa ());
  ignore (fb ());
  let iters = ref 1 in
  let sample f = time_ns (fun () -> for _ = 1 to !iters do ignore (f ()) done) in
  while sample fa < 1e7 && !iters < 10_000_000 do
    iters := !iters * 4
  done;
  let best_a = ref infinity and best_b = ref infinity in
  for _ = 1 to 7 do
    best_a := Float.min !best_a (sample fa);
    best_b := Float.min !best_b (sample fb)
  done;
  let n = float_of_int !iters in
  (!best_a /. n, !best_b /. n)

let corpora ~smoke =
  let dblp_pubs = if smoke then 300 else 3500 in
  [
    ("figure1", Xr_data.Figure1.doc ());
    ("baseball", Xr_data.Baseball.doc ());
    ("auction", Xr_data.Auction.doc ());
    ( "dblp",
      Doc.of_tree (Xr_data.Dblp.scaled ~publications:dblp_pubs ~seed:2009) );
  ]

(* Keyword ids by descending posting-list length (computed on the flat
   build, where the lists are already materialized). *)
let frequent_keywords (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  List.map fst (List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc)

(* The serving mix of slca_bench: frequent pairs/triples plus one
   frequent/infrequent pair. Frequent keywords have many occurrence
   classes, so on the dag index these take the memoized-merge path —
   exactly the steady-state serving cost the gate protects. *)
let queries (index : Index.t) =
  match frequent_keywords index with
  | k0 :: k1 :: k2 :: k3 :: rest ->
    let tail = match List.rev rest with t :: _ -> [ t ] | [] -> [] in
    [ [ k0; k1 ]; [ k0; k1; k2 ]; [ k0; k1; k2; k3 ]; ([ k0 ] @ tail) ]
    |> List.filter (fun q -> List.length q >= 2)
  | k0 :: k1 :: _ -> [ [ k0; k1 ] ]
  | _ -> []

(* The two most frequent keywords that stay inside the native kernel's
   eligibility window (few classes, small lists) — the long-tail regime
   the dispatcher serves off the expansion without merging. *)
let native_query dag =
  let climit = Xr_slca.Scan_dag.class_limit () in
  let plimit = Xr_slca.Scan_dag.postings_limit () in
  let acc = ref [] in
  for kw = 0 to Xr_dag.vocab dag - 1 do
    let n = Xr_dag.posting_count dag kw in
    let c = Xr_dag.class_count dag kw in
    if n > 0 && c <= climit && n <= plimit then acc := (kw, n) :: !acc
  done;
  match List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc with
  | (k0, _) :: (k1, _) :: _ -> Some [ k0; k1 ]
  | _ -> None

let check_equal ~corpus ~what words reference got =
  if not (List.equal Xr_xml.Dewey.equal got reference) then
    failwith
      (Printf.sprintf "dag %s disagrees with flat on %s {%s}" what corpus
         (String.concat " " words))

let () =
  let args = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" args in
  let rec out_of = function
    | "--out" :: p :: _ -> p
    | _ :: rest -> out_of rest
    | [] -> "BENCH_dag.json"
  in
  let out = out_of args in
  let corpus_json = ref [] in
  List.iter
    (fun (name, doc) ->
      let flat = Index.build ~mode:Index.Flat doc in
      let dagged = Index.build ~mode:Index.Dag doc in
      let dag =
        match Inverted.dag dagged.Index.inverted with
        | Some d -> d
        | None -> assert false
      in
      let nodes = Doc.node_count doc in
      let flat_bytes = Inverted.resident_bytes flat.Index.inverted in
      let dag_bytes = Xr_dag.bytes dag in
      let per_node b = float_of_int b /. float_of_int (max 1 nodes) in
      let bytes_ratio = float_of_int dag_bytes /. float_of_int flat_bytes in
      let s = Xr_dag.stats dag in
      Printf.printf
        "\n== %s: %d nodes | flat %d B (%.1f/node) -> dag %d B (%.1f/node), ratio %.3f | \
         %d classes (node dedup %.3f, edge dedup %.3f) ==\n%!"
        name nodes flat_bytes (per_node flat_bytes) dag_bytes (per_node dag_bytes)
        bytes_ratio s.Xr_dag.classes (Xr_dag.node_dedup_ratio dag)
        (Xr_dag.edge_dedup_ratio dag);
      let flat_total = ref 0. and dag_total = ref 0. in
      let query_json = ref [] in
      List.iter
        (fun ids ->
          let words = List.map (Doc.keyword_name doc) ids in
          let reference = Engine.query_ids Engine.Scan_packed flat ids in
          let got = Engine.query_ids Engine.Scan_packed dagged ids in
          check_equal ~corpus:name ~what:"query" words reference got;
          let flat_ns, dag_ns =
            bench_pair
              (fun () -> Engine.query_ids Engine.Scan_packed flat ids)
              (fun () -> Engine.query_ids Engine.Scan_packed dagged ids)
          in
          flat_total := !flat_total +. flat_ns;
          dag_total := !dag_total +. dag_ns;
          Printf.printf "  {%s}: %d slca | flat %8.0fns | dag %8.0fns (%.2fx)\n%!"
            (String.concat " " words) (List.length reference) flat_ns dag_ns
            (flat_ns /. dag_ns);
          query_json :=
            Json.Obj
              [
                ("keywords", Json.List (List.map (fun w -> Json.String w) words));
                ("results", Json.Int (List.length reference));
                ("flat_ns", Json.Float flat_ns);
                ("dag_ns", Json.Float dag_ns);
                ("speedup_dag", Json.Float (flat_ns /. dag_ns));
              ]
            :: !query_json)
        (queries flat);
      let speedup_total = if !dag_total > 0. then !flat_total /. !dag_total else 1. in
      (* Native-kernel exposure, informational: correctness is asserted,
         the timing is reported but not gated. The native path pays a
         constant factor per scan versus a resident merged list — its
         value is keeping the long tail out of the merge cache, so a
         slowdown here is the documented trade, not a regression. *)
      let native_json =
        match native_query dag with
        | None -> Json.Null
        | Some ids ->
          let words = List.map (Doc.keyword_name doc) ids in
          let reference = Engine.query_ids Engine.Scan_packed flat ids in
          let before = Xr_slca.Scan_dag.native_scans () in
          let got = Engine.query_ids Engine.Scan_packed dagged ids in
          let native = Xr_slca.Scan_dag.native_scans () > before in
          check_equal ~corpus:name ~what:"native query" words reference got;
          let flat_ns, dag_ns =
            bench_pair
              (fun () -> Engine.query_ids Engine.Scan_packed flat ids)
              (fun () -> Engine.query_ids Engine.Scan_packed dagged ids)
          in
          Printf.printf
            "  native {%s}: %d slca | flat %8.0fns | dag %8.0fns (%.2fx)%s\n%!"
            (String.concat " " words) (List.length reference) flat_ns dag_ns
            (flat_ns /. dag_ns)
            (if native then "" else "  [fell back to merge]");
          Json.Obj
            [
              ("keywords", Json.List (List.map (fun w -> Json.String w) words));
              ("results", Json.Int (List.length reference));
              ("flat_ns", Json.Float flat_ns);
              ("dag_ns", Json.Float dag_ns);
              ("speedup_dag", Json.Float (flat_ns /. dag_ns));
              ("native", Json.Bool native);
            ]
      in
      Printf.printf "  aggregate query-time ratio (flat/dag): %.2fx\n%!" speedup_total;
      corpus_json :=
        Json.Obj
          [
            ("name", Json.String name);
            ("nodes", Json.Int nodes);
            ("postings", Json.Int s.Xr_dag.postings);
            ("flat_bytes", Json.Int flat_bytes);
            ("dag_bytes", Json.Int dag_bytes);
            ("bytes_per_node_flat", Json.Float (per_node flat_bytes));
            ("bytes_per_node_dag", Json.Float (per_node dag_bytes));
            ("bytes_per_node_ratio", Json.Float bytes_ratio);
            ("classes", Json.Int s.Xr_dag.classes);
            ("instances", Json.Int s.Xr_dag.instances);
            ("node_dedup_ratio", Json.Float (Xr_dag.node_dedup_ratio dag));
            ("edge_dedup_ratio", Json.Float (Xr_dag.edge_dedup_ratio dag));
            ("queries", Json.List (List.rev !query_json));
            ("native_query", native_json);
            ("speedup_dag_total", Json.Float speedup_total);
          ]
        :: !corpus_json)
    (corpora ~smoke);
  let payload =
    Json.Obj
      [
        ("bench", Json.String "dag-vs-flat-index");
        ("mode", Json.String (if smoke then "smoke" else "full"));
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("corpora", Json.List (List.rev !corpus_json));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string payload);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out
