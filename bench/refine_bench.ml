(* Refinement pipeline benchmark: packed vs legacy (boxed posting array)
   algorithm implementations on the bundled corpora. Usage:

     dune exec bench/refine_bench.exe                 # full sizes
     dune exec bench/refine_bench.exe -- --smoke      # small sizes (CI)
     dune exec bench/refine_bench.exe -- --out PATH   # JSON location

   Each corpus runs four workloads exercising one rewrite operation each
   (deletion / merging / split / substitution); each workload times the
   three algorithms in both forms after asserting their outcomes are
   identical, and checks that the packed runs never materialize a boxed
   posting list. Writes BENCH_refine.json (see doc/PERF.md). *)

module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Doc = Xr_xml.Doc
module Json = Xr_server.Json
open Xr_refine

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

(* A/B comparison resistant to clock drift: samples of [fa] and [fb]
   interleave within one run and each side keeps its best (minimum)
   sample. On the nanosecond-scale corpora (figure1) independently
   sampled medians flap across runs and trip the bench gate's noise
   floor; the paired minima cancel machine speed out. *)
let bench_pair fa fb =
  ignore (fa ());
  ignore (fb ());
  let iters = ref 1 in
  let sample f = time_ns (fun () -> for _ = 1 to !iters do ignore (f ()) done) in
  while sample fa < 1e7 && !iters < 10_000_000 do
    iters := !iters * 4
  done;
  let best_a = ref infinity and best_b = ref infinity in
  for _ = 1 to 7 do
    best_a := Float.min !best_a (sample fa);
    best_b := Float.min !best_b (sample fb)
  done;
  let n = float_of_int !iters in
  (!best_a /. n, !best_b /. n)

let corpora ~smoke =
  let dblp_pubs = if smoke then 300 else 2000 in
  [
    ("figure1", Xr_data.Figure1.doc ());
    ("baseball", Xr_data.Baseball.doc ());
    ("auction", Xr_data.Auction.doc ());
    ("dblp", Doc.of_tree (Xr_data.Dblp.scaled ~publications:dblp_pubs ~seed:2009));
  ]

(* Keyword names by descending posting-list length. *)
let frequent_keywords (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc
  |> List.map (fun (kw, _) -> Doc.keyword_name index.Index.doc kw)

(* One workload per rewrite operation. Every query contains a keyword
   absent from the document, so the original query never matches and the
   full refinement machinery (partition scan, DP, per-partition SLCAs,
   ranking) runs end to end. *)
let workloads (index : Index.t) =
  match frequent_keywords index with
  | k1 :: k2 :: _ ->
    [
      ("deletion", [ k1; k2; "zzzworkloadjunk" ], []);
      ("merge", [ "zzfraga"; "zzfragb"; k2 ], [ Rule.merging [ "zzfraga"; "zzfragb" ] k1 ]);
      ("split", [ "zzfusedpair" ], [ Rule.split "zzfusedpair" [ k1; k2 ] ]);
      ("substitution", [ "zzsubstsrc"; k2 ], [ Rule.synonym "zzsubstsrc" k1 ]);
    ]
  | _ -> []

type pair = {
  alg : string;
  packed : Refine_common.t -> Result.t;
  legacy : Refine_common.t -> Result.t;
}

let pairs ~k =
  [
    {
      alg = "stack-refine";
      packed = (fun c -> fst (Stack_refine.run c));
      legacy = (fun c -> fst (Stack_refine.run_legacy c));
    };
    {
      alg = "partition";
      packed = (fun c -> fst (Partition.run ~k c));
      legacy = (fun c -> fst (Partition.run_legacy ~k c));
    };
    {
      alg = "sle";
      packed = (fun c -> fst (Sle.run ~k c));
      legacy = (fun c -> fst (Sle.run_legacy ~k c));
    };
  ]

let () =
  let args = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" args in
  let rec out_of = function
    | "--out" :: p :: _ -> p
    | _ :: rest -> out_of rest
    | [] -> "BENCH_refine.json"
  in
  let out = out_of args in
  let k = 3 in
  let corpus_json = ref [] in
  List.iter
    (fun (name, doc) ->
      (* Pinned flat: these benches measure their kernels, not the index
         representation — bench/dag_bench.exe owns the flat-vs-dag
         comparison, so the numbers here stay stable across the CI
         XR_INDEX matrix. *)
      let index = Index.build ~mode:Index.Flat doc in
      Printf.printf "\n== %s: %d nodes ==\n%!" name (Doc.node_count doc);
      let totals = Hashtbl.create 8 in
      let add key ns =
        Hashtbl.replace totals key (ns +. (try Hashtbl.find totals key with Not_found -> 0.))
      in
      let workload_json = ref [] in
      List.iter
        (fun (wname, query, rules) ->
          let setup () = Refine_common.make index (Ruleset.of_rules rules) query in
          let c = setup () in
          let alg_json = ref [] in
          List.iter
            (fun p ->
              (* the packed scan must run without touching the boxed
                 views; assert it before the legacy run warms them *)
              let before = Inverted.materialization_count index.Index.inverted in
              let packed_result = p.packed c in
              let after = Inverted.materialization_count index.Index.inverted in
              if after <> before then
                failwith
                  (Printf.sprintf "%s/%s/%s: packed run materialized %d boxed lists" name
                     wname p.alg (after - before));
              let legacy_result = p.legacy c in
              if packed_result <> legacy_result then
                failwith
                  (Printf.sprintf "%s/%s/%s: packed and legacy outcomes differ" name wname
                     p.alg);
              let legacy_ns, packed_ns =
                bench_pair (fun () -> p.legacy c) (fun () -> p.packed c)
              in
              add (p.alg ^ ":packed") packed_ns;
              add (p.alg ^ ":legacy") legacy_ns;
              Printf.printf "  %-12s %-12s legacy %9.0fns -> packed %9.0fns (%.2fx)\n%!"
                wname p.alg legacy_ns packed_ns (legacy_ns /. packed_ns);
              alg_json :=
                Json.Obj
                  [
                    ("algorithm", Json.String p.alg);
                    ("packed_ns", Json.Float packed_ns);
                    ("legacy_ns", Json.Float legacy_ns);
                    ("speedup", Json.Float (legacy_ns /. packed_ns));
                  ]
                :: !alg_json)
            (pairs ~k);
          workload_json :=
            Json.Obj
              [
                ("name", Json.String wname);
                ("query", Json.List (List.map (fun w -> Json.String w) query));
                ("algorithms", Json.List (List.rev !alg_json));
              ]
            :: !workload_json)
        (workloads index);
      let total key = try Hashtbl.find totals key with Not_found -> 0. in
      let speedup alg = total (alg ^ ":legacy") /. total (alg ^ ":packed") in
      let overall side =
        List.fold_left
          (fun a alg -> a +. total (alg ^ ":" ^ side))
          0.
          [ "stack-refine"; "partition"; "sle" ]
      in
      let speedup_total = overall "legacy" /. overall "packed" in
      Printf.printf
        "  aggregate: stack-refine %.2fx, partition %.2fx, sle %.2fx, overall %.2fx\n%!"
        (speedup "stack-refine") (speedup "partition") (speedup "sle") speedup_total;
      corpus_json :=
        Json.Obj
          [
            ("name", Json.String name);
            ("nodes", Json.Int (Doc.node_count doc));
            ("workloads", Json.List (List.rev !workload_json));
            ("speedup_stack_refine_total", Json.Float (speedup "stack-refine"));
            ("speedup_partition_total", Json.Float (speedup "partition"));
            ("speedup_sle_total", Json.Float (speedup "sle"));
            ("speedup_total", Json.Float speedup_total);
          ]
        :: !corpus_json)
    (corpora ~smoke);
  let payload =
    Json.Obj
      [
        ("bench", Json.String "refine-packed-vs-legacy");
        ("mode", Json.String (if smoke then "smoke" else "full"));
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("corpora", Json.List (List.rev !corpus_json));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string payload);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out
