(* SLCA kernel benchmark: packed vs reference engines on the bundled
   corpora. Usage:

     dune exec bench/slca_bench.exe                 # full sizes
     dune exec bench/slca_bench.exe -- --smoke      # small sizes (CI)
     dune exec bench/slca_bench.exe -- --out PATH   # JSON location

   Writes BENCH_slca.json (see doc/PERF.md for how to read it). *)

module Engine = Xr_slca.Engine
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Doc = Xr_xml.Doc
module Json = Xr_server.Json

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

(* A/B comparison resistant to clock drift: samples of [fa] and [fb]
   interleave within one run, and each side takes its best (minimum)
   sample — the pair of minima estimates the true cost ratio far more
   stably than medians of independent runs. *)
let bench_pair fa fb =
  ignore (fa ());
  ignore (fb ());
  let iters = ref 1 in
  let sample f = time_ns (fun () -> for _ = 1 to !iters do ignore (f ()) done) in
  while sample fa < 1e7 && !iters < 10_000_000 do
    iters := !iters * 4
  done;
  let best_a = ref infinity and best_b = ref infinity in
  for _ = 1 to 7 do
    best_a := Float.min !best_a (sample fa);
    best_b := Float.min !best_b (sample fb)
  done;
  let n = float_of_int !iters in
  (!best_a /. n, !best_b /. n)

let corpora ~smoke =
  let dblp_pubs = if smoke then 300 else 3500 in
  [
    ("figure1", Xr_data.Figure1.doc ());
    ("baseball", Xr_data.Baseball.doc ());
    ("auction", Xr_data.Auction.doc ());
    ( "dblp",
      Doc.of_tree (Xr_data.Dblp.scaled ~publications:dblp_pubs ~seed:2009) );
  ]

(* Keyword ids by descending posting-list length. *)
let frequent_keywords (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  List.map fst (List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc)

(* Query mix per corpus: high-frequency pairs and triples (the regime the
   scan kernels are built for) plus one frequent/infrequent pair (large
   seek distances, the galloping-cursor regime). *)
let queries (index : Index.t) =
  match frequent_keywords index with
  | k0 :: k1 :: k2 :: k3 :: rest ->
    let tail = match List.rev rest with t :: _ -> [ t ] | [] -> [] in
    [ [ k0; k1 ]; [ k0; k1; k2 ]; [ k0; k1; k2; k3 ]; ([ k0 ] @ tail) ]
    |> List.filter (fun q -> List.length q >= 2)
  | k0 :: k1 :: _ -> [ [ k0; k1 ] ]
  | _ -> []

let engine_pairs = [ (Engine.Scan_eager, Engine.Scan_packed); (Engine.Stack, Engine.Stack_packed) ]

let () =
  let args = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" args in
  let rec out_of = function
    | "--out" :: p :: _ -> p
    | _ :: rest -> out_of rest
    | [] -> "BENCH_slca.json"
  in
  let out = out_of args in
  let corpus_json = ref [] in
  (* Tracing-off observability overhead on the dblp corpus: the public
     instrumented entry (span wrapper + probe counters) vs the bare
     Scan_packed kernel on the same packed lists, timed in the same run
     so machine speed cancels out. Gated at <= 2% by bench_gate.sh. *)
  let instr_ns = ref 0. and raw_ns = ref 0. in
  (* ANALYZE-off overhead on the same corpus: the per-task wrapper the
     pool installs ([Analyze.current] + [Analyze.task None]) plus one
     guarded [note_stage] — the exact machinery a normal request pays
     for with no report ambient — against the same instrumented scan
     without it. Gated at <= 2% like the tracing number. *)
  let analyze_instr_ns = ref 0. and analyze_raw_ns = ref 0. in
  List.iter
    (fun (name, doc) ->
      (* Pinned flat: these benches measure their kernels, not the index
         representation — bench/dag_bench.exe owns the flat-vs-dag
         comparison, so the numbers here stay stable across the CI
         XR_INDEX matrix. *)
      let index = Index.build ~mode:Index.Flat doc in
      let postings = ref 0 and bytes = ref 0 in
      Inverted.iter_packed
        (fun _ pk ->
          postings := !postings + Inverted.packed_postings pk;
          bytes := !bytes + Inverted.packed_bytes pk)
        index.Index.inverted;
      Printf.printf "\n== %s: %d nodes, %d postings, %d packed bytes ==\n%!" name
        (Doc.node_count doc) !postings !bytes;
      let totals = Hashtbl.create 8 in
      let add alg ns =
        let k = Engine.name alg in
        Hashtbl.replace totals k (ns +. (try Hashtbl.find totals k with Not_found -> 0.))
      in
      let query_json = ref [] in
      List.iter
        (fun ids ->
          let words = List.map (Doc.keyword_name doc) ids in
          let reference = Engine.query_ids Engine.Scan_eager index ids in
          let engines = ref [] in
          List.iter
            (fun (ref_alg, packed_alg) ->
              List.iter
                (fun alg ->
                  let got = Engine.query_ids alg index ids in
                  if not (List.equal Xr_xml.Dewey.equal got reference) then
                    failwith
                      (Printf.sprintf "%s disagrees with scan-eager on %s {%s}"
                         (Engine.name alg) name (String.concat " " words)))
                [ ref_alg; packed_alg ];
              (* interleaved A/B: on the nanosecond-scale corpora
                 (figure1, 33 nodes) independently sampled medians flap
                 across runs and trip the bench gate's noise floor; the
                 paired minima cancel machine speed out *)
              let ref_ns, packed_ns =
                bench_pair
                  (fun () -> Engine.query_ids ref_alg index ids)
                  (fun () -> Engine.query_ids packed_alg index ids)
              in
              add ref_alg ref_ns;
              add packed_alg packed_ns;
              engines :=
                (Engine.name packed_alg, Json.Float packed_ns)
                :: (Engine.name ref_alg, Json.Float ref_ns)
                :: !engines)
            engine_pairs;
          let ns alg = match List.assoc (Engine.name alg) !engines with
            | Json.Float f -> f
            | _ -> assert false
          in
          let speedup_scan = ns Engine.Scan_eager /. ns Engine.Scan_packed in
          let speedup_stack = ns Engine.Stack /. ns Engine.Stack_packed in
          Printf.printf
            "  {%s}: %d slca | scan %8.0fns -> %8.0fns (%.2fx) | stack %8.0fns -> %8.0fns (%.2fx)\n%!"
            (String.concat " " words) (List.length reference) (ns Engine.Scan_eager)
            (ns Engine.Scan_packed) speedup_scan (ns Engine.Stack) (ns Engine.Stack_packed)
            speedup_stack;
          if name = "dblp" then begin
            let lists =
              List.map
                (fun kw -> (Inverted.packed_list index.Index.inverted kw).Inverted.labels)
                ids
            in
            (* The instrumentation delta is a percent-scale quantity, well
               inside one bench_pair run's noise on a loaded host, so give
               this comparison three interleaved pairings and keep each
               side's best — minima converge on the undisturbed cost. *)
            let instr = ref infinity and raw = ref infinity in
            for _ = 1 to 3 do
              let i, r =
                bench_pair
                  (fun () -> Engine.compute_packed Engine.Scan_packed lists)
                  (fun () -> Xr_slca.Scan_packed.compute lists)
              in
              instr := Float.min !instr i;
              raw := Float.min !raw r
            done;
            instr_ns := !instr_ns +. !instr;
            raw_ns := !raw_ns +. !raw;
            let a_instr = ref infinity and a_raw = ref infinity in
            (* [current] is captured once per batch submit on the real
               path, not once per task — hoist it to match *)
            let actx = Xr_obs.Analyze.current () in
            for _ = 1 to 3 do
              let i, r =
                bench_pair
                  (fun () ->
                    Xr_obs.Analyze.task actx (fun () ->
                        ignore (Engine.compute_packed Engine.Scan_packed lists);
                        if Xr_obs.Analyze.active () then
                          Xr_obs.Analyze.note_stage ~name:"bench" ~input:0 ~output:0))
                  (fun () -> Engine.compute_packed Engine.Scan_packed lists)
              in
              a_instr := Float.min !a_instr i;
              a_raw := Float.min !a_raw r
            done;
            analyze_instr_ns := !analyze_instr_ns +. !a_instr;
            analyze_raw_ns := !analyze_raw_ns +. !a_raw
          end;
          query_json :=
            Json.Obj
              [
                ("keywords", Json.List (List.map (fun w -> Json.String w) words));
                ("results", Json.Int (List.length reference));
                ("engines_ns", Json.Obj (List.rev !engines));
                ("speedup_scan", Json.Float speedup_scan);
                ("speedup_stack", Json.Float speedup_stack);
              ]
            :: !query_json)
        (queries index);
      let total alg = try Hashtbl.find totals (Engine.name alg) with Not_found -> 0. in
      let agg_scan = total Engine.Scan_eager /. total Engine.Scan_packed in
      let agg_stack = total Engine.Stack /. total Engine.Stack_packed in
      Printf.printf "  aggregate: scan-packed %.2fx, stack-packed %.2fx\n%!" agg_scan agg_stack;
      corpus_json :=
        Json.Obj
          [
            ("name", Json.String name);
            ("nodes", Json.Int (Doc.node_count doc));
            ("postings", Json.Int !postings);
            ("packed_bytes", Json.Int !bytes);
            ("queries", Json.List (List.rev !query_json));
            ("speedup_scan_total", Json.Float agg_scan);
            ("speedup_stack_total", Json.Float agg_stack);
          ]
        :: !corpus_json)
    (corpora ~smoke);
  let overhead_pct = if !raw_ns > 0. then ((!instr_ns /. !raw_ns) -. 1.) *. 100. else 0. in
  Printf.printf "\ntracing-off overhead (dblp, instrumented vs bare kernel): %+.2f%%\n%!"
    overhead_pct;
  let analyze_off_pct =
    if !analyze_raw_ns > 0. then ((!analyze_instr_ns /. !analyze_raw_ns) -. 1.) *. 100. else 0.
  in
  Printf.printf "analyze-off overhead (dblp, wrapped vs unwrapped scan): %+.2f%%\n%!"
    analyze_off_pct;
  let payload =
    Json.Obj
      [
        ("bench", Json.String "slca-packed-vs-reference");
        ("mode", Json.String (if smoke then "smoke" else "full"));
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("tracing_off_overhead_pct", Json.Float overhead_pct);
        ("analyze_off_overhead_pct", Json.Float analyze_off_pct);
        ("corpora", Json.List (List.rev !corpus_json));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string payload);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out
