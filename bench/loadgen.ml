(* Load generator for `xrefine serve`: the serving-layer counterpart of
   bench/main.ml. N client domains drive a mixed /search + /refine
   workload over persistent connections (TCP or Unix-domain socket) and
   report throughput and latency percentiles; --check verifies every
   response byte-for-byte against a sequentially fetched baseline, and
   --smoke is the CI mode that hits every endpoint once and asserts
   HTTP 200 + well-formed JSON.

     loadgen --port 8080 --clients 4 --duration 5 --check \
             --query "database title" --query "database publication" *)

module Http = Xr_server.Http
module Json = Xr_server.Json

type target_addr = Tcp of string * int | Unix_path of string

let addr_host = ref "127.0.0.1"
let addr_port = ref 8080
let addr_unix = ref ""
let duration = ref 5.0
let clients = ref 4
let mix = ref 0.7
let queries : string list ref = ref []
let check = ref false
let smoke = ref false
let seed = ref 2009
let queries_file = ref ""
let json_summary = ref false
let write_mix = ref 0
let write_corpus = ref ""

(* Every ingested document carries this keyword, so the final index can
   be audited: the marker's result count must equal the number of
   acknowledged (synced) writes. Unique per write, so it never collides
   with the read queries. *)
let write_marker = "loadgenmark"

let speclist =
  [
    ("--host", Arg.Set_string addr_host, "HOST server host (default 127.0.0.1)");
    ("--port", Arg.Set_int addr_port, "PORT server port (default 8080)");
    ("--unix", Arg.Set_string addr_unix, "PATH connect to a Unix-domain socket instead of TCP");
    ("--duration", Arg.Set_float duration, "S seconds of load (default 5)");
    ("--clients", Arg.Set_int clients, "N client domains (default 4)");
    ("--concurrency", Arg.Set_int clients, "N alias for --clients");
    ("--mix", Arg.Set_float mix, "F fraction of /search requests, rest /refine (default 0.7)");
    ("--query", Arg.String (fun q -> queries := q :: !queries), "Q add a query (repeatable)");
    ("--queries", Arg.Set_string queries_file, "FILE one query per line");
    ("--check", Arg.Set check, " verify responses byte-identical to a sequential baseline");
    ("--smoke", Arg.Set smoke, " hit every endpoint once, assert 200 + well-formed JSON");
    ("--seed", Arg.Set_int seed, "N workload seed (default 2009)");
    ("--json", Arg.Set json_summary, " print the summary as one JSON object");
    ( "--write-mix",
      Arg.Set_int write_mix,
      "PCT percent of requests that POST /ingest (default 0)" );
    ( "--write-corpus",
      Arg.Set_string write_corpus,
      "NAME corpus the writes target; with --check, point this at a corpus\n\
      \              the read queries never match so read baselines stay stable" );
  ]

let usage = "loadgen: drive xrefine serve and report throughput/latency"

(* ---- tiny HTTP client --------------------------------------------------- *)

let resolve () =
  if !addr_unix <> "" then Unix_path !addr_unix else Tcp (!addr_host, !addr_port)

let connect addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> failwith ("cannot resolve " ^ host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (inet, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd
  | Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd

type client = { fd : Unix.file_descr; reader : Http.reader }

let open_client addr =
  let fd = connect addr in
  { fd; reader = Http.reader_of_fd fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* One GET over an open connection; the server keeps it alive unless it
   answers [connection: close]. *)
let get_raw c target =
  Http.write_all c.fd
    (Printf.sprintf "GET %s HTTP/1.1\r\nhost: loadgen\r\n\r\n" target);
  Http.read_response c.reader

(* One POST over an open connection. *)
let post_raw c target body =
  Http.write_all c.fd
    (Printf.sprintf "POST %s HTTP/1.1\r\nhost: loadgen\r\ncontent-length: %d\r\n\r\n%s"
       target (String.length body) body);
  Http.read_response c.reader

let get c target =
  match get_raw c target with
  | Ok (status, headers, body) ->
    let closing =
      match List.assoc_opt "connection" headers with
      | Some v -> String.lowercase_ascii v = "close"
      | None -> false
    in
    Ok (status, closing, body)
  | Error e -> Error e

(* GET on a throwaway connection (baseline fetches, smoke mode). *)
let get_once addr target =
  let c = open_client addr in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> get c target)

(* Same, but keeping the response headers (content-type checks). *)
let get_once_full addr target =
  let c = open_client addr in
  Fun.protect ~finally:(fun () -> close_client c) (fun () -> get_raw c target)

(* ---- workload ------------------------------------------------------------ *)

let default_queries = [ "database title"; "database publication"; "title" ]

let load_queries () =
  let from_file =
    if !queries_file = "" then []
    else
      In_channel.with_open_text !queries_file (fun ic ->
          In_channel.input_lines ic |> List.map String.trim
          |> List.filter (fun l -> l <> "" && l.[0] <> '#'))
  in
  match List.rev !queries @ from_file with [] -> default_queries | qs -> qs

let encode_query q =
  String.concat "+" (List.map Http.percent_encode (String.split_on_char ' ' q))

let targets_of_queries qs =
  let search = List.map (fun q -> "/search?q=" ^ encode_query q ^ "&rank=true") qs in
  let refine = List.map (fun q -> "/refine?q=" ^ encode_query q) qs in
  (Array.of_list search, Array.of_list refine)

(* Synced so a 200 acknowledges a published generation — the basis of
   the end-of-run marker-count audit. *)
let ingest_target () =
  if !write_corpus = "" then "/ingest?sync=true"
  else "/ingest?sync=true&corpus=" ^ Http.percent_encode !write_corpus

let ingest_doc ~idx ~seq =
  Printf.sprintf "<doc><note>%s w%dx%d</note></doc>" write_marker idx seq

(* Client-side latency histogram over the same bucket layout as the
   server's [xr_http_request_duration_ms], so the two sides' percentiles
   are comparable bucket-for-bucket in [--check] mode. *)
let buckets = Xr_server.Metrics.latency_buckets_ms
let nbuckets = Array.length buckets + 1 (* + implicit +inf *)

let bucket_of ms =
  let rec go i = if i >= Array.length buckets || ms <= buckets.(i) then i else go (i + 1) in
  go 0

type client_stats = {
  mutable sent : int;
  mutable ok : int;
  mutable shed : int;  (* 503: admission control / deadline *)
  mutable client_errors : int;  (* 4xx *)
  mutable server_errors : int;  (* 5xx other than 503 *)
  mutable io_errors : int;
  mutable mismatches : int;
  mutable latencies_ms : float list;
  hist : int array;  (* per-bucket counts, last = +inf *)
}

let fresh_stats () =
  {
    sent = 0;
    ok = 0;
    shed = 0;
    client_errors = 0;
    server_errors = 0;
    io_errors = 0;
    mismatches = 0;
    latencies_ms = [];
    hist = Array.make nbuckets 0;
  }

let run_client addr ~idx ~deadline ~searches ~refines ~expected =
  let rng = Random.State.make [| !seed; idx |] in
  let reads = fresh_stats () in
  let writes = fresh_stats () in
  let wseq = ref 0 in
  let pick_read () =
    if Random.State.float rng 1.0 < !mix || Array.length refines = 0 then
      searches.(Random.State.int rng (Array.length searches))
    else refines.(Random.State.int rng (Array.length refines))
  in
  let c = ref (try Some (open_client addr) with _ -> None) in
  let ensure () =
    match !c with
    | Some cl -> Some cl
    | None -> ( try
        let cl = open_client addr in
        c := Some cl;
        Some cl
      with _ -> None)
  in
  while Unix.gettimeofday () < deadline do
    let is_write = !write_mix > 0 && Random.State.int rng 100 < !write_mix in
    let stats = if is_write then writes else reads in
    match ensure () with
    | None -> stats.io_errors <- stats.io_errors + 1
    | Some cl -> (
      let target = if is_write then ingest_target () else pick_read () in
      let t0 = Unix.gettimeofday () in
      stats.sent <- stats.sent + 1;
      let resp =
        if is_write then begin
          incr wseq;
          match post_raw cl (ingest_target ()) (ingest_doc ~idx ~seq:!wseq) with
          | Ok (status, headers, body) ->
            let closing =
              match List.assoc_opt "connection" headers with
              | Some v -> String.lowercase_ascii v = "close"
              | None -> false
            in
            Ok (status, closing, body)
          | Error e -> Error e
        end
        else get cl target
      in
      match resp with
      | Ok (status, closing, body) ->
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        stats.latencies_ms <- ms :: stats.latencies_ms;
        let b = bucket_of ms in
        stats.hist.(b) <- stats.hist.(b) + 1;
        (if status = 200 then begin
           stats.ok <- stats.ok + 1;
           if not is_write then
             match Hashtbl.find_opt expected target with
             | Some baseline when not (String.equal baseline body) ->
               stats.mismatches <- stats.mismatches + 1
             | _ -> ()
         end
         else if status = 503 then stats.shed <- stats.shed + 1
         else if status >= 500 then stats.server_errors <- stats.server_errors + 1
         else stats.client_errors <- stats.client_errors + 1);
        if closing then begin
          close_client cl;
          c := None
        end
      | Error _ ->
        stats.io_errors <- stats.io_errors + 1;
        close_client cl;
        c := None)
  done;
  (match !c with Some cl -> close_client cl | None -> ());
  (reads, writes)

(* ---- reporting ----------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p /. 100. *. float_of_int (n - 1) +. 0.5)))

(* Server-side percentiles recomputed from the aggregate histogram in
   /metrics.json (cumulative bucket counts -> raw counts -> the same
   interpolation the server uses). *)
let server_percentiles addr =
  match get_once addr "/metrics.json" with
  | Ok (200, _, body) -> (
    match Json.of_string body with
    | Ok m -> (
      let latency = Json.member "latency" m in
      match Option.bind latency (Json.member "buckets") with
      | Some (Json.List entries) ->
        let cumulative =
          List.filter_map
            (fun e -> match Json.member "count" e with Some (Json.Int c) -> Some c | _ -> None)
            entries
        in
        if List.length cumulative <> nbuckets then None
        else begin
          let cum = Array.of_list cumulative in
          let counts = Array.make nbuckets 0 in
          Array.iteri (fun i c -> counts.(i) <- (if i = 0 then c else c - cum.(i - 1))) cum;
          let total = cum.(nbuckets - 1) in
          if total = 0 then None
          else
            Some
              ( Xr_server.Metrics.percentile_ms counts total 0.5,
                Xr_server.Metrics.percentile_ms counts total 0.95,
                Xr_server.Metrics.percentile_ms counts total 0.99 )
        end
      | _ -> None)
    | Error _ -> None)
  | _ -> None

(* Cross-check the client-side histogram percentiles against the
   server's. The server measures handling time only (no network, and its
   histogram also counts the cheap baseline/metrics requests), so we only
   flag gross inconsistency: the server claiming to be much slower than
   any client ever observed end-to-end. *)
let cross_check addr client_p =
  match server_percentiles addr with
  | None ->
    print_endline "  check: /metrics.json latency histogram unavailable; skipped";
    true
  | Some (s50, s95, s99) ->
    let c50, c95, c99 = client_p in
    Printf.printf "  percentiles ms   client          server (/metrics.json)\n";
    List.iter
      (fun (name, c, s) -> Printf.printf "    p%-3s          %8.2f        %8.2f\n" name c s)
      [ ("50", c50, s50); ("95", c95, s95); ("99", c99, s99) ];
    let consistent = List.for_all (fun (c, s) -> s <= (c *. 3.) +. 10.) [ (c50, s50); (c95, s95); (c99, s99) ] in
    if not consistent then
      print_endline "  FAIL server latency percentiles grossly exceed client-side observations";
    consistent

type side_summary = {
  s_sent : int;
  s_ok : int;
  s_shed : int;
  s_4xx : int;
  s_5xx : int;
  s_io : int;
  s_mism : int;
  s_lat : float array;  (* sorted raw latencies *)
  s_hist : int array;  (* merged per-bucket counts *)
}

let summarize side =
  let total f = List.fold_left (fun acc s -> acc + f s) 0 side in
  let lat = Array.of_list (List.concat_map (fun s -> s.latencies_ms) side) in
  Array.sort compare lat;
  let hist = Array.make nbuckets 0 in
  List.iter (fun s -> Array.iteri (fun i c -> hist.(i) <- hist.(i) + c) s.hist) side;
  {
    s_sent = total (fun s -> s.sent);
    s_ok = total (fun s -> s.ok);
    s_shed = total (fun s -> s.shed);
    s_4xx = total (fun s -> s.client_errors);
    s_5xx = total (fun s -> s.server_errors);
    s_io = total (fun s -> s.io_errors);
    s_mism = total (fun s -> s.mismatches);
    s_lat = lat;
    s_hist = hist;
  }

let mean_of lat =
  if Array.length lat = 0 then 0.
  else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)

let latency_json s =
  Json.Obj
    [
      ("mean", Json.Float (mean_of s.s_lat));
      ("p50", Json.Float (percentile s.s_lat 50.));
      ("p90", Json.Float (percentile s.s_lat 90.));
      ("p99", Json.Float (percentile s.s_lat 99.));
      ("max", Json.Float (percentile s.s_lat 100.));
    ]

let print_side label s =
  Printf.printf "  %-6s requests %d  ok %d  shed(503) %d  4xx %d  5xx %d  io %d\n" label
    s.s_sent s.s_ok s.s_shed s.s_4xx s.s_5xx s.s_io;
  Printf.printf "         latency ms mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n"
    (mean_of s.s_lat) (percentile s.s_lat 50.) (percentile s.s_lat 90.)
    (percentile s.s_lat 99.) (percentile s.s_lat 100.)

(* With synced writes acknowledged, the marker keyword's result count in
   the final index must equal the acknowledged write count exactly —
   every 200 durable and visible, no write applied twice. *)
let audit_writes addr acked =
  let target =
    "/search?q=" ^ Http.percent_encode write_marker ^ "&limit=1"
    ^ (if !write_corpus = "" then "" else "&corpus=" ^ Http.percent_encode !write_corpus)
  in
  match get_once addr target with
  | Ok (200, _, body) -> (
    match Json.of_string body with
    | Ok v -> (
      match Json.member "count" v with
      | Some (Json.Int n) when n = acked ->
        Printf.printf "  check: marker count %d = acknowledged writes\n" n;
        true
      | Some (Json.Int n) ->
        Printf.printf "  FAIL marker count %d but %d writes acknowledged\n" n acked;
        false
      | _ ->
        print_endline "  FAIL marker audit: no count field";
        false)
    | Error msg ->
      Printf.printf "  FAIL marker audit: invalid JSON (%s)\n" msg;
      false)
  | Ok (status, _, _) ->
    Printf.printf "  FAIL marker audit: HTTP %d\n" status;
    false
  | Error e ->
    Printf.printf "  FAIL marker audit: %s\n" (Http.error_to_string e);
    false

let report addr elapsed pairs =
  let reads = summarize (List.map fst pairs) in
  let writes = summarize (List.map snd pairs) in
  let sent = reads.s_sent + writes.s_sent in
  (* Combined histogram percentiles (reads and writes both flow through
     the server's request histogram, so the cross-check must merge them
     the same way). *)
  let hist = Array.make nbuckets 0 in
  Array.iteri (fun i c -> hist.(i) <- c + writes.s_hist.(i)) reads.s_hist;
  let hist_total = Array.fold_left ( + ) 0 hist in
  let hp q = Xr_server.Metrics.percentile_ms hist hist_total q in
  let hp50 = hp 0.5 and hp95 = hp 0.95 and hp99 = hp 0.99 in
  let rps = if elapsed > 0. then float_of_int sent /. elapsed else 0. in
  if !json_summary then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("clients", Json.Int !clients);
              ("elapsed_s", Json.Float elapsed);
              ("requests", Json.Int sent);
              ("ok", Json.Int (reads.s_ok + writes.s_ok));
              ("shed_503", Json.Int (reads.s_shed + writes.s_shed));
              ("errors_4xx", Json.Int (reads.s_4xx + writes.s_4xx));
              ("errors_5xx", Json.Int (reads.s_5xx + writes.s_5xx));
              ("io_errors", Json.Int (reads.s_io + writes.s_io));
              ("mismatches", Json.Int reads.s_mism);
              ("rps", Json.Float rps);
              ("aggregate_qps", Json.Float rps);
              ("latency_ms", latency_json reads);
              ("reads", Json.Obj [ ("requests", Json.Int reads.s_sent); ("latency_ms", latency_json reads) ]);
              ("writes", Json.Obj [ ("requests", Json.Int writes.s_sent); ("acked", Json.Int writes.s_ok); ("latency_ms", latency_json writes) ]);
              ("latency_hist_ms",
               Json.Obj
                 [
                   ("p50", Json.Float hp50);
                   ("p95", Json.Float hp95);
                   ("p99", Json.Float hp99);
                 ]);
            ]))
  else begin
    Printf.printf "loadgen: %d client(s), %.2fs, aggregate %.0f qps\n" !clients
      elapsed rps;
    print_side "reads" reads;
    if writes.s_sent > 0 then print_side "writes" writes;
    if !check then Printf.printf "  mismatches %d\n" reads.s_mism;
    Printf.printf "  histogram  p50 %.2f  p95 %.2f  p99 %.2f\n" hp50 hp95 hp99
  end;
  let consistent = if !check then cross_check addr (hp50, hp95, hp99) else true in
  let audited =
    if !check && writes.s_ok > 0 then audit_writes addr writes.s_ok else true
  in
  if reads.s_mism > 0 || not consistent || not audited then exit 1

(* ---- smoke mode ---------------------------------------------------------- *)

let run_smoke addr qs =
  let q = List.hd qs in
  let kw = List.hd (String.split_on_char ' ' q) in
  let prefix = String.sub kw 0 (min 3 (String.length kw)) in
  let eps =
    [
      "/health";
      "/stats";
      "/metrics.json";
      "/debug/trace?last=4";
      "/search?q=" ^ encode_query q;
      "/search?q=" ^ encode_query q ^ "&rank=true";
      "/refine?q=" ^ encode_query q;
      "/suggest?q=" ^ encode_query q;
      "/complete?prefix=" ^ Http.percent_encode prefix;
      (* repeated on purpose: the second hit must come from the cache *)
      "/search?q=" ^ encode_query q;
    ]
  in
  let failures = ref 0 in
  List.iter
    (fun ep ->
      match get_once addr ep with
      | Ok (200, _, body) -> (
        match Json.of_string body with
        | Ok _ -> Printf.printf "ok   %s\n" ep
        | Error msg ->
          incr failures;
          Printf.printf "FAIL %s: invalid JSON (%s)\n" ep msg)
      | Ok (status, _, _) ->
        incr failures;
        Printf.printf "FAIL %s: HTTP %d\n" ep status
      | Error e ->
        incr failures;
        Printf.printf "FAIL %s: %s\n" ep (Http.error_to_string e))
    eps;
  (* /metrics is Prometheus text now, not JSON. *)
  (match get_once_full addr "/metrics" with
  | Ok (200, headers, body) ->
    let ct = Option.value ~default:"" (List.assoc_opt "content-type" headers) in
    let has_series =
      let needle = "xr_http_requests_total" in
      let n = String.length needle and len = String.length body in
      let rec scan i = i + n <= len && (String.sub body i n = needle || scan (i + 1)) in
      scan 0
    in
    if String.length ct >= 10 && String.sub ct 0 10 = "text/plain" && has_series then
      print_endline "ok   /metrics (prometheus text)"
    else begin
      incr failures;
      Printf.printf "FAIL /metrics: content-type %S, xr_http_requests_total %b\n" ct has_series
    end
  | Ok (status, _, _) ->
    incr failures;
    Printf.printf "FAIL /metrics: HTTP %d\n" status
  | Error e ->
    incr failures;
    Printf.printf "FAIL /metrics: %s\n" (Http.error_to_string e));
  (* A repeated query must be answered by the result cache. *)
  (match get_once addr "/metrics.json" with
  | Ok (200, _, body) -> (
    match Json.of_string body with
    | Ok m -> (
      match Option.bind (Json.member "cache" m) (Json.member "hits") with
      | Some (Json.Int h) when h > 0 -> Printf.printf "ok   cache hits: %d\n" h
      | _ ->
        incr failures;
        print_endline "FAIL metrics report no cache hits after repeated queries")
    | Error _ -> incr failures)
  | _ -> incr failures);
  if !failures > 0 then begin
    Printf.printf "smoke: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "smoke: all endpoints healthy"

(* ---- main ----------------------------------------------------------------- *)

let () =
  Arg.parse speclist (fun q -> queries := q :: !queries) usage;
  let addr = resolve () in
  let qs = load_queries () in
  if !smoke then run_smoke addr qs
  else begin
    let searches, refines = targets_of_queries qs in
    let expected = Hashtbl.create 64 in
    if !check then
      Array.iter
        (fun target ->
          match get_once addr target with
          | Ok (200, _, body) -> Hashtbl.replace expected target body
          | Ok (status, _, _) ->
            Printf.eprintf "loadgen: baseline %s -> HTTP %d\n" target status
          | Error e ->
            Printf.eprintf "loadgen: baseline %s -> %s\n" target (Http.error_to_string e))
        (Array.append searches refines);
    let started = Unix.gettimeofday () in
    let deadline = started +. !duration in
    let workers =
      Array.init (max 1 !clients) (fun idx ->
          Domain.spawn (fun () ->
              run_client addr ~idx ~deadline ~searches ~refines ~expected))
    in
    let pairs = Array.to_list (Array.map Domain.join workers) in
    report addr (Unix.gettimeofday () -. started) pairs
  end
