(* Batched-execution benchmark: aggregate QPS of the served query path
   with batching on (compiled-plan cache + single-flight coalescing)
   versus off, at client concurrency 1 / 4 / 8, on the scaled dblp
   corpus. Usage:

     dune exec bench/batch_bench.exe                 # full sizes
     dune exec bench/batch_bench.exe -- --smoke      # small sizes (CI)
     dune exec bench/batch_bench.exe -- --out PATH   # JSON location

   Both sides run {!Xr_server.Server.handle} in-process (no sockets, so
   the kernel's network stack does not drown the signal) with the
   response LRU disabled ([cache_capacity = 0]): with the LRU on, both
   sides serve memcmp-speed cache hits and the execution paths under
   comparison never run. The LRU-off configuration is exactly the regime
   the batch layer is for — every request renders, so plan compilation
   (parse + rule mining) and duplicate concurrent renders are live costs
   that plan caching and coalescing remove.

   Before timing, every target is fetched once from each server and the
   bodies byte-compared — the batched path must be invisible in the
   responses. Writes BENCH_batch.json (see doc/PERF.md). *)

module Doc = Xr_xml.Doc
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Http = Xr_server.Http
module Json = Xr_server.Json
module Server = Xr_server.Server

(* Keyword names by descending posting-list length (same selection as
   slca_bench, so the two benches exercise the same regime). *)
let frequent_keywords (index : Index.t) =
  let acc = ref [] in
  Inverted.iter_packed
    (fun kw pk ->
      let n = Inverted.packed_postings pk in
      if n > 0 then acc := (kw, n) :: !acc)
    index.Index.inverted;
  List.sort (fun (_, a) (_, b) -> Int.compare b a) !acc
  |> List.map (fun (kw, _) -> Doc.keyword_name index.Index.doc kw)

(* A hot-key read mix: searches (several limits of one query share a
   compiled plan) and refinements (plan caching amortizes rule mining,
   the dominant per-request fixed cost). Every client cycles the same
   list, so under concurrency genuinely overlapping identical requests
   appear — the case coalescing collapses to one render. *)
let targets (index : Index.t) =
  match frequent_keywords index with
  | k0 :: k1 :: k2 :: k3 :: _ ->
    let q kws = String.concat "+" kws in
    [|
      Printf.sprintf "/search?q=%s&limit=10" (q [ k0; k1 ]);
      Printf.sprintf "/search?q=%s&limit=5" (q [ k0; k1 ]);
      Printf.sprintf "/search?q=%s&limit=10" (q [ k0; k1; k2 ]);
      Printf.sprintf "/search?q=%s&limit=10" (q [ k1; k2; k3 ]);
      Printf.sprintf "/refine?q=%s&k=3" (q [ k0; k1 ]);
      Printf.sprintf "/refine?q=%s&k=3" (q [ k1; k2 ]);
      Printf.sprintf "/refine?q=%s&k=2" (q [ k0; k2; k3 ]);
    |]
  | _ -> failwith "dblp corpus has too few keywords"

let request target =
  let path, query = Http.split_target target in
  {
    Http.meth = Http.GET;
    target;
    path;
    query;
    version = "HTTP/1.1";
    headers = [ ("host", "bench") ];
    body = "";
  }

let fetch server target =
  let resp = Server.handle server (request target) in
  if resp.Http.status <> 200 then
    failwith (Printf.sprintf "%s -> %d" target resp.Http.status);
  resp.Http.resp_body

(* One timed round: [c] client domains cycling [targets] against
   [server] until the deadline. Returns completed requests per second.
   Every response status is checked — a shed or failed request would
   make the throughput comparison meaningless. *)
let measure server targets c duration =
  let reqs = Array.map request targets in
  let n = Array.length reqs in
  let stop_at = Unix.gettimeofday () +. duration in
  let count = Atomic.make 0 in
  let worker () =
    let i = ref 0 in
    let done_ = ref 0 in
    while Unix.gettimeofday () < stop_at do
      let resp = Server.handle server reqs.(!i) in
      if resp.Http.status <> 200 then failwith "non-200 during measurement";
      incr done_;
      i := if !i + 1 = n then 0 else !i + 1
    done;
    ignore (Atomic.fetch_and_add count !done_)
  in
  let t0 = Unix.gettimeofday () in
  let domains = Array.init c (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  float_of_int (Atomic.get count) /. elapsed

let () =
  let args = Array.to_list Sys.argv in
  let smoke = List.mem "--smoke" args in
  let rec out_of = function
    | "--out" :: p :: _ -> p
    | _ :: rest -> out_of rest
    | [] -> "BENCH_batch.json"
  in
  let out = out_of args in
  let pubs = if smoke then 300 else 3500 in
  let duration = if smoke then 0.5 else 1.2 in
  let rounds = 5 in
  Printf.printf "== batch_bench: dblp %d publications, %s mode ==\n%!" pubs
    (if smoke then "smoke" else "full");
  let doc = Doc.of_tree (Xr_data.Dblp.scaled ~publications:pubs ~seed:2009) in
  (* Pinned flat: these benches measure their kernels, not the index
         representation — bench/dag_bench.exe owns the flat-vs-dag
         comparison, so the numbers here stay stable across the CI
         XR_INDEX matrix. *)
      let index = Index.build ~mode:Index.Flat doc in
  let config batch =
    {
      Server.default_config with
      Server.addr = Server.Tcp ("127.0.0.1", 0);
      domains = 1;
      cache_capacity = 0;
      log = false;
      trace = false;
      batch;
    }
  in
  let spec = { Server.name = "default"; index; kv = None } in
  let batched = Server.start_corpora (config true) [ spec ] in
  let unbatched = Server.start_corpora (config false) [ spec ] in
  Fun.protect
    ~finally:(fun () ->
      Server.stop batched;
      Server.stop unbatched)
    (fun () ->
      let ts = targets index in
      (* Warm both sides (populates the plan cache — the steady serving
         state under comparison) and verify byte-identity. *)
      Array.iter
        (fun t ->
          let a = fetch batched t and b = fetch unbatched t in
          if not (String.equal a b) then begin
            Printf.eprintf "batch_bench: MISMATCH on %s\n%!" t;
            exit 1
          end)
        ts;
      Printf.printf "byte-identity: %d targets OK\n%!" (Array.length ts);
      let levels = [ 1; 4; 8 ] in
      let rows =
        List.map
          (fun c ->
            (* Interleave the two sides round by round, alternating which
               goes first, so clock drift and background load cancel; each
               side keeps its best round (the fast tail is the least
               perturbed estimate on a shared host). *)
            let best_b = ref 0. and best_u = ref 0. in
            for round = 1 to rounds do
              if round land 1 = 1 then begin
                best_b := Float.max !best_b (measure batched ts c duration);
                best_u := Float.max !best_u (measure unbatched ts c duration)
              end
              else begin
                best_u := Float.max !best_u (measure unbatched ts c duration);
                best_b := Float.max !best_b (measure batched ts c duration)
              end
            done;
            let speedup = !best_b /. !best_u in
            Printf.printf
              "c=%d  batched %8.0f qps   unbatched %8.0f qps   speedup %.2fx\n%!"
              c !best_b !best_u speedup;
            Json.Obj
              [
                ("name", Json.String (Printf.sprintf "c%d" c));
                ("concurrency", Json.Int c);
                ("qps_batched", Json.Float !best_b);
                ("qps_unbatched", Json.Float !best_u);
                ( Printf.sprintf "speedup_batch_c%d_total" c,
                  Json.Float speedup );
              ])
          levels
      in
      let doc_json =
        Json.Obj
          [
            ("name", Json.String "batch_bench");
            (* single-core hosts time-slice the concurrency levels: tag
               the file degraded so the gate knows these numbers are
               not a scaling baseline ([run] keeps the size) *)
            ( "mode",
              Json.String
                (if Domain.recommended_domain_count () < 2 then "degraded"
                 else if smoke then "smoke"
                 else "full") );
            ("run", Json.String (if smoke then "smoke" else "full"));
            ("host_cores", Json.Int (Domain.recommended_domain_count ()));
            ("corpus", Json.String "dblp");
            ("publications", Json.Int pubs);
            ("targets", Json.Int (Array.length ts));
            ("rounds", Json.Int rounds);
            ("duration_s", Json.Float duration);
            ("byte_identical", Json.Bool true);
            ("concurrency", Json.List rows);
          ]
      in
      let oc = open_out out in
      output_string oc (Json.to_string doc_json);
      output_string oc "\n";
      close_out oc;
      Printf.printf "wrote %s\n%!" out)
