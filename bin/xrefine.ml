(* xrefine: command-line front end of the XRefine engine.

   Subcommands:
     generate  write a synthetic corpus (dblp | baseball | figure1) to XML
     index     build and persist the index of an XML file
     search    plain meaningful-SLCA search
     refine    automatic query refinement (the paper's pipeline)
     serve     keep the index resident and answer queries over HTTP
     stats     document statistics: node types, search-for inference *)

open Cmdliner
module Index = Xr_index.Index
module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

(* ---- shared arguments -------------------------------------------------- *)

let doc_file =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "document" ] ~docv:"FILE" ~doc:"XML document to operate on.")

let query_args =
  Arg.(value & pos_all string [] & info [] ~docv:"KEYWORD" ~doc:"Query keywords.")

(* Every command that holds an index resident takes [--compress]; when
   absent the ambient default applies (the XR_INDEX environment
   variable, as in CI's flat/dag matrix, else flat). *)
let compress_arg =
  Arg.(
    value
    & opt (some (enum [ ("flat", Index.Flat); ("dag", Index.Dag) ])) None
    & info [ "compress" ] ~docv:"REPR"
        ~doc:
          "In-memory index representation: $(b,flat) (one packed postings list per \
           keyword) or $(b,dag) (shared-subtree compressed, lists merged lazily). \
           Defaults to \\$XR_INDEX when set, else flat. Results are identical either \
           way.")

let resolve_mode = function Some m -> m | None -> Index.default_mode ()

let load_index ?mode file =
  let mode = resolve_mode mode in
  if Filename.check_suffix file ".xrdb" then Index.load ~mode (Xr_store.Kv.btree_file file)
  else Index.of_file ~mode file

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON (the server's schema).")

(* ---- generate ----------------------------------------------------------- *)

let generate_cmd =
  let corpus =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("dblp", `Dblp); ("baseball", `Baseball); ("auction", `Auction); ("figure1", `Figure1) ]))
          None
      & info [] ~docv:"CORPUS" ~doc:"Corpus kind: dblp, baseball, auction or figure1.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let scale =
    Arg.(value & opt int 2000 & info [ "n"; "scale" ] ~docv:"N" ~doc:"Publications (dblp only).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.") in
  let run corpus out scale seed =
    let tree =
      match corpus with
      | `Dblp -> Xr_data.Dblp.scaled ~publications:scale ~seed
      | `Baseball -> Xr_data.Baseball.generate ~config:{ Xr_data.Baseball.default_config with seed } ()
      | `Auction -> Xr_data.Auction.generate ~config:{ Xr_data.Auction.default_config with seed } ()
      | `Figure1 -> Xr_data.Figure1.tree ()
    in
    Xr_xml.Printer.to_file out tree;
    Printf.printf "wrote %s (%d element nodes)\n" out (Xr_xml.Tree.size tree)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic XML corpus.")
    Term.(const run $ corpus $ out $ scale $ seed)

(* ---- index ---------------------------------------------------------------- *)

let index_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE.xrdb" ~doc:"Index store to create.")
  in
  let show_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print representation statistics after building: postings, resident bytes, \
             and (under --compress dag) the subtree-dedup ratios of the compressed form.")
  in
  let run doc out mode show_stats =
    let t0 = Unix.gettimeofday () in
    let mode = resolve_mode mode in
    let index = Index.of_file ~mode doc in
    (* Capture before [save]: persisting a dag index expands every list
       into the merge cache, which would distort the resident figure. *)
    let postings = Xr_index.Inverted.postings_total index.Index.inverted in
    let resident = Xr_index.Inverted.resident_bytes index.Index.inverted in
    let kv = Xr_store.Kv.btree_file out in
    Index.save index kv;
    kv.Xr_store.Kv.close ();
    Printf.printf "indexed %s -> %s: %d nodes, %d keywords, %d node types (%s) in %.2fs\n" doc
      out
      (Xr_xml.Doc.node_count index.Index.doc)
      (List.length (Xr_xml.Doc.vocabulary index.Index.doc))
      (Xr_xml.Path.size index.Index.doc.Xr_xml.Doc.paths)
      (Index.mode_name (Index.mode index))
      (Unix.gettimeofday () -. t0);
    if show_stats then begin
      let inv = index.Index.inverted in
      let nodes = Xr_xml.Doc.node_count index.Index.doc in
      Printf.printf "  postings        %d\n" postings;
      Printf.printf "  resident bytes  %d (%.1f bytes/node)\n" resident
        (float_of_int resident /. float_of_int (max 1 nodes));
      match Xr_index.Inverted.dag inv with
      | None -> ()
      | Some dag ->
        let s = Xr_dag.stats dag in
        Printf.printf "  dag classes     %d of %d nodes (node dedup %.3f)\n" s.Xr_dag.classes
          s.Xr_dag.nodes (Xr_dag.node_dedup_ratio dag);
        Printf.printf "  dag edges       %d of %d tree edges (edge dedup %.3f)\n"
          s.Xr_dag.dag_edges s.Xr_dag.tree_edges (Xr_dag.edge_dedup_ratio dag);
        Printf.printf "  occurrence classes %d over %d instances (%d postings)\n"
          s.Xr_dag.occurrence_classes s.Xr_dag.instances s.Xr_dag.postings
    end
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Build and persist the inverted lists and statistics of a document.")
    Term.(const run $ doc_file $ out $ compress_arg $ show_stats)

(* ---- search ----------------------------------------------------------------- *)

let search_cmd =
  let alg =
    Arg.(
      value
      & opt string "scan-eager"
      & info [ "slca" ] ~docv:"ALG" ~doc:"SLCA engine: stack, scan-eager, indexed-lookup, multiway, stack-packed, scan-packed, scan-parallel.")
  in
  let rank =
    Arg.(value & flag & info [ "rank" ] ~doc:"Order results by XML TF*IDF relevance.")
  in
  let interconnected =
    Arg.(
      value & flag
      & info [ "interconnected" ]
          ~doc:"Keep only results whose witnesses are pairwise interconnected (XSEarch).")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Record per-stage spans and print the span tree with durations after the results.")
  in
  let explain_plan =
    Arg.(
      value & flag
      & info [ "explain-plan" ]
          ~doc:"Print the compiled plan (list order, kernel choice, cost curve, chunk bounds) \
                without executing the query. With --json, emit the server's explain schema.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"Execute the query and append per-stage actuals as JSON: span durations, \
                per-chunk cost-model drift, candidates in/out, and GC deltas.")
  in
  let run doc mode alg rank interconnected trace explain_plan analyze json query =
    let index = load_index ?mode doc in
    let slca =
      match Xr_slca.Engine.of_name alg with
      | Some a -> a
      | None -> failwith ("unknown SLCA engine " ^ alg)
    in
    let config = { Engine.default_config with slca } in
    if explain_plan then begin
      let x = Xr_batch.Plan.explain_search ~config index query in
      if json then
        print_endline (Xr_server.Json.to_string (Xr_server.Api.explain_payload x))
      else print_string (Xr_batch.Explain.search_to_text x)
    end
    else begin
    let post slcas =
      if interconnected then Xr_slca.Interconnection.filter index query slcas else slcas
    in
    if trace || analyze then Xr_obs.Tracing.enable ();
    let gc0 = Xr_obs.Runtime.capture () in
    let t0 = Xr_obs.Tracing.now_ns () in
    let ((slcas, entries), report), trace_id =
      Xr_obs.Tracing.with_trace "search" (fun () ->
          let body () =
            let slcas = post (Engine.search ~config index query) in
            let entries =
              if rank then
                let ids = List.filter_map (Xr_xml.Doc.keyword_id index.Index.doc) query in
                Xr_slca.Result_rank.rank index.Index.stats ~query:ids slcas
              else List.map (fun d -> (d, 0.)) slcas
            in
            (slcas, entries)
          in
          if analyze then
            let r, rep = Xr_obs.Analyze.with_report body in
            (r, Some rep)
          else (body (), None))
    in
    let ms = Int64.to_float (Int64.sub (Xr_obs.Tracing.now_ns ()) t0) /. 1e6 in
    let gc = Xr_obs.Runtime.delta gc0 in
    let print_trace () =
      if trace && trace_id <> 0 then begin
        print_newline ();
        print_string (Xr_obs.Tracing.render_tree (Xr_obs.Tracing.spans_of_trace trace_id))
      end
    in
    let print_analyze () =
      match report with
      | None -> ()
      | Some report ->
        let spans =
          if trace_id = 0 then []
          else
            List.filter
              (fun (s : Xr_obs.Tracing.span) -> s.Xr_obs.Tracing.parent_id <> 0)
              (Xr_obs.Tracing.spans_of_trace trace_id)
        in
        print_newline ();
        print_endline
          (Xr_server.Json.to_string (Xr_server.Api.analyze_payload ~ms ~gc ~spans report))
    in
    (if json then
       print_endline
         (Xr_server.Json.to_string
            (Xr_server.Api.search_payload index ~query ~ranked:rank entries))
     else
       match entries with
       | [] -> print_endline "no meaningful result (the query may need refinement; try `refine`)"
       | entries ->
         Printf.printf "%d meaningful SLCA result(s):\n" (List.length slcas);
         let ids = List.filter_map (Xr_xml.Doc.keyword_id index.Index.doc) query in
         List.iter
           (fun (d, score) ->
             let snippet = Xr_slca.Snippet.of_result index.Index.doc ~query:ids d in
             if rank then
               Printf.printf "- %-24s (relevance %.3f)  %s\n"
                 (Xr_xml.Doc.label index.Index.doc d) score snippet
             else Printf.printf "- %-24s %s\n" (Xr_xml.Doc.label index.Index.doc d) snippet)
           entries);
    print_trace ();
    print_analyze ()
    end
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Meaningful-SLCA keyword search (no refinement).")
    Term.(
      const run $ doc_file $ compress_arg $ alg $ rank $ interconnected $ trace $ explain_plan
      $ analyze $ json_flag $ query_args)

(* ---- suggest -------------------------------------------------------------- *)

let suggest_cmd =
  let k = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Suggestions to return.") in
  let run doc k query =
    let index = load_index doc in
    let d = index.Index.doc in
    let config = { Xr_refine.Specialize.default_config with k } in
    match Engine.search index query with
    | [] -> print_endline "no meaningful result; use `refine` instead"
    | results -> (
      Printf.printf "query has %d meaningful result(s); narrowing suggestions:\n"
        (List.length results);
      match Xr_refine.Specialize.suggest ~config index query with
      | [] -> print_endline "  (no keyword usefully narrows this query)"
      | suggestions ->
        List.iteri
          (fun i (s : Xr_refine.Specialize.suggestion) ->
            Printf.printf "  #%d add \"%s\" -> {%s}: %d result(s), e.g. %s\n" (i + 1)
              s.Xr_refine.Specialize.added
              (String.concat " " s.Xr_refine.Specialize.keywords)
              (List.length s.Xr_refine.Specialize.slcas)
              (match s.Xr_refine.Specialize.slcas with
              | r :: _ -> Xr_xml.Doc.label d r
              | [] -> "-"))
          suggestions)
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:"Narrow an over-broad query by suggesting additional keywords (specialization).")
    Term.(const run $ doc_file $ k $ query_args)

(* ---- refine ------------------------------------------------------------------ *)

let refine_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Refined queries to return.") in
  let alg =
    Arg.(
      value
      & opt string "partition"
      & info [ "a"; "algorithm" ] ~docv:"ALG" ~doc:"stack-refine, partition or sle.")
  in
  let show_rules = Arg.(value & flag & info [ "show-rules" ] ~doc:"Print the consulted rules.") in
  let rules_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "rules" ] ~docv:"FILE" ~doc:"Extra refinement rules (see Rule_file format).")
  in
  let no_mine =
    Arg.(value & flag & info [ "no-mine" ] ~doc:"Disable automatic rule mining (use only --rules).")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the ranking breakdown of each refined query.")
  in
  let explain_plan =
    Arg.(
      value & flag
      & info [ "explain-plan" ]
          ~doc:"Print the compiled plan plus the statically-pruned rule list without \
                executing. With --json, emit the server's explain schema.")
  in
  let thesaurus_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "thesaurus" ] ~docv:"FILE" ~doc:"Extra synonym/acronym entries (see Thesaurus format).")
  in
  let run doc mode k alg show_rules rules_file no_mine explain explain_plan thesaurus_file
      json query =
    let index = load_index ?mode doc in
    let algorithm =
      match Engine.algorithm_of_name alg with
      | Some a -> a
      | None -> failwith ("unknown algorithm " ^ alg)
    in
    let thesaurus =
      match thesaurus_file with
      | None -> None
      | Some f ->
        let base = Xr_text.Thesaurus.default () in
        Xr_text.Thesaurus.merge base (Xr_text.Thesaurus.load f);
        Some base
    in
    let config =
      { Engine.default_config with k; algorithm; auto_mine = not no_mine; thesaurus }
    in
    if explain_plan then begin
      let x = Xr_batch.Plan.explain_refine ~config index query in
      if json then
        print_endline (Xr_server.Json.to_string (Xr_server.Api.explain_refine_payload x))
      else print_string (Xr_batch.Explain.refine_to_text x)
    end
    else begin
    let rules =
      match rules_file with Some f -> Xr_refine.Rule_file.load f | None -> []
    in
    let resp = Engine.refine ~config ~rules index query in
    if json then
      print_endline
        (Xr_server.Json.to_string (Xr_server.Api.refine_payload index ~query resp))
    else begin
    if show_rules then begin
      print_endline "rules consulted:";
      List.iter (fun r -> Printf.printf "  %s\n" (Xr_refine.Rule.to_string r)) resp.Engine.rules_used
    end;
    print_endline (Result.describe index.Index.doc resp.Engine.result);
    if explain then begin
      match resp.Engine.result with
      | Result.Refined matches ->
        print_endline "ranking breakdown:";
        List.iter
          (fun (m : Result.rq_match) ->
            print_endline
              (Xr_refine.Ranking.explain index.Index.stats ~original:query m.Result.rq))
          matches
      | Result.Original _ | Result.No_result -> ()
    end
    end
    end
  in
  Cmd.v
    (Cmd.info "refine" ~doc:"Automatic XML keyword query refinement (the paper's pipeline).")
    Term.(
      const run $ doc_file $ compress_arg $ k $ alg $ show_rules $ rules_file $ no_mine
      $ explain $ explain_plan $ thesaurus_file $ json_flag $ query_args)

(* ---- serve -------------------------------------------------------------------- *)

let serve_cmd =
  let port =
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let unix_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket instead of TCP.")
  in
  let domains =
    (* [auto] resolves at parse time — the rest of the server only ever
       sees a concrete count *)
    let domains_conv =
      let parse s =
        match s with
        | "auto" -> Ok (Domain.recommended_domain_count ())
        | _ -> (
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok n
          | Some _ -> Error (`Msg "DOMAINS must be at least 1")
          | None ->
            Error (`Msg (Printf.sprintf "invalid DOMAINS value %S (expected int or 'auto')" s)))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(
      value
      & opt domains_conv (Domain.recommended_domain_count ())
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains sharing the index; $(b,auto) sizes to the host's recommended \
             domain count.")
  in
  let queue =
    Arg.(
      value
      & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission-control bound on queued connections (overload answers 503).")
  in
  let cache =
    Arg.(
      value
      & opt int 512
      & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity in entries (0 disables).")
  in
  let cache_shards =
    Arg.(value & opt int 8 & info [ "cache-shards" ] ~docv:"N" ~doc:"Result-cache lock shards.")
  in
  let deadline =
    Arg.(
      value
      & opt float 5000.
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request time budget in milliseconds.")
  in
  let limit =
    Arg.(
      value
      & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Default cap on result arrays in responses.")
  in
  let parallel_threshold =
    Arg.(
      value
      & opt int Xr_slca.Parallel.default_threshold
      & info [ "parallel-threshold" ] ~docv:"N"
          ~doc:
            "Minimum driver-list postings before a query fans out over the shared domain \
             pool; smaller queries run sequentially (0 always fans out).")
  in
  let no_batch =
    Arg.(
      value & flag
      & info [ "no-batch" ]
          ~doc:
            "Disable batched execution: compiled query plans and single-flight coalescing \
             of concurrent identical requests.")
  in
  let coalesce_window_ms =
    Arg.(
      value
      & opt float 0.
      & info [ "coalesce-window-ms" ] ~docv:"MS"
          ~doc:
            "Wait this long before rendering a cache miss so concurrent identical requests \
             can pile onto one execution; 0 adds no latency and still coalesces genuine \
             overlap.")
  in
  let plan_cache =
    Arg.(
      value
      & opt int 512
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:"Compiled query plans cached per corpus (0 disables plan caching).")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Disable the stderr request log.") in
  let no_trace =
    Arg.(
      value & flag
      & info [ "no-trace" ]
          ~doc:"Disable per-request span recording (/debug/trace and slow-query breakdowns).")
  in
  let slow_query_ms =
    Arg.(
      value
      & opt float 0.
      & info [ "slow-query-ms" ] ~docv:"MS"
          ~doc:
            "Log one structured stderr line (with span breakdown) for every request at or \
             above this latency; 0 disables.")
  in
  let doc_files =
    Arg.(
      value
      & opt_all file []
      & info [ "d"; "document" ] ~docv:"FILE"
          ~doc:
            "XML document or .xrdb store to serve; repeat to serve several corpora \
             (each named after its file, partitioned over shards).")
  in
  let shards =
    Arg.(
      value
      & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serving shards the corpora are partitioned over (scatter-gather); 0 gives \
             every corpus its own shard.")
  in
  let run docs mode port host unix_socket shards domains queue cache cache_shards deadline
      limit parallel_threshold no_batch coalesce_window_ms plan_cache quiet no_trace
      slow_query_ms =
    if docs = [] then (
      prerr_endline "xrefine serve: pass at least one -d FILE";
      exit 2);
    let mode = resolve_mode mode in
    (* Corpus names come from the file basenames, deduplicated in order. *)
    let seen = Hashtbl.create 8 in
    let specs =
      List.map
        (fun file ->
          let base = Filename.remove_extension (Filename.basename file) in
          let n = try Hashtbl.find seen base with Not_found -> 0 in
          Hashtbl.replace seen base (n + 1);
          let name = if n = 0 then base else Printf.sprintf "%s-%d" base (n + 1) in
          if Filename.check_suffix file ".xrdb" then begin
            (* Keep the store open: ingest persists each generation back
               into it, so the corpus survives a restart. *)
            let kv = Xr_store.Kv.btree_file file in
            { Xr_server.Server.name; index = Index.load ~mode kv; kv = Some kv }
          end
          else { Xr_server.Server.name; index = Index.of_file ~mode file; kv = None })
        docs
    in
    let addr =
      match unix_socket with
      | Some path -> Xr_server.Server.Unix_socket path
      | None -> Xr_server.Server.Tcp (host, port)
    in
    let config =
      {
        Xr_server.Server.default_config with
        Xr_server.Server.addr;
        domains;
        queue_bound = queue;
        cache_capacity = cache;
        cache_shards;
        deadline_ms = deadline;
        result_limit = limit;
        parallel_threshold;
        log = not quiet;
        trace = not no_trace;
        slow_query_ms;
        shards;
        batch = not no_batch;
        coalesce_window_ms;
        plan_cache_capacity = plan_cache;
      }
    in
    let server = Xr_server.Server.start_corpora config specs in
    let where =
      match Xr_server.Server.bound_addr server with
      | Unix.ADDR_INET (a, p) -> Printf.sprintf "http://%s:%d" (Unix.string_of_inet_addr a) p
      | Unix.ADDR_UNIX p -> "unix:" ^ p
    in
    let nodes =
      List.fold_left
        (fun acc s -> acc + Xr_xml.Doc.node_count s.Xr_server.Server.index.Index.doc)
        0 specs
    in
    Printf.printf
      "xrefine serve: %d corpora (%s), %d nodes resident; %d worker domain(s), queue bound \
       %d, cache %d, deadline %.0f ms, parallel threshold %d\nlistening on %s\n%!"
      (List.length specs)
      (String.concat ", " (List.map (fun s -> s.Xr_server.Server.name) specs))
      nodes domains queue cache deadline parallel_threshold where;
    let stop _ = Xr_server.Server.stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Xr_server.Server.run server;
    List.iter
      (fun s -> Option.iter (fun (kv : Xr_store.Kv.t) -> kv.close ()) s.Xr_server.Server.kv)
      specs;
    prerr_endline "xrefine serve: stopped"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve /search, /refine, /suggest, /complete, /stats, /metrics.json and /debug/trace \
          as JSON plus /metrics as Prometheus text over HTTP, keeping one or more corpora \
          resident (sharded, writable via POST /ingest) and answering from parallel worker \
          domains.")
    Term.(
      const run $ doc_files $ compress_arg $ port $ host $ unix_socket $ shards $ domains
      $ queue $ cache $ cache_shards $ deadline $ limit $ parallel_threshold $ no_batch
      $ coalesce_window_ms $ plan_cache $ quiet $ no_trace $ slow_query_ms)

(* ---- ingest -------------------------------------------------------------------- *)

let ingest_cmd =
  let port =
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server TCP port.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server address.")
  in
  let unix_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix" ] ~docv:"PATH" ~doc:"Connect to a Unix-domain socket instead of TCP.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"NAME"
          ~doc:"Target corpus (required when the server hosts several).")
  in
  let no_sync =
    Arg.(
      value & flag
      & info [ "no-sync" ]
          ~doc:
            "Return as soon as the document is queued instead of waiting for it to be \
             merged and published.")
  in
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"XML documents to append, one partition each.")
  in
  let run port host unix_socket corpus no_sync files =
    let connect () =
      match unix_socket with
      | Some path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | None ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
            | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
            | _ -> failwith ("cannot resolve host " ^ host))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
    in
    let target =
      let params =
        (if no_sync then [] else [ "sync=true" ])
        @
        match corpus with
        | Some c -> [ "corpus=" ^ Xr_server.Http.percent_encode c ]
        | None -> []
      in
      match params with [] -> "/ingest" | ps -> "/ingest?" ^ String.concat "&" ps
    in
    let post file =
      let ic = open_in_bin file in
      let body =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let fd = connect () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Xr_server.Http.write_all fd
            (Printf.sprintf
               "POST %s HTTP/1.1\r\nhost: %s\r\ncontent-length: %d\r\nconnection: \
                close\r\n\r\n%s"
               target host (String.length body) body);
          match Xr_server.Http.read_response (Xr_server.Http.reader_of_fd fd) with
          | Ok (status, _headers, body) ->
            Printf.printf "%s: %d %s%!" file status body;
            status < 300
          | Error e ->
            Printf.eprintf "%s: %s\n%!" file (Xr_server.Http.error_to_string e);
            false)
    in
    let ok = List.for_all post files in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Append XML documents to a running server's corpus via POST /ingest; by default \
          waits until each document is merged and published (visible to queries).")
    Term.(const run $ port $ host $ unix_socket $ corpus $ no_sync $ files)

(* ---- complete ----------------------------------------------------------------- *)

let complete_cmd =
  let prefix =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PREFIX" ~doc:"Keyword prefix.")
  in
  let k = Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Completions to show.") in
  let run doc prefix k =
    let index = load_index doc in
    let d = index.Index.doc in
    let trie =
      Xr_text.Trie.of_vocabulary
        (List.map
           (fun w ->
             ( w,
               match Xr_xml.Doc.keyword_id d w with
               | Some kw -> Xr_index.Inverted.length index.Index.inverted kw
               | None -> 0 ))
           (Xr_xml.Doc.vocabulary d))
    in
    match Xr_text.Trie.complete trie ~limit:k prefix with
    | [] -> print_endline "(no completion in this corpus)"
    | completions ->
      List.iter (fun (w, n) -> Printf.printf "%-24s %d occurrence node(s)\n" w n) completions
  in
  Cmd.v
    (Cmd.info "complete" ~doc:"Complete a keyword prefix against the corpus vocabulary.")
    Term.(const run $ doc_file $ prefix $ k)

(* ---- repl ---------------------------------------------------------------------- *)

let repl_cmd =
  let run doc =
    let index = load_index doc in
    let d = index.Index.doc in
    let trie =
      lazy
        (Xr_text.Trie.of_vocabulary
           (List.map
              (fun w ->
                ( w,
                  match Xr_xml.Doc.keyword_id d w with
                  | Some kw -> Xr_index.Inverted.length index.Index.inverted kw
                  | None -> 0 ))
              (Xr_xml.Doc.vocabulary d)))
    in
    Printf.printf
      "xrefine repl — %d nodes, %d keywords.\nType a query; :complete PREFIX, :xpath PATH, :explain QUERY, :quit.\n%!"
      (Xr_xml.Doc.node_count d)
      (List.length (Xr_xml.Doc.vocabulary d));
    let rec loop () =
      print_string "query> ";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line when String.trim line = ":quit" || String.trim line = ":q" -> ()
      | Some line when String.length (String.trim line) > 10
                       && String.sub (String.trim line) 0 10 = ":complete " ->
        let prefix = String.trim (String.sub (String.trim line) 10 (String.length (String.trim line) - 10)) in
        List.iter
          (fun (w, n) -> Printf.printf "  %-24s %d occurrence node(s)\n" w n)
          (Xr_text.Trie.complete (Lazy.force trie) prefix);
        loop ()
      | Some line when String.length (String.trim line) > 7
                       && String.sub (String.trim line) 0 7 = ":xpath " ->
        let expr = String.trim (String.sub (String.trim line) 7 (String.length (String.trim line) - 7)) in
        (match Xr_xml.Xpath.parse expr with
        | Error msg -> Printf.printf "  bad path: %s\n" msg
        | Ok p ->
          let nodes = Xr_xml.Xpath.eval d p in
          Printf.printf "  %d node(s)\n" (List.length nodes);
          List.iteri
            (fun i dewey -> if i < 10 then Printf.printf "  - %s\n" (Xr_xml.Doc.label d dewey))
            nodes);
        loop ()
      | Some line when String.length (String.trim line) > 9
                       && String.sub (String.trim line) 0 9 = ":explain " ->
        let q = Xr_xml.Token.tokenize (String.sub (String.trim line) 9 (String.length (String.trim line) - 9)) in
        (match (Engine.refine index q).Engine.result with
        | Result.Refined matches ->
          List.iter
            (fun (m : Result.rq_match) ->
              print_endline (Xr_refine.Ranking.explain index.Index.stats ~original:q m.Result.rq))
            matches
        | Result.Original _ -> print_endline "  (matches directly; nothing to explain)"
        | Result.No_result -> print_endline "  (no refinement found)");
        loop ()
      | Some line ->
        let query = Xr_xml.Token.tokenize line in
        (if query = [] then print_endline "(empty query)"
         else begin
           let ids = List.filter_map (Xr_xml.Doc.keyword_id d) query in
           match Engine.auto index query with
           | Engine.Matched slcas ->
             Printf.printf "%d result(s):\n" (List.length slcas);
             List.iteri
               (fun i dewey ->
                 if i < 10 then
                   Printf.printf "  %-24s %s\n" (Xr_xml.Doc.label d dewey)
                     (Xr_slca.Snippet.of_result d ~query:ids dewey))
               slcas
           | Engine.Auto_refined resp ->
             print_endline "no meaningful result; refined automatically:";
             print_endline (Result.describe d resp.Engine.result)
           | Engine.Narrowed (slcas, suggestions) ->
             Printf.printf "%d results - narrow with:%s\n" (List.length slcas)
               (String.concat ""
                  (List.map
                     (fun (s : Xr_refine.Specialize.suggestion) ->
                       Printf.sprintf " +%s(%d)" s.Xr_refine.Specialize.added
                         (List.length s.Xr_refine.Specialize.slcas))
                     suggestions))
         end);
        loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query session with the fully adaptive pipeline.")
    Term.(const run $ doc_file)

(* ---- xpath ------------------------------------------------------------------ *)

let xpath_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"Path expression.")
  in
  let run doc expr =
    let index = load_index doc in
    let d = index.Index.doc in
    match Xr_xml.Xpath.parse expr with
    | Error msg -> failwith ("bad path: " ^ msg)
    | Ok p ->
      let nodes = Xr_xml.Xpath.eval d p in
      Printf.printf "%d node(s) match %s:\n" (List.length nodes) (Xr_xml.Xpath.to_string p);
      List.iteri
        (fun i dewey ->
          if i < 20 then Printf.printf "- %s\n" (Xr_xml.Doc.label d dewey)
          else if i = 20 then print_endline "  ...")
        nodes
  in
  Cmd.v
    (Cmd.info "xpath" ~doc:"Evaluate a simple path expression (child//descendant steps, [kw] filter).")
    Term.(const run $ doc_file $ expr)

(* ---- workload / replay ---------------------------------------------------- *)

let workload_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let per_kind =
    Arg.(value & opt int 5 & info [ "per-kind" ] ~docv:"N" ~doc:"Cases per corruption kind.")
  in
  let seed = Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let run doc out per_kind seed =
    let index = load_index doc in
    let rng = Xr_data.Rng.create seed in
    let thesaurus = Xr_text.Thesaurus.default () in
    let pool = Xr_eval.Querylog.pool ~thesaurus rng index ~per_kind in
    Xr_eval.Trace.save out pool;
    Printf.printf "wrote %d corrupted queries (with intents and repair rules) to %s\n"
      (List.length pool) out
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Generate a reproducible pool of corrupted queries (with known repairs) for a document.")
    Term.(const run $ doc_file $ out $ per_kind $ seed)

let replay_cmd =
  let trace =
    Arg.(
      required & opt (some file) None & info [ "t"; "trace" ] ~docv:"FILE" ~doc:"Trace to replay.")
  in
  let run doc trace =
    let index = load_index doc in
    let cases = Xr_eval.Trace.load trace in
    let hits = ref 0 and total = ref 0 in
    List.iter
      (fun (c : Xr_eval.Querylog.case) ->
        incr total;
        let resp = Engine.refine index c.Xr_eval.Querylog.corrupted in
        let recovered =
          match resp.Engine.result with
          | Result.Refined ({ Result.rq; _ } :: _) ->
            rq.Xr_refine.Refined_query.keywords
            = List.sort_uniq String.compare
                (List.map Xr_xml.Token.normalize c.Xr_eval.Querylog.intent)
          | _ -> false
        in
        if recovered then incr hits;
        Printf.printf "[%s] {%s} -> %s\n"
          (Xr_eval.Querylog.kind_name c.Xr_eval.Querylog.kind)
          (String.concat "," c.Xr_eval.Querylog.corrupted)
          (match resp.Engine.result with
          | Result.Refined ({ Result.rq; slcas; _ } :: _) ->
            Printf.sprintf "%s (%d results)%s"
              (Xr_refine.Refined_query.to_string rq)
              (List.length slcas)
              (if recovered then "  [intent recovered]" else "")
          | Result.Original _ -> "(matched directly)"
          | Result.Refined [] | Result.No_result -> "(no refinement)"))
      cases;
    Printf.printf "recovered the exact intent for %d/%d queries\n" !hits !total
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a workload trace and report intent recovery.")
    Term.(const run $ doc_file $ trace)

(* ---- stats --------------------------------------------------------------------- *)

let stats_cmd =
  let run doc query =
    let index = load_index doc in
    let d = index.Index.doc in
    Printf.printf "document: %d element nodes, %d keywords, %d node types, depth %d\n"
      (Xr_xml.Doc.node_count d)
      (List.length (Xr_xml.Doc.vocabulary d))
      (Xr_xml.Path.size d.Xr_xml.Doc.paths)
      (Xr_xml.Tree.depth d.Xr_xml.Doc.tree);
    Xr_xml.Path.iter
      (fun p ->
        Printf.printf "  %-50s N_T=%-6d G_T=%d\n" (Xr_xml.Doc.path_string d p)
          (Xr_index.Stats.node_count index.Index.stats p)
          (Xr_index.Stats.distinct_keywords index.Index.stats p))
      d.Xr_xml.Doc.paths;
    if query <> [] then begin
      let ids = List.filter_map (Xr_xml.Doc.keyword_id d) query in
      Printf.printf "search-for candidates of {%s}:\n" (String.concat "," query);
      List.iter
        (fun (p, conf) -> Printf.printf "  %-50s confidence %.4f\n" (Xr_xml.Doc.path_string d p) conf)
        (Xr_slca.Search_for.infer index.Index.stats ids)
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Document statistics and search-for node inference.")
    Term.(const run $ doc_file $ query_args)

let () =
  let info =
    Cmd.info "xrefine" ~version:"1.0.0"
      ~doc:"Automatic XML keyword query refinement (XRefine reproduction)."
  in
  exit (Cmd.eval (Cmd.group info
       [ generate_cmd; index_cmd; search_cmd; refine_cmd; serve_cmd; ingest_cmd; suggest_cmd;
         complete_cmd; repl_cmd; xpath_cmd; workload_cmd; replay_cmd; stats_cmd ]))
