(** Shared setup for the three refinement algorithms: normalizes the
    query, restricts the rule set to it, resolves [KS = Q + new keywords]
    to their packed inverted lists, and infers the search-for context
    once.

    The packed lists are shared with the index (building a [t] copies
    nothing). The boxed posting arrays exist only behind per-keyword lazy
    cells: the packed algorithm paths never force them, which is what
    keeps {!Xr_index.Inverted.materialization_count} at zero on the
    default refine path; the [*_legacy] algorithm variants force them on
    first access. *)

open Xr_xml

type t = {
  index : Xr_index.Index.t;
  query : string list;  (** normalized original query, order preserved *)
  rules : Ruleset.t;  (** rules relevant to the query, RHS in document *)
  ks : string array;  (** KS: query keywords first, then new keywords *)
  packed : Dewey.Packed.t array;  (** per KS position, shared with index *)
  lists : Xr_index.Inverted.posting array Lazy.t array;
      (** per KS position, boxed compatibility view — prefer
          {!legacy_list} over forcing these directly *)
  q_size : int;  (** first [q_size] entries of [ks] are the query *)
  meaningful : Xr_slca.Meaningful.t;
  dp_config : Optimal_rq.config;
}

val make :
  ?dp_config:Optimal_rq.config ->
  ?search_for:Xr_slca.Search_for.config ->
  Xr_index.Index.t ->
  Ruleset.t ->
  string list ->
  t

(** [legacy_list t i] is the boxed posting list of KS position [i],
    materialized on first use (bumps the index's materialization
    counter). *)
val legacy_list : t -> int -> Xr_index.Inverted.posting array

(** [list_length t i] is the posting count of KS position [i], read off
    the packed list without materializing anything. *)
val list_length : t -> int -> int

(** [keyword_length t k] is {!list_length} by keyword name (0 when [k] is
    not a KS member). *)
val keyword_length : t -> string -> int

(** [slices t dewey ~from] computes, for every KS keyword, the index range
    of its postings inside the subtree rooted at [dewey], starting the
    binary search at the per-list positions [from] (pass all zeros for the
    whole list). Forces the boxed views; packed callers use
    {!packed_slices}. *)
val slices : t -> Dewey.t -> from:int array -> (int * int) array

(** [packed_slices t dewey ~from] is {!slices} computed directly on the
    packed lists — same ranges (the packed and boxed views index the same
    entries), nothing materialized. *)
val packed_slices : t -> Dewey.t -> from:int array -> (int * int) array

(** [available_in t ranges] is the membership test for the keyword set [T]
    = KS entries whose range in [ranges] is non-empty. *)
val available_in : t -> (int * int) array -> string -> bool

(** [sublists t ranges keywords] extracts the posting sub-arrays of
    [keywords] (which must be KS members) for a list-based SLCA engine
    call. *)
val sublists :
  t -> (int * int) array -> string list -> Xr_index.Inverted.posting array list

(** [packed_sublists t ranges keywords] is {!sublists} as zero-copy
    packed ranges, for {!Xr_slca.Engine.compute_ranges}. *)
val packed_sublists :
  t -> (int * int) array -> string list -> (Dewey.Packed.t * int * int) list

(** [full_lists t keywords] is the whole-document posting lists of
    [keywords]. *)
val full_lists : t -> string list -> Xr_index.Inverted.posting array list

(** [packed_full_lists t keywords] is {!full_lists} as zero-copy packed
    ranges. *)
val packed_full_lists : t -> string list -> (Dewey.Packed.t * int * int) list

(** [meaningful_slcas t engine lists] runs an SLCA engine and keeps the
    meaningful results. *)
val meaningful_slcas :
  t ->
  (Xr_index.Inverted.posting array list -> Dewey.t list) ->
  Xr_index.Inverted.posting array list ->
  Dewey.t list

(** [meaningful_slcas_ranges t alg ranges] runs an SLCA engine over
    packed ranges (see {!Xr_slca.Engine.compute_ranges}) and keeps the
    meaningful results. *)
val meaningful_slcas_ranges :
  t -> Xr_slca.Engine.algorithm -> (Dewey.Packed.t * int * int) list -> Dewey.t list
