(** Algorithm 2: partition-based Top-K query refinement.

    The document is processed partition by partition (a partition is the
    subtree under one child of the root, Definition 6.1), driven by the
    smallest unconsumed posting across all [KS] inverted lists — a single
    forward scan. Inside a partition the k-best dynamic program proposes
    Top-2K candidates from the keywords present there; candidates that
    cannot beat the current [RQSortedList] maximum are pruned {e before}
    any SLCA computation, and admitted candidates get their SLCAs computed
    within the partition only, by any SLCA engine (Lemma 3). The full
    ranking model then reorders the surviving 2K pool into the final
    Top-K.

    If some partition matches the original query itself with a meaningful
    SLCA, refinement is cancelled and the query's own results are
    returned (Definition 3.4). *)

open Xr_xml

type stats = {
  partitions_visited : int;
  partitions_skipped : int;  (** pruned before SLCA computation *)
  dp_runs : int;
  slca_runs : int;
}

(** [run ?ranking ?slca ~k setup] returns the refinement outcome and scan
    statistics. The scan runs directly on the packed inverted lists —
    partition probes and slices happen in varint-encoded form and the
    per-partition SLCAs run on packed ranges, so no posting array is ever
    materialized. [slca] is promoted to its packed partner
    ({!Xr_slca.Engine.packed_partner}); it defaults to scan-packed (the
    packed form of the paper's choice). *)
val run :
  ?ranking:Ranking.config ->
  ?slca:Xr_slca.Engine.algorithm ->
  k:int ->
  Refine_common.t ->
  Result.t * stats

(** [run_legacy ?ranking ?slca ~k setup] is the boxed-posting-array
    reference implementation; same outcome and statistics as {!run} (the
    differential suite asserts it). [slca] defaults to scan-eager. *)
val run_legacy :
  ?ranking:Ranking.config ->
  ?slca:Xr_slca.Engine.algorithm ->
  k:int ->
  Refine_common.t ->
  Result.t * stats

(** [partition_roots doc] lists the Dewey labels of the document
    partitions, document order (exposed for tests). *)
val partition_roots : Doc.t -> Dewey.t list
