(** [RQSortedList] (Section VI-B): the bounded candidate list ordered by
    dissimilarity, with O(1) duplicate detection via a keyword-set hash —
    mirroring the paper's B-tree + hashtable pair. *)

type t

val create : capacity:int -> t

(** [max_dissimilarity t] is the dissimilarity of the worst kept candidate
    when the list is full, [None] while it has room. *)
val max_dissimilarity : t -> int option

(** [would_admit t ds] is true if a candidate with dissimilarity [ds]
    would enter the list (room left, or strictly better than the worst). *)
val would_admit : t -> int -> bool

(** [mem t rq] checks keyword-set membership. *)
val mem : t -> Refined_query.t -> bool

(** [mem_key t key] is {!mem} for a precomputed {!Refined_query.key} —
    membership probes in a hot loop need not rebuild the string. *)
val mem_key : t -> string -> bool

(** [revision t] counts mutations: two probes at equal revision see
    identical membership and admission answers. *)
val revision : t -> int

(** [insert t rq] admits [rq] if it qualifies, evicting the worst when
    full; an already-present keyword set is kept at the cheaper
    dissimilarity. Returns whether the list now contains [rq]'s keyword
    set. *)
val insert : t -> Refined_query.t -> bool

(** [to_list t] is the candidates, cheapest first. *)
val to_list : t -> Refined_query.t list

val length : t -> int
