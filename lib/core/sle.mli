(** Algorithm 3: short-list eager (SLE) Top-K query refinement.

    Keyword inverted lists are consumed in ascending length order (with
    the paper's smarter priority: keywords that appear on a rule's RHS, or
    in no rule's LHS, come first — they are likely part of the final
    Top-K). For each partition containing the current keyword, the other
    lists are probed by random access to assemble the partition's keyword
    set, and the k-best DP proposes candidates. Exploration stops as soon
    as the optimistic bound [C_potential] — the cheapest dissimilarity any
    refined query over the still-unprocessed keywords could have — cannot
    beat the current K-th candidate. SLCA results of the surviving Top-K
    are then computed by any SLCA engine over the full lists (step 2). *)

type stats = {
  keywords_processed : int;  (** short lists consumed before the stop test fired *)
  partitions_probed : int;
  dp_runs : int;
  stopped_early : bool;
}

(** [run ?ranking ?slca ~k setup] returns the refinement outcome and
    statistics, operating directly on the packed inverted lists (slices,
    partition enumeration and SLCAs all in packed form — no posting array
    is ever materialized). [slca] is promoted to its packed partner
    ({!Xr_slca.Engine.packed_partner}); it defaults to scan-packed. *)
val run :
  ?ranking:Ranking.config ->
  ?slca:Xr_slca.Engine.algorithm ->
  k:int ->
  Refine_common.t ->
  Result.t * stats

(** [run_legacy ?ranking ?slca ~k setup] is the boxed-posting-array
    reference implementation; same outcome and statistics as {!run} (the
    differential suite asserts it). [slca] defaults to scan-eager. *)
val run_legacy :
  ?ranking:Ranking.config ->
  ?slca:Xr_slca.Engine.algorithm ->
  k:int ->
  Refine_common.t ->
  Result.t * stats
