open Xr_xml

type config = {
  deletion_cost : int;
  beam : int;
}

let default_config = { deletion_cost = 2; beam = 32 }

type state = {
  cost : int;
  kept : string list; (* accumulated RQ keywords, reversed *)
  edits : Refined_query.edit list; (* reversed *)
}

let state_key s = String.concat " " (List.sort_uniq String.compare s.kept)

(* Keep the cheapest state per produced keyword set, then the [beam]
   cheapest overall. *)
let prune beam states =
  let best = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let key = state_key s in
      match Hashtbl.find_opt best key with
      | Some s' when s'.cost <= s.cost -> ()
      | _ -> Hashtbl.replace best key s)
    states;
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) best [] in
  let sorted = List.sort (fun a b -> Int.compare a.cost b.cost) all in
  List.filteri (fun i _ -> i < beam) sorted

let top_k ?(config = default_config) ~rules ~available ~k query =
  Xr_obs.Tracing.with_span "refine.enumerate" @@ fun () ->
  let beam = max config.beam k in
  let s = Array.of_list (List.map Token.normalize query) in
  let n = Array.length s in
  let cells = Array.make (n + 1) [] in
  cells.(0) <- [ { cost = 0; kept = []; edits = [] } ];
  for i = 1 to n do
    let ki = s.(i - 1) in
    let acc = ref [] in
    let extend from f = List.iter (fun st -> acc := f st :: !acc) cells.(from) in
    (* Option 1: keep k_i when it is available in T. *)
    if available ki then
      extend (i - 1) (fun st ->
          { cost = st.cost; kept = ki :: st.kept; edits = Refined_query.Kept ki :: st.edits });
    (* Option 2: delete k_i. *)
    extend (i - 1) (fun st ->
        {
          cost = st.cost + config.deletion_cost;
          kept = st.kept;
          edits = Refined_query.Deleted ki :: st.edits;
        });
    (* Option 3: apply a rule whose LHS is the window ending at i. *)
    List.iter
      (fun (r : Rule.t) ->
        let l = List.length r.lhs in
        if l <= i then begin
          let window = Array.to_list (Array.sub s (i - l) l) in
          if List.for_all2 String.equal window r.lhs && List.for_all available r.rhs then
            extend (i - l) (fun st ->
                {
                  cost = st.cost + r.ds;
                  kept = List.rev_append r.rhs st.kept;
                  edits = Refined_query.Applied r :: st.edits;
                })
        end)
      (Ruleset.ending_with rules ki);
    cells.(i) <- prune beam !acc
  done;
  cells.(n)
  |> List.filter (fun st -> st.kept <> [])
  |> List.map (fun st ->
         {
           Refined_query.keywords = List.sort_uniq String.compare st.kept;
           dissimilarity = st.cost;
           edits = List.rev st.edits;
         })
  |> List.filteri (fun i _ -> i < k)

let optimal ?config ~rules ~available query =
  match top_k ?config ~rules ~available ~k:1 query with
  | rq :: _ -> Some rq
  | [] -> None
