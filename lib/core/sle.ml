open Xr_xml
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

type stats = {
  keywords_processed : int;
  partitions_probed : int;
  dp_runs : int;
  stopped_early : bool;
}

(* Processing order (Section VI-C discussion): prefer keywords that appear
   in the RHS of a relevant rule or in no rule's LHS (they need no
   refinement themselves), then ascending list length. List lengths come
   off the packed lists, so ordering materializes nothing. *)
let keyword_order (c : Refine_common.t) =
  let rules = Ruleset.to_list c.rules in
  let in_rhs k = List.exists (fun (r : Rule.t) -> List.mem k r.rhs) rules in
  let in_lhs k = List.exists (fun (r : Rule.t) -> List.mem k r.lhs) rules in
  let score i =
    let k = c.ks.(i) in
    let preferred = in_rhs k || not (in_lhs k) in
    ((if preferred then 0 else 1), Refine_common.list_length c i, i)
  in
  let idx = List.init (Array.length c.ks) Fun.id in
  let nonempty = List.filter (fun i -> Refine_common.list_length c i > 0) idx in
  List.sort (fun a b -> compare (score a) (score b)) nonempty

(* Optimistic bound: cheapest dissimilarity of any refined query built
   from the still-unprocessed keywords. *)
let make_c_potential (c : Refine_common.t) ~processed ~dp_runs () =
  let available kw =
    let rec find i =
      if i >= Array.length c.ks then false
      else if String.equal c.ks.(i) kw then
        (not processed.(i)) && Refine_common.list_length c i > 0
      else find (i + 1)
    in
    find 0
  in
  incr dp_runs;
  match Optimal_rq.optimal ~config:c.dp_config ~rules:c.rules ~available c.query with
  | Some rq when not (Refined_query.is_original rq) -> Some rq.Refined_query.dissimilarity
  | Some _ -> Some 0
  | None -> None

(* Partitions sharing a keyword-availability signature share their DP
   candidate list; candidates carry precomputed keyword-set keys and
   [pure_rev] remembers an [Rq_list] revision at which walking the list
   had no effect (see {!Partition.process_candidates} for the same
   device). *)
type cand_set = {
  cands : (Refined_query.t * string) list;
  mutable pure_rev : int;
}

let make_candidates_for (c : Refine_common.t) ~k ~dp_runs =
  let dp_cache : (int, cand_set) Hashtbl.t = Hashtbl.create 16 in
  let cacheable = Array.length c.ks <= 62 (* bitmask must not overflow *) in
  let compute ranges =
    incr dp_runs;
    let cs =
      Optimal_rq.top_k ~config:c.dp_config ~rules:c.rules
        ~available:(Refine_common.available_in c ranges)
        ~k:(max (2 * k) c.dp_config.Optimal_rq.beam) c.query
    in
    { cands = List.map (fun rq -> (rq, Refined_query.key rq)) cs; pure_rev = -1 }
  in
  fun ranges ->
    if not cacheable then compute ranges
    else
      let key =
        let rec go j acc =
          if j >= Array.length ranges then acc
          else
            let lo, hi = ranges.(j) in
            go (j + 1) (if hi > lo then acc lor (1 lsl j) else acc)
        in
        go 0 0
      in
      match Hashtbl.find_opt dp_cache key with
      | Some cs -> cs
      | None ->
        let cs = compute ranges in
        Hashtbl.add dp_cache key cs;
        cs

(* Shared driver: [slices pid] (the per-partition posting ranges),
   [slca_sub ranges keywords], [slca_full keywords] and [iter_partitions]
   are the only operations touching posting data, so the packed and
   legacy entry points below differ purely in how those are wired. Both
   wirings return identical index ranges, keeping outcomes identical. *)
let run_with (c : Refine_common.t) ~ranking ~k ~slices ~slca_sub ~slca_full
    ~slca_full_batch ~prefetch ~iter_partitions =
  let q_keywords = Array.to_list (Array.sub c.ks 0 c.q_size) in
  (* Adaptivity check (Definition 3.4): if the original query itself has a
     meaningful SLCA, no refinement happens. *)
  let q_slcas =
    if List.exists (fun k -> Refine_common.keyword_length c k = 0) q_keywords then []
    else slca_full q_keywords
  in
  if q_slcas <> [] then
    ( Result.Original q_slcas,
      { keywords_processed = 0; partitions_probed = 0; dp_runs = 0; stopped_early = false } )
  else begin
    let rqlist = Rq_list.create ~capacity:(2 * k) in
    let order = keyword_order c in
    let processed = Array.make (Array.length c.ks) false in
    let visited_partitions : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let probed = ref 0 and dp_runs = ref 0 and consumed = ref 0 in
    let stopped = ref false in
    let c_potential = make_c_potential c ~processed ~dp_runs in
    let candidates_for = make_candidates_for c ~k ~dp_runs in
    let process_partition pid =
      if not (Hashtbl.mem visited_partitions pid) then begin
        Hashtbl.add visited_partitions pid ();
        incr probed;
        let ranges = slices pid in
        (* Candidates arrive cost-sorted and [Rq_list] admission is
           monotone in dissimilarity, so the first rejection ends the
           walk — nothing cheaper can follow; an effect-free walk is
           remembered and skipped while the list's revision holds. *)
        let cset = candidates_for ranges in
        if cset.pure_rev <> Rq_list.revision rqlist then begin
          (* overlap the walk's independent SLCA runs on the domain
             pool; the sequential replay below keeps admissions and
             their order exactly as in the all-sequential walk *)
          let lookup = prefetch cset.cands ranges rqlist in
          let impure = ref false in
          let rec go = function
            | [] -> ()
            | (rq, key) :: rest ->
              if Refined_query.is_original rq then go rest
              else if not (Rq_list.would_admit rqlist rq.Refined_query.dissimilarity)
              then ()
              else begin
                if not (Rq_list.mem_key rqlist key) then begin
                  impure := true;
                  (* Definition 3.4: admit only with a meaningful SLCA in
                     this partition. *)
                  let slcas =
                    match lookup key with
                    | Some slcas -> slcas
                    | None -> slca_sub ranges rq.Refined_query.keywords
                  in
                  if slcas <> [] then ignore (Rq_list.insert rqlist rq)
                end;
                go rest
              end
          in
          go cset.cands;
          if not !impure then cset.pure_rev <- Rq_list.revision rqlist
        end
      end
    in
    let rec loop = function
      | [] -> ()
      | i :: rest ->
        let stop =
          Rq_list.max_dissimilarity rqlist <> None
          &&
          match (c_potential (), Rq_list.max_dissimilarity rqlist) with
          | None, _ -> true
          | Some p, Some m -> p > m
          | Some _, None -> false
        in
        if stop then stopped := true
        else begin
          incr consumed;
          iter_partitions i process_partition;
          processed.(i) <- true;
          loop rest
        end
    in
    loop order;
    let pool = Rq_list.to_list rqlist in
    let outcome =
      if pool = [] then Result.No_result
      else begin
        let scored =
          Ranking.rank ~config:ranking c.index.Xr_index.Index.stats ~original:c.query pool
        in
        let top = List.filteri (fun i _ -> i < k) scored in
        (* Step 2: full-document SLCA computation for the final Top-K —
           independent passes, one pool task each, joined in rank
           order. *)
        let slca_sets =
          slca_full_batch (List.map (fun (s : Ranking.scored) -> s.rq.Refined_query.keywords) top)
        in
        Result.Refined
          (List.mapi
             (fun i (s : Ranking.scored) ->
               { Result.rq = s.rq; score = Some s; slcas = slca_sets.(i) })
             top)
      end
    in
    ( outcome,
      {
        keywords_processed = !consumed;
        partitions_probed = !probed;
        dp_runs = !dp_runs;
        stopped_early = !stopped;
      } )
  end

(* Packed entry point: slices, sub-list SLCAs and partition enumeration
   all run off the packed lists; nothing boxed is ever forced. Because a
   keyword pass probes partitions in ascending id order, the slices come
   from per-list cursors galloping forward (reset once per pass) instead
   of whole-list binary searches. *)
let run ?(ranking = Ranking.default_config) ?(slca = Slca_engine.Scan_packed) ~k
    (c : Refine_common.t) =
  let slca = Slca_engine.packed_partner slca in
  let m = Array.length c.packed in
  let cursors = Array.map PC.make c.packed in
  let probe = [| 0 |] in
  run_with c ~ranking ~k
    ~slca_full_batch:(Par_eval.topk_slcas c ~slca)
    ~prefetch:
      (if Par_eval.prefetch_enabled c then fun cands ranges rqlist ->
         Par_eval.prefetch c ~slca ~ranges ~rqlist cands
       else fun _ _ _ -> Par_eval.none)
    ~slices:(fun pid ->
      Array.init m (fun j ->
          let cur = cursors.(j) in
          probe.(0) <- pid;
          PC.seek_geq_sub cur probe 1;
          let lo = PC.position cur in
          probe.(0) <- pid + 1;
          PC.seek_geq_sub cur probe 1;
          (lo, PC.position cur)))
    ~slca_sub:(fun ranges keywords ->
      Refine_common.meaningful_slcas_ranges c slca
        (Refine_common.packed_sublists c ranges keywords))
    ~slca_full:(fun keywords ->
      Refine_common.meaningful_slcas_ranges c slca
        (Refine_common.packed_full_lists c keywords))
    ~iter_partitions:(fun i f ->
      (* new pass: partition ids restart from the low end *)
      Array.iteri (fun j pk -> cursors.(j) <- PC.make pk) c.packed;
      let pk = c.packed.(i) in
      for e = 0 to P.length pk - 1 do
        if P.depth_at pk e > 0 then f (P.first_component pk e)
      done)

(* Boxed-list reference implementation, kept for the differential suite
   and the [sle-legacy] engine selector. *)
let run_legacy ?(ranking = Ranking.default_config) ?(slca = Slca_engine.Scan_eager) ~k
    (c : Refine_common.t) =
  let engine = Slca_engine.compute slca in
  let zeros = Array.make (Array.length c.ks) 0 in
  run_with c ~ranking ~k
    ~slca_full_batch:(fun keyword_sets ->
      Array.of_list
        (List.map
           (fun kws ->
             Refine_common.meaningful_slcas c engine (Refine_common.full_lists c kws))
           keyword_sets))
    ~prefetch:(fun _ _ _ -> Par_eval.none)
    ~slices:(fun pid -> Refine_common.slices c [| pid |] ~from:zeros)
    ~slca_sub:(fun ranges keywords ->
      Refine_common.meaningful_slcas c engine (Refine_common.sublists c ranges keywords))
    ~slca_full:(fun keywords ->
      Refine_common.meaningful_slcas c engine (Refine_common.full_lists c keywords))
    ~iter_partitions:(fun i f ->
      Array.iter
        (fun (p : Inverted.posting) -> if Dewey.depth p.dewey > 0 then f p.dewey.(0))
        (Refine_common.legacy_list c i))
