(** Domain-parallel evaluation of independent candidate refined queries.

    The Top-K refinement loop evaluates candidate RQs whose SLCA runs
    are mutually independent; this module fans those runs out over the
    shared {!Xr_pool} while keeping every stateful step — [Rq_list]
    admission, the meaningfulness memo — on the submitting domain, so
    outcomes are byte-identical to the sequential pipeline (rank ties
    keep being broken by candidate index, never by arrival order).
    Below {!Xr_slca.Parallel.threshold}, or on a pool of size 1, both
    entry points fall back to sequential evaluation and tick the
    fallback counter. *)

open Xr_xml

val none : string -> Dewey.t list option
(** The empty lookup: every key misses. What {!prefetch} degrades to,
    and what the legacy pipelines pass. *)

val prefetch_enabled : Refine_common.t -> bool
(** Whether the query's full scope lists reach the parallel threshold.
    Partition ranges are sub-ranges of the scope, so when this is false
    every per-partition {!prefetch} would fall back — callers decide
    once per run (one fallback tick) and pass the walk a trivial
    prefetch instead, keeping sub-threshold queries overhead-free. *)

(** [prefetch c ~slca ~ranges ~rqlist cands] pre-evaluates, in
    parallel, the meaningful-SLCA sets of the prefix of [cands] that a
    sequential walk could request under the admission state of
    [rqlist] at call time (a superset of what the evolving walk will
    request, since admission only tightens). Returns a lookup from
    candidate key to its SLCA set; the caller replays its exact
    sequential walk, consulting the lookup before computing. *)
val prefetch :
  ?pool:Xr_pool.t ->
  Refine_common.t ->
  slca:Xr_slca.Engine.algorithm ->
  ranges:(int * int) array ->
  rqlist:Rq_list.t ->
  (Refined_query.t * string) list ->
  string ->
  Dewey.t list option

(** [topk_slcas c ~slca keyword_sets] materializes the full-document
    meaningful SLCA set of each final Top-K refined query, one pool
    task per query, results in input order. *)
val topk_slcas :
  ?pool:Xr_pool.t ->
  Refine_common.t ->
  slca:Xr_slca.Engine.algorithm ->
  string list list ->
  Dewey.t list array
