(** XRefine: the top-level automatic refinement engine (the paper's
    prototype of the same name).

    Given an indexed document and a keyword query, the engine mines (or
    accepts) refinement rules, decides adaptively whether the query needs
    refinement, and produces either the query's own meaningful SLCAs or
    the ranked Top-K refined queries with their results — with the
    algorithm, the plugged SLCA engine and every model parameter
    configurable. *)

type algorithm =
  | Stack_refine  (** Algorithm 1 (Top-1), packed scan *)
  | Partition  (** Algorithm 2 (Top-K), packed scan *)
  | Short_list_eager  (** Algorithm 3 (Top-K), packed scan *)
  | Stack_refine_legacy  (** Algorithm 1 over boxed posting arrays *)
  | Partition_legacy  (** Algorithm 2 over boxed posting arrays *)
  | Sle_legacy  (** Algorithm 3 over boxed posting arrays *)

val algorithm_name : algorithm -> string

val algorithm_of_name : string -> algorithm option

type config = {
  k : int;  (** how many refined queries to return; default 3 *)
  algorithm : algorithm;  (** default [Partition] (packed scan) *)
  slca : Xr_slca.Engine.algorithm;
      (** plugged SLCA engine; default scan-parallel (scan-packed
          chunked over the domain pool, sequential below the
          {!Xr_slca.Parallel.threshold}). Packed refinement
          algorithms promote a list-based choice to its packed partner
          ({!Xr_slca.Engine.packed_partner}) — result-identical; the
          [*_legacy] algorithms use it as given. *)
  ranking : Ranking.config;
  dp : Optimal_rq.config;
  search_for : Xr_slca.Search_for.config;
  auto_mine : bool;  (** derive rules from the document + thesaurus; default true *)
  rank_results : bool;
      (** order each result list by XML TF*IDF relevance instead of
          document order; default false *)
  mine : Ruleset.mine_config;
  thesaurus : Xr_text.Thesaurus.t option;  (** default: the built-in one *)
}

val default_config : config

type run_stats =
  | Stack_stats of Stack_refine.stats
  | Partition_stats of Partition.stats
  | Sle_stats of Sle.stats

type response = {
  result : Result.t;
  rules_used : Rule.t list;  (** relevant rules actually consulted *)
  stats : run_stats;
}

(** [refine ?config ?rules index query] runs the full pipeline. [rules]
    are merged with mined rules when [config.auto_mine] holds. *)
val refine :
  ?config:config -> ?rules:Rule.t list -> Xr_index.Index.t -> string list -> response

(** [compiled_rules ?config ?rules index query] is the pruned rule list
    {!refine} would consult for [query]: mined rules (when
    [config.auto_mine] holds) merged with [rules], restricted to
    relevant left-hand sides and in-vocabulary right-hand sides.
    Running [refine ~config:{config with auto_mine = false} ~rules:r]
    with the returned [r] is byte-identical to the auto-mining run and
    skips the mining pass — the basis of compiled refine plans. *)
val compiled_rules :
  ?config:config -> ?rules:Rule.t list -> Xr_index.Index.t -> string list -> Rule.t list

(** [needs_refinement ?config index query] is Definition 3.4: does the
    query lack a meaningful SLCA? *)
val needs_refinement : ?config:config -> Xr_index.Index.t -> string list -> bool

(** [search ?config index query] plain meaningful-SLCA search of the query
    itself, no refinement. *)
val search : ?config:config -> Xr_index.Index.t -> string list -> Xr_xml.Dewey.t list

(** Outcome of the fully adaptive pipeline: repair empty queries, narrow
    over-broad ones, pass the rest through. *)
type auto_outcome =
  | Matched of Xr_xml.Dewey.t list  (** a manageable meaningful result set *)
  | Auto_refined of response  (** no meaningful result: refinement ran *)
  | Narrowed of Xr_xml.Dewey.t list * Specialize.suggestion list
      (** too many results: original set plus specializations *)

(** [auto ?config ?specialize ?rules index query] combines both
    directions of query refinement — the paper's contribution for
    empty-result queries and its future-work counterpart (specialization)
    for over-broad ones. *)
val auto :
  ?config:config ->
  ?specialize:Specialize.config ->
  ?rules:Rule.t list ->
  Xr_index.Index.t ->
  string list ->
  auto_outcome
