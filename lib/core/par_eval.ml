open Xr_xml
module Slca_engine = Xr_slca.Engine
module Meaningful = Xr_slca.Meaningful
module Parallel = Xr_slca.Parallel

(* Domain-parallel evaluation of independent candidate refined queries.

   Both entry points preserve byte-identity with the sequential
   pipeline by construction:

   - the pool workers run only the pure packed SLCA kernel (via
     {!Slca_engine.sequential_partner}, so no nested fork/join) over
     immutable packed lists; the meaningfulness filter, whose memo
     table is single-threaded, is applied afterwards on the submitting
     domain, and [Rq_list] admission stays entirely sequential;

   - {!prefetch} evaluates the superset of candidates the walk *could*
     request under the admission state at batch start (admission only
     ever tightens, so the evolving walk requests a subset), and the
     caller then replays its exact sequential walk against the
     prefetched table — same admissions, same order, rank ties still
     resolved by candidate index. *)

let none : string -> Dewey.t list option = fun _ -> None

let scope_postings ranges = Array.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges

(* Every partition's ranges are sub-ranges of the full scope lists, so a
   sub-threshold scope means every per-partition prefetch would fall
   back too: decide once per run and hand the walk the free [none]
   closure, so small queries pay nothing per partition. *)
let prefetch_enabled (c : Refine_common.t) =
  let total =
    Array.fold_left (fun acc pk -> acc + Dewey.Packed.length pk) 0 c.Refine_common.packed
  in
  if total < Parallel.threshold () then begin
    Parallel.note_fallback ();
    false
  end
  else true

let prefetch ?pool (c : Refine_common.t) ~slca ~ranges ~rqlist cands =
  (* Threshold first: it is a handful of int subtractions, while
     collecting the prefix allocates — sub-threshold partitions (the
     common case on small corpora) must pay nothing. *)
  if scope_postings ranges < Parallel.threshold () then begin
    Parallel.note_fallback ();
    none
  end
  else begin
    (* The walk-order prefix the sequential walk may evaluate: skip
       originals (handled separately by the callers) and already-admitted
       keys, stop at the first candidate the current admission state
       rejects — candidates arrive cost-sorted, so nothing admissible
       follows it. *)
    let seen = Hashtbl.create 8 in
    let rec collect acc = function
      | [] -> List.rev acc
      | (rq, key) :: rest ->
        if Refined_query.is_original rq then collect acc rest
        else if not (Rq_list.would_admit rqlist rq.Refined_query.dissimilarity) then
          List.rev acc
        else if Rq_list.mem_key rqlist key || Hashtbl.mem seen key then collect acc rest
        else begin
          Hashtbl.add seen key ();
          collect ((key, rq.Refined_query.keywords) :: acc) rest
        end
    in
    match collect [] cands with
    | [] | [ _ ] -> none (* nothing to overlap *)
    | todo ->
      let pool = match pool with Some p -> p | None -> Xr_pool.global () in
      if Xr_pool.size pool <= 1 then begin
        Parallel.note_fallback ();
        none
      end
      else begin
        let alg = Slca_engine.sequential_partner slca in
        let arr = Array.of_list todo in
        let raw = Array.make (Array.length arr) [] in
        Xr_pool.run pool
          (Array.init (Array.length arr) (fun i ->
               fun () ->
                let _, kws = arr.(i) in
                raw.(i) <-
                  Slca_engine.compute_ranges alg (Refine_common.packed_sublists c ranges kws)));
        let table = Hashtbl.create (Array.length arr) in
        Array.iteri (fun i (key, _) -> Hashtbl.replace table key raw.(i)) arr;
        fun key ->
          (* filter lazily: only consumed entries pay the memo walk *)
          Option.map (Meaningful.filter c.meaningful) (Hashtbl.find_opt table key)
      end
    end

let topk_slcas ?pool (c : Refine_common.t) ~slca keyword_sets =
  let ranges = Array.of_list (List.map (Refine_common.packed_full_lists c) keyword_sets) in
  let n = Array.length ranges in
  let sequential () = Array.map (Refine_common.meaningful_slcas_ranges c slca) ranges in
  if n < 2 then sequential ()
  else begin
    let cost =
      Array.fold_left
        (fun acc r -> List.fold_left (fun a (_, lo, hi) -> a + hi - lo) acc r)
        0 ranges
    in
    if cost < Parallel.threshold () then begin
      Parallel.note_fallback ();
      sequential ()
    end
    else begin
      let pool = match pool with Some p -> p | None -> Xr_pool.global () in
      if Xr_pool.size pool <= 1 then begin
        Parallel.note_fallback ();
        sequential ()
      end
      else begin
        let alg = Slca_engine.sequential_partner slca in
        let raw = Array.make n [] in
        Xr_pool.run pool
          (Array.init n (fun i -> fun () -> raw.(i) <- Slca_engine.compute_ranges alg ranges.(i)));
        Array.map (Meaningful.filter c.meaningful) raw
      end
    end
  end
