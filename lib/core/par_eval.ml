open Xr_xml
module Slca_engine = Xr_slca.Engine
module Meaningful = Xr_slca.Meaningful
module Parallel = Xr_slca.Parallel
module Shared_scan = Xr_slca.Shared_scan

(* Batched evaluation of independent candidate refined queries — over
   the domain pool, through shared driver scans, or both.

   All entry points preserve byte-identity with the sequential
   pipeline by construction:

   - the evaluations run only the pure packed SLCA kernels (via
     {!Slca_engine.sequential_partner} / {!Shared_scan}, so no nested
     fork/join) over immutable packed lists; the meaningfulness
     filter, whose memo table is single-threaded, is applied
     afterwards on the submitting domain, and [Rq_list] admission
     stays entirely sequential;

   - {!prefetch} evaluates the superset of candidates the walk *could*
     request under the admission state at batch start (admission only
     ever tightens, so the evolving walk requests a subset), and the
     caller then replays its exact sequential walk against the
     prefetched table — same admissions, same order, rank ties still
     resolved by candidate index;

   - candidates touching the same driver range coalesce into one
     shared pass ({!Shared_scan.run_batch}), whose per-member streams
     are the solo streams by construction. *)

let none : string -> Dewey.t list option = fun _ -> None

(* Candidate evaluations inside one partition all scope their lists to
   that partition, so the shared scans can mask the driver's full list
   against the partition root bitsliced: every nonempty range starts on
   a partition-first entry, whose first component names the root.
   [Shared_scan.run_batch] re-verifies the subtree bound before using
   it, so a caller handing non-partition ranges loses the mask, never
   correctness. *)
let derive_root (c : Refine_common.t) ranges =
  let n = min (Array.length ranges) (Array.length c.Refine_common.packed) in
  let rec find i =
    if i >= n then None
    else
      let lo, hi = ranges.(i) in
      if hi > lo then
        let pid = Dewey.Packed.first_component c.Refine_common.packed.(i) lo in
        if pid >= 0 then Some [| pid |] else None
      else find (i + 1)
  in
  find 0

let scope_postings ranges = Array.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges

(* Every partition's ranges are sub-ranges of the full scope lists, so a
   sub-threshold scope means every per-partition prefetch would fall
   back too: decide once per run and hand the walk the free [none]
   closure, so small queries pay nothing per partition. *)
let prefetch_enabled (c : Refine_common.t) =
  let total =
    Array.fold_left (fun acc pk -> acc + Dewey.Packed.length pk) 0 c.Refine_common.packed
  in
  if total < Parallel.threshold () then begin
    Parallel.note_fallback ();
    false
  end
  else true

let prefetch ?pool (c : Refine_common.t) ~slca ~ranges ~rqlist cands =
  (* Threshold first: it is a handful of int subtractions, while
     collecting the prefix allocates — sub-threshold partitions (the
     common case on small corpora) must pay nothing. *)
  if scope_postings ranges < Parallel.threshold () then begin
    Parallel.note_fallback ();
    none
  end
  else begin
    (* The walk-order prefix the sequential walk may evaluate: skip
       originals (handled separately by the callers) and already-admitted
       keys, stop at the first candidate the current admission state
       rejects — candidates arrive cost-sorted, so nothing admissible
       follows it. *)
    let seen = Hashtbl.create 8 in
    let rec collect acc = function
      | [] -> List.rev acc
      | (rq, key) :: rest ->
        if Refined_query.is_original rq then collect acc rest
        else if not (Rq_list.would_admit rqlist rq.Refined_query.dissimilarity) then
          List.rev acc
        else if Rq_list.mem_key rqlist key || Hashtbl.mem seen key then collect acc rest
        else begin
          Hashtbl.add seen key ();
          collect ((key, rq.Refined_query.keywords) :: acc) rest
        end
    in
    match collect [] cands with
    | [] | [ _ ] -> none (* nothing to overlap *)
    | todo ->
      let pool = match pool with Some p -> p | None -> Xr_pool.global () in
      let psize = Xr_pool.size pool in
      let alg = Slca_engine.sequential_partner slca in
      (* Shared passes only make sense for the scan-family kernel
         (their member automaton *is* its prune); stack-packed keeps
         the one-task-per-candidate path. On a single domain a batch
         pays off exactly when drivers coalesce — the shared decode is
         a sequential win — so with no extra domains and no sharing,
         prefetching the superset would only waste work and the walk
         evaluates on demand as before. *)
      let queries =
        if Shared_scan.enabled () && alg = Slca_engine.Scan_packed then
          Some
            (List.map (fun (_, kws) -> Refine_common.packed_sublists c ranges kws) todo)
        else None
      in
      let has_sharing =
        match queries with
        | None -> false
        | Some qs ->
          let seen = ref [] and dup = ref false in
          List.iter
            (fun lists ->
              if lists <> [] && not (List.exists (fun (_, lo, hi) -> hi <= lo) lists) then
                match Xr_slca.Scan_packed.sort_by_length lists with
                | (pk, lo, hi) :: _ ->
                  if List.exists (fun (pk', lo', hi') -> pk' == pk && lo' = lo && hi' = hi) !seen
                  then dup := true
                  else seen := (pk, lo, hi) :: !seen
                | [] -> ())
            qs;
          !dup
      in
      let shared = queries <> None && (psize > 1 || has_sharing) in
      if (not shared) && psize <= 1 then begin
        Parallel.note_fallback ();
        none
      end
      else begin
        let arr = Array.of_list todo in
        let raw =
          match queries with
          | Some qs when shared ->
            Array.of_list (Shared_scan.run_batch ~pool ?root:(derive_root c ranges) qs)
          | _ -> begin
            let raw = Array.make (Array.length arr) [] in
            Xr_pool.run pool
              (Array.init (Array.length arr) (fun i ->
                   fun () ->
                    let _, kws = arr.(i) in
                    raw.(i) <-
                      Slca_engine.compute_ranges alg
                        (Refine_common.packed_sublists c ranges kws)));
            raw
          end
        in
        let table = Hashtbl.create (Array.length arr) in
        Array.iteri (fun i (key, _) -> Hashtbl.replace table key raw.(i)) arr;
        fun key ->
          (* filter lazily: only consumed entries pay the memo walk *)
          Option.map (Meaningful.filter c.meaningful) (Hashtbl.find_opt table key)
      end
    end

let topk_slcas ?pool (c : Refine_common.t) ~slca keyword_sets =
  let ranges = Array.of_list (List.map (Refine_common.packed_full_lists c) keyword_sets) in
  let n = Array.length ranges in
  let sequential () = Array.map (Refine_common.meaningful_slcas_ranges c slca) ranges in
  if n < 2 then sequential ()
  else begin
    let cost =
      Array.fold_left
        (fun acc r -> List.fold_left (fun a (_, lo, hi) -> a + hi - lo) acc r)
        0 ranges
    in
    if cost < Parallel.threshold () then begin
      Parallel.note_fallback ();
      sequential ()
    end
    else begin
      let pool = match pool with Some p -> p | None -> Xr_pool.global () in
      if Xr_pool.size pool <= 1 then begin
        Parallel.note_fallback ();
        sequential ()
      end
      else begin
        let alg = Slca_engine.sequential_partner slca in
        let raw =
          if Shared_scan.enabled () && alg = Slca_engine.Scan_packed then
            (* top-K result sets share their full keyword lists freely
               (refined queries overlap on the surviving keywords), so
               route them through the same batch admission *)
            Array.of_list (Shared_scan.run_batch ~pool (Array.to_list ranges))
          else begin
            let raw = Array.make n [] in
            Xr_pool.run pool
              (Array.init n (fun i ->
                   fun () -> raw.(i) <- Slca_engine.compute_ranges alg ranges.(i)));
            raw
          end
        in
        Array.map (Meaningful.filter c.meaningful) raw
      end
    end
  end
