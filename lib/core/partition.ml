open Xr_xml
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

type stats = {
  partitions_visited : int;
  partitions_skipped : int;
  dp_runs : int;
  slca_runs : int;
}

let partition_roots (doc : Doc.t) =
  List.mapi (fun i _ -> [| i |]) (Tree.element_children doc.tree)

(* KS lists the query's own keywords first, so original-query availability
   is a direct range probe — no keyword-name lookups in the scan loop. *)
let q_available (c : Refine_common.t) ranges =
  let rec go i =
    i >= c.q_size
    ||
    let lo, hi = ranges.(i) in
    hi > lo && go (i + 1)
  in
  go 0

(* The DP depends only on which KS keywords are present in the partition;
   partitions sharing that signature share their candidate list, so one
   DP run serves them all. The signature is a presence bitmask — KS is
   far smaller than a word in any realistic query. *)
let signature ranges =
  let rec go j acc =
    if j >= Array.length ranges then acc
    else
      let lo, hi = ranges.(j) in
      go (j + 1) (if hi > lo then acc lor (1 lsl j) else acc)
  in
  go 0 0

(* A memoized candidate list: each candidate carries its precomputed
   keyword-set key, and [pure_rev] remembers an [Rq_list] revision at
   which walking the list had no effect (every candidate already present
   or rejected) — at that same revision the walk needs no replay. *)
type cand_set = {
  cands : (Refined_query.t * string) list;
  mutable pure_rev : int;
}

let make_candidates_for (c : Refine_common.t) ~k ~dp_runs =
  let dp_cache : (int, cand_set) Hashtbl.t = Hashtbl.create 16 in
  let cacheable = Array.length c.ks <= 62 (* bitmask must not overflow *) in
  let compute ranges =
    incr dp_runs;
    let cs =
      (* over-fetch: the beam already holds the states, and candidates
         beyond the 2K cheapest matter when the cheap ones lack
         meaningful SLCAs in this partition *)
      Optimal_rq.top_k ~config:c.dp_config ~rules:c.rules
        ~available:(Refine_common.available_in c ranges)
        ~k:(max (2 * k) c.dp_config.Optimal_rq.beam) c.query
    in
    { cands = List.map (fun rq -> (rq, Refined_query.key rq)) cs; pure_rev = -1 }
  in
  fun ranges ->
    if not cacheable then compute ranges
    else
      let key = signature ranges in
      match Hashtbl.find_opt dp_cache key with
      | Some cs -> cs
      | None ->
        let cs = compute ranges in
        Hashtbl.add dp_cache key cs;
        cs

(* Walk a partition's cost-sorted candidate list, admitting refined
   queries that witness a meaningful SLCA here (the Definition 3.4 gate).
   [Optimal_rq.top_k] sorts by dissimilarity and [Rq_list] admission is
   monotone in it, so the walk stops at the first candidate the list
   rejects — the common case once the list saturates is a single
   admission probe per partition. *)
let process_candidates ~try_original ~q_found ~rqlist ~slca_runs ~skipped ~slca_of
    ~prefetch (cset : cand_set) ranges =
  if cset.pure_rev = Rq_list.revision rqlist then
    (* the previous walk of this list at this revision touched nothing
       range-dependent, so its only effect was the skip count *)
    incr skipped
  else begin
    (* overlap the walk's independent SLCA runs on the domain pool; the
       walk below replays sequentially against the prefetched table, so
       admissions (and their order) are exactly the sequential ones *)
    let lookup = prefetch cset.cands ranges in
    let any_slca = ref false in
    let impure = ref false in
    let rec go = function
      | [] -> ()
      | (rq, key) :: rest ->
        if Refined_query.is_original rq then begin
          impure := true;
          try_original ranges;
          go rest
        end
        else if !q_found then ()
        else if not (Rq_list.would_admit rqlist rq.Refined_query.dissimilarity) then ()
        else begin
          (* candidates already validated need no further work here: their
             complete result sets are materialized once, at the end *)
          if not (Rq_list.mem_key rqlist key) then begin
            impure := true;
            incr slca_runs;
            any_slca := true;
            let slcas =
              match lookup key with
              | Some slcas -> slcas
              | None -> slca_of ranges rq.Refined_query.keywords
            in
            if slcas <> [] then ignore (Rq_list.insert rqlist rq)
          end;
          go rest
        end
    in
    go cset.cands;
    if not !any_slca then incr skipped;
    if not !impure then cset.pure_rev <- Rq_list.revision rqlist
  end

(* Packed scan: the per-list cursors gallop over the packed lists
   ({!Xr_index.Cursor.Packed}); heads are compared and the partition
   membership probed in varint-encoded form, slice ends come from a
   galloping seek to the next partition root (O(log partition) probes
   near the cursor instead of a whole-list binary search), and the
   per-partition SLCAs run on packed ranges — the boxed posting views
   are never forced. *)
let run ?(ranking = Ranking.default_config) ?(slca = Slca_engine.Scan_packed) ~k
    (c : Refine_common.t) =
  let slca = Slca_engine.packed_partner slca in
  let m = Array.length c.packed in
  let cursors = Array.map PC.make c.packed in
  let head_pos i = PC.position cursors.(i) in
  let rqlist = Rq_list.create ~capacity:(2 * k) in
  let q_found = ref false in
  let q_results = ref [] in
  let visited = ref 0 and skipped = ref 0 and dp_runs = ref 0 and slca_runs = ref 0 in
  let q_keywords = Array.to_list (Array.sub c.ks 0 c.q_size) in
  (* Root postings (depth 0) belong to no partition and sort before every
     labelled entry, so they can only sit at the very front of a list:
     skip them once and the scan below never sees depth 0 again. *)
  Array.iteri
    (fun i pk ->
      let cur = cursors.(i) in
      while (not (PC.at_end cur)) && P.depth_at pk (PC.position cur) = 0 do
        PC.advance cur
      done)
    c.packed;
  (* The scan only needs the smallest partition id among the heads — the
     first components decide that without full entry comparisons. *)
  let next_pid () =
    let best = ref max_int in
    for i = 0 to m - 1 do
      if not (PC.at_end cursors.(i)) then begin
        let p = P.first_component c.packed.(i) (head_pos i) in
        if p < !best then best := p
      end
    done;
    !best
  in
  let try_original ranges =
    (* Does the original query match meaningfully inside this partition? *)
    if q_available c ranges then begin
      incr slca_runs;
      let slcas =
        Refine_common.meaningful_slcas_ranges c slca
          (Refine_common.packed_sublists c ranges q_keywords)
      in
      if slcas <> [] then begin
        q_found := true;
        q_results := !q_results @ slcas
      end
    end
  in
  let candidates_for = make_candidates_for c ~k ~dp_runs in
  let slca_of ranges keywords =
    Refine_common.meaningful_slcas_ranges c slca
      (Refine_common.packed_sublists c ranges keywords)
  in
  let prefetch =
    if Par_eval.prefetch_enabled c then fun cands ranges ->
      Par_eval.prefetch c ~slca ~ranges ~rqlist cands
    else fun _ _ -> Par_eval.none
  in
  (* Once the original query is known to match, the remaining partitions
     only contribute more of its SLCAs; one plain engine pass over the
     unread suffix of the query's lists finishes the job without the
     per-partition bookkeeping (cursors still only move forward). A
     root-spanning SLCA cannot be fabricated from suffixes: only the
     document root sits above partitions and it is never meaningful. *)
  let finish_original () =
    let suffixes =
      List.init c.q_size (fun i -> (c.packed.(i), head_pos i, P.length c.packed.(i)))
    in
    incr slca_runs;
    q_results := !q_results @ Refine_common.meaningful_slcas_ranges c slca suffixes
  in
  let next_root = [| 0 |] in
  let rec scan () =
    let pid = next_pid () in
    if pid < max_int then
      if !q_found then finish_original ()
      else begin
        (* A keyword is present in this partition iff its cursor head lies
           under the partition root (cursors never lag behind the current
           partition), so presence costs one probe in encoded form; only
           present lists seek — a gallop to the next partition root, which
           lands just past this partition's postings. *)
        next_root.(0) <- pid + 1;
        let ranges =
          Array.mapi
            (fun j pk ->
              let cur = cursors.(j) in
              let start = PC.position cur in
              if (not (PC.at_end cur)) && P.first_component pk start = pid then begin
                PC.seek_geq_sub cur next_root 1;
                (start, PC.position cur)
              end
              else (start, start))
            c.packed
        in
        incr visited;
        (* the cost-0 candidate (the query itself) comes first: if it
           matches meaningfully here, no refinement work is needed at all *)
        if q_available c ranges then
          try_original ranges;
        if not !q_found then
          (* Definition 3.4 gate over the partition's candidates *)
          process_candidates ~try_original ~q_found ~rqlist ~slca_runs ~skipped ~slca_of
            ~prefetch (candidates_for ranges) ranges;
        scan ()
      end
  in
  scan ();
  let outcome =
    if !q_found then Result.Original !q_results
    else begin
      let pool = Rq_list.to_list rqlist in
      if pool = [] then Result.No_result
      else begin
        let scored =
          Ranking.rank ~config:ranking c.index.Xr_index.Index.stats ~original:c.query pool
        in
        let top = List.filteri (fun i _ -> i < k) scored in
        (* Materialize the complete result set of each final Top-K refined
           query with one pass over its full lists (any node other than
           the root lives in exactly one partition, so this equals the
           union of the per-partition SLCAs, with the meaningless root
           filtered out). The passes are independent — one pool task
           each, joined in rank order. *)
        let slca_sets =
          Par_eval.topk_slcas c ~slca
            (List.map (fun (s : Ranking.scored) -> s.rq.Refined_query.keywords) top)
        in
        Result.Refined
          (List.mapi
             (fun i (s : Ranking.scored) ->
               { Result.rq = s.rq; score = Some s; slcas = slca_sets.(i) })
             top)
      end
    end
  in
  ( outcome,
    {
      partitions_visited = !visited;
      partitions_skipped = !skipped;
      dp_runs = !dp_runs;
      slca_runs = !slca_runs;
    } )

(* Boxed-list reference implementation, kept for the differential suite
   and the [partition-legacy] engine selector. *)
let run_legacy ?(ranking = Ranking.default_config) ?(slca = Slca_engine.Scan_eager) ~k
    (c : Refine_common.t) =
  let engine = Slca_engine.compute slca in
  let m = Array.length c.ks in
  let lists = Array.init m (fun i -> Refine_common.legacy_list c i) in
  let from = Array.make m 0 in
  let rqlist = Rq_list.create ~capacity:(2 * k) in
  let q_found = ref false in
  let q_results = ref [] in
  let visited = ref 0 and skipped = ref 0 and dp_runs = ref 0 and slca_runs = ref 0 in
  let q_keywords = Array.to_list (Array.sub c.ks 0 c.q_size) in
  let smallest_head () =
    let best = ref None in
    for i = 0 to m - 1 do
      if from.(i) < Array.length lists.(i) then begin
        let d = lists.(i).(from.(i)).Inverted.dewey in
        match !best with
        | None -> best := Some (i, d)
        | Some (_, d') -> if Dewey.compare d d' < 0 then best := Some (i, d)
      end
    done;
    !best
  in
  let try_original ranges =
    if q_available c ranges then begin
      incr slca_runs;
      let slcas =
        Refine_common.meaningful_slcas c engine (Refine_common.sublists c ranges q_keywords)
      in
      if slcas <> [] then begin
        q_found := true;
        q_results := !q_results @ slcas
      end
    end
  in
  let candidates_for = make_candidates_for c ~k ~dp_runs in
  let slca_of ranges keywords =
    Refine_common.meaningful_slcas c engine (Refine_common.sublists c ranges keywords)
  in
  let finish_original () =
    let suffixes =
      List.init c.q_size (fun i ->
          let list = lists.(i) in
          Array.sub list from.(i) (Array.length list - from.(i)))
    in
    incr slca_runs;
    q_results := !q_results @ Refine_common.meaningful_slcas c engine suffixes
  in
  let rec scan () =
    match smallest_head () with
    | None -> ()
    | Some _ when !q_found -> finish_original ()
    | Some (i, d) ->
      if Dewey.depth d = 0 then begin
        from.(i) <- from.(i) + 1;
        scan ()
      end
      else begin
        let proot = [| d.(0) |] in
        let ranges =
          Array.mapi
            (fun j list ->
              let start = from.(j) in
              if
                start < Array.length list
                && Dewey.is_prefix proot list.(start).Inverted.dewey
              then Inverted.prefix_slice_from list start proot
              else (start, start))
            lists
        in
        Array.iteri (fun j (_, hi) -> if hi > from.(j) then from.(j) <- hi) ranges;
        incr visited;
        if q_available c ranges then
          try_original ranges;
        if not !q_found then
          process_candidates ~try_original ~q_found ~rqlist ~slca_runs ~skipped ~slca_of
            ~prefetch:(fun _ _ -> Par_eval.none)
            (candidates_for ranges) ranges;
        scan ()
      end
  in
  scan ();
  let outcome =
    if !q_found then Result.Original !q_results
    else begin
      let pool = Rq_list.to_list rqlist in
      if pool = [] then Result.No_result
      else begin
        let scored =
          Ranking.rank ~config:ranking c.index.Xr_index.Index.stats ~original:c.query pool
        in
        let top = List.filteri (fun i _ -> i < k) scored in
        Result.Refined
          (List.map
             (fun (s : Ranking.scored) ->
               let slcas =
                 Refine_common.meaningful_slcas c engine
                   (Refine_common.full_lists c s.rq.Refined_query.keywords)
               in
               { Result.rq = s.rq; score = Some s; slcas })
             top)
      end
    end
  in
  ( outcome,
    {
      partitions_visited = !visited;
      partitions_skipped = !skipped;
      dp_runs = !dp_runs;
      slca_runs = !slca_runs;
    } )
