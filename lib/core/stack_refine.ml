open Xr_xml
module Meaningful = Xr_slca.Meaningful
module P = Dewey.Packed

type stats = {
  pops : int;
  dp_runs : int;
}

type entry = {
  witness : bool array; (* over KS *)
  mutable q_slca_below : bool; (* an SLCA of the original query was reported below *)
}

(* The outcome bookkeeping shared by both scans: pop handling is
   identical, only the merge feeding it differs. [node] is lazy so the
   packed scan materializes a Dewey label only for pops that actually
   inspect it (q-SLCA candidates and refinement winners). *)
type state = {
  c : Refine_common.t;
  m : int;
  pops : int ref;
  dp_runs : int ref;
  dp_memo : (int, Refined_query.t option) Hashtbl.t;
      (* getOptimalRQ is a pure function of the witness set, and a pop
         can only witness one of 2^|KS| sets — memoizing by witness
         bitmask turns the per-pop DP into a table lookup. [dp_runs]
         counts actual DP evaluations (distinct witnessed sets). *)
  memo_vals : Refined_query.t option array;
  memo_seen : bool array;
      (* allocation-free memo rows used instead of [dp_memo] when the
         bitmask fits a small direct-indexed table *)
  q_found : bool ref;
  q_results : Dewey.t list ref;
  min_ds : int ref;
  best_rq : Refined_query.t option ref;
  best_results : Dewey.t list ref;
}

let make_state (c : Refine_common.t) =
  let m = Array.length c.ks in
  let direct = if m <= 16 then 1 lsl m else 0 in
  {
    c;
    m;
    pops = ref 0;
    dp_runs = ref 0;
    dp_memo = Hashtbl.create 16;
    memo_vals = Array.make (max 1 direct) None;
    memo_seen = Array.make (max 1 direct) false;
    q_found = ref false;
    q_results = ref [];
    min_ds = ref max_int;
    best_rq = ref None;
    best_results = ref [];
  }

let optimal_rq (st : state) (witness : bool array) =
  let c = st.c in
  let run () =
    let available k =
      let rec find i =
        if i >= st.m then false
        else if String.equal c.ks.(i) k then witness.(i)
        else find (i + 1)
      in
      find 0
    in
    incr st.dp_runs;
    Optimal_rq.optimal ~config:c.dp_config ~rules:c.rules ~available c.query
  in
  if st.m > 62 then run ()
  else begin
    let key = ref 0 in
    for i = 0 to st.m - 1 do
      if witness.(i) then key := !key lor (1 lsl i)
    done;
    let key = !key in
    if st.m <= 16 then
      if st.memo_seen.(key) then st.memo_vals.(key)
      else begin
        let rq = run () in
        st.memo_seen.(key) <- true;
        st.memo_vals.(key) <- rq;
        rq
      end
    else
      match Hashtbl.find_opt st.dp_memo key with
      | Some rq -> rq
      | None ->
        let rq = run () in
        Hashtbl.add st.dp_memo key rq;
        rq
  end

let covers_q (st : state) w =
  let rec go i = i >= st.c.q_size || (w.(i) && go (i + 1)) in
  st.c.q_size > 0 && go 0

let handle_pop (st : state) (e : entry) (node : Dewey.t Lazy.t) parent =
  let c = st.c in
  incr st.pops;
  (* Original-query SLCA check (lines 10-12 of Algorithm 1). *)
  let is_q_slca = covers_q st e.witness && not e.q_slca_below in
  if is_q_slca then begin
    let node = Lazy.force node in
    if Meaningful.is_meaningful_dewey c.meaningful node then begin
      st.q_found := true;
      st.q_results := node :: !(st.q_results)
    end;
    parent.q_slca_below <- true
  end;
  (* Refinement exploration (lines 13-19). *)
  if (not !(st.q_found)) && (not is_q_slca) && Array.exists Fun.id e.witness then begin
    match optimal_rq st e.witness with
    | None -> ()
    | Some rq when Refined_query.is_original rq ->
      (* the query itself is fully witnessed here; handled by the
         meaningful-SLCA branch, never reported as a refinement *)
      ()
    | Some rq ->
      let ds = rq.Refined_query.dissimilarity in
      if ds < !(st.min_ds) then begin
        let node = Lazy.force node in
        if Meaningful.is_meaningful_dewey c.meaningful node then begin
          st.min_ds := ds;
          st.best_rq := Some rq;
          st.best_results := [ node ]
        end
      end
      else if ds = !(st.min_ds) then begin
        match !(st.best_rq) with
        (* the memo hands back one object per witness set, so physical
           equality settles the common case without rebuilding keys *)
        | Some best
          when best == rq
               || String.equal (Refined_query.key best) (Refined_query.key rq) ->
          let node = Lazy.force node in
          (* Results are reported in postorder, so a node's already-reported
             descendants sit contiguously at the head of the list: probing
             the head alone decides the keep-only-lowest-ancestors dedup. *)
          let covered =
            match !(st.best_results) with
            | r :: _ -> Dewey.is_prefix node r
            | [] -> false
          in
          if (not covered) && Meaningful.is_meaningful_dewey c.meaningful node then
            st.best_results := node :: !(st.best_results)
        | Some _ | None -> ()
      end
  end;
  (* Witness propagation to the parent. *)
  let w = e.witness and pw = parent.witness in
  for i = 0 to st.m - 1 do
    if w.(i) then pw.(i) <- true
  done;
  if e.q_slca_below then parent.q_slca_below <- true

let finish ~ranking (st : state) =
  let c = st.c in
  let outcome =
    if !(st.q_found) then Result.Original (List.rev !(st.q_results))
    else
      match !(st.best_rq) with
      | None -> Result.No_result
      | Some rq ->
        let score =
          Ranking.score ~config:ranking c.index.Xr_index.Index.stats ~original:c.query rq
        in
        Result.Refined
          [ { Result.rq; score = Some score; slcas = List.rev !(st.best_results) } ]
  in
  (outcome, { pops = !(st.pops); dp_runs = !(st.dp_runs) })

(* Packed merged scan. Each list's current head is decoded once into a
   per-list buffer when the cursor advances, so the multiway merge
   compares plain ints; the stack is a preallocated ladder of entries
   indexed by depth (rows are cleared on pop, so "pushing" allocates
   nothing); the path lives in one reused buffer. The steady-state loop
   materializes nothing — no posting array, no label, no stack node. *)
let run ?(ranking = Ranking.default_config) (c : Refine_common.t) =
  let st = make_state c in
  let m = st.m in
  let lens = Array.map P.length c.packed in
  let maxd = max 1 (Array.fold_left (fun a pk -> max a (P.max_depth pk)) 1 c.packed) in
  let pos = Array.make m 0 in
  (* decoded cursor heads; head_len.(i) < 0 marks an exhausted list *)
  let heads = Array.init m (fun _ -> Array.make maxd 0) in
  let head_len = Array.make m (-1) in
  let fetch i =
    head_len.(i) <-
      (if pos.(i) < lens.(i) then P.blit_entry c.packed.(i) pos.(i) heads.(i) else -1)
  in
  for i = 0 to m - 1 do
    fetch i
  done;
  let path = Array.make maxd 0 in
  let path_len = ref 0 in
  (* stack ladder: entries.(d) is the entry holding path component d - 1,
     row 0 the root sentinel; rows above path_len are all-clear *)
  let entries =
    Array.init (maxd + 1) (fun _ -> { witness = Array.make m false; q_slca_below = false })
  in
  let pop_to target =
    while !path_len > target do
      let len = !path_len in
      let e = entries.(len) in
      handle_pop st e (lazy (Array.sub path 0 len)) entries.(len - 1);
      Array.fill e.witness 0 m false;
      e.q_slca_below <- false;
      path_len := len - 1
    done
  in
  (* Dewey order on the decoded heads: ancestors before descendants. *)
  let head_lt i j =
    let a = heads.(i) and b = heads.(j) in
    let la = head_len.(i) and lb = head_len.(j) in
    let lim = if la < lb then la else lb in
    let rec go p =
      if p >= lim then la < lb
      else if a.(p) <> b.(p) then a.(p) < b.(p)
      else go (p + 1)
    in
    go 0
  in
  let smallest () =
    let best = ref (-1) in
    for i = 0 to m - 1 do
      if head_len.(i) >= 0 then
        if !best < 0 then best := i else if head_lt i !best then best := i
    done;
    !best
  in
  let rec loop () =
    let i = smallest () in
    if i >= 0 then begin
      let head = heads.(i) in
      let d = head_len.(i) in
      let lim = min d !path_len in
      let lcp = ref 0 in
      while !lcp < lim && head.(!lcp) = path.(!lcp) do
        incr lcp
      done;
      pop_to !lcp;
      for j = !lcp to d - 1 do
        path.(j) <- head.(j)
      done;
      path_len := d;
      entries.(d).witness.(i) <- true;
      (* consume the head only now — [fetch] reuses its buffer *)
      pos.(i) <- pos.(i) + 1;
      fetch i;
      loop ()
    end
  in
  loop ();
  pop_to 0;
  (* The root sentinel: the root is never a meaningful SLCA (excluded from
     the search-for candidates), so only its bookkeeping remains. *)
  finish ~ranking st

(* Boxed-list reference implementation (the pre-packed scan), kept for the
   differential suite and the [stack-refine-legacy] engine selector. *)
let run_legacy ?(ranking = Ranking.default_config) (c : Refine_common.t) =
  let st = make_state c in
  let m = st.m in
  let pos = Array.make m 0 in
  let stack = ref [ { witness = Array.make m false; q_slca_below = false } ] in
  let path = ref [||] in
  let pop_to target_len =
    while Array.length !path > target_len do
      match !stack with
      | e :: (parent :: _ as rest) ->
        handle_pop st e (lazy !path) parent;
        stack := rest;
        path := Array.sub !path 0 (Array.length !path - 1)
      | _ -> assert false
    done
  in
  let smallest () =
    let best = ref None in
    for i = 0 to m - 1 do
      let list = Refine_common.legacy_list c i in
      if pos.(i) < Array.length list then begin
        let d = list.(pos.(i)).Xr_index.Inverted.dewey in
        match !best with
        | None -> best := Some (i, d)
        | Some (_, d') -> if Dewey.compare d d' < 0 then best := Some (i, d)
      end
    done;
    !best
  in
  let rec loop () =
    match smallest () with
    | None -> ()
    | Some (i, dewey) ->
      pos.(i) <- pos.(i) + 1;
      let lcp = Dewey.common_prefix_len dewey !path in
      pop_to lcp;
      for j = lcp to Array.length dewey - 1 do
        stack := { witness = Array.make m false; q_slca_below = false } :: !stack;
        path := Dewey.child !path dewey.(j)
      done;
      (match !stack with
      | top :: _ -> top.witness.(i) <- true
      | [] -> assert false);
      loop ()
  in
  loop ();
  pop_to 0;
  finish ~ranking st
