module M = Map.Make (struct
  type t = int * string (* dissimilarity, keyword-set key *)

  let compare (d1, k1) (d2, k2) =
    match Int.compare d1 d2 with 0 -> String.compare k1 k2 | c -> c
end)

type t = {
  capacity : int;
  mutable by_rank : Refined_query.t M.t;
  by_key : (string, int) Hashtbl.t; (* keyword-set key -> dissimilarity *)
  mutable revision : int; (* bumped on every mutation *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Rq_list.create: capacity must be >= 1";
  { capacity; by_rank = M.empty; by_key = Hashtbl.create 16; revision = 0 }

let revision t = t.revision

let length t = Hashtbl.length t.by_key

let worst t = M.max_binding_opt t.by_rank

let max_dissimilarity t =
  if length t < t.capacity then None
  else match worst t with Some ((d, _), _) -> Some d | None -> None

let would_admit t ds =
  match max_dissimilarity t with None -> true | Some m -> ds < m

let mem_key t key = Hashtbl.mem t.by_key key

let mem t (rq : Refined_query.t) = mem_key t (Refined_query.key rq)

let insert t (rq : Refined_query.t) =
  let key = Refined_query.key rq in
  let ds = rq.dissimilarity in
  match Hashtbl.find_opt t.by_key key with
  | Some old when old <= ds -> true
  | Some old ->
    t.by_rank <- M.add (ds, key) rq (M.remove (old, key) t.by_rank);
    Hashtbl.replace t.by_key key ds;
    t.revision <- t.revision + 1;
    true
  | None ->
    if not (would_admit t ds) then false
    else begin
      if length t >= t.capacity then begin
        match worst t with
        | Some ((wd, wk), _) ->
          t.by_rank <- M.remove (wd, wk) t.by_rank;
          Hashtbl.remove t.by_key wk
        | None -> ()
      end;
      t.by_rank <- M.add (ds, key) rq t.by_rank;
      Hashtbl.replace t.by_key key ds;
      t.revision <- t.revision + 1;
      true
    end

let to_list t = List.map snd (M.bindings t.by_rank)
