open Xr_xml
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Meaningful = Xr_slca.Meaningful
module Slca_engine = Xr_slca.Engine

type t = {
  index : Index.t;
  query : string list;
  rules : Ruleset.t;
  ks : string array;
  packed : Dewey.Packed.t array;
  lists : Inverted.posting array Lazy.t array;
  q_size : int;
  meaningful : Meaningful.t;
  dp_config : Optimal_rq.config;
}

let make ?(dp_config = Optimal_rq.default_config) ?search_for (index : Index.t) rules query =
  let query =
    List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
  in
  (* distinct query keywords, order of first occurrence *)
  let q_distinct =
    List.fold_left (fun acc k -> if List.mem k acc then acc else k :: acc) [] query
    |> List.rev
  in
  let doc = index.Index.doc in
  let in_doc k = Doc.keyword_id doc k <> None in
  let rules =
    Ruleset.of_rules
      (List.filter
         (fun (r : Rule.t) -> List.for_all in_doc r.rhs)
         (Ruleset.to_list (Ruleset.relevant rules query)))
  in
  let new_kws = Ruleset.new_keywords rules query in
  let ks = Array.of_list (q_distinct @ new_kws) in
  let ids = Array.map (fun k -> Doc.keyword_id doc k) ks in
  (* The packed lists are shared with the index — building [t] copies
     nothing; the boxed views exist only behind the lazy cells below and
     stay unforced on the packed algorithm paths. *)
  let packed =
    Array.map
      (function
        | Some kw -> (Inverted.packed_list index.Index.inverted kw).Inverted.labels
        | None -> Dewey.Packed.empty)
      ids
  in
  let lists =
    Array.map
      (function
        | Some kw -> lazy (Inverted.list index.Index.inverted kw)
        | None -> lazy [||])
      ids
  in
  let q_ids = List.filter_map (fun k -> Doc.keyword_id doc k) q_distinct in
  (* If every original keyword is out of vocabulary, the search-for
     inference has no statistics to work with; fall back to the keywords
     the relevant rules can generate (the refined queries will be built
     from exactly those). *)
  let q_ids =
    if q_ids <> [] then q_ids else List.filter_map (fun k -> Doc.keyword_id doc k) new_kws
  in
  let meaningful = Meaningful.make ?config:search_for index.Index.stats q_ids in
  { index; query; rules; ks; packed; lists; q_size = List.length q_distinct; meaningful; dp_config }

let legacy_list t i = Lazy.force t.lists.(i)

let list_length t i = Dewey.Packed.length t.packed.(i)

let keyword_length t k =
  let rec find i =
    if i >= Array.length t.ks then 0
    else if String.equal t.ks.(i) k then Dewey.Packed.length t.packed.(i)
    else find (i + 1)
  in
  find 0

let slices t dewey ~from =
  Array.mapi (fun i _ -> Inverted.prefix_slice_from (legacy_list t i) from.(i) dewey) t.lists

let packed_slices t dewey ~from =
  Array.mapi (fun i pk -> Dewey.Packed.prefix_slice pk ~lo:from.(i) dewey) t.packed

let available_in t ranges k =
  let rec find i =
    if i >= Array.length t.ks then false
    else if String.equal t.ks.(i) k then
      let lo, hi = ranges.(i) in
      hi > lo
    else find (i + 1)
  in
  find 0

let index_of t k =
  let rec find i =
    if i >= Array.length t.ks then None
    else if String.equal t.ks.(i) k then Some i
    else find (i + 1)
  in
  find 0

let sublists t ranges keywords =
  List.map
    (fun k ->
      match index_of t k with
      | Some i ->
        let lo, hi = ranges.(i) in
        Array.sub (legacy_list t i) lo (hi - lo)
      | None -> [||])
    keywords

let packed_sublists t ranges keywords =
  List.map
    (fun k ->
      match index_of t k with
      | Some i ->
        let lo, hi = ranges.(i) in
        (t.packed.(i), lo, hi)
      | None -> (Dewey.Packed.empty, 0, 0))
    keywords

let full_lists t keywords =
  List.map
    (fun k -> match index_of t k with Some i -> legacy_list t i | None -> [||])
    keywords

let packed_full_lists t keywords =
  List.map
    (fun k ->
      match index_of t k with
      | Some i -> (t.packed.(i), 0, Dewey.Packed.length t.packed.(i))
      | None -> (Dewey.Packed.empty, 0, 0))
    keywords

let meaningful_slcas t engine lists = Meaningful.filter t.meaningful (engine lists)

let meaningful_slcas_ranges t alg ranges =
  Meaningful.filter t.meaningful (Slca_engine.compute_ranges alg ranges)
