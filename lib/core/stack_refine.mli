(** Algorithm 1: stack-based query refinement.

    Extends the XKSearch stack algorithm: the merged document-order stream
    of all [KS] inverted lists (original keywords plus every keyword a
    relevant rule can introduce) drives a stack whose entries carry
    witness flags over [KS]. When a popped entry witnesses the whole
    original query and is a meaningful SLCA, refinement is cancelled and
    the query's own results are collected. Otherwise [getOptimalRQ] runs
    on the popped entry's witness set, and the cheapest refined query
    whose witnessing node is meaningful is retained together with its SLCA
    results — everything within one scan of the merged lists
    (Theorem 1). *)

type stats = {
  pops : int;
  dp_runs : int;
}

(** [run setup] drives the merged scan directly on the packed inverted
    lists: cursor heads are merged in varint-encoded form and only the
    winning head of each step is decoded, into a reused scratch buffer —
    no posting array is ever materialized. *)
val run :
  ?ranking:Ranking.config ->
  Refine_common.t ->
  Result.t * stats

(** [run_legacy setup] is the boxed-posting-array reference
    implementation; same outcome and statistics as {!run} (the
    differential suite asserts it). *)
val run_legacy :
  ?ranking:Ranking.config ->
  Refine_common.t ->
  Result.t * stats
