open Xr_xml
module Stats = Xr_index.Stats
module Search_for = Xr_slca.Search_for

type variant = {
  use_g1 : bool;
  use_g2 : bool;
  use_g3 : bool;
  use_g4 : bool;
}

let rs0 = { use_g1 = true; use_g2 = true; use_g3 = true; use_g4 = true }

let ablate = function
  | 1 -> { rs0 with use_g1 = false }
  | 2 -> { rs0 with use_g2 = false }
  | 3 -> { rs0 with use_g3 = false }
  | 4 -> { rs0 with use_g4 = false }
  | i -> invalid_arg (Printf.sprintf "Ranking.ablate: no guideline %d" i)

type config = {
  alpha : float;
  beta : float;
  decay : float;
  variant : variant;
  search_for : Search_for.config;
}

let default_config =
  {
    alpha = 1.;
    beta = 1.;
    decay = 0.8;
    variant = rs0;
    search_for = Search_for.default_config;
  }

type scored = {
  rq : Refined_query.t;
  similarity : float;
  dependence : float;
  rank : float;
}

let keyword_ids doc keywords = List.map (fun k -> (k, Doc.keyword_id doc k)) keywords

(* Formula 2: Imp(RQ,T) = sum_k tf(k,T) / G_T *)
let importance stats path rq_ids =
  let g = float_of_int (max 1 (Stats.distinct_keywords stats path)) in
  List.fold_left
    (fun acc (_, id) ->
      match id with
      | None -> acc
      | Some kw -> acc +. (float_of_int (Stats.tf stats ~path ~kw) /. g))
    0. rq_ids

(* Guideline 2 weight of the keywords touched by the refinement.

   The paper's printed Formula 4 multiplies the similarity by
   [ln(N_T/(1+f))] summed over all of RQ (triangle) Q. Applied to deleted
   keywords that *rises* with their discriminative power — the opposite
   of what Guideline 2 and Example 2 prescribe ("the more discriminative
   the deleted keyword, the lower the rank"). We split the delta:
   - a {e deleted} keyword contributes its normalized commonness
     [ln(1+f_ki^T) / ln(1+N_T)] in [0,1] (deleting a generic term is
     cheap, deleting a discriminative one drags the score down), and a
     deleted keyword absent from the whole document — pure noise whose
     removal is forced — contributes the neutral 1;
   - a {e generated} keyword contributes the paper's IDF-style
     [ln(N_T/(1+f_ki^T))]: substituting in a discriminative keyword is
     exactly what a good correction does. *)
let delta_importance stats path ~deleted_ids ~generated_ids =
  let n_t = float_of_int (max 1 (Stats.node_count stats path)) in
  let denom = log (1. +. n_t) in
  let commonness id =
    match id with
    | None -> 1. (* noise term: its removal is forced and costs nothing *)
    | Some kw ->
      let f = float_of_int (Stats.df stats ~path ~kw) in
      if denom > 0. then log (1. +. f) /. denom else 0.
  in
  let idf id =
    let f = match id with None -> 0 | Some kw -> Stats.df stats ~path ~kw in
    if denom > 0. then max 0. (log (n_t /. (1. +. float_of_int f))) /. denom else 0.
  in
  let weights =
    List.map (fun (_, id) -> commonness id) deleted_ids
    @ List.map (fun (_, id) -> 1. +. idf id) generated_ids
  in
  (* Mean, not sum: a refinement should not score higher merely by
     touching more keywords. Deleted keywords weigh in [0,1] (generic
     cheap, discriminative costly — Guideline 2); generated keywords in
     [1,2] (a discriminative replacement is a strong correction). *)
  match weights with
  | [] -> 1.
  | _ -> List.fold_left ( +. ) 0. weights /. float_of_int (List.length weights)

(* Formulas 7-8: Dep(RQ,Q|T) *)
let dependence_at stats path rq_ids =
  let ids = List.filter_map snd rq_ids in
  match ids with
  | [] | [ _ ] -> 0.
  | _ ->
    let total = ref 0. in
    List.iter
      (fun k ->
        List.iter
          (fun ki ->
            if ki <> k then begin
              let fki = Stats.df stats ~path ~kw:ki in
              if fki > 0 then
                let both = Stats.cooccur stats ~path ki k in
                total := !total +. (float_of_int both /. float_of_int fki)
            end)
          ids)
      ids;
    !total /. float_of_int (List.length ids)

let score ?(config = default_config) stats ~original rq =
  let doc = Stats.doc stats in
  let original = List.map Token.normalize original in
  let q_ids = List.filter_map (fun k -> Doc.keyword_id doc k) original in
  let candidates = Search_for.infer ~config:config.search_for stats q_ids in
  let candidates =
    if config.variant.use_g3 then candidates
    else match candidates with [] -> [] | best :: _ -> [ best ]
  in
  let rq_ids = keyword_ids doc rq.Refined_query.keywords in
  let deleted_ids = keyword_ids doc (Refined_query.deleted rq) in
  let generated_ids = keyword_ids doc (Refined_query.generated rq) in
  let similarity_no_decay =
    List.fold_left
      (fun acc (path, conf) ->
        let g1 = if config.variant.use_g1 then importance stats path rq_ids else 1. in
        let g2 =
          if config.variant.use_g2 then delta_importance stats path ~deleted_ids ~generated_ids
          else 1.
        in
        let weight = if config.variant.use_g3 then conf else 1. in
        acc +. (weight *. g1 *. g2))
      0. candidates
  in
  let decay =
    if config.variant.use_g4 then config.decay ** float_of_int rq.Refined_query.dissimilarity
    else 1.
  in
  let similarity = decay *. similarity_no_decay in
  let dependence =
    List.fold_left
      (fun acc (path, conf) ->
        let weight = if config.variant.use_g3 then conf else 1. in
        acc +. (weight *. dependence_at stats path rq_ids))
      0. candidates
  in
  let rank = (config.alpha *. similarity) +. (config.beta *. dependence) in
  { rq; similarity; dependence; rank }

let explain ?(config = default_config) stats ~original rq =
  let doc = Stats.doc stats in
  let original = List.map Token.normalize original in
  let q_ids = List.filter_map (fun k -> Doc.keyword_id doc k) original in
  let candidates = Search_for.infer ~config:config.search_for stats q_ids in
  let rq_ids = keyword_ids doc rq.Refined_query.keywords in
  let deleted_ids = keyword_ids doc (Refined_query.deleted rq) in
  let generated_ids = keyword_ids doc (Refined_query.generated rq) in
  let b = Buffer.create 256 in
  let scored = score ~config stats ~original rq in
  Buffer.add_string b
    (Printf.sprintf "%s\n  dissimilarity %d, decay %.2f^%d = %.3f\n"
       (Refined_query.to_string rq) rq.Refined_query.dissimilarity config.decay
       rq.Refined_query.dissimilarity
       (config.decay ** float_of_int rq.Refined_query.dissimilarity));
  List.iter
    (fun (path, conf) ->
      Buffer.add_string b
        (Printf.sprintf
           "  search-for %s (confidence %.3f): importance %.3f, delta weight %.3f, dependence %.3f\n"
           (Doc.path_string doc path) conf (importance stats path rq_ids)
           (delta_importance stats path ~deleted_ids ~generated_ids)
           (dependence_at stats path rq_ids)))
    candidates;
  (match Refined_query.operations rq with
  | [] -> ()
  | ops -> Buffer.add_string b (Printf.sprintf "  operations: %s\n" (String.concat "; " ops)));
  Buffer.add_string b
    (Printf.sprintf "  similarity %.4f * alpha %.1f + dependence %.4f * beta %.1f = rank %.4f"
       scored.similarity config.alpha scored.dependence config.beta scored.rank);
  Buffer.contents b

let rank ?config stats ~original rqs =
  Xr_obs.Tracing.with_span "refine.rank" (fun () ->
      let scored = List.map (score ?config stats ~original) rqs in
      List.sort
        (fun a b ->
          match Float.compare b.rank a.rank with
          | 0 -> Refined_query.compare a.rq b.rq
          | c -> c)
        scored)
