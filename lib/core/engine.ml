open Xr_xml
module Index = Xr_index.Index
module Slca_engine = Xr_slca.Engine
module Meaningful = Xr_slca.Meaningful

type algorithm =
  | Stack_refine
  | Partition
  | Short_list_eager
  | Stack_refine_legacy
  | Partition_legacy
  | Sle_legacy

let algorithm_name = function
  | Stack_refine -> "stack-refine"
  | Partition -> "partition"
  | Short_list_eager -> "sle"
  | Stack_refine_legacy -> "stack-refine-legacy"
  | Partition_legacy -> "partition-legacy"
  | Sle_legacy -> "sle-legacy"

let algorithm_of_name = function
  | "stack-refine" | "stack" -> Some Stack_refine
  | "partition" -> Some Partition
  | "sle" | "short-list-eager" -> Some Short_list_eager
  | "stack-refine-legacy" | "stack-legacy" -> Some Stack_refine_legacy
  | "partition-legacy" -> Some Partition_legacy
  | "sle-legacy" | "short-list-eager-legacy" -> Some Sle_legacy
  | _ -> None

type config = {
  k : int;
  algorithm : algorithm;
  slca : Slca_engine.algorithm;
  ranking : Ranking.config;
  dp : Optimal_rq.config;
  search_for : Xr_slca.Search_for.config;
  auto_mine : bool;
  rank_results : bool;
  mine : Ruleset.mine_config;
  thesaurus : Xr_text.Thesaurus.t option;
}

let default_config =
  {
    k = 3;
    algorithm = Partition;
    slca = Slca_engine.Scan_parallel;
    ranking = Ranking.default_config;
    dp = Optimal_rq.default_config;
    search_for = Xr_slca.Search_for.default_config;
    auto_mine = true;
    rank_results = false;
    mine = Ruleset.default_mine_config;
    thesaurus = None;
  }

type run_stats =
  | Stack_stats of Stack_refine.stats
  | Partition_stats of Partition.stats
  | Sle_stats of Sle.stats

type response = {
  result : Result.t;
  rules_used : Rule.t list;
  stats : run_stats;
}

let build_rules config (index : Index.t) rules query =
  let provided = Ruleset.of_rules rules in
  if not config.auto_mine then provided
  else begin
    let thesaurus =
      match config.thesaurus with Some t -> t | None -> Xr_text.Thesaurus.default ()
    in
    let mined = Ruleset.mine ~config:config.mine ~thesaurus index.Index.doc query in
    List.fold_left Ruleset.add mined rules
  end

(* The rule list [refine] would actually consult for [query], fully
   pruned: mined rules (when [auto_mine] is set) merged with [rules],
   restricted to relevant left-hand sides and in-vocabulary right-hand
   sides — exactly the filters {!Refine_common.make} applies. Both
   filters are idempotent and [Ruleset.of_rules]/[to_list] round-trip
   content and order, so feeding the result back through
   [refine ~config:{config with auto_mine = false} ~rules] reproduces
   the auto-mining run byte for byte while skipping the mining pass —
   the contract the plan cache relies on. *)
let compiled_rules ?(config = default_config) ?(rules = []) (index : Index.t) query =
  let ruleset = build_rules config index rules query in
  let nq = List.filter (fun k -> String.length k > 0) (List.map Token.normalize query) in
  let doc = index.Index.doc in
  let in_doc k = Doc.keyword_id doc k <> None in
  List.filter
    (fun (r : Rule.t) -> List.for_all in_doc r.rhs)
    (Ruleset.to_list (Ruleset.relevant ruleset nq))

let setup config rules index query =
  let ruleset = build_rules config index rules query in
  Refine_common.make ~dp_config:config.dp ~search_for:config.search_for index ruleset query

(* Order result lists by XML TF*IDF relevance when configured. *)
let rerank_result config (index : Index.t) result =
  if not config.rank_results then result
  else begin
    let doc = index.Index.doc in
    let rank_for keywords slcas =
      let ids = List.filter_map (Doc.keyword_id doc) keywords in
      List.map fst (Xr_slca.Result_rank.rank index.Index.stats ~query:ids slcas)
    in
    match result with
    | Result.No_result -> result
    | Result.Original slcas -> Result.Original slcas
    | Result.Refined matches ->
      Result.Refined
        (List.map
           (fun (m : Result.rq_match) ->
             { m with Result.slcas = rank_for m.Result.rq.Refined_query.keywords m.Result.slcas })
           matches)
  end

let refine ?(config = default_config) ?(rules = []) index query =
  let c = setup config rules index query in
  let ranking = { config.ranking with search_for = config.search_for } in
  let result, stats =
    match config.algorithm with
    | Stack_refine ->
      let r, s = Stack_refine.run ~ranking c in
      (r, Stack_stats s)
    | Partition ->
      let r, s = Partition.run ~ranking ~slca:config.slca ~k:config.k c in
      (r, Partition_stats s)
    | Short_list_eager ->
      let r, s = Sle.run ~ranking ~slca:config.slca ~k:config.k c in
      (r, Sle_stats s)
    | Stack_refine_legacy ->
      let r, s = Stack_refine.run_legacy ~ranking c in
      (r, Stack_stats s)
    | Partition_legacy ->
      let r, s = Partition.run_legacy ~ranking ~slca:config.slca ~k:config.k c in
      (r, Partition_stats s)
    | Sle_legacy ->
      let r, s = Sle.run_legacy ~ranking ~slca:config.slca ~k:config.k c in
      (r, Sle_stats s)
  in
  let result =
    match result with
    | Result.Original slcas when config.rank_results ->
      let ids = List.filter_map (Doc.keyword_id index.Index.doc) c.Refine_common.query in
      Result.Original
        (List.map fst (Xr_slca.Result_rank.rank index.Index.stats ~query:ids slcas))
    | other -> rerank_result config index other
  in
  { result; rules_used = Ruleset.to_list c.rules; stats }

let search ?(config = default_config) (index : Index.t) query =
  let doc = index.Index.doc in
  (* Query interpretation — normalization, vocabulary resolution, and
     the meaningfulness statistics — is the [parse] stage of a trace;
     the list scan itself reports as [slca.scan]. *)
  let prep =
    Xr_obs.Tracing.with_span "parse" (fun () ->
        let keywords =
          List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
          |> List.sort_uniq String.compare
        in
        let rec resolve acc = function
          | [] -> Some (List.rev acc)
          | k :: rest -> (
            match Doc.keyword_id doc k with
            | Some kw -> resolve (kw :: acc) rest
            | None -> None)
        in
        match resolve [] keywords with
        | None -> None
        | Some ids ->
          if
            List.exists
              (fun kw -> Xr_index.Inverted.length index.Index.inverted kw = 0)
              ids
          then None
          else Some (ids, Meaningful.make ~config:config.search_for index.Index.stats ids))
  in
  match prep with
  | None -> []
  | Some (ids, meaningful) ->
    (* [query_ids] keeps packed engines on the index's packed lists —
       no posting materialization on the hot search path. *)
    let slcas = Slca_engine.query_ids config.slca index ids in
    let filtered =
      Xr_obs.Tracing.with_span "slca.filter" (fun () -> Meaningful.filter meaningful slcas)
    in
    if Xr_obs.Analyze.active () then begin
      let postings =
        List.fold_left
          (fun acc kw -> acc + Xr_index.Inverted.length index.Index.inverted kw)
          0 ids
      in
      Xr_obs.Analyze.note_stage ~name:"slca.scan" ~input:postings
        ~output:(List.length slcas);
      Xr_obs.Analyze.note_stage ~name:"slca.filter" ~input:(List.length slcas)
        ~output:(List.length filtered)
    end;
    filtered

let needs_refinement ?config index query = search ?config index query = []

type auto_outcome =
  | Matched of Dewey.t list
  | Auto_refined of response
  | Narrowed of Dewey.t list * Specialize.suggestion list

let auto ?(config = default_config) ?(specialize = Specialize.default_config) ?rules index
    query =
  let specialize = { specialize with slca = config.slca; search_for = config.search_for } in
  match search ~config index query with
  | [] -> Auto_refined (refine ~config ?rules index query)
  | results when List.length results > specialize.Specialize.max_results ->
    Narrowed (results, Specialize.suggest ~config:specialize index query)
  | results -> Matched results
