(** Binary codecs for index persistence: little-endian varints and
    length-prefixed composites over [Buffer]/[string]. *)

type reader = { src : string; mutable off : int }

val reader : ?off:int -> string -> reader

(** [at_end r] is true when the reader has consumed all bytes. *)
val at_end : reader -> bool

(** Unsigned LEB128 varint. *)
val write_varint : Buffer.t -> int -> unit

val read_varint : reader -> int

(** Signed integers via zig-zag + varint. *)
val write_int : Buffer.t -> int -> unit

val read_int : reader -> int

(** Length-prefixed string. *)
val write_string : Buffer.t -> string -> unit

val read_string : reader -> string

(** Length-prefixed int array (e.g. a Dewey label). *)
val write_int_array : Buffer.t -> int array -> unit

val read_int_array : reader -> int array

(** Length-prefixed ascending int array stored as varint deltas of
    consecutive elements (e.g. a packed list's offsets table, which is
    monotone by construction, so every delta is a small varint).
    @raise Invalid_argument if the array descends or starts negative. *)
val write_delta_array : Buffer.t -> int array -> unit

val read_delta_array : reader -> int array

(** Length-prefixed list with an element codec. *)
val write_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

val read_list : (reader -> 'a) -> reader -> 'a list

(** [encode f v] runs a writer into a fresh string. *)
val encode : (Buffer.t -> 'a -> unit) -> 'a -> string

(** [decode f s] reads a value from a full string.
    @raise Failure if bytes remain or the string is truncated. *)
val decode : (reader -> 'a) -> string -> 'a
