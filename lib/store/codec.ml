type reader = { src : string; mutable off : int }

let reader ?(off = 0) src = { src; off }

let at_end r = r.off >= String.length r.src

let byte r =
  if r.off >= String.length r.src then failwith "Codec: truncated input";
  let b = Char.code r.src.[r.off] in
  r.off <- r.off + 1;
  b

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_varint r =
  let rec go shift acc =
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let write_int buf n =
  (* zig-zag *)
  let z = (n lsl 1) lxor (n asr (Sys.int_size - 1)) in
  write_varint buf (z land max_int)

let read_int r =
  let z = read_varint r in
  (z lsr 1) lxor (-(z land 1))

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_varint r in
  if r.off + n > String.length r.src then failwith "Codec: truncated string";
  let s = String.sub r.src r.off n in
  r.off <- r.off + n;
  s

let write_int_array buf a =
  write_varint buf (Array.length a);
  Array.iter (write_int buf) a

let read_int_array r =
  let n = read_varint r in
  Array.init n (fun _ -> read_int r)

let write_delta_array buf a =
  write_varint buf (Array.length a);
  let prev = ref 0 in
  Array.iter
    (fun v ->
      if v < !prev then invalid_arg "Codec.write_delta_array: not ascending";
      write_varint buf (v - !prev);
      prev := v)
    a

let read_delta_array r =
  let n = read_varint r in
  let prev = ref 0 in
  Array.init n (fun _ ->
      let v = !prev + read_varint r in
      prev := v;
      v)

let write_list f buf l =
  write_varint buf (List.length l);
  List.iter (f buf) l

let read_list f r =
  let n = read_varint r in
  List.init n (fun _ -> f r)

let encode f v =
  let buf = Buffer.create 64 in
  f buf v;
  Buffer.contents buf

let decode f s =
  let r = reader s in
  let v = f r in
  if not (at_end r) then failwith "Codec: trailing bytes";
  v
