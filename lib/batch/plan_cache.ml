type entry =
  | Search of Plan.search
  | Refine of Plan.refine

let events_fam =
  Xr_obs.Registry.Counter.family ~name:"xr_plan_cache_events_total"
    ~help:"Compiled-plan cache activity" ~label_names:[ "event" ] ()

let hits_h = Xr_obs.Registry.Counter.handle events_fam [ "hit" ]

let misses_h = Xr_obs.Registry.Counter.handle events_fam [ "miss" ]

let evictions_h = Xr_obs.Registry.Counter.handle events_fam [ "eviction" ]

let hits () = Xr_obs.Registry.Counter.value hits_h

let misses () = Xr_obs.Registry.Counter.value misses_h

let evictions () = Xr_obs.Registry.Counter.value evictions_h

type shard = {
  m : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t; (* FIFO eviction: generation-keyed entries age out *)
}

type t = { shards : shard array; shard_capacity : int }

let rec pow2_geq n acc = if acc >= n then acc else pow2_geq n (acc * 2)

let create ?(shards = 8) ~capacity () =
  let n = pow2_geq (max 1 shards) 1 in
  let shard_capacity = max 1 (capacity / n) in
  {
    shards =
      Array.init n (fun _ ->
          { m = Mutex.create (); tbl = Hashtbl.create 16; order = Queue.create () });
    shard_capacity;
  }

let capacity t = Array.length t.shards * t.shard_capacity

let shard_of t key = t.shards.(Hashtbl.hash key land (Array.length t.shards - 1))

let find_or_compile t ~key f =
  let s = shard_of t key in
  Mutex.lock s.m;
  match Hashtbl.find_opt s.tbl key with
  | Some e ->
    Mutex.unlock s.m;
    Xr_obs.Registry.Counter.inc hits_h;
    e
  | None ->
    (* Compiling under the shard lock is deliberate: the lock contended
       for is almost always the *same key* (a thundering herd on one
       query), and holding it turns the herd into one mining pass. *)
    let e =
      try f ()
      with ex ->
        Mutex.unlock s.m;
        raise ex
    in
    Hashtbl.replace s.tbl key e;
    Queue.push key s.order;
    let evicted = ref 0 in
    while Hashtbl.length s.tbl > t.shard_capacity do
      let victim = Queue.pop s.order in
      if Hashtbl.mem s.tbl victim then begin
        Hashtbl.remove s.tbl victim;
        incr evicted
      end
    done;
    Mutex.unlock s.m;
    Xr_obs.Registry.Counter.inc misses_h;
    if !evicted > 0 then Xr_obs.Registry.Counter.add evictions_h !evicted;
    e

let size t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.m;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.m;
      acc + n)
    0 t.shards
