(** Text rendering of {!Plan.explain_search} / {!Plan.explain_refine} —
    what `xrefine search|refine --explain-plan` prints. Deterministic
    for a fixed corpus, algorithm and pool size (the golden-output test
    pins all three). *)

val search_to_text : Plan.explain_search -> string
(** Multi-line, trailing newline included. *)

val refine_to_text : Plan.explain_refine -> string
