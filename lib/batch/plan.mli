(** Compiled query plans.

    A plan captures the per-request work that depends only on the query
    string and the index generation — keyword normalization, vocabulary
    resolution, posting-list lookup, selectivity ordering, kernel
    dispatch, rule mining and pruning — so repeat executions skip
    straight to the scan. Plans hold no per-request state (the
    meaningfulness memo, whose table is single-threaded, is rebuilt per
    run on the running domain) and pin nothing mutable: the packed
    lists they reference are immutable snapshot data, so a plan is safe
    to share across domains and stays valid exactly as long as its
    generation — the cache key's generation id retires it for free.

    Both runners are byte-identical to their uncompiled counterparts:
    [run_search] to {!Xr_refine.Engine.search} and [run_refine] to
    {!Xr_refine.Engine.refine} (see {!Xr_refine.Engine.compiled_rules}
    for the refine argument). *)

open Xr_xml

(** How a compiled search executes its SLCA scan. *)
type search_exec =
  | Dead
      (** a keyword is out of vocabulary or has an empty posting list:
          the result is [[]] with no scan at all *)
  | Tiny of (Dewey.Packed.t * int * int) * (Dewey.Packed.t * int * int) list
      (** scan-family query whose driver is below
          {!Xr_slca.Scan_packed.tiny_threshold}: driver and partner
          ranges precompiled for the cursor-free tiny kernel *)
  | Ranges of (Dewey.Packed.t * int * int) list
      (** packed kernel over precompiled ranges — selectivity-sorted
          for the scan family, resolution order otherwise *)
  | Boxed  (** legacy boxed kernel via {!Xr_slca.Engine.query_ids} *)

type search = {
  s_slca : Xr_slca.Engine.algorithm;  (** pinned at compile time *)
  s_ids : Interner.id list;  (** resolved distinct keyword ids *)
  s_exec : search_exec;
  s_masses : Xr_slca.Parallel.masses option;
      (** pre-measured cost curve for the adaptive chunker (scan-parallel
          range plans whose free estimate clears the parallel gate);
          valid for the plan's generation, like the ranges themselves *)
}

(** [compile_search ?config index query] interprets [query] once:
    normalize, deduplicate, resolve against the vocabulary, fetch and
    selectivity-order the packed posting ranges, and pick the kernel. *)
val compile_search :
  ?config:Xr_refine.Engine.config -> Xr_index.Index.t -> string list -> search

(** [run_search ?config plan index] executes the plan —
    byte-identical to [Engine.search ~config index query] for the
    compiled query against the compiled generation's index. [config]
    supplies the per-run meaningfulness statistics configuration; the
    SLCA algorithm is the plan's. *)
val run_search :
  ?config:Xr_refine.Engine.config -> search -> Xr_index.Index.t -> Dewey.t list

(** A compiled refinement: the pruned rule list, so repeat refinements
    skip the mining pass (the dominant fixed cost on small queries). *)
type refine = { r_rules : Xr_refine.Rule.t list }

val compile_refine :
  ?config:Xr_refine.Engine.config -> Xr_index.Index.t -> string list -> refine

(** [run_refine ?config plan index query] — byte-identical to
    [Engine.refine ~config index query]: same refined queries, same
    rule list in the response, same stats shape. *)
val run_refine :
  ?config:Xr_refine.Engine.config ->
  refine ->
  Xr_index.Index.t ->
  string list ->
  Xr_refine.Engine.response

(** {1 EXPLAIN}

    A rendered account of every decision {!compile_search} makes and
    the run-time dispatch it leads to — what `xrefine … --explain-plan`
    and `GET /search?…&explain=1` show. Pure: explaining never runs the
    query (the one cursor movement it may cost is a {!measure} pass
    when the plan cache holds no cost curve yet, read-only like the
    compiler's own). *)

type explain_keyword = {
  ek_keyword : string;  (** normalized *)
  ek_id : int;
  ek_postings : int;
}

type explain_parallel = {
  xp_estimate : float;  (** free upper bound from range lengths *)
  xp_threshold : int;  (** live {!Xr_slca.Parallel.threshold} *)
  xp_measured : float option;  (** measured total cost; [None] when the estimate never cleared the gate *)
  xp_grains : int option;
  xp_pool_size : int;  (** pool size the chunk bounds were computed for *)
  xp_chunks : int;  (** {!Xr_slca.Parallel.auto_chunks} target *)
  xp_chunk_bounds : int array;  (** driver split points; [[||]] when sequential *)
  xp_curve : (int * float) array;
      (** the measured cost curve: (driver index, cumulative modeled cost)
          per grain boundary *)
}

type explain_search = {
  x_keywords : explain_keyword list;
      (** in executed order — driver (rarest) first for the scan family *)
  x_missing : string list;  (** normalized keywords absent from the vocabulary *)
  x_algorithm : string;
  x_index_mode : string;  (** ["flat"] or ["dag"] *)
  x_dag_kernel : string option;
      (** dag-backed only: ["scan_dag"] when the uncompiled dispatch
          ({!Xr_slca.Engine.query_ids}) would run the native compressed
          kernel, ["merged"] otherwise. Compiled plans always execute
          over merged flat views. *)
  x_kernel : string;  (** ["dead"], ["tiny"], ["scan"], ["stack"], ["parallel"] or ["boxed"] *)
  x_reason : string;  (** the threshold or condition that fired, spelled out *)
  x_parallel : explain_parallel option;  (** scan-parallel range plans only *)
}

(** [explain_search ?config ?pool_size index query] compiles [query]
    (hitting no cache) and reports the decisions. [pool_size] pins the
    chunk computation for deterministic output (default: the live
    global pool's size, 1 if none was ever created). *)
val explain_search :
  ?config:Xr_refine.Engine.config ->
  ?pool_size:int ->
  Xr_index.Index.t ->
  string list ->
  explain_search

type explain_refine = {
  xr_search : explain_search;
  xr_rules : string list;  (** statically-pruned rule list, in consultation order *)
}

val explain_refine :
  ?config:Xr_refine.Engine.config ->
  ?pool_size:int ->
  Xr_index.Index.t ->
  string list ->
  explain_refine
