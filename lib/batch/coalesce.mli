(** Single-flight admission: concurrent requests for the same rendered
    body coalesce onto one execution.

    The first arrival for a key becomes the *leader* and runs the
    render; every request that arrives for the same key while the
    leader is in flight becomes a *follower* and blocks until the
    leader finishes, then returns the leader's bytes. A leader
    exception is re-raised in every member. Keys are caller-built and
    include the generation signature (the server reuses its response
    cache key), so followers can never be handed bytes from another
    generation.

    An optional coalescing window makes the leader wait [window_ms]
    before rendering, widening the pile-up interval — a deliberate
    latency-for-throughput trade for overloaded servers; the default 0
    adds no latency and still coalesces whatever genuinely overlaps.

    Followers do not idle: while their leader renders, each follower
    drains tasks from the global domain pool ({!Xr_pool.try_help}) —
    typically the chunks of the leader's own parallel scan — so a
    coalesced pile-up turns blocked request domains into extra scan
    executors instead of sleepers.

    Counters are exported as [xr_coalesce_requests_total{role=...}],
    the members-per-flight histogram as [xr_coalesce_width], and
    tasks drained by waiting followers as
    [xr_coalesce_helped_tasks_total]. *)

type t

val create : ?window_ms:float -> unit -> t

val window_ms : t -> float

val set_window_ms : t -> float -> unit

(** [run t ~key f] returns [(body, follower)]: [follower] is [true]
    when the body came from another request's leader. *)
val run : t -> key:string -> (unit -> string) -> string * bool

(** Number of keys with a flight currently open (test hook). *)
val in_flight : t -> int

(** Cumulative process-wide counters. *)
val leaders : unit -> int

val followers : unit -> int

val helped : unit -> int
(** Pool tasks executed by waiting followers. *)
