(* Text rendering of compiled-plan explanations. Layout is part of the
   golden-test contract: column widths and float formats are fixed, and
   nothing here reads live state (the record is complete). *)

open Plan

let add = Buffer.add_string

let addf buf fmt = Printf.ksprintf (add buf) fmt

let search buf (x : explain_search) =
  addf buf "plan: %s kernel (algorithm %s, index %s%s)\n" x.x_kernel x.x_algorithm
    x.x_index_mode
    (match x.x_dag_kernel with Some k -> ", dag dispatch " ^ k | None -> "");
  addf buf "  reason: %s\n" x.x_reason;
  if x.x_missing <> [] then
    addf buf "  missing: %s\n" (String.concat ", " x.x_missing);
  List.iteri
    (fun i k ->
      addf buf "  %s %-20s id=%-6d postings=%d\n"
        (if i = 0 && x.x_kernel <> "dead" && x.x_kernel <> "boxed" then "lists:" else "      ")
        k.ek_keyword k.ek_id k.ek_postings)
    x.x_keywords;
  match x.x_parallel with
  | None -> ()
  | Some p ->
    addf buf "  parallel: estimate=%.0f threshold=%d" p.xp_estimate p.xp_threshold;
    (match p.xp_measured with
    | Some c -> addf buf " measured=%.0f" c
    | None -> add buf " measured=-");
    (match p.xp_grains with Some g -> addf buf " grains=%d" g | None -> ());
    addf buf " pool=%d\n" p.xp_pool_size;
    if Array.length p.xp_chunk_bounds > 1 then begin
      addf buf "  chunks (%d over %d targeted):" (Array.length p.xp_chunk_bounds - 1) p.xp_chunks;
      Array.iteri
        (fun i b -> if i > 0 then addf buf " %d-%d" p.xp_chunk_bounds.(i - 1) b)
        p.xp_chunk_bounds;
      add buf "\n"
    end;
    if Array.length p.xp_curve > 0 then begin
      add buf "  cost curve:";
      Array.iter (fun (b, c) -> addf buf " %d:%.0f" b c) p.xp_curve;
      add buf "\n"
    end

let search_to_text x =
  let buf = Buffer.create 256 in
  search buf x;
  Buffer.contents buf

let refine_to_text (x : explain_refine) =
  let buf = Buffer.create 256 in
  search buf x.xr_search;
  addf buf "  rules (%d after static pruning):\n" (List.length x.xr_rules);
  List.iter (fun r -> addf buf "    %s\n" r) x.xr_rules;
  Buffer.contents buf
