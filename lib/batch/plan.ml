open Xr_xml
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine
module Scan_packed = Xr_slca.Scan_packed
module Meaningful = Xr_slca.Meaningful
module Engine = Xr_refine.Engine
module P = Dewey.Packed

type search_exec =
  | Dead
  | Tiny of (P.t * int * int) * (P.t * int * int) list
  | Ranges of (P.t * int * int) list
  | Boxed

type search = {
  s_slca : Slca_engine.algorithm;
  s_ids : Interner.id list;
  s_exec : search_exec;
  s_masses : Xr_slca.Parallel.masses option;
      (* Cost curve measured at compile time for scan-parallel range
         plans whose free estimate clears the parallel gate — the
         chunker's split points come for free on every cache hit. The
         plan cache is keyed by index generation, so the ranges (and
         hence the curve) stay valid for the plan's whole life. *)
}

(* Mirror of the [parse] stage of {!Engine.search}: normalize, dedupe,
   resolve. [None] exactly when search would return [[]] without
   scanning (out-of-vocabulary keyword or an empty posting list). *)
let compile_search ?(config = Engine.default_config) (index : Index.t) query =
  let doc = index.Index.doc in
  let alg = config.Engine.slca in
  let keywords =
    List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
    |> List.sort_uniq String.compare
  in
  let rec resolve acc = function
    | [] -> Some (List.rev acc)
    | k :: rest -> (
      match Doc.keyword_id doc k with
      | Some kw -> resolve (kw :: acc) rest
      | None -> None)
  in
  match resolve [] keywords with
  | None -> { s_slca = alg; s_ids = []; s_exec = Dead; s_masses = None }
  | Some ids ->
    if List.exists (fun kw -> Inverted.length index.Index.inverted kw = 0) ids then
      { s_slca = alg; s_ids = ids; s_exec = Dead; s_masses = None }
    else if not (Slca_engine.is_packed alg) then
      { s_slca = alg; s_ids = ids; s_exec = Boxed; s_masses = None }
    else begin
      (* DAG backing: merge the plan's flat views concurrently instead
         of one by one inside the serial mapping below *)
      Inverted.prefetch index.Index.inverted ids;
      let ranges =
        List.map
          (fun kw ->
            let pk = (Inverted.packed_list index.Index.inverted kw).Inverted.labels in
            (pk, 0, P.length pk))
          ids
      in
      match alg with
      | Slca_engine.Scan_packed | Slca_engine.Scan_parallel -> (
        (* Selectivity order decided here, once: the kernels' stable
           sort is a fixpoint on the pre-sorted list, so handing the
           sorted ranges back to them changes nothing. *)
        match Scan_packed.sort_by_length ranges with
        | ((_, dlo, dhi) as driver) :: others
          when dhi - dlo <= Scan_packed.tiny_threshold () ->
          { s_slca = alg; s_ids = ids; s_exec = Tiny (driver, others); s_masses = None }
        | sorted ->
          let masses =
            (* measure once at compile time when the free estimate says
               the run-time chunker will want the curve; the gate in
               [Parallel.compute_ranges] re-checks the live threshold,
               so a threshold raised after caching still wins *)
            if
              alg = Slca_engine.Scan_parallel
              && Xr_slca.Parallel.estimate sorted
                 >= float_of_int (Xr_slca.Parallel.threshold ())
            then Xr_slca.Parallel.measure ?pool:(Xr_pool.peek_global ()) sorted
            else None
          in
          { s_slca = alg; s_ids = ids; s_exec = Ranges sorted; s_masses = masses })
      | _ ->
        (* stack-packed consumes the lists in resolution order, exactly
           as [query_ids] hands them over *)
        { s_slca = alg; s_ids = ids; s_exec = Ranges ranges; s_masses = None }
    end

(* Total postings feeding the scan — the "candidates in" figure of the
   ANALYZE stage report. Only computed when a report is active. *)
let exec_postings index ids = function
  | Dead -> 0
  | Tiny ((_, dlo, dhi), others) ->
    List.fold_left (fun acc (_, lo, hi) -> acc + hi - lo) (dhi - dlo) others
  | Ranges ranges -> List.fold_left (fun acc (_, lo, hi) -> acc + hi - lo) 0 ranges
  | Boxed -> List.fold_left (fun acc kw -> acc + Inverted.length index.Index.inverted kw) 0 ids

let run_search ?(config = Engine.default_config) plan (index : Index.t) =
  match plan.s_exec with
  | Dead -> []
  | exec ->
    (* The memo table behind [Meaningful.t] is single-threaded, so the
       statistics handle is per-run, never part of the cached plan. *)
    let meaningful =
      Xr_obs.Tracing.with_span "parse" (fun () ->
          Meaningful.make ~config:config.Engine.search_for index.Index.stats plan.s_ids)
    in
    let slcas =
      match exec with
      | Dead -> assert false
      | Boxed -> Slca_engine.query_ids plan.s_slca index plan.s_ids
      | Ranges ranges -> (
        match (plan.s_slca, plan.s_masses) with
        | Slca_engine.Scan_parallel, (Some _ as masses) ->
          (* hand the chunker its pre-measured cost curve *)
          Xr_obs.Tracing.with_span "slca.scan" (fun () ->
              Xr_slca.Parallel.compute_ranges ?masses ranges)
        | _ -> Slca_engine.compute_ranges plan.s_slca ranges)
      | Tiny (driver, others) ->
        (* A tiny driver sits far below the parallel threshold: for the
           scan-parallel algorithm this dispatch *is* the sequential
           fallback, decided at compile time, so keep its counter
           faithful. *)
        if plan.s_slca = Slca_engine.Scan_parallel then Xr_slca.Parallel.note_fallback ();
        Xr_obs.Tracing.with_span "slca.scan" (fun () ->
            Scan_packed.scan_tiny ~driver ~others ())
    in
    let filtered =
      Xr_obs.Tracing.with_span "slca.filter" (fun () -> Meaningful.filter meaningful slcas)
    in
    if Xr_obs.Analyze.active () then begin
      let nslcas = List.length slcas in
      Xr_obs.Analyze.note_stage ~name:"slca.scan"
        ~input:(exec_postings index plan.s_ids exec)
        ~output:nslcas;
      Xr_obs.Analyze.note_stage ~name:"slca.filter" ~input:nslcas
        ~output:(List.length filtered)
    end;
    filtered

type refine = { r_rules : Xr_refine.Rule.t list }

let compile_refine ?config (index : Index.t) query =
  { r_rules = Engine.compiled_rules ?config index query }

let run_refine ?(config = Engine.default_config) plan (index : Index.t) query =
  let response =
    Engine.refine
      ~config:{ config with Engine.auto_mine = false }
      ~rules:plan.r_rules index query
  in
  if Xr_obs.Analyze.active () then
    Xr_obs.Analyze.note_stage ~name:"refine"
      ~input:(List.length plan.r_rules)
      ~output:(List.length response.Xr_refine.Engine.rules_used);
  response

(* ---- EXPLAIN ------------------------------------------------------------ *)

type explain_keyword = { ek_keyword : string; ek_id : int; ek_postings : int }

type explain_parallel = {
  xp_estimate : float;
  xp_threshold : int;
  xp_measured : float option;
  xp_grains : int option;
  xp_pool_size : int;
  xp_chunks : int;
  xp_chunk_bounds : int array;
  xp_curve : (int * float) array;
}

type explain_search = {
  x_keywords : explain_keyword list;
  x_missing : string list;
  x_algorithm : string;
  x_index_mode : string;
  x_dag_kernel : string option;
  x_kernel : string;
  x_reason : string;
  x_parallel : explain_parallel option;
}

let explain_search ?(config = Engine.default_config) ?pool_size (index : Index.t) query =
  let doc = index.Index.doc in
  let alg = config.Engine.slca in
  let plan = compile_search ~config index query in
  let pool_size =
    match pool_size with
    | Some n -> max 1 n
    | None -> ( match Xr_pool.peek_global () with Some p -> Xr_pool.size p | None -> 1)
  in
  let keywords =
    List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
    |> List.sort_uniq String.compare
  in
  let resolved, missing =
    List.partition_map
      (fun k ->
        match Doc.keyword_id doc k with
        | Some id ->
          Either.Left
            { ek_keyword = k; ek_id = (id :> int); ek_postings = Inverted.length index.Index.inverted id }
        | None -> Either.Right k)
      keywords
  in
  (* Present the lists in executed order: the scan family re-sorts by
     selectivity (driver — the rarest list — first); every other kernel
     consumes them in resolution order. The stable sort mirrors
     [Scan_packed.sort_by_length] over ranges built in id order. *)
  let executed_order =
    match alg with
    | Slca_engine.Scan_packed | Slca_engine.Scan_parallel | Slca_engine.Scan_eager ->
      List.stable_sort (fun a b -> compare a.ek_postings b.ek_postings) resolved
    | _ -> resolved
  in
  let dag_kernel =
    match Inverted.dag index.Index.inverted with
    | None -> None
    | Some dag ->
      if
        (match alg with Slca_engine.Scan_packed | Slca_engine.Scan_parallel -> true | _ -> false)
        && plan.s_ids <> []
        && Xr_slca.Scan_dag.eligible dag plan.s_ids
      then Some "scan_dag"
      else Some "merged"
  in
  let kernel, reason, parallel =
    match plan.s_exec with
    | Dead ->
      let reason =
        match missing with
        | [] -> (
          match List.find_opt (fun k -> k.ek_postings = 0) resolved with
          | Some k -> Printf.sprintf "keyword %S has an empty posting list" k.ek_keyword
          | None -> "empty query")
        | ks -> Printf.sprintf "out of vocabulary: %s" (String.concat ", " ks)
      in
      ("dead", reason, None)
    | Boxed ->
      ( "boxed",
        Printf.sprintf "algorithm %s is not packed: legacy boxed kernel" (Slca_engine.name alg),
        None )
    | Tiny ((_, dlo, dhi), _) ->
      ( "tiny",
        Printf.sprintf "driver range %d <= tiny threshold %d: cursor-free tiny kernel"
          (dhi - dlo)
          (Scan_packed.tiny_threshold ()),
        None )
    | Ranges ranges -> (
      let stack = match alg with Slca_engine.Stack_packed -> true | _ -> false in
      if alg <> Slca_engine.Scan_parallel then
        ( (if stack then "stack" else "scan"),
          Printf.sprintf "sequential %s kernel over %d packed range(s)" (Slca_engine.name alg)
            (List.length ranges),
          None )
      else begin
        let thr = Xr_slca.Parallel.threshold () in
        let est = Xr_slca.Parallel.estimate ranges in
        let base =
          {
            xp_estimate = est;
            xp_threshold = thr;
            xp_measured = None;
            xp_grains = None;
            xp_pool_size = pool_size;
            xp_chunks = 1;
            xp_chunk_bounds = [||];
            xp_curve = [||];
          }
        in
        if est < float_of_int thr then
          ( "scan",
            Printf.sprintf "estimated cost %.0f below parallel threshold %d: sequential scan"
              est thr,
            Some base )
        else
          let masses =
            match plan.s_masses with
            | Some m -> Some m
            | None -> Xr_slca.Parallel.measure ranges
          in
          match masses with
          | None -> ("scan", "degenerate ranges: sequential scan", Some base)
          | Some m ->
            let cost = Xr_slca.Parallel.total_cost m in
            let bounds = Xr_slca.Parallel.grain_bounds m in
            let curve = Xr_slca.Parallel.cost_curve m in
            let base =
              {
                base with
                xp_measured = Some cost;
                xp_grains = Some (Xr_slca.Parallel.grain_count m);
                xp_curve = Array.map2 (fun b c -> (b, c)) bounds curve;
              }
            in
            if cost < float_of_int thr then
              ( "scan",
                Printf.sprintf
                  "measured cost %.0f below parallel threshold %d: sequential scan" cost thr,
                Some base )
            else if pool_size <= 1 then
              ("scan", "pool of 1: sequential scan", Some base)
            else begin
              let chunks = Xr_slca.Parallel.auto_chunks ~pool_size ~total_cost:cost in
              let cb = Xr_slca.Parallel.chunk_bounds m ~chunks in
              ( "parallel",
                Printf.sprintf
                  "measured cost %.0f >= threshold %d: %d cost-balanced chunk(s) on %d domain(s)"
                  cost thr
                  (Array.length cb - 1)
                  pool_size,
                Some { base with xp_chunks = chunks; xp_chunk_bounds = cb } )
            end
      end)
  in
  {
    x_keywords = executed_order;
    x_missing = missing;
    x_algorithm = Slca_engine.name alg;
    x_index_mode = Index.mode_name (Index.mode index);
    x_dag_kernel = dag_kernel;
    x_kernel = kernel;
    x_reason = reason;
    x_parallel = parallel;
  }

type explain_refine = {
  xr_search : explain_search;
  xr_rules : string list;  (** pruned rule list, in consultation order *)
}

let explain_refine ?config ?pool_size (index : Index.t) query =
  let plan = compile_refine ?config index query in
  {
    xr_search = explain_search ?config ?pool_size index query;
    xr_rules = List.map Xr_refine.Rule.to_string plan.r_rules;
  }
