open Xr_xml
module Index = Xr_index.Index
module Inverted = Xr_index.Inverted
module Slca_engine = Xr_slca.Engine
module Scan_packed = Xr_slca.Scan_packed
module Meaningful = Xr_slca.Meaningful
module Engine = Xr_refine.Engine
module P = Dewey.Packed

type search_exec =
  | Dead
  | Tiny of (P.t * int * int) * (P.t * int * int) list
  | Ranges of (P.t * int * int) list
  | Boxed

type search = {
  s_slca : Slca_engine.algorithm;
  s_ids : Interner.id list;
  s_exec : search_exec;
  s_masses : Xr_slca.Parallel.masses option;
      (* Cost curve measured at compile time for scan-parallel range
         plans whose free estimate clears the parallel gate — the
         chunker's split points come for free on every cache hit. The
         plan cache is keyed by index generation, so the ranges (and
         hence the curve) stay valid for the plan's whole life. *)
}

(* Mirror of the [parse] stage of {!Engine.search}: normalize, dedupe,
   resolve. [None] exactly when search would return [[]] without
   scanning (out-of-vocabulary keyword or an empty posting list). *)
let compile_search ?(config = Engine.default_config) (index : Index.t) query =
  let doc = index.Index.doc in
  let alg = config.Engine.slca in
  let keywords =
    List.filter (fun k -> String.length k > 0) (List.map Token.normalize query)
    |> List.sort_uniq String.compare
  in
  let rec resolve acc = function
    | [] -> Some (List.rev acc)
    | k :: rest -> (
      match Doc.keyword_id doc k with
      | Some kw -> resolve (kw :: acc) rest
      | None -> None)
  in
  match resolve [] keywords with
  | None -> { s_slca = alg; s_ids = []; s_exec = Dead; s_masses = None }
  | Some ids ->
    if List.exists (fun kw -> Inverted.length index.Index.inverted kw = 0) ids then
      { s_slca = alg; s_ids = ids; s_exec = Dead; s_masses = None }
    else if not (Slca_engine.is_packed alg) then
      { s_slca = alg; s_ids = ids; s_exec = Boxed; s_masses = None }
    else begin
      (* DAG backing: merge the plan's flat views concurrently instead
         of one by one inside the serial mapping below *)
      Inverted.prefetch index.Index.inverted ids;
      let ranges =
        List.map
          (fun kw ->
            let pk = (Inverted.packed_list index.Index.inverted kw).Inverted.labels in
            (pk, 0, P.length pk))
          ids
      in
      match alg with
      | Slca_engine.Scan_packed | Slca_engine.Scan_parallel -> (
        (* Selectivity order decided here, once: the kernels' stable
           sort is a fixpoint on the pre-sorted list, so handing the
           sorted ranges back to them changes nothing. *)
        match Scan_packed.sort_by_length ranges with
        | ((_, dlo, dhi) as driver) :: others
          when dhi - dlo <= Scan_packed.tiny_threshold () ->
          { s_slca = alg; s_ids = ids; s_exec = Tiny (driver, others); s_masses = None }
        | sorted ->
          let masses =
            (* measure once at compile time when the free estimate says
               the run-time chunker will want the curve; the gate in
               [Parallel.compute_ranges] re-checks the live threshold,
               so a threshold raised after caching still wins *)
            if
              alg = Slca_engine.Scan_parallel
              && Xr_slca.Parallel.estimate sorted
                 >= float_of_int (Xr_slca.Parallel.threshold ())
            then Xr_slca.Parallel.measure ?pool:(Xr_pool.peek_global ()) sorted
            else None
          in
          { s_slca = alg; s_ids = ids; s_exec = Ranges sorted; s_masses = masses })
      | _ ->
        (* stack-packed consumes the lists in resolution order, exactly
           as [query_ids] hands them over *)
        { s_slca = alg; s_ids = ids; s_exec = Ranges ranges; s_masses = None }
    end

let run_search ?(config = Engine.default_config) plan (index : Index.t) =
  match plan.s_exec with
  | Dead -> []
  | exec ->
    (* The memo table behind [Meaningful.t] is single-threaded, so the
       statistics handle is per-run, never part of the cached plan. *)
    let meaningful =
      Xr_obs.Tracing.with_span "parse" (fun () ->
          Meaningful.make ~config:config.Engine.search_for index.Index.stats plan.s_ids)
    in
    let slcas =
      match exec with
      | Dead -> assert false
      | Boxed -> Slca_engine.query_ids plan.s_slca index plan.s_ids
      | Ranges ranges -> (
        match (plan.s_slca, plan.s_masses) with
        | Slca_engine.Scan_parallel, (Some _ as masses) ->
          (* hand the chunker its pre-measured cost curve *)
          Xr_obs.Tracing.with_span "slca.scan" (fun () ->
              Xr_slca.Parallel.compute_ranges ?masses ranges)
        | _ -> Slca_engine.compute_ranges plan.s_slca ranges)
      | Tiny (driver, others) ->
        (* A tiny driver sits far below the parallel threshold: for the
           scan-parallel algorithm this dispatch *is* the sequential
           fallback, decided at compile time, so keep its counter
           faithful. *)
        if plan.s_slca = Slca_engine.Scan_parallel then Xr_slca.Parallel.note_fallback ();
        Xr_obs.Tracing.with_span "slca.scan" (fun () ->
            Scan_packed.scan_tiny ~driver ~others ())
    in
    Xr_obs.Tracing.with_span "slca.filter" (fun () -> Meaningful.filter meaningful slcas)

type refine = { r_rules : Xr_refine.Rule.t list }

let compile_refine ?config (index : Index.t) query =
  { r_rules = Engine.compiled_rules ?config index query }

let run_refine ?(config = Engine.default_config) plan (index : Index.t) query =
  Engine.refine
    ~config:{ config with Engine.auto_mine = false }
    ~rules:plan.r_rules index query
