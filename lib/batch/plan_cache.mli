(** Bounded, sharded cache of compiled query plans.

    Keys are caller-built strings that embed the index generation id
    (and whatever else distinguishes plans — endpoint, algorithm,
    query), so an ingest publish retires every stale plan without any
    invalidation protocol: the new generation's requests simply miss
    under their new keys while the old entries age out FIFO.

    Lookups compile under the owning shard's lock, which doubles as
    single-flight per shard: concurrent requests for the same key (the
    expensive case — rule mining) compile once and everyone else reads
    the cached plan. Hits, misses and evictions are exported to the
    registry as [xr_plan_cache_events_total{event=...}]. *)

type entry =
  | Search of Plan.search
  | Refine of Plan.refine

type t

(** [create ~capacity ()] — [capacity] is the total entry bound,
    divided evenly across [shards] (default 8, rounded to a power of
    two). *)
val create : ?shards:int -> capacity:int -> unit -> t

(** [find_or_compile t ~key f] returns the cached entry for [key],
    compiling and inserting it with [f] on a miss. An exception from
    [f] propagates and caches nothing. *)
val find_or_compile : t -> key:string -> (unit -> entry) -> entry

(** Live entries across all shards. *)
val size : t -> int

val capacity : t -> int

(** Cumulative process-wide counters (all caches). *)
val hits : unit -> int

val misses : unit -> int

val evictions : unit -> int
