let requests_fam =
  Xr_obs.Registry.Counter.family ~name:"xr_coalesce_requests_total"
    ~help:"Requests through the single-flight admission layer" ~label_names:[ "role" ] ()

let leaders_h = Xr_obs.Registry.Counter.handle requests_fam [ "leader" ]

let followers_h = Xr_obs.Registry.Counter.handle requests_fam [ "follower" ]

let width_h =
  Xr_obs.Registry.Histogram.no_labels
    (Xr_obs.Registry.Histogram.family ~name:"xr_coalesce_width"
       ~help:"Requests served per coalesced flight (leader included)"
       ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |] ())

let helped_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_coalesce_helped_tasks_total"
       ~help:"Pool tasks executed by coalesced followers while waiting for their leader" ())

let leaders () = Xr_obs.Registry.Counter.value leaders_h

let followers () = Xr_obs.Registry.Counter.value followers_h

let helped () = Xr_obs.Registry.Counter.value helped_h

type outcome = Body of string | Failed of exn

type flight = {
  fm : Mutex.t;
  cv : Condition.t;
  mutable outcome : outcome option;
  mutable waiters : int;
}

type t = {
  lock : Mutex.t; (* guards [tbl] only; never held while rendering *)
  tbl : (string, flight) Hashtbl.t;
  window : int Atomic.t; (* microseconds: atomically updatable, enough precision *)
}

let window_ms t = float_of_int (Atomic.get t.window) /. 1000.

let set_window_ms t w = Atomic.set t.window (int_of_float (max 0. w *. 1000.))

let create ?(window_ms = 0.) () =
  let t = { lock = Mutex.create (); tbl = Hashtbl.create 32; window = Atomic.make 0 } in
  set_window_ms t window_ms;
  t

let in_flight t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let run t ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.tbl key with
  | Some fl ->
    Mutex.unlock t.lock;
    Mutex.lock fl.fm;
    fl.waiters <- fl.waiters + 1;
    (* A follower's wait is dead time on a whole domain — donate it to
       the pool: drain one queued task per round (chunks of the
       leader's own scan, typically), and only sleep on the condition
       when the pool has nothing to offer. No lost wakeup: the leader
       sets [outcome] and broadcasts under [fm], and we re-check
       [outcome] after re-acquiring [fm] before every wait. *)
    let rec await () =
      if fl.outcome = None then begin
        Mutex.unlock fl.fm;
        let worked =
          match Xr_pool.peek_global () with
          | Some pool -> Xr_pool.try_help pool
          | None -> false
        in
        if worked then Xr_obs.Registry.Counter.inc helped_h;
        Mutex.lock fl.fm;
        if (not worked) && fl.outcome = None then Condition.wait fl.cv fl.fm;
        await ()
      end
    in
    await ();
    let o = fl.outcome in
    Mutex.unlock fl.fm;
    Xr_obs.Registry.Counter.inc followers_h;
    (match o with
    | Some (Body b) -> (b, true)
    | Some (Failed e) -> raise e
    | None -> assert false)
  | None ->
    let fl =
      { fm = Mutex.create (); cv = Condition.create (); outcome = None; waiters = 0 }
    in
    Hashtbl.add t.tbl key fl;
    Mutex.unlock t.lock;
    (* The window runs before the render so late duplicates can still
       pile onto this flight; with the default 0 the leader proceeds
       immediately. *)
    let w = window_ms t in
    if w > 0. then Unix.sleepf (w /. 1000.);
    let out = try Body (f ()) with e -> Failed e in
    (* Close admission first: once the key is out of [tbl] a new
       arrival starts a fresh flight rather than reading a stale
       body. Existing followers still hold their [fl] reference. *)
    Mutex.lock t.lock;
    Hashtbl.remove t.tbl key;
    Mutex.unlock t.lock;
    Mutex.lock fl.fm;
    fl.outcome <- Some out;
    let w = fl.waiters in
    Condition.broadcast fl.cv;
    Mutex.unlock fl.fm;
    Xr_obs.Registry.Counter.inc leaders_h;
    Xr_obs.Registry.Histogram.observe width_h (float_of_int (w + 1));
    (match out with Body b -> (b, false) | Failed e -> raise e)
