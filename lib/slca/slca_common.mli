(** Shared pieces of the SLCA engines. *)

open Xr_xml

(** [prune_non_smallest candidates] removes duplicates and every node that
    is a proper ancestor of another candidate, returning the smallest-LCA
    subset in document order. Input need not be sorted. *)
val prune_non_smallest : Dewey.t list -> Dewey.t list

(** [lower_bound list ~lo v] is the first index in [\[lo, length list)]
    whose label is [>= v] ([length list] if none). The explicit [lo]
    lets a multiway scan resume from its previous probe position. *)
val lower_bound : Xr_index.Inverted.posting array -> lo:int -> Dewey.t -> int

(** [closest list lo v] is the pair [(lm, rm)] around [v] in [list]:
    [lm] = greatest posting [<= v] at index [>= lo], [rm] = least posting
    [>= v]; either may be [None] at the list ends. Found by binary search
    over [list.(lo..)]. *)
val closest :
  Xr_index.Inverted.posting array ->
  int ->
  Dewey.t ->
  Xr_index.Inverted.posting option * Xr_index.Inverted.posting option

(** [deepest_prefix_depth v (lm, rm)] is the depth of the deepest prefix
    of [v] whose subtree provably contains one of the two matches — i.e.
    [max (|lca v lm|) (|lca v rm|)], or [-1] if both are [None]. *)
val deepest_prefix_depth :
  Dewey.t -> Xr_index.Inverted.posting option * Xr_index.Inverted.posting option -> int
