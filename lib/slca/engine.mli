(** Uniform front door over the SLCA algorithms — the pluggable
    "existing SLCA computation method" of the paper's Lemma 3. *)

open Xr_xml

type algorithm =
  | Stack  (** sort-merge stack, the paper's [stack-slca] *)
  | Scan_eager  (** XKSearch scan-eager, the paper's [scan-slca] *)
  | Indexed_lookup  (** XKSearch indexed-lookup-eager *)
  | Multiway  (** Multiway-SLCA, anchor-based *)
  | Stack_packed  (** {!Stack} over packed lists, allocation-free merge *)
  | Scan_packed  (** {!Scan_eager} over packed lists, allocation-free probes *)
  | Scan_parallel
      (** {!Scan_packed} chunked over the {!Xr_pool} domain pool; falls
          back to the sequential kernel below {!Parallel.threshold}.
          Byte-identical output to {!Scan_packed}. *)

val all : algorithm list

val name : algorithm -> string

(** [of_name s] inverts {!name}. *)
val of_name : string -> algorithm option

(** [is_packed alg] is true for the kernels that consume packed lists
    natively (and so can run straight off the index without decoding). *)
val is_packed : algorithm -> bool

(** [packed_partner alg] is the packed kernel computing the same SLCA
    sets as [alg] without decoding: {!Stack} keeps its merge order via
    {!Stack_packed}, everything else maps to {!Scan_packed}. All engines
    agree on the result (the property suite asserts it), so promoting is
    output-neutral; the refinement pipeline uses this to honor a
    configured list-based engine while staying on the packed substrate. *)
val packed_partner : algorithm -> algorithm

(** [sequential_partner alg] strips intra-query parallelism:
    {!Scan_parallel} maps to {!Scan_packed}, everything else to itself.
    Work already running on a pool worker uses this to avoid nested
    fork/join. *)
val sequential_partner : algorithm -> algorithm

(** [compute alg lists] is the SLCA set (document order) of the
    conjunction of the keywords whose posting lists are given. Packed
    algorithms pack the given lists on the fly — use {!compute_packed}
    or {!query_ids} to feed them pre-packed lists without that cost. *)
val compute : algorithm -> Xr_index.Inverted.posting array list -> Dewey.t list

(** [compute_packed alg lists] is {!compute} on packed input. Packed
    algorithms run on the buffers directly; list-based algorithms pay a
    throwaway materialization (their cost baseline in the benchmark). *)
val compute_packed : algorithm -> Dewey.Packed.t list -> Dewey.t list

(** [compute_ranges alg lists] is {!compute_packed} with each list
    restricted to the half-open entry range paired with it — the
    per-partition SLCA step of the refinement pipeline. Packed kernels
    scan the ranges in place; list-based algorithms pay a throwaway
    sub-array materialization. *)
val compute_ranges : algorithm -> (Dewey.Packed.t * int * int) list -> Dewey.t list

(** [query_ids alg index ids] computes SLCAs for already-resolved keyword
    ids, routing packed algorithms to the index's packed lists (no decode)
    and list-based ones to the legacy view. *)
val query_ids : algorithm -> Xr_index.Index.t -> Interner.id list -> Dewey.t list

(** [query alg index keywords] resolves keywords against the document and
    computes SLCAs; a keyword absent from the document yields []. *)
val query : algorithm -> Xr_index.Index.t -> string list -> Dewey.t list
