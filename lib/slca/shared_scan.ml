open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed
module Bitslice = Xr_index.Bitslice

let enabled_v = Atomic.make true

let enabled () = Atomic.get enabled_v

let set_enabled b = Atomic.set enabled_v b

let batches_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_shared_scan_batches_total"
       ~help:"Shared driver passes run by the batched SLCA kernel" ())

let members_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_shared_scan_members_total"
       ~help:"Batch members fed by shared driver passes" ())

let saved_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_shared_scan_saved_decodes_total"
       ~help:"Driver entry decodes avoided by sharing a pass across batch members" ())

let width_h =
  Xr_obs.Registry.Histogram.no_labels
    (Xr_obs.Registry.Histogram.family ~name:"xr_shared_scan_width"
       ~help:"Members per shared driver pass"
       ~buckets:[| 2.; 4.; 8.; 16.; 32.; 64.; 128. |] ())

let batches () = Xr_obs.Registry.Counter.value batches_h

let members_fed () = Xr_obs.Registry.Counter.value members_h

let saved_decodes () = Xr_obs.Registry.Counter.value saved_h

(* One batch member: its partner cursors plus a private copy of the
   scan kernel's held-candidate automaton (see {!Scan_packed} for why
   one held candidate suffices). The driver entry arrives predecoded in
   the shared scratch buffer; everything past that decode is exactly
   the member's solo [scan_chunk] step. *)
type member = {
  cursors : PC.t array;
  cur : int array;
  mutable cur_len : int;
  mutable results : Dewey.t list;
}

let step m scratch vd =
  let depth = ref vd in
  let ncur = Array.length m.cursors in
  for ci = 0 to ncur - 1 do
    let d = PC.match_probe (Array.unsafe_get m.cursors ci) scratch vd in
    if d < !depth then depth := d
  done;
  let d = !depth in
  if d >= 0 then
    if m.cur_len < 0 then begin
      Array.blit scratch 0 m.cur 0 d;
      m.cur_len <- d
    end
    else begin
      let lim = if d < m.cur_len then d else m.cur_len in
      let i = ref 0 in
      while !i < lim && Array.unsafe_get m.cur !i = Array.unsafe_get scratch !i do
        incr i
      done;
      if !i = d then () (* ancestor of (or equal to) the held candidate *)
      else begin
        if !i < m.cur_len then m.results <- Array.sub m.cur 0 m.cur_len :: m.results;
        (* else: extension of the held candidate — replace silently *)
        Array.blit scratch 0 m.cur 0 d;
        m.cur_len <- d
      end
    end

(* One counter-free shared pass over [dlo, dhi) of the driver. With
   [preseek], member cursors gallop to the first entry >= the chunk's
   split point before scanning — exactly {!Scan_packed.scan_chunk}'s
   pre-positioning, which makes a pass over a sub-range a valid chunk
   of the full pass (survivors concatenate and re-prune to the
   sequential output, see {!Parallel.prune_merge}). *)
let scan_members ?(preseek = false) ?root ~driver:(driver, dlo, dhi) member_lists =
  let n = Array.length member_lists in
  let maxd =
    Array.fold_left
      (fun acc others ->
        List.fold_left (fun acc (l, _, _) -> max acc (P.max_depth l)) acc others)
      (P.max_depth driver) member_lists
  in
  let maxd = max maxd 1 in
  let scratch = Array.make maxd 0 in
  let members =
    Array.map
      (fun others ->
        {
          cursors = Array.of_list (List.map (fun (l, lo, hi) -> PC.make_sub l ~lo ~hi) others);
          cur = Array.make maxd 0;
          cur_len = -1;
          results = [];
        })
      member_lists
  in
  if preseek && dlo < dhi then
    Array.iter
      (fun m -> Array.iter (fun c -> PC.seek_geq_entry c driver dlo) m.cursors)
      members;
  let scan_entry vi =
    let vd = P.blit_entry driver vi scratch in
    for i = 0 to n - 1 do
      step (Array.unsafe_get members i) scratch vd
    done
  in
  let entries =
    match root with
    | None ->
      for vi = dlo to dhi - 1 do
        scan_entry vi
      done;
      dhi - dlo
    | Some (prefix, plen) ->
      (* bitsliced prefix filter: one word of mask carries 63 subtree
         verdicts, and the pass only touches selected driver entries *)
      let mask = Bitslice.under driver ~lo:dlo ~hi:dhi ~prefix ~plen in
      Bitslice.iter mask scan_entry;
      Bitslice.cardinal mask
  in
  ( entries,
    Array.map
      (fun m ->
        if m.cur_len >= 0 then m.results <- Array.sub m.cur 0 m.cur_len :: m.results;
        List.rev m.results)
      members )

let note_pass ~passes ~members ~entries =
  Xr_obs.Registry.Counter.add batches_h passes;
  Xr_obs.Registry.Counter.add members_h members;
  Xr_obs.Registry.Counter.add saved_h (max 0 ((members - 1) * entries));
  Xr_obs.Registry.Histogram.observe width_h (float_of_int members)

let run ?root ~driver member_lists () =
  let entries, out = scan_members ?root ~driver member_lists in
  note_pass ~passes:1 ~members:(Array.length member_lists) ~entries;
  out

(* Chunked shared pass: the group's driver range splits at [bounds]
   (cost-modeled, or equal-count under the test hook), each chunk runs
   the shared automaton for every member on a pool worker, and each
   member's per-chunk survivors re-prune to its sequential output. The
   group still decodes each driver entry once per chunk-slot rather
   than once per member — both batching axes at the same time. *)
let run_chunked pool ~driver:(dpk, dlo, dhi) member_lists ~bounds =
  let nch = Array.length bounds - 1 in
  let n = Array.length member_lists in
  let per_chunk = Array.make nch [||] in
  Xr_pool.run pool
    (Array.init nch (fun i ->
         fun () ->
          Xr_obs.Tracing.with_span "pool.chunk" (fun () ->
              per_chunk.(i) <-
                snd
                  (scan_members ~preseek:(i > 0)
                     ~driver:(dpk, bounds.(i), bounds.(i + 1))
                     member_lists))));
  note_pass ~passes:nch ~members:n ~entries:(dhi - dlo);
  Xr_obs.Tracing.with_span "slca.merge" (fun () ->
      Array.init n (fun mi -> Parallel.prune_merge (Array.map (fun c -> c.(mi)) per_chunk)))

(* Group queries by driver identity — same packed buffer (physically),
   same entry range. Batches are small (a request's candidate set or
   the admission window), so the quadratic association walk stays
   cheaper than hashing the triples. *)
type group = {
  g_driver : P.t * int * int;
  mutable g_queries : (int * (P.t * int * int) list) list; (* slot, partner lists; reversed *)
}

let run_batch ?pool ?chunks ?root (queries : (P.t * int * int) list list) =
  if not (Atomic.get enabled_v) then List.map Scan_packed.compute_ranges queries
  else begin
    let slots = Array.make (List.length queries) [] in
    let groups : group list ref = ref [] in
    List.iteri
      (fun slot lists ->
        if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then
          slots.(slot) <- [] (* the empty-range guard of [compute_ranges] *)
        else
          match Scan_packed.sort_by_length lists with
          | [] -> slots.(slot) <- []
          | ((dpk, dlo, dhi) as d) :: others -> (
            let same (pk, lo, hi) = pk == dpk && lo = dlo && hi = dhi in
            match List.find_opt (fun g -> same g.g_driver) !groups with
            | Some g -> g.g_queries <- (slot, others) :: g.g_queries
            | None -> groups := { g_driver = d; g_queries = [ (slot, others) ] } :: !groups))
      queries;
    let groups = List.rev !groups in
    (* The pool, resolved once: an explicitly passed pool, else the
       global one — created only when there are groups to fan out
       over, peeked otherwise so a lone coalesced group in a CLI
       process never spawns domains just to chunk. *)
    let pool =
      match pool with
      | Some p -> Some p
      | None -> (
        match (groups, chunks) with
        | ([] | [ _ ]), None -> Xr_pool.peek_global ()
        | _ -> Some (Xr_pool.global ()))
    in
    (* Split bounds for a multi-member group, or [None] to run the
       single shared pass. Cost-gated exactly like {!Parallel}: free
       length estimate first, then the measured curve. *)
    let group_bounds ~driver:((_, dlo, dhi) as d) partners =
      match pool with
      | Some p when Xr_pool.size p > 1 || chunks <> None -> (
        match chunks with
        | Some c when c >= 2 ->
          (* test hook: force an equal-count chunking *)
          let len = dhi - dlo in
          let c = min c len in
          if c <= 1 then None
          else Some (p, Array.init (c + 1) (fun i -> dlo + (i * len / c)))
        | Some _ -> None
        | None ->
          let thr = float_of_int (Parallel.threshold ()) in
          if Parallel.estimate_driver ~driver:d partners < thr then None
          else begin
            let m = Parallel.measure_driver ~pool:p ~driver:d partners in
            let cost = Parallel.total_cost m in
            if cost < thr then None
            else begin
              let b =
                Parallel.chunk_bounds m
                  ~chunks:(Parallel.auto_chunks ~pool_size:(Xr_pool.size p) ~total_cost:cost)
              in
              if Array.length b <= 2 then None else Some (p, b)
            end
          end)
      | _ -> None
    in
    let run_group g =
      match g.g_queries with
      | [ (slot, others) ] ->
        (* singleton: the ordinary dispatching kernel (tiny fallback
           included) — nothing to amortize *)
        let driver = g.g_driver in
        slots.(slot) <- Scan_packed.compute_ranges (driver :: others)
      | members ->
        let members = List.rev members in
        let arr = Array.of_list (List.map snd members) in
        let dpk, dlo, dhi = g.g_driver in
        let out =
          match root with
          | Some prefix
            when Array.length prefix > 0
                 &&
                 let a, b = P.prefix_slice_sub dpk ~lo:0 prefix (Array.length prefix) in
                 a = dlo && b = dhi ->
            (* the driver range is exactly [prefix]'s subtree (the
               per-partition refinement case): hand the shared pass the
               full list and let the bitsliced mask carve the partition
               out — the guard above keeps this unconditionally equal
               to scanning [dlo, dhi) directly. Masked passes stay
               unchunked: the mask already prunes most entries. *)
            run ~root:(prefix, Array.length prefix) ~driver:(dpk, 0, P.length dpk) arr ()
          | _ -> (
            match group_bounds ~driver:g.g_driver (List.concat_map snd members) with
            | Some (p, bounds) -> run_chunked p ~driver:(dpk, dlo, dhi) arr ~bounds
            | None -> run ~driver:g.g_driver arr ())
        in
        List.iteri (fun i (slot, _) -> slots.(slot) <- out.(i)) members
    in
    (match (groups, pool) with
    | ([] | [ _ ]), _ | _, None -> List.iter run_group groups
    | _, Some pool ->
      if Xr_pool.size pool <= 1 then List.iter run_group groups
      else
        let garr = Array.of_list groups in
        Xr_pool.run pool
          (Array.init (Array.length garr) (fun i -> fun () -> run_group garr.(i))));
    Array.to_list slots
  end
