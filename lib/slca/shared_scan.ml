open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed
module Bitslice = Xr_index.Bitslice

let enabled_v = Atomic.make true

let enabled () = Atomic.get enabled_v

let set_enabled b = Atomic.set enabled_v b

let batches_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_shared_scan_batches_total"
       ~help:"Shared driver passes run by the batched SLCA kernel" ())

let members_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_shared_scan_members_total"
       ~help:"Batch members fed by shared driver passes" ())

let saved_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_shared_scan_saved_decodes_total"
       ~help:"Driver entry decodes avoided by sharing a pass across batch members" ())

let width_h =
  Xr_obs.Registry.Histogram.no_labels
    (Xr_obs.Registry.Histogram.family ~name:"xr_shared_scan_width"
       ~help:"Members per shared driver pass"
       ~buckets:[| 2.; 4.; 8.; 16.; 32.; 64.; 128. |] ())

let batches () = Xr_obs.Registry.Counter.value batches_h

let members_fed () = Xr_obs.Registry.Counter.value members_h

let saved_decodes () = Xr_obs.Registry.Counter.value saved_h

(* One batch member: its partner cursors plus a private copy of the
   scan kernel's held-candidate automaton (see {!Scan_packed} for why
   one held candidate suffices). The driver entry arrives predecoded in
   the shared scratch buffer; everything past that decode is exactly
   the member's solo [scan_chunk] step. *)
type member = {
  cursors : PC.t array;
  cur : int array;
  mutable cur_len : int;
  mutable results : Dewey.t list;
}

let step m scratch vd =
  let depth = ref vd in
  let ncur = Array.length m.cursors in
  for ci = 0 to ncur - 1 do
    let d = PC.match_probe (Array.unsafe_get m.cursors ci) scratch vd in
    if d < !depth then depth := d
  done;
  let d = !depth in
  if d >= 0 then
    if m.cur_len < 0 then begin
      Array.blit scratch 0 m.cur 0 d;
      m.cur_len <- d
    end
    else begin
      let lim = if d < m.cur_len then d else m.cur_len in
      let i = ref 0 in
      while !i < lim && Array.unsafe_get m.cur !i = Array.unsafe_get scratch !i do
        incr i
      done;
      if !i = d then () (* ancestor of (or equal to) the held candidate *)
      else begin
        if !i < m.cur_len then m.results <- Array.sub m.cur 0 m.cur_len :: m.results;
        (* else: extension of the held candidate — replace silently *)
        Array.blit scratch 0 m.cur 0 d;
        m.cur_len <- d
      end
    end

let run ?root ~driver:(driver, dlo, dhi) member_lists () =
  let n = Array.length member_lists in
  let maxd =
    Array.fold_left
      (fun acc others ->
        List.fold_left (fun acc (l, _, _) -> max acc (P.max_depth l)) acc others)
      (P.max_depth driver) member_lists
  in
  let maxd = max maxd 1 in
  let scratch = Array.make maxd 0 in
  let members =
    Array.map
      (fun others ->
        {
          cursors = Array.of_list (List.map (fun (l, lo, hi) -> PC.make_sub l ~lo ~hi) others);
          cur = Array.make maxd 0;
          cur_len = -1;
          results = [];
        })
      member_lists
  in
  let scan_entry vi =
    let vd = P.blit_entry driver vi scratch in
    for i = 0 to n - 1 do
      step (Array.unsafe_get members i) scratch vd
    done
  in
  let entries =
    match root with
    | None ->
      for vi = dlo to dhi - 1 do
        scan_entry vi
      done;
      dhi - dlo
    | Some (prefix, plen) ->
      (* bitsliced prefix filter: one word of mask carries 63 subtree
         verdicts, and the pass only touches selected driver entries *)
      let mask = Bitslice.under driver ~lo:dlo ~hi:dhi ~prefix ~plen in
      Bitslice.iter mask scan_entry;
      Bitslice.cardinal mask
  in
  Xr_obs.Registry.Counter.inc batches_h;
  Xr_obs.Registry.Counter.add members_h n;
  Xr_obs.Registry.Counter.add saved_h (max 0 ((n - 1) * entries));
  Xr_obs.Registry.Histogram.observe width_h (float_of_int n);
  Array.map
    (fun m ->
      if m.cur_len >= 0 then m.results <- Array.sub m.cur 0 m.cur_len :: m.results;
      List.rev m.results)
    members

(* Group queries by driver identity — same packed buffer (physically),
   same entry range. Batches are small (a request's candidate set or
   the admission window), so the quadratic association walk stays
   cheaper than hashing the triples. *)
type group = {
  g_driver : P.t * int * int;
  mutable g_queries : (int * (P.t * int * int) list) list; (* slot, partner lists; reversed *)
}

let run_batch ?pool ?root (queries : (P.t * int * int) list list) =
  if not (Atomic.get enabled_v) then List.map Scan_packed.compute_ranges queries
  else begin
    let slots = Array.make (List.length queries) [] in
    let groups : group list ref = ref [] in
    List.iteri
      (fun slot lists ->
        if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then
          slots.(slot) <- [] (* the empty-range guard of [compute_ranges] *)
        else
          match Scan_packed.sort_by_length lists with
          | [] -> slots.(slot) <- []
          | ((dpk, dlo, dhi) as d) :: others -> (
            let same (pk, lo, hi) = pk == dpk && lo = dlo && hi = dhi in
            match List.find_opt (fun g -> same g.g_driver) !groups with
            | Some g -> g.g_queries <- (slot, others) :: g.g_queries
            | None -> groups := { g_driver = d; g_queries = [ (slot, others) ] } :: !groups))
      queries;
    let run_group g =
      match g.g_queries with
      | [ (slot, others) ] ->
        (* singleton: the ordinary dispatching kernel (tiny fallback
           included) — nothing to amortize *)
        let driver = g.g_driver in
        slots.(slot) <- Scan_packed.compute_ranges (driver :: others)
      | members ->
        let members = List.rev members in
        let arr = Array.of_list (List.map snd members) in
        let dpk, dlo, dhi = g.g_driver in
        let out =
          match root with
          | Some prefix
            when Array.length prefix > 0
                 &&
                 let a, b = P.prefix_slice_sub dpk ~lo:0 prefix (Array.length prefix) in
                 a = dlo && b = dhi ->
            (* the driver range is exactly [prefix]'s subtree (the
               per-partition refinement case): hand the shared pass the
               full list and let the bitsliced mask carve the partition
               out — the guard above keeps this unconditionally equal
               to scanning [dlo, dhi) directly *)
            run ~root:(prefix, Array.length prefix) ~driver:(dpk, 0, P.length dpk) arr ()
          | _ -> run ~driver:g.g_driver arr ()
        in
        List.iteri (fun i (slot, _) -> slots.(slot) <- out.(i)) members
    in
    let groups = List.rev !groups in
    (match groups with
    | [] | [ _ ] -> List.iter run_group groups
    | _ -> (
      let pool = match pool with Some p -> p | None -> Xr_pool.global () in
      if Xr_pool.size pool <= 1 then List.iter run_group groups
      else
        let garr = Array.of_list groups in
        Xr_pool.run pool
          (Array.init (Array.length garr) (fun i -> fun () -> run_group garr.(i)))));
    Array.to_list slots
  end
