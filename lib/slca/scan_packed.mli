(** Scan-Eager SLCA over packed posting lists.

    Same algorithm as {!Scan_eager} — drive on the rarest keyword, probe
    the closest matches in the other lists — but operating directly on
    the varint-encoded label buffers of {!Xr_xml.Dewey.Packed}: the only
    label decoded per driver step is the driver entry itself (into a
    reused scratch buffer), the other lists are compared in encoded form
    via galloping {!Xr_index.Cursor.Packed} seeks. Non-smallest
    candidates are pruned online against a single held candidate
    (correct because driver order constrains the candidate stream — see
    the implementation), so there is no sort-based post-pass. The inner
    loop allocates nothing; only actual results are materialized. *)

open Xr_xml

val compute : Dewey.Packed.t list -> Dewey.t list

(** [compute_ranges lists] restricts each packed list to the half-open
    entry range paired with it — the per-partition SLCA step of the
    refinement algorithms, which slice every keyword list to one subtree
    without copying anything. An empty range yields []. *)
val compute_ranges : (Dewey.Packed.t * int * int) list -> Dewey.t list

(** [scan_chunk ~driver:(l, dlo, dhi) ~others] runs the scan kernel over
    the driver entries [dlo..dhi-1] only, probing [others] over their
    full attached ranges, and returns the chunk's surviving candidates
    in candidate order — the emitted results plus the held candidate
    sealed at chunk end. For the whole driver range this is exactly
    {!compute_ranges}; over a partition of the range it is the parallel
    kernel's per-chunk step, whose outputs {!Parallel} merges by
    replaying the same online prune across chunk boundaries. Assumes
    every range is well-formed; performs no driver selection.

    [preseek] (default false) pre-positions the partner cursors on the
    chunk's first driver entry before scanning — purely positional (the
    first probe lands the cursor in the same place), so results never
    depend on it; interior parallel chunks set it to start probing near
    their data instead of galloping in from the range base. *)
val scan_chunk :
  ?preseek:bool ->
  driver:(Dewey.Packed.t * int * int) ->
  others:(Dewey.Packed.t * int * int) list ->
  unit ->
  Dewey.t list

(** [sort_by_length lists] orders [lists] by ascending range length,
    stably — the driver-selection rule shared by the sequential and
    parallel kernels (head = driver). *)
val sort_by_length :
  (Dewey.Packed.t * int * int) list -> (Dewey.Packed.t * int * int) list

(** {2 Tiny-driver fallback}

    Below [tiny_threshold] driver entries, {!compute_ranges} dispatches
    to a cursor-free kernel ({!scan_tiny}): on highly selective queries
    the general kernel's cursor setup and probe-counter folds outweigh
    the scan itself. Both kernels produce byte-identical results; the
    query-plan compiler ({!Xr_batch.Plan}) records which one a query
    resolves to. *)

val default_tiny_threshold : int

val tiny_threshold : unit -> int

val set_tiny_threshold : int -> unit

(** Scans dispatched to the tiny kernel since startup
    ([xr_slca_tiny_scans_total]). *)
val tiny_scans : unit -> int

(** [probe pk ~lo ~hi pos ci v vd] is the tiny kernel's partner probe:
    gallop-then-binary-search the range [\[lo, hi)] of [pk] for the
    first entry [>= v] (depth [vd]) starting from position [pos.(ci)]
    (updated in place, monotone over ascending [v]), returning the
    maximum common-prefix length of [v] against the range — achieved at
    the insertion point or its left neighbor ([-1] on an empty range).
    The probe sequence coincides step for step with
    [Cursor.Packed.match_probe]. Also the per-range primitive of the
    DAG kernel ({!Scan_dag}), whose per-keyword partner depth is the
    max of this over the keyword's class ranges. *)
val probe :
  Dewey.Packed.t -> lo:int -> hi:int -> int array -> int -> Dewey.t -> int -> int

(** [scan_tiny ~driver ~others ()] is {!scan_chunk} computed with bare
    binary searches over position arrays instead of galloping cursors —
    same candidate stream, same online prune, no per-scan setup cost.
    Exposed for the differential tests. *)
val scan_tiny :
  driver:(Dewey.Packed.t * int * int) ->
  others:(Dewey.Packed.t * int * int) list ->
  unit ->
  Dewey.t list
