(** Scan-Eager SLCA over packed posting lists.

    Same algorithm as {!Scan_eager} — drive on the rarest keyword, probe
    the closest matches in the other lists — but operating directly on
    the varint-encoded label buffers of {!Xr_xml.Dewey.Packed}: the only
    label decoded per driver step is the driver entry itself (into a
    reused scratch buffer), the other lists are compared in encoded form
    via galloping {!Xr_index.Cursor.Packed} seeks. Non-smallest
    candidates are pruned online against a single held candidate
    (correct because driver order constrains the candidate stream — see
    the implementation), so there is no sort-based post-pass. The inner
    loop allocates nothing; only actual results are materialized. *)

open Xr_xml

val compute : Dewey.Packed.t list -> Dewey.t list

(** [compute_ranges lists] restricts each packed list to the half-open
    entry range paired with it — the per-partition SLCA step of the
    refinement algorithms, which slice every keyword list to one subtree
    without copying anything. An empty range yields []. *)
val compute_ranges : (Dewey.Packed.t * int * int) list -> Dewey.t list
