(** Stack-based SLCA over packed posting lists.

    Same sort-merge traversal as {!Stack_slca}, but the per-node stack
    entries are replaced by preallocated witness/mark tables indexed by
    prefix length, and the multiway merge compares cursor heads directly
    in the varint-encoded form of {!Xr_xml.Dewey.Packed} — only the
    winning head of each merge step is decoded, into a reused scratch
    buffer. The steady-state loop allocates nothing; only emitted SLCAs
    are materialized. *)

open Xr_xml

val compute : Dewey.Packed.t list -> Dewey.t list

(** [compute_ranges lists] restricts each packed list to the half-open
    entry range paired with it (see {!Scan_packed.compute_ranges}). *)
val compute_ranges : (Dewey.Packed.t * int * int) list -> Dewey.t list
