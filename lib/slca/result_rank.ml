open Xr_xml
module Stats = Xr_index.Stats

let score stats ~query dewey =
  let doc = Stats.doc stats in
  match Doc.find doc dewey with
  | None -> 0.
  | Some node ->
    let lo, hi = Doc.subtree_node_range doc dewey in
    let size = hi - lo in
    if size = 0 then 0.
    else begin
      let tf kw =
        let total = ref 0 in
        for i = lo to hi - 1 do
          List.iter
            (fun (k, c) -> if k = kw then total := !total + c)
            doc.Doc.nodes.(i).Doc.keywords
        done;
        !total
      in
      let n_t = float_of_int (max 1 (Stats.node_count stats node.Doc.path)) in
      let raw =
        List.fold_left
          (fun acc kw ->
            let f = Stats.df stats ~path:node.Doc.path ~kw in
            let idf = max 0. (log (n_t /. (1. +. float_of_int f))) in
            (* a keyword shared by every T-subtree still carries some
               evidence of the match; keep a small floor *)
            acc +. (log (1. +. float_of_int (tf kw)) *. (0.1 +. idf)))
          0. query
      in
      raw /. log (1. +. float_of_int size)
    end

let rank stats ~query slcas =
  Xr_obs.Tracing.with_span "refine.rank" (fun () ->
      let scored = List.map (fun d -> (d, score stats ~query d)) slcas in
      List.stable_sort
        (fun (d1, s1) (d2, s2) ->
          match Float.compare s2 s1 with 0 -> Dewey.compare d1 d2 | c -> c)
        scored)
