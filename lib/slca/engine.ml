open Xr_xml
module Inverted = Xr_index.Inverted

type algorithm =
  | Stack
  | Scan_eager
  | Indexed_lookup
  | Multiway
  | Stack_packed
  | Scan_packed
  | Scan_parallel

let all = [ Stack; Scan_eager; Indexed_lookup; Multiway; Stack_packed; Scan_packed; Scan_parallel ]

let name = function
  | Stack -> "stack"
  | Scan_eager -> "scan-eager"
  | Indexed_lookup -> "indexed-lookup"
  | Multiway -> "multiway"
  | Stack_packed -> "stack-packed"
  | Scan_packed -> "scan-packed"
  | Scan_parallel -> "scan-parallel"

let of_name = function
  | "stack" -> Some Stack
  | "scan-eager" -> Some Scan_eager
  | "indexed-lookup" -> Some Indexed_lookup
  | "multiway" -> Some Multiway
  | "stack-packed" -> Some Stack_packed
  | "scan-packed" -> Some Scan_packed
  | "scan-parallel" | "parallel" -> Some Scan_parallel
  | _ -> None

let is_packed = function
  | Stack_packed | Scan_packed | Scan_parallel -> true
  | Stack | Scan_eager | Indexed_lookup | Multiway -> false

let packed_partner = function
  | Stack | Stack_packed -> Stack_packed
  | Scan_eager | Indexed_lookup | Multiway | Scan_packed -> Scan_packed
  | Scan_parallel -> Scan_parallel

(* The same results without fork/join: what a pool worker should run
   when the fan-out already happened one level up. *)
let sequential_partner = function
  | Scan_parallel -> Scan_packed
  | (Stack | Scan_eager | Indexed_lookup | Multiway | Stack_packed | Scan_packed) as a -> a

let pack_list (l : Inverted.posting array) =
  Dewey.Packed.of_array (Array.map (fun p -> p.Inverted.dewey) l)

(* Kernels ignore the path component, so a list-based algorithm can run
   on packed input through a throwaway materialization with dummy paths. *)
let unpack_list pk =
  Array.init (Dewey.Packed.length pk) (fun i ->
      { Inverted.dewey = Dewey.Packed.get pk i; path = 0 })

let compute_raw alg lists =
  match alg with
  | Stack -> Stack_slca.compute lists
  | Scan_eager -> Scan_eager.compute lists
  | Indexed_lookup -> Indexed_lookup.compute lists
  | Multiway -> Multiway.compute lists
  | Stack_packed -> Stack_packed.compute (List.map pack_list lists)
  | Scan_packed -> Scan_packed.compute (List.map pack_list lists)
  | Scan_parallel -> Parallel.compute (List.map pack_list lists)

let compute_packed_raw alg lists =
  match alg with
  | Stack_packed -> Stack_packed.compute lists
  | Scan_packed -> Scan_packed.compute lists
  | Scan_parallel -> Parallel.compute lists
  | Stack | Scan_eager | Indexed_lookup | Multiway ->
    compute_raw alg (List.map unpack_list lists)

let unpack_range (pk, lo, hi) =
  Array.init (hi - lo) (fun i -> { Inverted.dewey = Dewey.Packed.get pk (lo + i); path = 0 })

(* Every public entry wraps the dispatch in one [slca.scan] span (a
   single [Atomic.get] when tracing is off); the [_raw] split keeps the
   internal cross-calls from nesting duplicate spans. *)
let scan_span f = Xr_obs.Tracing.with_span "slca.scan" f

let compute alg lists = scan_span (fun () -> compute_raw alg lists)

let compute_packed alg lists = scan_span (fun () -> compute_packed_raw alg lists)

let compute_ranges alg ranges =
  scan_span (fun () ->
      match alg with
      | Stack_packed -> Stack_packed.compute_ranges ranges
      | Scan_packed -> Scan_packed.compute_ranges ranges
      | Scan_parallel -> Parallel.compute_ranges ranges
      | Stack | Scan_eager | Indexed_lookup | Multiway ->
        compute_raw alg (List.map unpack_range ranges))

(* On a DAG-backed index the scan engines answer eligible queries
   natively on the compressed expansion (identical results by
   construction — see {!Scan_dag}); everything else falls through to
   the memoized merged lists, where every algorithm behaves exactly as
   on a flat index. [Stack_packed] always takes the merged path: it is
   benchmarked as a distinct kernel and must keep measuring itself. *)
let query_ids alg (index : Xr_index.Index.t) ids =
  scan_span (fun () ->
      match Inverted.dag index.inverted with
      | Some dag
        when (match alg with Scan_packed | Scan_parallel -> true | _ -> false)
             && Scan_dag.eligible dag ids -> Scan_dag.compute dag ids
      | _ ->
        if is_packed alg then begin
          (* DAG backing: merge the missing flat views concurrently
             before the (inherently serial) list mapping below *)
          Inverted.prefetch index.inverted ids;
          compute_packed_raw alg
            (List.map (fun kw -> (Inverted.packed_list index.inverted kw).Inverted.labels) ids)
        end
        else compute_raw alg (List.map (fun kw -> Inverted.list index.inverted kw) ids))

let query alg (index : Xr_index.Index.t) keywords =
  (* duplicate keywords add no constraint under conjunctive semantics *)
  let distinct = List.sort_uniq String.compare (List.map Token.normalize keywords) in
  let rec resolve acc = function
    | [] -> Some (List.rev acc)
    | k :: rest -> (
      match Doc.keyword_id index.doc k with
      | Some kw -> resolve (kw :: acc) rest
      | None -> None)
  in
  match resolve [] distinct with
  | None -> []
  | Some ids -> query_ids alg index ids
