(** Domain-parallel scan-packed SLCA.

    Range-partitions the driver (rarest) list into contiguous chunks,
    scans each chunk on a {!Xr_pool} worker with
    {!Scan_packed.scan_chunk}, and merges the per-chunk survivors by
    replaying the online non-smallest prune across chunk boundaries.
    Output is byte-identical to {!Scan_packed.compute_ranges} for every
    chunking (asserted by the qcheck property suite and the parallel
    benchmark).

    Queries whose driver range is shorter than the threshold — and any
    run on a pool of size 1 — fall back to the sequential kernel, so
    small queries never pay fork/join overhead. *)

open Xr_xml

(** [compute_ranges lists] — semantics of
    {!Scan_packed.compute_ranges}. [?pool] defaults to
    {!Xr_pool.global} (only consulted once the threshold check has
    passed, so sequential runs never create it); [?chunks] forces an
    explicit chunk count ([>= 2] parallelizes even under the threshold
    — the test suite's adversarial-split hook, [<= 1] forces
    sequential); [?threshold] overrides {!threshold} for this call. *)
val compute_ranges :
  ?pool:Xr_pool.t ->
  ?chunks:int ->
  ?threshold:int ->
  (Dewey.Packed.t * int * int) list ->
  Dewey.t list

val compute :
  ?pool:Xr_pool.t -> ?chunks:int -> ?threshold:int -> Dewey.Packed.t list -> Dewey.t list

(** {1 Sequential-fallback threshold}

    Minimum driver-range length (in postings) for a parallel run;
    below it the sequential kernel runs and the fallback counter
    ticks. Process-wide; the server sets it from
    [--parallel-threshold]. *)

val default_threshold : int

val threshold : unit -> int

val set_threshold : int -> unit

(** {1 Fallback counter} *)

val fallbacks : unit -> int
(** Sequential fallbacks taken so far (threshold underruns, size-1
    pools, degenerate chunkings) — exposed through the server's
    [/stats] alongside the pool counters. *)

val note_fallback : unit -> unit
(** Tick the fallback counter; the refinement layer records its own
    below-threshold decisions here. *)
