(** Domain-parallel scan-packed SLCA with cost-modeled chunking.

    Range-partitions the driver (rarest) list into contiguous chunks,
    scans each chunk on a {!Xr_pool} worker with
    {!Scan_packed.scan_chunk}, and merges the per-chunk survivors by
    replaying the online non-smallest prune across chunk boundaries.
    Output is byte-identical to {!Scan_packed.compute_ranges} for
    every contiguous partition (asserted by the qcheck property suite
    and the parallel benchmark), so where the splits land is a pure
    performance decision — and it is made by a cost model rather than
    by equal driver counts:

    - {!measure} gallops every partner cursor to a grid of grain
      boundaries over the driver range (concurrently, one pool task
      per partner list) and charges each grain its driver decodes plus
      a logarithmic galloping term per partner for the postings the
      cursor passes. The result ({!masses}) maps cumulative modeled
      cost onto driver positions.
    - {!chunk_bounds} splits where the cumulative cost crosses k/n of
      the total, so chunks carry equal {e work} even when the partner
      mass is skewed into one corner of the driver range.
    - The same model drives the sequential-fallback gate: a query
      whose modeled cost is below {!threshold} — checked first against
      a free upper bound from the range lengths ({!estimate}), then
      against the measured total — runs sequentially and never pays
      fork/join overhead. Any run on a pool of size 1 is sequential
      regardless. *)

open Xr_xml

(** {1 Posting masses and the cost model} *)

type masses
(** Measured cumulative cost over a grain grid of the driver range.
    Valid only for the exact sorted range list it was measured from
    (same packed buffers, same bounds) — the batch plan cache stores
    one per compiled plan and generation. *)

val measure :
  ?pool:Xr_pool.t ->
  ?grains:int ->
  (Dewey.Packed.t * int * int) list ->
  masses option
(** [measure lists] sorts [lists] exactly as the kernels do (stable,
    by range length), gallops each partner cursor to [grains]
    (default 64) equal-count boundaries of the driver range, and
    returns the cumulative cost curve. Read-only: cursors are private,
    nothing is decoded. [None] on empty or degenerate input. With a
    [pool] of size [> 1] and at least two partners, partner gallops
    run concurrently (one task per partner list). *)

val measure_driver :
  ?pool:Xr_pool.t ->
  ?grains:int ->
  driver:(Dewey.Packed.t * int * int) ->
  (Dewey.Packed.t * int * int) list ->
  masses
(** As {!measure} for a caller that already knows the driver — the
    shared-scan batch kernel, whose groups fix the driver up front. *)

val estimate : (Dewey.Packed.t * int * int) list -> float
(** Upper bound of the measured total cost, from range lengths alone
    (free: no cursor moves). The first stage of the cost gate. *)

val estimate_driver :
  driver:(Dewey.Packed.t * int * int) -> (Dewey.Packed.t * int * int) list -> float

val total_cost : masses -> float

val grain_count : masses -> int

val grain_bounds : masses -> int array
(** The grain grid: driver entry indices, strictly increasing, first =
    range start, last = range end (a copy — EXPLAIN renders it). *)

val cost_curve : masses -> float array
(** Cumulative modeled cost at each grain boundary (a copy, same
    length as {!grain_bounds}; last element = {!total_cost}). *)

val chunk_bounds : masses -> chunks:int -> int array
(** [chunk_bounds m ~chunks] is a partition of the measured driver
    range [[| b0; ...; bn |]] ([b0] = range start, [bn] = range end,
    strictly increasing): split points sit on the first grain boundary
    past each k/n crossing of the cumulative cost. May return fewer
    than [chunks] chunks when heavy grains absorb several crossings —
    never an empty or overlapping chunk. *)

val auto_chunks : pool_size:int -> total_cost:float -> int
(** Target chunk count: [4 * pool_size], capped so no chunk models
    below ~2k cost units, floored at 2. *)

val default_grains : int

(** {1 The parallel kernel} *)

(** [compute_ranges lists] — semantics of
    {!Scan_packed.compute_ranges}. [?pool] defaults to
    {!Xr_pool.global} (only consulted once the cost gate has passed,
    so sequential runs never create it); [?chunks] forces an explicit
    equal-count chunking ([>= 2] parallelizes even under the gate —
    the test suite's adversarial-split hook, [<= 1] forces
    sequential); [?threshold] overrides {!threshold} for this call;
    [?masses] supplies a pre-measured cost curve (the plan compiler's
    cache) and must come from {!measure} over the same ranges. *)
val compute_ranges :
  ?pool:Xr_pool.t ->
  ?chunks:int ->
  ?threshold:int ->
  ?masses:masses ->
  (Dewey.Packed.t * int * int) list ->
  Dewey.t list

val compute :
  ?pool:Xr_pool.t -> ?chunks:int -> ?threshold:int -> Dewey.Packed.t list -> Dewey.t list

val prune_merge : Dewey.t list array -> Dewey.t list
(** Replay the held-candidate prune over concatenated per-chunk
    survivor streams — the boundary fix-up. Exposed for the
    shared-scan batch kernel, whose chunked groups merge each member's
    survivors the same way. *)

(** {1 Sequential-fallback cost gate}

    Minimum modeled query cost (roughly: postings decoded plus probe
    work, see {!measure}) for a parallel run; below it the sequential
    kernel runs and the fallback counter ticks. Process-wide; the
    server sets it from [--parallel-threshold]. *)

val default_threshold : int

val threshold : unit -> int

val set_threshold : int -> unit

(** {1 Fallback counter} *)

val fallbacks : unit -> int
(** Sequential fallbacks taken so far (cost-gate underruns, size-1
    pools, degenerate chunkings) — exposed through the server's
    [/stats] alongside the pool counters. *)

val note_fallback : unit -> unit
(** Tick the fallback counter; the refinement layer records its own
    below-threshold decisions here. *)
