(** SLCA directly over the DAG-compressed expansion — no per-keyword
    merge, no decompression. The driver keyword's class ranges are
    merged on the fly; partner keywords are probed per class range with
    {!Scan_packed.probe}, the partner depth being the max over ranges.
    Produces exactly {!Scan_packed}'s results on the merged lists (see
    the implementation for the argument); {!Xr_slca.Engine.query_ids}
    dispatches here when the index is DAG-backed and {!eligible}.

    Per scan this pays a constant factor over a resident merged list
    (O(classes) work per candidate), so eligibility is capped at small
    lists: the native path exists to serve the long tail of rare
    keywords without materializing their flat lists into the merge
    cache, not to beat the merged scan on hot queries. *)

open Xr_xml

val default_class_limit : int

val default_postings_limit : int

(** The dispatch gate, part one: every query keyword must occur in at
    most this many distinct subtree classes (the kernel's per-candidate
    cost driver). *)
val class_limit : unit -> int

val set_class_limit : int -> unit

(** The dispatch gate, part two: every query keyword must have at most
    this many postings. Beyond it, merging once and scanning the flat
    list is cheaper than repeated native scans — the native path is a
    memory trade for the long tail, not a hot-path kernel. *)
val postings_limit : unit -> int

val set_postings_limit : int -> unit

(** Scans answered natively on the expansion since startup
    ([xr_slca_dag_native_scans_total]). *)
val native_scans : unit -> int

(** [eligible dag ids] — every keyword present with at most
    {!class_limit} classes and {!postings_limit} postings. *)
val eligible : Xr_dag.t -> Interner.id list -> bool

(** [compute dag ids] is the SLCA result set of the conjunctive query
    [ids], identical to running {!Scan_packed.compute} over the merged
    flat lists. *)
val compute : Xr_dag.t -> Interner.id list -> Dewey.t list
