open Xr_xml
module P = Dewey.Packed

(* Chunked scan-packed over the domain pool.

   The driver range is cut into contiguous equal-count chunks; each
   chunk runs {!Scan_packed.scan_chunk} on a pool worker into its own
   slot of a preallocated result array (chunk cursors pre-position on
   their split point with encoded-form galloping seeks, so nothing is
   decoded to find the splits). The per-chunk survivor lists are then
   merged by replaying the online non-smallest prune across the
   concatenation — the boundary fix-up.

   Why replaying the same prune is exactly right: a chunk's survivors
   are, in order, its sealed results followed by its final held
   candidate. Concatenating the chunks' survivor streams in chunk order
   yields a subsequence of the full sequential candidate stream (chunk
   scans see exactly the candidates the sequential scan derives from
   their driver entries, because probe results depend only on the entry
   values, not on cursor history). The one-held-candidate prune is
   insensitive to dropping candidates that a prefix of the stream
   already discarded — a discarded candidate is an ancestor of the then
   held one and would be discarded again later — so running it over the
   concatenated survivors produces the same output as over the full
   stream: the sequential result, byte for byte. *)

let default_threshold = 4096

let threshold_v = Atomic.make default_threshold

let threshold () = Atomic.get threshold_v

let set_threshold n = Atomic.set threshold_v (max 0 n)

let fallbacks_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_slca_fallbacks_total"
       ~help:"Parallel SLCA queries that ran sequentially (below threshold or pool of 1)" ())

let fallbacks () = Xr_obs.Registry.Counter.value fallbacks_h

let note_fallback () = Xr_obs.Registry.Counter.inc fallbacks_h

(* The merge: the same held-candidate automaton as the scan kernel's
   inner prune, over already-materialized labels. *)
let prune_merge (chunks : Dewey.t list array) =
  let held = ref [||] in
  let have = ref false in
  let out = ref [] in
  let consider x =
    if not !have then begin
      held := x;
      have := true
    end
    else begin
      let h = !held in
      let lx = Array.length x and lh = Array.length h in
      let lim = if lx < lh then lx else lh in
      let i = ref 0 in
      while !i < lim && Array.unsafe_get h !i = Array.unsafe_get x !i do
        incr i
      done;
      if !i = lx then () (* ancestor of (or equal to) the held candidate *)
      else begin
        if !i < lh then out := h :: !out;
        (* else: extension of the held candidate — replace silently *)
        held := x
      end
    end
  in
  Array.iter (fun survivors -> List.iter consider survivors) chunks;
  if !have then out := !held :: !out;
  List.rev !out

(* How many chunks to cut the driver range into: enough to keep every
   executor busy with a little slack for stealing imbalance, but never
   chunks so small that fork/join overhead shows. *)
let default_chunks ~pool_size ~driver_len =
  let by_size = driver_len / 2048 in
  let want = 4 * pool_size in
  max 2 (min want by_size)

let compute_ranges ?pool ?chunks ?threshold:thr (lists : (P.t * int * int) list) =
  if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then []
  else
    match Scan_packed.sort_by_length lists with
    | [] -> []
    | (driver, dlo, dhi) :: others ->
      let driver_len = dhi - dlo in
      let thr = match thr with Some t -> t | None -> Atomic.get threshold_v in
      let sequential () =
        note_fallback ();
        (* through the dispatching entry, not [scan_chunk] directly, so
           tiny-driver queries reach the cursor-free fallback kernel
           here too ([lists] re-sorts to the same driver) *)
        Scan_packed.compute_ranges lists
      in
      let parallel pool nchunks =
        let nchunks = min nchunks driver_len in
        if nchunks <= 1 then sequential ()
        else begin
          let slots = Array.make nchunks [] in
          let bound i = dlo + (i * driver_len / nchunks) in
          Xr_pool.run pool
            (Array.init nchunks (fun i ->
                 fun () ->
                  slots.(i) <-
                    Scan_packed.scan_chunk ~preseek:(i > 0)
                      ~driver:(driver, bound i, bound (i + 1))
                      ~others ()));
          Xr_obs.Tracing.with_span "slca.merge" (fun () -> prune_merge slots)
        end
      in
      ( match chunks with
      | Some c when c >= 2 ->
        (* explicit chunk count: parallelize regardless of size — the
           property tests force adversarial splits this way *)
        let pool = match pool with Some p -> p | None -> Xr_pool.global () in
        parallel pool c
      | Some _ -> sequential ()
      | None ->
        if driver_len < thr then sequential ()
        else begin
          let pool = match pool with Some p -> p | None -> Xr_pool.global () in
          let size = Xr_pool.size pool in
          if size <= 1 then sequential ()
          else parallel pool (default_chunks ~pool_size:size ~driver_len)
        end )

let compute ?pool ?chunks ?threshold (lists : P.t list) =
  compute_ranges ?pool ?chunks ?threshold (List.map (fun l -> (l, 0, P.length l)) lists)
