open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

(* Cost-modeled chunked scan-packed over the domain pool.

   The driver range is cut into contiguous chunks; each chunk runs
   {!Scan_packed.scan_chunk} on a pool worker into its own slot of a
   preallocated result array (chunk cursors pre-position on their split
   point with encoded-form galloping seeks, so nothing is decoded to
   find the splits). The per-chunk survivor lists are then merged by
   replaying the online non-smallest prune across the concatenation —
   the boundary fix-up.

   Where the splits land is decided by a cost model, not by equal
   driver counts: {!measure} gallops every partner cursor to a grid of
   grain boundaries over the driver range and charges each grain the
   driver entries it decodes plus a per-partner galloping term for the
   postings the partner cursor passes over. Splitting where the
   *cumulative modeled cost* crosses k/n of the total gives chunks of
   equal work even when the partner mass is skewed into one corner of
   the driver range — the case where equal-count splits left one chunk
   doing nearly all the probing while the rest sat idle. The same
   model powers the sequential-fallback gate: a query whose total
   modeled cost is below {!threshold} never pays fork/join overhead,
   even if its driver range alone looks long.

   Why replaying the same prune is exactly right: a chunk's survivors
   are, in order, its sealed results followed by its final held
   candidate. Concatenating the chunks' survivor streams in chunk order
   yields a subsequence of the full sequential candidate stream (chunk
   scans see exactly the candidates the sequential scan derives from
   their driver entries, because probe results depend only on the entry
   values, not on cursor history). The one-held-candidate prune is
   insensitive to dropping candidates that a prefix of the stream
   already discarded — a discarded candidate is an ancestor of the then
   held one and would be discarded again later — so running it over the
   concatenated survivors produces the same output as over the full
   stream: the sequential result, byte for byte. This holds for ANY
   contiguous partition of the driver range, which is what makes the
   chunking policy a pure performance knob. *)

let default_threshold = 4096

let threshold_v = Atomic.make default_threshold

let threshold () = Atomic.get threshold_v

let set_threshold n = Atomic.set threshold_v (max 0 n)

let fallbacks_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_slca_fallbacks_total"
       ~help:"Parallel SLCA queries that ran sequentially (below the cost gate or pool of 1)" ())

let fallbacks () = Xr_obs.Registry.Counter.value fallbacks_h

let note_fallback () = Xr_obs.Registry.Counter.inc fallbacks_h

(* Estimate-vs-actual audit of the chunking cost model: per chunk, the
   share of measured wall time over the share of modeled cost. A
   well-calibrated model keeps the ratio near 1; sustained mass in the
   outer buckets means the splits are systematically lopsided. *)
let drift_h =
  Xr_obs.Registry.Histogram.no_labels
    (Xr_obs.Registry.Histogram.family ~name:"xr_cost_model_drift_ratio"
       ~help:
         "Per-chunk measured wall-time share over modeled cost share of cost-modeled \
          parallel scans (1.0 = the model predicted this chunk's weight exactly)"
       ~buckets:[| 0.25; 0.5; 0.75; 0.9; 1.1; 1.25; 1.5; 2.; 4. |]
       ())

(* The merge: the same held-candidate automaton as the scan kernel's
   inner prune, over already-materialized labels. *)
let prune_merge (chunks : Dewey.t list array) =
  let held = ref [||] in
  let have = ref false in
  let out = ref [] in
  let consider x =
    if not !have then begin
      held := x;
      have := true
    end
    else begin
      let h = !held in
      let lx = Array.length x and lh = Array.length h in
      let lim = if lx < lh then lx else lh in
      let i = ref 0 in
      while !i < lim && Array.unsafe_get h !i = Array.unsafe_get x !i do
        incr i
      done;
      if !i = lx then () (* ancestor of (or equal to) the held candidate *)
      else begin
        if !i < lh then out := h :: !out;
        (* else: extension of the held candidate — replace silently *)
        held := x
      end
    end
  in
  Array.iter (fun survivors -> List.iter consider survivors) chunks;
  if !have then out := !held :: !out;
  List.rev !out

(* ---- the cost model ----------------------------------------------------- *)

(* Modeled work for [d] driver entries whose probes into one partner
   pass [m] of its postings in total: every entry decodes (the [+. d]
   charged by the caller) and gallops into the partner — O(log jump)
   per probe, [log2 2 = 1] when the cursor never moves. The log keeps
   dense partners honest: a cursor that skips a million postings via
   galloping did ~20 comparisons per probe, not a million. *)
let partner_cost ~d ~m =
  let d = float_of_int d in
  d *. (log (2. +. (float_of_int m /. d)) /. log 2.)

(* Upper bound of the measured cost, from range lengths alone (a
   partner cursor can never pass more postings than its range holds).
   Queries falling below the gate on this estimate skip the
   measurement pass entirely. *)
let estimate_driver ~driver:(_, dlo, dhi) others =
  let d = dhi - dlo in
  List.fold_left
    (fun acc (_, lo, hi) -> acc +. partner_cost ~d ~m:(hi - lo))
    (float_of_int d) others

let estimate (lists : (P.t * int * int) list) =
  if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then 0.
  else
    match Scan_packed.sort_by_length lists with
    | [] -> 0.
    | driver :: others -> estimate_driver ~driver others

(* Measured posting masses over a grain grid: [m_bounds] are driver
   entry indices (strictly increasing, first = dlo, last = dhi),
   [m_cost] the cumulative modeled cost at each boundary. Grains are
   the resolution limit of the splitter — 64 of them cap the
   per-chunk imbalance at ~1.6% of the total even in the worst skew. *)
type masses = {
  m_bounds : int array;
  m_cost : float array;
}

let total_cost m = m.m_cost.(Array.length m.m_cost - 1)

let grain_count m = Array.length m.m_bounds - 1

let grain_bounds m = Array.copy m.m_bounds

let cost_curve m = Array.copy m.m_cost

(* Cumulative modeled cost at driver index [b], interpolating inside a
   grain. Split points from [chunk_bounds] land exactly on grain
   boundaries, so on the audit path this is a lookup. *)
let cost_at m b =
  let g = Array.length m.m_bounds - 1 in
  if b <= m.m_bounds.(0) then 0.
  else if b >= m.m_bounds.(g) then m.m_cost.(g)
  else begin
    let i = ref 1 in
    while m.m_bounds.(!i) < b do
      incr i
    done;
    let i = !i in
    if m.m_bounds.(i) = b then m.m_cost.(i)
    else begin
      let b0 = m.m_bounds.(i - 1) and b1 = m.m_bounds.(i) in
      let frac = float_of_int (b - b0) /. float_of_int (b1 - b0) in
      m.m_cost.(i - 1) +. (frac *. (m.m_cost.(i) -. m.m_cost.(i - 1)))
    end
  end

(* Feed the drift histogram (and the ambient ANALYZE report, if one is
   active) from a completed cost-modeled chunk run. Runs on the caller
   domain after the join — nothing here is on the chunk hot path. *)
let audit_drift m bounds times =
  let total_ns = Array.fold_left ( +. ) 0. times in
  let total = total_cost m in
  if total_ns > 0. && total > 0. then
    Array.iteri
      (fun i t ->
        let modeled = (cost_at m bounds.(i + 1) -. cost_at m bounds.(i)) /. total in
        let measured = t /. total_ns in
        if modeled > 0. then begin
          Xr_obs.Registry.Histogram.observe drift_h (measured /. modeled);
          Xr_obs.Analyze.note_chunk
            { ck_index = i; ck_modeled = modeled; ck_measured = measured; ck_ns = t }
        end)
      times

let default_grains = 64

let measure_driver ?pool ?(grains = default_grains) ~driver:((driver, dlo, dhi) : P.t * int * int)
    (others : (P.t * int * int) list) =
  let driver_len = dhi - dlo in
  let g = max 1 (min grains driver_len) in
  let bounds = Array.init (g + 1) (fun i -> dlo + (i * driver_len / g)) in
  let others = Array.of_list others in
  let np = Array.length others in
  let pos = Array.make_matrix np (g + 1) 0 in
  let fill p =
    let pk, lo, hi = others.(p) in
    let c = PC.make_sub pk ~lo ~hi in
    pos.(p).(0) <- lo;
    for i = 1 to g do
      (* the last boundary gallops to the final driver entry, not past
         the partner's tail — postings beyond the last probe are never
         touched by the scan and must not be charged to the last chunk *)
      let target = if bounds.(i) < dhi then bounds.(i) else dhi - 1 in
      PC.seek_geq_entry c driver target;
      pos.(p).(i) <- PC.position c
    done
  in
  (* the cross-list axis: each partner's boundary gallop is
     independent, so wide queries position their cursors concurrently *)
  (match pool with
  | Some pool when np >= 2 && Xr_pool.size pool > 1 ->
    Xr_pool.run pool (Array.init np (fun p () -> fill p))
  | _ ->
    for p = 0 to np - 1 do
      fill p
    done);
  let cost = Array.make (g + 1) 0. in
  for i = 1 to g do
    let d = bounds.(i) - bounds.(i - 1) in
    let w = ref (float_of_int d) in
    for p = 0 to np - 1 do
      w := !w +. partner_cost ~d ~m:(pos.(p).(i) - pos.(p).(i - 1))
    done;
    cost.(i) <- cost.(i - 1) +. !w
  done;
  { m_bounds = bounds; m_cost = cost }

let measure ?pool ?grains (lists : (P.t * int * int) list) =
  if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then None
  else
    match Scan_packed.sort_by_length lists with
    | [] -> None
    | driver :: others -> Some (measure_driver ?pool ?grains ~driver others)

(* Split where the cumulative cost crosses k/n of the total: the first
   grain boundary at or past each crossing, deduplicated, so heavy
   grains absorb several targets and produce fewer (but never
   overlapping) chunks. Always returns a partition of [dlo, dhi). *)
let chunk_bounds m ~chunks =
  let g = grain_count m in
  let total = total_cost m in
  if chunks <= 1 || g <= 1 || total <= 0. then [| m.m_bounds.(0); m.m_bounds.(g) |]
  else begin
    let out = ref [ m.m_bounds.(0) ] in
    let last = ref 0 in
    for k = 1 to chunks - 1 do
      let target = total *. float_of_int k /. float_of_int chunks in
      let i = ref (!last + 1) in
      while !i < g && m.m_cost.(!i) < target do
        incr i
      done;
      if !i < g && !i > !last then begin
        out := m.m_bounds.(!i) :: !out;
        last := !i
      end
    done;
    Array.of_list (List.rev (m.m_bounds.(g) :: !out))
  end

(* How many chunks to aim for: enough to keep every executor busy with
   slack for stealing imbalance, but no chunk below ~2k cost units —
   fork/join overhead must stay invisible. *)
let chunk_cost_floor = 2048.

let auto_chunks ~pool_size ~total_cost =
  max 2 (min (4 * pool_size) (int_of_float (total_cost /. chunk_cost_floor)))

let compute_ranges ?pool ?chunks ?threshold:thr ?masses (lists : (P.t * int * int) list) =
  if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then []
  else
    match Scan_packed.sort_by_length lists with
    | [] -> []
    | ((driver, dlo, dhi) as dr) :: others ->
      let driver_len = dhi - dlo in
      let thr = match thr with Some t -> t | None -> Atomic.get threshold_v in
      let sequential () =
        note_fallback ();
        (* through the dispatching entry, not [scan_chunk] directly, so
           tiny-driver queries reach the cursor-free fallback kernel
           here too ([lists] re-sorts to the same driver) *)
        Scan_packed.compute_ranges lists
      in
      let run_chunked ?masses pool bounds =
        let nchunks = Array.length bounds - 1 in
        if nchunks <= 1 then sequential ()
        else begin
          let slots = Array.make nchunks [] in
          let times = Array.make nchunks 0. in
          Xr_pool.run pool
            (Array.init nchunks (fun i ->
                 fun () ->
                  Xr_obs.Tracing.with_span "pool.chunk" (fun () ->
                      (* two clock reads per ≥2k-cost chunk: noise
                         against the scan, and what makes the drift
                         audit free to leave always-on *)
                      let t0 = Xr_obs.Tracing.now_ns () in
                      slots.(i) <-
                        Scan_packed.scan_chunk ~preseek:(i > 0)
                          ~driver:(driver, bounds.(i), bounds.(i + 1))
                          ~others ();
                      times.(i) <-
                        Int64.to_float (Int64.sub (Xr_obs.Tracing.now_ns ()) t0))));
          (match masses with Some m -> audit_drift m bounds times | None -> ());
          Xr_obs.Tracing.with_span "slca.merge" (fun () -> prune_merge slots)
        end
      in
      ( match chunks with
      | Some c when c >= 2 ->
        (* explicit chunk count: equal-count splits, parallel
           regardless of size — the test suite's adversarial-split
           hook (byte-identity holds for any contiguous partition) *)
        let pool = match pool with Some p -> p | None -> Xr_pool.global () in
        let c = min c driver_len in
        if c <= 1 then sequential ()
        else run_chunked pool (Array.init (c + 1) (fun i -> dlo + (i * driver_len / c)))
      | Some _ -> sequential ()
      | None ->
        if estimate_driver ~driver:dr others < float_of_int thr then sequential ()
        else begin
          let pool = match pool with Some p -> p | None -> Xr_pool.global () in
          let size = Xr_pool.size pool in
          if size <= 1 then sequential ()
          else begin
            let m =
              match masses with Some m -> m | None -> measure_driver ~pool ~driver:dr others
            in
            let cost = total_cost m in
            if cost < float_of_int thr then sequential ()
            else
              run_chunked ~masses:m pool
                (chunk_bounds m ~chunks:(auto_chunks ~pool_size:size ~total_cost:cost))
          end
        end )

let compute ?pool ?chunks ?threshold (lists : P.t list) =
  compute_ranges ?pool ?chunks ?threshold (List.map (fun l -> (l, 0, P.length l)) lists)
