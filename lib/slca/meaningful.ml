open Xr_xml
module Stats = Xr_index.Stats

type t = {
  doc : Doc.t;
  candidates : (Path.id * float) list;
  (* Meaningfulness depends only on the result node's path type, and SLCA
     result sets draw from a handful of types; decide each type once. *)
  memo : (Path.id, bool) Hashtbl.t;
}

let make ?config stats keywords =
  {
    doc = Stats.doc stats;
    candidates = Search_for.infer ?config stats keywords;
    memo = Hashtbl.create 16;
  }

let candidates t = t.candidates

let is_meaningful t ~path =
  match Hashtbl.find_opt t.memo path with
  | Some b -> b
  | None ->
    let b =
      List.exists
        (fun (cand, _) ->
          Path.is_prefix t.doc.Doc.paths ~ancestor:cand ~descendant:path)
        t.candidates
    in
    Hashtbl.add t.memo path b;
    b

let is_meaningful_dewey t dewey =
  match Doc.path_of_dewey t.doc dewey with
  | Some path -> is_meaningful t ~path
  | None -> false

let filter t slcas = List.filter (is_meaningful_dewey t) slcas

let compute t engine lists = filter t (engine lists)
