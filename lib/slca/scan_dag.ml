open Xr_xml
module P = Dewey.Packed

(* SLCA directly over the DAG-compressed expansion ({!Xr_dag}): no
   per-keyword flat list is merged, no subtree is decompressed. A
   keyword's postings are the union of its class ranges in the shared
   expansion buffer — each range sorted in document order, ranges
   disjoint — so:

   - the driver stream is enumerated lazily by an on-the-fly merge of
     the driver keyword's ranges (linear selection; the kernel only
     dispatches when every keyword has few classes);
   - a partner keyword's probe depth against candidate [v] is the
     maximum common-prefix length of [v] over the union of its ranges.
     Over one sorted range that maximum is achieved at [v]'s insertion
     point or its left neighbor — exactly what {!Scan_packed.probe}
     computes — and the maximum over a union of sorted lists is the
     maximum of the per-list maxima. So probing each range and taking
     the max yields the same partner depth the flat kernel reads off
     the merged list, position by position.

   The candidate stream and depths therefore coincide entry for entry
   with {!Scan_packed} on the merged lists, and the same one-held-
   candidate online prune (see {!Scan_packed.scan_chunk}) yields
   identical results — flat ≡ dag by construction, enforced by the
   equivalence property tests and the CI matrix.

   Cost scales with [driver postings × Σ partner classes] — a constant
   factor (the per-candidate max over ranges) above the merged scan's
   [driver postings × log partner postings]. The memoized merged list is
   therefore faster per scan once it is resident; what the native path
   buys is never materializing it. Dispatch reserves it for the long
   tail where that trade wins: every keyword must have at most
   {!class_limit} classes AND at most {!postings_limit} postings, so the
   absolute penalty is sub-microsecond while the merge cache stays
   restricted to hot, frequent keywords instead of filling with
   thousands of one-off rare-keyword lists (the regime refinement's
   candidate enumeration lives in). *)

let default_class_limit = 32

let default_postings_limit = 256

let class_limit_v = Atomic.make default_class_limit

let class_limit () = Atomic.get class_limit_v

let set_class_limit n = Atomic.set class_limit_v (max 1 n)

let postings_limit_v = Atomic.make default_postings_limit

let postings_limit () = Atomic.get postings_limit_v

let set_postings_limit n = Atomic.set postings_limit_v (max 1 n)

let native_scans_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_slca_dag_native_scans_total"
       ~help:"SLCA scans answered directly on the DAG expansion" ())

let native_scans () = Xr_obs.Registry.Counter.value native_scans_h

let eligible dag ids =
  ids <> []
  && List.for_all
       (fun kw ->
         let c = Xr_dag.class_count dag kw in
         c > 0
         && c <= Atomic.get class_limit_v
         && Xr_dag.posting_count dag kw <= Atomic.get postings_limit_v)
       ids

let compute dag ids =
  (* duplicate ids add no constraint under conjunctive semantics *)
  let ids = List.sort_uniq Int.compare ids in
  if ids = [] || List.exists (fun kw -> Xr_dag.posting_count dag kw = 0) ids then []
  else begin
    Xr_obs.Registry.Counter.inc native_scans_h;
    let exp = Xr_dag.expansion dag in
    let driver_kw =
      List.fold_left
        (fun best kw ->
          if Xr_dag.posting_count dag kw < Xr_dag.posting_count dag best then kw else best)
        (List.hd ids) (List.tl ids)
    in
    let dranges = Array.of_list (Xr_dag.ranges dag driver_kw) in
    let dm = Array.length dranges in
    let dcur = Array.map fst dranges and dhi = Array.map snd dranges in
    let parts =
      Array.of_list
        (List.filter_map
           (fun kw ->
             if kw = driver_kw then None
             else Some (Array.of_list (Xr_dag.ranges dag kw)))
           ids)
    in
    let pos = Array.map (fun rs -> Array.map fst rs) parts in
    let maxd = max 1 (P.max_depth exp) in
    let scratch = Array.make maxd 0 in
    let cur = Array.make maxd 0 in
    let cur_len = ref (-1) in
    let results = ref [] in
    let emit () = if !cur_len >= 0 then results := Array.sub cur 0 !cur_len :: !results in
    (* next driver entry in document order: linear selection over the
       (few) class ranges *)
    let next_driver () =
      let best = ref (-1) in
      for j = 0 to dm - 1 do
        if dcur.(j) < dhi.(j) && (!best < 0 || P.compare_entries exp dcur.(j) exp dcur.(!best) < 0)
        then best := j
      done;
      !best
    in
    let depth = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      match next_driver () with
      | -1 -> continue_ := false
      | j ->
        let vd = P.blit_entry exp dcur.(j) scratch in
        dcur.(j) <- dcur.(j) + 1;
        depth := vd;
        Array.iteri
          (fun p rs ->
            let dp = ref (-1) in
            Array.iteri
              (fun k (lo, hi) ->
                let d = Scan_packed.probe exp ~lo ~hi pos.(p) k scratch vd in
                if d > !dp then dp := d)
              rs;
            if !dp < !depth then depth := !dp)
          parts;
        let d = !depth in
        if d >= 0 then
          if !cur_len < 0 then begin
            Array.blit scratch 0 cur 0 d;
            cur_len := d
          end
          else begin
            let lim = if d < !cur_len then d else !cur_len in
            let i = ref 0 in
            while !i < lim && Array.unsafe_get cur !i = Array.unsafe_get scratch !i do
              incr i
            done;
            if !i = d then () (* ancestor of (or equal to) the held candidate *)
            else begin
              if !i < !cur_len then emit ();
              (* else: extension of the held candidate — replace silently *)
              Array.blit scratch 0 cur 0 d;
              cur_len := d
            end
          end
    done;
    emit ();
    List.rev !results
  end
