open Xr_xml
module Inverted = Xr_index.Inverted

let compute lists =
  if lists = [] || List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let sorted = List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) lists in
    match sorted with
    | [] -> []
    | driver :: others ->
      let others = Array.of_list others in
      let pos = Array.make (Array.length others) 0 in
      let cands = ref [] in
      Array.iter
        (fun (v : Inverted.posting) ->
          let depth = ref (Dewey.depth v.dewey) in
          Array.iteri
            (fun i list ->
              (* advance cursor to the first posting >= v, resuming the
                 binary search from the previous probe position *)
              let n = Array.length list in
              pos.(i) <- Slca_common.lower_bound list ~lo:pos.(i) v.dewey;
              let lm = if pos.(i) > 0 then Some list.(pos.(i) - 1) else None in
              let rm = if pos.(i) < n then Some list.(pos.(i)) else None in
              depth := min !depth (Slca_common.deepest_prefix_depth v.dewey (lm, rm)))
            others;
          if !depth >= 0 then cands := Dewey.prefix v.dewey !depth :: !cands)
        driver;
      Slca_common.prune_non_smallest !cands
  end
