(** Shared posting scans: one galloping pass over a driver list feeds
    every query in a batch.

    Queries (or candidate refined queries inside one [/refine] request)
    that select the same driver — same packed list, same entry range —
    repeat the expensive part of {!Scan_packed}: decoding each driver
    entry and walking it varint by varint. [run] scans the driver
    range once, decodes each entry once into a shared scratch buffer,
    and steps every member's partner cursors and held-candidate prune
    off that one decode. Each member's candidate stream is exactly the
    one its solo {!Scan_packed.scan_chunk} run would derive (probe
    results depend only on entry values, not cursor history), so every
    member's result list is byte-identical to one-at-a-time execution.

    [run_batch] is the admission layer on top: it compiles a batch of
    independent range queries, groups them by driver, runs each
    multi-member group through [run] (optionally fanning groups out
    over the domain pool) and routes singleton groups through the
    ordinary dispatching kernel. *)

open Xr_xml

(** Global switch (default on). When off, {!run_batch} executes every
    query individually — the unbatched side of A/B benchmarks. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [run ?root ~driver members ()] scans [driver]'s range once; member
    [i]'s partner lists [members.(i)] are probed against each driver
    entry and slot [i] of the result holds that member's SLCAs.

    [root = (prefix, plen)] restricts the driver pass to the entries
    lying under [prefix.(0..plen-1)], via a bitsliced prefix mask
    ({!Xr_index.Bitslice}) built over the driver range — callers that
    know their range is one subtree (the per-partition refinement
    evaluations) can hand the full list plus its partition root and let
    the mask carve out the partition. *)
val run :
  ?root:int array * int ->
  driver:(Dewey.Packed.t * int * int) ->
  (Dewey.Packed.t * int * int) list array ->
  unit ->
  Dewey.t list array

(** [run_batch ?pool ?root queries] evaluates each element of
    [queries] — a full SLCA range query, driver not yet selected — and
    returns the per-query results in order, byte-identical to mapping
    {!Scan_packed.compute_ranges} over [queries]. Groups sharing a
    driver run shared; when [pool] (default the global pool, peeked —
    never created — when a single group wouldn't fan out) has more
    than one domain, groups fan out over it, and a multi-member group
    whose modeled cost clears {!Parallel.threshold} additionally
    splits its shared pass into cost-balanced driver chunks
    ({!Parallel.measure_driver} / {!Parallel.chunk_bounds}), each
    member's per-chunk survivors re-pruned with
    {!Parallel.prune_merge} — both batching axes at once, still
    byte-identical.

    [chunks] is the test hook mirroring {!Parallel.compute_ranges}:
    force every unmasked multi-member group into an equal-count
    chunking regardless of the cost gate.

    [root] is a hint that every query is scoped to one subtree: a
    multi-member group whose driver range provably equals [root]'s
    slice of the driver's full list runs masked over the full list (see
    {!run}); a range that does not match falls back to plain range
    iteration, so the hint can never change results. Masked groups
    never chunk. *)
val run_batch :
  ?pool:Xr_pool.t ->
  ?chunks:int ->
  ?root:int array ->
  (Dewey.Packed.t * int * int) list list ->
  Dewey.t list list

(** Cumulative batch-path counters (also exported to the registry as
    [xr_shared_scan_*]): shared passes run, members fed, and driver
    decodes avoided ((members - 1) * entries, the amortization win). *)
val batches : unit -> int

val members_fed : unit -> int

val saved_decodes : unit -> int
