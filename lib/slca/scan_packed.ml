open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

(* Cursor probe totals, folded into the registry once per chunk scan
   (two shard-cell adds per [scan_chunk] — invisible next to the scan
   itself, unlike counting per probe would be). *)
let probes_fam =
  Xr_obs.Registry.Counter.family ~name:"xr_cursor_probes_total"
    ~help:"Packed-cursor list accesses during SLCA scans" ~label_names:[ "mode" ] ()

let seq_probes_h = Xr_obs.Registry.Counter.handle probes_fam [ "sequential" ]

let rand_probes_h = Xr_obs.Registry.Counter.handle probes_fam [ "random" ]

(* Candidates are generated from driver entries in increasing document
   order, which forces a shape on the candidate stream: a new candidate
   is either >= the current one or a prefix (ancestor) of it. (If
   candidate [y] of a later driver entry [v'] were smaller than an
   earlier candidate [x] without being its prefix, then [v'], which
   extends [y], would order below [x] <= [v] — contradicting [v' > v].)
   So the smallest-LCA subset can be kept online with one held candidate:
   an arriving prefix is discarded, an arriving extension replaces, and
   anything else is disjoint and seals the held candidate as a result.
   This replaces the sort-based [Slca_common.prune_non_smallest] pass and
   only ever materializes actual results.

   [scan_chunk] runs that loop over one sub-interval of the driver
   range; the sequential algorithm is the single-chunk case, and the
   parallel kernel ({!Parallel}) scans disjoint chunks concurrently and
   replays the same prune over the concatenated survivor streams. The
   survivors of a chunk are its emitted results plus the held candidate
   sealed at chunk end, in candidate order — exactly the prefix of the
   candidate stream that the remaining entries can still interact
   with. *)
let scan_chunk ?(preseek = false) ~driver:(driver, dlo, dhi) ~others () =
  let cursors = Array.of_list (List.map (fun (l, lo, hi) -> PC.make_sub l ~lo ~hi) others) in
  let ncur = Array.length cursors in
  (* Pre-position every cursor on the chunk's first driver entry in
     encoded form, so a chunk deep inside the driver range starts its
     probes near the data instead of galloping in from the range base.
     Purely positional — the first probe would land the cursor in the
     same place — so the leading chunk (and the sequential single-chunk
     case) skips it rather than pay the seek twice. *)
  if preseek && dlo < dhi then Array.iter (fun c -> PC.seek_geq_entry c driver dlo) cursors;
  let maxd =
    List.fold_left (fun acc (l, _, _) -> max acc (P.max_depth l)) (P.max_depth driver) others
  in
  let maxd = max maxd 1 in
  (* The one decoded label live at any time: the driver entry under
     consideration. Non-driving lists are probed in encoded form. *)
  let scratch = Array.make maxd 0 in
  let cur = Array.make maxd 0 in
  let cur_len = ref (-1) in
  let results = ref [] in
  let emit () = if !cur_len >= 0 then results := Array.sub cur 0 !cur_len :: !results in
  let depth = ref 0 in
  for vi = dlo to dhi - 1 do
    let vd = P.blit_entry driver vi scratch in
    depth := vd;
    for ci = 0 to ncur - 1 do
      let d = PC.match_probe (Array.unsafe_get cursors ci) scratch vd in
      if d < !depth then depth := d
    done;
    let d = !depth in
    if d >= 0 then
      if !cur_len < 0 then begin
        Array.blit scratch 0 cur 0 d;
        cur_len := d
      end
      else begin
        let lim = if d < !cur_len then d else !cur_len in
        let i = ref 0 in
        while !i < lim && Array.unsafe_get cur !i = Array.unsafe_get scratch !i do
          incr i
        done;
        if !i = d then () (* ancestor of (or equal to) the held candidate *)
        else begin
          if !i < !cur_len then emit ();
          (* else: extension of the held candidate — replace silently *)
          Array.blit scratch 0 cur 0 d;
          cur_len := d
        end
      end
  done;
  emit ();
  let seq = ref 0 and rand = ref 0 in
  Array.iter
    (fun c ->
      seq := !seq + PC.sequential_accesses c;
      rand := !rand + PC.random_accesses c)
    cursors;
  Xr_obs.Registry.Counter.add seq_probes_h !seq;
  Xr_obs.Registry.Counter.add rand_probes_h !rand;
  List.rev !results

(* Driver selection shared with the parallel kernel: rarest list first
   (stable on ties, so chunked and sequential runs pick the same
   driver). *)
let sort_by_length lists =
  List.stable_sort
    (fun (_, alo, ahi) (_, blo, bhi) -> Int.compare (ahi - alo) (bhi - blo))
    lists

(* Tiny-driver fallback. On highly selective queries (a driver of a
   handful of entries) the general kernel is overhead-bound: cursor
   records, galloping state and the probe-counter folds cost more than
   the scan itself, enough to lose to the boxed scan-eager engine
   (BENCH_slca.json recorded 0.82x on dblp ["year","bib"]). Below
   [tiny_threshold] driver entries the dispatch in {!compute_ranges} —
   and the plan compiler one layer up — picks this kernel instead: the
   same candidate stream and online prune, but partner lists probed
   with bare binary searches over position arrays, no cursors and no
   counter traffic.

   [probe] is [Cursor.Packed.match_probe]'s fused gallop-and-prefix
   search verbatim, operating on a bare position array instead of a
   cursor record — the probe sequences, final positions and returned
   depths coincide step for step, so the two kernels are equal by
   construction. *)
let default_tiny_threshold = 24

let tiny_threshold_v = Atomic.make default_tiny_threshold

let tiny_threshold () = Atomic.get tiny_threshold_v

let set_tiny_threshold n = Atomic.set tiny_threshold_v (max 0 n)

let tiny_scans_h =
  Xr_obs.Registry.Counter.no_labels
    (Xr_obs.Registry.Counter.family ~name:"xr_slca_tiny_scans_total"
       ~help:"SLCA scans dispatched to the tiny-driver fallback kernel" ())

let tiny_scans () = Xr_obs.Registry.Counter.value tiny_scans_h

let probe pk ~lo ~hi pos ci v vd =
  let p = Array.unsafe_get pos ci in
  if p >= hi then if hi = lo then -1 else P.common_prefix_len_sub pk (hi - 1) v vd
  else begin
    let r0 = P.compare_prefix_sub pk p v vd in
    if r0 land 3 >= 1 then begin
      (* entry at the position is already >= v: no movement *)
      let dr = r0 lsr 2 in
      let dl = if p > lo then P.common_prefix_len_sub pk (p - 1) v vd else -1 in
      if dl > dr then dl else dr
    end
    else begin
      let dl = ref (r0 lsr 2) and dr = ref (-1) in
      let prev = ref p and step = ref 1 in
      let bound = ref (-1) in
      while !bound < 0 do
        let cand = !prev + !step in
        if cand >= hi then bound := hi
        else begin
          let r = P.compare_prefix_sub pk cand v vd in
          if r land 3 >= 1 then begin
            dr := r lsr 2;
            bound := cand
          end
          else begin
            dl := r lsr 2;
            prev := cand;
            step := !step * 2
          end
        end
      done;
      let l = ref (!prev + 1) and h = ref !bound in
      while !l < !h do
        let mid = (!l + !h) lsr 1 in
        let r = P.compare_prefix_sub pk mid v vd in
        if r land 3 >= 1 then begin
          dr := r lsr 2;
          h := mid
        end
        else begin
          dl := r lsr 2;
          l := mid + 1
        end
      done;
      Array.unsafe_set pos ci !l;
      if !dl > !dr then !dl else !dr
    end
  end

(* The single-partner case — exactly the highly selective two-keyword
   queries the tiny dispatch exists for — specialized to straight-line
   code: no partner array, no closures, one position cell. At this
   scale ([{year bib}] times under 200ns end to end) the general
   version's list-to-array setup alone is a measurable fraction of the
   scan. Same candidate stream and online prune as [scan_tiny]. *)
let scan_tiny1 ~driver ~dlo ~dhi pk ~plo ~phi =
  let maxd = max 1 (max (P.max_depth driver) (P.max_depth pk)) in
  let scratch = Array.make maxd 0 in
  let cur = Array.make maxd 0 in
  let cur_len = ref (-1) in
  let results = ref [] in
  let pos = [| plo |] in
  for vi = dlo to dhi - 1 do
    let vd = P.blit_entry driver vi scratch in
    let d = probe pk ~lo:plo ~hi:phi pos 0 scratch vd in
    let d = if d < vd then d else vd in
    if d >= 0 then
      if !cur_len < 0 then begin
        Array.blit scratch 0 cur 0 d;
        cur_len := d
      end
      else begin
        let lim = if d < !cur_len then d else !cur_len in
        let i = ref 0 in
        while !i < lim && Array.unsafe_get cur !i = Array.unsafe_get scratch !i do
          incr i
        done;
        if !i = d then () (* ancestor of (or equal to) the held candidate *)
        else begin
          if !i < !cur_len then results := Array.sub cur 0 !cur_len :: !results;
          Array.blit scratch 0 cur 0 d;
          cur_len := d
        end
      end
  done;
  if !cur_len >= 0 then results := Array.sub cur 0 !cur_len :: !results;
  List.rev !results

let scan_tiny_n ~driver ~dlo ~dhi ~others =
  let arr = Array.of_list others in
  let ncur = Array.length arr in
  let pos = Array.map (fun (_, lo, _) -> lo) arr in
  let maxd =
    List.fold_left (fun acc (l, _, _) -> max acc (P.max_depth l)) (P.max_depth driver) others
  in
  let maxd = max maxd 1 in
  let scratch = Array.make maxd 0 in
  let cur = Array.make maxd 0 in
  let cur_len = ref (-1) in
  let results = ref [] in
  let emit () = if !cur_len >= 0 then results := Array.sub cur 0 !cur_len :: !results in
  let depth = ref 0 in
  for vi = dlo to dhi - 1 do
    let vd = P.blit_entry driver vi scratch in
    depth := vd;
    for ci = 0 to ncur - 1 do
      let pk, lo, hi = Array.unsafe_get arr ci in
      let d = probe pk ~lo ~hi pos ci scratch vd in
      if d < !depth then depth := d
    done;
    let d = !depth in
    if d >= 0 then
      if !cur_len < 0 then begin
        Array.blit scratch 0 cur 0 d;
        cur_len := d
      end
      else begin
        let lim = if d < !cur_len then d else !cur_len in
        let i = ref 0 in
        while !i < lim && Array.unsafe_get cur !i = Array.unsafe_get scratch !i do
          incr i
        done;
        if !i = d then () (* ancestor of (or equal to) the held candidate *)
        else begin
          if !i < !cur_len then emit ();
          Array.blit scratch 0 cur 0 d;
          cur_len := d
        end
      end
  done;
  emit ();
  List.rev !results

let scan_tiny ~driver:(driver, dlo, dhi) ~others () =
  Xr_obs.Registry.Counter.inc tiny_scans_h;
  match others with
  | [ (pk, plo, phi) ] -> scan_tiny1 ~driver ~dlo ~dhi pk ~plo ~phi
  | _ -> scan_tiny_n ~driver ~dlo ~dhi ~others

let compute_ranges (lists : (P.t * int * int) list) =
  if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then []
  else
    match sort_by_length lists with
    | [] -> []
    | ((_, dlo, dhi) as driver) :: others ->
      if dhi - dlo <= Atomic.get tiny_threshold_v then scan_tiny ~driver ~others ()
      else scan_chunk ~driver ~others ()

let compute (lists : P.t list) =
  compute_ranges (List.map (fun l -> (l, 0, P.length l)) lists)
