open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

(* Cursor probe totals, folded into the registry once per chunk scan
   (two shard-cell adds per [scan_chunk] — invisible next to the scan
   itself, unlike counting per probe would be). *)
let probes_fam =
  Xr_obs.Registry.Counter.family ~name:"xr_cursor_probes_total"
    ~help:"Packed-cursor list accesses during SLCA scans" ~label_names:[ "mode" ] ()

let seq_probes_h = Xr_obs.Registry.Counter.handle probes_fam [ "sequential" ]

let rand_probes_h = Xr_obs.Registry.Counter.handle probes_fam [ "random" ]

(* Candidates are generated from driver entries in increasing document
   order, which forces a shape on the candidate stream: a new candidate
   is either >= the current one or a prefix (ancestor) of it. (If
   candidate [y] of a later driver entry [v'] were smaller than an
   earlier candidate [x] without being its prefix, then [v'], which
   extends [y], would order below [x] <= [v] — contradicting [v' > v].)
   So the smallest-LCA subset can be kept online with one held candidate:
   an arriving prefix is discarded, an arriving extension replaces, and
   anything else is disjoint and seals the held candidate as a result.
   This replaces the sort-based [Slca_common.prune_non_smallest] pass and
   only ever materializes actual results.

   [scan_chunk] runs that loop over one sub-interval of the driver
   range; the sequential algorithm is the single-chunk case, and the
   parallel kernel ({!Parallel}) scans disjoint chunks concurrently and
   replays the same prune over the concatenated survivor streams. The
   survivors of a chunk are its emitted results plus the held candidate
   sealed at chunk end, in candidate order — exactly the prefix of the
   candidate stream that the remaining entries can still interact
   with. *)
let scan_chunk ?(preseek = false) ~driver:(driver, dlo, dhi) ~others () =
  let cursors = Array.of_list (List.map (fun (l, lo, hi) -> PC.make_sub l ~lo ~hi) others) in
  let ncur = Array.length cursors in
  (* Pre-position every cursor on the chunk's first driver entry in
     encoded form, so a chunk deep inside the driver range starts its
     probes near the data instead of galloping in from the range base.
     Purely positional — the first probe would land the cursor in the
     same place — so the leading chunk (and the sequential single-chunk
     case) skips it rather than pay the seek twice. *)
  if preseek && dlo < dhi then Array.iter (fun c -> PC.seek_geq_entry c driver dlo) cursors;
  let maxd =
    List.fold_left (fun acc (l, _, _) -> max acc (P.max_depth l)) (P.max_depth driver) others
  in
  let maxd = max maxd 1 in
  (* The one decoded label live at any time: the driver entry under
     consideration. Non-driving lists are probed in encoded form. *)
  let scratch = Array.make maxd 0 in
  let cur = Array.make maxd 0 in
  let cur_len = ref (-1) in
  let results = ref [] in
  let emit () = if !cur_len >= 0 then results := Array.sub cur 0 !cur_len :: !results in
  let depth = ref 0 in
  for vi = dlo to dhi - 1 do
    let vd = P.blit_entry driver vi scratch in
    depth := vd;
    for ci = 0 to ncur - 1 do
      let d = PC.match_probe (Array.unsafe_get cursors ci) scratch vd in
      if d < !depth then depth := d
    done;
    let d = !depth in
    if d >= 0 then
      if !cur_len < 0 then begin
        Array.blit scratch 0 cur 0 d;
        cur_len := d
      end
      else begin
        let lim = if d < !cur_len then d else !cur_len in
        let i = ref 0 in
        while !i < lim && Array.unsafe_get cur !i = Array.unsafe_get scratch !i do
          incr i
        done;
        if !i = d then () (* ancestor of (or equal to) the held candidate *)
        else begin
          if !i < !cur_len then emit ();
          (* else: extension of the held candidate — replace silently *)
          Array.blit scratch 0 cur 0 d;
          cur_len := d
        end
      end
  done;
  emit ();
  let seq = ref 0 and rand = ref 0 in
  Array.iter
    (fun c ->
      seq := !seq + PC.sequential_accesses c;
      rand := !rand + PC.random_accesses c)
    cursors;
  Xr_obs.Registry.Counter.add seq_probes_h !seq;
  Xr_obs.Registry.Counter.add rand_probes_h !rand;
  List.rev !results

(* Driver selection shared with the parallel kernel: rarest list first
   (stable on ties, so chunked and sequential runs pick the same
   driver). *)
let sort_by_length lists =
  List.stable_sort
    (fun (_, alo, ahi) (_, blo, bhi) -> Int.compare (ahi - alo) (bhi - blo))
    lists

let compute_ranges (lists : (P.t * int * int) list) =
  if lists = [] || List.exists (fun (_, lo, hi) -> hi <= lo) lists then []
  else
    match sort_by_length lists with
    | [] -> []
    | driver :: others -> scan_chunk ~driver ~others ()

let compute (lists : P.t list) =
  compute_ranges (List.map (fun l -> (l, 0, P.length l)) lists)
