(** Scan-Eager SLCA (XKSearch).

    Same candidate characterization as {!Indexed_lookup}, but the closest
    matches in the non-driving lists are located by cursors that only
    move forward — each probe resumes a binary search from the previous
    match position ({!Slca_common.lower_bound}), so the whole query is a
    single merge-like pass over all lists, best when keyword frequencies
    are comparable. This is the
    SLCA engine the paper plugs into its Partition and SLE refinement
    algorithms. *)

open Xr_xml

val compute : Xr_index.Inverted.posting array list -> Dewey.t list
