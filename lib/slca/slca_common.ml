open Xr_xml

let prune_non_smallest candidates =
  let sorted = List.sort_uniq Dewey.compare candidates in
  (* In document order an ancestor precedes all its descendants and every
     node between them is also a descendant, so a single backward check
     against the last kept candidate suffices. *)
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest -> (
      match kept with
      | last :: kept' when Dewey.is_prefix last c -> go (c :: kept') rest
      | _ -> go (c :: kept) rest)
  in
  go [] sorted

(* First index in [lo, |list|) whose label is >= v. Taking an explicit
   [lo] lets multiway scans resume a probe from the previous match
   position instead of re-searching the whole list. *)
let lower_bound (list : Xr_index.Inverted.posting array) ~lo v =
  let l = ref lo and h = ref (Array.length list) in
  while !l < !h do
    let mid = (!l + !h) / 2 in
    if Dewey.compare list.(mid).Xr_index.Inverted.dewey v < 0 then l := mid + 1 else h := mid
  done;
  !l

let closest (list : Xr_index.Inverted.posting array) lo v =
  let n = Array.length list in
  let l = lower_bound list ~lo v in
  let rm = if l < n then Some list.(l) else None in
  let lm =
    if l < n && Dewey.equal list.(l).Xr_index.Inverted.dewey v then Some list.(l)
    else if l > lo then Some list.(l - 1)
    else None
  in
  (lm, rm)

let deepest_prefix_depth v (lm, rm) =
  let d = function
    | None -> -1
    | Some (p : Xr_index.Inverted.posting) -> Dewey.common_prefix_len v p.dewey
  in
  max (d lm) (d rm)
