open Xr_xml
module P = Dewey.Packed
module PC = Xr_index.Cursor.Packed

(* Flat reformulation of {!Stack_slca}: the stack of path entries becomes
   a pair of preallocated tables indexed by prefix length — [witness.(d)]
   and [slca_below.(d)] describe the stack entry holding path component
   [d - 1], row 0 being the root sentinel. Rows deeper than the current
   path length are kept all-false, so "pushing" an entry is just growing
   [path_len]. The merge of the cursor heads compares labels in encoded
   form; only the winning head is decoded, into a reused scratch buffer. *)
let compute_ranges (lists : (P.t * int * int) list) =
  let m = List.length lists in
  if m = 0 || List.exists (fun (_, lo, hi) -> hi <= lo) lists then []
  else begin
    let cursors = Array.of_list (List.map (fun (l, lo, hi) -> PC.make_sub l ~lo ~hi) lists) in
    let maxd = List.fold_left (fun acc (l, _, _) -> max acc (P.max_depth l)) 1 lists in
    let path = Array.make maxd 0 in
    let path_len = ref 0 in
    let head = Array.make maxd 0 in
    let witness = Array.make_matrix (maxd + 1) m false in
    let slca_below = Array.make (maxd + 1) false in
    let results = ref [] in
    let all_true row =
      let ok = ref true in
      for i = 0 to m - 1 do
        if not row.(i) then ok := false
      done;
      !ok
    in
    let pop_to target =
      while !path_len > target do
        let len = !path_len in
        let row = witness.(len) in
        let emitted = all_true row && not slca_below.(len) in
        if emitted then results := Array.sub path 0 len :: !results;
        let parent = witness.(len - 1) in
        for i = 0 to m - 1 do
          if row.(i) then parent.(i) <- true;
          row.(i) <- false
        done;
        if slca_below.(len) || emitted then slca_below.(len - 1) <- true;
        slca_below.(len) <- false;
        path_len := len - 1
      done
    in
    let next_smallest () =
      let best = ref (-1) in
      for i = 0 to Array.length cursors - 1 do
        let c = cursors.(i) in
        if not (PC.at_end c) then
          if !best < 0 then best := i
          else begin
            let b = cursors.(!best) in
            if
              P.compare_entries (PC.labels c) (PC.position c) (PC.labels b)
                (PC.position b)
              < 0
            then best := i
          end
      done;
      !best
    in
    let rec loop () =
      let kw = next_smallest () in
      if kw >= 0 then begin
        let c = cursors.(kw) in
        let d = P.blit_entry (PC.labels c) (PC.position c) head in
        PC.advance c;
        let lim = min d !path_len in
        let lcp = ref 0 in
        while !lcp < lim && head.(!lcp) = path.(!lcp) do
          incr lcp
        done;
        pop_to !lcp;
        for i = !lcp to d - 1 do
          path.(i) <- head.(i)
        done;
        path_len := d;
        witness.(d).(kw) <- true;
        loop ()
      end
    in
    loop ();
    pop_to 0;
    (* Finally consider the root sentinel itself. *)
    if all_true witness.(0) && not slca_below.(0) then results := [||] :: !results;
    List.rev !results
  end

let compute (lists : P.t list) =
  compute_ranges (List.map (fun l -> (l, 0, P.length l)) lists)
