(* A deque under a private mutex: the owner pushes and pops at the
   bottom (LIFO, cache-warm), thieves take from the top (FIFO, oldest
   first — for range-partitioned batches that means a thief grabs the
   chunk its victim would reach last). Contention per deque is a
   handful of nanoseconds of critical section, far below the cost of a
   chunk, so a lock-free Chase-Lev buffer would buy nothing here. *)
type deque = {
  lock : Mutex.t;
  mutable buf : (unit -> unit) array;
  mutable head : int;  (* index of the oldest task *)
  mutable len : int;
}

let nop () = ()

let make_deque () = { lock = Mutex.create (); buf = Array.make 8 nop; head = 0; len = 0 }

let grow d =
  let cap = Array.length d.buf in
  let buf = Array.make (2 * cap) nop in
  for i = 0 to d.len - 1 do
    buf.(i) <- d.buf.((d.head + i) mod cap)
  done;
  d.buf <- buf;
  d.head <- 0

let push_bottom d task =
  Mutex.protect d.lock (fun () ->
      if d.len = Array.length d.buf then grow d;
      d.buf.((d.head + d.len) mod Array.length d.buf) <- task;
      d.len <- d.len + 1)

let pop_bottom d =
  Mutex.protect d.lock (fun () ->
      if d.len = 0 then None
      else begin
        let i = (d.head + d.len - 1) mod Array.length d.buf in
        let task = d.buf.(i) in
        d.buf.(i) <- nop;
        d.len <- d.len - 1;
        Some task
      end)

let steal_top d =
  Mutex.protect d.lock (fun () ->
      if d.len = 0 then None
      else begin
        let task = d.buf.(d.head) in
        d.buf.(d.head) <- nop;
        d.head <- (d.head + 1) mod Array.length d.buf;
        d.len <- d.len - 1;
        Some task
      end)

(* Pool counters live in the process-wide metrics registry, one series
   per pool (label [pool]), so /metrics sees every pool while
   [counters] still reports per-instance values through the same
   handles. Pool names are made unique per instance — a reset global
   pool must not inherit its predecessor's counts. *)
module Counter = Xr_obs.Registry.Counter
module Gauge = Xr_obs.Registry.Gauge

let tasks_fam =
  Counter.family ~name:"xr_pool_tasks_total" ~help:"Pool tasks executed to completion"
    ~label_names:[ "pool" ] ()

let steals_fam =
  Counter.family ~name:"xr_pool_steals_total"
    ~help:"Pool tasks taken from another worker's deque" ~label_names:[ "pool" ] ()

let batches_fam =
  Counter.family ~name:"xr_pool_batches_total" ~help:"Pool run calls that fanned out"
    ~label_names:[ "pool" ] ()

let busy_fam =
  Counter.family ~name:"xr_pool_busy_ns_total"
    ~help:"Nanoseconds each pool executor spent running tasks" ~label_names:[ "pool"; "domain" ]
    ()

let depth_fam =
  Gauge.family ~name:"xr_pool_queue_depth"
    ~help:"Tasks sitting in the pool's deques, not yet taken by an executor"
    ~label_names:[ "pool" ] ()

let util_fam =
  Gauge.family ~name:"xr_pool_utilization"
    ~help:"Fraction of wall time each executor spent running tasks since pool creation"
    ~label_names:[ "pool"; "domain" ] ()

let now_ns = Xr_obs.Tracing.now_ns

let pool_seq = Atomic.make 0

type t = {
  deques : deque array;  (* one per worker domain; empty when size = 1 *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;  (* guards sleeping workers and [stopping] *)
  work_cv : Condition.t;
  mutable stopping : bool;
  rr : int Atomic.t;  (* rotates the first deque each batch seeds *)
  tasks : Counter.h;
  steals : Counter.h;
  batches : Counter.h;
  busy : Counter.h array;
      (* busy-ns per executor: slot [i < nd] is worker [i], the last
         slot is the submitting/helping domain ("caller") *)
  created_ns : int64;
}

type counters = { domains : int; tasks : int; steals : int; batches : int }

let size t = Array.length t.deques + 1

(* Unsynchronized reads of the [len] fields: word-sized, monitoring
   only — a scrape racing a push sees a depth off by one, never a torn
   value. *)
let queue_depth t = Array.fold_left (fun acc d -> acc + d.len) 0 t.deques

let caller_slot t = Array.length t.busy - 1

(* Run one taken task, charging its wall time to [slot]'s busy-ns
   series. Tasks reaching here are already exception-wrapped by [run]. *)
let exec t slot task =
  let t0 = now_ns () in
  task ();
  Counter.add t.busy.(slot) (Int64.to_int (Int64.sub (now_ns ()) t0))

let counters t =
  {
    domains = size t;
    tasks = Counter.value t.tasks;
    steals = Counter.value t.steals;
    batches = Counter.value t.batches;
  }

(* Take any runnable task: own deque bottom first (workers only), then
   sweep the others' tops starting just past our own slot so thieves
   spread instead of ganging up on deque 0. Tasks are only ever removed
   from deques, never migrated, so a full sweep returning [None] means
   every task visible at sweep start is already executing. *)
let try_take t ~own =
  let n = Array.length t.deques in
  let own_task = if own >= 0 then pop_bottom t.deques.(own) else None in
  match own_task with
  | Some _ as r -> r
  | None ->
    let start = if own >= 0 then own + 1 else Atomic.get t.rr in
    let rec sweep i =
      if i >= n then None
      else
        match steal_top t.deques.((start + i) mod n) with
        | Some _ as r ->
          Counter.inc t.steals;
          r
        | None -> sweep (i + 1)
    in
    sweep 0

let rec worker t id =
  match try_take t ~own:id with
  | Some task ->
    exec t id task;
    worker t id
  | None ->
    Mutex.lock t.m;
    if t.stopping then Mutex.unlock t.m
    else begin
      (* Re-check under [m]: submitters broadcast under the same mutex
         after seeding, so a task pushed between our sweep and this
         lock cannot slip past the wait. *)
      match try_take t ~own:id with
      | Some task ->
        Mutex.unlock t.m;
        exec t id task;
        worker t id
      | None ->
        Condition.wait t.work_cv t.m;
        Mutex.unlock t.m;
        worker t id
    end

(* A domain blocked on something else (a coalesced follower waiting
   for its leader) donates its wait time: take one queued task, run
   it, report whether anything was found. Steal-only — the caller owns
   no deque. *)
let try_help t =
  match try_take t ~own:(-1) with
  | Some task ->
    exec t (caller_slot t) task;
    true
  | None -> false

let default_domains () =
  match Sys.getenv_opt "XR_POOL_DOMAINS" with
  | Some "auto" -> Domain.recommended_domain_count ()
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> Domain.recommended_domain_count ()

let create ?name ?domains () =
  let n = max 1 (match domains with Some d -> d | None -> default_domains ()) in
  let seq = Atomic.fetch_and_add pool_seq 1 in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "pool-%d" seq
  in
  let labels = [ name ] in
  let domain_label i = if i = n - 1 then "caller" else string_of_int i in
  let t =
    {
      deques = Array.init (n - 1) (fun _ -> make_deque ());
      workers = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      stopping = false;
      rr = Atomic.make 0;
      tasks = Counter.handle tasks_fam labels;
      steals = Counter.handle steals_fam labels;
      batches = Counter.handle batches_fam labels;
      busy = Array.init n (fun i -> Counter.handle busy_fam [ name; domain_label i ]);
      created_ns = now_ns ();
    }
  in
  Gauge.set_pull (Gauge.handle depth_fam labels) (fun () -> float_of_int (queue_depth t));
  Array.iteri
    (fun i h ->
      Gauge.set_pull
        (Gauge.handle util_fam [ name; domain_label i ])
        (fun () ->
          let wall = Int64.to_float (Int64.sub (now_ns ()) t.created_ns) in
          if wall <= 0. then 0. else float_of_int (Counter.value h) /. wall))
    t.busy;
  t.workers <- Array.init (n - 1) (fun id -> Domain.spawn (fun () -> worker t id));
  t

let shutdown t =
  Mutex.protect t.m (fun () ->
      t.stopping <- true;
      Condition.broadcast t.work_cv);
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Fork/join state for one [run] call. [pending] and [failed] live
   under [bm]; the final decrement broadcasts, and the submitter only
   waits after a fruitless sweep — at which point all of its remaining
   tasks are executing on workers whose completions must broadcast. *)
type batch = {
  bm : Mutex.t;
  bcv : Condition.t;
  mutable pending : int;
  mutable failed : exn option;
}

let run t thunks =
  let n = Array.length thunks in
  let nd = Array.length t.deques in
  if n = 0 then ()
  else if n = 1 || nd = 0 then begin
    let failed = ref None in
    let slot = caller_slot t in
    Array.iter
      (fun f ->
        Counter.inc t.tasks;
        let t0 = now_ns () in
        (try f () with e -> if !failed = None then failed := Some e);
        Counter.add t.busy.(slot) (Int64.to_int (Int64.sub (now_ns ()) t0)))
      thunks;
    match !failed with Some e -> raise e | None -> ()
  end
  else begin
    Counter.inc t.batches;
    let b = { bm = Mutex.create (); bcv = Condition.create (); pending = n; failed = None } in
    (* Capture the submitter's trace position so spans recorded inside
       tasks — wherever they get stolen to — attach to its trace, and
       the ambient ANALYZE report (None on normal requests) so tasks
       report their GC deltas to the right request. *)
    let ctx = Xr_obs.Tracing.current_context () in
    let actx = Xr_obs.Analyze.current () in
    let wrap f () =
      (try
         Xr_obs.Tracing.with_context ctx (fun () ->
             Xr_obs.Tracing.with_span "pool.task" (fun () ->
                 Xr_obs.Analyze.task actx f))
       with e -> Mutex.protect b.bm (fun () -> if b.failed = None then b.failed <- Some e));
      Counter.inc t.tasks;
      Mutex.protect b.bm (fun () ->
          b.pending <- b.pending - 1;
          if b.pending = 0 then Condition.broadcast b.bcv)
    in
    let base = Atomic.fetch_and_add t.rr 1 in
    Array.iteri (fun i f -> push_bottom t.deques.((base + i) mod nd) (wrap f)) thunks;
    Mutex.protect t.m (fun () -> Condition.broadcast t.work_cv);
    let rec help () =
      if Mutex.protect b.bm (fun () -> b.pending > 0) then begin
        (match try_take t ~own:(-1) with
        | Some task -> exec t (caller_slot t) task
        | None ->
          Mutex.lock b.bm;
          while b.pending > 0 do
            Condition.wait b.bcv b.bm
          done;
          Mutex.unlock b.bm);
        help ()
      end
    in
    help ();
    match b.failed with Some e -> raise e | None -> ()
  end

(* The process-wide pool, created on first demand. *)
let global_lock = Mutex.create ()
let global_pool : t option ref = ref None

let global_seq = Atomic.make 0

let global_name () = Printf.sprintf "global-%d" (Atomic.fetch_and_add global_seq 1)

let global () =
  Mutex.protect global_lock (fun () ->
      match !global_pool with
      | Some p -> p
      | None ->
        let p = create ~name:(global_name ()) ~domains:(default_domains ()) () in
        global_pool := Some p;
        p)

let peek_global () = Mutex.protect global_lock (fun () -> !global_pool)

let reset_global ?domains () =
  Mutex.protect global_lock (fun () ->
      (match !global_pool with Some p -> shutdown p | None -> ());
      global_pool := Some (create ~name:(global_name ()) ?domains ()))
