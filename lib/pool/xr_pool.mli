(** Process-wide domain pool with per-worker work-stealing deques.

    A pool of size [n] delivers [n]-way parallelism: it spawns [n - 1]
    worker domains and counts the domain calling {!run} as the [n]-th
    executor — the submitter helps drain its own batch instead of
    blocking, which also makes nested {!run} calls (a pool task
    submitting a sub-batch) deadlock-free. A pool of size 1 spawns no
    domains at all and runs every batch inline.

    Tasks are pushed to per-worker deques round-robin; each worker pops
    its own deque LIFO and steals FIFO from the others, so a batch of
    similar-sized chunks spreads without a central queue becoming the
    bottleneck. *)

type t

val create : ?name:string -> ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool of total size [domains]
    (clamped to at least 1), spawning [domains - 1] worker domains.
    Default: {!default_domains}. [name] labels the pool's series in the
    process metrics registry ([xr_pool_*_total{pool=...}]); the default
    is unique per instance so a new pool never inherits counts. *)

val size : t -> int
(** Total parallelism of the pool ([worker domains + 1]). *)

val run : t -> (unit -> unit) array -> unit
(** [run t tasks] executes every task and returns when all have
    finished. The calling domain participates: it seeds the deques,
    then pops/steals until its batch drains. If any task raises, one
    such exception is re-raised after the whole batch has finished
    (remaining tasks still run). Safe to call from within a pool task
    and from several domains at once. *)

val try_help : t -> bool
(** [try_help t] takes one queued task (steal-only — the caller owns no
    deque), runs it, and returns [true]; [false] when every visible
    task is already executing. For domains that are blocked on
    something else anyway — a coalesced follower waiting out its
    leader's render donates the wait to the pool instead of sleeping.
    Safe from any domain; never blocks. *)

val queue_depth : t -> int
(** Tasks sitting in the deques right now, not yet taken by an
    executor (monitoring-grade: racing submitters can skew it by a
    task or two). Also exposed as the pull gauge
    [xr_pool_queue_depth{pool=...}]. *)

val shutdown : t -> unit
(** Stop the workers and join their domains. Outstanding tasks are
    drained first. The pool must not be used afterwards; calling
    [shutdown] twice is harmless. *)

(** {1 Counters} *)

type counters = {
  domains : int;  (** pool size (total parallelism) *)
  tasks : int;  (** tasks executed to completion *)
  steals : int;  (** tasks taken from another worker's deque *)
  batches : int;  (** {!run} calls that actually fanned out *)
}

val counters : t -> counters
(** This pool's values, read back from the process metrics registry
    (the same series [/metrics] exposes under the pool's label).
    Beyond these, every pool also publishes busy time per executor
    ([xr_pool_busy_ns_total{pool,domain}], where [domain] is the
    worker index or ["caller"] for the submitting/helping domain),
    scrape-time utilization ([xr_pool_utilization{pool,domain}] =
    busy / wall since creation), and live queue depth
    ([xr_pool_queue_depth{pool}]). *)

(** {1 The process-wide pool} *)

val default_domains : unit -> int
(** [XR_POOL_DOMAINS] when set to a positive integer; when set to
    ["auto"] (or unset), [Domain.recommended_domain_count ()]. *)

val global : unit -> t
(** The lazily created shared pool (sized by {!default_domains}).
    Created on first use so short-lived CLI runs below the parallel
    threshold never spawn domains. *)

val peek_global : unit -> t option
(** The shared pool if it has been created, without creating it. *)

val reset_global : ?domains:int -> unit -> unit
(** Shut down the shared pool (if any) and install a fresh one of the
    given size. Test hook: lets a suite compare pool sizes 1 and 4 in
    one process. Must not race with in-flight {!run} calls. *)
