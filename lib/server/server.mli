(** The query-serving subsystem: live sharded corpora, many worker
    domains.

    An acceptor loop (run on the caller's domain by {!run}) accepts
    connections and submits them to a bounded queue drained by a pool of
    worker {!Domain}s ({!Pool}). Admission control: when the queue is at
    its bound the acceptor answers [503] immediately instead of queueing
    unboundedly. Each connection carries a deadline from the moment it
    is accepted — connections that exceeded it while queued are dropped
    with [503], and socket reads and writes are bounded by the same
    budget.

    Corpora ({!start_corpora}) are partitioned round-robin over serving
    shards; each shard owns its member corpora's generation chains
    ({!Xr_ingest.Generation}), write paths ({!Xr_ingest.Ingest}) and a
    sharded result LRU ({!Lru}). A query pins the current generation of
    every corpus it touches, fans out over the shards through the shared
    {!Xr_pool}, and merges the ranked partials (scatter-gather). Cache
    keys embed the pinned generation ids, so a cached body can never
    outlive the index swap that invalidated it. With a single corpus the
    response schemas are byte-identical to the pre-ingest server.

    Endpoints (schemas in [doc/SERVER.md]): [GET] [/search], [/refine],
    [/suggest], [/complete], [/stats], [/metrics.json], [/debug/trace],
    [/health] serve JSON; [/metrics] serves the Prometheus text
    exposition of the process {!Xr_obs.Registry}; [POST /ingest] submits
    an XML document to a corpus's write path (see [doc/INGEST.md]).
    Every request runs under an {!Xr_obs.Tracing} trace (when [trace] is
    on), queryable at [/debug/trace?last=N] and reported by the
    slow-query log ([slow_query_ms]). *)

type address =
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)
  | Unix_socket of string  (** path; unlinked before binding *)

type config = {
  addr : address;
  domains : int;  (** worker domains; default [Domain.recommended_domain_count ()] *)
  queue_bound : int;  (** admission-control limit on queued connections; default 64 *)
  cache_capacity : int;  (** result-cache entries overall; [0] disables; default 512 *)
  cache_shards : int;  (** default 8 *)
  deadline_ms : float;  (** per-request time budget; default 5000 *)
  keepalive_requests : int;  (** max requests served per connection; default 1000 *)
  result_limit : int;  (** default cap on rendered result arrays; default 20 *)
  parallel_threshold : int;
      (** postings below which SLCA/refinement subtasks skip the shared
          {!Xr_pool} and run sequentially (applied process-wide via
          {!Xr_slca.Parallel.set_threshold} at {!start});
          default {!Xr_slca.Parallel.default_threshold} *)
  limits : Http.limits;
  log : bool;  (** request log on stderr; default false *)
  trace : bool;
      (** record per-request spans into the {!Xr_obs.Tracing} ring
          buffers (enables [/debug/trace] and span breakdowns in the
          slow-query log); default true *)
  slow_query_ms : float;
      (** log one structured stderr line (with span breakdown) for each
          request at or above this many milliseconds; [0] disables
          (default) *)
  shards : int;
      (** serving shards the corpora are partitioned over (clamped to
          the corpus count); [0] (default) gives every corpus its own
          shard *)
  ingest_queue : int;  (** per-corpus ingest queue bound; default 256 *)
  ingest_batch : int;
      (** max documents merged into one published generation; default 32 *)
  batch : bool;
      (** batched execution: compiled query plans ({!Xr_batch.Plan})
          cached per corpus and keyed by generation id, plus
          single-flight coalescing of concurrent identical requests
          ({!Xr_batch.Coalesce}); responses stay byte-identical to the
          unbatched path; default true *)
  coalesce_window_ms : float;
      (** optional wait before a coalesced flight's leader renders,
          widening the pile-up interval (latency-for-throughput trade);
          [0] (default) adds no latency and still coalesces genuine
          overlap *)
  plan_cache_capacity : int;
      (** compiled-plan entries cached per corpus; [0] disables plan
          caching while keeping coalescing; default 512 *)
}

val default_config : config

(** One corpus to serve: a name (addressable via [?corpus=] and
    [POST /ingest?corpus=]; also the [corpus] label on ingest metrics),
    its initial index, and optionally the open store ingest persists
    each published generation into. *)
type corpus_spec = {
  name : string;
  index : Xr_index.Index.t;
  kv : Xr_store.Kv.t option;
}

type t

(** [start_corpora config specs] binds the listening socket, builds the
    per-corpus generation chains, completion tries and ingest writers,
    and spawns the worker pool. The acceptor is not running yet — call
    {!run}. *)
val start_corpora : config -> corpus_spec list -> t

(** [start config index] is {!start_corpora} with the single corpus
    ["default"] and no persistence. *)
val start : config -> Xr_index.Index.t -> t

(** [run t] is the blocking acceptor loop; it returns after {!stop},
    once the workers have drained and joined. *)
val run : t -> unit

(** [bound_addr t] is the actual listening address (useful with port 0). *)
val bound_addr : t -> Unix.sockaddr

val stop : t -> unit

(** [handle t req] is the routing/dispatch core used by the workers,
    exposed for in-process testing: it touches the cache and metrics but
    no sockets. *)
val handle : t -> Http.request -> Http.response

val metrics : t -> Metrics.t

(** [cache t] is the first shard's result cache (the only one in
    single-corpus mode). *)
val cache : t -> Lru.t

val queue_depth : t -> int
