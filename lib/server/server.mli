(** The query-serving subsystem: one resident index, many worker domains.

    An acceptor loop (run on the caller's domain by {!run}) accepts
    connections and submits them to a bounded queue drained by a pool of
    worker {!Domain}s ({!Pool}); the index is shared immutably across all
    of them. Admission control: when the queue is at its bound the
    acceptor answers [503] immediately instead of queueing unboundedly.
    Each connection carries a deadline from the moment it is accepted —
    connections that exceeded it while queued are dropped with [503], and
    socket reads and writes are bounded by the same budget. Responses to
    [/search], [/refine], [/suggest] and [/complete] are cached in a
    sharded LRU ({!Lru}) keyed by the normalized query and parameters.

    Endpoints (all [GET] — schemas in [doc/SERVER.md]): [/search],
    [/refine], [/suggest], [/complete], [/stats], [/metrics.json],
    [/debug/trace], [/health] serve JSON; [/metrics] serves the
    Prometheus text exposition of the process {!Xr_obs.Registry}. Every
    request runs under an {!Xr_obs.Tracing} trace (when [trace] is on),
    queryable at [/debug/trace?last=N] and reported by the slow-query
    log ([slow_query_ms]). *)

type address =
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)
  | Unix_socket of string  (** path; unlinked before binding *)

type config = {
  addr : address;
  domains : int;  (** worker domains; default [Domain.recommended_domain_count ()] *)
  queue_bound : int;  (** admission-control limit on queued connections; default 64 *)
  cache_capacity : int;  (** result-cache entries overall; [0] disables; default 512 *)
  cache_shards : int;  (** default 8 *)
  deadline_ms : float;  (** per-request time budget; default 5000 *)
  keepalive_requests : int;  (** max requests served per connection; default 1000 *)
  result_limit : int;  (** default cap on rendered result arrays; default 20 *)
  parallel_threshold : int;
      (** postings below which SLCA/refinement subtasks skip the shared
          {!Xr_pool} and run sequentially (applied process-wide via
          {!Xr_slca.Parallel.set_threshold} at {!start});
          default {!Xr_slca.Parallel.default_threshold} *)
  limits : Http.limits;
  log : bool;  (** request log on stderr; default false *)
  trace : bool;
      (** record per-request spans into the {!Xr_obs.Tracing} ring
          buffers (enables [/debug/trace] and span breakdowns in the
          slow-query log); default true *)
  slow_query_ms : float;
      (** log one structured stderr line (with span breakdown) for each
          request at or above this many milliseconds; [0] disables
          (default) *)
}

val default_config : config

type t

(** [start config index] binds the listening socket, builds the
    completion trie, and spawns the worker pool. The acceptor is not
    running yet — call {!run}. *)
val start : config -> Xr_index.Index.t -> t

(** [run t] is the blocking acceptor loop; it returns after {!stop},
    once the workers have drained and joined. *)
val run : t -> unit

(** [bound_addr t] is the actual listening address (useful with port 0). *)
val bound_addr : t -> Unix.sockaddr

val stop : t -> unit

(** [handle t req] is the routing/dispatch core used by the workers,
    exposed for in-process testing: it touches the cache and metrics but
    no sockets. *)
val handle : t -> Http.request -> Http.response

val metrics : t -> Metrics.t

val cache : t -> Lru.t

val queue_depth : t -> int
