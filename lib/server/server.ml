module Index = Xr_index.Index
module Engine = Xr_refine.Engine

type address = Tcp of string * int | Unix_socket of string

type config = {
  addr : address;
  domains : int;
  queue_bound : int;
  cache_capacity : int;
  cache_shards : int;
  deadline_ms : float;
  keepalive_requests : int;
  result_limit : int;
  parallel_threshold : int;
  limits : Http.limits;
  log : bool;
  trace : bool;  (* per-request span recording + /debug/trace *)
  slow_query_ms : float;  (* log requests at or above this; 0 = off *)
}

let default_config =
  {
    addr = Tcp ("127.0.0.1", 8080);
    domains = Domain.recommended_domain_count ();
    queue_bound = 64;
    cache_capacity = 512;
    cache_shards = 8;
    deadline_ms = 5000.;
    keepalive_requests = 1000;
    result_limit = 20;
    parallel_threshold = Xr_slca.Parallel.default_threshold;
    limits = Http.default_limits;
    log = false;
    trace = true;
    slow_query_ms = 0.;
  }

type conn = { fd : Unix.file_descr; accepted_at : float }

type t = {
  config : config;
  index : Index.t;
  trie : Xr_text.Trie.t;
  result_cache : Lru.t;
  server_metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  pool : conn Pool.t;
  log_lock : Mutex.t;
}

let metrics t = t.server_metrics

let cache t = t.result_cache

let queue_depth t = Pool.depth t.pool

(* ---- request handling --------------------------------------------------- *)

let bad_request msg = Http.json_response ~status:400 (Api.error_payload msg)

let tokenized_query req =
  Xr_obs.Tracing.with_span "parse" (fun () ->
      match Http.query_param req "q" with
      | None -> Error (bad_request "missing query parameter q")
      | Some raw -> (
        match Xr_xml.Token.tokenize raw with
        | [] -> Error (bad_request "query has no keywords")
        | toks -> Ok toks))

let int_param req name ~default =
  match Http.query_param req name with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (bad_request (Printf.sprintf "parameter %s must be an integer" name)))

let bool_param req name =
  match Http.query_param req name with
  | Some ("true" | "1" | "yes") -> true
  | _ -> false

(* Serve from the LRU under [key], computing (and caching) the JSON body
   on a miss. The cached unit is the serialized body, so hits are
   byte-identical to the response that populated them. *)
let with_cache t key compute =
  match Xr_obs.Tracing.with_span "cache" (fun () -> Lru.find t.result_cache key) with
  | Some body ->
    {
      (Http.response ~status:200 ~headers:[ ("content-type", "application/json") ] body) with
      Http.resp_headers =
        [ ("content-type", "application/json"); ("x-cache", "hit") ];
    }
  | None ->
    let payload = compute () in
    let body = Json.to_string payload ^ "\n" in
    Lru.add t.result_cache key body;
    Http.response ~status:200
      ~headers:[ ("content-type", "application/json"); ("x-cache", "miss") ]
      body

let handle_search t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let* query = tokenized_query req in
  let alg_name =
    match Http.query_param req "alg" with Some a -> a | None -> "scan-parallel"
  in
  match Xr_slca.Engine.of_name alg_name with
  | None -> bad_request (Printf.sprintf "unknown SLCA engine %s" alg_name)
  | Some slca ->
    let rank = bool_param req "rank" in
    let* limit = int_param req "limit" ~default:t.config.result_limit in
    let key =
      Printf.sprintf "search|%s|%b|%d|%s" alg_name rank limit (String.concat " " query)
    in
    with_cache t key (fun () ->
        let config = { Engine.default_config with Engine.slca } in
        let slcas = Engine.search ~config t.index query in
        let entries =
          if rank then
            let ids =
              List.filter_map (Xr_xml.Doc.keyword_id t.index.Index.doc) query
            in
            Xr_slca.Result_rank.rank t.index.Index.stats ~query:ids slcas
          else List.map (fun d -> (d, 0.)) slcas
        in
        Api.search_payload t.index ~query ~ranked:rank ~limit entries)

let handle_refine t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let* query = tokenized_query req in
  let alg_name =
    match Http.query_param req "alg" with Some a -> a | None -> "partition"
  in
  match Engine.algorithm_of_name alg_name with
  | None -> bad_request (Printf.sprintf "unknown refinement algorithm %s" alg_name)
  | Some algorithm ->
    let* k = int_param req "k" ~default:3 in
    let* limit = int_param req "limit" ~default:t.config.result_limit in
    let key =
      Printf.sprintf "refine|%s|%d|%d|%s" alg_name k limit (String.concat " " query)
    in
    with_cache t key (fun () ->
        let config = { Engine.default_config with Engine.k; algorithm } in
        let resp = Engine.refine ~config t.index query in
        Api.refine_payload t.index ~query ~limit resp)

let handle_suggest t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let* query = tokenized_query req in
  let* k = int_param req "k" ~default:5 in
  let* limit = int_param req "limit" ~default:t.config.result_limit in
  let key = Printf.sprintf "suggest|%d|%d|%s" k limit (String.concat " " query) in
  with_cache t key (fun () ->
      let config = { Xr_refine.Specialize.default_config with Xr_refine.Specialize.k } in
      let suggestions = Xr_refine.Specialize.suggest ~config t.index query in
      Api.suggest_payload t.index ~query ~limit suggestions)

let handle_complete t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let prefix =
    match Http.query_param req "prefix" with
    | Some p -> Some p
    | None -> Http.query_param req "q"
  in
  match prefix with
  | None -> bad_request "missing query parameter prefix"
  | Some raw ->
    let prefix = Xr_xml.Token.normalize raw in
    if prefix = "" then bad_request "prefix has no keyword characters"
    else
      let* k = int_param req "k" ~default:10 in
      let key = Printf.sprintf "complete|%d|%s" k prefix in
      with_cache t key (fun () ->
          Api.complete_payload ~prefix (Xr_text.Trie.complete t.trie ~limit:k prefix))

let handle t (req : Http.request) =
  if req.Http.meth <> Http.GET then
    Http.json_response ~status:405 (Api.error_payload "only GET is supported")
  else
    match req.Http.path with
    | "/health" -> Http.json_response (Json.Obj [ ("status", Json.String "ok") ])
    | "/metrics" ->
      (* Prometheus text exposition of the whole process registry; the
         legacy JSON document moved to /metrics.json. *)
      Http.response ~status:200
        ~headers:[ ("content-type", Xr_obs.Expo.content_type) ]
        (Xr_obs.Expo.render (Xr_obs.Registry.default ()))
    | "/metrics.json" ->
      Http.json_response
        (Metrics.snapshot t.server_metrics ~queue_depth:(Pool.depth t.pool)
           ~workers:(Pool.domains t.pool) ~cache:(Lru.stats t.result_cache))
    | "/debug/trace" -> (
      match int_param req "last" ~default:16 with
      | Error resp -> resp
      | Ok last ->
        let last = min (max last 0) 256 in
        Http.json_response (Api.trace_payload (Xr_obs.Tracing.recent_traces last)))
    | "/stats" -> Http.json_response (Api.stats_payload ~pool:(Api.pool_payload ()) t.index)
    | "/search" -> handle_search t req
    | "/refine" -> handle_refine t req
    | "/suggest" -> handle_suggest t req
    | "/complete" -> handle_complete t req
    | p -> Http.json_response ~status:404 (Api.error_payload ("no such endpoint " ^ p))

(* ---- per-connection worker ---------------------------------------------- *)

let log_request t req status ms =
  if t.config.log then
    Mutex.protect t.log_lock (fun () ->
        Printf.eprintf "xr_server: %s %s -> %d (%.1f ms)\n%!"
          (Http.meth_to_string req.Http.meth)
          req.Http.target status ms)

let error_response err =
  let open Http in
  match err with
  | Bad_request msg -> Some (json_response ~status:400 (Api.error_payload msg))
  | Too_large msg -> Some (json_response ~status:413 (Api.error_payload msg))
  | Timeout -> Some (json_response ~status:408 (Api.error_payload "request timed out"))
  | Eof -> None

let internal_error = Http.json_response ~status:500 (Api.error_payload "internal error")

(* One structured line per offending request, with its span breakdown
   inlined so the evidence survives ring-buffer eviction. *)
let log_slow_query t req status trace_id ms =
  let threshold = t.config.slow_query_ms in
  if threshold > 0. && ms >= threshold then begin
    let spans = if trace_id = 0 then [] else Xr_obs.Tracing.spans_of_trace trace_id in
    let line =
      Xr_obs.Slowlog.render ~endpoint:req.Http.path ~status ~ms ~trace_id spans
    in
    Mutex.protect t.log_lock (fun () -> Printf.eprintf "%s\n%!" line)
  end

let handle_conn t conn =
  let close () = try Unix.close conn.fd with Unix.Unix_error _ -> () in
  let budget_s = t.config.deadline_ms /. 1000. in
  let waited = Unix.gettimeofday () -. conn.accepted_at in
  if waited > budget_s then begin
    (* The connection blew its deadline sitting in the queue: shed it. *)
    Metrics.record_deadline t.server_metrics;
    (try
       Http.write_all conn.fd
         (Http.serialize ~keep_alive:false
            (Http.json_response ~status:503
               (Api.error_payload "deadline exceeded while queued")))
     with Unix.Unix_error _ -> ());
    close ()
  end
  else begin
    (* Bound reads and writes by the remaining budget (refreshed per
       request below; engine work itself is not interruptible). *)
    (try
       Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO budget_s;
       Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO budget_s
     with Unix.Unix_error _ -> () (* e.g. not supported on this socket *));
    let reader = Http.reader_of_fd conn.fd in
    let rec serve served =
      if served >= t.config.keepalive_requests then close ()
      else
        match Http.read_request ~limits:t.config.limits reader with
        | Error err -> (
          (match error_response err with
          | Some resp -> (
            try Http.write_all conn.fd (Http.serialize ~keep_alive:false resp)
            with Unix.Unix_error _ -> ())
          | None -> ());
          close ())
        | Ok req -> (
          let t0 = Unix.gettimeofday () in
          let resp, trace_id =
            Xr_obs.Tracing.with_trace "request" (fun () ->
                try handle t req with _ -> internal_error)
          in
          let ms = (Unix.gettimeofday () -. t0) *. 1000. in
          let ka = Http.keep_alive req && served + 1 < t.config.keepalive_requests in
          Metrics.record t.server_metrics ~endpoint:req.Http.path ~status:resp.Http.status ~ms;
          log_request t req resp.Http.status ms;
          log_slow_query t req resp.Http.status trace_id ms;
          match Http.write_all conn.fd (Http.serialize ~keep_alive:ka resp) with
          | () -> if ka then serve (served + 1) else close ()
          | exception Unix.Unix_error _ -> close ())
    in
    serve 0
  end

(* ---- lifecycle ----------------------------------------------------------- *)

let build_trie (index : Index.t) =
  let d = index.Index.doc in
  Xr_text.Trie.of_vocabulary
    (List.map
       (fun w ->
         ( w,
           match Xr_xml.Doc.keyword_id d w with
           | Some kw -> Xr_index.Inverted.length index.Index.inverted kw
           | None -> 0 ))
       (Xr_xml.Doc.vocabulary d))

let bind_socket addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> failwith ("cannot resolve host " ^ host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 128;
    fd
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    fd

(* Scrape-time gauges and pulled counters for state owned elsewhere:
   queue depth, worker count, cache statistics, uptime, and the
   (immutable) index footprint. Families are idempotent and [set_pull]
   rebinds, so restarting a server in the same process re-points the
   series at the live instance. *)
let register_observability t =
  let module Reg = Xr_obs.Registry in
  let gauge name help = Reg.Gauge.no_labels (Reg.Gauge.family ~name ~help ()) in
  let pull_gauge name help f = Reg.Gauge.set_pull (gauge name help) f in
  let pull_counter name help f =
    Reg.Counter.set_pull (Reg.Counter.no_labels (Reg.Counter.family ~name ~help ())) f
  in
  pull_gauge "xr_uptime_seconds" "Seconds since server start" (fun () ->
      Unix.gettimeofday () -. Metrics.started_at t.server_metrics);
  pull_gauge "xr_queue_depth" "Connections waiting in the admission queue" (fun () ->
      float_of_int (Pool.depth t.pool));
  pull_gauge "xr_worker_domains" "Request worker domains" (fun () ->
      float_of_int (Pool.domains t.pool));
  pull_counter "xr_cache_hits_total" "Result cache hits" (fun () ->
      float_of_int (Lru.stats t.result_cache).Lru.hits);
  pull_counter "xr_cache_misses_total" "Result cache misses" (fun () ->
      float_of_int (Lru.stats t.result_cache).Lru.misses);
  pull_counter "xr_cache_evictions_total" "Result cache evictions" (fun () ->
      float_of_int (Lru.stats t.result_cache).Lru.evictions);
  pull_gauge "xr_cache_entries" "Result cache resident entries" (fun () ->
      float_of_int (Lru.stats t.result_cache).Lru.entries);
  pull_gauge "xr_cache_capacity" "Result cache capacity" (fun () ->
      float_of_int (Lru.stats t.result_cache).Lru.capacity);
  pull_counter "xr_index_materializations_total"
    "Legacy posting-array materializations from packed lists" (fun () ->
      float_of_int (Xr_index.Inverted.materialization_count t.index.Index.inverted));
  (* The index is read-only after build: measure its footprint once. *)
  let postings = ref 0 and packed_bytes = ref 0 and label_bytes = ref 0 in
  Xr_index.Inverted.iter_packed
    (fun _ pk ->
      postings := !postings + Xr_index.Inverted.packed_postings pk;
      packed_bytes := !packed_bytes + Xr_index.Inverted.packed_bytes pk;
      label_bytes := !label_bytes + Xr_index.Inverted.packed_label_bytes pk)
    t.index.Index.inverted;
  let d = t.index.Index.doc in
  Reg.Gauge.set (gauge "xr_index_postings" "Postings across all inverted lists")
    (float_of_int !postings);
  Reg.Gauge.set (gauge "xr_index_packed_bytes" "Bytes of packed posting data")
    (float_of_int !packed_bytes);
  Reg.Gauge.set
    (gauge "xr_index_label_bytes" "Bytes of varint Dewey labels in packed lists")
    (float_of_int !label_bytes);
  Reg.Gauge.set (gauge "xr_index_keywords" "Distinct keywords in the vocabulary")
    (float_of_int (List.length (Xr_xml.Doc.vocabulary d)));
  Reg.Gauge.set (gauge "xr_index_nodes" "Element nodes in the document")
    (float_of_int (Xr_xml.Doc.node_count d))

let start config index =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if config.trace then Xr_obs.Tracing.enable ();
  (* Request workers submit SLCA subtasks to the shared domain pool;
     queries below this many driver postings stay sequential. *)
  Xr_slca.Parallel.set_threshold config.parallel_threshold;
  let listen_fd = bind_socket config.addr in
  let stop_r, stop_w = Unix.pipe () in
  let tref = ref None in
  let pool =
    Pool.create ~domains:config.domains ~queue_bound:config.queue_bound (fun conn ->
        match !tref with
        | Some t -> handle_conn t conn
        | None -> ( try Unix.close conn.fd with Unix.Unix_error _ -> ()))
  in
  let t =
    {
      config;
      index;
      trie = build_trie index;
      result_cache = Lru.create ~shards:config.cache_shards ~capacity:config.cache_capacity ();
      server_metrics = Metrics.create ();
      listen_fd;
      stop_r;
      stop_w;
      pool;
      log_lock = Mutex.create ();
    }
  in
  tref := Some t;
  register_observability t;
  t

let bound_addr t = Unix.getsockname t.listen_fd

let overloaded =
  Http.json_response ~status:503
    ~headers:[ ("retry-after", "1") ]
    (Api.error_payload "server overloaded, request shed")

let run t =
  Unix.set_nonblock t.listen_fd;
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
      if List.mem t.stop_r readable then () (* stop requested *)
      else begin
        (match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        | fd, _peer ->
          (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
          let conn = { fd; accepted_at = Unix.gettimeofday () } in
          if not (Pool.submit t.pool conn) then begin
            Metrics.record_shed t.server_metrics;
            (try Http.write_all fd (Http.serialize ~keep_alive:false overloaded)
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end);
        loop ()
      end
  in
  loop ();
  Pool.shutdown t.pool;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w ];
  match t.config.addr with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let stop t =
  try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ()
