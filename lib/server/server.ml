module Index = Xr_index.Index
module Engine = Xr_refine.Engine
module Generation = Xr_ingest.Generation
module Ingest = Xr_ingest.Ingest

type address = Tcp of string * int | Unix_socket of string

type config = {
  addr : address;
  domains : int;
  queue_bound : int;
  cache_capacity : int;
  cache_shards : int;
  deadline_ms : float;
  keepalive_requests : int;
  result_limit : int;
  parallel_threshold : int;
  limits : Http.limits;
  log : bool;
  trace : bool;  (* per-request span recording + /debug/trace *)
  slow_query_ms : float;  (* log requests at or above this; 0 = off *)
  shards : int;  (* serving shards; 0 = one per corpus *)
  ingest_queue : int;  (* per-corpus ingest queue bound *)
  ingest_batch : int;  (* max documents merged per generation *)
  batch : bool;  (* compiled plans + single-flight request coalescing *)
  coalesce_window_ms : float;  (* leader wait before rendering; 0 = no added latency *)
  plan_cache_capacity : int;  (* per-corpus compiled-plan entries *)
}

let default_config =
  {
    addr = Tcp ("127.0.0.1", 8080);
    domains = Domain.recommended_domain_count ();
    queue_bound = 64;
    cache_capacity = 512;
    cache_shards = 8;
    deadline_ms = 5000.;
    keepalive_requests = 1000;
    result_limit = 20;
    parallel_threshold = Xr_slca.Parallel.default_threshold;
    limits = Http.default_limits;
    log = false;
    trace = true;
    slow_query_ms = 0.;
    shards = 0;
    ingest_queue = 256;
    ingest_batch = 32;
    batch = true;
    coalesce_window_ms = 0.;
    plan_cache_capacity = 512;
  }

type corpus_spec = { name : string; index : Index.t; kv : Xr_store.Kv.t option }

(* One live corpus: its generation chain, its write path, and the
   completion trie for the current generation (swapped on publish). *)
type corpus_state = {
  cname : string;
  shard_id : int;
  gens : Generation.t;
  ingest : Ingest.t;
  ctrie : Xr_text.Trie.t Atomic.t;
  plans : Xr_batch.Plan_cache.t option;
      (* compiled query plans, keyed by generation id — a publish
         retires them by keyspace, no invalidation hook needed *)
}

(* One serving shard: a subset of the corpora plus its own result cache.
   Cache keys embed the pinned generation ids, so an entry written for
   generation N can never answer a request admitted at N+1 — the cache
   is also cleared on publish, but the tag closes the race where a
   reader still on N inserts after the clear. *)
type shard = {
  sid : int;
  corpora : corpus_state array;
  cache : Lru.t;
  flights : Xr_batch.Coalesce.t option;
      (* single-flight admission on cache misses: concurrent identical
         requests coalesce onto one render *)
}

type conn = { fd : Unix.file_descr; accepted_at : float }

type t = {
  config : config;
  shards : shard array;
  single : bool;  (* exactly one corpus: serve the legacy (byte-stable) schemas *)
  server_metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  pool : conn Pool.t;
  log_lock : Mutex.t;
}

let metrics t = t.server_metrics

let cache t = t.shards.(0).cache

let queue_depth t = Pool.depth t.pool

let iter_corpora t f = Array.iter (fun s -> Array.iter (f s) s.corpora) t.shards

let corpora_names t =
  let acc = ref [] in
  iter_corpora t (fun _ cs -> acc := cs.cname :: !acc);
  List.rev !acc

let find_corpus t name =
  let found = ref None in
  iter_corpora t (fun _ cs -> if cs.cname = name then found := Some cs);
  !found

let combined_cache_stats t =
  Array.fold_left
    (fun (acc : Lru.stats) s ->
      let st = Lru.stats s.cache in
      {
        Lru.hits = acc.Lru.hits + st.Lru.hits;
        misses = acc.Lru.misses + st.Lru.misses;
        entries = acc.Lru.entries + st.Lru.entries;
        evictions = acc.Lru.evictions + st.Lru.evictions;
        capacity = acc.Lru.capacity + st.Lru.capacity;
        shards = acc.Lru.shards + st.Lru.shards;
      })
    { Lru.hits = 0; misses = 0; entries = 0; evictions = 0; capacity = 0; shards = 0 }
    t.shards

(* ---- request-scoped corpus attribution ---------------------------------- *)

(* Which (corpus, generation, index mode) tuples a request was actually
   served from — recorded at pin time in [shard_body], consumed by the
   slow-query log so a slow line stays attributable after a publish has
   swapped the index. Ambient like the tracing context; [fan_out]
   re-installs it on pool domains. Only installed when the slow-query
   log is armed, so normal serving never touches it. *)
module Served = struct
  type sink = { sm : Mutex.t; mutable items : (string * int * string) list }

  let key : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let current () = Domain.DLS.get key

  let install s f =
    match s with
    | None -> f ()
    | Some _ ->
      let saved = Domain.DLS.get key in
      Domain.DLS.set key s;
      Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) f

  let with_sink f =
    let s = { sm = Mutex.create (); items = [] } in
    let saved = Domain.DLS.get key in
    Domain.DLS.set key (Some s);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set key saved)
      (fun () ->
        let v = f () in
        (v, List.rev s.items))

  let note cname (gen : Generation.gen) =
    match Domain.DLS.get key with
    | None -> ()
    | Some s ->
      let mode = Index.mode_name (Index.mode gen.Generation.index) in
      let item = (cname, gen.Generation.id, mode) in
      Mutex.protect s.sm (fun () ->
          if not (List.mem item s.items) then s.items <- item :: s.items)
end

(* ---- request handling --------------------------------------------------- *)

let bad_request msg = Http.json_response ~status:400 (Api.error_payload msg)

let tokenized_query req =
  Xr_obs.Tracing.with_span "parse" (fun () ->
      match Http.query_param req "q" with
      | None -> Error (bad_request "missing query parameter q")
      | Some raw -> (
        match Xr_xml.Token.tokenize raw with
        | [] -> Error (bad_request "query has no keywords")
        | toks -> Ok toks))

let int_param req name ~default =
  match Http.query_param req name with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (bad_request (Printf.sprintf "parameter %s must be an integer" name)))

let bool_param req name =
  match Http.query_param req name with
  | Some ("true" | "1" | "yes") -> true
  | _ -> false

(* The corpora a request addresses: all of them, or the one named by
   [?corpus=] (scatter-gather restricted to a single member). *)
let served_corpora t req =
  match Http.query_param req "corpus" with
  | None -> Ok None
  | Some name -> (
    match find_corpus t name with
    | Some _ -> Ok (Some name)
    | None ->
      Error (Http.json_response ~status:404 (Api.error_payload ("unknown corpus " ^ name))))

let shard_members shard only =
  match only with
  | None -> Array.to_list shard.corpora
  | Some name -> List.filter (fun cs -> cs.cname = name) (Array.to_list shard.corpora)

(* Per-shard cached evaluation. Pins every served corpus of the shard,
   tags the cache key with the pinned generation ids, and either serves
   the cached body or renders [render pins] and caches it. The cached
   unit is the serialized body, so hits are byte-identical to the
   response that populated them. *)
let shard_body ?(cache = true) shard members ~base_key ~render =
  let pins = List.map (fun cs -> (cs, Generation.pin cs.gens)) members in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, g) -> Generation.unpin g) pins)
  @@ fun () ->
  List.iter (fun (cs, g) -> Served.note cs.cname g) pins;
  let gsig =
    String.concat ","
      (List.map (fun (_, g) -> string_of_int g.Generation.id) pins)
  in
  let key = Printf.sprintf "g%s|%s" gsig base_key in
  if not cache then
    (* ANALYZE runs report fresh actuals: no cache read or write, no
       coalescing onto another request's render. *)
    (render pins, false)
  else
    match Xr_obs.Tracing.with_span "cache" (fun () -> Lru.find shard.cache key) with
    | Some body -> (body, true)
    | None -> (
      match shard.flights with
      | None ->
        let body = render pins in
        Lru.add shard.cache key body;
        (body, false)
      | Some flights ->
        (* Single-flight on the generation-tagged key: every member of a
           coalesced flight pinned the same generations (key equality),
           so the leader's bytes answer all of them. Followers count as
           cache hits — they were served without rendering. *)
        let body, follower = Xr_batch.Coalesce.run flights ~key (fun () -> render pins) in
        if not follower then Lru.add shard.cache key body;
        (body, follower))

(* Fan a computation out over the shards that serve this request. One
   shard runs inline; several go through the shared domain pool (the
   scatter of scatter-gather). Results come back in shard order. *)
let fan_out tasks =
  match tasks with
  | [| task |] -> [| task () |]
  | tasks ->
    let n = Array.length tasks in
    let out = Array.make n None in
    let sink = Served.current () in
    Xr_pool.run
      (Xr_pool.global ())
      (Array.mapi
         (fun i task () ->
           out.(i) <-
             Some (try Ok (Served.install sink task) with e -> Error e))
         tasks);
    Array.map
      (function Some (Ok v) -> v | Some (Error e) -> raise e | None -> assert false)
      out

let json_body body headers = Http.response ~status:200 ~headers body

let cache_headers hit =
  [ ("content-type", "application/json"); ("x-cache", (if hit then "hit" else "miss")) ]

(* Evaluate a cacheable endpoint. [render_one] renders a single corpus
   at a pinned generation (handed whole, so plan caches can key on its
   id) to its (legacy, byte-stable) payload. In single-corpus mode the
   response body is exactly that payload; with several corpora each
   shard caches a JSON list of corpus-wrapped payloads and [merge]
   combines the parsed partials. *)
let gather ?cache t req ~base_key ~render_one ~merge =
  match served_corpora t req with
  | Error resp -> resp
  | Ok only ->
    let shards =
      List.filter
        (fun (_, members) -> members <> [])
        (List.map (fun s -> (s, shard_members s only)) (Array.to_list t.shards))
    in
    if t.single then
      let shard, members = List.hd shards in
      let body, hit =
        shard_body ?cache shard members ~base_key ~render:(fun pins ->
            let cs, gen = List.hd pins in
            Json.to_string (render_one cs gen) ^ "\n")
      in
      json_body body (cache_headers hit)
    else
      let render pins =
        Json.to_string
          (Json.List
             (List.map
                (fun (cs, gen) ->
                  match render_one cs gen with
                  | Json.Obj fields ->
                    Json.Obj (("corpus", Json.String cs.cname) :: fields)
                  | j -> j)
                pins))
      in
      let partials =
        fan_out
          (Array.of_list
             (List.map
                (fun (shard, members) () -> shard_body ?cache shard members ~base_key ~render)
                shards))
      in
      let parsed =
        List.concat_map
          (fun (body, _) ->
            match Json.of_string body with
            | Ok (Json.List l) -> l
            | Ok j -> [ j ]
            | Error _ -> [])
          (Array.to_list partials)
      in
      let hit = Array.for_all (fun (_, h) -> h) partials in
      let body = Json.to_string (merge parsed) ^ "\n" in
      json_body body (cache_headers hit)

(* ---- merge helpers for the gather (multi-corpus) schemas -------------- *)

let json_str name j =
  match Json.member name j with Some (Json.String s) -> s | _ -> ""

let json_int name j = match Json.member name j with Some (Json.Int n) -> n | _ -> 0

let json_list name j = match Json.member name j with Some (Json.List l) -> l | _ -> []

let json_float name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.

(* Tag each result item with its corpus and merge the per-corpus ranked
   lists: score descending, ties by (corpus, dewey) so the order is
   deterministic across runs and cache states. *)
let merge_search t ~query ~ranked ~limit parsed =
  let items =
    List.concat_map
      (fun payload ->
        let corpus = json_str "corpus" payload in
        List.map
          (fun item ->
            match item with
            | Json.Obj fields -> Json.Obj (("corpus", Json.String corpus) :: fields)
            | j -> j)
          (json_list "results" payload))
      parsed
  in
  let items =
    if ranked then
      List.stable_sort
        (fun a b ->
          let c = Float.compare (json_float "score" b) (json_float "score" a) in
          if c <> 0 then c
          else
            let c = String.compare (json_str "corpus" a) (json_str "corpus" b) in
            if c <> 0 then c
            else String.compare (json_str "dewey" a) (json_str "dewey" b))
        items
    else items
  in
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  let items = if limit < 0 then items else take limit items in
  Json.Obj
    [
      ("query", Json.List (List.map (fun k -> Json.String k) query));
      ("count", Json.Int (List.fold_left (fun a p -> a + json_int "count" p) 0 parsed));
      ("ranked", Json.Bool ranked);
      ("shards", Json.Int (Array.length t.shards));
      ("corpora", Json.List (List.map (fun n -> Json.String n) (corpora_names t)));
      ("results", Json.List items);
    ]

(* Refine/suggest outcomes are corpus-local (refinement candidates are
   scored against one corpus's statistics), so the gather keeps them
   side by side instead of inventing a cross-corpus ranking. *)
let merge_by_corpus t ~query parsed =
  Json.Obj
    [
      ("query", Json.List (List.map (fun k -> Json.String k) query));
      ("shards", Json.Int (Array.length t.shards));
      ("corpora", Json.List parsed);
    ]

let merge_complete ~prefix ~k parsed =
  let tally = Hashtbl.create 32 in
  List.iter
    (fun payload ->
      List.iter
        (fun item ->
          let w = json_str "keyword" item in
          let n = json_int "occurrences" item in
          Hashtbl.replace tally w (n + try Hashtbl.find tally w with Not_found -> 0))
        (json_list "completions" payload))
    parsed;
  let merged =
    Hashtbl.fold (fun w n acc -> (w, n) :: acc) tally []
    |> List.sort (fun (wa, na) (wb, nb) ->
           let c = Int.compare nb na in
           if c <> 0 then c else String.compare wa wb)
  in
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  Api.complete_payload ~prefix (take k merged)

(* ---- endpoint handlers ------------------------------------------------ *)

(* Attach EXPLAIN (and ANALYZE) blocks to one corpus render. The plan
   block is built first so its compile (and possible measure pass) is
   not charged to the execution's GC delta; ANALYZE installs the
   collection channel, times the render, and captures the handler-side
   GC around exactly the computation. *)
let with_introspection ~explain_p ~analyze ~explain compute =
  if not explain_p then compute ()
  else begin
    let xfield = ("explain", explain ()) in
    if not analyze then
      match compute () with
      | Json.Obj fields -> Json.Obj (fields @ [ xfield ])
      | j -> j
    else begin
      let g0 = Xr_obs.Runtime.capture () in
      let t0 = Xr_obs.Tracing.now_ns () in
      let payload, report = Xr_obs.Analyze.with_report compute in
      let ms = Int64.to_float (Int64.sub (Xr_obs.Tracing.now_ns ()) t0) /. 1e6 in
      let gc = Xr_obs.Runtime.delta g0 in
      let spans =
        (* completed children of the open request trace: the per-stage
           durations this render just produced *)
        match Xr_obs.Tracing.current_trace_id () with
        | 0 -> []
        | tid ->
          List.filter
            (fun (s : Xr_obs.Tracing.span) -> s.Xr_obs.Tracing.parent_id <> 0)
            (Xr_obs.Tracing.spans_of_trace tid)
      in
      match payload with
      | Json.Obj fields ->
        Json.Obj
          (fields @ [ xfield; ("analyze", Api.analyze_payload ~ms ~gc ~spans report) ])
      | j -> j
    end
  end

let handle_search t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let* query = tokenized_query req in
  let alg_name =
    match Http.query_param req "alg" with Some a -> a | None -> "scan-parallel"
  in
  match Xr_slca.Engine.of_name alg_name with
  | None -> bad_request (Printf.sprintf "unknown SLCA engine %s" alg_name)
  | Some slca ->
    let rank = bool_param req "rank" in
    let analyze = bool_param req "analyze" in
    let explain_p = bool_param req "explain" || analyze in
    let* limit = int_param req "limit" ~default:t.config.result_limit in
    let base_key =
      Printf.sprintf "search|%s|%b|%d|%s%s" alg_name rank limit (String.concat " " query)
        (if explain_p then if analyze then "|analyze" else "|explain" else "")
    in
    let render_one cs (gen : Generation.gen) =
      let index = gen.Generation.index in
      let config = { Engine.default_config with Engine.slca } in
      let compute () =
        let slcas =
          match cs.plans with
          | None -> Engine.search ~config index query
          | Some plans -> (
            (* the generation id in the key scopes the plan to exactly the
               pinned snapshot; a publish shifts the keyspace and the old
               plans age out *)
            let pkey =
              Printf.sprintf "s|%d|%s|%s" gen.Generation.id alg_name
                (String.concat " " query)
            in
            match
              Xr_batch.Plan_cache.find_or_compile plans ~key:pkey (fun () ->
                  Xr_batch.Plan_cache.Search (Xr_batch.Plan.compile_search ~config index query))
            with
            | Xr_batch.Plan_cache.Search plan -> Xr_batch.Plan.run_search ~config plan index
            | Xr_batch.Plan_cache.Refine _ -> Engine.search ~config index query)
        in
        let entries =
          if rank then
            let ids = List.filter_map (Xr_xml.Doc.keyword_id index.Index.doc) query in
            Xr_slca.Result_rank.rank index.Index.stats ~query:ids slcas
          else List.map (fun d -> (d, 0.)) slcas
        in
        Api.search_payload index ~query ~ranked:rank ~limit entries
      in
      with_introspection ~explain_p ~analyze
        ~explain:(fun () ->
          Api.explain_payload (Xr_batch.Plan.explain_search ~config index query))
        compute
    in
    gather ~cache:(not analyze) t req ~base_key ~render_one
      ~merge:(merge_search t ~query ~ranked:rank ~limit)

let handle_refine t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let* query = tokenized_query req in
  let alg_name =
    match Http.query_param req "alg" with Some a -> a | None -> "partition"
  in
  match Engine.algorithm_of_name alg_name with
  | None -> bad_request (Printf.sprintf "unknown refinement algorithm %s" alg_name)
  | Some algorithm ->
    let* k = int_param req "k" ~default:3 in
    let* limit = int_param req "limit" ~default:t.config.result_limit in
    let analyze = bool_param req "analyze" in
    let explain_p = bool_param req "explain" || analyze in
    let base_key =
      Printf.sprintf "refine|%s|%d|%d|%s%s" alg_name k limit (String.concat " " query)
        (if explain_p then if analyze then "|analyze" else "|explain" else "")
    in
    let render_one cs (gen : Generation.gen) =
      let index = gen.Generation.index in
      let config = { Engine.default_config with Engine.k; algorithm } in
      let compute () =
        let resp =
          match cs.plans with
          | None -> Engine.refine ~config index query
          | Some plans -> (
            (* the compiled rule list depends only on the query and the
               generation — not on [k] or the refinement algorithm — so
               one plan serves every (k, alg) combination *)
            let pkey =
              Printf.sprintf "r|%d|%s" gen.Generation.id (String.concat " " query)
            in
            match
              Xr_batch.Plan_cache.find_or_compile plans ~key:pkey (fun () ->
                  Xr_batch.Plan_cache.Refine (Xr_batch.Plan.compile_refine ~config index query))
            with
            | Xr_batch.Plan_cache.Refine plan ->
              Xr_batch.Plan.run_refine ~config plan index query
            | Xr_batch.Plan_cache.Search _ -> Engine.refine ~config index query)
        in
        Api.refine_payload index ~query ~limit resp
      in
      with_introspection ~explain_p ~analyze
        ~explain:(fun () ->
          Api.explain_refine_payload (Xr_batch.Plan.explain_refine ~config index query))
        compute
    in
    gather ~cache:(not analyze) t req ~base_key ~render_one ~merge:(merge_by_corpus t ~query)

let handle_suggest t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let* query = tokenized_query req in
  let* k = int_param req "k" ~default:5 in
  let* limit = int_param req "limit" ~default:t.config.result_limit in
  let base_key = Printf.sprintf "suggest|%d|%d|%s" k limit (String.concat " " query) in
  let render_one _cs (gen : Generation.gen) =
    let index = gen.Generation.index in
    let config = { Xr_refine.Specialize.default_config with Xr_refine.Specialize.k } in
    let suggestions = Xr_refine.Specialize.suggest ~config index query in
    Api.suggest_payload index ~query ~limit suggestions
  in
  gather t req ~base_key ~render_one ~merge:(merge_by_corpus t ~query)

let handle_complete t req =
  let ( let* ) r f = match r with Error resp -> resp | Ok v -> f v in
  let prefix =
    match Http.query_param req "prefix" with
    | Some p -> Some p
    | None -> Http.query_param req "q"
  in
  match prefix with
  | None -> bad_request "missing query parameter prefix"
  | Some raw ->
    let prefix = Xr_xml.Token.normalize raw in
    if prefix = "" then bad_request "prefix has no keyword characters"
    else
      let* k = int_param req "k" ~default:10 in
      let base_key = Printf.sprintf "complete|%d|%s" k prefix in
      let render_one cs (_gen : Generation.gen) =
        Api.complete_payload ~prefix
          (Xr_text.Trie.complete (Atomic.get cs.ctrie) ~limit:k prefix)
      in
      gather t req ~base_key ~render_one ~merge:(merge_complete ~prefix ~k)

let handle_ingest t req =
  let cs =
    match Http.query_param req "corpus" with
    | Some name -> (
      match find_corpus t name with
      | Some cs -> Ok cs
      | None ->
        Error (Http.json_response ~status:404 (Api.error_payload ("unknown corpus " ^ name))))
    | None ->
      if t.single then Ok t.shards.(0).corpora.(0)
      else Error (bad_request "several corpora are served; pass ?corpus=NAME")
  in
  match cs with
  | Error resp -> resp
  | Ok cs -> (
    if String.trim req.Http.body = "" then bad_request "empty body: POST the XML document"
    else
      match Ingest.submit_string cs.ingest req.Http.body with
      | Error (Ingest.Parse _ as e) -> bad_request (Ingest.error_to_string e)
      | Error e ->
        Http.json_response ~status:503
          ~headers:[ ("retry-after", "1") ]
          (Api.error_payload (Ingest.error_to_string e))
      | Ok () ->
        let sync = bool_param req "sync" in
        let generation =
          if sync then Ingest.flush cs.ingest else Generation.current_id cs.gens
        in
        Http.json_response
          (Json.Obj
             [
               ("accepted", Json.Bool true);
               ("corpus", Json.String cs.cname);
               ("shard", Json.Int cs.shard_id);
               ("generation", Json.Int generation);
               ("queue_depth", Json.Int (Ingest.queue_depth cs.ingest));
               ("synced", Json.Bool sync);
             ]))

let plan_entries t =
  let acc = ref 0 in
  iter_corpora t (fun _ cs ->
      match cs.plans with Some p -> acc := !acc + Xr_batch.Plan_cache.size p | None -> ());
  !acc

let handle_stats t =
  let batch = Api.batch_payload ~enabled:t.config.batch ~plan_entries:(plan_entries t) () in
  if t.single then
    let cs = t.shards.(0).corpora.(0) in
    Generation.with_pinned cs.gens (fun gen ->
        Http.json_response
          (Api.stats_payload ~pool:(Api.pool_payload ()) ~batch gen.Generation.index))
  else
    let corpora = ref [] in
    iter_corpora t (fun shard cs ->
        let payload =
          Generation.with_pinned cs.gens (fun gen ->
              Api.stats_payload gen.Generation.index)
        in
        let fields = match payload with Json.Obj f -> f | j -> [ ("stats", j) ] in
        corpora :=
          Json.Obj
            (("corpus", Json.String cs.cname)
            :: ("shard", Json.Int shard.sid)
            :: ("generation", Json.Int (Generation.current_id cs.gens))
            :: fields)
          :: !corpora);
    Http.json_response
      (Json.Obj
         [
           ("shards", Json.Int (Array.length t.shards));
           ("corpora", Json.List (List.rev !corpora));
           ("pool", Api.pool_payload ());
           ("batch", batch);
         ])

let handle t (req : Http.request) =
  match (req.Http.path, req.Http.meth) with
  | "/ingest", Http.POST -> handle_ingest t req
  | "/ingest", _ ->
    Http.json_response ~status:405 (Api.error_payload "only POST is supported on /ingest")
  | _, m when m <> Http.GET ->
    Http.json_response ~status:405 (Api.error_payload "only GET is supported")
  | path, _ -> (
    match path with
    | "/health" -> Http.json_response (Json.Obj [ ("status", Json.String "ok") ])
    | "/metrics" ->
      (* Prometheus text exposition of the whole process registry; the
         legacy JSON document moved to /metrics.json. *)
      Http.response ~status:200
        ~headers:[ ("content-type", Xr_obs.Expo.content_type) ]
        (Xr_obs.Expo.render (Xr_obs.Registry.default ()))
    | "/metrics.json" ->
      Http.json_response
        (Metrics.snapshot t.server_metrics ~queue_depth:(Pool.depth t.pool)
           ~workers:(Pool.domains t.pool) ~cache:(combined_cache_stats t))
    | "/debug/trace" -> (
      match Http.query_param req "id" with
      | Some id -> (
        (* exact-trace lookup: the path exemplars and slow-query log
           lines point at *)
        match int_of_string_opt id with
        | None -> bad_request "parameter id must be an integer"
        | Some tid -> (
          match Xr_obs.Tracing.spans_of_trace tid with
          | [] ->
            Http.json_response ~status:404
              (Api.error_payload (Printf.sprintf "no recorded trace %d" tid))
          | spans -> Http.json_response (Api.trace_payload [ (tid, spans) ])))
      | None -> (
        match int_param req "last" ~default:16 with
        | Error resp -> resp
        | Ok last ->
          let last = min (max last 0) 256 in
          Http.json_response (Api.trace_payload (Xr_obs.Tracing.recent_traces last))))
    | "/stats" -> handle_stats t
    | "/search" -> handle_search t req
    | "/refine" -> handle_refine t req
    | "/suggest" -> handle_suggest t req
    | "/complete" -> handle_complete t req
    | p -> Http.json_response ~status:404 (Api.error_payload ("no such endpoint " ^ p)))

(* ---- per-connection worker ---------------------------------------------- *)

let log_request t req status ms =
  if t.config.log then
    Mutex.protect t.log_lock (fun () ->
        Printf.eprintf "xr_server: %s %s -> %d (%.1f ms)\n%!"
          (Http.meth_to_string req.Http.meth)
          req.Http.target status ms)

let error_response err =
  let open Http in
  match err with
  | Bad_request msg -> Some (json_response ~status:400 (Api.error_payload msg))
  | Too_large msg -> Some (json_response ~status:413 (Api.error_payload msg))
  | Timeout -> Some (json_response ~status:408 (Api.error_payload "request timed out"))
  | Eof -> None

let internal_error = Http.json_response ~status:500 (Api.error_payload "internal error")

(* One structured line per offending request, with its span breakdown
   inlined so the evidence survives ring-buffer eviction. *)
let log_slow_query t req status trace_id ms corpora =
  let threshold = t.config.slow_query_ms in
  if threshold > 0. && ms >= threshold then begin
    let spans = if trace_id = 0 then [] else Xr_obs.Tracing.spans_of_trace trace_id in
    let line =
      Xr_obs.Slowlog.render ~endpoint:req.Http.path ~status ~ms ~trace_id ~corpora spans
    in
    Mutex.protect t.log_lock (fun () -> Printf.eprintf "%s\n%!" line)
  end

let handle_conn t conn =
  let close () = try Unix.close conn.fd with Unix.Unix_error _ -> () in
  let budget_s = t.config.deadline_ms /. 1000. in
  let waited = Unix.gettimeofday () -. conn.accepted_at in
  if waited > budget_s then begin
    (* The connection blew its deadline sitting in the queue: shed it. *)
    Metrics.record_deadline t.server_metrics;
    (try
       Http.write_all conn.fd
         (Http.serialize ~keep_alive:false
            (Http.json_response ~status:503
               (Api.error_payload "deadline exceeded while queued")))
     with Unix.Unix_error _ -> ());
    close ()
  end
  else begin
    (* Bound reads and writes by the remaining budget (refreshed per
       request below; engine work itself is not interruptible). *)
    (try
       Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO budget_s;
       Unix.setsockopt_float conn.fd Unix.SO_SNDTIMEO budget_s
     with Unix.Unix_error _ -> () (* e.g. not supported on this socket *));
    let reader = Http.reader_of_fd conn.fd in
    let rec serve served =
      if served >= t.config.keepalive_requests then close ()
      else
        match Http.read_request ~limits:t.config.limits reader with
        | Error err -> (
          (match error_response err with
          | Some resp -> (
            try Http.write_all conn.fd (Http.serialize ~keep_alive:false resp)
            with Unix.Unix_error _ -> ())
          | None -> ());
          close ())
        | Ok req -> (
          let t0 = Unix.gettimeofday () in
          let (resp, corpora), trace_id =
            Xr_obs.Tracing.with_trace "request" (fun () ->
                if t.config.slow_query_ms > 0. then
                  Served.with_sink (fun () -> try handle t req with _ -> internal_error)
                else ((try handle t req with _ -> internal_error), []))
          in
          let ms = (Unix.gettimeofday () -. t0) *. 1000. in
          let ka = Http.keep_alive req && served + 1 < t.config.keepalive_requests in
          Metrics.record t.server_metrics ~endpoint:req.Http.path ~status:resp.Http.status
            ~ms ~trace_id ();
          log_request t req resp.Http.status ms;
          log_slow_query t req resp.Http.status trace_id ms corpora;
          match Http.write_all conn.fd (Http.serialize ~keep_alive:ka resp) with
          | () -> if ka then serve (served + 1) else close ()
          | exception Unix.Unix_error _ -> close ())
    in
    serve 0
  end

(* ---- lifecycle ----------------------------------------------------------- *)

let build_trie (index : Index.t) =
  let d = index.Index.doc in
  Xr_text.Trie.of_vocabulary
    (List.map
       (fun w ->
         ( w,
           match Xr_xml.Doc.keyword_id d w with
           | Some kw -> Xr_index.Inverted.length index.Index.inverted kw
           | None -> 0 ))
       (Xr_xml.Doc.vocabulary d))

let bind_socket addr =
  match addr with
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> failwith ("cannot resolve host " ^ host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 128;
    fd
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    fd

(* Scrape-time gauges and pulled counters for state owned elsewhere:
   queue depth, worker count, cache statistics, uptime, and the index
   footprint. The footprint is pulled live from the current generations
   (summed over corpora) — ingest swaps them at any time. Families are
   idempotent and [set_pull] rebinds, so restarting a server in the same
   process re-points the series at the live instance. *)
let register_observability t =
  let module Reg = Xr_obs.Registry in
  Xr_obs.Runtime.register ();
  let gauge name help = Reg.Gauge.no_labels (Reg.Gauge.family ~name ~help ()) in
  let pull_gauge name help f = Reg.Gauge.set_pull (gauge name help) f in
  let pull_counter name help f =
    Reg.Counter.set_pull (Reg.Counter.no_labels (Reg.Counter.family ~name ~help ())) f
  in
  let sum_indices f =
    let acc = ref 0 in
    iter_corpora t (fun _ cs ->
        acc := !acc + f (Generation.current cs.gens).Generation.index);
    float_of_int !acc
  in
  pull_gauge "xr_uptime_seconds" "Seconds since server start" (fun () ->
      Unix.gettimeofday () -. Metrics.started_at t.server_metrics);
  pull_gauge "xr_queue_depth" "Connections waiting in the admission queue" (fun () ->
      float_of_int (Pool.depth t.pool));
  pull_gauge "xr_worker_domains" "Request worker domains" (fun () ->
      float_of_int (Pool.domains t.pool));
  pull_counter "xr_cache_hits_total" "Result cache hits" (fun () ->
      float_of_int (combined_cache_stats t).Lru.hits);
  pull_counter "xr_cache_misses_total" "Result cache misses" (fun () ->
      float_of_int (combined_cache_stats t).Lru.misses);
  pull_counter "xr_cache_evictions_total" "Result cache evictions" (fun () ->
      float_of_int (combined_cache_stats t).Lru.evictions);
  pull_gauge "xr_cache_entries" "Result cache resident entries" (fun () ->
      float_of_int (combined_cache_stats t).Lru.entries);
  pull_gauge "xr_cache_capacity" "Result cache capacity" (fun () ->
      float_of_int (combined_cache_stats t).Lru.capacity);
  pull_gauge "xr_plan_cache_entries" "Compiled query plans resident across corpora"
    (fun () -> float_of_int (plan_entries t));
  pull_counter "xr_index_materializations_total"
    "Legacy posting-array materializations from packed lists" (fun () ->
      sum_indices (fun ix -> Xr_index.Inverted.materialization_count ix.Index.inverted));
  (* Non-forcing totals only: a metrics scrape of a DAG-backed index
     must never trigger per-keyword merges, so these read the O(1)
     accounting accessors, not [iter_packed]. *)
  pull_gauge "xr_index_postings" "Postings across all inverted lists" (fun () ->
      sum_indices (fun ix -> Xr_index.Inverted.postings_total ix.Index.inverted));
  pull_gauge "xr_index_packed_bytes" "Resident bytes of posting data" (fun () ->
      sum_indices (fun ix -> Xr_index.Inverted.resident_bytes ix.Index.inverted));
  pull_gauge "xr_index_label_bytes" "Resident bytes of varint Dewey labels" (fun () ->
      sum_indices (fun ix -> Xr_index.Inverted.label_bytes_total ix.Index.inverted));
  pull_counter "xr_index_dag_merges_total"
    "Per-keyword flat views merged out of DAG-backed indexes" (fun () ->
      sum_indices (fun ix -> Xr_index.Inverted.merge_count ix.Index.inverted));
  pull_gauge "xr_index_keywords" "Distinct keywords in the vocabulary" (fun () ->
      sum_indices (fun ix -> List.length (Xr_xml.Doc.vocabulary ix.Index.doc)));
  pull_gauge "xr_index_nodes" "Element nodes in the document" (fun () ->
      sum_indices (fun ix -> Xr_xml.Doc.node_count ix.Index.doc));
  pull_gauge "xr_serving_shards" "Serving shards" (fun () ->
      float_of_int (Array.length t.shards));
  pull_gauge "xr_serving_corpora" "Corpora served" (fun () ->
      float_of_int (List.length (corpora_names t)))

let start_corpora config specs =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if config.trace then Xr_obs.Tracing.enable ();
  if specs = [] then invalid_arg "Server.start_corpora: no corpora";
  (* Request workers submit SLCA subtasks to the shared domain pool;
     queries below this many driver postings stay sequential. *)
  Xr_slca.Parallel.set_threshold config.parallel_threshold;
  let listen_fd = bind_socket config.addr in
  let stop_r, stop_w = Unix.pipe () in
  let tref = ref None in
  let pool =
    Pool.create ~domains:config.domains ~queue_bound:config.queue_bound (fun conn ->
        match !tref with
        | Some t -> handle_conn t conn
        | None -> ( try Unix.close conn.fd with Unix.Unix_error _ -> ()))
  in
  let ncorpora = List.length specs in
  let nshards =
    let requested = if config.shards <= 0 then ncorpora else config.shards in
    max 1 (min requested ncorpora)
  in
  let caches =
    Array.init nshards (fun _ ->
        Lru.create ~shards:config.cache_shards ~capacity:config.cache_capacity ())
  in
  let ingest_config =
    { Ingest.queue_bound = config.ingest_queue; batch_max = config.ingest_batch }
  in
  (* Corpora round-robin across shards; each corpus gets its own
     generation chain and writer. On publish the writer swaps the trie
     and clears its shard's cache (generation-tagged keys make late
     inserts from still-pinned readers unreachable either way). *)
  let corpus_states =
    List.mapi
      (fun i spec ->
        let shard_id = i mod nshards in
        let gens = Generation.create ~corpus:spec.name spec.index in
        let ctrie = Atomic.make (build_trie spec.index) in
        let on_publish (gen : Generation.gen) =
          Atomic.set ctrie (build_trie gen.Generation.index);
          Lru.clear caches.(shard_id)
        in
        let ingest =
          Ingest.create ~config:ingest_config ?kv:spec.kv ~on_publish gens
        in
        let plans =
          if config.batch && config.plan_cache_capacity > 0 then
            Some (Xr_batch.Plan_cache.create ~capacity:config.plan_cache_capacity ())
          else None
        in
        { cname = spec.name; shard_id; gens; ingest; ctrie; plans })
      specs
  in
  let shards =
    Array.init nshards (fun sid ->
        {
          sid;
          corpora =
            Array.of_list (List.filter (fun cs -> cs.shard_id = sid) corpus_states);
          cache = caches.(sid);
          flights =
            (if config.batch then
               Some (Xr_batch.Coalesce.create ~window_ms:config.coalesce_window_ms ())
             else None);
        })
  in
  let t =
    {
      config;
      shards;
      single = ncorpora = 1;
      server_metrics = Metrics.create ();
      listen_fd;
      stop_r;
      stop_w;
      pool;
      log_lock = Mutex.create ();
    }
  in
  tref := Some t;
  register_observability t;
  t

let start config index = start_corpora config [ { name = "default"; index; kv = None } ]

let bound_addr t = Unix.getsockname t.listen_fd

let overloaded =
  Http.json_response ~status:503
    ~headers:[ ("retry-after", "1") ]
    (Api.error_payload "server overloaded, request shed")

let run t =
  Unix.set_nonblock t.listen_fd;
  let rec loop () =
    match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
      if List.mem t.stop_r readable then () (* stop requested *)
      else begin
        (match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        | fd, _peer ->
          (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
          let conn = { fd; accepted_at = Unix.gettimeofday () } in
          if not (Pool.submit t.pool conn) then begin
            Metrics.record_shed t.server_metrics;
            (try Http.write_all fd (Http.serialize ~keep_alive:false overloaded)
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end);
        loop ()
      end
  in
  loop ();
  Pool.shutdown t.pool;
  iter_corpora t (fun _ cs -> Ingest.shutdown cs.ingest);
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w ];
  match t.config.addr with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let stop t =
  try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ()
