(** Sharded LRU cache of normalized query → encoded response, shared by
    all worker domains. Keys are hashed onto independently locked shards,
    so concurrent lookups of different queries rarely contend; each shard
    keeps exact LRU order with an intrusive doubly-linked list and counts
    its own hits, misses and evictions. *)

type t

(** [create ?shards ~capacity ()] builds a cache holding at most
    [capacity] entries overall, split over [shards] (default 8) locks.
    [capacity <= 0] disables the cache ([find] always misses, [add] is a
    no-op — the counters still run, so metrics stay meaningful). *)
val create : ?shards:int -> capacity:int -> unit -> t

(** [find t key] is the cached value, bumping it to most-recently-used
    and counting a hit; counts a miss otherwise. *)
val find : t -> string -> string option

(** [add t key value] inserts or refreshes an entry, evicting the shard's
    least-recently-used entries while over budget. *)
val add : t -> string -> string -> unit

val clear : t -> unit

(** [shard_of t key] is the shard index [key] hashes to (for tests). *)
val shard_of : t -> string -> int

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  capacity : int;
  shards : int;
}

(** [stats t] aggregates over all shards (a consistent-enough snapshot:
    each shard is read under its lock). *)
val stats : t -> stats
