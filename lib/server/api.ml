open Xr_xml
module Index = Xr_index.Index
module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

let take limit l =
  let rec go n = function x :: rest when n > 0 -> x :: go (n - 1) rest | _ -> [] in
  if limit < 0 then l else go limit l

let result_item (index : Index.t) ~query_ids ?score dewey =
  let doc = index.Index.doc in
  let base =
    [
      ("dewey", Json.String (Dewey.to_string dewey));
      ("label", Json.String (Doc.label doc dewey));
      ("snippet", Json.String (Xr_slca.Snippet.of_result doc ~query:query_ids dewey));
    ]
  in
  match score with
  | Some s -> Json.Obj (base @ [ ("score", Json.Float s) ])
  | None -> Json.Obj base

let query_ids (index : Index.t) keywords =
  List.filter_map (Doc.keyword_id index.Index.doc) keywords

let keywords_json keywords = Json.List (List.map (fun k -> Json.String k) keywords)

let search_payload index ~query ~ranked ?(limit = -1) entries =
  let ids = query_ids index query in
  let items =
    List.map
      (fun (d, s) ->
        if ranked then result_item index ~query_ids:ids ~score:s d
        else result_item index ~query_ids:ids d)
      (take limit entries)
  in
  Json.Obj
    [
      ("query", keywords_json query);
      ("count", Json.Int (List.length entries));
      ("ranked", Json.Bool ranked);
      ("results", Json.List items);
    ]

let scored_json (s : Xr_refine.Ranking.scored) =
  Json.Obj
    [
      ("similarity", Json.Float s.Xr_refine.Ranking.similarity);
      ("dependence", Json.Float s.Xr_refine.Ranking.dependence);
      ("rank", Json.Float s.Xr_refine.Ranking.rank);
    ]

let rq_match_json index ~limit (m : Result.rq_match) =
  let rq = m.Result.rq in
  let ids = query_ids index rq.Xr_refine.Refined_query.keywords in
  Json.Obj
    [
      ("keywords", keywords_json rq.Xr_refine.Refined_query.keywords);
      ( "operations",
        Json.List
          (List.map (fun o -> Json.String o) (Xr_refine.Refined_query.operations rq)) );
      ("dissimilarity", Json.Int rq.Xr_refine.Refined_query.dissimilarity);
      ("score", match m.Result.score with Some s -> scored_json s | None -> Json.Null);
      ("count", Json.Int (List.length m.Result.slcas));
      ( "results",
        Json.List
          (List.map (fun d -> result_item index ~query_ids:ids d) (take limit m.Result.slcas))
      );
    ]

let refine_payload index ~query ?(limit = -1) (resp : Engine.response) =
  let ids = query_ids index query in
  let outcome, fields =
    match resp.Engine.result with
    | Result.Original slcas ->
      ( "matched",
        [
          ("count", Json.Int (List.length slcas));
          ( "results",
            Json.List
              (List.map (fun d -> result_item index ~query_ids:ids d) (take limit slcas)) );
        ] )
    | Result.Refined matches ->
      ( "refined",
        [ ("refinements", Json.List (List.map (rq_match_json index ~limit) matches)) ] )
    | Result.No_result -> ("no_result", [])
  in
  Json.Obj
    ([ ("query", keywords_json query); ("outcome", Json.String outcome) ]
    @ fields
    @ [
        ( "rules_used",
          Json.List
            (List.map (fun r -> Json.String (Xr_refine.Rule.to_string r)) resp.Engine.rules_used)
        );
      ])

let suggest_payload index ~query ?(limit = -1) suggestions =
  let item (s : Xr_refine.Specialize.suggestion) =
    let ids = query_ids index s.Xr_refine.Specialize.keywords in
    Json.Obj
      [
        ("keywords", keywords_json s.Xr_refine.Specialize.keywords);
        ("added", Json.String s.Xr_refine.Specialize.added);
        ("score", Json.Float s.Xr_refine.Specialize.score);
        ("count", Json.Int (List.length s.Xr_refine.Specialize.slcas));
        ( "results",
          Json.List
            (List.map
               (fun d -> result_item index ~query_ids:ids d)
               (take limit s.Xr_refine.Specialize.slcas)) );
      ]
  in
  Json.Obj
    [ ("query", keywords_json query); ("suggestions", Json.List (List.map item suggestions)) ]

let complete_payload ~prefix completions =
  Json.Obj
    [
      ("prefix", Json.String prefix);
      ( "completions",
        Json.List
          (List.map
             (fun (w, n) ->
               Json.Obj [ ("keyword", Json.String w); ("occurrences", Json.Int n) ])
             completions) );
    ]

(* Everything here must stay passive: a /stats hit on a DAG-backed index
   must not force per-keyword merges, so totals come from the
   non-forcing accessors and per-list bytes are reported only for lists
   already resident ([peek_merged]). *)
let index_footprint (index : Index.t) =
  let d = index.Index.doc in
  let inv = index.Index.inverted in
  let postings = Xr_index.Inverted.postings_total inv in
  let total_bytes = Xr_index.Inverted.resident_bytes inv in
  let lists = ref [] in
  Xr_index.Inverted.iter_lengths
    (fun kw n ->
      if n > 0 then begin
        let bytes =
          match Xr_index.Inverted.peek_merged inv kw with
          | Some pk -> Xr_index.Inverted.packed_bytes pk
          | None -> 0
        in
        lists := (Doc.keyword_name d kw, n, bytes) :: !lists
      end)
    inv;
  let largest =
    let sorted =
      List.sort (fun (_, a, _) (_, b, _) -> Int.compare b a) (List.rev !lists)
    in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take 10 sorted
  in
  let dag_block =
    match Xr_index.Inverted.dag inv with
    | None -> []
    | Some dag ->
      let s = Xr_dag.stats dag in
      [
        ( "dag",
          Json.Obj
            [
              ("nodes", Json.Int s.Xr_dag.nodes);
              ("classes", Json.Int s.Xr_dag.classes);
              ("occurrence_classes", Json.Int s.Xr_dag.occurrence_classes);
              ("instances", Json.Int s.Xr_dag.instances);
              ("tree_edges", Json.Int s.Xr_dag.tree_edges);
              ("dag_edges", Json.Int s.Xr_dag.dag_edges);
              ("node_dedup_ratio", Json.Float (Xr_dag.node_dedup_ratio dag));
              ("edge_dedup_ratio", Json.Float (Xr_dag.edge_dedup_ratio dag));
              ("dag_bytes", Json.Int (Xr_dag.bytes dag));
              ( "bytes_per_node",
                Json.Float
                  (if s.Xr_dag.nodes = 0 then 0.
                   else float_of_int (Xr_dag.bytes dag) /. float_of_int s.Xr_dag.nodes) );
              ("merges", Json.Int (Xr_index.Inverted.merge_count inv));
              ("merged_keywords", Json.Int (Xr_index.Inverted.merged_keywords inv));
            ] );
      ]
  in
  Json.Obj
    ([
       ("repr", Json.String (Index.mode_name (Index.mode index)));
       ("postings", Json.Int postings);
       ("label_bytes", Json.Int (Xr_index.Inverted.label_bytes_total inv));
       ("packed_bytes", Json.Int total_bytes);
       ( "bytes_per_posting",
         Json.Float
           (if postings = 0 then 0. else float_of_int total_bytes /. float_of_int postings) );
       ( "legacy_materializations",
         Json.Int (Xr_index.Inverted.materialization_count inv) );
       ( "legacy_materialized_keywords",
         Json.Int (Xr_index.Inverted.materialized_keywords inv) );
       ( "largest_lists",
         Json.List
           (List.map
              (fun (kw, n, bytes) ->
                Json.Obj
                  [
                    ("keyword", Json.String kw);
                    ("postings", Json.Int n);
                    ("bytes", Json.Int bytes);
                  ])
              largest) );
     ]
    @ dag_block)

(* The shared domain pool's counters: fan-out activity (tasks, steals,
   batches), sequential fallbacks, and the live threshold. The pool is
   created lazily, so a server that never crossed the threshold reports
   [created = false] with zero counters. *)
let pool_payload () =
  let base =
    match Xr_pool.peek_global () with
    | None -> [ ("created", Json.Bool false); ("domains", Json.Int 0) ]
    | Some p ->
      let c = Xr_pool.counters p in
      [
        ("created", Json.Bool true);
        ("domains", Json.Int c.Xr_pool.domains);
        ("tasks", Json.Int c.Xr_pool.tasks);
        ("steals", Json.Int c.Xr_pool.steals);
        ("batches", Json.Int c.Xr_pool.batches);
        ("queue_depth", Json.Int (Xr_pool.queue_depth p));
      ]
  in
  Json.Obj
    (base
    @ [
        ("fallbacks", Json.Int (Xr_slca.Parallel.fallbacks ()));
        ("parallel_threshold", Json.Int (Xr_slca.Parallel.threshold ()));
      ])

(* Batched-execution counters: shared-scan amortization, tiny-kernel
   dispatch, plan-cache effectiveness, single-flight coalescing, and
   the bitsliced prefix filter's selectivity — the numbers behind the
   batch path's claimed wins, in one /stats block. *)
let batch_payload ~enabled ~plan_entries () =
  let examined = Xr_index.Bitslice.entries_examined () in
  let selected = Xr_index.Bitslice.entries_selected () in
  Json.Obj
    [
      ("enabled", Json.Bool enabled);
      ("shared_scan_batches", Json.Int (Xr_slca.Shared_scan.batches ()));
      ("shared_scan_members", Json.Int (Xr_slca.Shared_scan.members_fed ()));
      ("shared_scan_saved_decodes", Json.Int (Xr_slca.Shared_scan.saved_decodes ()));
      ("tiny_scans", Json.Int (Xr_slca.Scan_packed.tiny_scans ()));
      ("plan_cache_entries", Json.Int plan_entries);
      ("plan_cache_hits", Json.Int (Xr_batch.Plan_cache.hits ()));
      ("plan_cache_misses", Json.Int (Xr_batch.Plan_cache.misses ()));
      ("plan_cache_evictions", Json.Int (Xr_batch.Plan_cache.evictions ()));
      ("coalesce_leaders", Json.Int (Xr_batch.Coalesce.leaders ()));
      ("coalesce_followers", Json.Int (Xr_batch.Coalesce.followers ()));
      ("coalesce_helped_tasks", Json.Int (Xr_batch.Coalesce.helped ()));
      ("bitslice_entries_examined", Json.Int examined);
      ("bitslice_entries_selected", Json.Int selected);
      ( "bitslice_selectivity",
        Json.Float
          (if examined = 0 then 1. else float_of_int selected /. float_of_int examined) );
    ]

let stats_payload ?pool ?batch (index : Index.t) =
  let d = index.Index.doc in
  let paths = ref [] in
  Path.iter
    (fun p ->
      paths :=
        Json.Obj
          [
            ("path", Json.String (Doc.path_string d p));
            ("nodes", Json.Int (Xr_index.Stats.node_count index.Index.stats p));
            ("distinct_keywords", Json.Int (Xr_index.Stats.distinct_keywords index.Index.stats p));
          ]
        :: !paths)
    d.Doc.paths;
  Json.Obj
    ([
      ("nodes", Json.Int (Doc.node_count d));
      ("keywords", Json.Int (List.length (Doc.vocabulary d)));
      ("node_types", Json.Int (Path.size d.Doc.paths));
      ("depth", Json.Int (Tree.depth d.Doc.tree));
      ("index", index_footprint index);
      ("paths", Json.List (List.rev !paths));
    ]
    @ (match pool with Some p -> [ ("pool", p) ] | None -> [])
    @ (match batch with Some b -> [ ("batch", b) ] | None -> []))

(* Recent traces as nested span trees: per trace the root's total and,
   per span, duration, start offset from the trace root, and the domain
   it completed on. *)
let trace_payload traces =
  let module Tr = Xr_obs.Tracing in
  let rec node root_start (t : Tr.tree) =
    let sp = t.Tr.span in
    Json.Obj
      [
        ("name", Json.String sp.Tr.name);
        ("ms", Json.Float (Int64.to_float sp.Tr.dur_ns /. 1e6));
        ( "start_us",
          Json.Float (Int64.to_float (Int64.sub sp.Tr.start_ns root_start) /. 1e3) );
        ("domain", Json.Int sp.Tr.domain);
        ("children", Json.List (List.map (node root_start) t.Tr.children));
      ]
  in
  let one (tid, spans) =
    let root = List.find_opt (fun (s : Tr.span) -> s.Tr.parent_id = 0) spans in
    let root_start = match root with Some s -> s.Tr.start_ns | None -> 0L in
    let total_ms =
      match root with Some s -> Int64.to_float s.Tr.dur_ns /. 1e6 | None -> 0.
    in
    Json.Obj
      [
        ("trace", Json.Int tid);
        ("total_ms", Json.Float total_ms);
        ("spans", Json.List (List.map (node root_start) (Tr.tree_of_spans spans)));
      ]
  in
  Json.Obj
    [
      ("count", Json.Int (List.length traces));
      ("traces", Json.List (List.map one traces));
    ]

(* ---- EXPLAIN / ANALYZE ------------------------------------------------- *)

let explain_payload (x : Xr_batch.Plan.explain_search) =
  let module P = Xr_batch.Plan in
  let keyword k =
    Json.Obj
      [
        ("keyword", Json.String k.P.ek_keyword);
        ("id", Json.Int k.P.ek_id);
        ("postings", Json.Int k.P.ek_postings);
      ]
  in
  let parallel (p : P.explain_parallel) =
    Json.Obj
      [
        ("estimate", Json.Float p.P.xp_estimate);
        ("threshold", Json.Int p.P.xp_threshold);
        ( "measured",
          match p.P.xp_measured with Some c -> Json.Float c | None -> Json.Null );
        ("grains", match p.P.xp_grains with Some g -> Json.Int g | None -> Json.Null);
        ("pool_size", Json.Int p.P.xp_pool_size);
        ("chunks_targeted", Json.Int p.P.xp_chunks);
        ( "chunk_bounds",
          Json.List (Array.to_list (Array.map (fun b -> Json.Int b) p.P.xp_chunk_bounds)) );
        ( "cost_curve",
          Json.List
            (Array.to_list
               (Array.map
                  (fun (b, c) -> Json.List [ Json.Int b; Json.Float c ])
                  p.P.xp_curve)) );
      ]
  in
  Json.Obj
    ([
       ("kernel", Json.String x.P.x_kernel);
       ("reason", Json.String x.P.x_reason);
       ("algorithm", Json.String x.P.x_algorithm);
       ("index_mode", Json.String x.P.x_index_mode);
     ]
    @ (match x.P.x_dag_kernel with
      | Some k -> [ ("dag_kernel", Json.String k) ]
      | None -> [])
    @ [ ("keywords", Json.List (List.map keyword x.P.x_keywords)) ]
    @ (match x.P.x_missing with
      | [] -> []
      | ks -> [ ("missing", Json.List (List.map (fun k -> Json.String k) ks)) ])
    @ match x.P.x_parallel with Some p -> [ ("parallel", parallel p) ] | None -> [])

let explain_refine_payload (x : Xr_batch.Plan.explain_refine) =
  let module P = Xr_batch.Plan in
  match explain_payload x.P.xr_search with
  | Json.Obj fields ->
    Json.Obj
      (fields
      @ [ ("rules", Json.List (List.map (fun r -> Json.String r) x.P.xr_rules)) ])
  | j -> j

let gc_delta_json (d : Xr_obs.Runtime.gc_delta) =
  Json.Obj
    [
      ("minor_words", Json.Float d.Xr_obs.Runtime.d_minor_words);
      ("promoted_words", Json.Float d.Xr_obs.Runtime.d_promoted_words);
      ("major_words", Json.Float d.Xr_obs.Runtime.d_major_words);
      ("allocated_words", Json.Float (Xr_obs.Runtime.allocated_words d));
      ("minor_collections", Json.Int d.Xr_obs.Runtime.d_minor_collections);
      ("major_collections", Json.Int d.Xr_obs.Runtime.d_major_collections);
    ]

(* Execution actuals for one ANALYZE render: stage in/out counts and
   chunk drift from the collection channel, the handler-side GC delta,
   the pool tasks' summed GC delta, and the completed child spans of
   the surrounding trace (the root is still open while we render). *)
let analyze_payload ~ms ~gc ~spans report =
  let module A = Xr_obs.Analyze in
  let module Tr = Xr_obs.Tracing in
  let stage (s : A.stage) =
    Json.Obj
      [
        ("stage", Json.String s.A.sg_name);
        ("in", Json.Int s.A.sg_in);
        ("out", Json.Int s.A.sg_out);
      ]
  in
  let chunk (c : A.chunk) =
    Json.Obj
      [
        ("chunk", Json.Int c.A.ck_index);
        ("modeled_share", Json.Float c.A.ck_modeled);
        ("measured_share", Json.Float c.A.ck_measured);
        ("drift_ratio", Json.Float (c.A.ck_measured /. c.A.ck_modeled));
        ("ms", Json.Float (c.A.ck_ns /. 1e6));
      ]
  in
  let span (sp : Tr.span) =
    Json.Obj
      [
        ("name", Json.String sp.Tr.name);
        ("ms", Json.Float (Int64.to_float sp.Tr.dur_ns /. 1e6));
        ("domain", Json.Int sp.Tr.domain);
      ]
  in
  Json.Obj
    [
      ("ms", Json.Float ms);
      ("stages", Json.List (List.map stage (A.stages report)));
      ("chunks", Json.List (List.map chunk (A.chunks report)));
      ("gc", gc_delta_json gc);
      ("pool_tasks", Json.Int (A.tasks report));
      ("pool_tasks_gc", gc_delta_json (A.task_gc report));
      ("spans", Json.List (List.map span spans));
    ]

let error_payload msg = Json.Obj [ ("error", Json.String msg) ]
