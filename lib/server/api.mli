(** JSON views of engine results: one schema shared by the HTTP endpoints
    and the CLI's [--json] output, so a scripted client sees identical
    documents either way. Builders take already-computed engine output —
    callers choose their own configuration — and render deterministically
    (document order, stable field order), which is what lets the server
    cache and compare responses byte-for-byte. *)

open Xr_xml

(** [result_item index ~query_ids ?score dewey] is one result object:
    [{"dewey","label","snippet"}] plus ["score"] when given. *)
val result_item :
  Xr_index.Index.t -> query_ids:Interner.id list -> ?score:float -> Dewey.t -> Json.t

(** [search_payload index ~query ~ranked ?limit entries] renders a
    [/search] response; [entries] pair each SLCA with its relevance score
    (ignored unless [ranked]). [count] is the full result count even when
    [limit] truncates the rendered list. *)
val search_payload :
  Xr_index.Index.t ->
  query:string list ->
  ranked:bool ->
  ?limit:int ->
  (Dewey.t * float) list ->
  Json.t

(** [refine_payload index ~query resp] renders a [/refine] response:
    outcome ([matched] / [refined] / [no_result]), the ranked refined
    queries with edit trails, scores and per-query results, and the rules
    consulted. *)
val refine_payload :
  Xr_index.Index.t -> query:string list -> ?limit:int -> Xr_refine.Engine.response -> Json.t

val suggest_payload :
  Xr_index.Index.t ->
  query:string list ->
  ?limit:int ->
  Xr_refine.Specialize.suggestion list ->
  Json.t

val complete_payload : prefix:string -> (string * int) list -> Json.t

(** [pool_payload ()] renders the shared {!Xr_pool} counters (tasks,
    steals, batches), the sequential-fallback count, and the live
    parallel threshold — the [/stats] "pool" section. *)
val pool_payload : unit -> Json.t

(** [batch_payload ~enabled ~plan_entries ()] renders the batched
    execution counters — shared-scan amortization, tiny-kernel
    dispatch, plan-cache hit/miss/eviction, single-flight coalescing
    and bitslice selectivity — the [/stats] "batch" section. *)
val batch_payload : enabled:bool -> plan_entries:int -> unit -> Json.t

(** [stats_payload index] is the document-statistics view: node and
    keyword counts plus per-node-type aggregates. *)
val stats_payload : ?pool:Json.t -> ?batch:Json.t -> Xr_index.Index.t -> Json.t

(** [trace_payload traces] renders {!Xr_obs.Tracing.recent_traces}
    output as the [/debug/trace] document: per trace its id, total, and
    nested span tree (name, duration, start offset, domain). *)
val trace_payload : (int * Xr_obs.Tracing.span list) list -> Json.t

(** [explain_payload x] renders a compiled-plan explanation as the
    ["explain"] block of a /search (or /refine) response: kernel +
    reason, algorithm, index mode (and dag dispatch), the keyword lists
    in executed order with posting counts, and the parallel section
    (estimate/threshold/measured cost, grain curve, chunk bounds). *)
val explain_payload : Xr_batch.Plan.explain_search -> Json.t

(** [explain_refine_payload x] is {!explain_payload} plus the
    statically-pruned ["rules"] list. *)
val explain_refine_payload : Xr_batch.Plan.explain_refine -> Json.t

val gc_delta_json : Xr_obs.Runtime.gc_delta -> Json.t

(** [analyze_payload ~ms ~gc ~spans report] renders one ANALYZE
    render's actuals: wall time, per-stage candidates in/out, per-chunk
    modeled-vs-measured cost shares with drift ratios, the handler-side
    GC delta, the summed pool-task GC delta, and the completed child
    spans of the surrounding trace. *)
val analyze_payload :
  ms:float ->
  gc:Xr_obs.Runtime.gc_delta ->
  spans:Xr_obs.Tracing.span list ->
  Xr_obs.Analyze.report ->
  Json.t

(** [error_payload msg] is [{"error": msg}]. *)
val error_payload : string -> Json.t
