(** Hand-rolled JSON: the serving subsystem's wire format.

    The encoder is deterministic (object members keep insertion order,
    floats render canonically), so equal values encode to byte-identical
    strings — the property the result cache and the load generator's
    byte-level response checks rely on. The decoder exists for the other
    side of the wire: the load generator and the smoke tests validate
    server output with it. No dependency beyond the standard library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] encodes compactly (no insignificant whitespace).
    Strings are emitted with the mandatory JSON escapes; non-finite
    floats, which JSON cannot represent, encode as [null]. *)
val to_string : t -> string

(** [to_buffer b v] appends the encoding of [v] to [b]. *)
val to_buffer : Buffer.t -> t -> unit

(** [of_string s] parses a complete JSON text (trailing garbage is an
    error). Numbers without fraction or exponent decode to [Int] when
    they fit, [Float] otherwise. *)
val of_string : string -> (t, string) result

(** [member name v] is the value of field [name] if [v] is an object
    that has it. *)
val member : string -> t -> t option

(** [equal a b] is structural equality ([Int 1] and [Float 1.] differ). *)
val equal : t -> t -> bool
