type meth = GET | HEAD | POST | Other of string

let meth_to_string = function
  | GET -> "GET"
  | HEAD -> "HEAD"
  | POST -> "POST"
  | Other m -> m

type request = {
  meth : meth;
  target : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error =
  | Bad_request of string
  | Too_large of string
  | Eof
  | Timeout

let error_to_string = function
  | Bad_request msg -> "bad request: " ^ msg
  | Too_large msg -> "too large: " ^ msg
  | Eof -> "end of stream"
  | Timeout -> "timeout"

type limits = {
  max_request_line : int;
  max_header_count : int;
  max_header_line : int;
  max_body : int;
}

let default_limits =
  { max_request_line = 8192; max_header_count = 64; max_header_line = 8192; max_body = 1 lsl 20 }

(* ---- buffered reader --------------------------------------------------- *)

type reader = {
  fill : bytes -> int -> int -> int;
  chunk : bytes;
  mutable pos : int;
  mutable len : int;
}

exception Read_timeout

let reader ~fill = { fill; chunk = Bytes.create 4096; pos = 0; len = 0 }

let reader_of_string s =
  let consumed = ref 0 in
  reader ~fill:(fun buf pos len ->
      let n = min len (String.length s - !consumed) in
      Bytes.blit_string s !consumed buf pos n;
      consumed := !consumed + n;
      n)

let reader_of_fd fd =
  reader ~fill:(fun buf pos len ->
      try Unix.read fd buf pos len with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
        raise Read_timeout
      | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0)

(* Returns the next byte, or None at end of stream. *)
let next_byte r =
  if r.pos >= r.len then begin
    r.len <- r.fill r.chunk 0 (Bytes.length r.chunk);
    r.pos <- 0
  end;
  if r.len = 0 then None
  else begin
    let b = Bytes.get r.chunk r.pos in
    r.pos <- r.pos + 1;
    Some b
  end

(* Reads up to and including CRLF (tolerating bare LF); the terminator is
   stripped. [None] at end of stream with nothing read. *)
let read_line r ~max =
  let b = Buffer.create 64 in
  let rec loop () =
    match next_byte r with
    | None -> if Buffer.length b = 0 then Ok None else Ok (Some (Buffer.contents b))
    | Some '\n' ->
      let s = Buffer.contents b in
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      Ok (Some s)
    | Some c ->
      if Buffer.length b >= max then Error (Too_large "line")
      else begin
        Buffer.add_char b c;
        loop ()
      end
  in
  loop ()

let read_exact r n =
  let b = Bytes.create n in
  let rec loop off =
    if off >= n then Some (Bytes.unsafe_to_string b)
    else
      match next_byte r with
      | None -> None
      | Some c ->
        Bytes.set b off c;
        loop (off + 1)
  in
  loop 0

(* ---- percent / query-string decoding ----------------------------------- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode ?(plus_as_space = false) s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' when plus_as_space -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
      match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char b (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let percent_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' -> Buffer.add_char b c
      | ' ' -> Buffer.add_string b "%20"
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let split_target target =
  let raw_path, raw_query =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i -> (String.sub target 0 i, String.sub target (i + 1) (String.length target - i - 1))
  in
  let params =
    if raw_query = "" then []
    else
      String.split_on_char '&' raw_query
      |> List.filter_map (fun kv ->
             if kv = "" then None
             else
               let k, v =
                 match String.index_opt kv '=' with
                 | None -> (kv, "")
                 | Some i -> (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
               in
               Some
                 ( percent_decode ~plus_as_space:true k,
                   percent_decode ~plus_as_space:true v ))
  in
  (percent_decode raw_path, params)

(* ---- request parsing ---------------------------------------------------- *)

let is_tchar c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_' | '`' | '|' | '~' ->
    true
  | _ -> false

let meth_of_string = function
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | m -> Other m

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ m; target; version ] ->
    if m = "" || not (String.for_all is_tchar m) then Error "invalid method"
    else if target = "" then Error "empty target"
    else if not (String.length version = 8 && String.sub version 0 7 = "HTTP/1.") then
      Error ("unsupported version " ^ version)
    else Ok (meth_of_string m, target, version)
  | _ -> Error "malformed request line"

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> Error "malformed header"
  | Some i ->
    let name = String.sub line 0 i in
    if not (String.for_all is_tchar name) then Error "invalid header name"
    else
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      Ok (String.lowercase_ascii name, value)

let read_request ?(limits = default_limits) r =
  let ( let* ) = Result.bind in
  try
    (* Tolerate empty line(s) before the request line (RFC 9112 §2.2). *)
    let rec first_line tries =
      let* l = read_line r ~max:limits.max_request_line in
      match l with
      | None -> Error Eof
      | Some "" when tries > 0 -> first_line (tries - 1)
      | Some "" -> Error (Bad_request "blank request line")
      | Some l -> Ok l
    in
    let* line = first_line 2 in
    let* meth, target, version =
      match parse_request_line line with
      | Ok x -> Ok x
      | Error msg -> Error (Bad_request msg)
    in
    let rec headers acc n =
      if n > limits.max_header_count then Error (Too_large "header count")
      else
        let* l = read_line r ~max:limits.max_header_line in
        match l with
        | None -> Error (Bad_request "eof in headers")
        | Some "" -> Ok (List.rev acc)
        | Some l -> (
          match parse_header_line l with
          | Ok kv -> headers (kv :: acc) (n + 1)
          | Error msg -> Error (Bad_request msg))
    in
    let* headers = headers [] 0 in
    let* body =
      match List.assoc_opt "content-length" headers with
      | None -> Ok ""
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | None -> Error (Bad_request "bad content-length")
        | Some n when n < 0 -> Error (Bad_request "bad content-length")
        | Some n when n > limits.max_body -> Error (Too_large "body")
        | Some n -> (
          match read_exact r n with
          | Some b -> Ok b
          | None -> Error (Bad_request "truncated body")))
    in
    let path, query = split_target target in
    Ok { meth; target; path; query; version; headers; body }
  with Read_timeout -> Error Timeout

let read_response ?(limits = default_limits) r =
  let ( let* ) = Result.bind in
  try
    let* line =
      let* l = read_line r ~max:limits.max_request_line in
      match l with None -> Error Eof | Some l -> Ok l
    in
    let* status =
      match String.split_on_char ' ' line with
      | version :: code :: _
        when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." -> (
        match int_of_string_opt code with
        | Some s -> Ok s
        | None -> Error (Bad_request "bad status code"))
      | _ -> Error (Bad_request "malformed status line")
    in
    let rec headers acc n =
      if n > limits.max_header_count then Error (Too_large "header count")
      else
        let* l = read_line r ~max:limits.max_header_line in
        match l with
        | None -> Error (Bad_request "eof in headers")
        | Some "" -> Ok (List.rev acc)
        | Some l -> (
          match parse_header_line l with
          | Ok kv -> headers (kv :: acc) (n + 1)
          | Error msg -> Error (Bad_request msg))
    in
    let* headers = headers [] 0 in
    let* body =
      match List.assoc_opt "content-length" headers with
      | None -> Ok ""
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | None -> Error (Bad_request "bad content-length")
        | Some n -> (
          match read_exact r n with
          | Some b -> Ok b
          | None -> Error (Bad_request "truncated body")))
    in
    Ok (status, headers, body)
  with Read_timeout -> Error Timeout

(* ---- accessors ---------------------------------------------------------- *)

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let query_param req name = List.assoc_opt name req.query

let keep_alive req =
  let conn = Option.map String.lowercase_ascii (header req "connection") in
  match (req.version, conn) with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

(* ---- responses ----------------------------------------------------------- *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let status_reason = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 414 -> "URI Too Long"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | s when s >= 200 && s < 300 -> "OK"
  | s when s >= 400 && s < 500 -> "Client Error"
  | _ -> "Server Error"

let response ?(headers = []) ~status body =
  { status; reason = status_reason status; resp_headers = headers; resp_body = body }

let json_response ?(status = 200) ?(headers = []) v =
  response ~status
    ~headers:(("content-type", "application/json") :: headers)
    (Json.to_string v ^ "\n")

let serialize ~keep_alive resp =
  let b = Buffer.create (String.length resp.resp_body + 256) in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status resp.reason);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    resp.resp_headers;
  Buffer.add_string b
    (Printf.sprintf "content-length: %d\r\n" (String.length resp.resp_body));
  Buffer.add_string b
    (if keep_alive then "connection: keep-alive\r\n" else "connection: close\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b resp.resp_body;
  Buffer.contents b

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done
