(** The multicore heart of the server: a bounded job queue drained by a
    pool of worker domains. The bound is the admission-control knob —
    [submit] never blocks and never queues unboundedly; when the queue is
    full it refuses the job so the caller can shed load (answer [503])
    instead of stacking latency. *)

type 'a t

(** [create ~domains ~queue_bound handler] spawns [domains] worker
    domains (at least 1), each looping: pop a job, run [handler] on it.
    Exceptions escaping [handler] are caught and counted, never fatal. *)
val create : domains:int -> queue_bound:int -> ('a -> unit) -> 'a t

(** [submit t job] enqueues without blocking: [false] means the queue is
    at its bound (or the pool is shutting down) and the job was refused. *)
val submit : 'a t -> 'a -> bool

(** [depth t] is the current number of queued (not yet running) jobs. *)
val depth : 'a t -> int

val domains : 'a t -> int

(** [handler_errors t] is how many jobs raised. *)
val handler_errors : 'a t -> int

(** [shutdown t] stops accepting jobs, lets the workers drain what is
    already queued, and joins every domain. Idempotent. *)
val shutdown : 'a t -> unit
