(* Each shard: hash table keyed by query string pointing at nodes of an
   intrusive doubly-linked list in recency order ([head] = most recent,
   [tail] = LRU victim). All shard state is guarded by the shard mutex. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type shard = {
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable count : int;
  cap : int;  (* per-shard capacity *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = { shard_arr : shard array; capacity : int }

type stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  capacity : int;
  shards : int;
}

let create ?(shards = 8) ~capacity () =
  let shards = max 1 shards in
  let shards = if capacity > 0 then min shards capacity else shards in
  (* Spread the budget so the per-shard capacities sum to [capacity]. *)
  let cap_of i =
    if capacity <= 0 then 0
    else (capacity / shards) + (if i < capacity mod shards then 1 else 0)
  in
  let mk i =
    let cap = cap_of i in
    {
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      head = None;
      tail = None;
      count = 0;
      cap;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  { shard_arr = Array.init shards mk; capacity = max 0 capacity }

let shard_of t key = Hashtbl.hash key mod Array.length t.shard_arr

let shard t key = t.shard_arr.(shard_of t key)

(* ---- intrusive list plumbing (call with the shard lock held) ----------- *)

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front s n =
  n.next <- s.head;
  n.prev <- None;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let evict_over_budget s =
  while s.count > s.cap do
    match s.tail with
    | None -> s.count <- 0 (* unreachable: count > 0 implies a tail *)
    | Some victim ->
      unlink s victim;
      Hashtbl.remove s.table victim.key;
      s.count <- s.count - 1;
      s.evictions <- s.evictions + 1
  done

(* ---- public api --------------------------------------------------------- *)

let find t key =
  let s = shard t key in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.table key with
      | Some n ->
        s.hits <- s.hits + 1;
        unlink s n;
        push_front s n;
        Some n.value
      | None ->
        s.misses <- s.misses + 1;
        None)

let add t key value =
  let s = shard t key in
  if s.cap > 0 then
    Mutex.protect s.lock (fun () ->
        (match Hashtbl.find_opt s.table key with
        | Some n ->
          n.value <- value;
          unlink s n;
          push_front s n
        | None ->
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace s.table key n;
          push_front s n;
          s.count <- s.count + 1);
        evict_over_budget s)

let clear t =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.table;
          s.head <- None;
          s.tail <- None;
          s.count <- 0))
    t.shard_arr

let stats (t : t) =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.lock (fun () ->
          {
            acc with
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            entries = acc.entries + s.count;
            evictions = acc.evictions + s.evictions;
          }))
    {
      hits = 0;
      misses = 0;
      entries = 0;
      evictions = 0;
      capacity = t.capacity;
      shards = Array.length t.shard_arr;
    }
    t.shard_arr
