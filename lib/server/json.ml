type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- encoding ---------------------------------------------------------- *)

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | _ ->
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s -> escape_to b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b name;
        Buffer.add_char b ':';
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ---- decoding ---------------------------------------------------------- *)

exception Parse of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let utf8_of_code b code =
  (* Encode a Unicode scalar value as UTF-8 bytes. *)
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch when ch >= '0' && ch <= '9' -> v := (!v * 16) + (Char.code ch - Char.code '0')
    | Some ch when ch >= 'a' && ch <= 'f' -> v := (!v * 16) + (Char.code ch - Char.code 'a' + 10)
    | Some ch when ch >= 'A' && ch <= 'F' -> v := (!v * 16) + (Char.code ch - Char.code 'A' + 10)
    | _ -> fail c "expected hex digit");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'; advance c
      | Some '\\' -> Buffer.add_char b '\\'; advance c
      | Some '/' -> Buffer.add_char b '/'; advance c
      | Some 'n' -> Buffer.add_char b '\n'; advance c
      | Some 'r' -> Buffer.add_char b '\r'; advance c
      | Some 't' -> Buffer.add_char b '\t'; advance c
      | Some 'b' -> Buffer.add_char b '\b'; advance c
      | Some 'f' -> Buffer.add_char b '\012'; advance c
      | Some 'u' ->
        advance c;
        let hi = hex4 c in
        let code =
          if hi >= 0xD800 && hi <= 0xDBFF
             && c.pos + 1 < String.length c.src
             && c.src.[c.pos] = '\\'
             && c.src.[c.pos + 1] = 'u'
          then begin
            c.pos <- c.pos + 2;
            let lo = hex4 c in
            if lo >= 0xDC00 && lo <= 0xDFFF then
              0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
            else fail c "invalid low surrogate"
          end
          else hi
        in
        utf8_of_code b code
      | _ -> fail c "bad escape");
      loop ()
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let fractional = ref false in
  if peek c = Some '-' then advance c;
  let rec digits () =
    match peek c with
    | Some ch when ch >= '0' && ch <= '9' ->
      advance c;
      digits ()
    | _ -> ()
  in
  digits ();
  (match peek c with
  | Some '.' ->
    fractional := true;
    advance c;
    digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
    fractional := true;
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    digits ()
  | _ -> ());
  let s = String.sub c.src start (c.pos - start) in
  if s = "" || s = "-" then fail c "expected number";
  if !fractional then Float (float_of_string s)
  else match int_of_string_opt s with Some i -> Int i | None -> Float (float_of_string s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        items := parse_value c :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some ']' -> advance c
        | _ -> fail c "expected ',' or ']'"
      in
      loop ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws c;
        let name = parse_string c in
        skip_ws c;
        expect c ':';
        fields := (name, parse_value c) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          loop ()
        | Some '}' -> advance c
        | _ -> fail c "expected ',' or '}'"
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Obj x, Obj y ->
    List.equal (fun (n, v) (n', v') -> String.equal n n' && equal v v') x y
  | _ -> false
