(** A minimal HTTP/1.1 layer on raw file descriptors: just enough of
    RFC 9112 for a JSON query API — request parsing with hard limits
    (request line length, header count and size, body size), percent
    decoding, query-string parsing, keep-alive negotiation, and response
    serialization. The reader is abstracted over a [fill] function so the
    parser is testable on plain strings, and a response parser is included
    for the load generator and the end-to-end tests. *)

type meth = GET | HEAD | POST | Other of string

val meth_to_string : meth -> string

type request = {
  meth : meth;
  target : string;  (** the raw request target, e.g. ["/search?q=a+b"] *)
  path : string;  (** decoded path component, e.g. ["/search"] *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased, in order *)
  body : string;
}

type error =
  | Bad_request of string  (** malformed syntax *)
  | Too_large of string  (** a limit was exceeded *)
  | Eof  (** clean end of stream before a request line *)
  | Timeout  (** the socket read timed out *)

val error_to_string : error -> string

type limits = {
  max_request_line : int;  (** bytes; default 8192 *)
  max_header_count : int;  (** default 64 *)
  max_header_line : int;  (** bytes per header line; default 8192 *)
  max_body : int;  (** bytes; default 1 MiB *)
}

val default_limits : limits

(** {1 Buffered reading} *)

type reader

(** [reader ~fill] wraps a [read]-like function ([fill buf pos len]
    returns the number of bytes read, [0] at end of stream; it may raise
    [Unix.Unix_error (EAGAIN | EWOULDBLOCK | ETIMEDOUT, _, _)] to signal
    a receive timeout). *)
val reader : fill:(bytes -> int -> int -> int) -> reader

val reader_of_string : string -> reader

val reader_of_fd : Unix.file_descr -> reader

(** [read_request ?limits r] reads and parses one request. [Error Eof]
    means the peer closed between requests (normal for keep-alive). *)
val read_request : ?limits:limits -> reader -> (request, error) result

(** [read_response r] parses one response (status, headers, body) —
    the client half, used by the load generator and the tests. Responses
    must carry [Content-Length] (ours always do). *)
val read_response :
  ?limits:limits -> reader -> (int * (string * string) list * string, error) result

(** {1 Request accessors} *)

val header : request -> string -> string option

val query_param : request -> string -> string option

(** [keep_alive r] implements the HTTP/1.x defaults: persistent unless
    [Connection: close] (1.1) or unless [Connection: keep-alive] is absent
    (1.0). *)
val keep_alive : request -> bool

(** {1 Pieces, exposed for tests} *)

(** [parse_request_line l] splits [METHOD SP TARGET SP VERSION]. *)
val parse_request_line : string -> (meth * string * string, string) result

(** [parse_header_line l] splits [name ":" OWS value OWS], lowercasing
    the name. *)
val parse_header_line : string -> (string * string, string) result

(** [split_target t] separates the path from the query string and decodes
    both ([+] decodes to space in query values only). *)
val split_target : string -> string * (string * string) list

val percent_decode : ?plus_as_space:bool -> string -> string

val percent_encode : string -> string

(** {1 Responses} *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val response : ?headers:(string * string) list -> status:int -> string -> response

(** [json_response ?status ?headers v] encodes [v] with
    [Content-Type: application/json]. *)
val json_response : ?status:int -> ?headers:(string * string) list -> Json.t -> response

val status_reason : int -> string

(** [serialize ~keep_alive resp] renders the full wire form, adding
    [Content-Length] and a [Connection] header. *)
val serialize : keep_alive:bool -> response -> string

(** [write_all fd s] loops over [Unix.write_substring] until all of [s]
    is written. Raises [Unix.Unix_error] on failure. *)
val write_all : Unix.file_descr -> string -> unit
