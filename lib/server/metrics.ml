(* Endpoints get a fixed counter slot each; unknown paths share "other".
   Everything is an [Atomic] so workers never serialize on metrics. *)

let endpoints =
  [| "/search"; "/refine"; "/suggest"; "/complete"; "/stats"; "/metrics"; "/health"; "other" |]

let latency_buckets_ms = [| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]

type t = {
  started_at : float;
  total : int Atomic.t;
  by_endpoint : int Atomic.t array;  (* indexed like [endpoints] *)
  by_class : int Atomic.t array;  (* status div 100: 1xx..5xx at 0..4 *)
  buckets : int Atomic.t array;  (* cumulative-histogram raw counts; last = +inf *)
  ep_buckets : int Atomic.t array array;  (* per-endpoint histogram, same bucket layout *)
  latency_sum_us : int Atomic.t;
  shed : int Atomic.t;
  deadline_dropped : int Atomic.t;
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    total = Atomic.make 0;
    by_endpoint = Array.init (Array.length endpoints) (fun _ -> Atomic.make 0);
    by_class = Array.init 5 (fun _ -> Atomic.make 0);
    buckets = Array.init (Array.length latency_buckets_ms + 1) (fun _ -> Atomic.make 0);
    ep_buckets =
      Array.init (Array.length endpoints) (fun _ ->
          Array.init (Array.length latency_buckets_ms + 1) (fun _ -> Atomic.make 0));
    latency_sum_us = Atomic.make 0;
    shed = Atomic.make 0;
    deadline_dropped = Atomic.make 0;
  }

let endpoint_slot path =
  let n = Array.length endpoints in
  let rec find i = if i >= n - 1 then n - 1 else if endpoints.(i) = path then i else find (i + 1) in
  find 0

let incr a = Atomic.incr a

let record t ~endpoint ~status ~ms =
  incr t.total;
  let ep = endpoint_slot endpoint in
  incr t.by_endpoint.(ep);
  let cls = (status / 100) - 1 in
  if cls >= 0 && cls < 5 then incr t.by_class.(cls);
  let rec slot i =
    if i >= Array.length latency_buckets_ms then i
    else if ms <= latency_buckets_ms.(i) then i
    else slot (i + 1)
  in
  let b = slot 0 in
  incr t.buckets.(b);
  incr t.ep_buckets.(ep).(b);
  ignore (Atomic.fetch_and_add t.latency_sum_us (int_of_float (ms *. 1000.)))

let record_shed t = incr t.shed

let record_deadline t = incr t.deadline_dropped

let requests_total t = Atomic.get t.total

(* Percentile estimate off the bucketed histogram: find the bucket where
   the cumulative count crosses [q * total] and interpolate linearly
   inside it (the +inf bucket reports the last finite bound — with the
   default layout that means "above 5s" saturates at 5000). *)
let percentile_ms counts total q =
  if total = 0 then 0.
  else begin
    let target = q *. float_of_int total in
    let nfinite = Array.length latency_buckets_ms in
    let rec walk i cum =
      if i > nfinite then latency_buckets_ms.(nfinite - 1)
      else begin
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= target then
          if i >= nfinite then latency_buckets_ms.(nfinite - 1)
          else begin
            let lower = if i = 0 then 0. else latency_buckets_ms.(i - 1) in
            let upper = latency_buckets_ms.(i) in
            if counts.(i) = 0 then upper
            else
              lower
              +. (upper -. lower) *. ((target -. float_of_int cum) /. float_of_int counts.(i))
          end
        else walk (i + 1) cum'
      end
    in
    walk 0 0
  end

let quantiles_json counts =
  let total = Array.fold_left ( + ) 0 counts in
  [
    ("count", Json.Int total);
    ("p50_ms", Json.Float (percentile_ms counts total 0.5));
    ("p95_ms", Json.Float (percentile_ms counts total 0.95));
    ("p99_ms", Json.Float (percentile_ms counts total 0.99));
  ]

let snapshot t ~queue_depth ~workers ~cache =
  let by_endpoint =
    Array.to_list
      (Array.mapi (fun i c -> (endpoints.(i), Json.Int (Atomic.get c))) t.by_endpoint)
  in
  let by_class =
    List.filter_map
      (fun i ->
        let c = Atomic.get t.by_class.(i) in
        if c = 0 then None else Some (Printf.sprintf "%dxx" (i + 1), Json.Int c))
      [ 0; 1; 2; 3; 4 ]
  in
  (* Cumulative ("le") counts, Prometheus-style. *)
  let cumulative = ref 0 in
  let hist =
    Array.to_list
      (Array.mapi
         (fun i c ->
           cumulative := !cumulative + Atomic.get c;
           let le =
             if i < Array.length latency_buckets_ms then
               Json.Float latency_buckets_ms.(i)
             else Json.String "+inf"
           in
           Json.Obj [ ("le_ms", le); ("count", Json.Int !cumulative) ])
         t.buckets)
  in
  (* Per-endpoint p50/p95/p99, only for endpoints that saw traffic. *)
  let by_endpoint_latency =
    List.filter_map
      (fun i ->
        let counts = Array.map Atomic.get t.ep_buckets.(i) in
        if Array.for_all (fun c -> c = 0) counts then None
        else Some (endpoints.(i), Json.Obj (quantiles_json counts)))
      (List.init (Array.length endpoints) Fun.id)
  in
  let { Lru.hits; misses; entries; evictions; capacity; shards } = cache in
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ( "requests",
        Json.Obj
          [
            ("total", Json.Int (Atomic.get t.total));
            ("by_endpoint", Json.Obj by_endpoint);
            ("by_status", Json.Obj by_class);
            ("shed", Json.Int (Atomic.get t.shed));
            ("deadline_dropped", Json.Int (Atomic.get t.deadline_dropped));
          ] );
      ( "latency",
        Json.Obj
          [
            ("count", Json.Int (Atomic.get t.total));
            ("sum_ms", Json.Float (float_of_int (Atomic.get t.latency_sum_us) /. 1000.));
            ("buckets", Json.List hist);
            ("by_endpoint", Json.Obj by_endpoint_latency);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("entries", Json.Int entries);
            ("evictions", Json.Int evictions);
            ("capacity", Json.Int capacity);
            ("shards", Json.Int shards);
          ] );
      ( "queue",
        Json.Obj [ ("depth", Json.Int queue_depth); ("workers", Json.Int workers) ] );
    ]
