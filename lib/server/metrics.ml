(* Serving metrics over the process-wide xr_obs registry. Endpoints get
   a fixed label slot each (unknown paths share "other"); handles are
   resolved once at [create] so the record path touches exactly one
   shard cell per counter and one per histogram bucket. The same series
   back both renderings: Prometheus text at /metrics (via
   [Xr_obs.Expo]) and the legacy JSON document at /metrics.json
   ([snapshot], shape unchanged from when it lived at /metrics). *)

module Registry = Xr_obs.Registry

let endpoints =
  [|
    "/search";
    "/refine";
    "/suggest";
    "/complete";
    "/stats";
    "/metrics";
    "/metrics.json";
    "/debug/trace";
    "/health";
    "other";
  |]

let latency_buckets_ms = [| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]

(* Status classes as exposed under the [code] label; out-of-range
   statuses share the last slot. *)
let classes = [| "1xx"; "2xx"; "3xx"; "4xx"; "5xx"; "other" |]

let requests_fam =
  Registry.Counter.family ~name:"xr_http_requests_total" ~help:"Completed HTTP requests"
    ~label_names:[ "endpoint"; "code" ] ()

let shed_fam =
  Registry.Counter.family ~name:"xr_http_shed_total"
    ~help:"Connections refused by admission control" ()

let deadline_fam =
  Registry.Counter.family ~name:"xr_http_deadline_dropped_total"
    ~help:"Requests dropped because their deadline passed while queued" ()

let duration_fam =
  Registry.Histogram.family ~name:"xr_http_request_duration_ms"
    ~help:"Request handling latency in milliseconds" ~label_names:[ "endpoint" ]
    ~buckets:latency_buckets_ms ()

type t = {
  started_at : float;
  req : Registry.Counter.h array array;  (* endpoint slot x status class *)
  dur : Registry.Histogram.h array;  (* indexed like [endpoints] *)
  shed : Registry.Counter.h;
  deadline_dropped : Registry.Counter.h;
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    req =
      Array.map
        (fun ep -> Array.map (fun cls -> Registry.Counter.handle requests_fam [ ep; cls ]) classes)
        endpoints;
    dur = Array.map (fun ep -> Registry.Histogram.handle duration_fam [ ep ]) endpoints;
    shed = Registry.Counter.no_labels shed_fam;
    deadline_dropped = Registry.Counter.no_labels deadline_fam;
  }

let started_at t = t.started_at

let endpoint_slot path =
  let n = Array.length endpoints in
  let rec find i = if i >= n - 1 then n - 1 else if endpoints.(i) = path then i else find (i + 1) in
  find 0

let class_slot status =
  let cls = (status / 100) - 1 in
  if cls >= 0 && cls < 5 then cls else 5

let record t ~endpoint ~status ~ms ?(trace_id = 0) () =
  let ep = endpoint_slot endpoint in
  Registry.Counter.inc t.req.(ep).(class_slot status);
  (* the landing bucket keeps the request's trace id as its exemplar,
     so a fat tail bucket names a concrete /debug/trace?id= to pull *)
  Registry.Histogram.observe ~trace_id t.dur.(ep) ms

let record_shed t = Registry.Counter.inc t.shed

let record_deadline t = Registry.Counter.inc t.deadline_dropped

let endpoint_total t ep = Array.fold_left (fun acc h -> acc + Registry.Counter.value h) 0 t.req.(ep)

let requests_total t =
  let total = ref 0 in
  Array.iteri (fun ep _ -> total := !total + endpoint_total t ep) endpoints;
  !total

(* Percentile estimate off the bucketed histogram: find the bucket where
   the cumulative count crosses [q * total] and interpolate linearly
   inside it (the +inf bucket reports the last finite bound — with the
   default layout that means "above 5s" saturates at 5000). *)
let percentile_ms counts total q =
  if total = 0 then 0.
  else begin
    let target = q *. float_of_int total in
    let nfinite = Array.length latency_buckets_ms in
    let rec walk i cum =
      if i > nfinite then latency_buckets_ms.(nfinite - 1)
      else begin
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= target then
          if i >= nfinite then latency_buckets_ms.(nfinite - 1)
          else begin
            let lower = if i = 0 then 0. else latency_buckets_ms.(i - 1) in
            let upper = latency_buckets_ms.(i) in
            if counts.(i) = 0 then upper
            else
              lower
              +. (upper -. lower) *. ((target -. float_of_int cum) /. float_of_int counts.(i))
          end
        else walk (i + 1) cum'
      end
    in
    walk 0 0
  end

let quantiles_json counts =
  let total = Array.fold_left ( + ) 0 counts in
  [
    ("count", Json.Int total);
    ("p50_ms", Json.Float (percentile_ms counts total 0.5));
    ("p95_ms", Json.Float (percentile_ms counts total 0.95));
    ("p99_ms", Json.Float (percentile_ms counts total 0.99));
  ]

let snapshot t ~queue_depth ~workers ~cache =
  let by_endpoint =
    Array.to_list (Array.mapi (fun i ep -> (ep, Json.Int (endpoint_total t i))) endpoints)
  in
  let by_class =
    List.filter_map
      (fun cls ->
        let c =
          Array.fold_left
            (fun acc per_ep -> acc + Registry.Counter.value per_ep.(cls))
            0 t.req
        in
        if c = 0 then None else Some (classes.(cls), Json.Int c))
      [ 0; 1; 2; 3; 4 ]
  in
  (* Aggregate latency over endpoints: raw bucket counts summed, then
     rendered cumulative ("le") Prometheus-style. *)
  let nb = Array.length latency_buckets_ms + 1 in
  let agg = Array.make nb 0 in
  let sum_ms = ref 0. in
  Array.iter
    (fun h ->
      let counts = Registry.Histogram.raw_counts h in
      Array.iteri (fun i c -> agg.(i) <- agg.(i) + c) counts;
      sum_ms := !sum_ms +. Registry.Histogram.sum h)
    t.dur;
  let total = Array.fold_left ( + ) 0 agg in
  let cumulative = ref 0 in
  let hist =
    Array.to_list
      (Array.mapi
         (fun i c ->
           cumulative := !cumulative + c;
           let le =
             if i < Array.length latency_buckets_ms then
               Json.Float latency_buckets_ms.(i)
             else Json.String "+inf"
           in
           Json.Obj [ ("le_ms", le); ("count", Json.Int !cumulative) ])
         agg)
  in
  (* Per-endpoint p50/p95/p99, only for endpoints that saw traffic. *)
  let by_endpoint_latency =
    List.filter_map
      (fun i ->
        let counts = Registry.Histogram.raw_counts t.dur.(i) in
        if Array.for_all (fun c -> c = 0) counts then None
        else Some (endpoints.(i), Json.Obj (quantiles_json counts)))
      (List.init (Array.length endpoints) Fun.id)
  in
  let { Lru.hits; misses; entries; evictions; capacity; shards } = cache in
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ( "requests",
        Json.Obj
          [
            ("total", Json.Int total);
            ("by_endpoint", Json.Obj by_endpoint);
            ("by_status", Json.Obj by_class);
            ("shed", Json.Int (Registry.Counter.value t.shed));
            ("deadline_dropped", Json.Int (Registry.Counter.value t.deadline_dropped));
          ] );
      ( "latency",
        Json.Obj
          [
            ("count", Json.Int total);
            ("sum_ms", Json.Float !sum_ms);
            ("buckets", Json.List hist);
            ("by_endpoint", Json.Obj by_endpoint_latency);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("entries", Json.Int entries);
            ("evictions", Json.Int evictions);
            ("capacity", Json.Int capacity);
            ("shards", Json.Int shards);
          ] );
      ( "queue",
        Json.Obj [ ("depth", Json.Int queue_depth); ("workers", Json.Int workers) ] );
    ]
