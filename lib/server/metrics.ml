(* Endpoints get a fixed counter slot each; unknown paths share "other".
   Everything is an [Atomic] so workers never serialize on metrics. *)

let endpoints =
  [| "/search"; "/refine"; "/suggest"; "/complete"; "/stats"; "/metrics"; "/health"; "other" |]

let latency_buckets_ms = [| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]

type t = {
  started_at : float;
  total : int Atomic.t;
  by_endpoint : int Atomic.t array;  (* indexed like [endpoints] *)
  by_class : int Atomic.t array;  (* status div 100: 1xx..5xx at 0..4 *)
  buckets : int Atomic.t array;  (* cumulative-histogram raw counts; last = +inf *)
  latency_sum_us : int Atomic.t;
  shed : int Atomic.t;
  deadline_dropped : int Atomic.t;
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    total = Atomic.make 0;
    by_endpoint = Array.init (Array.length endpoints) (fun _ -> Atomic.make 0);
    by_class = Array.init 5 (fun _ -> Atomic.make 0);
    buckets = Array.init (Array.length latency_buckets_ms + 1) (fun _ -> Atomic.make 0);
    latency_sum_us = Atomic.make 0;
    shed = Atomic.make 0;
    deadline_dropped = Atomic.make 0;
  }

let endpoint_slot path =
  let n = Array.length endpoints in
  let rec find i = if i >= n - 1 then n - 1 else if endpoints.(i) = path then i else find (i + 1) in
  find 0

let incr a = Atomic.incr a

let record t ~endpoint ~status ~ms =
  incr t.total;
  incr t.by_endpoint.(endpoint_slot endpoint);
  let cls = (status / 100) - 1 in
  if cls >= 0 && cls < 5 then incr t.by_class.(cls);
  let rec slot i =
    if i >= Array.length latency_buckets_ms then i
    else if ms <= latency_buckets_ms.(i) then i
    else slot (i + 1)
  in
  incr t.buckets.(slot 0);
  ignore (Atomic.fetch_and_add t.latency_sum_us (int_of_float (ms *. 1000.)))

let record_shed t = incr t.shed

let record_deadline t = incr t.deadline_dropped

let requests_total t = Atomic.get t.total

let snapshot t ~queue_depth ~workers ~cache =
  let by_endpoint =
    Array.to_list
      (Array.mapi (fun i c -> (endpoints.(i), Json.Int (Atomic.get c))) t.by_endpoint)
  in
  let by_class =
    List.filter_map
      (fun i ->
        let c = Atomic.get t.by_class.(i) in
        if c = 0 then None else Some (Printf.sprintf "%dxx" (i + 1), Json.Int c))
      [ 0; 1; 2; 3; 4 ]
  in
  (* Cumulative ("le") counts, Prometheus-style. *)
  let cumulative = ref 0 in
  let hist =
    Array.to_list
      (Array.mapi
         (fun i c ->
           cumulative := !cumulative + Atomic.get c;
           let le =
             if i < Array.length latency_buckets_ms then
               Json.Float latency_buckets_ms.(i)
             else Json.String "+inf"
           in
           Json.Obj [ ("le_ms", le); ("count", Json.Int !cumulative) ])
         t.buckets)
  in
  let { Lru.hits; misses; entries; evictions; capacity; shards } = cache in
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
      ( "requests",
        Json.Obj
          [
            ("total", Json.Int (Atomic.get t.total));
            ("by_endpoint", Json.Obj by_endpoint);
            ("by_status", Json.Obj by_class);
            ("shed", Json.Int (Atomic.get t.shed));
            ("deadline_dropped", Json.Int (Atomic.get t.deadline_dropped));
          ] );
      ( "latency",
        Json.Obj
          [
            ("count", Json.Int (Atomic.get t.total));
            ("sum_ms", Json.Float (float_of_int (Atomic.get t.latency_sum_us) /. 1000.));
            ("buckets", Json.List hist);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int hits);
            ("misses", Json.Int misses);
            ("entries", Json.Int entries);
            ("evictions", Json.Int evictions);
            ("capacity", Json.Int capacity);
            ("shards", Json.Int shards);
          ] );
      ( "queue",
        Json.Obj [ ("depth", Json.Int queue_depth); ("workers", Json.Int workers) ] );
    ]
