(** Serving metrics over the process-wide {!Xr_obs.Registry}: request
    counts by endpoint and status class, a per-endpoint latency
    histogram (shared bucket layout), shed (admission-refused) and
    timed-out counts. The same series back both renderings — Prometheus
    text at [/metrics] (via {!Xr_obs.Expo}) and the JSON document at
    [/metrics.json] ({!snapshot}), which joins in cache statistics and
    the current queue depth. Handles are resolved at {!create}, so
    recording stays lock-free (one shard-cell RMW per counter). *)

type t

val create : unit -> t

(** Upper bounds (milliseconds) of the cumulative latency histogram
    buckets; the implicit last bucket is [+inf]. *)
val latency_buckets_ms : float array

val started_at : t -> float

(** [record t ~endpoint ~status ~ms ?trace_id ()] accounts one completed
    request. A non-zero [trace_id] is kept as the latency bucket's
    exemplar, linking the observation to [/debug/trace?id=]. *)
val record : t -> endpoint:string -> status:int -> ms:float -> ?trace_id:int -> unit -> unit

(** [record_shed t] accounts one connection refused by admission control. *)
val record_shed : t -> unit

(** [record_deadline t] accounts one request dropped because its deadline
    had already passed when a worker picked it up. *)
val record_deadline : t -> unit

val requests_total : t -> int

(** [percentile_ms counts total q] interpolates the [q]-quantile within
    the shared bucket layout; [counts] are raw per-bucket counts (last =
    +inf), [total] their sum. Exposed for loadgen's client-side
    histogram cross-check. *)
val percentile_ms : int array -> int -> float -> float

(** [snapshot t ~queue_depth ~workers ~cache] renders everything as one
    JSON object (the [/metrics.json] document). *)
val snapshot : t -> queue_depth:int -> workers:int -> cache:Lru.stats -> Json.t
