(** Serving metrics, updated lock-free with [Atomic] counters from every
    worker domain and rendered as the [/metrics] JSON document: request
    counts by endpoint and status class, a cumulative latency histogram
    plus per-endpoint p50/p95/p99 estimates (interpolated within the
    shared bucket layout), shed (admission-refused) and timed-out
    counts, and — joined in at snapshot time — cache statistics and the
    current queue depth. *)

type t

val create : unit -> t

(** Upper bounds (milliseconds) of the cumulative latency histogram
    buckets; the implicit last bucket is [+inf]. *)
val latency_buckets_ms : float array

(** [record t ~endpoint ~status ~ms] accounts one completed request. *)
val record : t -> endpoint:string -> status:int -> ms:float -> unit

(** [record_shed t] accounts one connection refused by admission control. *)
val record_shed : t -> unit

(** [record_deadline t] accounts one request dropped because its deadline
    had already passed when a worker picked it up. *)
val record_deadline : t -> unit

val requests_total : t -> int

(** [snapshot t ~queue_depth ~workers ~cache] renders everything as one
    JSON object. *)
val snapshot : t -> queue_depth:int -> workers:int -> cache:Lru.stats -> Json.t
