type 'a t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  queue : 'a Queue.t;
  bound : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  errors : int Atomic.t;
}

let worker_loop t handler () =
  let rec loop () =
    let job =
      Mutex.protect t.lock (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
            else if t.stopping then None
            else begin
              Condition.wait t.not_empty t.lock;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some job ->
      (try handler job with _ -> Atomic.incr t.errors);
      loop ()
  in
  loop ()

let create ~domains ~queue_bound handler =
  let domains = max 1 domains in
  let t =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      bound = max 1 queue_bound;
      stopping = false;
      workers = [||];
      errors = Atomic.make 0;
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (worker_loop t handler));
  t

let submit t job =
  let accepted =
    Mutex.protect t.lock (fun () ->
        if t.stopping || Queue.length t.queue >= t.bound then false
        else begin
          Queue.push job t.queue;
          true
        end)
  in
  if accepted then Condition.signal t.not_empty;
  accepted

let depth t = Mutex.protect t.lock (fun () -> Queue.length t.queue)

let domains t = Array.length t.workers

let handler_errors t = Atomic.get t.errors

let shutdown t =
  let first =
    Mutex.protect t.lock (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if first then begin
    Condition.broadcast t.not_empty;
    Array.iter Domain.join t.workers
  end
