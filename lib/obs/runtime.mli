(** Process-runtime telemetry: the OCaml GC exported as pulled
    [xr_gc_*] families, plus cheap snapshot/delta capture so a single
    request (or pool task) can report exactly what it allocated and how
    many collections it triggered — the ANALYZE side of
    {!Xr_obs.Analyze}. Everything reads [Gc.quick_stat] (which does not
    force a collection) except minor words, which use [Gc.minor_words]
    so allocation inside the current arena is counted. *)

val register : ?registry:Registry.t -> unit -> unit
(** Register (idempotently) the pulled GC families against [registry]
    (default {!Registry.default}): gauges [xr_gc_heap_words] and
    [xr_gc_major_heap_words], counters [xr_gc_minor_collections_total],
    [xr_gc_major_collections_total], [xr_gc_compactions_total],
    [xr_gc_minor_words_total], [xr_gc_promoted_words_total] and
    [xr_gc_allocated_words_total]. All values are read at scrape time;
    nothing is recorded on any hot path. *)

type snapshot
(** The GC counters at one instant ([Gc.quick_stat], no collection). *)

val capture : unit -> snapshot

type gc_delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;  (** includes promoted words, as [Gc.stat] does *)
  d_minor_collections : int;
  d_major_collections : int;
}
(** What happened between two snapshots. Allocated words =
    [d_minor_words +. d_major_words -. d_promoted_words]. *)

val delta : snapshot -> gc_delta
(** [delta s0] is the change from [s0] to now. Per-domain counters mean
    the delta is only meaningful when both ends run on the same domain
    (capture around a handler or a pool task, not across a fork). *)

val zero : gc_delta

val add : gc_delta -> gc_delta -> gc_delta

val allocated_words : gc_delta -> float
