(** Prometheus text exposition, format version 0.0.4. *)

val content_type : string
(** ["text/plain; version=0.0.4"] — the content-type a scrape endpoint
    must serve this format under. *)

val escape_label_value : string -> string
(** Backslash, double quote, and newline escaped per the format spec. *)

val escape_help : string -> string
(** Backslash and newline escaped (HELP lines keep quotes verbatim). *)

val render : Registry.t -> string
(** Scrape a registry and render it: HELP/TYPE comments per family,
    series in registration order, labels in declaration order,
    histograms as cumulative [_bucket] lines (ending at [le="+Inf"])
    plus [_sum] and [_count]. *)

val render_collected : Registry.metric list -> string
(** Render an already-collected snapshot. *)
