(* Prometheus text exposition (format version 0.0.4) over a registry
   snapshot. Deterministic output: families in registration order,
   series in registration order, labels in declaration order. *)

let content_type = "text/plain; version=0.0.4"

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let labels_str = function
  | [] -> ""
  | pairs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) pairs)
    ^ "}"

let kind_str = function
  | Registry.Counter -> "counter"
  | Registry.Gauge -> "gauge"
  | Registry.Histogram -> "histogram"

let render_metrics buf (metrics : Registry.metric list) =
  List.iter
    (fun (m : Registry.metric) ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" m.Registry.m_name (escape_help m.Registry.m_help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.Registry.m_name (kind_str m.Registry.m_kind));
      List.iter
        (fun (s : Registry.sample) ->
          match s.Registry.s_value with
          | Registry.V_int v ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" m.Registry.m_name (labels_str s.Registry.s_labels) v)
          | Registry.V_float v ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" m.Registry.m_name
                 (labels_str s.Registry.s_labels)
                 (float_str v))
          | Registry.V_hist { bounds; counts; sum; exemplars } ->
            let cum = ref 0 in
            Array.iteri
              (fun i c ->
                cum := !cum + c;
                let le =
                  if i < Array.length bounds then float_str bounds.(i) else "+Inf"
                in
                let ex =
                  (* OpenMetrics-style exemplar suffix; Prometheus 0.0.4
                     scrapers that predate exemplars ignore it as a
                     comment since it starts with [#]. *)
                  match exemplars.(i) with
                  | Some { Registry.ex_trace; ex_value } ->
                    Printf.sprintf " # {trace_id=\"%d\"} %s" ex_trace (float_str ex_value)
                  | None -> ""
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d%s\n" m.Registry.m_name
                     (labels_str (s.Registry.s_labels @ [ ("le", le) ]))
                     !cum ex))
              counts;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" m.Registry.m_name
                 (labels_str s.Registry.s_labels)
                 (float_str sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" m.Registry.m_name
                 (labels_str s.Registry.s_labels)
                 !cum))
        m.Registry.m_samples)
    metrics

let render_collected metrics =
  let buf = Buffer.create 4096 in
  render_metrics buf metrics;
  Buffer.contents buf

let render registry = render_collected (Registry.collect registry)
