(* Slow-query log lines: one self-contained JSON object per offending
   request, with the request's span breakdown inlined so the line is
   actionable without a follow-up /debug/trace call (the spans may have
   been evicted by then). Hand-rolled rendering keeps xr_obs free of a
   JSON dependency; span names and endpoints are escaped so arbitrary
   request paths cannot break the line structure. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_json (sp : Tracing.span) =
  Printf.sprintf {|{"name":"%s","ms":%.3f,"id":%d,"parent":%d,"domain":%d}|}
    (escape sp.Tracing.name)
    (Int64.to_float sp.Tracing.dur_ns /. 1e6)
    sp.Tracing.span_id sp.Tracing.parent_id sp.Tracing.domain

let corpus_json (name, generation, mode) =
  Printf.sprintf {|{"corpus":"%s","generation":%d,"index":"%s"}|} (escape name) generation
    (escape mode)

let render ~endpoint ~status ~ms ~trace_id ?(corpora = []) spans =
  let corpora_field =
    match corpora with
    | [] -> ""
    | cs -> Printf.sprintf {|,"corpora":[%s]|} (String.concat "," (List.map corpus_json cs))
  in
  Printf.sprintf
    {|{"slow_query":true,"endpoint":"%s","status":%d,"ms":%.3f,"trace":%d%s,"spans":[%s]}|}
    (escape endpoint) status ms trace_id corpora_field
    (String.concat "," (List.map span_json spans))
