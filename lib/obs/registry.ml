(* Metric families (counter / gauge / histogram) with label sets,
   updated from every domain without serializing on one cache line:
   each series spreads its value over [shards] cells (a power of two)
   and a writer lands on cell [Domain.self () land (shards - 1)] with a
   single [Atomic] read-modify-write. Scrapes sum the shards. Handles
   are memoized per label tuple and meant to be resolved once, outside
   hot loops; family registration is idempotent so module initializers
   can declare their metrics unconditionally. *)

type kind = Counter | Gauge | Histogram

let default_shards = 16

type exemplar = { ex_trace : int; ex_value : float }

type series = {
  labels : string list;
  cells : int Atomic.t array;  (* counters: one cell per shard *)
  hcells : int Atomic.t array;  (* histograms: shards * (buckets + 1), flattened *)
  hsum_micro : int Atomic.t;  (* histogram sum, in 1e-6 units of the observed value *)
  hexemplars : exemplar option Atomic.t array;  (* per bucket, last-writer-wins *)
  gcell : float Atomic.t;  (* gauges: last-write-wins *)
  mutable pull : (unit -> float) option;  (* scrape-time override *)
}

type family = {
  name : string;
  help : string;
  kind : kind;
  label_names : string list;
  buckets : float array;  (* histogram upper bounds; the +inf bucket is implicit *)
  shards : int;
  lock : Mutex.t;  (* guards [tbl] and [series] *)
  tbl : (string list, series) Hashtbl.t;
  mutable series : series list;  (* reverse registration order *)
}

type t = {
  r_shards : int;
  r_lock : Mutex.t;  (* guards [r_tbl] and [r_families] *)
  r_tbl : (string, family) Hashtbl.t;
  mutable r_families : family list;  (* reverse registration order *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

let create ?(shards = default_shards) () =
  {
    r_shards = pow2_at_least (max 1 shards) 1;
    r_lock = Mutex.create ();
    r_tbl = Hashtbl.create 32;
    r_families = [];
  }

let default_v = create ()

let default () = default_v

let shard_count t = t.r_shards

let valid_name name =
  let ok_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':' in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  String.length name > 0
  && ok_first name.[0]
  && String.for_all ok name

let register t ~name ~help ~kind ~label_names ~buckets =
  if not (valid_name name) then invalid_arg ("Registry: invalid metric name " ^ name);
  Mutex.protect t.r_lock (fun () ->
      match Hashtbl.find_opt t.r_tbl name with
      | Some f ->
        if f.kind <> kind || f.label_names <> label_names || f.buckets <> buckets then
          invalid_arg ("Registry: conflicting re-registration of " ^ name);
        f
      | None ->
        let f =
          {
            name;
            help;
            kind;
            label_names;
            buckets;
            shards = t.r_shards;
            lock = Mutex.create ();
            tbl = Hashtbl.create 8;
            series = [];
          }
        in
        Hashtbl.add t.r_tbl name f;
        t.r_families <- f :: t.r_families;
        f)

let series_of f values =
  if List.length values <> List.length f.label_names then
    invalid_arg ("Registry: label arity mismatch for " ^ f.name);
  Mutex.protect f.lock (fun () ->
      match Hashtbl.find_opt f.tbl values with
      | Some s -> s
      | None ->
        let nb = Array.length f.buckets + 1 in
        let s =
          {
            labels = values;
            cells =
              (if f.kind = Histogram then [||]
               else Array.init f.shards (fun _ -> Atomic.make 0));
            hcells =
              (if f.kind = Histogram then Array.init (f.shards * nb) (fun _ -> Atomic.make 0)
               else [||]);
            hsum_micro = Atomic.make 0;
            hexemplars =
              (if f.kind = Histogram then Array.init nb (fun _ -> Atomic.make None)
               else [||]);
            gcell = Atomic.make 0.;
            pull = None;
          }
        in
        Hashtbl.add f.tbl values s;
        f.series <- s :: f.series;
        s)

let shard_ix f = (Domain.self () :> int) land (f.shards - 1)

type handle = { fam : family; s : series }

module Counter = struct
  type fam = family

  type h = handle

  let family ?(registry = default_v) ~name ~help ?(label_names = []) () =
    register registry ~name ~help ~kind:Counter ~label_names ~buckets:[||]

  let handle fam values = { fam; s = series_of fam values }

  let no_labels fam = handle fam []

  let inc h = Atomic.incr h.s.cells.(shard_ix h.fam)

  let add h n = if n <> 0 then ignore (Atomic.fetch_and_add h.s.cells.(shard_ix h.fam) n)

  let value h =
    match h.s.pull with
    | Some f -> int_of_float (f ())
    | None -> Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.s.cells

  let set_pull h f = h.s.pull <- Some f
end

module Gauge = struct
  type fam = family

  type h = handle

  let family ?(registry = default_v) ~name ~help ?(label_names = []) () =
    register registry ~name ~help ~kind:Gauge ~label_names ~buckets:[||]

  let handle fam values = { fam; s = series_of fam values }

  let no_labels fam = handle fam []

  let set h v = Atomic.set h.s.gcell v

  let value h = match h.s.pull with Some f -> f () | None -> Atomic.get h.s.gcell

  let set_pull h f = h.s.pull <- Some f
end

module Histogram = struct
  type fam = family

  type h = handle

  let default_buckets = [| 0.005; 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100. |]

  let family ?(registry = default_v) ~name ~help ?(label_names = [])
      ?(buckets = default_buckets) () =
    let n = Array.length buckets in
    if n = 0 then invalid_arg ("Registry: histogram with no buckets: " ^ name);
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg ("Registry: histogram buckets must increase: " ^ name)
    done;
    register registry ~name ~help ~kind:Histogram ~label_names ~buckets

  let handle fam values = { fam; s = series_of fam values }

  let no_labels fam = handle fam []

  let bucket_bounds h = h.fam.buckets

  let observe ?(trace_id = 0) h v =
    let bounds = h.fam.buckets in
    let nfinite = Array.length bounds in
    let rec slot i = if i >= nfinite then i else if v <= bounds.(i) then i else slot (i + 1) in
    let b = slot 0 in
    Atomic.incr h.s.hcells.((shard_ix h.fam * (nfinite + 1)) + b);
    if trace_id <> 0 then
      Atomic.set h.s.hexemplars.(b) (Some { ex_trace = trace_id; ex_value = v });
    ignore (Atomic.fetch_and_add h.s.hsum_micro (int_of_float (Float.round (v *. 1e6))))

  (* Raw (non-cumulative) per-bucket counts aggregated over shards; the
     last slot is the +inf bucket. *)
  let raw_counts h =
    let nb = Array.length h.fam.buckets + 1 in
    let out = Array.make nb 0 in
    Array.iteri (fun i c -> out.(i mod nb) <- out.(i mod nb) + Atomic.get c) h.s.hcells;
    out

  let cumulative_counts h =
    let out = raw_counts h in
    for i = 1 to Array.length out - 1 do
      out.(i) <- out.(i) + out.(i - 1)
    done;
    out

  let count h = Array.fold_left ( + ) 0 (raw_counts h)

  let sum h = float_of_int (Atomic.get h.s.hsum_micro) /. 1e6

  let exemplars h = Array.map Atomic.get h.s.hexemplars
end

(* ---- scrape -------------------------------------------------------------- *)

type value =
  | V_int of int
  | V_float of float
  | V_hist of {
      bounds : float array;
      counts : int array;
      sum : float;
      exemplars : exemplar option array;
    }

type sample = { s_labels : (string * string) list; s_value : value }

type metric = { m_name : string; m_help : string; m_kind : kind; m_samples : sample list }

let collect t =
  let families = Mutex.protect t.r_lock (fun () -> List.rev t.r_families) in
  List.map
    (fun f ->
      let series = Mutex.protect f.lock (fun () -> List.rev f.series) in
      let samples =
        List.map
          (fun s ->
            let h = { fam = f; s } in
            let v =
              match f.kind with
              | Counter -> V_int (Counter.value h)
              | Gauge -> V_float (Gauge.value h)
              | Histogram ->
                V_hist
                  {
                    bounds = f.buckets;
                    counts = Histogram.raw_counts h;
                    sum = Histogram.sum h;
                    exemplars = Histogram.exemplars h;
                  }
            in
            { s_labels = List.combine f.label_names s.labels; s_value = v })
          series
      in
      { m_name = f.name; m_help = f.help; m_kind = f.kind; m_samples = samples })
    families
