(* GC telemetry: pulled [xr_gc_*] families plus snapshot/delta capture
   for per-request attribution. [Gc.quick_stat] never forces a
   collection, so both scraping and per-request capture are safe on the
   serving path. Minor words come from [Gc.minor_words] instead of the
   quick_stat field: the latter only advances at minor collections, so
   a request that fits inside the current arena would read as zero. *)

let registered = Atomic.make false

let register ?registry () =
  if not (Atomic.exchange registered true) then begin
    let gauge name help pull =
      let fam = Registry.Gauge.family ?registry ~name ~help () in
      Registry.Gauge.set_pull (Registry.Gauge.no_labels fam) pull
    in
    let counter name help pull =
      let fam = Registry.Counter.family ?registry ~name ~help () in
      Registry.Counter.set_pull (Registry.Counter.no_labels fam) pull
    in
    gauge "xr_gc_heap_words" "Major heap size in words (Gc.quick_stat.heap_words)."
      (fun () -> float_of_int (Gc.quick_stat ()).Gc.heap_words);
    gauge "xr_gc_major_heap_words"
      "Largest major heap size reached, in words (top_heap_words)." (fun () ->
        float_of_int (Gc.quick_stat ()).Gc.top_heap_words);
    counter "xr_gc_minor_collections_total" "Minor collections since process start."
      (fun () -> float_of_int (Gc.quick_stat ()).Gc.minor_collections);
    counter "xr_gc_major_collections_total" "Major collection cycles since process start."
      (fun () -> float_of_int (Gc.quick_stat ()).Gc.major_collections);
    counter "xr_gc_compactions_total" "Heap compactions since process start." (fun () ->
        float_of_int (Gc.quick_stat ()).Gc.compactions);
    counter "xr_gc_minor_words_total" "Words allocated in the minor heap." (fun () ->
        Gc.minor_words ());
    counter "xr_gc_promoted_words_total" "Words promoted from the minor to the major heap."
      (fun () -> (Gc.quick_stat ()).Gc.promoted_words);
    counter "xr_gc_allocated_words_total"
      "Total words allocated (minor + major - promoted): the allocation rate base."
      (fun () ->
        let s = Gc.quick_stat () in
        Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words)
  end

type snapshot = {
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_collections : int;
  s_major_collections : int;
}

let capture () =
  let s = Gc.quick_stat () in
  {
    s_minor_words = Gc.minor_words ();
    s_promoted_words = s.Gc.promoted_words;
    s_major_words = s.Gc.major_words;
    s_minor_collections = s.Gc.minor_collections;
    s_major_collections = s.Gc.major_collections;
  }

type gc_delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
}

let delta s0 =
  let s1 = capture () in
  {
    d_minor_words = s1.s_minor_words -. s0.s_minor_words;
    d_promoted_words = s1.s_promoted_words -. s0.s_promoted_words;
    d_major_words = s1.s_major_words -. s0.s_major_words;
    d_minor_collections = s1.s_minor_collections - s0.s_minor_collections;
    d_major_collections = s1.s_major_collections - s0.s_major_collections;
  }

let zero =
  {
    d_minor_words = 0.;
    d_promoted_words = 0.;
    d_major_words = 0.;
    d_minor_collections = 0;
    d_major_collections = 0;
  }

let add a b =
  {
    d_minor_words = a.d_minor_words +. b.d_minor_words;
    d_promoted_words = a.d_promoted_words +. b.d_promoted_words;
    d_major_words = a.d_major_words +. b.d_major_words;
    d_minor_collections = a.d_minor_collections + b.d_minor_collections;
    d_major_collections = a.d_major_collections + b.d_major_collections;
  }

let allocated_words d = d.d_minor_words +. d.d_major_words -. d.d_promoted_words
