(* Per-request span tracing over the monotonic clock. A span costs one
   [Atomic.get] when tracing is disabled (the common case on the query
   hot path) and, when enabled, two clock reads plus one append into a
   per-domain ring buffer at completion — completed spans only, so no
   publication protocol is needed for in-flight state. The ambient
   (trace, parent) context lives in domain-local storage; pool
   submitters capture it and re-install it inside their tasks so spans
   recorded on worker domains still attach to the submitting request's
   trace. *)

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int;  (* 0 for a trace root *)
  name : string;
  start_ns : int64;
  dur_ns : int64;
  domain : int;
}

let now_ns () = Monotonic_clock.now ()

(* ---- ring buffers -------------------------------------------------------- *)

let n_rings = 64 (* power of two; domains hash onto rings by id *)

type ring = {
  lock : Mutex.t;
  mutable buf : span array;  (* [||] until [enable] sizes it *)
  mutable pos : int;
  mutable filled : bool;  (* the ring has wrapped at least once *)
}

let dummy =
  { trace_id = 0; span_id = 0; parent_id = 0; name = ""; start_ns = 0L; dur_ns = 0L; domain = 0 }

let rings =
  Array.init n_rings (fun _ -> { lock = Mutex.create (); buf = [||]; pos = 0; filled = false })

let enabled_v = Atomic.make false

let enabled () = Atomic.get enabled_v

let default_capacity = 4096

let enable ?(capacity = default_capacity) () =
  let capacity = max 16 capacity in
  Array.iter
    (fun r ->
      Mutex.protect r.lock (fun () ->
          if Array.length r.buf <> capacity then begin
            r.buf <- Array.make capacity dummy;
            r.pos <- 0;
            r.filled <- false
          end))
    rings;
  Atomic.set enabled_v true

let disable () = Atomic.set enabled_v false

let clear () =
  Array.iter
    (fun r ->
      Mutex.protect r.lock (fun () ->
          Array.fill r.buf 0 (Array.length r.buf) dummy;
          r.pos <- 0;
          r.filled <- false))
    rings

let record sp =
  let r = rings.((Domain.self () :> int) land (n_rings - 1)) in
  Mutex.protect r.lock (fun () ->
      let cap = Array.length r.buf in
      if cap > 0 then begin
        r.buf.(r.pos) <- sp;
        r.pos <- r.pos + 1;
        if r.pos = cap then begin
          r.pos <- 0;
          r.filled <- true
        end
      end)

(* ---- ambient context ----------------------------------------------------- *)

let next_id = Atomic.make 1 (* id 0 means "none" *)

let fresh_id () = Atomic.fetch_and_add next_id 1

type context = { trace : int; parent : int }

let ctx_key : context option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current_context () = !(Domain.DLS.get ctx_key)

let current_trace_id () =
  match !(Domain.DLS.get ctx_key) with Some c -> c.trace | None -> 0

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some _ ->
    let r = Domain.DLS.get ctx_key in
    let saved = !r in
    r := ctx;
    Fun.protect ~finally:(fun () -> r := saved) f

let with_span name f =
  if not (Atomic.get enabled_v) then f ()
  else begin
    let r = Domain.DLS.get ctx_key in
    match !r with
    | None -> f () (* no active trace to attach to *)
    | Some ctx ->
      let id = fresh_id () in
      let saved = !r in
      r := Some { trace = ctx.trace; parent = id };
      let t0 = now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = now_ns () in
          r := saved;
          record
            {
              trace_id = ctx.trace;
              span_id = id;
              parent_id = ctx.parent;
              name;
              start_ns = t0;
              dur_ns = Int64.sub t1 t0;
              domain = (Domain.self () :> int);
            })
        f
  end

let with_trace name f =
  if not (Atomic.get enabled_v) then (f (), 0)
  else begin
    let tid = fresh_id () in
    let id = fresh_id () in
    let r = Domain.DLS.get ctx_key in
    let saved = !r in
    r := Some { trace = tid; parent = id };
    let t0 = now_ns () in
    let v =
      Fun.protect
        ~finally:(fun () ->
          let t1 = now_ns () in
          r := saved;
          record
            {
              trace_id = tid;
              span_id = id;
              parent_id = 0;
              name;
              start_ns = t0;
              dur_ns = Int64.sub t1 t0;
              domain = (Domain.self () :> int);
            })
        f
    in
    (v, tid)
  end

(* ---- scraping ------------------------------------------------------------ *)

let all_spans () =
  let out = ref [] in
  Array.iter
    (fun r ->
      Mutex.protect r.lock (fun () ->
          let cap = Array.length r.buf in
          let emit i = if r.buf.(i) != dummy then out := r.buf.(i) :: !out in
          if r.filled then
            for i = r.pos to cap - 1 do
              emit i
            done;
          for i = 0 to r.pos - 1 do
            emit i
          done))
    rings;
  !out

let by_start a b =
  match Int64.compare a.start_ns b.start_ns with 0 -> compare a.span_id b.span_id | c -> c

let spans_of_trace tid =
  List.sort by_start (List.filter (fun s -> s.trace_id = tid) (all_spans ()))

(* Traces whose root span is still in the rings, newest first. A trace
   with evicted or in-flight roots (e.g. the request currently serving
   the scrape) is skipped rather than shown truncated. *)
let recent_traces n =
  let spans = all_spans () in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let cur = try Hashtbl.find tbl s.trace_id with Not_found -> [] in
      Hashtbl.replace tbl s.trace_id (s :: cur))
    spans;
  let roots = List.filter (fun s -> s.parent_id = 0) spans in
  let roots = List.sort (fun a b -> by_start b a) roots in
  let rec take k = function
    | [] -> []
    | r :: rest ->
      if k = 0 then []
      else (r.trace_id, List.sort by_start (Hashtbl.find tbl r.trace_id)) :: take (k - 1) rest
  in
  take (max 0 n) roots

(* ---- trees --------------------------------------------------------------- *)

type tree = { span : span; children : tree list }

let tree_of_spans spans =
  let spans = List.sort by_start spans in
  let present = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace present s.span_id ()) spans;
  let kids = Hashtbl.create 16 in
  let is_root s = s.parent_id = 0 || not (Hashtbl.mem present s.parent_id) in
  List.iter
    (fun s ->
      if not (is_root s) then begin
        let cur = try Hashtbl.find kids s.parent_id with Not_found -> [] in
        Hashtbl.replace kids s.parent_id (s :: cur)
      end)
    spans;
  let rec build s =
    let children = try List.rev (Hashtbl.find kids s.span_id) with Not_found -> [] in
    { span = s; children = List.map build children }
  in
  List.map build (List.filter is_root spans)

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* Pretty span tree: one line per span with its duration, plus a stage
   summary per root comparing the direct children's total against the
   root (concurrent pool tasks overlap deeper in the tree, but direct
   stages are sequential, so the two should agree closely). *)
let render_tree spans =
  let buf = Buffer.create 256 in
  let line indent connector s =
    let label = Printf.sprintf "%s%s%s" indent connector s.name in
    Buffer.add_string buf
      (Printf.sprintf "%-44s %10.3f ms  (d%d)\n" label (ms_of_ns s.dur_ns) s.domain)
  in
  let rec node indent connector child_indent t =
    line indent connector t.span;
    let n = List.length t.children in
    List.iteri
      (fun i c ->
        let last = i = n - 1 in
        node
          (indent ^ child_indent)
          (if last then "└─ " else "├─ ")
          (if last then "   " else "│  ")
          c)
      t.children
  in
  List.iter
    (fun root ->
      node "" "" "" root;
      if root.children <> [] then begin
        let stage_ns =
          List.fold_left (fun acc c -> Int64.add acc c.span.dur_ns) 0L root.children
        in
        let total = ms_of_ns root.span.dur_ns in
        let stages = ms_of_ns stage_ns in
        Buffer.add_string buf
          (Printf.sprintf "stages %.3f ms / %.3f ms total (%.1f%%)\n" stages total
             (if total > 0. then 100. *. stages /. total else 0.))
      end)
    (tree_of_spans spans);
  Buffer.contents buf
