(* Ambient per-request accumulator for ANALYZE actuals. Off is the
   common case and must stay near-free: [note_*] is one DLS get plus a
   [None] check. On, writers take the report's mutex — an ANALYZE
   request is diagnostic and may pay for serialization. *)

type stage = { sg_name : string; sg_in : int; sg_out : int }

type chunk = { ck_index : int; ck_modeled : float; ck_measured : float; ck_ns : float }

type report = {
  lock : Mutex.t;
  mutable r_stages : stage list;  (* reverse recording order *)
  mutable r_chunks : chunk list;  (* reverse recording order *)
  mutable r_task_gc : Runtime.gc_delta;
  mutable r_tasks : int;
}

let key : report option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get key <> None

let current () = Domain.DLS.get key

let with_report f =
  let r =
    {
      lock = Mutex.create ();
      r_stages = [];
      r_chunks = [];
      r_task_gc = Runtime.zero;
      r_tasks = 0;
    }
  in
  let saved = Domain.DLS.get key in
  Domain.DLS.set key (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key saved) (fun () ->
      let v = f () in
      (v, r))

let task r f =
  match r with
  | None -> f ()
  | Some r ->
    let saved = Domain.DLS.get key in
    Domain.DLS.set key (Some r);
    let g0 = Runtime.capture () in
    Fun.protect
      ~finally:(fun () ->
        let d = Runtime.delta g0 in
        Domain.DLS.set key saved;
        Mutex.protect r.lock (fun () ->
            r.r_task_gc <- Runtime.add r.r_task_gc d;
            r.r_tasks <- r.r_tasks + 1))
      f

let note_stage ~name ~input ~output =
  match Domain.DLS.get key with
  | None -> ()
  | Some r ->
    Mutex.protect r.lock (fun () ->
        r.r_stages <- { sg_name = name; sg_in = input; sg_out = output } :: r.r_stages)

let note_chunk c =
  match Domain.DLS.get key with
  | None -> ()
  | Some r -> Mutex.protect r.lock (fun () -> r.r_chunks <- c :: r.r_chunks)

let stages r = List.rev r.r_stages

let chunks r = List.rev r.r_chunks

let task_gc r = r.r_task_gc

let tasks r = r.r_tasks
