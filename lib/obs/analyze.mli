(** The ANALYZE collection channel: an ambient, per-request accumulator
    that execution stages write actuals into — candidates in/out per
    stage, per-chunk modeled-vs-measured cost, per-pool-task GC deltas.

    Cost model, in order of importance: when no report is active (every
    normal request), each [note_*] call is one [Domain.DLS.get] and a
    [None] check — the same budget class as a disabled
    {!Tracing.with_span}, and covered by the same ≤ 2% bench gate
    ([analyze_off_overhead_pct] in BENCH_slca.json).

    The report is domain-local ambient state (like the tracing
    context): fork points capture it with {!current} and hand it to
    {!task} on the worker. Mutation is mutex-protected — ANALYZE
    requests are explicitly diagnostic, they may pay for a lock. *)

type stage = { sg_name : string; sg_in : int; sg_out : int }
(** Candidate counts through one pipeline stage. *)

type chunk = {
  ck_index : int;
  ck_modeled : float;  (** this chunk's share of the modeled total cost, 0..1 *)
  ck_measured : float;  (** its share of the measured wall time, 0..1 *)
  ck_ns : float;  (** measured wall time, nanoseconds *)
}
(** One cost-modeled parallel chunk: what the model predicted vs what
    the clock said. Drift ratio = [ck_measured /. ck_modeled]. *)

type report

val with_report : (unit -> 'a) -> 'a * report
(** Run [f] with a fresh report installed as this domain's ambient
    collection; returns the result and the finished report. Nested
    calls shadow (inner wins), exceptions uninstall. *)

val active : unit -> bool

val current : unit -> report option
(** Capture the ambient report at a fork point (or [None]). *)

val task : report option -> (unit -> unit) -> unit
(** [task r f] runs one pool task: for [Some r] the report is installed
    on the executing domain for the duration and the task's GC delta
    and count are folded into it; [None] just runs [f]. *)

(** {1 Recording} (no-ops without an active report) *)

val note_stage : name:string -> input:int -> output:int -> unit

val note_chunk : chunk -> unit

(** {1 Reading a finished report} *)

val stages : report -> stage list
(** In recording order. *)

val chunks : report -> chunk list
(** In recording order. *)

val task_gc : report -> Runtime.gc_delta
(** Summed GC delta over all pool tasks that ran under this report. *)

val tasks : report -> int
