(** Structured per-request tracing: named spans over the monotonic
    clock, recorded into per-domain ring buffers on completion. With
    tracing disabled (the default), {!with_span} costs a single
    [Atomic.get] before running its thunk — cheap enough to leave in
    query kernels permanently. The ambient (trace, parent) context is
    domain-local; fork points capture it with {!current_context} and
    re-install it on worker domains with {!with_context}. *)

type span = {
  trace_id : int;
  span_id : int;
  parent_id : int;  (** 0 for a trace root *)
  name : string;
  start_ns : int64;
  dur_ns : int64;
  domain : int;  (** domain id the span completed on *)
}

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds. *)

val enable : ?capacity:int -> unit -> unit
(** Turn tracing on, (re)sizing each per-domain ring to [capacity]
    spans (default 4096, minimum 16). Idempotent; existing spans are
    kept when the capacity is unchanged. *)

val disable : unit -> unit

val enabled : unit -> bool

val clear : unit -> unit
(** Drop all recorded spans (test hook). *)

val with_trace : string -> (unit -> 'a) -> 'a * int
(** [with_trace name f] runs [f] under a fresh trace root span and
    returns its result with the trace id — 0 when tracing is disabled
    (no span recorded). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] under a child span of the ambient
    context. A no-op when tracing is disabled or no trace is active on
    this domain. The span is recorded on completion, exceptions
    included. *)

(** {1 Cross-domain propagation} *)

type context

val current_context : unit -> context option
(** The ambient (trace, parent) position, to capture at a fork point. *)

val current_trace_id : unit -> int
(** The ambient trace id — 0 when no trace is active on this domain.
    Lets a handler stamp records (exemplars, ANALYZE payloads) with the
    trace they belong to while the trace is still open. *)

val with_context : context option -> (unit -> 'a) -> 'a
(** Run a thunk under a captured context on another domain; [None] is
    the identity. *)

(** {1 Scraping} *)

val spans_of_trace : int -> span list
(** All recorded spans of one trace, in start order. *)

val recent_traces : int -> (int * span list) list
(** Up to [n] most recent traces whose root span is still buffered,
    newest first, each with its spans in start order. *)

(** {1 Span trees} *)

type tree = { span : span; children : tree list }

val tree_of_spans : span list -> tree list
(** Forest reconstruction by parent links; spans whose parent was
    evicted from its ring become roots. Children are in start order. *)

val render_tree : span list -> string
(** Human-readable span tree with per-span durations and, per root, a
    summary line comparing the direct stages' total to the root's. *)
