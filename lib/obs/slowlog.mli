(** Slow-query log formatting: one JSON line per offending request with
    its span breakdown inlined. The caller owns the threshold check and
    the output stream. *)

val render :
  endpoint:string -> status:int -> ms:float -> trace_id:int -> Tracing.span list -> string
(** A single line (no trailing newline):
    [{"slow_query":true,"endpoint":…,"status":…,"ms":…,"trace":…,"spans":[…]}]. *)
