(** Slow-query log formatting: one JSON line per offending request with
    its span breakdown inlined. The caller owns the threshold check and
    the output stream. *)

val render :
  endpoint:string ->
  status:int ->
  ms:float ->
  trace_id:int ->
  ?corpora:(string * int * string) list ->
  Tracing.span list ->
  string
(** A single line (no trailing newline):
    [{"slow_query":true,"endpoint":…,"status":…,"ms":…,"trace":…,
      "corpora":[{"corpus":…,"generation":…,"index":…}],"spans":[…]}].
    [corpora] attributes the entry to the (corpus, generation id,
    index mode flat|dag) tuples the request was served from, so a slow
    line stays diagnosable after an ingest publish swaps the index;
    omitted (or empty) ⇒ no ["corpora"] field, for requests that never
    touched an index. *)
