(** Process-wide metrics registry: counter, gauge, and histogram
    families with label sets. Updates are lock-free on the hot path —
    every series spreads its value over per-domain shard cells (one
    [Atomic] RMW per update, domains land on different cache lines) and
    scrapes aggregate the shards. Family registration is idempotent, so
    modules declare their metrics in top-level initializers; handles
    (one per label-value tuple) are memoized and should be resolved
    outside hot loops. *)

type t

val create : ?shards:int -> unit -> t
(** [create ~shards ()] builds an empty registry whose series split
    their cells over [shards] cells (rounded up to a power of two;
    default {!default_shards}). *)

val default : unit -> t
(** The process-wide registry that all product metrics register
    against; [/metrics] exposes exactly its contents. *)

val default_shards : int

val shard_count : t -> int

type kind = Counter | Gauge | Histogram

type exemplar = { ex_trace : int; ex_value : float }
(** The last observation that landed in a histogram bucket, tagged with
    the trace id active when it was recorded — the link from a latency
    bucket back to the exact request ([/debug/trace?id=]). *)

module Counter : sig
  type fam

  type h

  val family :
    ?registry:t -> name:string -> help:string -> ?label_names:string list -> unit -> fam
  (** Register (or look up) a counter family. Raises [Invalid_argument]
      on a name/kind/label mismatch with an existing family. *)

  val handle : fam -> string list -> h
  (** The series for one label-value tuple (memoized). *)

  val no_labels : fam -> h

  val inc : h -> unit

  val add : h -> int -> unit

  val value : h -> int

  val set_pull : h -> (unit -> float) -> unit
  (** Make the series report [f ()] at scrape time instead of its
      cells — for monotone values owned by another component. *)
end

module Gauge : sig
  type fam

  type h

  val family :
    ?registry:t -> name:string -> help:string -> ?label_names:string list -> unit -> fam

  val handle : fam -> string list -> h

  val no_labels : fam -> h

  val set : h -> float -> unit

  val value : h -> float

  val set_pull : h -> (unit -> float) -> unit
  (** Make the series report [f ()] at scrape time (live values such as
      queue depth or cache occupancy). *)
end

module Histogram : sig
  type fam

  type h

  val default_buckets : float array

  val family :
    ?registry:t ->
    name:string ->
    help:string ->
    ?label_names:string list ->
    ?buckets:float array ->
    unit ->
    fam
  (** [buckets] are the finite upper bounds, strictly increasing; the
      +inf bucket is implicit. *)

  val handle : fam -> string list -> h

  val no_labels : fam -> h

  val bucket_bounds : h -> float array

  val observe : ?trace_id:int -> h -> float -> unit
  (** Record [v]. When [trace_id] is non-zero the landing bucket's
      exemplar slot is overwritten (last-writer-wins, one [Atomic.set])
      so the scrape can point at a concrete trace per bucket. *)

  val exemplars : h -> exemplar option array
  (** Per-bucket exemplars (last slot = +inf); [None] where no traced
      observation has landed yet. *)

  val raw_counts : h -> int array
  (** Per-bucket (non-cumulative) counts aggregated over shards; the
      last slot is the +inf bucket. *)

  val cumulative_counts : h -> int array

  val count : h -> int

  val sum : h -> float
end

(** {1 Scraping} *)

type value =
  | V_int of int
  | V_float of float
  | V_hist of {
      bounds : float array;
      counts : int array;
      sum : float;
      exemplars : exemplar option array;
    }  (** [counts]/[exemplars] raw per-bucket, last = +inf *)

type sample = { s_labels : (string * string) list; s_value : value }

type metric = { m_name : string; m_help : string; m_kind : kind; m_samples : sample list }

val collect : t -> metric list
(** Families in registration order, each with its series in
    registration order and label pairs in declaration order. *)
