type id = int

type node = { parent : id; (* -1 for root paths *) tag : Interner.id; depth : int }

type table = {
  by_key : (int * Interner.id, id) Hashtbl.t; (* (parent, tag) -> id; parent = -1 at root *)
  mutable nodes : node array;
  mutable next : int;
}

let dummy = { parent = -1; tag = -1; depth = 0 }

let create () = { by_key = Hashtbl.create 64; nodes = Array.make 64 dummy; next = 0 }

let grow t =
  let n = Array.length t.nodes in
  let a = Array.make (2 * n) dummy in
  Array.blit t.nodes 0 a 0 n;
  t.nodes <- a

let copy t =
  { by_key = Hashtbl.copy t.by_key; nodes = Array.copy t.nodes; next = t.next }

let intern t ~parent ~tag =
  match Hashtbl.find_opt t.by_key (parent, tag) with
  | Some id -> id
  | None ->
    let id = t.next in
    if id = Array.length t.nodes then grow t;
    let depth = if parent < 0 then 1 else t.nodes.(parent).depth + 1 in
    t.nodes.(id) <- { parent; tag; depth };
    Hashtbl.add t.by_key (parent, tag) id;
    t.next <- id + 1;
    id

let root t ~tag = intern t ~parent:(-1) ~tag

let child t ~parent ~tag = intern t ~parent ~tag

let get t id =
  if id < 0 || id >= t.next then invalid_arg "Path: unknown id" else t.nodes.(id)

let parent t id =
  let n = get t id in
  if n.parent < 0 then None else Some n.parent

let tag t id = (get t id).tag

let depth t id = (get t id).depth

let is_prefix t ~ancestor ~descendant =
  let da = depth t ancestor in
  let rec climb id =
    if id = ancestor then true
    else
      let n = get t id in
      if n.depth <= da then false
      else if n.parent < 0 then false
      else climb n.parent
  in
  climb descendant

let ancestor_at t id ~depth:d =
  let rec climb id =
    let n = get t id in
    if n.depth = d then Some id
    else if n.depth < d || n.parent < 0 then None
    else climb n.parent
  in
  if d < 1 then None else climb id

let ancestors t id =
  (* [p; parent; ...; root] *)
  let rec go acc id =
    let n = get t id in
    if n.parent < 0 then List.rev (id :: acc) else go (id :: acc) n.parent
  in
  go [] id

let size t = t.next

let to_string t tags id =
  let rec parts acc id =
    let n = get t id in
    let acc = Interner.name tags n.tag :: acc in
    if n.parent < 0 then acc else parts acc n.parent
  in
  "/" ^ String.concat "/" (parts [] id)

let iter f t =
  for id = 0 to t.next - 1 do
    f id
  done
