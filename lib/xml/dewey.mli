(** Dewey labels for XML nodes.

    A Dewey label encodes the path of child ordinals from the document root
    to a node: the root is [[||]]; its second child is [[|1|]]; the first
    child of that node is [[|1; 0|]]. Lexicographic order on labels
    coincides with document order, and the lowest common ancestor of two
    nodes is the longest common prefix of their labels. *)

type t = int array

(** [compare a b] orders labels in document order (lexicographic, with a
    prefix ordered before its extensions). *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [root] is the label of the document root ([[||]]). *)
val root : t

(** [child d i] is the label of the [i]-th child (0-based) of [d]. *)
val child : t -> int -> t

(** [parent d] is the label of [d]'s parent, or [None] for the root. *)
val parent : t -> t option

(** [depth d] is the number of components, i.e. 0 for the root. *)
val depth : t -> int

(** [is_prefix p d] is true iff [p] is a (non-strict) prefix of [d], i.e.
    the node labeled [p] is [d] or an ancestor of [d]. *)
val is_prefix : t -> t -> bool

(** [lca a b] is the longest common prefix of [a] and [b]: the Dewey label
    of the lowest common ancestor of the two nodes. *)
val lca : t -> t -> t

(** [prefix d n] is the first [n] components of [d].
    @raise Invalid_argument if [n > depth d]. *)
val prefix : t -> int -> t

(** [common_prefix_len a b] is the number of leading components shared by
    [a] and [b]. *)
val common_prefix_len : t -> t -> int

(** [to_string d] renders [d] as ["0.1.2"] (the root renders as ["0"];
    non-root labels are printed with a leading ["0."] component standing
    for the root, matching the paper's notation). *)
val to_string : t -> string

(** [of_string s] parses the notation produced by {!to_string}.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** [hash d] is a hash compatible with {!equal}. *)
val hash : t -> int

(** Packed label sequences: an entire inverted list's Dewey labels varint
    encoded into one contiguous, immutable byte buffer with an offsets
    table. Entry [i] is stored as a varint depth followed by its varint
    components. Comparison, common-prefix and lower-bound probes operate
    directly on the encoded form with early exit, so the hot SLCA kernels
    never materialize an [int array] per step; the flat buffer also makes
    binary-search probes cache-friendly and safely shareable across
    domains (the structure is immutable after construction). *)
module Packed : sig
  type t

  val empty : t

  (** [length t] is the number of labels stored. *)
  val length : t -> int

  (** [byte_size t] is the size of the label buffer in bytes (offsets
      table excluded). *)
  val byte_size : t -> int

  (** [max_depth t] bounds the depth of every stored label; sizing a
      scratch buffer to it makes {!blit_entry} total. *)
  val max_depth : t -> int

  (** [of_array labels] packs labels in the given order (inverted lists
      are in document order, but no order is required here).
      @raise Invalid_argument on a negative component. *)
  val of_array : int array array -> t

  val of_list : int array list -> t

  (** [get t i] materializes entry [i] (slow path / compatibility). *)
  val get : t -> int -> int array

  val to_array : t -> int array array

  (** [depth_at t i] is the depth of entry [i] without decoding it. *)
  val depth_at : t -> int -> int

  (** [blit_entry t i dst] decodes entry [i] into [dst] and returns its
      depth. [dst] must hold at least {!max_depth} components. *)
  val blit_entry : t -> int -> int array -> int

  (** [compare_sub t i v len] compares entry [i] against the first [len]
      components of [v] in document order, without materializing. *)
  val compare_sub : t -> int -> int array -> int -> int

  (** [compare_label t i v] is [compare_sub t i v (Array.length v)]. *)
  val compare_label : t -> int -> int array -> int

  (** [common_prefix_len_sub t i v len] is the number of leading
      components entry [i] shares with [v]'s first [len] components. *)
  val common_prefix_len_sub : t -> int -> int array -> int -> int

  val common_prefix_len_label : t -> int -> int array -> int

  (** [first_component t i] is the first path component of entry [i]
      without materializing it, or [-1] for the root (depth 0) — the
      partition id of the posting in the paper's partition evaluation. *)
  val first_component : t -> int -> int

  (** [compare_prefix_sub t i v len] fuses {!compare_sub} and
      {!common_prefix_len_sub} into one walk over entry [i]: the result
      is [(plen lsl 2) lor (cmp + 1)] where [cmp] (in [-1..1]) orders
      the entry against [v.(0..len-1)] and [plen] is their common prefix
      length. Probe primitive of the allocation-free scan kernels. *)
  val compare_prefix_sub : t -> int -> int array -> int -> int

  (** [compare_entries a i b j] compares entry [i] of [a] with entry [j]
      of [b], decoding both streams in lockstep. *)
  val compare_entries : t -> int -> t -> int -> int

  (** [lower_bound_sub t ~lo v len] is the first index in [[lo, length t)]
      whose entry is [>=] the first [len] components of [v] (binary
      search; assumes the list is sorted, as inverted lists are). *)
  val lower_bound_sub : t -> lo:int -> int array -> int -> int

  val lower_bound : t -> lo:int -> int array -> int

  (** [prefix_slice_sub t ~lo v len] is the half-open index range of the
      entries lying in the subtree rooted at [v]'s first [len] components,
      restricted to indices [>= lo] — the packed counterpart of
      {!Inverted.prefix_slice_from}, found by two binary searches on the
      encoded form. *)
  val prefix_slice_sub : t -> lo:int -> int array -> int -> int * int

  val prefix_slice : t -> lo:int -> int array -> int * int

  (** [to_raw t] exposes the label buffer, offsets table and max depth for
      zero-copy persistence. The returned arrays are the live internals:
      do not mutate them. *)
  val to_raw : t -> string * int array * int

  (** [of_raw ~buf ~offsets ~max_depth] adopts a buffer produced by
      {!to_raw} (or read back from storage) without re-encoding.
      @raise Invalid_argument if the offsets table is not a monotone span
      of the buffer. *)
  val of_raw : buf:string -> offsets:int array -> max_depth:int -> t
end
