(** Compiled XML documents.

    [Doc.of_tree] walks a {!Tree.t} once and produces the representation
    every other layer works on: element nodes in document order, each
    carrying its Dewey label, its node type (interned prefix path) and its
    direct keyword occurrences (tokens of the tag name and of the element's
    own text/attribute values). *)

type node = {
  dewey : Dewey.t;
  path : Path.id;  (** node type: interned prefix path *)
  tag : Interner.id;  (** tag name, interned in [tags] *)
  keywords : (Interner.id * int) list;
      (** direct keyword occurrences with multiplicities, interned in
          [keywords]; includes the tokens of the tag name *)
}

type t = {
  tree : Tree.t;
  nodes : node array;  (** all element nodes, in document order *)
  tags : Interner.t;
  keywords : Interner.t;  (** keyword vocabulary of the document *)
  paths : Path.table;
  root_path : Path.id;
}

(** [of_tree tree] compiles [tree]. *)
val of_tree : Tree.t -> t

(** [of_string s] parses and compiles an XML document. *)
val of_string : string -> t

(** [of_file path] reads, parses and compiles an XML document. *)
val of_file : string -> t

(** [append_child d subtree] compiles a document extended with [subtree]
    as a new last child of the root — the incremental-maintenance
    primitive (a new document partition in the paper's terms). Returns
    the new document and the newly created nodes (in document order).
    Interner and path tables are shared and extended in place; the old
    document value remains readable. *)
val append_child : t -> Tree.t -> t * node array

(** [fork d] is a document that shares the (immutable) tree and node
    array with [d] but owns private copies of the interner and path
    tables, so [append_child] on the fork never mutates state visible
    through [d]. This is the snapshot primitive behind online ingest:
    readers keep querying [d] while a writer extends the fork. Ids
    already allocated are preserved, so Dewey labels, node types and
    keyword ids mean the same thing in both documents. *)
val fork : t -> t

(** [node_count d] is the number of element nodes. *)
val node_count : t -> int

(** [find d dewey] is the node labeled [dewey], if any (binary search). *)
val find : t -> Dewey.t -> node option

(** [path_of_dewey d dewey] is the node type of the node labeled [dewey]. *)
val path_of_dewey : t -> Dewey.t -> Path.id option

(** [subtree d dewey] is the XML subtree rooted at [dewey], if any. *)
val subtree : t -> Dewey.t -> Tree.t option

(** [subtree_node_range d dewey] is the half-open index interval of
    [nodes] lying in the subtree rooted at [dewey] (empty if the label is
    unknown); the nodes of a subtree are contiguous in document order. *)
val subtree_node_range : t -> Dewey.t -> int * int

(** [keyword_id d k] is the interned id of keyword [k] (normalized first),
    or [None] if [k] does not occur anywhere in the document. *)
val keyword_id : t -> string -> Interner.id option

(** [keyword_name d id] is the keyword spelled out. *)
val keyword_name : t -> Interner.id -> string

(** [tag_name d node] is the tag of [node] spelled out. *)
val tag_name : t -> node -> string

(** [path_string d p] renders node type [p] as ["/bib/author"]. *)
val path_string : t -> Path.id -> string

(** [label d dewey] renders a node as ["tag:0.1.2"] (paper notation). *)
val label : t -> Dewey.t -> string

(** [vocabulary d] is every keyword of the document, in id order. *)
val vocabulary : t -> string list
