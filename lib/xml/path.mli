(** Node types as interned prefix paths (Definition 3.1 of the paper).

    The type of a node is the path of tag names from the document root down
    to the node. Two nodes share a node type iff they share that prefix
    path. Paths are interned into dense integer ids so statistics tables
    can be arrays indexed by path id. *)

type id = int

type table

val create : unit -> table

(** [copy tbl] is an independent table with the same contents: interning
    into the copy never mutates [tbl]. Path ids are preserved. *)
val copy : table -> table

(** [root tbl ~tag] interns (or finds) the root path [/tag]. *)
val root : table -> tag:Interner.id -> id

(** [child tbl ~parent ~tag] interns (or finds) the path [parent/tag]. *)
val child : table -> parent:id -> tag:Interner.id -> id

(** [parent tbl p] is the parent path of [p], or [None] for a root path. *)
val parent : table -> id -> id option

(** [tag tbl p] is the tag (interned) of the last step of [p]. *)
val tag : table -> id -> Interner.id

(** [depth tbl p] is the number of steps in [p]: a root path has depth 1,
    matching the paper's [depth(T)] where the reduction factor is
    [r^depth(T)]. *)
val depth : table -> id -> int

(** [is_prefix tbl ~ancestor ~descendant] is true iff [ancestor] is a
    non-strict prefix path of [descendant] — i.e. every
    [descendant]-typed node is a self-or-descendant of an
    [ancestor]-typed node. *)
val is_prefix : table -> ancestor:id -> descendant:id -> bool

(** [ancestor_at tbl p ~depth] is the prefix of [p] with the given depth
    (so [ancestor_at tbl p ~depth:(depth tbl p) = Some p]), or [None] if
    [p] is shallower than [depth]. *)
val ancestor_at : table -> id -> depth:int -> id option

(** [ancestors tbl p] lists [p] and all its prefixes, outermost last
    (i.e. [p :: parent :: ... :: root]). *)
val ancestors : table -> id -> id list

(** [size tbl] is the number of distinct paths interned. *)
val size : table -> int

(** [to_string tbl tags p] renders [p] as ["/bib/author/name"]. *)
val to_string : table -> Interner.t -> id -> string

(** [iter f tbl] applies [f] to every path id in id order. *)
val iter : (id -> unit) -> table -> unit
