type id = int

type t = {
  by_name : (string, id) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create ?(capacity = 256) () =
  { by_name = Hashtbl.create capacity; by_id = Array.make capacity ""; next = 0 }

let grow t =
  let n = Array.length t.by_id in
  let a = Array.make (2 * n) "" in
  Array.blit t.by_id 0 a 0 n;
  t.by_id <- a

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
    let id = t.next in
    if id = Array.length t.by_id then grow t;
    t.by_id.(id) <- s;
    Hashtbl.add t.by_name s id;
    t.next <- id + 1;
    id

let copy t =
  { by_name = Hashtbl.copy t.by_name; by_id = Array.copy t.by_id; next = t.next }

let find t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= t.next then invalid_arg "Interner.name: unknown id"
  else t.by_id.(id)

let size t = t.next

let iter f t =
  for id = 0 to t.next - 1 do
    f id t.by_id.(id)
  done
