type t = int array

let root = [||]

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec go i =
    if i = n then Int.compare la lb
    else
      let c = Int.compare (Array.unsafe_get a i) (Array.unsafe_get b i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let child d i =
  let n = Array.length d in
  let r = Array.make (n + 1) 0 in
  Array.blit d 0 r 0 n;
  r.(n) <- i;
  r

let parent d =
  let n = Array.length d in
  if n = 0 then None else Some (Array.sub d 0 (n - 1))

let depth = Array.length

let is_prefix p d =
  let lp = Array.length p in
  lp <= Array.length d
  &&
  let rec go i = i = lp || (p.(i) = d.(i) && go (i + 1)) in
  go 0

let common_prefix_len a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i = if i < n && a.(i) = b.(i) then go (i + 1) else i in
  go 0

let lca a b = Array.sub a 0 (common_prefix_len a b)

let prefix d n =
  if n > Array.length d then invalid_arg "Dewey.prefix: too deep"
  else Array.sub d 0 n

let to_string d =
  if Array.length d = 0 then "0"
  else
    let b = Buffer.create 16 in
    Buffer.add_char b '0';
    Array.iter
      (fun i ->
        Buffer.add_char b '.';
        Buffer.add_string b (string_of_int i))
      d;
    Buffer.contents b

let of_string s =
  match String.split_on_char '.' s with
  | "0" :: rest ->
    let comp c =
      match int_of_string_opt c with
      | Some i when i >= 0 -> i
      | _ -> invalid_arg ("Dewey.of_string: bad component " ^ c)
    in
    Array.of_list (List.map comp rest)
  | _ -> invalid_arg ("Dewey.of_string: must start with 0: " ^ s)

let pp ppf d = Format.pp_print_string ppf (to_string d)

let hash d = Hashtbl.hash (Array.to_list d)

type label = t

(* Packed posting labels: one contiguous byte buffer per inverted list,
   each entry a varint depth followed by varint components, addressed
   through an offsets table. All structural operations (compare, common
   prefix, lower bound) decode lazily off the buffer with early exit and
   never materialize an [int array]. *)
module Packed = struct
  type t = { buf : string; offsets : int array; max_depth : int }

  let empty = { buf = ""; offsets = [| 0 |]; max_depth = 0 }

  let length t = Array.length t.offsets - 1

  let byte_size t = String.length t.buf

  let max_depth t = t.max_depth

  (* ---- varints (unsigned LEB128, components are child ordinals >= 0) --- *)

  let add_varint b n =
    let rec go n =
      if n < 0x80 then Buffer.add_char b (Char.unsafe_chr n)
      else begin
        Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let byte s off = Char.code (String.unsafe_get s off)

  let rec decode_from s off shift acc =
    let b = byte s off in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else decode_from s (off + 1) (shift + 7) acc

  (* single-byte fast path: ordinals below 128 are one byte *)
  let decode s off =
    let b = byte s off in
    if b < 0x80 then b else decode_from s (off + 1) 7 (b land 0x7f)

  let rec skip s off = if byte s off < 0x80 then off + 1 else skip s (off + 1)

  (* ---- building --------------------------------------------------------- *)

  let of_array (labels : label array) =
    let n = Array.length labels in
    let b = Buffer.create ((4 * n) + 16) in
    let offsets = Array.make (n + 1) 0 in
    let maxd = ref 0 in
    for i = 0 to n - 1 do
      let d = labels.(i) in
      let depth = Array.length d in
      offsets.(i) <- Buffer.length b;
      add_varint b depth;
      for k = 0 to depth - 1 do
        if d.(k) < 0 then invalid_arg "Dewey.Packed.of_array: negative component";
        add_varint b d.(k)
      done;
      if depth > !maxd then maxd := depth
    done;
    offsets.(n) <- Buffer.length b;
    { buf = Buffer.contents b; offsets; max_depth = !maxd }

  let of_list l = of_array (Array.of_list l)

  (* ---- per-entry access ------------------------------------------------- *)

  let check t i =
    if i < 0 || i >= length t then invalid_arg "Dewey.Packed: entry index out of bounds"

  let depth_at t i =
    check t i;
    decode t.buf t.offsets.(i)

  let blit_entry t i dst =
    check t i;
    let off = t.offsets.(i) in
    let d = decode t.buf off in
    if Array.length dst < d then invalid_arg "Dewey.Packed.blit_entry: scratch too small";
    let rec go k off =
      if k < d then begin
        Array.unsafe_set dst k (decode t.buf off);
        go (k + 1) (skip t.buf off)
      end
    in
    go 0 (skip t.buf off);
    d

  let get t i =
    check t i;
    let off = t.offsets.(i) in
    let d = decode t.buf off in
    let a = Array.make d 0 in
    let rec go k off =
      if k < d then begin
        a.(k) <- decode t.buf off;
        go (k + 1) (skip t.buf off)
      end
    in
    go 0 (skip t.buf off);
    a

  let to_array t = Array.init (length t) (get t)

  (* ---- allocation-free structural operations ---------------------------- *)

  let compare_sub t i (v : label) len =
    check t i;
    let off = t.offsets.(i) in
    let d = decode t.buf off in
    let n = if d < len then d else len in
    let rec go k off =
      if k = n then Int.compare d len
      else
        let c = decode t.buf off in
        let x = Array.unsafe_get v k in
        if c <> x then Int.compare c x else go (k + 1) (skip t.buf off)
    in
    go 0 (skip t.buf off)

  let compare_label t i v = compare_sub t i v (Array.length v)

  let common_prefix_len_sub t i (v : label) len =
    check t i;
    let off = t.offsets.(i) in
    let d = decode t.buf off in
    let n = if d < len then d else len in
    let rec go k off =
      if k = n then k
      else if decode t.buf off = Array.unsafe_get v k then go (k + 1) (skip t.buf off)
      else k
    in
    go 0 (skip t.buf off)

  let common_prefix_len_label t i v = common_prefix_len_sub t i v (Array.length v)

  let first_component t i =
    check t i;
    let off = t.offsets.(i) in
    if decode t.buf off = 0 then -1 else decode t.buf (skip t.buf off)

  (* Combined {!compare_sub} + {!common_prefix_len_sub} in one walk:
     [(plen lsl 2) lor (cmp + 1)] with [cmp] in [{-1, 0, 1}]. The walk
     reads each byte once (single-byte components, the overwhelmingly
     common case, take the branch that never re-reads for a skip). This
     is the probe primitive of the scan kernels, where it halves the
     number of entry walks per cursor step. *)
  let compare_prefix_sub t i (v : label) len =
    check t i;
    let buf = t.buf in
    let off = t.offsets.(i) in
    let d = decode buf off in
    let n = if d < len then d else len in
    let rec go k off =
      if k = n then (n lsl 2) lor (Int.compare d len + 1)
      else
        let b = byte buf off in
        if b < 0x80 then
          let x = Array.unsafe_get v k in
          if b <> x then (k lsl 2) lor (Int.compare b x + 1) else go (k + 1) (off + 1)
        else
          let c = decode_from buf (off + 1) 7 (b land 0x7f) in
          let x = Array.unsafe_get v k in
          if c <> x then (k lsl 2) lor (Int.compare c x + 1)
          else go (k + 1) (skip buf (off + 1))
    in
    go 0 (skip buf off)

  let compare_entries a i b j =
    check a i;
    check b j;
    let offa = a.offsets.(i) and offb = b.offsets.(j) in
    let da = decode a.buf offa and db = decode b.buf offb in
    let n = if da < db then da else db in
    let rec go k offa offb =
      if k = n then Int.compare da db
      else
        let x = decode a.buf offa and y = decode b.buf offb in
        if x <> y then Int.compare x y else go (k + 1) (skip a.buf offa) (skip b.buf offb)
    in
    go 0 (skip a.buf offa) (skip b.buf offb)

  let lower_bound_sub t ~lo (v : label) len =
    let l = ref (if lo < 0 then 0 else lo) and h = ref (length t) in
    while !l < !h do
      let mid = (!l + !h) lsr 1 in
      if compare_sub t mid v len < 0 then l := mid + 1 else h := mid
    done;
    !l

  let lower_bound t ~lo v = lower_bound_sub t ~lo v (Array.length v)

  (* Entries inside the subtree rooted at [v.(0..len-1)] form a contiguous
     run: those [>=] the root whose first [len] components equal it. Both
     boundaries are binary searches on the encoded form; the upper one
     treats every entry prefixed by the root as "still below", mirroring
     the boxed [Inverted.prefix_slice_from]. *)
  let prefix_slice_sub t ~lo v len =
    let l = lower_bound_sub t ~lo v len in
    let l2 = ref l and h = ref (length t) in
    while !l2 < !h do
      let mid = (!l2 + !h) lsr 1 in
      let r = compare_prefix_sub t mid v len in
      if (r land 3) - 1 < 0 || r lsr 2 = len then l2 := mid + 1 else h := mid
    done;
    (l, !l2)

  let prefix_slice t ~lo v = prefix_slice_sub t ~lo v (Array.length v)

  (* ---- persistence ------------------------------------------------------ *)

  let to_raw t = (t.buf, t.offsets, t.max_depth)

  let of_raw ~buf ~offsets ~max_depth =
    let n = Array.length offsets in
    if n = 0 || offsets.(0) <> 0 || offsets.(n - 1) <> String.length buf then
      invalid_arg "Dewey.Packed.of_raw: offsets table does not span the buffer";
    for i = 1 to n - 1 do
      if offsets.(i) < offsets.(i - 1) then
        invalid_arg "Dewey.Packed.of_raw: offsets table is not monotone"
    done;
    if max_depth < 0 then invalid_arg "Dewey.Packed.of_raw: negative max depth";
    { buf; offsets; max_depth }
end
