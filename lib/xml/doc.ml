type node = {
  dewey : Dewey.t;
  path : Path.id;
  tag : Interner.id;
  keywords : (Interner.id * int) list;
}

type t = {
  tree : Tree.t;
  nodes : node array;
  tags : Interner.t;
  keywords : Interner.t;
  paths : Path.table;
  root_path : Path.id;
}

(* Direct keyword occurrences of an element: tokens of its tag name plus
   tokens of its own text and attribute values, with multiplicities. *)
let direct_keywords keywords (e : Tree.t) =
  let counts = Hashtbl.create 8 in
  let add tok =
    let id = Interner.intern keywords tok in
    let c = try Hashtbl.find counts id with Not_found -> 0 in
    Hashtbl.replace counts id (c + 1)
  in
  List.iter add (Token.tokenize e.tag);
  List.iter add (Token.tokenize (Tree.text e));
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let of_tree tree =
  let tags = Interner.create () in
  let keywords = Interner.create () in
  let paths = Path.create () in
  let acc = ref [] in
  let count = ref 0 in
  let rec walk (e : Tree.t) dewey path =
    let tag = Interner.intern tags e.tag in
    let node = { dewey; path; tag; keywords = direct_keywords keywords e } in
    acc := node :: !acc;
    incr count;
    List.iteri
      (fun i child ->
        let ctag = Interner.intern tags child.Tree.tag in
        let cpath = Path.child paths ~parent:path ~tag:ctag in
        walk child (Dewey.child dewey i) cpath)
      (Tree.element_children e)
  in
  let root_tag = Interner.intern tags tree.Tree.tag in
  let root_path = Path.root paths ~tag:root_tag in
  walk tree Dewey.root root_path;
  let nodes = Array.make !count (List.hd !acc) in
  List.iteri (fun i n -> nodes.(!count - 1 - i) <- n) !acc;
  { tree; nodes; tags; keywords; paths; root_path }

let append_child d (subtree : Tree.t) =
  let child_index = List.length (Tree.element_children d.tree) in
  let acc = ref [] in
  let count = ref 0 in
  let rec walk (e : Tree.t) dewey path =
    let tag = Interner.intern d.tags e.Tree.tag in
    let node = { dewey; path; tag; keywords = direct_keywords d.keywords e } in
    acc := node :: !acc;
    incr count;
    List.iteri
      (fun i child ->
        let ctag = Interner.intern d.tags child.Tree.tag in
        let cpath = Path.child d.paths ~parent:path ~tag:ctag in
        walk child (Dewey.child dewey i) cpath)
      (Tree.element_children e)
  in
  let tag = Interner.intern d.tags subtree.Tree.tag in
  let path = Path.child d.paths ~parent:d.root_path ~tag in
  walk subtree [| child_index |] path;
  let added = Array.make !count (List.hd !acc) in
  List.iteri (fun i n -> added.(!count - 1 - i) <- n) !acc;
  let tree =
    { d.tree with Tree.children = d.tree.Tree.children @ [ Tree.Elem subtree ] }
  in
  ( { d with tree; nodes = Array.append d.nodes added }, added )

let fork d =
  {
    d with
    tags = Interner.copy d.tags;
    keywords = Interner.copy d.keywords;
    paths = Path.copy d.paths;
  }

let of_string s = of_tree (Parser.parse_string s)

let of_file path = of_tree (Parser.parse_file path)

let node_count d = Array.length d.nodes

let find d dewey =
  let lo = ref 0 and hi = ref (Array.length d.nodes - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Dewey.compare d.nodes.(mid).dewey dewey in
    if c = 0 then begin
      found := Some d.nodes.(mid);
      lo := !hi + 1
    end
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let path_of_dewey d dewey = Option.map (fun n -> n.path) (find d dewey)

let subtree d dewey =
  let rec go (e : Tree.t) i =
    if i = Array.length dewey then Some e
    else
      match List.nth_opt (Tree.element_children e) dewey.(i) with
      | None -> None
      | Some c -> go c (i + 1)
  in
  go d.tree 0

let subtree_node_range d dewey =
  let n = Array.length d.nodes in
  let lower cmp =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cmp d.nodes.(mid) < 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let lo = lower (fun node -> Dewey.compare node.dewey dewey) in
  let hi =
    lower (fun node ->
        if Dewey.is_prefix dewey node.dewey then -1 else Dewey.compare node.dewey dewey)
  in
  (lo, hi)

let keyword_id d k = Interner.find d.keywords (Token.normalize k)

let keyword_name d id = Interner.name d.keywords id

let tag_name d node = Interner.name d.tags node.tag

let path_string d p = Path.to_string d.paths d.tags p

let label d dewey =
  match find d dewey with
  | Some n -> Printf.sprintf "%s:%s" (Interner.name d.tags n.tag) (Dewey.to_string dewey)
  | None -> Printf.sprintf "?:%s" (Dewey.to_string dewey)

let vocabulary d =
  let acc = ref [] in
  Interner.iter (fun _ name -> acc := name :: !acc) d.keywords;
  List.rev !acc
