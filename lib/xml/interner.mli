(** String interning: a bidirectional map between strings and dense
    integer ids, used for tag names, keywords and prefix paths. *)

type t

type id = int

val create : ?capacity:int -> unit -> t

(** [intern t s] returns the id of [s], allocating a fresh one on first
    sight. Ids are dense, starting at 0, in order of first interning. *)
val intern : t -> string -> id

(** [copy t] is an independent interner with the same contents: interning
    into the copy never mutates [t], so readers of [t] in other domains
    are undisturbed. *)
val copy : t -> t

(** [find t s] is the id of [s] if it has been interned. *)
val find : t -> string -> id option

(** [name t id] is the string with id [id].
    @raise Invalid_argument if [id] was never allocated. *)
val name : t -> id -> string

(** [size t] is the number of distinct interned strings. *)
val size : t -> int

(** [iter f t] applies [f id name] to every interned string in id order. *)
val iter : (id -> string -> unit) -> t -> unit
