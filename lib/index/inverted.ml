open Xr_xml

type posting = { dewey : Dewey.t; path : Path.id }

(* Struct-of-arrays posting list: all labels in one packed buffer, node
   types alongside. This is the resident representation — boxed posting
   records exist only as a lazily materialized compatibility view. *)
type packed = { labels : Dewey.Packed.t; paths : int array }

(* Two resident backings behind one accessor surface:

   - [Flat]: one packed list per keyword, the uncompressed form.
   - [Dag]: the DAG-compressed expansion ({!Xr_dag}), with per-keyword
     flat views merged out of it on first access and memoized. A merged
     view is byte-identical to what the flat build would have packed, so
     every downstream consumer — kernels, refinement, persistence, the
     batch planner — sees exactly the flat index through [packed_list],
     paying the merge once per touched keyword instead of keeping every
     list resident.

   The memo cells use the same atomic release/acquire publication as the
   legacy boxed views below; a racing domain at worst merges twice. *)
type backing =
  | Flat of packed array (* indexed by keyword id *)
  | Dag of dag_backing

and dag_backing = {
  dag : Xr_dag.t;
  merged : packed option Atomic.t array;
  merges : int Atomic.t; (* merges performed (memo hits excluded) *)
}

type t = {
  backing : backing;
  legacy : posting array option Atomic.t array;
      (* Per-keyword memo of the boxed view, for the refinement engine's
         slice-based access paths. Atomic release/acquire publication
         makes materialization safe when the index is shared across query
         domains; a racing domain at worst materializes twice. *)
  materializations : int Atomic.t;
      (* Count of legacy-view materializations performed (not memo hits).
         The packed refinement pipeline keeps this at zero; /stats
         surfaces it so regressions to the boxed path are observable. *)
}

let empty_packed = { labels = Dewey.Packed.empty; paths = [||] }

let pack_postings (postings : posting array) =
  {
    labels = Dewey.Packed.of_array (Array.map (fun p -> p.dewey) postings);
    paths = Array.map (fun p -> p.path) postings;
  }

let make backing ~vocab =
  {
    backing;
    legacy = Array.init vocab (fun _ -> Atomic.make None);
    materializations = Atomic.make 0;
  }

let of_packed packed = make (Flat packed) ~vocab:(Array.length packed)

let of_lists lists = of_packed (Array.map pack_postings lists)

let of_dag dag =
  let vocab = Xr_dag.vocab dag in
  make
    (Dag { dag; merged = Array.init vocab (fun _ -> Atomic.make None); merges = Atomic.make 0 })
    ~vocab

let dag t = match t.backing with Flat _ -> None | Dag d -> Some d.dag

let vocab t =
  match t.backing with Flat packed -> Array.length packed | Dag d -> Array.length d.merged

let build (doc : Doc.t) =
  let n = Interner.size doc.keywords in
  let acc = Array.make n [] in
  (* Nodes are in document order; build lists in reverse then flip. *)
  Array.iter
    (fun (node : Doc.node) ->
      List.iter
        (fun (kw, _count) ->
          acc.(kw) <- { dewey = node.dewey; path = node.path } :: acc.(kw))
        node.keywords)
    doc.nodes;
  of_lists (Array.map (fun l -> Array.of_list (List.rev l)) acc)

let packed_list t kw =
  match t.backing with
  | Flat packed -> if kw >= 0 && kw < Array.length packed then packed.(kw) else empty_packed
  | Dag d ->
    if kw < 0 || kw >= Array.length d.merged then empty_packed
    else begin
      let cell = d.merged.(kw) in
      match Atomic.get cell with
      | Some pk -> pk
      | None ->
        let labels, paths = Xr_dag.merge d.dag kw in
        let pk = { labels; paths } in
        Atomic.incr d.merges;
        Atomic.set cell (Some pk);
        pk
    end

(* Force the flat views of [kws] before the scan needs them. Flat
   backing: free. DAG backing: merge every not-yet-resident view —
   concurrently, one pool task per keyword, when a multi-domain pool
   is available (default: the global pool only if it already exists,
   so CLI one-shots never spawn domains to warm a cache). Merges are
   independent per keyword and the memo cells tolerate racing writers,
   so this is purely a scheduling change. *)
let prefetch ?pool t kws =
  match t.backing with
  | Flat _ -> ()
  | Dag d -> (
    let todo =
      List.filter
        (fun kw -> kw >= 0 && kw < Array.length d.merged && Atomic.get d.merged.(kw) = None)
        (List.sort_uniq compare kws)
    in
    match todo with
    | [] -> ()
    | [ kw ] -> ignore (packed_list t kw)
    | kws -> (
      let pool = match pool with Some _ as p -> p | None -> Xr_pool.peek_global () in
      match pool with
      | Some pool when Xr_pool.size pool > 1 ->
        let arr = Array.of_list kws in
        Xr_pool.run pool (Array.map (fun kw () -> ignore (packed_list t kw)) arr)
      | _ -> List.iter (fun kw -> ignore (packed_list t kw)) kws))

let peek_merged t kw =
  match t.backing with
  | Flat packed -> if kw >= 0 && kw < Array.length packed then Some packed.(kw) else None
  | Dag d ->
    if kw < 0 || kw >= Array.length d.merged then None else Atomic.get d.merged.(kw)

let materialize pk =
  Array.init (Dewey.Packed.length pk.labels) (fun i ->
      { dewey = Dewey.Packed.get pk.labels i; path = pk.paths.(i) })

let list t kw =
  if kw < 0 || kw >= Array.length t.legacy then [||]
  else begin
    let cell = t.legacy.(kw) in
    match Atomic.get cell with
    | Some postings -> postings
    | None ->
      let postings = materialize (packed_list t kw) in
      Atomic.incr t.materializations;
      Atomic.set cell (Some postings);
      postings
  end

let materialization_count t = Atomic.get t.materializations

let materialized_keywords t =
  Array.fold_left
    (fun a cell -> match Atomic.get cell with Some _ -> a + 1 | None -> a)
    0 t.legacy

let merge_count t = match t.backing with Flat _ -> 0 | Dag d -> Atomic.get d.merges

let merged_keywords t =
  match t.backing with
  | Flat _ -> 0
  | Dag d ->
    Array.fold_left
      (fun a cell -> match Atomic.get cell with Some _ -> a + 1 | None -> a)
      0 d.merged

let list_by_name t doc k =
  match Doc.keyword_id doc k with Some kw -> list t kw | None -> [||]

let length t kw =
  match t.backing with
  | Flat packed ->
    if kw >= 0 && kw < Array.length packed then Dewey.Packed.length packed.(kw).labels
    else 0
  | Dag d -> Xr_dag.posting_count d.dag kw

let keyword_count t =
  match t.backing with
  | Flat packed ->
    Array.fold_left
      (fun a pk -> if Dewey.Packed.length pk.labels > 0 then a + 1 else a)
      0 packed
  | Dag d ->
    let n = ref 0 in
    for kw = 0 to Array.length d.merged - 1 do
      if Xr_dag.posting_count d.dag kw > 0 then incr n
    done;
    !n

let iter f t =
  for kw = 0 to vocab t - 1 do
    f kw (list t kw)
  done

let iter_packed f t =
  for kw = 0 to vocab t - 1 do
    f kw (packed_list t kw)
  done

let iter_lengths f t =
  match t.backing with
  | Flat packed -> Array.iteri (fun kw pk -> f kw (Dewey.Packed.length pk.labels)) packed
  | Dag d ->
    for kw = 0 to Array.length d.merged - 1 do
      f kw (Xr_dag.posting_count d.dag kw)
    done

let packed_array t =
  match t.backing with
  | Flat packed -> packed
  | Dag d -> Array.init (Array.length d.merged) (fun kw -> packed_list t kw)

let to_flat t = match t.backing with Flat _ -> t | Dag _ -> of_packed (packed_array t)

let extend t ~vocab_size additions =
  let old_packed = packed_array t in
  let n = max vocab_size (Array.length old_packed) in
  let packed = Array.make n empty_packed in
  Array.blit old_packed 0 packed 0 (Array.length old_packed);
  List.iter
    (fun (kw, postings) ->
      let old = if kw < Array.length old_packed then list t kw else [||] in
      (match (postings, Array.length old) with
      | p :: _, n0 when n0 > 0 && Dewey.compare old.(n0 - 1).dewey p.dewey >= 0 ->
        invalid_arg "Inverted.extend: appended postings must extend document order"
      | _ -> ());
      packed.(kw) <- pack_postings (Array.append old (Array.of_list postings)))
    additions;
  of_packed packed

(* ---- footprint accounting (surfaced by the server's /stats) ------------- *)

let packed_postings pk = Dewey.Packed.length pk.labels

let packed_label_bytes pk = Dewey.Packed.byte_size pk.labels

let packed_bytes pk =
  (* label buffer + one word per offsets-table slot + one word per node
     type id; the words dominate, which is why the offsets table stays
     the cost to beat for further compression. *)
  Dewey.Packed.byte_size pk.labels
  + (8 * (Dewey.Packed.length pk.labels + 1))
  + (8 * Array.length pk.paths)

let postings_total t =
  match t.backing with
  | Flat packed -> Array.fold_left (fun a pk -> a + packed_postings pk) 0 packed
  | Dag d -> Xr_dag.postings_total d.dag

let sum_merged f d =
  Array.fold_left
    (fun a cell -> match Atomic.get cell with Some pk -> a + f pk | None -> a)
    0 d.merged

let label_bytes_total t =
  match t.backing with
  | Flat packed -> Array.fold_left (fun a pk -> a + packed_label_bytes pk) 0 packed
  | Dag d -> Xr_dag.label_bytes d.dag + sum_merged packed_label_bytes d

let resident_bytes t =
  match t.backing with
  | Flat packed -> Array.fold_left (fun a pk -> a + packed_bytes pk) 0 packed
  | Dag d ->
    (* honest accounting: the compressed structure plus whatever flat
       views queries have already merged out of it — the worst case
       (every keyword touched) is the flat index plus the DAG *)
    Xr_dag.bytes d.dag + sum_merged packed_bytes d

(* ---- binary probes over the legacy boxed view --------------------------- *)

(* First index in [start, |l|) whose posting satisfies [cmp >= 0]. *)
let lower_bound l start cmp =
  let lo = ref start and hi = ref (Array.length l) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp l.(mid) < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let prefix_slice_from l start dewey =
  (* Postings inside the subtree rooted at [dewey] form a contiguous run:
     those whose label has [dewey] as prefix. The run starts at the first
     posting >= dewey and ends before the first posting that is >= dewey
     but not prefixed by it. *)
  let lo = lower_bound l start (fun p -> Dewey.compare p.dewey dewey) in
  let hi =
    lower_bound l start (fun p ->
        if Dewey.is_prefix dewey p.dewey then -1 else Dewey.compare p.dewey dewey)
  in
  (lo, hi)

let prefix_slice l dewey = prefix_slice_from l 0 dewey
