open Xr_xml

type posting = { dewey : Dewey.t; path : Path.id }

(* Struct-of-arrays posting list: all labels in one packed buffer, node
   types alongside. This is the resident representation — boxed posting
   records exist only as a lazily materialized compatibility view. *)
type packed = { labels : Dewey.Packed.t; paths : int array }

type t = {
  packed : packed array; (* indexed by keyword id *)
  legacy : posting array option Atomic.t array;
      (* Per-keyword memo of the boxed view, for the refinement engine's
         slice-based access paths. Atomic release/acquire publication
         makes materialization safe when the index is shared across query
         domains; a racing domain at worst materializes twice. *)
  materializations : int Atomic.t;
      (* Count of legacy-view materializations performed (not memo hits).
         The packed refinement pipeline keeps this at zero; /stats
         surfaces it so regressions to the boxed path are observable. *)
}

let empty_packed = { labels = Dewey.Packed.empty; paths = [||] }

let pack_postings (postings : posting array) =
  {
    labels = Dewey.Packed.of_array (Array.map (fun p -> p.dewey) postings);
    paths = Array.map (fun p -> p.path) postings;
  }

let of_packed packed =
  {
    packed;
    legacy = Array.init (Array.length packed) (fun _ -> Atomic.make None);
    materializations = Atomic.make 0;
  }

let of_lists lists = of_packed (Array.map pack_postings lists)

let build (doc : Doc.t) =
  let n = Interner.size doc.keywords in
  let acc = Array.make n [] in
  (* Nodes are in document order; build lists in reverse then flip. *)
  Array.iter
    (fun (node : Doc.node) ->
      List.iter
        (fun (kw, _count) ->
          acc.(kw) <- { dewey = node.dewey; path = node.path } :: acc.(kw))
        node.keywords)
    doc.nodes;
  of_lists (Array.map (fun l -> Array.of_list (List.rev l)) acc)

let packed_list t kw =
  if kw >= 0 && kw < Array.length t.packed then t.packed.(kw) else empty_packed

let materialize pk =
  Array.init (Dewey.Packed.length pk.labels) (fun i ->
      { dewey = Dewey.Packed.get pk.labels i; path = pk.paths.(i) })

let list t kw =
  if kw < 0 || kw >= Array.length t.packed then [||]
  else begin
    let cell = t.legacy.(kw) in
    match Atomic.get cell with
    | Some postings -> postings
    | None ->
      let postings = materialize t.packed.(kw) in
      Atomic.incr t.materializations;
      Atomic.set cell (Some postings);
      postings
  end

let materialization_count t = Atomic.get t.materializations

let materialized_keywords t =
  Array.fold_left
    (fun a cell -> match Atomic.get cell with Some _ -> a + 1 | None -> a)
    0 t.legacy

let list_by_name t doc k =
  match Doc.keyword_id doc k with Some kw -> list t kw | None -> [||]

let length t kw = Dewey.Packed.length (packed_list t kw).labels

let keyword_count t =
  Array.fold_left
    (fun a pk -> if Dewey.Packed.length pk.labels > 0 then a + 1 else a)
    0 t.packed

let iter f t = Array.iteri (fun kw _ -> f kw (list t kw)) t.packed

let iter_packed f t = Array.iteri f t.packed

let extend t ~vocab_size additions =
  let n = max vocab_size (Array.length t.packed) in
  let packed = Array.make n empty_packed in
  Array.blit t.packed 0 packed 0 (Array.length t.packed);
  List.iter
    (fun (kw, postings) ->
      let old = if kw < Array.length t.packed then list t kw else [||] in
      (match (postings, Array.length old) with
      | p :: _, n0 when n0 > 0 && Dewey.compare old.(n0 - 1).dewey p.dewey >= 0 ->
        invalid_arg "Inverted.extend: appended postings must extend document order"
      | _ -> ());
      packed.(kw) <- pack_postings (Array.append old (Array.of_list postings)))
    additions;
  of_packed packed

(* ---- footprint accounting (surfaced by the server's /stats) ------------- *)

let packed_postings pk = Dewey.Packed.length pk.labels

let packed_label_bytes pk = Dewey.Packed.byte_size pk.labels

let packed_bytes pk =
  (* label buffer + one word per offsets-table slot + one word per node
     type id; the words dominate, which is why the offsets table stays
     the cost to beat for further compression. *)
  Dewey.Packed.byte_size pk.labels
  + (8 * (Dewey.Packed.length pk.labels + 1))
  + (8 * Array.length pk.paths)

(* ---- binary probes over the legacy boxed view --------------------------- *)

(* First index in [start, |l|) whose posting satisfies [cmp >= 0]. *)
let lower_bound l start cmp =
  let lo = ref start and hi = ref (Array.length l) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp l.(mid) < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let prefix_slice_from l start dewey =
  (* Postings inside the subtree rooted at [dewey] form a contiguous run:
     those whose label has [dewey] as prefix. The run starts at the first
     posting >= dewey and ends before the first posting that is >= dewey
     but not prefixed by it. *)
  let lo = lower_bound l start (fun p -> Dewey.compare p.dewey dewey) in
  let hi =
    lower_bound l start (fun p ->
        if Dewey.is_prefix dewey p.dewey then -1 else Dewey.compare p.dewey dewey)
  in
  (lo, hi)

let prefix_slice l dewey = prefix_slice_from l 0 dewey
