open Xr_xml

type t = {
  data : Inverted.posting array;
  mutable pos : int;
  mutable seq : int;
  mutable rand : int;
}

let make data = { data; pos = 0; seq = 0; rand = 0 }

let at_end c = c.pos >= Array.length c.data

let peek c = if at_end c then None else Some c.data.(c.pos)

let advance c =
  if not (at_end c) then begin
    c.pos <- c.pos + 1;
    c.seq <- c.seq + 1
  end

let seek_geq c dewey =
  if not (at_end c) then begin
    let lo = ref c.pos and hi = ref (Array.length c.data) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Dewey.compare c.data.(mid).Inverted.dewey dewey < 0 then lo := mid + 1 else hi := mid
    done;
    if !lo > c.pos then begin
      c.pos <- !lo;
      c.rand <- c.rand + 1
    end
  end

let skip_to c idx =
  if idx > c.pos then begin
    c.pos <- min idx (Array.length c.data);
    c.rand <- c.rand + 1
  end

let position c = c.pos

let list_length c = Array.length c.data

let sequential_accesses c = c.seq

let random_accesses c = c.rand

(* Monotone cursor over a packed label buffer. Same accounting contract
   as the boxed cursor above, but peeking is positional (no option
   allocation) and seeks gallop from the current position, so a multiway
   scan that advances in small correlated steps pays O(log step) probes
   instead of O(log n). *)
module Packed = struct
  type t = {
    labels : Dewey.Packed.t;
    base : int; (* first entry visible to this cursor *)
    limit : int; (* one past the last visible entry *)
    mutable pos : int;
    mutable seq : int;
    mutable rand : int;
  }

  let make_sub labels ~lo ~hi =
    let n = Dewey.Packed.length labels in
    if lo < 0 || hi < lo || hi > n then invalid_arg "Cursor.Packed.make_sub: bad range";
    { labels; base = lo; limit = hi; pos = lo; seq = 0; rand = 0 }

  let make labels = make_sub labels ~lo:0 ~hi:(Dewey.Packed.length labels)

  let labels c = c.labels

  let length c = c.limit - c.base

  let at_end c = c.pos >= c.limit

  let position c = c.pos

  let advance c =
    if not (at_end c) then begin
      c.pos <- c.pos + 1;
      c.seq <- c.seq + 1
    end

  let seek_geq_sub c v len =
    let n = c.limit in
    if c.pos < n && Dewey.Packed.compare_sub c.labels c.pos v len < 0 then begin
      (* gallop: probe pos+1, pos+3, pos+7, ... to bracket the target,
         then binary search inside the bracket *)
      let lo = ref c.pos and step = ref 1 in
      let hi = ref (c.pos + 1) in
      while !hi < n && Dewey.Packed.compare_sub c.labels !hi v len < 0 do
        lo := !hi;
        step := !step * 2;
        hi := !hi + !step
      done;
      let h = ref (if !hi < n then !hi else n) in
      let l = ref (!lo + 1) in
      while !l < !h do
        let mid = (!l + !h) lsr 1 in
        if Dewey.Packed.compare_sub c.labels mid v len < 0 then l := mid + 1 else h := mid
      done;
      c.pos <- !l;
      c.rand <- c.rand + 1
    end

  let seek_geq c v = seek_geq_sub c v (Array.length v)

  (* Gallop to the first entry >= entry [i] of [src], comparing in
     encoded form ({!Dewey.Packed.compare_entries}) — chunk cursors of
     the parallel scan kernel pre-position on split points without
     decoding anything. *)
  let seek_geq_entry c src i =
    let n = c.limit in
    if c.pos < n && Dewey.Packed.compare_entries c.labels c.pos src i < 0 then begin
      let lo = ref c.pos and step = ref 1 in
      let hi = ref (c.pos + 1) in
      while !hi < n && Dewey.Packed.compare_entries c.labels !hi src i < 0 do
        lo := !hi;
        step := !step * 2;
        hi := !hi + !step
      done;
      let h = ref (if !hi < n then !hi else n) in
      let l = ref (!lo + 1) in
      while !l < !h do
        let mid = (!l + !h) lsr 1 in
        if Dewey.Packed.compare_entries c.labels mid src i < 0 then l := mid + 1 else h := mid
      done;
      c.pos <- !l;
      c.rand <- c.rand + 1
    end

  (* Fused seek-and-probe, the scan kernels' inner step: advance to the
     lower bound of [v.(0..len-1)] and return the deepest common prefix
     of [v] with the two entries bracketing it (-1 when neither side
     exists) — [Slca_common.deepest_prefix_depth] without materializing
     either neighbour. The prefix depths fall out of the search itself:
     compares below the target happen at strictly increasing indices, so
     the last one is the left bracket [p - 1]; compares at-or-above at
     strictly decreasing indices, so the last one is [p]. Each compared
     entry is walked exactly once ({!Dewey.Packed.compare_prefix_sub}). *)
  let match_probe c v len =
    let t = c.labels in
    let n = c.limit in
    if c.pos >= n then
      if n = c.base then -1 else Dewey.Packed.common_prefix_len_sub t (n - 1) v len
    else begin
      let r0 = Dewey.Packed.compare_prefix_sub t c.pos v len in
      if r0 land 3 >= 1 then begin
        (* entry under the cursor is already >= v: no movement *)
        let dr = r0 lsr 2 in
        let dl =
          if c.pos > c.base then Dewey.Packed.common_prefix_len_sub t (c.pos - 1) v len
          else -1
        in
        if dl > dr then dl else dr
      end
      else begin
        let dl = ref (r0 lsr 2) and dr = ref (-1) in
        let prev = ref c.pos and step = ref 1 in
        let hi = ref (-1) in
        while !hi < 0 do
          let cand = !prev + !step in
          if cand >= n then hi := n
          else begin
            let r = Dewey.Packed.compare_prefix_sub t cand v len in
            if r land 3 >= 1 then begin
              dr := r lsr 2;
              hi := cand
            end
            else begin
              dl := r lsr 2;
              prev := cand;
              step := !step * 2
            end
          end
        done;
        let l = ref (!prev + 1) and h = ref !hi in
        while !l < !h do
          let mid = (!l + !h) lsr 1 in
          let r = Dewey.Packed.compare_prefix_sub t mid v len in
          if r land 3 >= 1 then begin
            dr := r lsr 2;
            h := mid
          end
          else begin
            dl := r lsr 2;
            l := mid + 1
          end
        done;
        c.pos <- !l;
        c.rand <- c.rand + 1;
        if !dl > !dr then !dl else !dr
      end
    end

  let sequential_accesses c = c.seq

  let random_accesses c = c.rand
end
