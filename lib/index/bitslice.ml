open Xr_xml
module P = Dewey.Packed

(* 63 verdicts per word: the full width of OCaml's native int. Bit 62
   (the sign bit) is an ordinary mask bit here — all-ones is [-1]. *)
let word_bits = 63

let all_ones = -1

(* [ones k] is a word with bits [0..k-1] set, for [0 <= k <= 63]. *)
let ones k = if k >= word_bits then all_ones else (1 lsl k) - 1

type t = {
  base : int;
  count : int;
  words : int array;
  cardinal : int;
}

let entries_fam =
  Xr_obs.Registry.Counter.family ~name:"xr_bitslice_entries_total"
    ~help:"Posting entries masked by the bitsliced prefix filter" ~label_names:[ "verdict" ]
    ()

let examined_h = Xr_obs.Registry.Counter.handle entries_fam [ "examined" ]

let selected_h = Xr_obs.Registry.Counter.handle entries_fam [ "selected" ]

let entries_examined () = Xr_obs.Registry.Counter.value examined_h

let entries_selected () = Xr_obs.Registry.Counter.value selected_h

let base t = t.base

let count t = t.count

let cardinal t = t.cardinal

let selectivity t =
  if t.count = 0 then 1.0 else float_of_int t.cardinal /. float_of_int t.count

(* Set bits [s, e) of [words] (relative to the mask base). Interior
   words take one all-ones store each — that is the bitsliced payoff:
   sortedness turns 63 per-label prefix compares into one word write. *)
let fill_range words s e =
  if e > s then begin
    let w0 = s / word_bits and w1 = (e - 1) / word_bits in
    if w0 = w1 then
      words.(w0) <- words.(w0) lor (ones (e - (w1 * word_bits)) land lnot (ones (s - (w0 * word_bits))))
    else begin
      words.(w0) <- words.(w0) lor lnot (ones (s - (w0 * word_bits)));
      for w = w0 + 1 to w1 - 1 do
        words.(w) <- all_ones
      done;
      words.(w1) <- words.(w1) lor ones (e - (w1 * word_bits))
    end
  end

let finish ~lo ~hi words cardinal =
  Xr_obs.Registry.Counter.add examined_h (hi - lo);
  Xr_obs.Registry.Counter.add selected_h cardinal;
  { base = lo; count = hi - lo; words; cardinal }

let make_words count = Array.make ((count + word_bits - 1) / word_bits) 0

let under pk ~lo ~hi ~prefix ~plen =
  let count = max 0 (hi - lo) in
  let words = make_words count in
  let a, b =
    if plen = 0 then (lo, hi)
    else
      let a, b = P.prefix_slice_sub pk ~lo prefix plen in
      (max a lo, min b hi)
  in
  if b > a then fill_range words (a - lo) (b - lo);
  finish ~lo ~hi words (max 0 (b - a))

let under_probed pk ~lo ~hi ~prefix ~plen =
  let count = max 0 (hi - lo) in
  let words = make_words count in
  let cardinal = ref 0 in
  for i = lo to hi - 1 do
    if P.common_prefix_len_sub pk i prefix plen = plen then begin
      let r = i - lo in
      words.(r / word_bits) <- words.(r / word_bits) lor (1 lsl (r mod word_bits));
      incr cardinal
    end
  done;
  finish ~lo ~hi words !cardinal

let mem t i =
  let r = i - t.base in
  r >= 0 && r < t.count
  && t.words.(r / word_bits) land (1 lsl (r mod word_bits)) <> 0

let iter t f =
  let nw = Array.length t.words in
  for w = 0 to nw - 1 do
    let word = Array.unsafe_get t.words w in
    if word <> 0 then begin
      let first = t.base + (w * word_bits) in
      if word = all_ones then
        (* full word: 63 hits, no per-bit tests (construction never
           sets bits past [count], so a full word is fully in range) *)
        for j = 0 to word_bits - 1 do
          f (first + j)
        done
      else
        for j = 0 to word_bits - 1 do
          if word land (1 lsl j) <> 0 then f (first + j)
        done
    end
  done
