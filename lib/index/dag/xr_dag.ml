open Xr_xml
module P = Dewey.Packed

type stats = {
  nodes : int;
  classes : int;
  occurrence_classes : int;
  instances : int;
  tree_edges : int;
  dag_edges : int;
  postings : int;
}

(* The resident encoding. Everything a query touches is either O(1)
   (per-keyword counts, class bounds) or a byte buffer decoded lazily:

   - [exp_labels]/[exp_paths]: the expansion table — every instance of
     every occurrence class exactly once, grouped class by class,
     document order within a class. One entry per *node*, shared by all
     of the node's keywords; the flat index stores it once per
     (node, keyword) pair instead.
   - [class_bounds]/[class_path_off]: occurrence class -> its entry
     range / path-varint range in the expansion.
   - [kw_off]/[kw_blob]: per keyword, [varint total-postings]
     [varint class-count] [delta-varint ascending class ids]. The two
     leading varints make {!posting_count}/{!class_count} effectively
     O(1) without a word-sized table per keyword — at small corpus
     sizes three int arrays over the vocabulary would eat most of the
     compression win. *)
type t = {
  vocab : int;
  stats : stats;
  exp_labels : P.t;
  exp_paths : string;
  class_bounds : int array;
  class_path_off : int array;
  kw_off : int array;
  kw_blob : string;
}

(* ---- varints (unsigned LEB128, same wire form as Dewey.Packed) ------- *)

let add_varint b n =
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.unsafe_chr n)
    else begin
      Buffer.add_char b (Char.unsafe_chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let rec read_from s off shift acc =
  let b = Char.code (String.unsafe_get s off) in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b < 0x80 then (acc, off + 1) else read_from s (off + 1) (shift + 7) acc

let read s off = read_from s off 0 0

(* ---- build ------------------------------------------------------------ *)

(* Bottom-up hash-consing over a canonical key string per node: tag,
   attributes, and the children in order — text children verbatim,
   element children by their (already assigned) class id. Every piece is
   length-prefixed, so distinct subtrees can never collide; the total
   key volume is O(document). Two nodes of one class therefore have
   identical tag/text/attributes, hence identical [Doc.direct_keywords]
   — the invariant the occurrence-class grouping rests on (and checked
   below, so a future change to tokenization cannot silently corrupt
   the compressed index). *)
let build (doc : Doc.t) =
  let nodes = doc.Doc.nodes in
  let nnodes = Array.length nodes in
  let vocab = Interner.size doc.Doc.keywords in
  let class_of_key : (string, int) Hashtbl.t = Hashtbl.create (max 64 nnodes) in
  let nclasses = ref 0 in
  let tree_edges = ref 0 and dag_edges = ref 0 in
  let occ_of_class : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let occ_kws_rev = ref [] in
  let nocc = ref 0 in
  let pairs_rev = ref [] in
  (* (occurrence class, node index), document order *)
  let ninst = ref 0 and postings = ref 0 in
  let idx = ref 0 in
  let buf = Buffer.create 128 in
  (* shared: used strictly between a node's children returning and its
     own key being interned, never across the recursion *)
  let rec walk (e : Tree.t) =
    let my = !idx in
    incr idx;
    let kids =
      List.rev (List.fold_left (fun acc c -> walk c :: acc) [] (Tree.element_children e))
    in
    tree_edges := !tree_edges + List.length kids;
    Buffer.clear buf;
    let adds s =
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s
    in
    adds e.Tree.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf 'a';
        adds k;
        adds v)
      e.Tree.attrs;
    let kid = ref kids in
    List.iter
      (function
        | Tree.Text s ->
          Buffer.add_char buf 't';
          adds s
        | Tree.Elem _ -> (
          match !kid with
          | c :: rest ->
            Buffer.add_char buf 'e';
            Buffer.add_string buf (string_of_int c);
            Buffer.add_char buf ';';
            kid := rest
          | [] -> assert false))
      e.Tree.children;
    let key = Buffer.contents buf in
    let c =
      match Hashtbl.find_opt class_of_key key with
      | Some c -> c
      | None ->
        let c = !nclasses in
        incr nclasses;
        Hashtbl.add class_of_key key c;
        dag_edges := !dag_edges + List.length kids;
        c
    in
    let node = nodes.(my) in
    if node.Doc.keywords <> [] then begin
      let occ =
        match Hashtbl.find_opt occ_of_class c with
        | Some o -> o
        | None ->
          let o = !nocc in
          incr nocc;
          Hashtbl.add occ_of_class c o;
          occ_kws_rev := node.Doc.keywords :: !occ_kws_rev;
          o
      in
      pairs_rev := (occ, my) :: !pairs_rev;
      incr ninst;
      postings := !postings + List.length node.Doc.keywords
    end;
    c
  in
  ignore (walk doc.Doc.tree);
  if !idx <> nnodes then
    failwith "Xr_dag.build: tree walk out of step with the compiled node array";
  let nocc = !nocc and ninst = !ninst in
  let occ_kws = Array.of_list (List.rev !occ_kws_rev) in
  let pairs = List.rev !pairs_rev in
  List.iter
    (fun (o, n) ->
      if nodes.(n).Doc.keywords <> occ_kws.(o) then
        failwith "Xr_dag.build: identical subtrees with differing direct keywords")
    pairs;
  let sizes = Array.make (max 1 nocc) 0 in
  List.iter (fun (o, _) -> sizes.(o) <- sizes.(o) + 1) pairs;
  let class_bounds = Array.make (nocc + 1) 0 in
  for o = 0 to nocc - 1 do
    class_bounds.(o + 1) <- class_bounds.(o) + sizes.(o)
  done;
  let inst_nodes = Array.make (max 1 ninst) 0 in
  let cursor = Array.copy class_bounds in
  List.iter
    (fun (o, n) ->
      inst_nodes.(cursor.(o)) <- n;
      cursor.(o) <- cursor.(o) + 1)
    pairs;
  let exp_labels =
    P.of_array (Array.init ninst (fun i -> nodes.(inst_nodes.(i)).Doc.dewey))
  in
  let pbuf = Buffer.create (ninst * 2) in
  let class_path_off = Array.make (nocc + 1) 0 in
  for o = 0 to nocc - 1 do
    class_path_off.(o) <- Buffer.length pbuf;
    for i = class_bounds.(o) to class_bounds.(o + 1) - 1 do
      add_varint pbuf nodes.(inst_nodes.(i)).Doc.path
    done
  done;
  class_path_off.(nocc) <- Buffer.length pbuf;
  let exp_paths = Buffer.contents pbuf in
  let kcls : int list array = Array.make (max 1 vocab) [] in
  let kcount = Array.make (max 1 vocab) 0 in
  for o = 0 to nocc - 1 do
    List.iter
      (fun (kw, _count) ->
        kcls.(kw) <- o :: kcls.(kw);
        kcount.(kw) <- kcount.(kw) + sizes.(o))
      occ_kws.(o)
  done;
  let kbuf = Buffer.create (vocab * 4) in
  let kw_off = Array.make (vocab + 1) 0 in
  for kw = 0 to vocab - 1 do
    kw_off.(kw) <- Buffer.length kbuf;
    match kcls.(kw) with
    | [] -> ()
    | rev ->
      let cls = List.rev rev in
      add_varint kbuf kcount.(kw);
      add_varint kbuf (List.length cls);
      let prev = ref 0 in
      List.iter
        (fun c ->
          add_varint kbuf (c - !prev);
          prev := c)
        cls
  done;
  kw_off.(vocab) <- Buffer.length kbuf;
  {
    vocab;
    stats =
      {
        nodes = nnodes;
        classes = !nclasses;
        occurrence_classes = nocc;
        instances = ninst;
        tree_edges = !tree_edges;
        dag_edges = !dag_edges;
        postings = !postings;
      };
    exp_labels;
    exp_paths;
    class_bounds;
    class_path_off;
    kw_off;
    kw_blob = Buffer.contents kbuf;
  }

(* ---- accessors -------------------------------------------------------- *)

let stats t = t.stats

let vocab t = t.vocab

let expansion t = t.exp_labels

let postings_total t = t.stats.postings

let posting_count t kw =
  if kw < 0 || kw >= t.vocab || t.kw_off.(kw) = t.kw_off.(kw + 1) then 0
  else fst (read t.kw_blob t.kw_off.(kw))

let class_count t kw =
  if kw < 0 || kw >= t.vocab || t.kw_off.(kw) = t.kw_off.(kw + 1) then 0
  else
    let _, off = read t.kw_blob t.kw_off.(kw) in
    fst (read t.kw_blob off)

let class_list t kw =
  if kw < 0 || kw >= t.vocab || t.kw_off.(kw) = t.kw_off.(kw + 1) then [||]
  else begin
    let _, off = read t.kw_blob t.kw_off.(kw) in
    let m, off = read t.kw_blob off in
    let cls = Array.make m 0 in
    let off = ref off and prev = ref 0 in
    for j = 0 to m - 1 do
      let d, o = read t.kw_blob !off in
      prev := !prev + d;
      cls.(j) <- !prev;
      off := o
    done;
    cls
  end

let ranges t kw =
  Array.to_list
    (Array.map (fun c -> (t.class_bounds.(c), t.class_bounds.(c + 1))) (class_list t kw))

let label_bytes t = P.byte_size t.exp_labels

let bytes t =
  P.byte_size t.exp_labels
  + (8 * (P.length t.exp_labels + 1))
  + String.length t.exp_paths
  + (8 * Array.length t.class_bounds)
  + (8 * Array.length t.class_path_off)
  + (8 * Array.length t.kw_off)
  + String.length t.kw_blob

let node_dedup_ratio t =
  if t.stats.nodes = 0 then 1.0
  else float_of_int t.stats.classes /. float_of_int t.stats.nodes

let edge_dedup_ratio t =
  if t.stats.tree_edges = 0 then 1.0
  else float_of_int t.stats.dag_edges /. float_of_int t.stats.tree_edges

(* ---- expansion to the flat form --------------------------------------- *)

(* K-way merge of the keyword's class ranges by document order. Entries
   within a range are already sorted and ranges never share a label, so
   a binary min-heap over the range heads yields the exact flat posting
   order; re-encoding through [P.of_array] makes the result
   byte-identical to what {!Xr_index.Inverted.build} packs — merged
   lists are indistinguishable from flat ones downstream, caches and
   persistence included. *)
let merge t kw =
  let total = posting_count t kw in
  if total = 0 then (P.empty, [||])
  else begin
    let cls = class_list t kw in
    let m = Array.length cls in
    let cur = Array.make m 0 and hi = Array.make m 0 and poff = Array.make m 0 in
    for j = 0 to m - 1 do
      cur.(j) <- t.class_bounds.(cls.(j));
      hi.(j) <- t.class_bounds.(cls.(j) + 1);
      poff.(j) <- t.class_path_off.(cls.(j))
    done;
    let labels = Array.make total [||] in
    let paths = Array.make total 0 in
    let take out j =
      labels.(out) <- P.get t.exp_labels cur.(j);
      let v, o = read t.exp_paths poff.(j) in
      paths.(out) <- v;
      poff.(j) <- o;
      cur.(j) <- cur.(j) + 1
    in
    if m = 1 then
      for out = 0 to total - 1 do
        take out 0
      done
    else begin
      let heap = Array.make m 0 in
      let hn = ref m in
      let less a b = P.compare_entries t.exp_labels cur.(a) t.exp_labels cur.(b) < 0 in
      let swap i j =
        let x = heap.(i) in
        heap.(i) <- heap.(j);
        heap.(j) <- x
      in
      let rec down i =
        let s = ref i in
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        if l < !hn && less heap.(l) heap.(!s) then s := l;
        if r < !hn && less heap.(r) heap.(!s) then s := r;
        if !s <> i then begin
          swap i !s;
          down !s
        end
      in
      for j = 0 to m - 1 do
        heap.(j) <- j
      done;
      for i = (m / 2) - 1 downto 0 do
        down i
      done;
      for out = 0 to total - 1 do
        let j = heap.(0) in
        take out j;
        if cur.(j) >= hi.(j) then begin
          decr hn;
          heap.(0) <- heap.(!hn)
        end;
        if !hn > 0 then down 0
      done
    end;
    (P.of_array labels, paths)
  end
