(** DAG-compressed keyword occurrence index.

    Real XML corpora are massively repetitive: identical subtrees (the
    same author leaf, the same year element, the same venue) recur
    thousands of times. Hash-consing the parsed tree bottom-up groups
    nodes into structural equivalence classes — two nodes share a class
    exactly when their subtrees are byte-identical (tag, attributes,
    text and element children, recursively) — turning the tree into a
    DAG of shared subtrees.

    Identical subtrees contain identical direct keywords, so the flat
    inverted index ({!Xr_index.Inverted}-style, one posting per
    (node, keyword) pair) collapses: a keyword's list becomes one entry
    per *distinct occurrence class* plus a shared expansion table mapping
    each class to its instance labels. The expansion table stores every
    instance exactly once, shared across all the keywords of its class —
    that sharing, plus dropping the per-posting offset/path words of the
    flat form, is where the compression comes from.

    The structure supports three access paths, all without decompressing
    the full tree:
    - {!merge} expands one keyword's postings to the exact flat packed
      list (document order, byte-identical to the uncompressed build) —
      the lazy per-keyword bridge to every existing kernel;
    - {!expansion}/{!ranges} expose the class-grouped instance buffer
      directly, for kernels that walk the expansion lazily
      ({!Xr_slca.Scan_dag});
    - {!stats}/{!bytes} quantify the sharing for /stats and the bench
      gate. *)

open Xr_xml

type t

type stats = {
  nodes : int;  (** element nodes in the document *)
  classes : int;  (** distinct subtree classes over all nodes *)
  occurrence_classes : int;
      (** classes whose nodes carry at least one direct keyword (every
          class in practice — tag tokens count — but kept separate so the
          encoding never relies on it) *)
  instances : int;  (** expansion entries: nodes of occurrence classes *)
  tree_edges : int;  (** parent→child element edges in the tree *)
  dag_edges : int;  (** distinct such edges after sharing *)
  postings : int;  (** flat postings the expansion represents *)
}

(** [build doc] hash-conses the document tree bottom-up and encodes the
    occurrence-class expansion. O(document) time and space; the walk
    follows the same pre-order as {!Doc.of_tree}, so instance entries
    align with [doc.nodes]. *)
val build : Doc.t -> t

val stats : t -> stats

(** [bytes t] is the resident footprint, counted like
    {!Xr_index.Inverted.packed_bytes}: byte buffers at size, one word
    per int-array slot. *)
val bytes : t -> int

(** [label_bytes t] is the size of the shared instance label buffer. *)
val label_bytes : t -> int

(** [vocab t] is the keyword-id space covered ([Interner.size] at build
    time). *)
val vocab : t -> int

(** [posting_count t kw] is the flat posting-list length of [kw] —
    O(1), no expansion. *)
val posting_count : t -> Interner.id -> int

(** [class_count t kw] is the number of distinct occurrence classes in
    [kw]'s list — the native kernel's cost driver ({!ranges} returns
    this many ranges). O(1). *)
val class_count : t -> Interner.id -> int

val postings_total : t -> int

(** [node_dedup_ratio t] is [classes / nodes]: 1.0 means nothing shared,
    0.1 means ten nodes per distinct subtree on average. *)
val node_dedup_ratio : t -> float

(** [edge_dedup_ratio t] is [dag_edges / tree_edges]. *)
val edge_dedup_ratio : t -> float

(** The shared expansion buffer: every instance of every occurrence
    class, grouped class by class, document order within a class. *)
val expansion : t -> Dewey.Packed.t

(** [ranges t kw] is [kw]'s occurrence classes as half-open entry ranges
    of {!expansion}, ascending by class id. Each range is sorted in
    document order; ranges of one keyword never overlap. The union of
    the ranges is exactly the keyword's flat posting list. *)
val ranges : t -> Interner.id -> (int * int) list

(** [merge t kw] expands [kw]'s postings to the flat form: labels in
    document order (byte-identical to what the uncompressed build packs)
    plus the per-posting path ids. O(postings · log classes). *)
val merge : t -> Interner.id -> Dewey.Packed.t * int array
