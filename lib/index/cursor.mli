(** Monotone cursors over inverted lists, with access accounting.

    Every refinement algorithm in the paper claims a one-time scan of the
    involved inverted lists; cursors make that claim checkable: they only
    move forward, and they count sequential advances and indexed seeks so
    tests (and the benchmark harness) can assert the scan discipline. *)

open Xr_xml

type t

(** [make list] is a cursor positioned before the first posting. *)
val make : Inverted.posting array -> t

(** [peek c] is the posting under the cursor, or [None] at end of list. *)
val peek : t -> Inverted.posting option

(** [advance c] moves one posting forward (counted as a sequential
    access). No-op at end of list. *)
val advance : t -> unit

(** [seek_geq c dewey] moves forward to the first posting whose label is
    [>= dewey] (binary search over the remaining suffix; counted as one
    random access). Never moves backward. *)
val seek_geq : t -> Dewey.t -> unit

(** [skip_to c idx] moves the cursor to absolute index [idx] if that is
    forward; counted as one random access. *)
val skip_to : t -> int -> unit

(** [at_end c] is true when the cursor is exhausted. *)
val at_end : t -> bool

(** [position c] is the current absolute index into the list. *)
val position : t -> int

(** [list_length c] is the length of the underlying list. *)
val list_length : t -> int

(** [sequential_accesses c] / [random_accesses c]: access counters. *)
val sequential_accesses : t -> int

val random_accesses : t -> int

(** Monotone cursor over a packed label buffer ({!Dewey.Packed}) — the
    scan substrate of the allocation-free SLCA kernels. Positional
    peeking (no option allocation per step) and galloping seeks that
    resume from the current position. *)
module Packed : sig
  type t

  val make : Dewey.Packed.t -> t

  (** [make_sub labels ~lo ~hi] is a cursor confined to the entry range
      [[lo, hi)] — the scan substrate of per-partition SLCA steps, where
      each keyword contributes the slice of its list lying under the
      partition root. Probes and brackets never look outside the range.
      @raise Invalid_argument unless [0 <= lo <= hi <= length labels]. *)
  val make_sub : Dewey.Packed.t -> lo:int -> hi:int -> t

  (** [labels c] is the underlying packed list; combine with
      {!position} to probe the entry under the cursor. *)
  val labels : t -> Dewey.Packed.t

  (** [length c] is the number of entries visible to the cursor (the
      sub-range length for {!make_sub} cursors). *)
  val length : t -> int

  val at_end : t -> bool

  val position : t -> int

  (** [advance c] moves one entry forward (a sequential access). *)
  val advance : t -> unit

  (** [seek_geq_sub c v len] moves forward to the first entry [>=] the
      first [len] components of [v], galloping from the current position
      (one random access when the cursor moves). Never moves backward. *)
  val seek_geq_sub : t -> int array -> int -> unit

  val seek_geq : t -> Dewey.t -> unit

  (** [seek_geq_entry c src i] moves forward to the first entry [>=]
      entry [i] of the packed list [src], comparing entirely in encoded
      form — no label is decoded. Galloping from the current position,
      one random access when the cursor moves; never moves backward. *)
  val seek_geq_entry : t -> Dewey.Packed.t -> int -> unit

  (** [match_probe c v len] is the scan kernels' fused inner step: seek
      to the first entry [>=] the first [len] components of [v] (as
      {!seek_geq_sub}) and return the deepest common prefix length of
      [v] with the two entries bracketing that position, [-1] when
      neither exists. Each entry compared during the search is walked
      exactly once. *)
  val match_probe : t -> int array -> int -> int

  val sequential_accesses : t -> int

  val random_accesses : t -> int
end
