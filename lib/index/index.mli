(** The index bundle: compiled document + inverted lists + statistics,
    with persistence to any {!Xr_store.Kv.t} (Section VII of the paper;
    Berkeley DB there, our B+tree here). *)

open Xr_xml

type t = {
  doc : Doc.t;
  inverted : Inverted.t;
  stats : Stats.t;
}

(** Inverted-list representation: [Flat] keeps one packed list per
    keyword resident; [Dag] hash-conses the document into a DAG of
    shared subtrees ({!Xr_dag}) and merges flat views lazily per touched
    keyword. Both produce byte-identical lists through
    {!Inverted.packed_list}, so every query path works over either. *)
type mode = Flat | Dag

val mode_name : mode -> string

val mode_of_name : string -> mode option

(** [default_mode ()] is the ambient representation: [Flat], unless the
    [XR_INDEX] environment variable says [dag] (or [flat]) — the switch
    the CI matrix flips to run the whole suite over the compressed form.
    @raise Invalid_argument on an unrecognized value. *)
val default_mode : unit -> mode

(** [mode t] is the representation [t] is currently backed by. *)
val mode : t -> mode

(** [build ?mode doc] builds all in-memory indices ([mode] defaults to
    {!default_mode}). *)
val build : ?mode:mode -> Doc.t -> t

(** [compress mode t] is [t] re-backed by [mode] (identity if already
    there): [Dag] re-derives the compressed form from the document,
    [Flat] expands every list. Statistics are rebound, results are
    unchanged. *)
val compress : mode -> t -> t

(** [of_string ?mode s] parses, compiles and indexes an XML document. *)
val of_string : ?mode:mode -> string -> t

(** [of_file ?mode path] reads, parses, compiles and indexes an XML
    file. *)
val of_file : ?mode:mode -> string -> t

(** [append_partition t subtree] incrementally indexes [subtree] as a new
    last child of the document root (a new partition): nodes, inverted
    lists and statistics are extended without rescanning the existing
    document. Returns the updated bundle; the input bundle must not be
    used afterwards (its statistics tables are shared and bumped in
    place). On a [Dag]-backed bundle the compressed expansion is rebuilt
    from the whole document instead of extended — O(document) per
    publish, a v1 limitation of the representation (the changed-keyword
    delta is exact either way). *)
val append_partition : t -> Tree.t -> t

(** [append_partition_delta t subtree] is {!append_partition} plus the
    list of keyword ids whose inverted lists were extended — the delta an
    incremental persister needs to write ({!save_delta}). *)
val append_partition_delta : t -> Tree.t -> t * Interner.id list

(** [fork t] is an index bundle whose mutable structures (interners, path
    table, statistics) are private copies, sharing the immutable node
    array, tree and packed inverted lists with [t]. {!append_partition}
    on the fork leaves [t] fully intact, so concurrent readers of [t] in
    other domains never observe the mutation — the snapshot primitive
    behind online ingest (generation N keeps serving while N+1 is
    built). *)
val fork : t -> t

(** [save t kv] persists the document text, every inverted list, the
    frequency table and the per-type aggregates into [kv] (and syncs). *)
val save : t -> Xr_store.Kv.t -> unit

(** [save_delta t kv ~changed] persists an incremental update after
    {!append_partition_delta}: only the inverted lists of [changed]
    keywords are rewritten, plus the (small) document text, frequency
    table, aggregates and vocabulary. Ends with a single [sync] — the
    commit point. A crash before that sync leaves the store serving the
    previously synced generation intact. *)
val save_delta : t -> Xr_store.Kv.t -> changed:Xr_xml.Interner.id list -> unit

(** [load ?mode kv] restores an index bundle saved by {!save}: the
    document is re-parsed from the stored text; inverted lists and
    statistics are decoded from the store without rescanning the
    document. The store always holds the flat lists ({!save} expands a
    compressed index); [mode] (default {!default_mode}) chooses the
    resident representation, re-deriving the DAG from the document when
    [Dag].
    @raise Failure if the store does not hold a saved index or is
    inconsistent with the stored document. *)
val load : ?mode:mode -> Xr_store.Kv.t -> t
