open Xr_xml

let memo_shard_count = 16 (* power of two: shard index is a hash mask *)

type t = {
  doc : Doc.t;
  inverted : Inverted.t;
  df : (Path.id * Interner.id, int) Hashtbl.t;
  tf : (Path.id * Interner.id, int) Hashtbl.t;
  distinct : int array; (* G_T, by path id *)
  nodes_per_path : int array; (* N_T, by path id *)
  memo_shards : memo_shard array;
      (* [cooccur] memoizes at query time; the index is otherwise
         read-only after [build]. The memo is sharded by key hash so
         request domains and pool workers filling it concurrently do
         not serialize on a single lock. *)
}

and memo_shard = {
  memo : (Path.id * Interner.id * Interner.id, int) Hashtbl.t;
  lock : Mutex.t;
}

let make_memo_shards () =
  Array.init memo_shard_count (fun _ ->
      { memo = Hashtbl.create 32; lock = Mutex.create () })

let build (doc : Doc.t) inverted =
  let npaths = Path.size doc.paths in
  let df = Hashtbl.create 4096 in
  let tf = Hashtbl.create 4096 in
  let nodes_per_path = Array.make npaths 0 in
  (* Last counted ancestor label per (T, k): nodes arrive in document
     order, so occurrences under one T-typed ancestor are consecutive and
     a (T, k) pair needs a new df count exactly when the ancestor label at
     depth(T) changes. *)
  let last_prefix : (Path.id * Interner.id, Dewey.t) Hashtbl.t = Hashtbl.create 4096 in
  let bump table key n =
    let v = try Hashtbl.find table key with Not_found -> 0 in
    Hashtbl.replace table key (v + n)
  in
  Array.iter
    (fun (node : Doc.node) ->
      nodes_per_path.(node.path) <- nodes_per_path.(node.path) + 1;
      if node.keywords <> [] then begin
        let ancestor_paths = Path.ancestors doc.paths node.path in
        List.iter
          (fun (kw, count) ->
            List.iter
              (fun tpath ->
                let d = Path.depth doc.paths tpath in
                let prefix = Dewey.prefix node.dewey (d - 1) in
                (* depth 1 = root path = Dewey prefix of length 0 *)
                bump tf (tpath, kw) count;
                let key = (tpath, kw) in
                let fresh =
                  match Hashtbl.find_opt last_prefix key with
                  | Some p -> not (Dewey.equal p prefix)
                  | None -> true
                in
                if fresh then begin
                  Hashtbl.replace last_prefix key prefix;
                  bump df key 1
                end)
              ancestor_paths)
          node.keywords
      end)
    doc.nodes;
  let distinct = Array.make npaths 0 in
  Hashtbl.iter (fun (tpath, _) _ -> distinct.(tpath) <- distinct.(tpath) + 1) df;
  {
    doc;
    inverted;
    df;
    tf;
    distinct;
    nodes_per_path;
    memo_shards = make_memo_shards ();
  }

(* Incremental variant of [build] for an appended partition. New nodes'
   Dewey labels all lie in the fresh partition, so every (type, keyword)
   ancestor prefix is new — except the document root, whose df must only
   be bumped when the keyword is new to the whole document. *)
let append t ~doc ~inverted ~added =
  let npaths = Path.size doc.Doc.paths in
  let grow a = Array.append a (Array.make (npaths - Array.length a) 0) in
  let nodes_per_path = grow t.nodes_per_path in
  let distinct = grow t.distinct in
  let bump table key n =
    let v = try Hashtbl.find table key with Not_found -> 0 in
    Hashtbl.replace table key (v + n)
  in
  let last_prefix : (Path.id * Interner.id, Dewey.t) Hashtbl.t = Hashtbl.create 256 in
  let root_depth = 1 in
  Array.iter
    (fun (node : Doc.node) ->
      nodes_per_path.(node.path) <- nodes_per_path.(node.path) + 1;
      if node.keywords <> [] then begin
        let ancestor_paths = Path.ancestors doc.Doc.paths node.path in
        List.iter
          (fun (kw, count) ->
            List.iter
              (fun tpath ->
                let d = Path.depth doc.Doc.paths tpath in
                let prefix = Dewey.prefix node.dewey (d - 1) in
                bump t.tf (tpath, kw) count;
                let key = (tpath, kw) in
                let fresh_here =
                  match Hashtbl.find_opt last_prefix key with
                  | Some p -> not (Dewey.equal p prefix)
                  | None -> true
                in
                if fresh_here then begin
                  Hashtbl.replace last_prefix key prefix;
                  (* the root node predates this partition: count it only
                     once per keyword over the document's lifetime *)
                  let already =
                    d = root_depth && (try Hashtbl.find t.df key > 0 with Not_found -> false)
                  in
                  if not already then begin
                    if (try Hashtbl.find t.df key with Not_found -> 0) = 0 then
                      distinct.(tpath) <- distinct.(tpath) + 1;
                    bump t.df key 1
                  end
                end)
              ancestor_paths)
          node.keywords
      end)
    added;
  Array.iter
    (fun shard -> Mutex.protect shard.lock (fun () -> Hashtbl.reset shard.memo))
    t.memo_shards;
  { t with doc; inverted; nodes_per_path; distinct }

let fork t ~doc =
  {
    t with
    doc;
    df = Hashtbl.copy t.df;
    tf = Hashtbl.copy t.tf;
    distinct = Array.copy t.distinct;
    nodes_per_path = Array.copy t.nodes_per_path;
    memo_shards = make_memo_shards ();
  }

let rebind t ~inverted = { t with inverted; memo_shards = make_memo_shards () }

let doc t = t.doc

let df t ~path ~kw = try Hashtbl.find t.df (path, kw) with Not_found -> 0

let tf t ~path ~kw = try Hashtbl.find t.tf (path, kw) with Not_found -> 0

let distinct_keywords t path =
  if path >= 0 && path < Array.length t.distinct then t.distinct.(path) else 0

let node_count t path =
  if path >= 0 && path < Array.length t.nodes_per_path then t.nodes_per_path.(path) else 0

(* Distinct T-ancestor labels shared by the posting lists of k1 and k2:
   truncate both lists to the Dewey prefix at depth(T)-1 (keeping only
   postings that actually descend from a T-typed node) and count common
   distinct prefixes with a linear merge. Scans the packed lists in
   place — entries are decoded into a reused scratch buffer and a prefix
   is materialized only when it differs from the previous one, so the
   legacy boxed view is never touched. *)
let cooccur_compute t ~path k1 k2 =
  let d = Path.depth t.doc.paths path - 1 in
  let truncated kw =
    let pk = Inverted.packed_list t.inverted kw in
    let labels = pk.Inverted.labels in
    let n = Dewey.Packed.length labels in
    let scratch = Array.make (max 1 (Dewey.Packed.max_depth labels)) 0 in
    let acc = ref [] in
    for i = 0 to n - 1 do
      if Dewey.Packed.depth_at labels i >= d then begin
        match Path.ancestor_at t.doc.paths pk.Inverted.paths.(i) ~depth:(d + 1) with
        | Some a when a = path ->
          ignore (Dewey.Packed.blit_entry labels i scratch);
          let fresh =
            match !acc with
            | last :: _ ->
              let eq = ref true in
              for j = 0 to d - 1 do
                if last.(j) <> scratch.(j) then eq := false
              done;
              not !eq
            | [] -> true
          in
          if fresh then acc := Array.sub scratch 0 d :: !acc
        | _ -> ()
      end
    done;
    List.rev !acc
  in
  let rec merge n a b =
    match (a, b) with
    | [], _ | _, [] -> n
    | x :: a', y :: b' ->
      let c = Dewey.compare x y in
      if c = 0 then merge (n + 1) a' b'
      else if c < 0 then merge n a' b
      else merge n a b'
  in
  merge 0 (truncated k1) (truncated k2)

let memo_fam =
  Xr_obs.Registry.Counter.family ~name:"xr_stats_cooccur_memo_total"
    ~help:"Co-occurrence memo lookups during ranking" ~label_names:[ "outcome" ] ()

let memo_hits_h = Xr_obs.Registry.Counter.handle memo_fam [ "hit" ]

let memo_misses_h = Xr_obs.Registry.Counter.handle memo_fam [ "miss" ]

let cooccur t ~path k1 k2 =
  let k1, k2 = if k1 <= k2 then (k1, k2) else (k2, k1) in
  if k1 = k2 then df t ~path ~kw:k1
  else begin
    let key = (path, k1, k2) in
    let shard = t.memo_shards.(Hashtbl.hash key land (memo_shard_count - 1)) in
    let cached = Mutex.protect shard.lock (fun () -> Hashtbl.find_opt shard.memo key) in
    match cached with
    | Some v ->
      Xr_obs.Registry.Counter.inc memo_hits_h;
      v
    | None ->
      Xr_obs.Registry.Counter.inc memo_misses_h;
      (* Compute outside the lock: a racing domain at worst recomputes the
         same value; [replace] keeps the table consistent either way. *)
      let v = cooccur_compute t ~path k1 k2 in
      Mutex.protect shard.lock (fun () -> Hashtbl.replace shard.memo key v);
      v
  end

let paths_containing t kw =
  let acc = ref [] in
  Hashtbl.iter (fun (path, k) v -> if k = kw then acc := (path, v) :: !acc) t.df;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc

let path_count t = Path.size t.doc.paths

let export t =
  let acc = ref [] in
  Hashtbl.iter
    (fun (path, kw) d ->
      let f = try Hashtbl.find t.tf (path, kw) with Not_found -> 0 in
      acc := (path, kw, d, f) :: !acc)
    t.df;
  List.sort compare !acc

let import (doc : Doc.t) inverted ~rows ~nodes_per_path =
  let npaths = Path.size doc.paths in
  let df = Hashtbl.create 4096 and tf = Hashtbl.create 4096 in
  let distinct = Array.make npaths 0 in
  List.iter
    (fun (path, kw, d, f) ->
      Hashtbl.replace df (path, kw) d;
      Hashtbl.replace tf (path, kw) f;
      if path >= 0 && path < npaths then distinct.(path) <- distinct.(path) + 1)
    rows;
  {
    doc;
    inverted;
    df;
    tf;
    distinct;
    nodes_per_path;
    memo_shards = make_memo_shards ();
  }

let total_nodes t = Doc.node_count t.doc
