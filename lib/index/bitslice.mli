(** Bitsliced Dewey prefix filter.

    A {!t} is a bitset over one half-open entry range of a packed
    posting list: bit [i - base] is set iff entry [i] lies in the
    subtree rooted at a given prefix. One machine word holds the
    verdicts for {!word_bits} consecutive labels, so the shared-scan
    kernel ({!Xr_slca}) consumes subtree membership a word at a time
    instead of re-probing the prefix per driver entry.

    Posting lists are document-ordered, so the members of a subtree
    form one contiguous run ({!Xr_xml.Dewey.Packed.prefix_slice_sub});
    {!under} exploits that to fill interior words with a single
    all-ones store — 63 label verdicts per write — and only shifts at
    the two boundary words. {!under_probed} builds the same mask by
    comparing every entry individually; it is the reference the
    property tests diff against and the fallback for unsorted input. *)

open Xr_xml

type t

(** Verdicts per mask word: OCaml's native int carries 63 usable bits. *)
val word_bits : int

(** [under pk ~lo ~hi ~prefix ~plen] masks entries of [pk] in
    [\[lo, hi)] to those lying in the subtree rooted at
    [prefix.(0..plen-1)] ([plen = 0] selects everything). Assumes [pk]
    is sorted in document order, as inverted lists are. *)
val under : Dewey.Packed.t -> lo:int -> hi:int -> prefix:int array -> plen:int -> t

(** [under_probed] is {!under} without the sortedness assumption: one
    encoded-form prefix probe per entry. Reference implementation. *)
val under_probed :
  Dewey.Packed.t -> lo:int -> hi:int -> prefix:int array -> plen:int -> t

(** [base t] and [count t] recover the masked range: [\[base, base + count)]. *)
val base : t -> int

val count : t -> int

(** [cardinal t] is the number of selected entries. *)
val cardinal : t -> int

(** [selectivity t] is [cardinal / count] (1.0 for an empty range). *)
val selectivity : t -> float

(** [mem t i] tests entry [i] (absolute index into the list). *)
val mem : t -> int -> bool

(** [iter t f] applies [f] to each selected absolute index, ascending.
    Full words dispatch without per-bit tests. *)
val iter : t -> (int -> unit) -> unit

(** Cumulative entries examined / selected across all masks built —
    exported to the registry as [xr_bitslice_entries_total{verdict}]. *)
val entries_examined : unit -> int

val entries_selected : unit -> int
