open Xr_xml
module Codec = Xr_store.Codec
module Kv = Xr_store.Kv

type t = {
  doc : Doc.t;
  inverted : Inverted.t;
  stats : Stats.t;
}

type mode = Flat | Dag

let mode_name = function Flat -> "flat" | Dag -> "dag"

let mode_of_name = function "flat" -> Some Flat | "dag" -> Some Dag | _ -> None

(* The ambient representation choice: [XR_INDEX=dag] switches every
   default-mode build in the process — the lever the CI matrix uses to
   run the whole suite over the compressed form. Read per call, not
   once, so tests can flip it. *)
let default_mode () =
  match Sys.getenv_opt "XR_INDEX" with
  | None | Some "" -> Flat
  | Some s -> (
    match mode_of_name s with
    | Some m -> m
    | None -> invalid_arg ("Index.default_mode: bad XR_INDEX value " ^ s))

let mode t = match Inverted.dag t.inverted with Some _ -> Dag | None -> Flat

let build ?mode doc =
  let inverted =
    match (match mode with Some m -> m | None -> default_mode ()) with
    | Flat -> Inverted.build doc
    | Dag -> Inverted.of_dag (Xr_dag.build doc)
  in
  (* [Stats.build] walks only the document; the inverted table is used
     lazily (co-occurrence), so neither mode forces the other's lists. *)
  let stats = Stats.build doc inverted in
  { doc; inverted; stats }

let compress target t =
  match (target, mode t) with
  | Flat, Flat | Dag, Dag -> t
  | Dag, Flat ->
    let inverted = Inverted.of_dag (Xr_dag.build t.doc) in
    { t with inverted; stats = Stats.rebind t.stats ~inverted }
  | Flat, Dag ->
    let inverted = Inverted.to_flat t.inverted in
    { t with inverted; stats = Stats.rebind t.stats ~inverted }

let fork t =
  let doc = Doc.fork t.doc in
  { doc; inverted = t.inverted; stats = Stats.fork t.stats ~doc }

let append_partition_delta t subtree =
  let doc, added = Doc.append_child t.doc subtree in
  let additions : (Interner.id, Inverted.posting list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (node : Doc.node) ->
      List.iter
        (fun (kw, _) ->
          let old = try Hashtbl.find additions kw with Not_found -> [] in
          Hashtbl.replace additions kw ({ Inverted.dewey = node.Doc.dewey; path = node.Doc.path } :: old))
        node.Doc.keywords)
    added;
  (* [added] is in document order, so reversing each accumulated list
     restores it *)
  let additions =
    Hashtbl.fold (fun kw l acc -> (kw, List.rev l) :: acc) additions []
  in
  let inverted =
    match Inverted.dag t.inverted with
    | None ->
      Inverted.extend t.inverted ~vocab_size:(Interner.size doc.Doc.keywords) additions
    | Some _ ->
      (* v1 limitation: the hash-cons tables are not kept after [build],
         so a compressed index re-runs the whole hash-cons on publish —
         O(document), not O(partition). Acceptable while ingest batches
         are coarse; the changed-keyword delta below stays exact either
         way, so persistence still writes only what moved. *)
      Inverted.of_dag (Xr_dag.build doc)
  in
  let stats = Stats.append t.stats ~doc ~inverted ~added in
  ({ doc; inverted; stats }, List.map fst additions)

let append_partition t subtree = fst (append_partition_delta t subtree)

let of_string ?mode s = build ?mode (Doc.of_string s)

let of_file ?mode path = build ?mode (Doc.of_file path)

(* ---- persistence ------------------------------------------------------ *)

(* A packed posting list round-trips to its stored form without an
   intermediate boxed decode: the label buffer is written verbatim, the
   offsets table as varint deltas (it is monotone by construction), node
   types as varints. Loading re-adopts the buffer zero-copy. *)
let write_packed_list buf (pk : Inverted.packed) =
  let labels, offsets, max_depth = Dewey.Packed.to_raw pk.Inverted.labels in
  Codec.write_varint buf max_depth;
  Codec.write_delta_array buf offsets;
  Codec.write_string buf labels;
  Array.iter (Codec.write_varint buf) pk.Inverted.paths

let read_packed_list r =
  let max_depth = Codec.read_varint r in
  let offsets = Codec.read_delta_array r in
  let buf = Codec.read_string r in
  let labels = Dewey.Packed.of_raw ~buf ~offsets ~max_depth in
  let paths = Array.init (Dewey.Packed.length labels) (fun _ -> Codec.read_varint r) in
  { Inverted.labels; paths }

let write_freq_row buf (path, kw, d, f) =
  Codec.write_varint buf path;
  Codec.write_varint buf kw;
  Codec.write_varint buf d;
  Codec.write_varint buf f

let read_freq_row r =
  let path = Codec.read_varint r in
  let kw = Codec.read_varint r in
  let d = Codec.read_varint r in
  let f = Codec.read_varint r in
  (path, kw, d, f)

(* Document text, frequency table, per-type aggregates and vocabulary are
   rewritten whole on every save: they are small next to the posting
   lists, which are the only part written selectively by [save_delta]. *)
let save_metadata t (kv : Kv.t) =
  kv.insert ~key:"doc" ~value:(Printer.to_string ~indent:false t.doc.tree);
  kv.insert ~key:"ft"
    ~value:(Codec.encode (fun buf l -> Codec.write_list write_freq_row buf l) (Stats.export t.stats));
  let nodes_per_path =
    Array.init (Path.size t.doc.paths) (fun p -> Stats.node_count t.stats p)
  in
  kv.insert ~key:"npt" ~value:(Codec.encode Codec.write_int_array nodes_per_path);
  kv.insert ~key:"vocab"
    ~value:
      (Codec.encode (fun buf l -> Codec.write_list Codec.write_string buf l) (Doc.vocabulary t.doc))

let save t (kv : Kv.t) =
  Inverted.iter_packed
    (fun kw pk ->
      if Inverted.packed_postings pk > 0 then
        kv.insert
          ~key:("il:" ^ Doc.keyword_name t.doc kw)
          ~value:(Codec.encode write_packed_list pk))
    t.inverted;
  save_metadata t kv;
  kv.sync ()

let save_delta t (kv : Kv.t) ~changed =
  List.iter
    (fun kw ->
      let pk = Inverted.packed_list t.inverted kw in
      if Inverted.packed_postings pk > 0 then
        kv.insert
          ~key:("il:" ^ Doc.keyword_name t.doc kw)
          ~value:(Codec.encode write_packed_list pk))
    (List.sort_uniq Int.compare changed);
  save_metadata t kv;
  kv.sync ()

let load ?mode (kv : Kv.t) =
  let get key =
    match kv.find key with
    | Some v -> v
    | None -> failwith ("Index.load: store is missing key " ^ key)
  in
  let doc = Doc.of_string (get "doc") in
  let vocab = Codec.decode (Codec.read_list Codec.read_string) (get "vocab") in
  if List.length vocab <> Interner.size doc.keywords then
    failwith "Index.load: vocabulary size mismatch with stored document";
  List.iteri
    (fun i k ->
      match Doc.keyword_id doc k with
      | Some id when id = i -> ()
      | _ -> failwith "Index.load: vocabulary order mismatch with stored document")
    vocab;
  let n = Interner.size doc.keywords in
  let lists = Array.make n Inverted.empty_packed in
  List.iteri
    (fun i k ->
      match kv.find ("il:" ^ k) with
      | None -> ()
      | Some v -> lists.(i) <- Codec.decode read_packed_list v)
    vocab;
  let inverted = Inverted.of_packed lists in
  let rows = Codec.decode (Codec.read_list read_freq_row) (get "ft") in
  let nodes_per_path = Codec.decode Codec.read_int_array (get "npt") in
  if Array.length nodes_per_path <> Path.size doc.paths then
    failwith "Index.load: node-type table mismatch with stored document";
  let stats = Stats.import doc inverted ~rows ~nodes_per_path in
  let t = { doc; inverted; stats } in
  (* The store always holds the flat form ({!save} expands a compressed
     index); the representation is a load-time choice, re-deriving the
     DAG from the re-parsed document when asked for. *)
  match (match mode with Some m -> m | None -> default_mode ()) with
  | Flat -> t
  | Dag -> compress Dag t
