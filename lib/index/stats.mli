(** Document statistics: the paper's frequency table and co-occurrence
    table (Section VII), plus the per-type aggregates used by the ranking
    model.

    For a node type [T] and keyword [k]:
    - [df] is the XML document frequency {% $f_k^T$ %} (Definition 3.2):
      the number of [T]-typed nodes containing [k] in their subtrees;
    - [tf] is the XML term frequency {% $tf(k,T)$ %}: the total number of
      occurrences of [k] within subtrees rooted at [T]-typed nodes;
    - [distinct_keywords] is {% $G_T$ %}: the number of distinct keywords
      occurring in subtrees of type [T];
    - [node_count] is {% $N_T$ %}: the number of [T]-typed nodes;
    - [cooccur] is {% $f_{k_i,k_j}^T$ %}: the number of [T]-typed nodes
      whose subtree contains both keywords. Computed on demand by a
      linear merge of the two inverted lists and memoized (the paper
      stores the full table in Berkeley DB; the memo table is its
      equivalent, built lazily to avoid the {% $K^2 T$ %} worst case). *)

open Xr_xml

type t

(** [build doc inverted] computes all eager statistics in one pass over
    the document's keyword occurrences. *)
val build : Doc.t -> Inverted.t -> t

(** [doc t] is the document these statistics describe. *)
val doc : t -> Doc.t

(** [rebind t ~inverted] points the lazily-computed co-occurrence path
    at a different inverted table over the same document (the memo is
    reset). Used when an index bundle switches list representation
    ({!Index.compress}) — the eager tables depend only on the document,
    so nothing else changes. *)
val rebind : t -> inverted:Inverted.t -> t

val df : t -> path:Path.id -> kw:Interner.id -> int

val tf : t -> path:Path.id -> kw:Interner.id -> int

val distinct_keywords : t -> Path.id -> int

val node_count : t -> Path.id -> int

(** [cooccur t ~path k1 k2] is symmetric in [k1]/[k2]. The memo table it
    fills is the only query-time mutation in the whole index bundle and
    is sharded by key hash, each shard under its own mutex, so a built
    [t] may be queried from parallel domains — request workers and
    {!Xr_pool} tasks alike — without serializing on one lock. *)
val cooccur : t -> path:Path.id -> Interner.id -> Interner.id -> int

(** [paths_containing t kw] is every node type whose subtrees contain
    [kw], with its [df], ascending by path id. *)
val paths_containing : t -> Interner.id -> (Path.id * int) list

(** [path_count t] is the number of node types in the document. *)
val path_count : t -> int

(** [append t ~doc ~inverted ~added] updates the statistics for nodes of
    a freshly appended document partition (see {!Doc.append_child}): the
    frequency table is bumped in place (the old [t] becomes stale), the
    per-type aggregates grow to cover new node types, and the
    co-occurrence memo is reset. [doc]/[inverted] are the post-append
    versions. *)
val append : t -> doc:Doc.t -> inverted:Inverted.t -> added:Doc.node array -> t

(** [fork t ~doc] is a statistics table that owns private copies of every
    mutable structure in [t] (frequency tables, per-type aggregates, a
    fresh co-occurrence memo), so a later {!append} on the fork never
    disturbs readers of [t]. [doc] is the forked document (see
    {!Doc.fork}); the inverted table is shared, it is immutable. *)
val fork : t -> doc:Doc.t -> t

(** [export t] dumps the frequency table as [(path, kw, df, tf)] rows,
    for persistence. *)
val export : t -> (Path.id * Interner.id * int * int) list

(** [import doc inverted ~rows ~nodes_per_path] rebuilds a statistics
    table from persisted rows without rescanning the document. *)
val import :
  Doc.t ->
  Inverted.t ->
  rows:(Path.id * Interner.id * int * int) list ->
  nodes_per_path:int array ->
  t

(** [total_nodes t] is the number of element nodes in the document. *)
val total_nodes : t -> int
