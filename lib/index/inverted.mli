(** Keyword inverted lists.

    For each keyword of the document, the list of element nodes that
    contain it directly (in their tag name or own text), in document
    order, each entry carrying the node's Dewey label and node type — the
    [<DeweyID, prefixPath>] form of the paper's first index. *)

open Xr_xml

type posting = { dewey : Dewey.t; path : Path.id }

(** Struct-of-arrays posting list: every Dewey label of the list packed
    into one contiguous buffer (see {!Dewey.Packed}), node-type ids
    alongside. This is the resident form shared across query domains;
    [posting array] is a lazily materialized compatibility view. *)
type packed = { labels : Dewey.Packed.t; paths : int array }

type t

(** [build doc] scans the compiled document once and builds all lists. *)
val build : Doc.t -> t

(** [of_lists lists] packs per-keyword posting arrays (indexed by keyword
    id, document order within each). *)
val of_lists : posting array array -> t

(** [of_packed lists] adopts already-packed lists (indexed by keyword
    id); used when restoring a persisted index without re-encoding. *)
val of_packed : packed array -> t

(** [of_dag dag] is a table backed by the DAG-compressed expansion:
    {!packed_list} merges a keyword's flat view out of the shared
    expansion on first access and memoizes it (safe under parallel
    domains — a racing domain at worst merges twice). A merged view is
    byte-identical to what the flat build packs, so every consumer of
    this interface behaves identically over either backing. *)
val of_dag : Xr_dag.t -> t

(** [dag t] is the compressed backing, if [t] has one. *)
val dag : t -> Xr_dag.t option

(** [to_flat t] is [t] re-backed by fully materialized flat lists
    (identity when already flat). Forces every merge. *)
val to_flat : t -> t

val empty_packed : packed

(** [pack_postings arr] packs one posting array. *)
val pack_postings : posting array -> packed

(** [extend t ~vocab_size additions] is a new table covering ids up to
    [vocab_size - 1], with each [(kw, postings)] of [additions] appended
    to [kw]'s list; every appended posting must sort after the existing
    tail of its list (they do when a new partition is appended at the end
    of the document). The input table is unchanged. *)
val extend : t -> vocab_size:int -> (Interner.id * posting list) list -> t

(** [packed_list t kw] is the packed posting list of keyword [kw]
    ([empty_packed] if absent). This is the zero-copy accessor the SLCA
    kernels scan. *)
val packed_list : t -> Interner.id -> packed

(** [list t kw] is the boxed posting list of keyword [kw] (empty if
    absent), materialized from the packed form on first access and
    memoized (safe under parallel domains). *)
val list : t -> Interner.id -> posting array

(** [list_by_name t doc k] resolves keyword [k] (normalized) first. *)
val list_by_name : t -> Doc.t -> string -> posting array

(** [materialization_count t] is the number of legacy boxed-view
    materializations performed so far (memo hits excluded). The packed
    refinement pipeline keeps this at zero; the server's /stats endpoint
    surfaces it so regressions to the boxed path are observable. *)
val materialization_count : t -> int

(** [materialized_keywords t] is the number of keywords whose boxed view
    is currently memoized. *)
val materialized_keywords : t -> int

(** [merge_count t] is the number of DAG-to-flat list merges performed
    so far (memo hits excluded; 0 on a flat backing). *)
val merge_count : t -> int

(** [merged_keywords t] is the number of keywords whose flat view is
    currently memoized out of the DAG (0 on a flat backing). *)
val merged_keywords : t -> int

(** [length t kw] is the posting-list length of [kw]. *)
val length : t -> Interner.id -> int

(** [keyword_count t] is the number of keywords with a non-empty list. *)
val keyword_count : t -> int

(** [iter f t] applies [f kw list] to every keyword in id order
    (materializes each list; prefer {!iter_packed} on hot paths). *)
val iter : (Interner.id -> posting array -> unit) -> t -> unit

(** [iter_packed f t] applies [f kw packed] to every keyword in id
    order. On a flat backing this materializes nothing; on a DAG backing
    it forces the merge of every keyword (persistence uses it — prefer
    {!iter_lengths} or the [*_total] accessors on passive paths like
    metrics scrapes). *)
val iter_packed : (Interner.id -> packed -> unit) -> t -> unit

(** [iter_lengths f t] applies [f kw posting_count] to every keyword in
    id order, without merging or materializing anything on either
    backing. *)
val iter_lengths : (Interner.id -> int -> unit) -> t -> unit

val prefetch : ?pool:Xr_pool.t -> t -> Interner.id list -> unit
(** [prefetch t kws] forces the flat views of [kws] resident before a
    scan touches them: a no-op on a flat backing, on a DAG backing it
    merges the missing views — concurrently (one pool task per
    keyword) when [pool] (default: the global pool only if it already
    exists) has more than one domain. Never changes what
    {!packed_list} returns; a racing query at worst merges a view
    twice, exactly as without prefetching. *)

(** [peek_merged t kw] is [kw]'s packed list if it is resident right
    now: always on a flat backing, only if already merged on a DAG
    backing. Never forces anything. *)
val peek_merged : t -> Interner.id -> packed option

(** [postings_total t] is the flat posting count over all keywords,
    without forcing any merge. *)
val postings_total : t -> int

(** [label_bytes_total t] is the resident packed-label byte count: all
    list buffers on a flat backing; the shared expansion buffer plus
    already-merged views on a DAG backing. Never forces anything. *)
val label_bytes_total : t -> int

(** [resident_bytes t] estimates total resident bytes of the backing
    (see {!packed_bytes} for the accounting), including, on a DAG
    backing, the compressed structure plus the merged-view cache.
    Never forces anything. *)
val resident_bytes : t -> int

(** [packed_postings pk] is the number of postings in a packed list. *)
val packed_postings : packed -> int

(** [packed_label_bytes pk] is the size of the packed label buffer. *)
val packed_label_bytes : packed -> int

(** [packed_bytes pk] estimates the resident bytes of a packed list:
    label buffer plus one word per offsets slot and node-type id. *)
val packed_bytes : packed -> int

(** [prefix_slice list dewey] is the contiguous sub-range [(lo, hi)]
    (half-open index interval) of postings lying in the subtree rooted at
    [dewey], found by binary search. *)
val prefix_slice : posting array -> Dewey.t -> int * int

(** [prefix_slice_from list start dewey] restricts the search to indices
    [>= start]. *)
val prefix_slice_from : posting array -> int -> Dewey.t -> int * int
