module Reg = Xr_obs.Registry

type gen = { id : int; index : Xr_index.Index.t; refs : int Atomic.t }

type t = {
  corpus : string;
  cur : gen Atomic.t;
  lock : Mutex.t; (* serializes publish and retired-list maintenance *)
  mutable retired : gen list; (* superseded generations, pruned at publish *)
}

let generation_fam =
  Reg.Gauge.family ~name:"xr_ingest_generation"
    ~help:"Id of the currently published index generation" ~label_names:[ "corpus" ] ()

let active_fam =
  Reg.Gauge.family ~name:"xr_ingest_active_generations"
    ~help:"Generations still serving requests (current + pinned superseded)"
    ~label_names:[ "corpus" ] ()

let corpus t = t.corpus

let current t = Atomic.get t.cur

let current_id t = (current t).id

let pinned_retired t =
  List.filter (fun g -> Atomic.get g.refs > 0) t.retired

let active t =
  Mutex.protect t.lock (fun () -> 1 + List.length (pinned_retired t))

let create ~corpus index =
  let t =
    {
      corpus;
      cur = Atomic.make { id = 0; index; refs = Atomic.make 0 };
      lock = Mutex.create ();
      retired = [];
    }
  in
  Reg.Gauge.set_pull
    (Reg.Gauge.handle generation_fam [ corpus ])
    (fun () -> float_of_int (current_id t));
  Reg.Gauge.set_pull
    (Reg.Gauge.handle active_fam [ corpus ])
    (fun () -> float_of_int (active t));
  t

(* Raise the refcount, then re-check that the generation is still
   current: if a publish won the race, retry on the new one. The stale
   snapshot would actually be safe to use (the GC owns the memory, and
   generations are immutable), but admitting only current generations
   keeps the accounting exact. *)
let rec pin t =
  let g = Atomic.get t.cur in
  Atomic.incr g.refs;
  if Atomic.get t.cur == g then g
  else begin
    Atomic.decr g.refs;
    pin t
  end

let unpin g = Atomic.decr g.refs

let with_pinned t f =
  let g = pin t in
  Fun.protect ~finally:(fun () -> unpin g) (fun () -> f g)

let publish t index =
  Mutex.protect t.lock (fun () ->
      let old = Atomic.get t.cur in
      let g = { id = old.id + 1; index; refs = Atomic.make 0 } in
      Atomic.set t.cur g;
      t.retired <- old :: pinned_retired t;
      g)
