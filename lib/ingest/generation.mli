(** Epoch-swapped index generations.

    A corpus is served from a chain of immutable index snapshots
    ("generations"). Readers {!pin} the current generation on admission —
    one atomic load plus a refcount increment, never a lock — and query
    it for the whole request, so a concurrent publish cannot change the
    index under them. The writer builds generation [N+1] off-path (see
    {!Xr_ingest.Ingest}) and {!publish}es it with a single atomic swap;
    in-flight readers keep their pinned snapshot, new readers see the new
    one.

    The refcount is observational, not a memory-safety mechanism — the
    OCaml GC keeps a pinned generation alive regardless. It exists so the
    [xr_ingest_active_generations] gauge can report how many superseded
    snapshots are still serving in-flight requests. *)

type gen = {
  id : int;  (** monotonically increasing, 0 for the initial build *)
  index : Xr_index.Index.t;
  refs : int Atomic.t;  (** in-flight readers pinning this generation *)
}

type t

(** [create ~corpus index] starts the chain at generation 0. [corpus]
    labels this store's metrics series. *)
val create : corpus:string -> Xr_index.Index.t -> t

val corpus : t -> string

(** [current t] peeks at the current generation without pinning it — for
    metrics and the writer (which is the only publisher). Do not run
    queries against an unpinned generation. *)
val current : t -> gen

val current_id : t -> int

(** [pin t] admits a reader: returns the current generation with its
    refcount raised. Wait-free — a publish racing with the pin at worst
    costs one retry. Callers must {!unpin} exactly once. *)
val pin : t -> gen

val unpin : gen -> unit

(** [with_pinned t f] pins, runs [f], and unpins (also on exceptions). *)
val with_pinned : t -> (gen -> 'a) -> 'a

(** [publish t index] installs [index] as the next generation (id + 1)
    and returns it. Single-writer: callers must serialize publishes
    (the ingest queue's writer domain does). Readers are never blocked. *)
val publish : t -> Xr_index.Index.t -> gen

(** [active t] is the number of generations still in service: the
    current one plus superseded ones with a non-zero refcount. *)
val active : t -> int
