module Reg = Xr_obs.Registry
module Index = Xr_index.Index

type config = { queue_bound : int; batch_max : int }

let default_config = { queue_bound = 256; batch_max = 32 }

type error = Queue_full | Shutdown | Parse of string

let error_to_string = function
  | Queue_full -> "ingest queue full"
  | Shutdown -> "ingest writer is shut down"
  | Parse msg -> "malformed XML: " ^ msg

type t = {
  config : config;
  gens : Generation.t;
  kv : Xr_store.Kv.t option;
  on_publish : (Generation.gen -> unit) option;
  lock : Mutex.t;
  nonempty : Condition.t; (* work queued, or shutdown requested *)
  drained : Condition.t; (* processed caught up with a flush target *)
  queue : Xr_xml.Tree.t Queue.t;
  mutable submitted : int;
  mutable processed : int;
  mutable stopping : bool;
  mutable writer : unit Domain.t option;
  docs : int Atomic.t;
}

let submitted_fam =
  Reg.Counter.family ~name:"xr_ingest_submitted_total"
    ~help:"Documents accepted into the ingest queue" ~label_names:[ "corpus" ] ()

let rejected_fam =
  Reg.Counter.family ~name:"xr_ingest_rejected_total"
    ~help:"Documents rejected before the ingest queue"
    ~label_names:[ "corpus"; "reason" ] ()

let docs_fam =
  Reg.Counter.family ~name:"xr_ingest_docs_indexed_total"
    ~help:"Documents merged into a published generation" ~label_names:[ "corpus" ] ()

let depth_fam =
  Reg.Gauge.family ~name:"xr_ingest_queue_depth"
    ~help:"Documents waiting in the ingest queue" ~label_names:[ "corpus" ] ()

let merge_fam =
  Reg.Histogram.family ~name:"xr_ingest_merge_duration_ms"
    ~help:"Fork + append + persist + publish latency per batch"
    ~buckets:[| 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]
    ()

let generations t = t.gens

let queue_depth t = Mutex.protect t.lock (fun () -> Queue.length t.queue)

let docs_indexed t = Atomic.get t.docs

(* Merge one batch into the next generation. Runs exclusively on the
   writer domain: the fork owns every mutable structure it touches, so
   readers pinned on the current generation race with nothing here. *)
let merge_batch t batch =
  let t0 = Xr_obs.Tracing.now_ns () in
  let base = (Generation.current t.gens).Generation.index in
  let next, changed =
    List.fold_left
      (fun (idx, changed) tree ->
        let idx, kws = Index.append_partition_delta idx tree in
        (idx, List.rev_append kws changed))
      (Index.fork base, [])
      batch
  in
  (* Persist before publish, with the final [sync] as the commit point: a
     crash anywhere before it leaves the store serving the previous
     generation (buffered pages are never flushed piecemeal). *)
  Option.iter (fun kv -> Index.save_delta next kv ~changed) t.kv;
  let gen = Generation.publish t.gens next in
  Atomic.set t.docs (Atomic.get t.docs + List.length batch);
  Reg.Counter.add
    (Reg.Counter.handle docs_fam [ Generation.corpus t.gens ])
    (List.length batch);
  let ms = Int64.to_float (Int64.sub (Xr_obs.Tracing.now_ns ()) t0) /. 1e6 in
  Reg.Histogram.observe (Reg.Histogram.no_labels merge_fam) ms;
  Option.iter (fun f -> f gen) t.on_publish

let rec writer_loop t =
  let batch =
    Mutex.protect t.lock (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.nonempty t.lock
        done;
        let n = min t.config.batch_max (Queue.length t.queue) in
        List.init n (fun _ -> Queue.pop t.queue))
  in
  match batch with
  | [] -> () (* stopping and drained *)
  | batch ->
    (try merge_batch t batch
     with exn ->
       (* A poisoned batch must not kill the writer: drop it, count it,
          keep serving the current generation. *)
       Reg.Counter.add
         (Reg.Counter.handle rejected_fam [ Generation.corpus t.gens; "merge_error" ])
         (List.length batch);
       ignore exn);
    Mutex.protect t.lock (fun () ->
        t.processed <- t.processed + List.length batch;
        Condition.broadcast t.drained);
    writer_loop t

let create ?(config = default_config) ?kv ?on_publish gens =
  let t =
    {
      config;
      gens;
      kv;
      on_publish;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      submitted = 0;
      processed = 0;
      stopping = false;
      writer = None;
      docs = Atomic.make 0;
    }
  in
  Reg.Gauge.set_pull
    (Reg.Gauge.handle depth_fam [ Generation.corpus gens ])
    (fun () -> float_of_int (queue_depth t));
  t.writer <- Some (Domain.spawn (fun () -> writer_loop t));
  t

let reject t reason err =
  Reg.Counter.inc (Reg.Counter.handle rejected_fam [ Generation.corpus t.gens; reason ]);
  Error err

let submit t tree =
  let outcome =
    Mutex.protect t.lock (fun () ->
        if t.stopping then Error Shutdown
        else if Queue.length t.queue >= t.config.queue_bound then Error Queue_full
        else begin
          Queue.push tree t.queue;
          t.submitted <- t.submitted + 1;
          Condition.signal t.nonempty;
          Ok ()
        end)
  in
  match outcome with
  | Ok () ->
    Reg.Counter.inc (Reg.Counter.handle submitted_fam [ Generation.corpus t.gens ]);
    Ok ()
  | Error Queue_full -> reject t "queue_full" Queue_full
  | Error Shutdown -> reject t "shutdown" Shutdown
  | Error e -> Error e

let submit_string t xml =
  match Xr_xml.Parser.parse_string xml with
  | tree -> submit t tree
  | exception exn -> reject t "parse" (Parse (Printexc.to_string exn))

let flush t =
  Mutex.protect t.lock (fun () ->
      let target = t.submitted in
      while t.processed < target do
        Condition.wait t.drained t.lock
      done);
  Generation.current_id t.gens

let shutdown t =
  let writer =
    Mutex.protect t.lock (fun () ->
        let w = t.writer in
        t.writer <- None;
        t.stopping <- true;
        Condition.broadcast t.nonempty;
        w)
  in
  Option.iter Domain.join writer
