(** The corpus write path: a bounded queue in front of a dedicated writer
    domain.

    [submit] parses nothing and blocks on nothing: it enqueues a
    pre-parsed subtree or fails fast ([Queue_full] — callers shed load,
    e.g. HTTP 503). The writer domain drains the queue in batches,
    extends a {!Xr_index.Index.fork} of the current generation with one
    {!Xr_index.Index.append_partition_delta} per document, optionally
    persists the delta to the corpus store (single [sync] = commit
    point), and publishes the result through {!Generation.publish}.
    Readers on the old generation are never blocked; the swap is one
    atomic store.

    Documents admitted by one [submit] become visible atomically — a
    query observes either none or all of a batch's postings, never a
    half-merged list. *)

type t

type config = {
  queue_bound : int;  (** submissions rejected beyond this depth *)
  batch_max : int;  (** max documents merged into one generation *)
}

val default_config : config

type error =
  | Queue_full
  | Shutdown
  | Parse of string  (** XML rejected before it reaches the queue *)

val error_to_string : error -> string

(** [create gens] starts the writer domain for the corpus behind [gens].
    [kv] persists each published generation (see
    {!Xr_index.Index.save_delta}); omit it for memory-only serving.
    [on_publish] runs on the writer domain after each swap — the server
    hooks cache invalidation and trie rebuild here. *)
val create :
  ?config:config ->
  ?kv:Xr_store.Kv.t ->
  ?on_publish:(Generation.gen -> unit) ->
  Generation.t ->
  t

val generations : t -> Generation.t

(** [submit t tree] enqueues one document. Constant-time; never waits for
    the merge. *)
val submit : t -> Xr_xml.Tree.t -> (unit, error) result

(** [submit_string t xml] parses [xml] (rejecting malformed input as
    [Parse]) and submits it. *)
val submit_string : t -> string -> (unit, error) result

(** [flush t] blocks until every document submitted before the call has
    been published, and returns the current generation id. *)
val flush : t -> int

val queue_depth : t -> int

(** [docs_indexed t] is the number of documents merged and published. *)
val docs_indexed : t -> int

(** [shutdown t] drains the queue, publishes any remaining work, stops
    the writer domain and joins it. Subsequent submits fail with
    [Shutdown]. Idempotent. *)
val shutdown : t -> unit
