examples/paper_walkthrough.ml: Engine List Optimal_rq Printf Ranking Refined_query Result Rule Ruleset String Xr_data Xr_index Xr_refine Xr_slca Xr_xml
