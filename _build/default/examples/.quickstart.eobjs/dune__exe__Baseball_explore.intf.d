examples/baseball_explore.mli:
