examples/live_catalog.mli:
