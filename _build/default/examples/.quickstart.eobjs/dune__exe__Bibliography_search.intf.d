examples/bibliography_search.mli:
