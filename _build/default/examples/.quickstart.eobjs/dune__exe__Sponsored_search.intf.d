examples/sponsored_search.mli:
