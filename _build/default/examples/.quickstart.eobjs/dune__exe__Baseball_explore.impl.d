examples/baseball_explore.ml: List Printf String Xr_data Xr_index Xr_refine Xr_slca Xr_xml
