examples/live_catalog.ml: List Printf String Xr_index Xr_refine Xr_xml
