examples/quickstart.mli:
