examples/sponsored_search.ml: List Printf String Xr_index Xr_refine Xr_xml
