examples/bibliography_search.ml: List Printf String Xr_data Xr_index Xr_refine Xr_xml
