(* A guided tour of the paper on its own running example: Figure 1 and
   the worked Examples 1, 3 and 4, each printed with the machinery that
   resolves it — living documentation for the reproduction.

     dune exec examples/paper_walkthrough.exe *)

open Xr_refine
module Index = Xr_index.Index

let section title =
  Printf.printf "\n=== %s\n" title

let () =
  let index = Index.build (Xr_data.Figure1.doc ()) in
  let doc = index.Index.doc in

  section "Figure 1: the bibliographic document";
  print_string (Xr_xml.Printer.to_string doc.Xr_xml.Doc.tree);

  section "Section III-A: search-for node inference (Formula 1)";
  let show_candidates q =
    let ids = List.filter_map (Xr_xml.Doc.keyword_id doc) q in
    Printf.printf "query {%s} searches for:\n" (String.concat ", " q);
    List.iter
      (fun (p, c) ->
        Printf.printf "  %-40s confidence %.4f\n" (Xr_xml.Doc.path_string doc p) c)
      (Xr_slca.Search_for.infer index.Index.stats ids)
  in
  show_candidates [ "john"; "xml"; "2003" ];

  section "Example 1: term mismatch — {database, publication}";
  Printf.printf
    "the data says proceedings/article/inproceedings, so the query matches nothing:\n";
  Printf.printf "  needs refinement? %b\n"
    (Engine.needs_refinement index [ "database"; "publication" ]);
  let resp = Engine.refine index [ "database"; "publication" ] in
  print_endline (Result.describe doc resp.Engine.result);

  section "Table I, Q4 flavor: overconstrained — {john, xml, 2003}";
  let slcas = Xr_slca.Engine.query Xr_slca.Engine.Stack index [ "john"; "xml"; "2003" ] in
  Printf.printf "plain SLCA finds only %s — the meaningless root (Definition 3.3)\n"
    (String.concat ", " (List.map (Xr_xml.Doc.label doc) slcas));
  let resp = Engine.refine index [ "john"; "xml"; "2003" ] in
  print_endline (Result.describe doc resp.Engine.result);

  section "Example 3: the dynamic program (Section V)";
  let rules =
    Ruleset.of_rules
      [
        Rule.synonym "article" "inproceedings";
        Rule.merging [ "learn"; "ing" ] "learning";
        Rule.acronym_expand "www" [ "world"; "wide"; "web" ];
      ]
  in
  let t = [ "machine"; "inproceedings"; "learning"; "world"; "wide"; "web" ] in
  let q = [ "www"; "article"; "machine"; "learning" ] in
  Printf.printf "Q = {%s}, T = {%s}\n" (String.concat ", " q) (String.concat ", " t);
  (match Optimal_rq.optimal ~rules ~available:(fun k -> List.mem k t) q with
  | Some rq ->
    Printf.printf "optimal RQ = %s\n  via %s\n"
      (Refined_query.to_string rq)
      (String.concat "; " (Refined_query.operations rq))
  | None -> print_endline "no refinement");

  section "Example 4: term merging — {on, line, data, base}";
  let q = [ "on"; "line"; "data"; "base" ] in
  let resp = Engine.refine ~config:{ Engine.default_config with k = 3 } index q in
  print_endline "mined rules:";
  List.iter (fun r -> Printf.printf "  %s\n" (Rule.to_string r)) resp.Engine.rules_used;
  print_endline (Result.describe doc resp.Engine.result);
  (match resp.Engine.result with
  | Result.Refined ({ Result.rq; _ } :: _) ->
    print_endline "\nwhy the winner ranks first (Section IV):";
    print_endline (Ranking.explain index.Index.stats ~original:q rq)
  | _ -> ());

  section "Definition 3.4 in action: a matching query is left alone";
  match Engine.refine index [ "xml"; "2003" ] with
  | { Engine.result = Result.Original slcas; _ } ->
    Printf.printf "{xml, 2003} matched directly: %s\n"
      (String.concat ", " (List.map (Xr_xml.Doc.label doc) slcas))
  | _ -> print_endline "unexpected"
