(* Quickstart: index a document, search it, and let XRefine repair a
   broken query — the whole public API in ~40 lines.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Parse and index an XML document (here: the paper's Figure 1). *)
  let index = Xr_index.Index.of_string (Xr_data.Figure1.text ()) in
  let doc = index.Xr_index.Index.doc in

  (* 2. A well-formed query: plain meaningful-SLCA search finds it. *)
  let q_good = [ "xml"; "2003" ] in
  Printf.printf "search {%s}:\n" (String.concat ", " q_good);
  List.iter
    (fun dewey -> Printf.printf "  -> %s\n" (Xr_xml.Doc.label doc dewey))
    (Xr_refine.Engine.search index q_good);

  (* 3. A broken query: the user split "online" and "database" into
     pieces, so the conjunctive search matches nothing meaningful. *)
  let q_bad = [ "on"; "line"; "data"; "base" ] in
  Printf.printf "\nsearch {%s}: %s\n"
    (String.concat ", " q_bad)
    (if Xr_refine.Engine.refine index q_bad |> fun r ->
        (match r.Xr_refine.Engine.result with Xr_refine.Result.Original _ -> false | _ -> true)
     then "no meaningful result - refining automatically"
     else "found");

  (* 4. Automatic refinement: rules are mined from the document and the
     built-in thesaurus; the Top-K refined queries come back with their
     SLCA results, within a single scan of the inverted lists. *)
  let response = Xr_refine.Engine.refine index q_bad in
  print_endline (Xr_refine.Result.describe doc response.Xr_refine.Engine.result);

  (* 5. Inspect what the engine consulted. *)
  print_endline "\nrules the engine mined for this query:";
  List.iter
    (fun r -> Printf.printf "  %s\n" (Xr_refine.Rule.to_string r))
    response.Xr_refine.Engine.rules_used
