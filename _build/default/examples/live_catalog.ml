(* A live product catalog: demonstrates incremental index maintenance
   (Index.append_partition) together with the fully adaptive pipeline
   (Engine.auto) — queries that fail before an item arrives succeed after,
   without ever rebuilding the index.

     dune exec examples/live_catalog.exe *)

module Index = Xr_index.Index
module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

let show index label query =
  let doc = index.Index.doc in
  Printf.printf "%-28s {%s} -> " label (String.concat " " query);
  match Engine.auto index query with
  | Engine.Matched slcas ->
    Printf.printf "matched: %s\n"
      (String.concat ", " (List.map (Xr_xml.Doc.label doc) slcas))
  | Engine.Auto_refined resp -> (
    match resp.Engine.result with
    | Result.Refined ({ Result.rq; slcas; _ } :: _) ->
      Printf.printf "refined to %s: %s\n"
        (Xr_refine.Refined_query.to_string rq)
        (String.concat ", " (List.map (Xr_xml.Doc.label doc) slcas))
    | _ -> print_endline "nothing matches")
  | Engine.Narrowed (results, suggestions) ->
    Printf.printf "%d results; narrow with %s\n" (List.length results)
      (String.concat " / "
         (List.map (fun (s : Xr_refine.Specialize.suggestion) -> "+" ^ s.Xr_refine.Specialize.added)
            suggestions))

let product name description price =
  Xr_xml.Tree.elem "product"
    [
      Xr_xml.Tree.Elem (Xr_xml.Tree.leaf "name" name);
      Xr_xml.Tree.Elem (Xr_xml.Tree.leaf "description" description);
      Xr_xml.Tree.Elem (Xr_xml.Tree.leaf "price" (string_of_int price));
    ]

let () =
  let index =
    ref
      (Index.of_string
         {|<catalog>
  <product><name>walnut desk</name><description>solid walnut writing desk</description><price>420</price></product>
  <product><name>oak bookshelf</name><description>five shelf oak bookcase</description><price>260</price></product>
</catalog>|})
  in
  print_endline "--- initial catalog (2 products)";
  show !index "lookup" [ "walnut"; "desk" ];
  show !index "typo" [ "bookshelff" ];
  show !index "not stocked yet" [ "standing"; "desk" ];

  print_endline "\n--- a shipment arrives: three products appended incrementally";
  index := Index.append_partition !index (product "standing desk" "electric standing desk frame" 680);
  index := Index.append_partition !index (product "desk lamp" "brass desk lamp warm light" 75);
  index := Index.append_partition !index (product "walnut chair" "walnut side chair" 150);

  show !index "now stocked" [ "standing"; "desk" ];
  show !index "typo, new item" [ "lampp"; "desk" ];
  show !index "broad query" [ "desk" ];
  show !index "glued words" [ "walnutchair" ]
