(* Bibliographic search: the paper's motivating scenario on a DBLP-like
   corpus. A researcher types queries with typos, glued words and
   wrong-vocabulary terms; XRefine repairs each one and explains itself.

     dune exec examples/bibliography_search.exe *)

module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

let () =
  Printf.printf "building a synthetic DBLP corpus...\n%!";
  let index =
    Xr_index.Index.build
      (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 1500 } ())
  in
  let doc = index.Xr_index.Index.doc in
  Printf.printf "corpus: %d element nodes, %d distinct keywords\n\n"
    (Xr_xml.Doc.node_count doc)
    (List.length (Xr_xml.Doc.vocabulary doc));

  (* Queries a user might actually type. Some match as-is, some don't. *)
  let sessions =
    [
      ("clean query", [ "database"; "query" ]);
      ("typo", [ "databse"; "optimization" ]);
      ("wrongly split word", [ "key"; "word"; "search" ]);
      ("wrongly glued words", [ "dataanalysis" ]);
      ("acronym for spelled-out phrase", [ "ml"; "model" ]);
      ("synonym mismatch", [ "fast"; "indexing" ]);
      ("overconstrained", [ "distributed"; "system"; "zzyzx" ]);
    ]
  in
  List.iter
    (fun (label, query) ->
      Printf.printf "--- %s: {%s}\n" label (String.concat ", " query);
      let config = { Engine.default_config with k = 3 } in
      let response = Engine.refine ~config index query in
      (match response.Engine.result with
      | Result.Original slcas ->
        Printf.printf "matched directly: %d result(s), e.g. %s\n" (List.length slcas)
          (match slcas with d :: _ -> Xr_xml.Doc.label doc d | [] -> "-")
      | Result.No_result -> print_endline "nothing found and nothing to refine"
      | Result.Refined matches ->
        List.iteri
          (fun i (m : Result.rq_match) ->
            Printf.printf "  #%d %s -> %d result(s)%s\n" (i + 1)
              (Xr_refine.Refined_query.to_string m.Result.rq)
              (List.length m.Result.slcas)
              (match m.Result.slcas with
              | d :: _ -> ", first: " ^ Xr_xml.Doc.label doc d
              | [] -> ""))
          matches);
      print_newline ())
    sessions;

  (* Show one full result subtree, the way a UI would render it. *)
  let response = Engine.refine index [ "databse"; "optimization" ] in
  match response.Engine.result with
  | Result.Refined ({ Result.slcas = d :: _; _ } :: _) -> (
    match Xr_xml.Doc.subtree doc d with
    | Some t ->
      print_endline "a repaired query's first result, as XML:";
      print_string (Xr_xml.Printer.to_string t)
    | None -> ())
  | _ -> ()
