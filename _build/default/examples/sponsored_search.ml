(* Sponsored search: the paper's Section I application — matching a large
   stream of free-form user queries against a *small* corpus of
   XML-formatted advertising listings. Most queries don't match any ad
   verbatim; automatic refinement decides, per query and within one index
   scan, whether a close variant does.

     dune exec examples/sponsored_search.exe *)

module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

(* A small ad inventory, one listing per advertiser. *)
let inventory =
  {|<ads>
  <listing>
    <advertiser>CloudBase Inc</advertiser>
    <product>online database hosting</product>
    <category>cloud storage</category>
    <bid>120</bid>
  </listing>
  <listing>
    <advertiser>QueryWorks</advertiser>
    <product>keyword search appliance</product>
    <category>enterprise search</category>
    <bid>95</bid>
  </listing>
  <listing>
    <advertiser>StreamLine</advertiser>
    <product>realtime stream processing</product>
    <category>analytics</category>
    <bid>110</bid>
  </listing>
  <listing>
    <advertiser>LearnFast</advertiser>
    <product>machine learning training courses</product>
    <category>education</category>
    <bid>80</bid>
  </listing>
  <listing>
    <advertiser>SafeKeep</advertiser>
    <product>encrypted backup storage</product>
    <category>security</category>
    <bid>70</bid>
  </listing>
</ads>|}

(* The incoming query stream, as users actually type. *)
let query_stream =
  [
    [ "online"; "database" ];       (* exact vocabulary *)
    [ "on"; "line"; "data"; "base" ]; (* split words *)
    [ "keywordsearch" ];            (* glued words *)
    [ "ml"; "courses" ];            (* acronym *)
    [ "encripted"; "backup" ];      (* typo *)
    [ "cheap"; "flights" ];         (* no ad should match *)
  ]

let () =
  let index = Xr_index.Index.of_string inventory in
  let doc = index.Xr_index.Index.doc in
  Printf.printf "ad inventory: %d listings\n\n"
    (List.length (Xr_xml.Tree.element_children doc.Xr_xml.Doc.tree));
  List.iter
    (fun query ->
      Printf.printf "user query {%s}\n" (String.concat " " query);
      let response = Engine.refine ~config:{ Engine.default_config with k = 1 } index query in
      (match response.Engine.result with
      | Result.Original (d :: _) ->
        Printf.printf "  direct hit -> serve ad at %s\n" (Xr_xml.Doc.label doc d)
      | Result.Refined ({ Result.rq; slcas = d :: _; _ } :: _) ->
        Printf.printf "  refined to %s -> serve ad at %s\n"
          (Xr_refine.Refined_query.to_string rq)
          (Xr_xml.Doc.label doc d)
      | Result.Original [] | Result.Refined _ | Result.No_result ->
        print_endline "  no ad matches - organic results only");
      print_newline ())
    query_stream
