(* Exploring a deeply structured document: the Baseball corpus. Shows the
   search-for node inference at work (what is the user looking for — a
   player, a team, a division?), the four SLCA engines agreeing, and
   refinement over a low-vocabulary domain.

     dune exec examples/baseball_explore.exe *)

module Index = Xr_index.Index
module Slca = Xr_slca.Engine
module Engine = Xr_refine.Engine
module Result = Xr_refine.Result

let () =
  let index = Index.build (Xr_data.Baseball.doc ()) in
  let doc = index.Index.doc in
  Printf.printf "season document: %d nodes, depth %d\n\n" (Xr_xml.Doc.node_count doc)
    (Xr_xml.Tree.depth doc.Xr_xml.Doc.tree);

  (* 1. Search-for inference: which node type does each query target? *)
  let show_search_for query =
    let ids = List.filter_map (Xr_xml.Doc.keyword_id doc) query in
    Printf.printf "{%s} searches for:\n" (String.concat " " query);
    List.iter
      (fun (p, conf) ->
        Printf.printf "  %-40s confidence %.3f\n" (Xr_xml.Doc.path_string doc p) conf)
      (Xr_slca.Search_for.infer index.Index.stats ids)
  in
  show_search_for [ "pitcher"; "smith" ];
  show_search_for [ "team"; "east" ];
  print_newline ();

  (* 2. The four SLCA engines compute the same answer by different means. *)
  let q = [ "pitcher"; "boston" ] in
  Printf.printf "SLCA({%s}) by all four engines:\n" (String.concat " " q);
  List.iter
    (fun alg ->
      let results = Slca.query alg index q in
      Printf.printf "  %-16s %d result(s)%s\n" (Slca.name alg) (List.length results)
        (match results with d :: _ -> ": first " ^ Xr_xml.Doc.label doc d | [] -> ""))
    Slca.all;
  print_newline ();

  (* 3. Refinement in a low-vocabulary domain: a misspelled position and a
     synonym the data never uses. *)
  List.iter
    (fun query ->
      Printf.printf "refine {%s}:\n" (String.concat " " query);
      let response = Engine.refine ~config:{ Engine.default_config with k = 2 } index query in
      (match response.Engine.result with
      | Result.Original slcas -> Printf.printf "  no refinement needed (%d results)\n" (List.length slcas)
      | Result.No_result -> print_endline "  nothing found"
      | Result.Refined matches ->
        List.iter
          (fun (m : Result.rq_match) ->
            Printf.printf "  %s -> %d result(s)\n"
              (Xr_refine.Refined_query.to_string m.Result.rq)
              (List.length m.Result.slcas))
          matches);
      print_newline ())
    [ [ "picher"; "detroit" ]; [ "hurler"; "twins" ]; [ "shortstop"; "chicago"; "1999" ] ]
