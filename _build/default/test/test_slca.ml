open Xr_xml
module Inverted = Xr_index.Inverted
module Index = Xr_index.Index
module Engine = Xr_slca.Engine
module Search_for = Xr_slca.Search_for
module Meaningful = Xr_slca.Meaningful
module Scan_eager_batch = Xr_slca.Scan_eager

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let fig1 = lazy (Index.build (Xr_data.Figure1.doc ()))

let small_dblp =
  lazy
    (Index.build
       (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 120 } ()))

let baseball = lazy (Index.build (Xr_data.Baseball.doc ()))

let lists_of index keywords =
  List.map
    (fun k ->
      match Doc.keyword_id index.Index.doc k with
      | Some kw -> Inverted.list index.Index.inverted kw
      | None -> [||])
    keywords

(* Reference implementation: a node is an SLCA iff its subtree contains
   every keyword and no child subtree does too. *)
let brute_force index keywords =
  let doc = index.Index.doc in
  let lists = lists_of index keywords in
  if List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let contains_all dewey =
      List.for_all
        (fun list ->
          Array.exists (fun (p : Inverted.posting) -> Dewey.is_prefix dewey p.Inverted.dewey) list)
        lists
    in
    Array.to_list doc.Doc.nodes
    |> List.filter_map (fun (n : Doc.node) ->
           if not (contains_all n.Doc.dewey) then None
           else begin
             let proper_descendant_has =
               Array.exists
                 (fun (m : Doc.node) ->
                   Dewey.depth m.Doc.dewey > Dewey.depth n.Doc.dewey
                   && Dewey.is_prefix n.Doc.dewey m.Doc.dewey
                   && contains_all m.Doc.dewey)
                 doc.Doc.nodes
             in
             if proper_descendant_has then None else Some n.Doc.dewey
           end)
  end

let dewey_list = Alcotest.testable (Fmt.Dump.list Dewey.pp) (List.equal Dewey.equal)

let run_all index keywords =
  List.map (fun alg -> (alg, Engine.compute alg (lists_of index keywords))) Engine.all

let assert_all_agree index keywords =
  let expected = brute_force index keywords in
  List.iter
    (fun (alg, got) ->
      check dewey_list
        (Printf.sprintf "%s on {%s}" (Engine.name alg) (String.concat "," keywords))
        expected got)
    (run_all index keywords)

(* ---- unit: figure 1 ----------------------------------------------------- *)

let test_fig1_basic () =
  let index = Lazy.force fig1 in
  List.iter (assert_all_agree index)
    [
      [ "xml"; "2003" ];
      [ "xml" ];
      [ "john" ];
      [ "on"; "line" ];
      [ "online"; "database" ];
      [ "john"; "xml"; "2003" ];
      [ "web"; "games" ];
      [ "title"; "year" ];
      [ "author" ];
      [ "bib" ];
      [ "nonexistentkeyword" ];
      [ "xml"; "nonexistentkeyword" ];
    ]

let test_fig1_expected_values () =
  let index = Lazy.force fig1 in
  let got = Engine.query Engine.Stack index [ "xml"; "2003" ] in
  check
    (Alcotest.list Alcotest.string)
    "slca(xml,2003)"
    [ "0.1.1.0"; "0.1.1.1" ]
    (List.map Dewey.to_string got);
  (* scattered keywords meet only at the root *)
  let got = Engine.query Engine.Scan_eager index [ "web"; "games" ] in
  check (Alcotest.list Alcotest.string) "root slca" [ "0" ] (List.map Dewey.to_string got);
  (* duplicate keywords in the query collapse *)
  let got = Engine.query Engine.Multiway index [ "xml"; "XML"; "xml" ] in
  check Alcotest.int "dup keywords" 2 (List.length got)

let test_empty_inputs () =
  check dewey_list "no lists" [] (Engine.compute Engine.Stack []);
  check dewey_list "empty list among inputs" [] (Engine.compute Engine.Scan_eager [ [||] ]);
  let index = Lazy.force fig1 in
  check dewey_list "oov keyword" [] (Engine.query Engine.Indexed_lookup index [ "zzz"; "xml" ])

(* ---- generated corpora: all four engines = brute force ------------------- *)

let sample_keywords rng doc n =
  let vocab = Array.of_list (Doc.vocabulary doc) in
  List.init n (fun _ -> vocab.(Xr_data.Rng.int rng (Array.length vocab)))

let agree_on_corpus index seed runs =
  let rng = Xr_data.Rng.create seed in
  for _ = 1 to runs do
    let n = 1 + Xr_data.Rng.int rng 3 in
    let keywords = List.sort_uniq String.compare (sample_keywords rng index.Index.doc n) in
    assert_all_agree index keywords
  done

let test_agree_dblp () = agree_on_corpus (Lazy.force small_dblp) 31 40

let test_agree_baseball () = agree_on_corpus (Lazy.force baseball) 32 40

(* random tiny documents: stress the stack/anchor logic on odd shapes *)
let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let word = oneofl [ "x"; "y"; "z"; "w" ] in
  let rec node depth =
    if depth = 0 then map2 Tree.leaf tag word
    else
      frequency
        [
          (1, map2 Tree.leaf tag word);
          ( 2,
            (fun st ->
              let tg = tag st in
              let w = word st in
              let children = list_size (int_bound 4) (node (depth - 1)) st in
              Tree.elem tg (Tree.Text w :: List.map (fun c -> Tree.Elem c) children)) );
        ]
  in
  node 3

let arb_doc_query =
  QCheck.make
    ~print:(fun (t, q) -> Xr_xml.Printer.to_string t ^ "\nquery: " ^ String.concat "," q)
    QCheck.Gen.(
      pair gen_doc (list_size (int_range 1 3) (oneofl [ "x"; "y"; "z"; "w"; "a"; "b" ])))

let prop_engines_agree =
  QCheck.Test.make ~name:"all engines equal brute force on random docs" ~count:300 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let keywords = List.sort_uniq String.compare query in
      let expected = brute_force index keywords in
      List.for_all (fun (_, got) -> List.equal Dewey.equal expected got) (run_all index keywords))

(* Lemma 1: a subset query's SLCA set is non-empty whenever the superset's is *)
let prop_lemma1_monotone =
  QCheck.Test.make ~name:"Lemma 1: subset keeps non-empty results" ~count:200 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let keywords = List.sort_uniq String.compare query in
      match keywords with
      | [] | [ _ ] -> true
      | _ :: rest ->
        let super = Engine.compute Engine.Stack (lists_of index keywords) in
        let sub = Engine.compute Engine.Stack (lists_of index rest) in
        super = [] || sub <> [])

(* SLCA results never nest *)
let prop_results_incomparable =
  QCheck.Test.make ~name:"SLCA results are pairwise incomparable" ~count:300 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let keywords = List.sort_uniq String.compare query in
      let results = Engine.compute Engine.Multiway (lists_of index keywords) in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Dewey.equal a b || not (Dewey.is_prefix a b || Dewey.is_prefix b a))
            results)
        results)


(* ---- ELCA ------------------------------------------------------------------ *)

(* Reference: v is an ELCA iff every keyword has a witness under v that is
   not covered by a proper descendant of v whose subtree contains all
   keywords. *)
let brute_force_elca index keywords =
  let doc = index.Index.doc in
  let lists = lists_of index keywords in
  if lists = [] || List.exists (fun l -> Array.length l = 0) lists then []
  else begin
    let contains_all dewey =
      List.for_all
        (fun list ->
          Array.exists (fun (p : Inverted.posting) -> Dewey.is_prefix dewey p.Inverted.dewey) list)
        lists
    in
    let all_containers =
      Array.to_list doc.Doc.nodes
      |> List.filter_map (fun (n : Doc.node) ->
             if contains_all n.Doc.dewey then Some n.Doc.dewey else None)
    in
    Array.to_list doc.Doc.nodes
    |> List.filter_map (fun (n : Doc.node) ->
           let v = n.Doc.dewey in
           let ok =
             List.for_all
               (fun list ->
                 Array.exists
                   (fun (p : Inverted.posting) ->
                     Dewey.is_prefix v p.Inverted.dewey
                     && not
                          (List.exists
                             (fun x ->
                               Dewey.depth x > Dewey.depth v
                               && Dewey.is_prefix v x && Dewey.is_prefix x p.Inverted.dewey)
                             all_containers))
                   list)
               lists
           in
           if ok then Some v else None)
  end

let test_elca_fig1 () =
  let index = Lazy.force fig1 in
  List.iter
    (fun keywords ->
      let expected = brute_force_elca index keywords in
      let got = Xr_slca.Elca.compute (lists_of index keywords) in
      check dewey_list (Printf.sprintf "elca {%s}" (String.concat "," keywords)) expected got)
    [
      [ "xml"; "2003" ]; [ "xml" ]; [ "john" ]; [ "title"; "year" ]; [ "author" ];
      [ "web"; "games" ]; [ "online"; "database" ]; [ "missingkw" ];
    ]

let test_elca_superset_of_slca () =
  (* every SLCA is an ELCA *)
  let index = Lazy.force small_dblp in
  let rng = Xr_data.Rng.create 77 in
  for _ = 1 to 25 do
    let n = 1 + Xr_data.Rng.int rng 2 in
    let keywords = List.sort_uniq String.compare (sample_keywords rng index.Index.doc n) in
    let slca = Engine.compute Engine.Stack (lists_of index keywords) in
    let elca = Xr_slca.Elca.compute (lists_of index keywords) in
    List.iter
      (fun s ->
        if not (List.exists (Dewey.equal s) elca) then
          Alcotest.failf "SLCA %s missing from ELCA set for {%s}" (Dewey.to_string s)
            (String.concat "," keywords))
      slca
  done

let prop_elca_brute_force =
  QCheck.Test.make ~name:"ELCA equals brute force on random docs" ~count:300 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let keywords = List.sort_uniq String.compare query in
      let expected = brute_force_elca index keywords in
      let got = Xr_slca.Elca.compute (lists_of index keywords) in
      List.equal Dewey.equal expected got)

(* ---- search-for inference ------------------------------------------------ *)

let kw index k =
  match Doc.keyword_id index.Index.doc k with
  | Some id -> id
  | None -> Alcotest.failf "missing keyword %s" k

let test_search_for_fig1 () =
  let index = Lazy.force fig1 in
  let ids = List.map (kw index) [ "john"; "xml"; "2003" ] in
  match Search_for.infer index.Index.stats ids with
  | (best, conf) :: _ ->
    check Alcotest.string "author is the search-for node" "/bib/author"
      (Doc.path_string index.Index.doc best);
    check Alcotest.bool "confidence positive" true (conf > 0.)
  | [] -> Alcotest.fail "no candidate inferred"

let test_search_for_config () =
  let index = Lazy.force fig1 in
  let ids = [ kw index "xml" ] in
  (* root excluded by default *)
  let cands = Search_for.infer index.Index.stats ids in
  check Alcotest.bool "root excluded" true
    (List.for_all (fun (p, _) -> p <> index.Index.doc.Doc.root_path) cands);
  let with_root =
    Search_for.infer
      ~config:
        {
          Search_for.default_config with
          include_root = true;
          threshold = 0.;
          max_candidates = 100;
          min_instances = 1;
        }
      index.Index.stats ids
  in
  check Alcotest.bool "root admitted when configured" true
    (List.exists (fun (p, _) -> p = index.Index.doc.Doc.root_path) with_root);
  (* max_candidates cap *)
  let capped =
    Search_for.infer
      ~config:{ Search_for.default_config with threshold = 0.; max_candidates = 2 }
      index.Index.stats ids
  in
  check Alcotest.bool "cap respected" true (List.length capped <= 2);
  (* empty keyword list -> no candidates *)
  check Alcotest.int "no keywords" 0 (List.length (Search_for.infer index.Index.stats []))

let test_search_for_monotone_confidence () =
  let index = Lazy.force fig1 in
  (* confidence grows when more query keywords hit the subtree *)
  let author =
    let doc = index.Index.doc in
    let found = ref None in
    Path.iter
      (fun p -> if String.equal (Doc.path_string doc p) "/bib/author" then found := Some p)
      doc.Doc.paths;
    Option.get !found
  in
  let c1 = Search_for.confidence index.Index.stats [ kw index "xml" ] author in
  let c2 = Search_for.confidence index.Index.stats [ kw index "xml"; kw index "john" ] author in
  check Alcotest.bool "more hits, more confidence" true (c2 > c1)

(* ---- meaningful SLCA ------------------------------------------------------ *)

let test_meaningful_fig1 () =
  let index = Lazy.force fig1 in
  let ids = List.map (kw index) [ "john"; "xml"; "2003" ] in
  let ctx = Meaningful.make index.Index.stats ids in
  (* the root-only SLCA of {john,xml,2003} is not meaningful *)
  let slcas = Engine.query Engine.Stack index [ "john"; "xml"; "2003" ] in
  check (Alcotest.list Alcotest.string) "root is the slca" [ "0" ] (List.map Dewey.to_string slcas);
  check dewey_list "root filtered out" [] (Meaningful.filter ctx slcas);
  (* inproceedings results of {xml,2003} are meaningful (under author) *)
  let slcas2 = Engine.query Engine.Stack index [ "xml"; "2003" ] in
  check Alcotest.int "inproceedings kept" 2 (List.length (Meaningful.filter ctx slcas2));
  (* downward closure: a node deeper than a meaningful node is meaningful *)
  check Alcotest.bool "descendant meaningful" true
    (Meaningful.is_meaningful_dewey ctx (Dewey.of_string "0.1.1.0.0"));
  check Alcotest.bool "unknown dewey" false
    (Meaningful.is_meaningful_dewey ctx (Dewey.of_string "0.9.9"))

let test_needs_refinement_definition () =
  let index = Lazy.force fig1 in
  (* Definition 3.4 via the composed pipeline *)
  let ids = List.map (kw index) [ "xml"; "2003" ] in
  let ctx = Meaningful.make index.Index.stats ids in
  let res =
    Meaningful.compute ctx (Engine.compute Engine.Scan_eager) (lists_of index [ "xml"; "2003" ])
  in
  check Alcotest.bool "query with meaningful results" true (res <> [])

(* ---- interconnection (XSEarch) ----------------------------------------------- *)

let test_interconnection_relation () =
  let index = Lazy.force fig1 in
  let doc = index.Index.doc in
  let d = Dewey.of_string in
  (* within one author: name and a title are interconnected *)
  check Alcotest.bool "same author" true
    (Xr_slca.Interconnection.related doc (d "0.0.0") (d "0.0.1.0.0"));
  (* across two authors: the path passes through two <author> nodes *)
  check Alcotest.bool "different authors" false
    (Xr_slca.Interconnection.related doc (d "0.0.0") (d "0.1.0"));
  (* ancestor/descendant always related *)
  check Alcotest.bool "ancestor" true
    (Xr_slca.Interconnection.related doc (d "0.0") (d "0.0.1.0.0"));
  check Alcotest.bool "self" true (Xr_slca.Interconnection.related doc (d "0.0") (d "0.0"));
  (* two inproceedings of the SAME author still pass through two
     <inproceedings> nodes -> not interconnected *)
  check Alcotest.bool "two inproceedings" false
    (Xr_slca.Interconnection.related doc (d "0.0.1.0.0") (d "0.0.1.1.0"));
  check Alcotest.bool "unknown label" false
    (Xr_slca.Interconnection.related doc (d "0.9") (d "0.0"))

let test_interconnection_filter () =
  let index = Lazy.force fig1 in
  (* {xml, 2003}: witnesses inside one inproceedings -> interconnected *)
  let slcas = Engine.query Engine.Stack index [ "xml"; "2003" ] in
  check Alcotest.int "kept" 2
    (List.length (Xr_slca.Interconnection.filter index [ "xml"; "2003" ] slcas));
  (* {web, games}: only common ancestor is the root, witnesses live under
     two different <author> nodes -> filtered out *)
  let slcas = Engine.query Engine.Stack index [ "web"; "games" ] in
  check Alcotest.int "root-spanning filtered" 0
    (List.length (Xr_slca.Interconnection.filter index [ "web"; "games" ] slcas))

let test_witness_choice () =
  let index = Lazy.force fig1 in
  let doc = index.Index.doc in
  let d = Dewey.of_string in
  (* a valid choice exists *)
  (match
     Xr_slca.Interconnection.witness_choice doc
       ~per_keyword:[ [ d "0.0.0" ]; [ d "0.0.1.0.0"; d "0.1.0" ] ]
   with
  | Some [ a; b ] ->
    check Alcotest.bool "chose the interconnected pair" true
      (Dewey.equal a (d "0.0.0") && Dewey.equal b (d "0.0.1.0.0"))
  | _ -> Alcotest.fail "expected a choice");
  (* impossible: both candidates cross authors *)
  check Alcotest.bool "no choice" true
    (Xr_slca.Interconnection.witness_choice doc
       ~per_keyword:[ [ d "0.0.0" ]; [ d "0.1.0" ] ]
    = None);
  check Alcotest.bool "empty keyword list" true
    (Xr_slca.Interconnection.witness_choice doc ~per_keyword:[ [ d "0.0.0" ]; [] ] = None)

(* ---- streaming ----------------------------------------------------------------- *)

let test_stream_equals_batch () =
  let indexes = [ Lazy.force fig1; Lazy.force small_dblp; Lazy.force baseball ] in
  let rng = Xr_data.Rng.create 808 in
  List.iter
    (fun index ->
      for _ = 1 to 15 do
        let n = 1 + Xr_data.Rng.int rng 3 in
        let keywords = List.sort_uniq String.compare (sample_keywords rng index.Index.doc n) in
        let lists = lists_of index keywords in
        let batch = Scan_eager_batch.compute lists in
        let streamed = ref [] in
        Xr_slca.Stream.iter lists (fun d ->
            streamed := d :: !streamed;
            true);
        check dewey_list
          (Printf.sprintf "stream = batch on {%s}" (String.concat "," keywords))
          batch (List.rev !streamed)
      done)
    indexes

and _module_alias_hack = ()

let test_stream_early_stop () =
  let index = Lazy.force small_dblp in
  (* a keyword present in every publication: plenty of results *)
  let lists = lists_of index [ "author" ] in
  let all = Scan_eager_batch.compute lists in
  if List.length all > 3 then begin
    let firsts = Xr_slca.Stream.first_n lists 3 in
    check Alcotest.int "exactly n" 3 (List.length firsts);
    check dewey_list "prefix of the batch" (List.filteri (fun i _ -> i < 3) all) firsts
  end

let prop_stream_equals_batch =
  QCheck.Test.make ~name:"stream SLCA = batch SLCA on random docs" ~count:300 arb_doc_query
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let keywords = List.sort_uniq String.compare query in
      let lists = lists_of index keywords in
      let batch = Scan_eager_batch.compute lists in
      let streamed = ref [] in
      Xr_slca.Stream.iter lists (fun d ->
          streamed := d :: !streamed;
          true);
      List.equal Dewey.equal batch (List.rev !streamed))

(* ---- snippets --------------------------------------------------------------- *)

let test_snippets () =
  let index = Lazy.force fig1 in
  let doc = index.Index.doc in
  let ids = List.map (kw index) [ "xml"; "2003" ] in
  let s = Xr_slca.Snippet.of_result doc ~query:ids (Dewey.of_string "0.1.1.0") in
  check Alcotest.bool "mentions the matching field" true
    (String.length s > 0 && String.sub s 0 5 = "title");
  check Alcotest.bool "highlights xml" true
    (let rec contains i =
       i + 5 <= String.length s && (String.sub s i 5 = "[xml]" || contains (i + 1))
     in
     contains 0);
  (* fallback: no matching keyword still yields some text *)
  let none = Xr_slca.Snippet.of_result doc ~query:[] (Dewey.of_string "0.1.1.0") in
  check Alcotest.bool "fallback text" true (String.length none > 0);
  check Alcotest.string "unknown label" "" (Xr_slca.Snippet.of_result doc ~query:ids (Dewey.of_string "0.9"))

let () =
  Alcotest.run "xr_slca"
    [
      ( "engines",
        [
          Alcotest.test_case "figure 1 agreement" `Quick test_fig1_basic;
          Alcotest.test_case "figure 1 expected values" `Quick test_fig1_expected_values;
          Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
          Alcotest.test_case "agreement on dblp" `Quick test_agree_dblp;
          Alcotest.test_case "agreement on baseball" `Quick test_agree_baseball;
          qcheck prop_engines_agree;
          qcheck prop_lemma1_monotone;
          qcheck prop_results_incomparable;
        ] );
      ( "elca",
        [
          Alcotest.test_case "figure 1 vs brute force" `Quick test_elca_fig1;
          Alcotest.test_case "contains every SLCA" `Quick test_elca_superset_of_slca;
          qcheck prop_elca_brute_force;
        ] );
      ( "search-for",
        [
          Alcotest.test_case "figure 1 inference" `Quick test_search_for_fig1;
          Alcotest.test_case "configuration" `Quick test_search_for_config;
          Alcotest.test_case "confidence monotone" `Quick test_search_for_monotone_confidence;
        ] );
      ( "interconnection",
        [
          Alcotest.test_case "relation" `Quick test_interconnection_relation;
          Alcotest.test_case "filter" `Quick test_interconnection_filter;
          Alcotest.test_case "witness choice" `Quick test_witness_choice;
        ] );
      ( "stream",
        [
          Alcotest.test_case "stream = batch" `Quick test_stream_equals_batch;
          Alcotest.test_case "early stop" `Quick test_stream_early_stop;
          qcheck prop_stream_equals_batch;
        ] );
      ( "snippet", [ Alcotest.test_case "highlighted fragments" `Quick test_snippets ] );
      ( "meaningful",
        [
          Alcotest.test_case "figure 1 filtering" `Quick test_meaningful_fig1;
          Alcotest.test_case "definition 3.4" `Quick test_needs_refinement_definition;
        ] );
    ]
