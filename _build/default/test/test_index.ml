open Xr_xml
module Inverted = Xr_index.Inverted
module Cursor = Xr_index.Cursor
module Stats = Xr_index.Stats
module Index = Xr_index.Index
module Kv = Xr_store.Kv

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let fig1 = lazy (Index.build (Xr_data.Figure1.doc ()))

let kw index k =
  match Doc.keyword_id index.Index.doc k with
  | Some id -> id
  | None -> Alcotest.failf "keyword %s not in document" k

let path_of index s =
  let doc = index.Index.doc in
  let found = ref None in
  Path.iter (fun p -> if String.equal (Doc.path_string doc p) s then found := Some p) doc.Doc.paths;
  match !found with Some p -> p | None -> Alcotest.failf "path %s not found" s

(* ---- inverted lists ----------------------------------------------------- *)

let test_inverted_document_order () =
  let index = Lazy.force fig1 in
  Inverted.iter
    (fun _ postings ->
      Array.iteri
        (fun i (p : Inverted.posting) ->
          if i > 0 && Dewey.compare postings.(i - 1).Inverted.dewey p.dewey >= 0 then
            Alcotest.fail "posting list out of document order")
        postings)
    index.Index.inverted

let test_inverted_contents () =
  let index = Lazy.force fig1 in
  let xml = Inverted.list index.Index.inverted (kw index "xml") in
  check Alcotest.int "xml occurs twice" 2 (Array.length xml);
  check
    (Alcotest.list Alcotest.string)
    "xml positions (title elements)"
    [ "0.1.1.0.0"; "0.1.1.1.0" ]
    (Array.to_list (Array.map (fun p -> Dewey.to_string p.Inverted.dewey) xml));
  (* tag names are indexed: every author node carries the token *)
  check Alcotest.int "author tag postings" 2
    (Array.length (Inverted.list_by_name index.Index.inverted index.Index.doc "author"));
  check Alcotest.int "absent keyword" 0
    (Array.length (Inverted.list_by_name index.Index.inverted index.Index.doc "zzz"))

let test_prefix_slice () =
  let index = Lazy.force fig1 in
  let john = Inverted.list index.Index.inverted (kw index "2003") in
  let lo, hi = Inverted.prefix_slice john (Dewey.of_string "0.1") in
  check Alcotest.int "slice covers author 0.1" 2 (hi - lo);
  let lo0, hi0 = Inverted.prefix_slice john (Dewey.of_string "0.0") in
  check Alcotest.int "no 2003 under author 0.0" 0 (hi0 - lo0);
  (* slice on the whole document *)
  let lo_r, hi_r = Inverted.prefix_slice john Dewey.root in
  check Alcotest.int "root slice is everything" (Array.length john) (hi_r - lo_r)

let prop_prefix_slice_correct =
  let index = Lazy.force fig1 in
  let doc = index.Index.doc in
  let vocab = Array.of_list (Doc.vocabulary doc) in
  let gen =
    QCheck.Gen.(
      pair (int_bound (Array.length vocab - 1)) (int_bound (Doc.node_count doc - 1)))
  in
  QCheck.Test.make ~name:"prefix_slice = filter by is_prefix" ~count:300 (QCheck.make gen)
    (fun (ki, ni) ->
      let k = vocab.(ki) in
      let node = doc.Doc.nodes.(ni) in
      let list = Inverted.list_by_name index.Index.inverted doc k in
      let lo, hi = Inverted.prefix_slice list node.Doc.dewey in
      let expected =
        Array.to_list list
        |> List.filter (fun (p : Inverted.posting) -> Dewey.is_prefix node.Doc.dewey p.dewey)
      in
      let got = Array.to_list (Array.sub list lo (hi - lo)) in
      got = expected)

(* ---- cursor ------------------------------------------------------------- *)

let test_cursor () =
  let index = Lazy.force fig1 in
  let list = Inverted.list index.Index.inverted (kw index "title") in
  let c = Cursor.make list in
  check Alcotest.int "initial position" 0 (Cursor.position c);
  check Alcotest.bool "peek" true (Cursor.peek c <> None);
  Cursor.advance c;
  check Alcotest.int "sequential count" 1 (Cursor.sequential_accesses c);
  Cursor.seek_geq c (Dewey.of_string "0.1");
  check Alcotest.bool "seek lands in 0.1" true
    (match Cursor.peek c with
    | Some p -> Dewey.is_prefix (Dewey.of_string "0.1") p.Inverted.dewey
    | None -> false);
  check Alcotest.int "random count" 1 (Cursor.random_accesses c);
  (* monotone: seeking backwards is a no-op *)
  let pos = Cursor.position c in
  Cursor.seek_geq c Dewey.root;
  check Alcotest.int "never moves backward" pos (Cursor.position c);
  while not (Cursor.at_end c) do
    Cursor.advance c
  done;
  check Alcotest.bool "exhausted" true (Cursor.peek c = None);
  Cursor.advance c;
  check Alcotest.bool "advance at end is no-op" true (Cursor.at_end c)

(* ---- statistics --------------------------------------------------------- *)

let test_stats_df_tf () =
  let index = Lazy.force fig1 in
  let stats = index.Index.stats in
  let inpro = path_of index "/bib/author/publications/inproceedings" in
  let author = path_of index "/bib/author" in
  (* the paper's example: two inproceedings contain "XML" *)
  check Alcotest.int "f_xml^inproceedings" 2 (Stats.df stats ~path:inpro ~kw:(kw index "xml"));
  check Alcotest.int "f_xml^author" 1 (Stats.df stats ~path:author ~kw:(kw index "xml"));
  check Alcotest.int "tf(xml, author)" 2 (Stats.tf stats ~path:author ~kw:(kw index "xml"));
  check Alcotest.int "f_2003^author" 1 (Stats.df stats ~path:author ~kw:(kw index "2003"));
  check Alcotest.int "tf(2003, author)" 2 (Stats.tf stats ~path:author ~kw:(kw index "2003"));
  check Alcotest.int "N_author" 2 (Stats.node_count stats author);
  check Alcotest.int "N_inproceedings" 4 (Stats.node_count stats inpro);
  (* john appears once, under author 0.0 only *)
  check Alcotest.int "f_john^author" 1 (Stats.df stats ~path:author ~kw:(kw index "john"));
  check Alcotest.int "total nodes" (Doc.node_count index.Index.doc) (Stats.total_nodes stats)

let test_stats_distinct () =
  let index = Lazy.force fig1 in
  let stats = index.Index.stats in
  let hobby = path_of index "/bib/author/hobby" in
  (* hobby subtree: tokens {hobby, on, line, games} *)
  check Alcotest.int "G_hobby" 4 (Stats.distinct_keywords stats hobby)

let test_stats_cooccur () =
  let index = Lazy.force fig1 in
  let stats = index.Index.stats in
  let inpro = path_of index "/bib/author/publications/inproceedings" in
  let author = path_of index "/bib/author" in
  let xml = kw index "xml" and k2003 = kw index "2003" in
  check Alcotest.int "xml & 2003 in 2 inproceedings" 2 (Stats.cooccur stats ~path:inpro xml k2003);
  check Alcotest.int "symmetric" 2 (Stats.cooccur stats ~path:inpro k2003 xml);
  check Alcotest.int "xml & 2003 in 1 author" 1 (Stats.cooccur stats ~path:author xml k2003);
  check Alcotest.int "self co-occurrence = df" 2 (Stats.cooccur stats ~path:inpro xml xml);
  let john = kw index "john" in
  check Alcotest.int "never together" 0 (Stats.cooccur stats ~path:inpro xml john)

(* brute-force cross-check of df/tf over the whole Figure-1 document *)
let test_stats_bruteforce () =
  let index = Lazy.force fig1 in
  let doc = index.Index.doc in
  let stats = index.Index.stats in
  let subtree_count_of root_dewey k =
    (* occurrences of keyword k within the subtree *)
    let total = ref 0 in
    Array.iter
      (fun (n : Doc.node) ->
        if Dewey.is_prefix root_dewey n.Doc.dewey then
          List.iter (fun (id, c) -> if id = k then total := !total + c) n.Doc.keywords)
      doc.Doc.nodes;
    !total
  in
  let vocab = Doc.vocabulary doc in
  Path.iter
    (fun path ->
      let roots =
        Array.to_list doc.Doc.nodes |> List.filter (fun (n : Doc.node) -> n.Doc.path = path)
      in
      List.iter
        (fun name ->
          match Doc.keyword_id doc name with
          | None -> ()
          | Some k ->
            let df_expected =
              List.length (List.filter (fun (n : Doc.node) -> subtree_count_of n.Doc.dewey k > 0) roots)
            in
            let tf_expected =
              List.fold_left (fun a (n : Doc.node) -> a + subtree_count_of n.Doc.dewey k) 0 roots
            in
            if Stats.df stats ~path ~kw:k <> df_expected then
              Alcotest.failf "df mismatch for %s at %s" name (Doc.path_string doc path);
            if Stats.tf stats ~path ~kw:k <> tf_expected then
              Alcotest.failf "tf mismatch for %s at %s" name (Doc.path_string doc path))
        vocab)
    doc.Doc.paths

let test_paths_containing () =
  let index = Lazy.force fig1 in
  let hits = Stats.paths_containing index.Index.stats (kw index "xml") in
  (* xml lives under: bib, author, publications, inproceedings, title *)
  check Alcotest.int "5 node types contain xml" 5 (List.length hits)

(* co-occurrence vs brute force on random documents *)
let prop_cooccur_brute_force =
  let gen =
    let open QCheck.Gen in
    let tag = oneofl [ "a"; "b"; "c" ] in
    let word = oneofl [ "x"; "y"; "z" ] in
    let rec node depth =
      if depth = 0 then map2 Tree.leaf tag word
      else
        frequency
          [
            (1, map2 Tree.leaf tag word);
            ( 2,
              (fun st ->
                let tg = tag st in
                let w = word st in
                let children = list_size (int_bound 3) (node (depth - 1)) st in
                Tree.elem tg (Tree.Text w :: List.map (fun c -> Tree.Elem c) children)) );
          ]
    in
    node 3
  in
  QCheck.Test.make ~name:"cooccur equals brute force" ~count:150
    (QCheck.make ~print:Xr_xml.Printer.to_string gen)
    (fun tree ->
      let index = Index.build (Doc.of_tree tree) in
      let doc = index.Index.doc in
      let stats = index.Index.stats in
      let subtree_has root_dewey k =
        let lo, hi = Doc.subtree_node_range doc root_dewey in
        let rec go i =
          i < hi
          && (List.exists (fun (id, _) -> id = k) doc.Doc.nodes.(i).Doc.keywords || go (i + 1))
        in
        go lo
      in
      let kws = List.filter_map (Doc.keyword_id doc) [ "x"; "y"; "z"; "a"; "b" ] in
      let ok = ref true in
      Path.iter
        (fun path ->
          List.iter
            (fun k1 ->
              List.iter
                (fun k2 ->
                  let expected =
                    Array.to_list doc.Doc.nodes
                    |> List.filter (fun (n : Doc.node) ->
                           n.Doc.path = path && subtree_has n.Doc.dewey k1
                           && subtree_has n.Doc.dewey k2)
                    |> List.length
                  in
                  let got = Stats.cooccur stats ~path k1 k2 in
                  if got <> expected then ok := false)
                kws)
            kws)
        doc.Doc.paths;
      !ok)

(* cooccur is bounded by both dfs *)
let test_cooccur_bounds () =
  let index = Lazy.force fig1 in
  let stats = index.Index.stats in
  let doc = index.Index.doc in
  let kws = List.filter_map (Doc.keyword_id doc) (Doc.vocabulary doc) in
  Path.iter
    (fun path ->
      List.iter
        (fun k1 ->
          List.iter
            (fun k2 ->
              let c = Stats.cooccur stats ~path k1 k2 in
              if c > min (Stats.df stats ~path ~kw:k1) (Stats.df stats ~path ~kw:k2) then
                Alcotest.fail "cooccur exceeds df bound")
            (List.filteri (fun i _ -> i < 12) kws))
        (List.filteri (fun i _ -> i < 12) kws))
    doc.Doc.paths

(* ---- persistence -------------------------------------------------------- *)

let roundtrip_via kv_make =
  let index = Lazy.force fig1 in
  let kv = kv_make () in
  Index.save index kv;
  let index2 = Index.load kv in
  let doc = index.Index.doc and doc2 = index2.Index.doc in
  check Alcotest.int "node count" (Doc.node_count doc) (Doc.node_count doc2);
  check
    (Alcotest.list Alcotest.string)
    "vocabulary" (Doc.vocabulary doc) (Doc.vocabulary doc2);
  (* every inverted list identical *)
  List.iter
    (fun k ->
      let l1 = Inverted.list_by_name index.Index.inverted doc k in
      let l2 = Inverted.list_by_name index2.Index.inverted doc2 k in
      check Alcotest.int (k ^ " list length") (Array.length l1) (Array.length l2);
      Array.iteri
        (fun i (p : Inverted.posting) ->
          if not (Dewey.equal p.Inverted.dewey l2.(i).Inverted.dewey) then
            Alcotest.failf "posting mismatch for %s" k)
        l1)
    (Doc.vocabulary doc);
  (* statistics identical *)
  Path.iter
    (fun path ->
      List.iter
        (fun k ->
          match Doc.keyword_id doc k with
          | None -> ()
          | Some id ->
            if
              Stats.df index.Index.stats ~path ~kw:id
              <> Stats.df index2.Index.stats ~path ~kw:id
              || Stats.tf index.Index.stats ~path ~kw:id
                 <> Stats.tf index2.Index.stats ~path ~kw:id
            then Alcotest.fail "stats mismatch after reload")
        (Doc.vocabulary doc);
      if
        Stats.node_count index.Index.stats path <> Stats.node_count index2.Index.stats path
        || Stats.distinct_keywords index.Index.stats path
           <> Stats.distinct_keywords index2.Index.stats path
      then Alcotest.fail "aggregate mismatch after reload")
    doc.Doc.paths;
  kv.Kv.close ()

let test_save_load_memory () = roundtrip_via Kv.memory

let test_save_load_btree () =
  let path = Filename.temp_file "xridx" ".db" in
  Sys.remove path;
  roundtrip_via (fun () -> Kv.btree_file path);
  Sys.remove path

let test_load_missing () =
  let kv = Kv.memory () in
  try
    ignore (Index.load kv);
    Alcotest.fail "expected failure on empty store"
  with Failure _ -> ()

(* ---- incremental maintenance -------------------------------------------- *)

(* appending partitions one by one must equal a from-scratch rebuild *)
let assert_index_equal (a : Index.t) (b : Index.t) =
  let da = a.Index.doc and db = b.Index.doc in
  check Alcotest.int "node count" (Doc.node_count da) (Doc.node_count db);
  check (Alcotest.list Alcotest.string) "vocabulary" (Doc.vocabulary da) (Doc.vocabulary db);
  check Alcotest.int "path count" (Path.size da.Doc.paths) (Path.size db.Doc.paths);
  List.iter
    (fun k ->
      let la = Inverted.list_by_name a.Index.inverted da k in
      let lb = Inverted.list_by_name b.Index.inverted db k in
      check Alcotest.int (k ^ " list length") (Array.length la) (Array.length lb);
      Array.iteri
        (fun i (p : Inverted.posting) ->
          if
            (not (Dewey.equal p.Inverted.dewey lb.(i).Inverted.dewey))
            || p.Inverted.path <> lb.(i).Inverted.path
          then Alcotest.failf "posting mismatch for %s" k)
        la)
    (Doc.vocabulary da);
  Path.iter
    (fun path ->
      if Stats.node_count a.Index.stats path <> Stats.node_count b.Index.stats path then
        Alcotest.failf "N_T mismatch at %s" (Doc.path_string da path);
      if Stats.distinct_keywords a.Index.stats path <> Stats.distinct_keywords b.Index.stats path
      then Alcotest.failf "G_T mismatch at %s" (Doc.path_string da path);
      List.iter
        (fun k ->
          match Doc.keyword_id da k with
          | None -> ()
          | Some kw ->
            if Stats.df a.Index.stats ~path ~kw <> Stats.df b.Index.stats ~path ~kw then
              Alcotest.failf "df mismatch for %s at %s" k (Doc.path_string da path);
            if Stats.tf a.Index.stats ~path ~kw <> Stats.tf b.Index.stats ~path ~kw then
              Alcotest.failf "tf mismatch for %s at %s" k (Doc.path_string da path))
        (Doc.vocabulary da))
    da.Doc.paths

let test_append_partition_matches_rebuild () =
  let full_tree = Xr_data.Dblp.scaled ~publications:30 ~seed:5 in
  let children = Tree.element_children full_tree in
  let first, rest =
    (List.filteri (fun i _ -> i < 10) children, List.filteri (fun i _ -> i >= 10) children)
  in
  let base = Tree.elem full_tree.Tree.tag (List.map (fun c -> Tree.Elem c) first) in
  let incremental =
    List.fold_left (fun idx pub -> Index.append_partition idx pub) (Index.build (Doc.of_tree base)) rest
  in
  let rebuilt = Index.build (Doc.of_tree full_tree) in
  assert_index_equal incremental rebuilt

let test_append_partition_new_types_and_keywords () =
  let index = Index.build (Xr_data.Figure1.doc ()) in
  let extra =
    Tree.elem "editor"
      [
        Tree.Elem (Tree.leaf "name" "Grace Hopper");
        Tree.Elem (Tree.leaf "affiliation" "navy research");
      ]
  in
  let index' = Index.append_partition index extra in
  (* new vocabulary and node types are live *)
  check Alcotest.bool "new keyword indexed" true
    (Doc.keyword_id index'.Index.doc "hopper" <> None);
  check Alcotest.int "posting for new keyword" 1
    (Array.length (Inverted.list_by_name index'.Index.inverted index'.Index.doc "hopper"));
  (* the new partition is queryable end to end *)
  let slcas = Xr_slca.Engine.query Xr_slca.Engine.Stack index' [ "grace"; "hopper" ] in
  check (Alcotest.list Alcotest.string) "slca in new partition" [ "0.2.0" ]
    (List.map Dewey.to_string slcas);
  (* equality with a rebuild *)
  let full =
    Tree.elem "bib"
      (Tree.element_children (Xr_data.Figure1.tree ()) |> List.map (fun c -> Tree.Elem c))
  in
  let full = Tree.elem "bib" (full.Tree.children @ [ Tree.Elem extra ]) in
  assert_index_equal index' (Index.build (Doc.of_tree full))

let () =
  Alcotest.run "xr_index"
    [
      ( "inverted",
        [
          Alcotest.test_case "document order" `Quick test_inverted_document_order;
          Alcotest.test_case "contents" `Quick test_inverted_contents;
          Alcotest.test_case "prefix slice" `Quick test_prefix_slice;
          qcheck prop_prefix_slice_correct;
        ] );
      ("cursor", [ Alcotest.test_case "monotone + accounting" `Quick test_cursor ]);
      ( "stats",
        [
          Alcotest.test_case "df/tf" `Quick test_stats_df_tf;
          Alcotest.test_case "distinct keywords" `Quick test_stats_distinct;
          Alcotest.test_case "co-occurrence" `Quick test_stats_cooccur;
          Alcotest.test_case "brute-force cross-check" `Quick test_stats_bruteforce;
          Alcotest.test_case "paths_containing" `Quick test_paths_containing;
        ] );
      ( "cooccur-extra",
        [
          qcheck prop_cooccur_brute_force;
          Alcotest.test_case "df bound" `Quick test_cooccur_bounds;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "append = rebuild (dblp)" `Quick test_append_partition_matches_rebuild;
          Alcotest.test_case "new types and keywords" `Quick
            test_append_partition_new_types_and_keywords;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load memory" `Quick test_save_load_memory;
          Alcotest.test_case "save/load btree" `Quick test_save_load_btree;
          Alcotest.test_case "missing store" `Quick test_load_missing;
        ] );
    ]
