test/test_slca.mli:
