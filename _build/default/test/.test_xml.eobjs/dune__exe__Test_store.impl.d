test/test_store.ml: Alcotest Bytes Char Filename List Printf QCheck QCheck_alcotest String Sys Unix Xr_store
