test/test_xml.ml: Alcotest Array Dewey Doc Interner List Parser Path Printer QCheck QCheck_alcotest String Token Tree Xpath Xr_data Xr_xml
