test/test_extensions.ml: Alcotest Array Dewey Doc Float Lazy List Xr_data Xr_index Xr_refine Xr_slca Xr_xml
