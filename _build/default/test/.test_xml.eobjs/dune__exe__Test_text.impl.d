test/test_text.ml: Alcotest List Printf QCheck QCheck_alcotest String Xr_text
