test/test_integration.ml: Alcotest Dewey Doc Engine Lazy List Printf Refined_query Result Rule String Tree Xr_data Xr_eval Xr_index Xr_refine Xr_slca Xr_store Xr_text Xr_xml
