test/test_slca.ml: Alcotest Array Dewey Doc Fmt Lazy List Option Path Printf QCheck QCheck_alcotest String Tree Xr_data Xr_index Xr_slca Xr_xml
