test/test_refine.mli:
