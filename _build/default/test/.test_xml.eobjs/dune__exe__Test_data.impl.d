test/test_data.ml: Alcotest Array Doc List Printer QCheck QCheck_alcotest Tree Xr_data Xr_index Xr_xml
