test/test_index.ml: Alcotest Array Dewey Doc Filename Lazy List Path QCheck QCheck_alcotest String Sys Tree Xr_data Xr_index Xr_slca Xr_store Xr_xml
