test/test_eval.ml: Alcotest Array Filename Lazy List Printf String Sys Xr_data Xr_eval Xr_index Xr_refine Xr_text Xr_xml
