(* Tests for the extensions beyond the paper's core: query specialization
   (the paper's future work) and XML TF*IDF result ranking (its companion
   work, reference [6]). *)

open Xr_xml
module Index = Xr_index.Index
module Engine = Xr_refine.Engine
module Specialize = Xr_refine.Specialize
module Result_rank = Xr_slca.Result_rank

let check = Alcotest.check

let fig1 = lazy (Index.build (Xr_data.Figure1.doc ()))

let dblp =
  lazy
    (Index.build
       (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 600 } ()))

(* ---- specialization -------------------------------------------------------- *)

let test_too_broad () =
  let index = Lazy.force dblp in
  let config = { Specialize.default_config with max_results = 10 } in
  (* "data" matches hundreds of publications *)
  check Alcotest.bool "broad query detected" true (Specialize.too_broad ~config index [ "data" ]);
  (* an empty-result query is not "too broad" *)
  check Alcotest.bool "empty not broad" false (Specialize.too_broad ~config index [ "zzzz" ]);
  (* a specific query is fine *)
  let narrow = { config with max_results = 100000 } in
  check Alcotest.bool "specific query ok" false (Specialize.too_broad ~config:narrow index [ "data" ])

let test_suggestions_narrow () =
  let index = Lazy.force dblp in
  let original = List.length (Engine.search index [ "data" ]) in
  check Alcotest.bool "broad baseline" true (original > 50);
  let suggestions = Specialize.suggest index [ "data" ] in
  check Alcotest.bool "suggestions produced" true (suggestions <> []);
  List.iter
    (fun (s : Specialize.suggestion) ->
      let n = List.length s.Specialize.slcas in
      check Alcotest.bool "non-empty" true (n > 0);
      check Alcotest.bool "strictly narrower" true (n < original);
      check Alcotest.bool "query extended" true (List.mem s.Specialize.added s.Specialize.keywords);
      check Alcotest.bool "original keyword kept" true (List.mem "data" s.Specialize.keywords);
      (* suggested results really match the specialized query *)
      let expected = Engine.search index s.Specialize.keywords in
      check Alcotest.int "results consistent" (List.length expected) n)
    suggestions;
  (* scores descend *)
  let scores = List.map (fun s -> s.Specialize.score) suggestions in
  check Alcotest.bool "sorted by score" true
    (scores = List.sort (fun a b -> Float.compare b a) scores)

let test_suggest_empty_query () =
  let index = Lazy.force dblp in
  check Alcotest.int "no suggestions for empty-result query" 0
    (List.length (Specialize.suggest index [ "qqqq" ]))

let test_auto_pipeline () =
  let index = Lazy.force dblp in
  let specialize = { Specialize.default_config with max_results = 10 } in
  (match Engine.auto ~specialize index [ "data" ] with
  | Engine.Narrowed (results, suggestions) ->
    check Alcotest.bool "narrowed has original results" true (List.length results > 10);
    check Alcotest.bool "narrowed has suggestions" true (suggestions <> [])
  | Engine.Matched _ | Engine.Auto_refined _ -> Alcotest.fail "expected Narrowed");
  (match Engine.auto ~specialize index [ "databse"; "optimzation" ] with
  | Engine.Auto_refined resp -> (
    match resp.Engine.result with
    | Xr_refine.Result.Refined (_ :: _) -> ()
    | _ -> Alcotest.fail "expected refinement matches")
  | Engine.Matched _ | Engine.Narrowed _ -> Alcotest.fail "expected Auto_refined");
  let specialize_loose = { Specialize.default_config with max_results = 1000000 } in
  match Engine.auto ~specialize:specialize_loose index [ "data" ] with
  | Engine.Matched results -> check Alcotest.bool "matched non-empty" true (results <> [])
  | Engine.Auto_refined _ | Engine.Narrowed _ -> Alcotest.fail "expected Matched"

let test_suggestions_contain_original_keywords () =
  let index = Lazy.force dblp in
  let doc = index.Index.doc in
  List.iter
    (fun q ->
      List.iter
        (fun (s : Specialize.suggestion) ->
          let ids = List.filter_map (Doc.keyword_id doc) q in
          List.iter
            (fun dewey ->
              let lo, hi = Doc.subtree_node_range doc dewey in
              List.iter
                (fun kw ->
                  let rec found i =
                    i < hi
                    && (List.exists (fun (k, _) -> k = kw) doc.Doc.nodes.(i).Doc.keywords
                       || found (i + 1))
                  in
                  if not (found lo) then
                    Alcotest.failf "specialized result misses original keyword")
                ids)
            s.Specialize.slcas)
        (Specialize.suggest index q))
    [ [ "data" ]; [ "query" ]; [ "system"; "model" ] ]

(* ---- result ranking ---------------------------------------------------------- *)

let kw index k =
  match Doc.keyword_id index.Index.doc k with
  | Some id -> id
  | None -> Alcotest.failf "missing keyword %s" k

let test_result_rank_orders_by_occurrences () =
  (* two results of the same type; one contains the query terms twice *)
  let doc =
    Doc.of_string
      "<lib><book><t>xml query</t></book><book><t>xml query xml query xml</t></book><book><t>other \
       words</t></book></lib>"
  in
  let index = Index.build doc in
  let query = [ kw index "xml"; kw index "query" ] in
  let b0 = Dewey.of_string "0.0" and b1 = Dewey.of_string "0.1" in
  let s0 = Result_rank.score index.Index.stats ~query b0 in
  let s1 = Result_rank.score index.Index.stats ~query b1 in
  check Alcotest.bool "more occurrences rank higher" true (s1 > s0);
  check Alcotest.bool "positive scores" true (s0 > 0.);
  let ranked = Result_rank.rank index.Index.stats ~query [ b0; b1 ] in
  check Alcotest.string "best first" "0.1" (Dewey.to_string (fst (List.hd ranked)))

let test_result_rank_unknown_and_ties () =
  let index = Lazy.force fig1 in
  let query = [ kw index "xml" ] in
  check (Alcotest.float 1e-9) "unknown label scores 0" 0.
    (Result_rank.score index.Index.stats ~query (Dewey.of_string "0.9.9"));
  (* stable ties fall back to document order *)
  let a = Dewey.of_string "0.1.1.0" and b = Dewey.of_string "0.1.1.1" in
  let ranked = Result_rank.rank index.Index.stats ~query [ b; a ] in
  check Alcotest.int "both kept" 2 (List.length ranked)

let test_result_rank_on_real_query () =
  let index = Lazy.force dblp in
  let q = [ "data"; "analysis" ] in
  let slcas = Engine.search index q in
  if slcas <> [] then begin
    let ids = List.filter_map (Doc.keyword_id index.Index.doc) q in
    let ranked = Result_rank.rank index.Index.stats ~query:ids slcas in
    check Alcotest.int "rank preserves cardinality" (List.length slcas) (List.length ranked);
    let scores = List.map snd ranked in
    check Alcotest.bool "descending" true
      (scores = List.sort (fun a b -> Float.compare b a) scores)
  end

let test_engine_rank_results () =
  let index = Lazy.force dblp in
  let q = [ "data"; "analysis" ] in
  let plain = Engine.refine index q in
  let config = { Engine.default_config with rank_results = true } in
  let ranked = Engine.refine ~config index q in
  match (plain.Engine.result, ranked.Engine.result) with
  | Xr_refine.Result.Original a, Xr_refine.Result.Original b ->
    check Alcotest.int "same cardinality" (List.length a) (List.length b);
    check
      (Alcotest.list Alcotest.string)
      "same set"
      (List.sort compare (List.map Dewey.to_string a))
      (List.sort compare (List.map Dewey.to_string b));
    (* the ranked order follows Result_rank *)
    let ids = List.filter_map (Doc.keyword_id index.Index.doc) q in
    let expected = List.map fst (Result_rank.rank index.Index.stats ~query:ids a) in
    check
      (Alcotest.list Alcotest.string)
      "relevance order"
      (List.map Dewey.to_string expected)
      (List.map Dewey.to_string b)
  | _ -> Alcotest.fail "expected Original outcomes"

(* ---- baselines ----------------------------------------------------------------- *)

let test_static_clean () =
  let index = Lazy.force dblp in
  let doc = index.Index.doc in
  (* cleaning rewrites into vocabulary words *)
  (match Xr_refine.Static_clean.clean ~k:2 index [ "databse"; "optimzation" ] with
  | rq :: _ as all ->
    List.iter
      (fun (r : Xr_refine.Refined_query.t) ->
        List.iter
          (fun k ->
            if Doc.keyword_id doc k = None then Alcotest.failf "cleaned keyword %s not in vocab" k)
          r.Xr_refine.Refined_query.keywords)
      all;
    check Alcotest.bool "plausible top-1" true
      (List.mem "database" rq.Xr_refine.Refined_query.keywords)
  | [] -> Alcotest.fail "no cleaning produced");
  (* the failure mode the paper criticizes: a cleaned query with no
     meaningful result. Construct one from two keywords that exist but
     never co-occur meaningfully. *)
  let vocab = Doc.vocabulary doc in
  let never_together =
    (* find two rare keywords with no common meaningful SLCA *)
    let rare =
      List.filter
        (fun k ->
          match Doc.keyword_id doc k with
          | Some kw -> Array.length (Xr_index.Inverted.list index.Index.inverted kw) = 1
          | None -> false)
        vocab
    in
    let rec find = function
      | a :: (b :: _ as rest) ->
        if Engine.search index [ a; b ] = [] then Some (a, b) else find rest
      | _ -> None
    in
    find rare
  in
  match never_together with
  | None -> () (* corpus too small to exhibit it; nothing to assert *)
  | Some (a, b) ->
    let rq =
      { Xr_refine.Refined_query.keywords = [ a; b ]; dissimilarity = 1; edits = [] }
    in
    check Alcotest.bool "stranded detection" true (Xr_refine.Static_clean.stranded index rq)

let test_or_search () =
  let index = Lazy.force fig1 in
  (* {xml, games}: no conjunctive match below the root, but OR finds both *)
  let hits = Xr_slca.Or_search.query index [ "xml"; "games" ] in
  check Alcotest.bool "hits found" true (hits <> []);
  let scores = List.map (fun (h : Xr_slca.Or_search.hit) -> h.Xr_slca.Or_search.score) hits in
  check Alcotest.bool "sorted" true (scores = List.sort (fun a b -> compare b a) scores);
  (* matched counts are within range and the best hit matches >= others *)
  List.iter
    (fun (h : Xr_slca.Or_search.hit) ->
      if h.Xr_slca.Or_search.matched < 1 || h.Xr_slca.Or_search.matched > 2 then
        Alcotest.fail "matched out of range")
    hits;
  (* OOV-only query yields nothing *)
  check Alcotest.int "oov" 0 (List.length (Xr_slca.Or_search.query index [ "zzzz" ]));
  (* limit respected *)
  check Alcotest.bool "limit" true
    (List.length (Xr_slca.Or_search.query ~limit:2 index [ "xml"; "games" ]) <= 2)

let test_or_search_prefers_conjunction () =
  (* a node covering both keywords outranks nodes covering one *)
  let doc =
    Xr_xml.Doc.of_string
      "<r><a><x>alpha</x><y>beta</y></a><b><x>alpha</x></b><c><y>beta</y></c></r>"
  in
  let index = Index.build doc in
  match Xr_slca.Or_search.query index [ "alpha"; "beta" ] with
  | best :: _ ->
    check Alcotest.int "conjunctive node first" 2 best.Xr_slca.Or_search.matched;
    check Alcotest.string "it is the <a> subtree" "0.0"
      (Dewey.to_string best.Xr_slca.Or_search.dewey)
  | [] -> Alcotest.fail "no hits"

let () =
  Alcotest.run "extensions"
    [
      ( "specialize",
        [
          Alcotest.test_case "too_broad detection" `Quick test_too_broad;
          Alcotest.test_case "suggestions narrow the query" `Quick test_suggestions_narrow;
          Alcotest.test_case "empty-result query" `Quick test_suggest_empty_query;
          Alcotest.test_case "auto pipeline" `Quick test_auto_pipeline;
          Alcotest.test_case "suggestions keep original keywords" `Quick
            test_suggestions_contain_original_keywords;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "static cleaning" `Quick test_static_clean;
          Alcotest.test_case "or search" `Quick test_or_search;
          Alcotest.test_case "or prefers conjunction" `Quick test_or_search_prefers_conjunction;
        ] );
      ( "result-rank",
        [
          Alcotest.test_case "engine rank_results option" `Quick test_engine_rank_results;
          Alcotest.test_case "orders by occurrences" `Quick test_result_rank_orders_by_occurrences;
          Alcotest.test_case "unknown labels and ties" `Quick test_result_rank_unknown_and_ties;
          Alcotest.test_case "real query" `Quick test_result_rank_on_real_query;
        ] );
    ]
