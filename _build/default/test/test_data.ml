open Xr_xml
module Rng = Xr_data.Rng
module Zipf = Xr_data.Zipf

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---- rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_rng_ranges () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of range";
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range";
    let r = Rng.range rng 5 8 in
    if r < 5 || r > 8 then Alcotest.fail "range out of bounds"
  done;
  (try
     ignore (Rng.int rng 0);
     Alcotest.fail "bound 0 accepted"
   with Invalid_argument _ -> ());
  let l = Rng.shuffle rng [ 1; 2; 3; 4; 5 ] in
  check (Alcotest.list Alcotest.int) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare l)

let test_rng_uniformity () =
  let rng = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < n / 10 * 8 / 10 || c > n / 10 * 12 / 10 then
        Alcotest.failf "bucket %d skewed: %d" i c)
    buckets

(* ---- zipf ------------------------------------------------------------------ *)

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let rng = Rng.create 3 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  check Alcotest.bool "rank 0 dominates rank 10" true (counts.(0) > counts.(10));
  check Alcotest.bool "rank 10 dominates rank 90" true (counts.(10) > counts.(90));
  (* roughly harmonic: rank0/rank1 close to 2 *)
  let ratio = float_of_int counts.(0) /. float_of_int (max 1 counts.(1)) in
  check Alcotest.bool "harmonic-ish head" true (ratio > 1.4 && ratio < 2.8)

let test_zipf_validation () =
  (try
     ignore (Zipf.create ~n:0 ~s:1.0);
     Alcotest.fail "n=0 accepted"
   with Invalid_argument _ -> ());
  let z = Zipf.create ~n:3 ~s:1.0 in
  let rng = Rng.create 1 in
  try
    ignore (Zipf.pick z rng [| 1; 2 |]);
    Alcotest.fail "size mismatch accepted"
  with Invalid_argument _ -> ()

(* ---- figure 1 --------------------------------------------------------------- *)

let test_figure1_shape () =
  let doc = Xr_data.Figure1.doc () in
  check Alcotest.string "root" "bib" doc.Doc.tree.Tree.tag;
  check Alcotest.int "two partitions" 2 (List.length (Tree.element_children doc.Doc.tree));
  (* the running-example guarantees *)
  check Alcotest.bool "publication absent" true (Doc.keyword_id doc "publication" = None);
  check Alcotest.bool "publications tag present" true (Doc.keyword_id doc "publications" <> None);
  check Alcotest.bool "data absent (Example 4 shape)" true (Doc.keyword_id doc "data" = None);
  List.iter
    (fun k -> check Alcotest.bool (k ^ " present") true (Doc.keyword_id doc k <> None))
    [ "online"; "database"; "on"; "line"; "base"; "xml"; "john"; "games"; "hobby" ];
  (* parse/print roundtrip of the shipped text *)
  let doc2 = Doc.of_string (Xr_data.Figure1.text ()) in
  check Alcotest.int "text roundtrip" (Doc.node_count doc) (Doc.node_count doc2)

(* ---- dblp -------------------------------------------------------------------- *)

let test_dblp_shape () =
  let config = { Xr_data.Dblp.default_config with publications = 300; seed = 9 } in
  let tree = Xr_data.Dblp.generate ~config () in
  check Alcotest.string "root" "dblp" tree.Tree.tag;
  check Alcotest.int "fanout = publications" 300 (List.length (Tree.element_children tree));
  List.iter
    (fun (pub : Tree.t) ->
      if pub.Tree.tag <> "article" && pub.Tree.tag <> "inproceedings" then
        Alcotest.fail "unexpected publication tag";
      let tags = List.map (fun (c : Tree.t) -> c.Tree.tag) (Tree.element_children pub) in
      List.iter
        (fun t ->
          if not (List.mem t tags) then Alcotest.failf "publication missing %s" t)
        [ "author"; "title"; "year"; "pages" ];
      let venue = if pub.Tree.tag = "article" then "journal" else "booktitle" in
      if not (List.mem venue tags) then Alcotest.failf "missing %s" venue)
    (Tree.element_children tree)

let test_dblp_deterministic_and_scaled () =
  let t1 = Xr_data.Dblp.scaled ~publications:50 ~seed:4 in
  let t2 = Xr_data.Dblp.scaled ~publications:50 ~seed:4 in
  check Alcotest.bool "same seed, same corpus" true (Tree.equal t1 t2);
  let t3 = Xr_data.Dblp.scaled ~publications:50 ~seed:5 in
  check Alcotest.bool "different seed differs" false (Tree.equal t1 t3)

let test_dblp_zipf_lists () =
  (* inverted-list lengths must be heavily skewed *)
  let index = Xr_index.Index.build (Xr_data.Dblp.doc ()) in
  let lengths = ref [] in
  Xr_index.Inverted.iter
    (fun _ l -> if Array.length l > 0 then lengths := Array.length l :: !lengths)
    index.Xr_index.Index.inverted;
  let sorted = List.sort (fun a b -> compare b a) !lengths in
  let longest = List.nth sorted 0 in
  let median = List.nth sorted (List.length sorted / 2) in
  check Alcotest.bool "skewed lists" true (longest > 50 * median)

(* ---- baseball ------------------------------------------------------------------ *)

let test_baseball_shape () =
  let doc = Xr_data.Baseball.doc () in
  let tree = doc.Doc.tree in
  check Alcotest.string "root" "season" tree.Tree.tag;
  let leagues =
    List.filter (fun (c : Tree.t) -> c.Tree.tag = "league") (Tree.element_children tree)
  in
  check Alcotest.int "two leagues" 2 (List.length leagues);
  let players = Tree.find_all tree (fun e -> e.Tree.tag = "player") in
  check Alcotest.bool "many players" true (List.length players > 100);
  List.iter
    (fun (p : Tree.t) ->
      let tags = List.map (fun (c : Tree.t) -> c.Tree.tag) (Tree.element_children p) in
      if not (List.mem "name" tags && List.mem "position" tags && List.mem "home_runs" tags) then
        Alcotest.fail "player missing fields")
    players;
  check Alcotest.int "depth" 6 (Tree.depth tree)

let test_auction_shape () =
  let doc = Xr_data.Auction.doc () in
  let tree = doc.Doc.tree in
  check Alcotest.string "root" "site" tree.Tree.tag;
  (* the five top-level sections = document partitions *)
  check Alcotest.int "five partitions" 5 (List.length (Tree.element_children tree));
  let items = Tree.find_all tree (fun e -> e.Tree.tag = "item") in
  check Alcotest.int "items" Xr_data.Auction.default_config.Xr_data.Auction.items
    (List.length items);
  let people = Tree.find_all tree (fun e -> e.Tree.tag = "person") in
  check Alcotest.int "people" Xr_data.Auction.default_config.Xr_data.Auction.people
    (List.length people);
  (* cross references resolve: every itemref names an existing item id *)
  let item_ids =
    List.filter_map (fun (e : Tree.t) -> List.assoc_opt "id" e.Tree.attrs) items
  in
  let refs = Tree.find_all tree (fun e -> e.Tree.tag = "itemref") in
  check Alcotest.bool "some auctions exist" true (refs <> []);
  List.iter
    (fun (r : Tree.t) ->
      let target = Tree.text r in
      if not (List.mem target item_ids) then Alcotest.failf "dangling itemref %s" target)
    refs;
  (* deterministic *)
  let t2 = Xr_data.Auction.generate () in
  check Alcotest.bool "deterministic" true (Tree.equal tree t2)

let prop_dblp_valid_xml =
  QCheck.Test.make ~name:"generated dblp parses back" ~count:10
    (QCheck.make QCheck.Gen.(int_range 1 40))
    (fun n ->
      let tree = Xr_data.Dblp.scaled ~publications:n ~seed:n in
      let doc = Doc.of_string (Printer.to_string tree) in
      Doc.node_count doc = Tree.size tree)

let () =
  Alcotest.run "xr_data"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
        ] );
      ("figure1", [ Alcotest.test_case "running example shape" `Quick test_figure1_shape ]);
      ( "dblp",
        [
          Alcotest.test_case "schema" `Quick test_dblp_shape;
          Alcotest.test_case "determinism + scaling" `Quick test_dblp_deterministic_and_scaled;
          Alcotest.test_case "zipf-skewed lists" `Quick test_dblp_zipf_lists;
          qcheck prop_dblp_valid_xml;
        ] );
      ("baseball", [ Alcotest.test_case "schema" `Quick test_baseball_shape ]);
      ("auction", [ Alcotest.test_case "schema + references" `Quick test_auction_shape ]);
    ]
