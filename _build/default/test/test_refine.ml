open Xr_xml
open Xr_refine
module Index = Xr_index.Index

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let fig1 = lazy (Index.build (Xr_data.Figure1.doc ()))

let dblp =
  lazy
    (Index.build
       (Xr_data.Dblp.doc ~config:{ Xr_data.Dblp.default_config with publications = 200 } ()))

(* ---- rules ---------------------------------------------------------------- *)

let test_rule_constructors () =
  let r = Rule.merging [ "On"; "LINE" ] "OnLine" in
  check (Alcotest.list Alcotest.string) "normalized lhs" [ "on"; "line" ] r.Rule.lhs;
  check (Alcotest.list Alcotest.string) "normalized rhs" [ "online" ] r.Rule.rhs;
  check Alcotest.int "merge ds = boundaries" 1 r.Rule.ds;
  let r3 = Rule.merging [ "a"; "b"; "c" ] "abc" in
  check Alcotest.int "3-way merge ds" 2 r3.Rule.ds;
  let sp = Rule.spelling "mecin" "machine" in
  check Alcotest.int "spelling ds = edit distance" 3 sp.Rule.ds;
  let sp1 = Rule.spelling "databse" "database" in
  check Alcotest.int "1-edit" 1 sp1.Rule.ds;
  check Alcotest.int "acronym ds" 1 (Rule.acronym_expand "www" [ "world"; "wide"; "web" ]).Rule.ds;
  check Alcotest.int "split ds" 1 (Rule.split "online" [ "on"; "line" ]).Rule.ds;
  check Alcotest.bool "deletion rhs empty" true ((Rule.deletion "x" ~ds:2).Rule.rhs = []);
  (try
     ignore (Rule.make ~op:Rule.Substitution ~ds:0 [ "a" ] [ "b" ]);
     Alcotest.fail "ds 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Rule.make ~op:Rule.Substitution ~ds:1 [] [ "b" ]);
    Alcotest.fail "empty lhs accepted"
  with Invalid_argument _ -> ()

let test_ruleset_index () =
  let rs =
    Ruleset.of_rules
      [
        Rule.merging [ "on"; "line" ] "online";
        Rule.merging [ "data"; "base" ] "database";
        Rule.synonym "article" "inproceedings";
      ]
  in
  check Alcotest.int "size" 3 (Ruleset.size rs);
  check Alcotest.int "ending_with line" 1 (List.length (Ruleset.ending_with rs "line"));
  check Alcotest.int "ending_with base" 1 (List.length (Ruleset.ending_with rs "base"));
  check Alcotest.int "ending_with other" 0 (List.length (Ruleset.ending_with rs "on"));
  (* dedup *)
  let rs2 = Ruleset.add rs (Rule.merging [ "on"; "line" ] "online") in
  check Alcotest.int "add dedups" 3 (Ruleset.size rs2);
  (* relevance: lhs must be a window of the query *)
  let rel = Ruleset.relevant rs [ "on"; "line"; "database" ] in
  check Alcotest.int "only on+line relevant" 1 (Ruleset.size rel);
  let rel2 = Ruleset.relevant rs [ "line"; "on" ] in
  check Alcotest.int "order matters for windows" 0 (Ruleset.size rel2);
  check
    (Alcotest.list Alcotest.string)
    "new keywords" [ "online" ]
    (Ruleset.new_keywords rs [ "on"; "line"; "x" ])

let test_mining_fig1 () =
  let index = Lazy.force fig1 in
  let th = Xr_text.Thesaurus.default () in
  let mined q = Ruleset.to_list (Ruleset.mine ~thesaurus:th index.Index.doc q) in
  (* merging *)
  let rules = mined [ "on"; "line"; "data"; "base" ] in
  check Alcotest.bool "mines on+line->online" true
    (List.exists (fun (r : Rule.t) -> r.Rule.rhs = [ "online" ] && r.Rule.op = Rule.Merging) rules);
  check Alcotest.bool "mines data+base->database" true
    (List.exists (fun (r : Rule.t) -> r.Rule.rhs = [ "database" ]) rules);
  (* split *)
  let rules = mined [ "onlinedatabase" ] in
  check Alcotest.bool "mines split" true
    (List.exists
       (fun (r : Rule.t) -> r.Rule.op = Rule.Split && r.Rule.rhs = [ "online"; "database" ])
       rules);
  (* spelling *)
  let rules = mined [ "databse" ] in
  check Alcotest.bool "mines spelling" true
    (List.exists
       (fun (r : Rule.t) -> r.Rule.op = Rule.Substitution && r.Rule.rhs = [ "database" ])
       rules);
  (* stemming: publication -> publications (tag) *)
  let rules = mined [ "publication" ] in
  check Alcotest.bool "mines stemming" true
    (List.exists (fun (r : Rule.t) -> r.Rule.rhs = [ "publications" ]) rules);
  (* synonym: publication -> article/inproceedings/proceedings *)
  check Alcotest.bool "mines synonyms" true
    (List.exists (fun (r : Rule.t) -> r.Rule.rhs = [ "article" ]) rules);
  (* all mined RHS exist in document *)
  List.iter
    (fun q ->
      List.iter
        (fun (r : Rule.t) ->
          List.iter
            (fun k ->
              if Doc.keyword_id index.Index.doc k = None then
                Alcotest.failf "mined RHS keyword %s not in doc" k)
            r.Rule.rhs)
        (mined q))
    [ [ "on"; "line" ]; [ "databse" ]; [ "publication" ]; [ "onlinedatabase" ] ]

let test_mining_respects_config () =
  let index = Lazy.force fig1 in
  let config = { Ruleset.default_mine_config with enable_spelling = false } in
  let rules = Ruleset.to_list (Ruleset.mine ~config index.Index.doc [ "databse" ]) in
  check Alcotest.bool "spelling disabled" true
    (List.for_all (fun (r : Rule.t) -> r.Rule.rhs <> [ "database" ]) rules)

(* ---- refined query --------------------------------------------------------- *)

let test_refined_query_delta () =
  let r = Rule.merging [ "on"; "line" ] "online" in
  let rq =
    {
      Refined_query.keywords = [ "games"; "online" ];
      dissimilarity = 3;
      edits = [ Refined_query.Applied r; Refined_query.Deleted "junk"; Refined_query.Kept "games" ];
    }
  in
  check (Alcotest.list Alcotest.string) "delta" [ "junk"; "online" ] (Refined_query.delta rq);
  check (Alcotest.list Alcotest.string) "deleted" [ "junk" ] (Refined_query.deleted rq);
  check (Alcotest.list Alcotest.string) "generated" [ "online" ] (Refined_query.generated rq);
  check Alcotest.bool "not original" false (Refined_query.is_original rq);
  check Alcotest.int "operations" 2 (List.length (Refined_query.operations rq))

(* ---- dynamic program -------------------------------------------------------- *)

let available_of_list l k = List.mem k l

let dp ?config ~rules ~available q = Optimal_rq.optimal ?config ~rules ~available q

let test_dp_paper_example3 () =
  (* Example 3: Q={WWW, article, machine, learning},
     T={machine, inproceedings, learning, worldwide web...}; rules r3, r4, r6 *)
  let rules =
    Ruleset.of_rules
      [
        Rule.synonym "article" "inproceedings";
        (* r3 *)
        Rule.merging [ "learn"; "ing" ] "learning";
        (* r4, irrelevant here *)
        Rule.acronym_expand "www" [ "world"; "wide"; "web" ];
        (* r6 *)
      ]
  in
  let t = [ "machine"; "inproceedings"; "learning"; "world"; "wide"; "web" ] in
  match dp ~rules ~available:(available_of_list t) [ "www"; "article"; "machine"; "learning" ] with
  | None -> Alcotest.fail "no RQ found"
  | Some rq ->
    check
      (Alcotest.list Alcotest.string)
      "optimal RQ"
      [ "inproceedings"; "learning"; "machine"; "web"; "wide"; "world" ]
      rq.Refined_query.keywords;
    (* acronym (1) + synonym (1) + keep + keep *)
    check Alcotest.int "dissimilarity" 2 rq.Refined_query.dissimilarity

let test_dp_recurrence_options () =
  let rules = Ruleset.of_rules [ Rule.merging [ "a"; "b" ] "ab" ] in
  (* option 1: keep when available *)
  (match dp ~rules ~available:(available_of_list [ "a"; "b" ]) [ "a"; "b" ] with
  | Some rq ->
    check Alcotest.int "keep both costs 0" 0 rq.Refined_query.dissimilarity;
    check Alcotest.bool "is original" true (Refined_query.is_original rq)
  | None -> Alcotest.fail "expected RQ");
  (* option 3 beats deletion *)
  (match dp ~rules ~available:(available_of_list [ "ab" ]) [ "a"; "b" ] with
  | Some rq ->
    check (Alcotest.list Alcotest.string) "merged" [ "ab" ] rq.Refined_query.keywords;
    check Alcotest.int "merge cost" 1 rq.Refined_query.dissimilarity
  | None -> Alcotest.fail "expected RQ");
  (* option 2: deletion as a last resort *)
  (match dp ~rules ~available:(available_of_list [ "b" ]) [ "a"; "b" ] with
  | Some rq ->
    check (Alcotest.list Alcotest.string) "deleted a" [ "b" ] rq.Refined_query.keywords;
    check Alcotest.int "deletion cost" 2 rq.Refined_query.dissimilarity
  | None -> Alcotest.fail "expected RQ");
  (* everything deleted -> no valid RQ *)
  check Alcotest.bool "empty RQ rejected" true
    (dp ~rules ~available:(fun _ -> false) [ "a"; "b" ] = None)

let test_dp_deletion_cost_config () =
  let rules = Ruleset.empty in
  let config = { Optimal_rq.default_config with deletion_cost = 5 } in
  match dp ~config ~rules ~available:(available_of_list [ "b" ]) [ "a"; "b" ] with
  | Some rq -> check Alcotest.int "configured cost" 5 rq.Refined_query.dissimilarity
  | None -> Alcotest.fail "expected RQ"

let test_dp_rule_requires_rhs_available () =
  let rules = Ruleset.of_rules [ Rule.merging [ "a"; "b" ] "ab" ] in
  match dp ~rules ~available:(available_of_list [ "a" ]) [ "a"; "b" ] with
  | Some rq ->
    (* ab unavailable: keep a, delete b *)
    check (Alcotest.list Alcotest.string) "no rule applied" [ "a" ] rq.Refined_query.keywords;
    check Alcotest.int "cost" 2 rq.Refined_query.dissimilarity
  | None -> Alcotest.fail "expected RQ"

let test_dp_top_k_distinct_sorted () =
  let rules =
    Ruleset.of_rules [ Rule.synonym "x" "y"; Rule.synonym ~ds:2 "x" "z"; Rule.synonym "w" "v" ]
  in
  let rqs =
    Optimal_rq.top_k ~rules ~available:(available_of_list [ "y"; "z"; "v" ]) ~k:10 [ "x"; "w" ]
  in
  (* candidates: {y,v}=2, {z,v}=3, {y}=1+2, {v}... enumerate: each gets
     distinct keyword sets, sorted by cost, no duplicates *)
  let keys = List.map Refined_query.key rqs in
  check Alcotest.int "distinct" (List.length keys) (List.length (List.sort_uniq compare keys));
  let costs = List.map (fun r -> r.Refined_query.dissimilarity) rqs in
  check (Alcotest.list Alcotest.int) "sorted" (List.sort compare costs) costs;
  match rqs with
  | first :: _ ->
    check (Alcotest.list Alcotest.string) "best" [ "v"; "y" ] first.Refined_query.keywords;
    check Alcotest.int "best cost" 2 first.Refined_query.dissimilarity
  | [] -> Alcotest.fail "no candidates"

(* brute-force DP validation: enumerate all edit combinations *)
let brute_force_min_cost ~rules ~available ~deletion_cost q =
  (* state space: position i, accumulated keywords; enumerate recursively *)
  let q = Array.of_list q in
  let n = Array.length q in
  let rules = Ruleset.to_list rules in
  let best = ref None in
  let consider cost kept = if kept <> [] then
    match !best with Some b when b <= cost -> () | _ -> best := Some cost
  in
  let rec go i cost kept =
    if i = n then consider cost kept
    else begin
      let k = q.(i) in
      if available k then go (i + 1) cost (k :: kept);
      go (i + 1) (cost + deletion_cost) kept;
      List.iter
        (fun (r : Rule.t) ->
          let l = List.length r.Rule.lhs in
          if i + l <= n then begin
            let window = Array.to_list (Array.sub q i l) in
            if window = r.Rule.lhs && List.for_all available r.Rule.rhs then
              go (i + l) (cost + r.Rule.ds) (r.Rule.rhs @ kept)
          end)
        rules
    end
  in
  go 0 0 [];
  !best

let gen_dp_case =
  let open QCheck.Gen in
  let word = oneofl [ "a"; "b"; "c"; "d"; "ab"; "cd"; "x"; "y" ] in
  let rule =
    oneofl
      [
        Rule.merging [ "a"; "b" ] "ab";
        Rule.merging [ "c"; "d" ] "cd";
        Rule.split "ab" [ "a"; "b" ];
        Rule.synonym "x" "y";
        Rule.synonym ~ds:2 "a" "c";
        Rule.make ~op:Rule.Substitution ~ds:1 [ "a"; "b" ] [ "x"; "y" ];
      ]
  in
  triple
    (list_size (int_range 1 5) word)
    (list_size (int_bound 4) rule)
    (list_size (int_bound 6) word)

let prop_dp_optimal =
  QCheck.Test.make ~name:"DP matches exhaustive enumeration" ~count:500
    (QCheck.make
       ~print:(fun (q, rules, avail) ->
         Printf.sprintf "q=[%s] rules=[%s] T=[%s]" (String.concat ";" q)
           (String.concat ";" (List.map Rule.to_string rules))
           (String.concat ";" avail))
       gen_dp_case)
    (fun (q, rules, avail) ->
      let rules = Ruleset.of_rules rules in
      let available = available_of_list avail in
      let expected = brute_force_min_cost ~rules ~available ~deletion_cost:2 q in
      let got =
        Option.map
          (fun r -> r.Refined_query.dissimilarity)
          (Optimal_rq.optimal ~rules ~available q)
      in
      got = expected)

(* Lemma 2 (1): the RQ is always a subset of T *)
let prop_dp_subset_of_t =
  QCheck.Test.make ~name:"Lemma 2: RQ keywords come from T" ~count:500
    (QCheck.make gen_dp_case) (fun (q, rules, avail) ->
      let rules = Ruleset.of_rules rules in
      let available = available_of_list avail in
      match Optimal_rq.optimal ~rules ~available q with
      | None -> true
      | Some rq -> List.for_all available rq.Refined_query.keywords)

(* ---- rq list ---------------------------------------------------------------- *)

let mk_rq keywords ds =
  { Refined_query.keywords; dissimilarity = ds; edits = [] }

let test_rq_list () =
  let l = Rq_list.create ~capacity:2 in
  check (Alcotest.option Alcotest.int) "empty max" None (Rq_list.max_dissimilarity l);
  check Alcotest.bool "admit anything when empty" true (Rq_list.would_admit l 100);
  ignore (Rq_list.insert l (mk_rq [ "a" ] 5));
  ignore (Rq_list.insert l (mk_rq [ "b" ] 3));
  check (Alcotest.option Alcotest.int) "full max" (Some 5) (Rq_list.max_dissimilarity l);
  check Alcotest.bool "reject worse" false (Rq_list.insert l (mk_rq [ "c" ] 7));
  check Alcotest.bool "admit better, evict worst" true (Rq_list.insert l (mk_rq [ "d" ] 1));
  check Alcotest.bool "worst evicted" false (Rq_list.mem l (mk_rq [ "a" ] 5));
  check
    (Alcotest.list Alcotest.int)
    "ascending order" [ 1; 3 ]
    (List.map (fun r -> r.Refined_query.dissimilarity) (Rq_list.to_list l));
  (* duplicate keyword set keeps the cheaper cost *)
  ignore (Rq_list.insert l (mk_rq [ "d" ] 2));
  check Alcotest.int "dedup" 2 (Rq_list.length l);
  ignore (Rq_list.insert l (mk_rq [ "b" ] 1));
  check
    (Alcotest.list Alcotest.int)
    "replaced cheaper" [ 1; 1 ]
    (List.map (fun r -> r.Refined_query.dissimilarity) (Rq_list.to_list l))

(* ---- the three algorithms ---------------------------------------------------- *)

let refine_with alg ?(k = 3) index query =
  let config = { Engine.default_config with algorithm = alg; k } in
  (Engine.refine ~config index query).Engine.result

let best_dissim result =
  match result with
  | Result.Refined matches ->
    List.fold_left
      (fun acc (m : Result.rq_match) -> min acc m.Result.rq.Refined_query.dissimilarity)
      max_int matches
    |> fun d -> if d = max_int then None else Some d
  | Result.Original _ | Result.No_result -> None

let test_algorithms_agree_on_optimal_dissim () =
  let index = Lazy.force fig1 in
  let queries =
    [
      [ "on"; "line"; "data"; "base" ];
      [ "database"; "publication" ];
      [ "john"; "xml"; "2003" ];
      [ "onlinedatabase" ];
      [ "databse"; "systems" ];
      [ "xml"; "kyword" ];
    ]
  in
  List.iter
    (fun q ->
      let r_stack = refine_with Engine.Stack_refine index q in
      let r_part = refine_with Engine.Partition index q in
      let r_sle = refine_with Engine.Short_list_eager index q in
      let d1 = best_dissim r_stack and d2 = best_dissim r_part and d3 = best_dissim r_sle in
      if not (d1 = d2 && d2 = d3) then
        Alcotest.failf "optimal dissimilarity disagrees on {%s}: stack=%s partition=%s sle=%s"
          (String.concat "," q)
          (match d1 with Some d -> string_of_int d | None -> "-")
          (match d2 with Some d -> string_of_int d | None -> "-")
          (match d3 with Some d -> string_of_int d | None -> "-"))
    queries

let test_original_query_detected () =
  let index = Lazy.force fig1 in
  (* {xml, 2003} has meaningful SLCAs: no refinement on any algorithm *)
  List.iter
    (fun alg ->
      match refine_with alg index [ "xml"; "2003" ] with
      | Result.Original slcas -> check Alcotest.int (Engine.algorithm_name alg) 2 (List.length slcas)
      | Result.Refined _ | Result.No_result ->
        Alcotest.failf "%s refined a matching query" (Engine.algorithm_name alg))
    Engine.[ Stack_refine; Partition; Short_list_eager ]

let test_no_result_when_hopeless () =
  let index = Lazy.force fig1 in
  List.iter
    (fun alg ->
      match refine_with alg index [ "qqqq"; "wwww" ] with
      | Result.No_result -> ()
      | Result.Original _ | Result.Refined _ ->
        Alcotest.failf "%s fabricated a result" (Engine.algorithm_name alg))
    Engine.[ Stack_refine; Partition; Short_list_eager ]

(* Lemma 2 (3) / Definition 3.4: every returned RQ has >= 1 meaningful SLCA *)
let test_refined_queries_have_results () =
  let index = Lazy.force dblp in
  let rng = Xr_data.Rng.create 5 in
  let th = Xr_text.Thesaurus.default () in
  let pool = Xr_eval.Querylog.pool ~thesaurus:th rng index ~per_kind:2 in
  List.iter
    (fun (c : Xr_eval.Querylog.case) ->
      List.iter
        (fun alg ->
          match refine_with alg index c.Xr_eval.Querylog.corrupted with
          | Result.Refined matches ->
            List.iter
              (fun (m : Result.rq_match) ->
                if m.Result.slcas = [] && alg <> Engine.Partition then
                  Alcotest.failf "%s returned RQ %s with no results"
                    (Engine.algorithm_name alg)
                    (Refined_query.to_string m.Result.rq))
              matches
          | Result.Original _ | Result.No_result -> ())
        Engine.[ Stack_refine; Partition; Short_list_eager ])
    pool

(* Orthogonality (Lemma 3): partition/SLE results independent of SLCA engine *)
let test_orthogonal_to_slca_engine () =
  let index = Lazy.force fig1 in
  let queries = [ [ "on"; "line"; "data"; "base" ]; [ "database"; "publication" ] ] in
  List.iter
    (fun q ->
      let results =
        List.map
          (fun slca ->
            let config = { Engine.default_config with slca; algorithm = Engine.Partition } in
            match (Engine.refine ~config index q).Engine.result with
            | Result.Refined ms ->
              List.map
                (fun (m : Result.rq_match) ->
                  (Refined_query.key m.Result.rq, List.map Dewey.to_string m.Result.slcas))
                ms
            | Result.Original _ | Result.No_result -> [])
          Xr_slca.Engine.all
      in
      match results with
      | first :: rest ->
        List.iter
          (fun r -> if r <> first then Alcotest.fail "SLCA engine changed refinement output")
          rest
      | [] -> ())
    queries

let test_stack_refine_stats () =
  let index = Lazy.force fig1 in
  let config = { Engine.default_config with algorithm = Engine.Stack_refine } in
  let resp = Engine.refine ~config index [ "on"; "line"; "data"; "base" ] in
  match resp.Engine.stats with
  | Engine.Stack_stats s ->
    check Alcotest.bool "pops happened" true (s.Stack_refine.pops > 0);
    check Alcotest.bool "dp ran" true (s.Stack_refine.dp_runs > 0)
  | _ -> Alcotest.fail "wrong stats constructor"

let test_partition_prunes () =
  let index = Lazy.force dblp in
  let config = { Engine.default_config with algorithm = Engine.Partition; k = 1 } in
  let resp = Engine.refine ~config index [ "databse"; "quury"; "optimzation" ] in
  match resp.Engine.stats with
  | Engine.Partition_stats s ->
    check Alcotest.bool "visited some partitions" true (s.Partition.partitions_visited > 0)
  | _ -> Alcotest.fail "wrong stats constructor"

let test_sle_early_stop () =
  let index = Lazy.force dblp in
  let config = { Engine.default_config with algorithm = Engine.Short_list_eager; k = 1 } in
  (* common keyword + a rare misspelled one: SLE should not consume the
     gigantic lists *)
  let resp = Engine.refine ~config index [ "author"; "visualizaton" ] in
  match resp.Engine.stats with
  | Engine.Sle_stats s ->
    check Alcotest.bool "ran" true (s.Sle.dp_runs > 0)
  | _ -> Alcotest.fail "wrong stats constructor"

(* top-k matches are sorted by rank *)
let test_topk_sorted_by_rank () =
  let index = Lazy.force fig1 in
  match refine_with Engine.Partition ~k:4 index [ "on"; "line"; "data"; "base" ] with
  | Result.Refined matches ->
    let ranks =
      List.filter_map (fun (m : Result.rq_match) -> Option.map (fun s -> s.Ranking.rank) m.Result.score) matches
    in
    check
      (Alcotest.list (Alcotest.float 1e-9))
      "descending rank"
      (List.sort (fun a b -> Float.compare b a) ranks)
      ranks
  | _ -> Alcotest.fail "expected refinement"

(* ---- edge cases --------------------------------------------------------------- *)

let test_edge_queries () =
  let index = Lazy.force fig1 in
  (* empty and degenerate queries neither crash nor fabricate *)
  (match (Engine.refine index []).Engine.result with
  | Result.No_result -> ()
  | _ -> Alcotest.fail "empty query fabricated a result");
  (match (Engine.refine index [ "..."; "!!" ]).Engine.result with
  | Result.No_result -> ()
  | _ -> Alcotest.fail "punctuation query fabricated a result");
  check Alcotest.int "search of empty" 0 (List.length (Engine.search index []));
  (* duplicated keywords behave like the set *)
  let a = Engine.search index [ "xml"; "2003" ] in
  let b = Engine.search index [ "xml"; "2003"; "XML"; "xml" ] in
  check Alcotest.bool "duplicates collapse" true (a = b);
  (* a long query stays tractable and sound *)
  let long = [ "xml"; "keyword"; "query"; "john"; "2003"; "vldb"; "twig"; "join"; "games"; "web" ] in
  match (Engine.refine index long).Engine.result with
  | Result.Refined (m :: _) ->
    check Alcotest.bool "long query refined" true (m.Result.slcas <> [])
  | Result.Refined [] | Result.No_result | Result.Original _ -> ()

let test_mixed_case_and_punctuation_normalize () =
  let index = Lazy.force fig1 in
  let a = Engine.search index [ "XML"; "2003" ] in
  let b = Engine.search index [ "xml,"; "(2003)" ] in
  let c = Engine.search index [ "xml"; "2003" ] in
  check Alcotest.bool "case-insensitive" true (a = c);
  check Alcotest.bool "punctuation-insensitive" true (b = c)

let test_refine_single_char_keywords () =
  let index = Lazy.force fig1 in
  (* one-letter junk is deletable without crashing the miner *)
  match (Engine.refine index [ "x"; "xml"; "2003" ]).Engine.result with
  | Result.Refined ({ Result.rq; _ } :: _) ->
    check (Alcotest.list Alcotest.string) "junk deleted" [ "2003"; "xml" ]
      rq.Refined_query.keywords
  | _ -> Alcotest.fail "expected refinement"

(* ---- ranking ----------------------------------------------------------------- *)

let test_ranking_decay_and_variants () =
  let index = Lazy.force fig1 in
  let stats = index.Index.stats in
  let original = [ "on"; "line"; "data"; "base" ] in
  let r = Rule.merging [ "on"; "line" ] "online" in
  let rq1 =
    {
      Refined_query.keywords = [ "database"; "online" ];
      dissimilarity = 2;
      edits = [ Refined_query.Applied r; Refined_query.Applied (Rule.merging [ "data"; "base" ] "database") ];
    }
  in
  let rq_far = { rq1 with dissimilarity = 6 } in
  let s1 = Ranking.score stats ~original rq1 in
  let s2 = Ranking.score stats ~original rq_far in
  check Alcotest.bool "decay lowers similarity" true (s1.Ranking.similarity > s2.Ranking.similarity);
  (* without G4 the two coincide *)
  let cfg = { Ranking.default_config with variant = Ranking.ablate 4 } in
  let s1' = Ranking.score ~config:cfg stats ~original rq1 in
  let s2' = Ranking.score ~config:cfg stats ~original rq_far in
  check (Alcotest.float 1e-9) "no decay without G4" s1'.Ranking.similarity s2'.Ranking.similarity;
  (* alpha/beta weights *)
  let sim_only = { Ranking.default_config with beta = 0. } in
  let s = Ranking.score ~config:sim_only stats ~original rq1 in
  check (Alcotest.float 1e-9) "beta 0 drops dependence" s.Ranking.similarity s.Ranking.rank;
  let dep_only = { Ranking.default_config with alpha = 0. } in
  let s = Ranking.score ~config:dep_only stats ~original rq1 in
  check (Alcotest.float 1e-9) "alpha 0 drops similarity" s.Ranking.dependence s.Ranking.rank

let test_ranking_dependence () =
  let index = Lazy.force fig1 in
  let stats = index.Index.stats in
  let original = [ "xml"; "2003" ] in
  (* xml & 2003 co-occur in inproceedings; xml & games never *)
  let rq_cooccur = mk_rq [ "2003"; "xml" ] 1 in
  let rq_scatter = mk_rq [ "games"; "xml" ] 1 in
  let s1 = Ranking.score stats ~original rq_cooccur in
  let s2 = Ranking.score stats ~original rq_scatter in
  check Alcotest.bool "co-occurring keywords score higher dependence" true
    (s1.Ranking.dependence > s2.Ranking.dependence)

let test_ranking_ablations_exist () =
  List.iter (fun i -> ignore (Ranking.ablate i)) [ 1; 2; 3; 4 ];
  try
    ignore (Ranking.ablate 5);
    Alcotest.fail "ablate 5 accepted"
  with Invalid_argument _ -> ()

(* ---- end-to-end soundness on random documents -------------------------------- *)

let gen_doc_query =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d" ] in
  let word = oneofl [ "xx"; "yy"; "zz"; "ww"; "xxyy"; "zzww" ] in
  let rec node depth =
    if depth = 0 then map2 Tree.leaf tag word
    else
      frequency
        [
          (1, map2 Tree.leaf tag word);
          ( 2,
            (fun st ->
              let tg = tag st in
              let w = word st in
              let children = list_size (int_bound 3) (node (depth - 1)) st in
              Tree.elem tg (Tree.Text w :: List.map (fun c -> Tree.Elem c) children)) );
        ]
  in
  (* query words include corrupted forms: split halves, glued pairs, typos *)
  let qword = oneofl [ "xx"; "yy"; "zz"; "ww"; "xxyy"; "zzww"; "x"; "xy"; "zzw"; "qq" ] in
  pair (node 3) (list_size (int_range 1 3) qword)

let arb_refine_case =
  QCheck.make
    ~print:(fun (t, q) -> Xr_xml.Printer.to_string t ^ "\nquery: " ^ String.concat "," q)
    gen_doc_query

(* every returned refined query's results really contain all its keywords *)
let prop_results_contain_keywords =
  QCheck.Test.make ~name:"refined results contain every RQ keyword" ~count:200 arb_refine_case
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let doc = index.Index.doc in
      match (Engine.refine index query).Engine.result with
      | Result.Original _ | Result.No_result -> true
      | Result.Refined matches ->
        List.for_all
          (fun (m : Result.rq_match) ->
            let ids =
              List.filter_map (Doc.keyword_id doc) m.Result.rq.Refined_query.keywords
            in
            List.length ids = List.length m.Result.rq.Refined_query.keywords
            && List.for_all
                 (fun dewey ->
                   let lo, hi = Doc.subtree_node_range doc dewey in
                   List.for_all
                     (fun kw ->
                       let rec found i =
                         i < hi
                         && (List.exists (fun (k, _) -> k = kw) doc.Doc.nodes.(i).Doc.keywords
                            || found (i + 1))
                       in
                       found lo)
                     ids)
                 m.Result.slcas)
          matches)

(* the decision is consistent: Original iff the plain search succeeds *)
let prop_adaptive_decision_consistent =
  QCheck.Test.make ~name:"Original outcome iff plain search non-empty" ~count:200 arb_refine_case
    (fun (tree, query) ->
      let index = Index.build (Doc.of_tree tree) in
      let plain = Engine.search index query in
      match (Engine.refine index query).Engine.result with
      | Result.Original _ -> plain <> []
      | Result.Refined _ | Result.No_result -> plain = [])

(* ---- rule files ------------------------------------------------------------- *)

let test_rule_file_parse () =
  let content = {txt|
# comment line
on line -> online
mecin -> machine : substitution : 2
www -> world wide web
reallyjunk -> : deletion
database -> databases   # trailing comment
|txt} in
  match Rule_file.parse content with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok rules ->
    check Alcotest.int "rule count" 5 (List.length rules);
    let r0 = List.nth rules 0 in
    check Alcotest.bool "merging inferred" true (r0.Rule.op = Rule.Merging);
    check Alcotest.int "merging ds" 1 r0.Rule.ds;
    let r1 = List.nth rules 1 in
    check Alcotest.bool "explicit op" true (r1.Rule.op = Rule.Substitution);
    check Alcotest.int "explicit ds" 2 r1.Rule.ds;
    let r2 = List.nth rules 2 in
    check Alcotest.bool "split inferred" true (r2.Rule.op = Rule.Split);
    check Alcotest.int "split ds (two boundaries)" 2 r2.Rule.ds;
    let r3 = List.nth rules 3 in
    check Alcotest.bool "deletion" true (r3.Rule.op = Rule.Deletion && r3.Rule.rhs = []);
    check Alcotest.int "deletion ds" 2 r3.Rule.ds;
    let r4 = List.nth rules 4 in
    check Alcotest.bool "substitution inferred" true (r4.Rule.op = Rule.Substitution);
    check Alcotest.int "edit-distance ds" 1 r4.Rule.ds

let test_rule_file_errors () =
  let bad content =
    match Rule_file.parse content with
    | Ok _ -> Alcotest.failf "accepted %S" content
    | Error msg -> check Alcotest.bool "error mentions line" true (String.length msg > 0)
  in
  bad "no arrow here";
  bad " -> x";
  bad "a -> b : frobnicate";
  bad "a -> b : substitution : 0";
  bad "a -> b : deletion"

let test_rule_file_roundtrip () =
  let rules =
    [
      Rule.merging [ "on"; "line" ] "online";
      Rule.spelling "mecin" "machine";
      Rule.deletion "junk" ~ds:3;
      Rule.acronym_expand "www" [ "world"; "wide"; "web" ];
    ]
  in
  let path = Filename.temp_file "xrrules" ".txt" in
  Rule_file.save path rules;
  let rules2 = Rule_file.load path in
  Sys.remove path;
  check Alcotest.int "cardinality" (List.length rules) (List.length rules2);
  List.iter2
    (fun a b -> check Alcotest.bool (Rule.to_string a) true (Rule.equal a b))
    rules rules2

let () =
  Alcotest.run "xr_refine"
    [
      ( "rules",
        [
          Alcotest.test_case "constructors + scores" `Quick test_rule_constructors;
          Alcotest.test_case "ruleset indexing" `Quick test_ruleset_index;
          Alcotest.test_case "mining on figure 1" `Quick test_mining_fig1;
          Alcotest.test_case "mining config" `Quick test_mining_respects_config;
        ] );
      ( "rule-files",
        [
          Alcotest.test_case "parse" `Quick test_rule_file_parse;
          Alcotest.test_case "errors" `Quick test_rule_file_errors;
          Alcotest.test_case "save/load roundtrip" `Quick test_rule_file_roundtrip;
        ] );
      ( "refined-query",
        [ Alcotest.test_case "delta/deleted/generated" `Quick test_refined_query_delta ] );
      ( "dynamic-program",
        [
          Alcotest.test_case "paper example 3" `Quick test_dp_paper_example3;
          Alcotest.test_case "recurrence options" `Quick test_dp_recurrence_options;
          Alcotest.test_case "deletion cost config" `Quick test_dp_deletion_cost_config;
          Alcotest.test_case "rule needs RHS available" `Quick test_dp_rule_requires_rhs_available;
          Alcotest.test_case "top-k distinct + sorted" `Quick test_dp_top_k_distinct_sorted;
          qcheck prop_dp_optimal;
          qcheck prop_dp_subset_of_t;
        ] );
      ("rq-list", [ Alcotest.test_case "bounded sorted list" `Quick test_rq_list ]);
      ( "algorithms",
        [
          Alcotest.test_case "agree on optimal dissimilarity" `Quick
            test_algorithms_agree_on_optimal_dissim;
          Alcotest.test_case "original query detected" `Quick test_original_query_detected;
          Alcotest.test_case "no fabrication" `Quick test_no_result_when_hopeless;
          Alcotest.test_case "refined queries have results" `Quick
            test_refined_queries_have_results;
          Alcotest.test_case "orthogonal to SLCA engine" `Quick test_orthogonal_to_slca_engine;
          Alcotest.test_case "stack stats" `Quick test_stack_refine_stats;
          Alcotest.test_case "partition stats" `Quick test_partition_prunes;
          Alcotest.test_case "sle stats" `Quick test_sle_early_stop;
          Alcotest.test_case "top-k sorted by rank" `Quick test_topk_sorted_by_rank;
        ] );
      ( "soundness",
        [
          qcheck prop_results_contain_keywords;
          qcheck prop_adaptive_decision_consistent;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "degenerate queries" `Quick test_edge_queries;
          Alcotest.test_case "normalization" `Quick test_mixed_case_and_punctuation_normalize;
          Alcotest.test_case "single-char junk" `Quick test_refine_single_char_keywords;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "decay + variants + weights" `Quick test_ranking_decay_and_variants;
          Alcotest.test_case "dependence score" `Quick test_ranking_dependence;
          Alcotest.test_case "ablations" `Quick test_ranking_ablations_exist;
        ] );
    ]
